package dtaint_test

import (
	"bytes"
	"strings"
	"testing"

	"dtaint"
)

func TestWriteMarkdown(t *testing.T) {
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dtaint.New().AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Taint analysis report: cgibin",
		"| Architecture | MIPS |",
		"4 vulnerabilities",
		"CWE-78",
		"CWE-121",
		"cgi_pg_exec",
		"Path 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 2 {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}

func TestWriteMarkdownPropagatesError(t *testing.T) {
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dtaint.New().AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.WriteMarkdown(&failWriter{}); err == nil {
		t.Fatal("writer error swallowed")
	}
}

package dtaint

import (
	"fmt"
	"io"
	"sort"
)

// WriteMarkdown renders the report as a Markdown document: an overview of
// the analyzed binary, one section per vulnerability with all paths that
// reach it, and an appendix of sanitized flows. Suitable for filing with
// a vendor disclosure.
func (r *Report) WriteMarkdown(w io.Writer) error {
	pw := &printWriter{w: w}
	pw.printf("# Taint analysis report: %s\n\n", r.Binary)
	pw.printf("| | |\n|---|---|\n")
	pw.printf("| Architecture | %s |\n", r.Arch)
	pw.printf("| Functions | %d (%d analyzed) |\n", r.Functions, r.FunctionsAnalyzed)
	pw.printf("| Basic blocks | %d |\n", r.Blocks)
	pw.printf("| Call-graph edges | %d |\n", r.CallEdges)
	pw.printf("| Sensitive sink sites | %d |\n", r.SinkCount)
	pw.printf("| Indirect calls resolved | %d |\n", r.IndirectResolved)
	pw.printf("| Symbolic analysis | %v |\n", r.SSATime)
	pw.printf("| Data-flow generation | %v |\n\n", r.DDGTime)

	vulns := r.Vulnerabilities()
	paths := r.VulnerablePaths()
	pw.printf("**%d vulnerabilities** over %d vulnerable paths.\n\n", len(vulns), len(paths))

	// Group the paths under their deduplicated vulnerability.
	for i, v := range vulns {
		pw.printf("## %d. %s: %s → %s in `%s`\n\n", i+1, v.CWE(), v.Source, v.Sink, v.SinkFunc)
		pw.printf("- Class: %s\n", v.Class)
		pw.printf("- Sink callsite: `%s` at `%#x`\n", v.Sink, v.SinkAddr)
		for _, ev := range v.Evidence {
			pw.printf("- Evidence: %s\n", ev)
		}
		pw.printf("\n")
		n := 0
		for _, p := range paths {
			if p.SinkFunc == v.SinkFunc && p.Sink == v.Sink &&
				p.SinkAddr == v.SinkAddr && p.Class == v.Class {
				n++
				pw.printf("Path %d (source `%s`):\n\n", n, p.Source)
				for _, step := range p.Path {
					pw.printf("  - `%s`\n", step)
				}
				pw.printf("\n")
			}
		}
	}

	// Sanitized flows, grouped per sink function, as an appendix.
	var sanitized []Finding
	for _, f := range r.Findings {
		if f.Sanitized {
			sanitized = append(sanitized, f)
		}
	}
	if len(sanitized) > 0 {
		sort.Slice(sanitized, func(i, j int) bool {
			if sanitized[i].SinkFunc != sanitized[j].SinkFunc {
				return sanitized[i].SinkFunc < sanitized[j].SinkFunc
			}
			return sanitized[i].SinkAddr < sanitized[j].SinkAddr
		})
		pw.printf("## Appendix: sanitized flows (%d)\n\n", len(sanitized))
		pw.printf("Tainted data reaching a sink behind a recognized check:\n\n")
		for _, f := range sanitized {
			pw.printf("- %s → %s in `%s@%#x`\n", f.Source, f.Sink, f.SinkFunc, f.SinkAddr)
		}
		pw.printf("\n")
	}
	return pw.err
}

// WriteMarkdown renders the differential report as a Markdown document:
// the two image identities, the pairing and cost summary, one table row
// per binary that changed hands, and the new findings first — the part a
// CI reviewer reads before anything else.
func (r *DiffReport) WriteMarkdown(w io.Writer) error {
	pw := &printWriter{w: w}
	pw.printf("# Firmware diff: %s %s %s → %s\n\n",
		r.New.Vendor, r.New.Product, r.Old.Version, r.New.Version)
	pw.printf("| | Old | New |\n|---|---|---|\n")
	pw.printf("| Version | %s | %s |\n", r.Old.Version, r.New.Version)
	pw.printf("| Image SHA-256 | `%.12s…` | `%.12s…` |\n", r.Old.SHA256, r.New.SHA256)
	pw.printf("| Candidate binaries | %d | %d |\n\n", r.Old.Candidates, r.New.Candidates)

	pw.printf("**Pairing:** %d unchanged, %d changed, %d added, %d removed, %d moved.\n",
		r.Unchanged, r.Changed, r.Added, r.Removed, r.Moved)
	pw.printf("**Cost:** %d replayed from cache, %d re-analyzed", r.Replayed, r.Reanalyzed)
	if r.SummaryHitRate > 0 {
		pw.printf(" (function-summary hit rate %.0f%%)", 100*r.SummaryHitRate)
	}
	pw.printf("; wall %v over %d workers.\n", r.Wall, r.Workers)
	if r.Failed > 0 {
		pw.printf("**%d binary pair(s) failed to analyze.**\n", r.Failed)
	}
	pw.printf("\n**Findings:** %d new, %d fixed, %d persisting.\n\n",
		r.NewFindings, r.FixedFindings, r.PersistingFindings)

	// New findings first: this is the section a gate acts on.
	writeGroup := func(title string, status DiffFindingStatus) {
		var rows []struct {
			bin string
			f   DiffFinding
		}
		for _, b := range r.Binaries {
			for _, f := range b.Findings {
				if f.Status == status {
					rows = append(rows, struct {
						bin string
						f   DiffFinding
					}{b.Path, f})
				}
			}
		}
		if len(rows) == 0 {
			return
		}
		pw.printf("## %s (%d)\n\n", title, len(rows))
		pw.printf("| Binary | Class | Flow | Location | Paths |\n|---|---|---|---|---|\n")
		for _, row := range rows {
			loc := fmt.Sprintf("`%s@%#x`", row.f.SinkFunc, row.f.SinkAddr)
			if row.f.OldFunc != "" {
				loc += fmt.Sprintf(" (was `%s`)", row.f.OldFunc)
			}
			pw.printf("| `%s` | %s | %s → %s | %s | %d |\n",
				row.bin, row.f.Class, row.f.Source, row.f.Sink, loc, row.f.Paths)
		}
		pw.printf("\n")
	}
	writeGroup("New findings", FindingNew)
	writeGroup("Fixed findings", FindingFixed)
	writeGroup("Persisting findings", FindingPersisting)

	// Per-binary appendix: only pairs that differ or erred; unchanged
	// pairs would dominate the table without informing the reader.
	var interesting []DiffBinary
	for _, b := range r.Binaries {
		if b.Status != DiffUnchanged || b.Error != "" {
			interesting = append(interesting, b)
		}
	}
	if len(interesting) > 0 {
		pw.printf("## Binary pairs\n\n")
		pw.printf("| Binary | Status | Funcs paired | Summary hits | New | Fixed | Error |\n|---|---|---|---|---|---|---|\n")
		for _, b := range interesting {
			name := b.Path
			if b.OldPath != "" {
				name = b.OldPath + " → " + b.Path
			}
			paired := ""
			if b.FuncsTotal > 0 {
				paired = fmt.Sprintf("%d/%d exact (%d renamed), %d similar",
					b.FuncsExact, b.FuncsTotal, b.FuncsRenamed, b.FuncsSimilar)
			}
			hits := ""
			if b.SummaryHits+b.SummaryMisses > 0 {
				hits = fmt.Sprintf("%d/%d", b.SummaryHits, b.SummaryHits+b.SummaryMisses)
			}
			pw.printf("| `%s` | %s | %s | %s | %d | %d | %s |\n",
				name, b.Status, paired, hits, b.New, b.Fixed, b.Error)
		}
		pw.printf("\n")
	}
	return pw.err
}

// printWriter accumulates the first write error so the rendering code
// stays linear.
type printWriter struct {
	w   io.Writer
	err error
}

func (p *printWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

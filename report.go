package dtaint

import (
	"fmt"
	"io"
	"sort"
)

// WriteMarkdown renders the report as a Markdown document: an overview of
// the analyzed binary, one section per vulnerability with all paths that
// reach it, and an appendix of sanitized flows. Suitable for filing with
// a vendor disclosure.
func (r *Report) WriteMarkdown(w io.Writer) error {
	pw := &printWriter{w: w}
	pw.printf("# Taint analysis report: %s\n\n", r.Binary)
	pw.printf("| | |\n|---|---|\n")
	pw.printf("| Architecture | %s |\n", r.Arch)
	pw.printf("| Functions | %d (%d analyzed) |\n", r.Functions, r.FunctionsAnalyzed)
	pw.printf("| Basic blocks | %d |\n", r.Blocks)
	pw.printf("| Call-graph edges | %d |\n", r.CallEdges)
	pw.printf("| Sensitive sink sites | %d |\n", r.SinkCount)
	pw.printf("| Indirect calls resolved | %d |\n", r.IndirectResolved)
	pw.printf("| Symbolic analysis | %v |\n", r.SSATime)
	pw.printf("| Data-flow generation | %v |\n\n", r.DDGTime)

	vulns := r.Vulnerabilities()
	paths := r.VulnerablePaths()
	pw.printf("**%d vulnerabilities** over %d vulnerable paths.\n\n", len(vulns), len(paths))

	// Group the paths under their deduplicated vulnerability.
	for i, v := range vulns {
		pw.printf("## %d. %s: %s → %s in `%s`\n\n", i+1, v.CWE(), v.Source, v.Sink, v.SinkFunc)
		pw.printf("- Class: %s\n", v.Class)
		pw.printf("- Sink callsite: `%s` at `%#x`\n", v.Sink, v.SinkAddr)
		for _, ev := range v.Evidence {
			pw.printf("- Evidence: %s\n", ev)
		}
		pw.printf("\n")
		n := 0
		for _, p := range paths {
			if p.SinkFunc == v.SinkFunc && p.Sink == v.Sink &&
				p.SinkAddr == v.SinkAddr && p.Class == v.Class {
				n++
				pw.printf("Path %d (source `%s`):\n\n", n, p.Source)
				for _, step := range p.Path {
					pw.printf("  - `%s`\n", step)
				}
				pw.printf("\n")
			}
		}
	}

	// Sanitized flows, grouped per sink function, as an appendix.
	var sanitized []Finding
	for _, f := range r.Findings {
		if f.Sanitized {
			sanitized = append(sanitized, f)
		}
	}
	if len(sanitized) > 0 {
		sort.Slice(sanitized, func(i, j int) bool {
			if sanitized[i].SinkFunc != sanitized[j].SinkFunc {
				return sanitized[i].SinkFunc < sanitized[j].SinkFunc
			}
			return sanitized[i].SinkAddr < sanitized[j].SinkAddr
		})
		pw.printf("## Appendix: sanitized flows (%d)\n\n", len(sanitized))
		pw.printf("Tainted data reaching a sink behind a recognized check:\n\n")
		for _, f := range sanitized {
			pw.printf("- %s → %s in `%s@%#x`\n", f.Source, f.Sink, f.SinkFunc, f.SinkAddr)
		}
		pw.printf("\n")
	}
	return pw.err
}

// printWriter accumulates the first write error so the rendering code
// stays linear.
type printWriter struct {
	w   io.Writer
	err error
}

func (p *printWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

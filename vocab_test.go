package dtaint_test

import (
	"testing"

	"dtaint"
	"dtaint/internal/asm"
)

// Vendor firmware has input wrappers and sinks beyond Table I; the
// analyzer accepts custom vocabulary entries for them.
func TestCustomVocabulary(t *testing.T) {
	src := `
.arch arm
.import nvram_get
.import uart_read
.import wifi_set_ssid
.data key "wl_ssid"

.func set_ssid_from_nvram
  MOV R0, =key
  BL nvram_get
  BL wifi_set_ssid
  BX LR
.endfunc

.func read_uart_cmd
  SUB SP, SP, #0x110
  ADD R0, SP, #8
  MOV R1, #0x100
  BL uart_read
  ADD R0, SP, #8
  BL wifi_set_ssid
  BX LR
.endfunc
`
	bin, err := asm.Assemble("vendor", src)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := bin.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Without the custom vocabulary: nothing is found.
	plain, err := dtaint.New().AnalyzeExecutable(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(plain.Vulnerabilities()); n != 0 {
		t.Fatalf("default vocabulary found %d vulns in vendor-only code", n)
	}

	// With nvram_get/uart_read as sources and wifi_set_ssid as a sink,
	// both flows are vulnerabilities.
	a := dtaint.New(
		dtaint.WithReturningSource("nvram_get"),
		dtaint.WithBufferSource("uart_read", 0),
		dtaint.WithSink("wifi_set_ssid", dtaint.ClassBufferOverflow, 0, -1),
	)
	rep, err := a.AnalyzeExecutable(raw)
	if err != nil {
		t.Fatal(err)
	}
	vulns := rep.Vulnerabilities()
	if len(vulns) != 2 {
		for _, v := range vulns {
			t.Logf("vuln: %s", v)
		}
		t.Fatalf("custom vocabulary found %d vulns, want 2", len(vulns))
	}
	sources := map[string]bool{}
	for _, v := range vulns {
		if v.Sink != "wifi_set_ssid" {
			t.Fatalf("wrong sink: %s", v.Sink)
		}
		sources[v.Source] = true
	}
	if !sources["nvram_get"] || !sources["uart_read"] {
		t.Fatalf("sources = %v", sources)
	}
	// Custom sinks count toward the static sink census.
	if rep.SinkCount != 2 {
		t.Fatalf("sink count = %d, want 2", rep.SinkCount)
	}
}

// A custom sink with a length argument is sanitized by a bound check on
// that argument.
func TestCustomSinkLengthGuard(t *testing.T) {
	src := `
.arch arm
.import nvram_get
.import strlen
.import flash_write
.data key "cfg"

.func unchecked
  MOV R0, =key
  BL nvram_get
  MOV R4, R0
  MOV R0, #0
  MOV R1, R4
  BL strlen
  MOV R2, R0
  MOV R0, #0
  MOV R1, R4
  BL flash_write
  BX LR
.endfunc

.func checked
  MOV R0, =key
  BL nvram_get
  MOV R4, R0
  MOV R0, R4
  BL strlen
  MOV R5, R0
  CMP R5, #0x40
  BGE out
  MOV R0, #0
  MOV R1, R4
  MOV R2, R5
  BL flash_write
out:
  BX LR
.endfunc
`
	bin, err := asm.Assemble("vendor2", src)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := bin.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	a := dtaint.New(
		dtaint.WithReturningSource("nvram_get"),
		dtaint.WithSink("flash_write", dtaint.ClassBufferOverflow, 1, 2),
	)
	rep, err := a.AnalyzeExecutable(raw)
	if err != nil {
		t.Fatal(err)
	}
	var uncheckedHit, checkedHit bool
	for _, v := range rep.VulnerablePaths() {
		switch v.SinkFunc {
		case "unchecked":
			uncheckedHit = true
		case "checked":
			checkedHit = true
		}
	}
	if !uncheckedHit {
		for _, f := range rep.Findings {
			t.Logf("finding: %s", f)
		}
		t.Fatal("unchecked flash_write not reported")
	}
	if checkedHit {
		t.Fatal("length-checked flash_write reported")
	}
}

package dtaint_test

import (
	"strings"
	"testing"

	"dtaint"
	"dtaint/internal/asm"
)

// Vendor firmware has input wrappers and sinks beyond Table I; the
// analyzer accepts custom vocabulary entries for them.
func TestCustomVocabulary(t *testing.T) {
	src := `
.arch arm
.import nvram_get
.import uart_read
.import wifi_set_ssid
.data key "wl_ssid"

.func set_ssid_from_nvram
  MOV R0, =key
  BL nvram_get
  BL wifi_set_ssid
  BX LR
.endfunc

.func read_uart_cmd
  SUB SP, SP, #0x110
  ADD R0, SP, #8
  MOV R1, #0x100
  BL uart_read
  ADD R0, SP, #8
  BL wifi_set_ssid
  BX LR
.endfunc
`
	bin, err := asm.Assemble("vendor", src)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := bin.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Without the custom vocabulary: nothing is found.
	plain, err := dtaint.New().AnalyzeExecutable(raw)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(plain.Vulnerabilities()); n != 0 {
		t.Fatalf("default vocabulary found %d vulns in vendor-only code", n)
	}

	// With nvram_get/uart_read as sources and wifi_set_ssid as a sink,
	// both flows are vulnerabilities.
	a := dtaint.New(
		dtaint.WithReturningSource("nvram_get"),
		dtaint.WithBufferSource("uart_read", 0),
		dtaint.WithSink("wifi_set_ssid", dtaint.ClassBufferOverflow, 0, -1),
	)
	rep, err := a.AnalyzeExecutable(raw)
	if err != nil {
		t.Fatal(err)
	}
	vulns := rep.Vulnerabilities()
	if len(vulns) != 2 {
		for _, v := range vulns {
			t.Logf("vuln: %s", v)
		}
		t.Fatalf("custom vocabulary found %d vulns, want 2", len(vulns))
	}
	sources := map[string]bool{}
	for _, v := range vulns {
		if v.Sink != "wifi_set_ssid" {
			t.Fatalf("wrong sink: %s", v.Sink)
		}
		sources[v.Source] = true
	}
	if !sources["nvram_get"] || !sources["uart_read"] {
		t.Fatalf("sources = %v", sources)
	}
	// Custom sinks count toward the static sink census.
	if rep.SinkCount != 2 {
		t.Fatalf("sink count = %d, want 2", rep.SinkCount)
	}
}

// miniVocab is a hand-written subset of the default vocabulary, large
// enough to produce findings on the study firmware but with a distinct
// content fingerprint.
const miniVocab = `{"version": 1, "functions": [
	{"name": "read", "kind": "source", "ret": "int",
	 "args": [{"type": "int"}, {"type": "ptr", "role": "dest"}, {"type": "int", "role": "len"}]},
	{"name": "recv", "kind": "source", "ret": "int",
	 "args": [{"type": "int"}, {"type": "ptr", "role": "dest"}, {"type": "int", "role": "len"}]},
	{"name": "getenv", "kind": "source", "ret": "char*", "retTaint": true,
	 "args": [{"type": "char*"}]},
	{"name": "strcpy", "kind": "sink", "class": "buffer-overflow", "ret": "char*", "nul": true,
	 "args": [{"type": "char*", "role": "dest"}, {"type": "char*", "role": "src"}]},
	{"name": "sprintf", "kind": "sink", "class": "buffer-overflow", "ret": "int", "nul": true, "variadic": "src",
	 "args": [{"type": "char*", "role": "dest"}, {"type": "char*", "role": "format"}]},
	{"name": "system", "kind": "sink", "class": "command-injection", "guardByte": ";",
	 "args": [{"type": "char*", "role": "exec"}]},
	{"name": "strlen", "kind": "model", "model": "len-of", "ret": "int",
	 "args": [{"type": "char*", "role": "src"}]},
	{"name": "strchr", "kind": "model", "model": "byte-scan", "ret": "char*",
	 "args": [{"type": "char*", "role": "src"}, {"type": "int", "role": "byte"}]},
	{"name": "atoi", "kind": "model", "model": "parse-int", "ret": "int",
	 "args": [{"type": "char*", "role": "src"}]},
	{"name": "malloc", "kind": "model", "model": "alloc", "ret": "ptr",
	 "args": [{"type": "int", "role": "len"}]}
]}`

// The summary store is keyed by the vocabulary fingerprint: a rerun
// with an independently parsed but identical spec replays warm, while
// a semantically different spec provably misses every cached summary.
func TestVocabularySummaryStoreKeying(t *testing.T) {
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dtaint.NewSummaryStore(0, "")
	if err != nil {
		t.Fatal(err)
	}
	parse := func(doc string) *dtaint.Vocabulary {
		v, err := dtaint.ParseVocabulary([]byte(doc), "mini.json")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	cold, err := dtaint.New(dtaint.WithSummaryStore(store), dtaint.WithVocabulary(parse(miniVocab))).
		AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Vulnerabilities()) == 0 {
		t.Fatal("mini vocabulary found nothing; the keying assertions below would be vacuous")
	}
	st := store.Stats()
	if st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("cold run should populate the store: %+v", st)
	}

	// Identical spec, parsed and compiled independently: warm replay.
	warm, err := dtaint.New(dtaint.WithSummaryStore(store), dtaint.WithVocabulary(parse(miniVocab))).
		AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	warmSt := store.Stats()
	if warmSt.Hits == st.Hits {
		t.Fatal("identical vocabulary did not replay from the store")
	}
	if warmSt.Misses != st.Misses {
		t.Fatalf("identical vocabulary missed the store %d times", warmSt.Misses-st.Misses)
	}
	cw, ww := vulnKeys(cold.Findings), vulnKeys(warm.Findings)
	if len(cw) != len(ww) {
		t.Fatalf("warm replay changed the findings: %d vs %d", len(ww), len(cw))
	}
	for i := range cw {
		if cw[i] != ww[i] {
			t.Fatalf("warm finding %d = %s, want %s", i, ww[i], cw[i])
		}
	}

	// A semantically changed vocabulary (one extra sink) must not be
	// served summaries computed under the old one: zero hits, all misses.
	changed := strings.Replace(miniVocab,
		`{"name": "system",`,
		`{"name": "popen", "kind": "sink", "class": "command-injection", "guardByte": ";",
	 "args": [{"type": "char*", "role": "exec"}, {"type": "char*"}]},
	{"name": "system",`, 1)
	if _, err := dtaint.New(dtaint.WithSummaryStore(store), dtaint.WithVocabulary(parse(changed))).
		AnalyzeFirmware(fw, "/htdocs/cgibin"); err != nil {
		t.Fatal(err)
	}
	chSt := store.Stats()
	if chSt.Hits != warmSt.Hits {
		t.Fatalf("changed vocabulary got %d hits from the old vocabulary's summaries", chSt.Hits-warmSt.Hits)
	}
	if chSt.Misses == warmSt.Misses {
		t.Fatal("changed vocabulary recorded no misses — did it analyze at all?")
	}
}

// A custom vocabulary must not perturb the engine's determinism: the
// findings list is bit-identical at 1 and 8 workers.
func TestVocabularyDeterministicAcrossWorkers(t *testing.T) {
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	reports := make([]*dtaint.Report, 2)
	for i, workers := range []int{1, 8} {
		v, err := dtaint.ParseVocabulary([]byte(miniVocab), "mini.json")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := dtaint.New(dtaint.WithVocabulary(v), dtaint.WithParallelism(workers)).
			AnalyzeFirmware(fw, "/htdocs/cgibin")
		if err != nil {
			t.Fatal(err)
		}
		reports[i] = rep
	}
	a, b := reports[0], reports[1]
	if len(a.Findings) == 0 {
		t.Fatal("no findings to compare")
	}
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("worker counts disagree: %d vs %d findings", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		if a.Findings[i].String() != b.Findings[i].String() {
			t.Fatalf("finding %d differs across worker counts:\n  w1: %s\n  w8: %s",
				i, a.Findings[i], b.Findings[i])
		}
	}
}

// A custom sink with a length argument is sanitized by a bound check on
// that argument.
func TestCustomSinkLengthGuard(t *testing.T) {
	src := `
.arch arm
.import nvram_get
.import strlen
.import flash_write
.data key "cfg"

.func unchecked
  MOV R0, =key
  BL nvram_get
  MOV R4, R0
  MOV R0, #0
  MOV R1, R4
  BL strlen
  MOV R2, R0
  MOV R0, #0
  MOV R1, R4
  BL flash_write
  BX LR
.endfunc

.func checked
  MOV R0, =key
  BL nvram_get
  MOV R4, R0
  MOV R0, R4
  BL strlen
  MOV R5, R0
  CMP R5, #0x40
  BGE out
  MOV R0, #0
  MOV R1, R4
  MOV R2, R5
  BL flash_write
out:
  BX LR
.endfunc
`
	bin, err := asm.Assemble("vendor2", src)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := bin.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	a := dtaint.New(
		dtaint.WithReturningSource("nvram_get"),
		dtaint.WithSink("flash_write", dtaint.ClassBufferOverflow, 1, 2),
	)
	rep, err := a.AnalyzeExecutable(raw)
	if err != nil {
		t.Fatal(err)
	}
	var uncheckedHit, checkedHit bool
	for _, v := range rep.VulnerablePaths() {
		switch v.SinkFunc {
		case "unchecked":
			uncheckedHit = true
		case "checked":
			checkedHit = true
		}
	}
	if !uncheckedHit {
		for _, f := range rep.Findings {
			t.Logf("finding: %s", f)
		}
		t.Fatal("unchecked flash_write not reported")
	}
	if checkedHit {
		t.Fatal("length-checked flash_write reported")
	}
}

package dtaint

import (
	"errors"
	"strings"
	"testing"
)

const testScale = 0.05

func TestQuickstartFlow(t *testing.T) {
	data, err := GenerateStudyFirmware("DIR-645", testScale)
	if err != nil {
		t.Fatal(err)
	}
	a := New()
	rep, err := a.AnalyzeFirmware(data, "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Binary != "cgibin" || rep.Arch != "MIPS" {
		t.Fatalf("report header = %+v", rep)
	}
	vulns := rep.Vulnerabilities()
	if len(vulns) != 4 {
		for _, v := range vulns {
			t.Logf("vuln: %s", v)
		}
		t.Fatalf("vulnerabilities = %d, want 4", len(vulns))
	}
	if len(rep.VulnerablePaths()) != 7 {
		t.Fatalf("paths = %d, want 7", len(rep.VulnerablePaths()))
	}
	classes := map[Class]bool{}
	for _, v := range vulns {
		classes[v.Class] = true
		if v.Source == "" || v.SinkFunc == "" || len(v.Path) == 0 {
			t.Fatalf("incomplete finding: %+v", v)
		}
	}
	if !classes[ClassBufferOverflow] || !classes[ClassCommandInjection] {
		t.Fatalf("classes = %v", classes)
	}
}

func TestAnalyzeFirmwareAutoPick(t *testing.T) {
	data, err := GenerateStudyFirmware("DIR-890L", testScale)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New().AnalyzeFirmware(data, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Binary != "cgibin" {
		t.Fatalf("auto-picked %q", rep.Binary)
	}
}

func TestAnalyzeFirmwareErrors(t *testing.T) {
	if _, err := New().AnalyzeFirmware([]byte("garbage"), ""); err == nil {
		t.Fatal("garbage accepted")
	}
	data, err := GenerateStudyFirmware("DIR-645", testScale)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New().AnalyzeFirmware(data, "/no/such/bin"); !errors.Is(err, ErrNoBinary) {
		t.Fatalf("want ErrNoBinary, got %v", err)
	}
	if _, err := GenerateStudyFirmware("GHOST-9000", 1); err == nil {
		t.Fatal("unknown product accepted")
	}
	if _, err := New().AnalyzeExecutable([]byte("not fwelf")); err == nil {
		t.Fatal("bad executable accepted")
	}
}

func TestModuleFilterOption(t *testing.T) {
	data, err := GenerateStudyFirmware("IPC_6201", testScale)
	if err != nil {
		t.Fatal(err)
	}
	a := New(WithFunctionFilter(StudyModuleFilter("IPC_6201")))
	rep, err := a.AnalyzeFirmware(data, "/usr/bin/mwareserver")
	if err != nil {
		t.Fatal(err)
	}
	if rep.FunctionsAnalyzed >= rep.Functions {
		t.Fatalf("filter not applied: %d analyzed of %d", rep.FunctionsAnalyzed, rep.Functions)
	}
	if len(rep.Vulnerabilities()) != 1 {
		t.Fatalf("vulns = %d, want 1", len(rep.Vulnerabilities()))
	}
}

func TestAblationOptions(t *testing.T) {
	data, err := GenerateStudyFirmware("DS-2CD6233F", testScale)
	if err != nil {
		t.Fatal(err)
	}
	filter := StudyModuleFilter("DS-2CD6233F")
	full, err := New(WithFunctionFilter(filter)).AnalyzeFirmware(data, "/usr/bin/centaurus")
	if err != nil {
		t.Fatal(err)
	}
	noAlias, err := New(WithFunctionFilter(filter), WithoutAliasAnalysis()).
		AnalyzeFirmware(data, "/usr/bin/centaurus")
	if err != nil {
		t.Fatal(err)
	}
	noSim, err := New(WithFunctionFilter(filter), WithoutStructSimilarity()).
		AnalyzeFirmware(data, "/usr/bin/centaurus")
	if err != nil {
		t.Fatal(err)
	}
	if len(noAlias.Vulnerabilities()) >= len(full.Vulnerabilities()) {
		t.Fatal("alias ablation lost nothing")
	}
	if len(noSim.Vulnerabilities()) >= len(full.Vulnerabilities()) {
		t.Fatal("structsim ablation lost nothing")
	}
	if full.IndirectResolved == 0 || noSim.IndirectResolved != 0 {
		t.Fatalf("indirect resolution counts: full=%d noSim=%d",
			full.IndirectResolved, noSim.IndirectResolved)
	}
}

func TestOpenSSLHeartbleedPublic(t *testing.T) {
	raw, err := GenerateOpenSSL(testScale)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New().AnalyzeExecutable(raw)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, v := range rep.Vulnerabilities() {
		if v.SinkFunc == "tls1_process_heartbeat" && v.Sink == "memcpy" {
			found = true
		}
	}
	if !found {
		t.Fatal("Heartbleed not found through the public API")
	}
}

func TestStudyImagesList(t *testing.T) {
	imgs := StudyImages()
	if len(imgs) != 6 {
		t.Fatalf("study images = %d", len(imgs))
	}
	if imgs[0].Product != "DIR-645" || imgs[0].BinaryPath != "/htdocs/cgibin" {
		t.Fatalf("first image = %+v", imgs[0])
	}
	if imgs[5].Vendor != "Hikvision" || imgs[5].Arch != "ARM" {
		t.Fatalf("last image = %+v", imgs[5])
	}
}

func TestEmulationStudyShape(t *testing.T) {
	stats := EmulationStudy()
	if len(stats) != 8 {
		t.Fatalf("years = %d", len(stats))
	}
	total, emulable := 0, 0
	for _, s := range stats {
		total += s.Total
		emulable += s.Emulable
	}
	if total != 6529 || emulable != 670 {
		t.Fatalf("population %d/%d, want 6529/670", emulable, total)
	}
}

func TestSourcesSinksVocabulary(t *testing.T) {
	// Table I (8 sources, 9 sinks) plus the vocabulary extensions: 3
	// NVRAM getters, 3 printf-family sinks, 3 file-op sinks.
	if len(Sources()) != 11 || len(Sinks()) != 15 {
		t.Fatalf("vocabulary sizes: %d sources, %d sinks", len(Sources()), len(Sinks()))
	}
	// Returned slices are copies.
	Sources()[0] = "mutated"
	if Sources()[0] == "mutated" {
		t.Fatal("Sources leaks internal state")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Class: ClassCommandInjection, Sink: "system", SinkFunc: "handler",
		SinkAddr: 0x1000, Source: "getenv", Path: []string{"handler@0x1000(system)"},
	}
	s := f.String()
	for _, want := range []string{"VULNERABLE", "getenv", "system", "command-injection"} {
		if !strings.Contains(s, want) {
			t.Errorf("finding %q missing %q", s, want)
		}
	}
}

func TestWithStateBudgetAndLoopUnrolling(t *testing.T) {
	data, err := GenerateStudyFirmware("DIR-645", testScale)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := New(WithStateBudget(2, 256), WithLoopUnrolling(2)).
		AnalyzeFirmware(data, "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	if rep.FunctionsAnalyzed == 0 {
		t.Fatal("nothing analyzed under tight budget")
	}
}

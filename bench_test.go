// Benchmarks regenerating each table and figure of the paper's
// evaluation. Run all of them with:
//
//	go test -bench=. -benchmem
//
// The benchmarks use a reduced corpus scale so `go test -bench` stays
// fast; cmd/benchtab regenerates the same experiments at any scale with
// the paper's values printed side by side.
package dtaint_test

import (
	"io"
	"testing"

	"dtaint"
	"dtaint/internal/baseline"
	"dtaint/internal/bench"
	"dtaint/internal/cfg"
	"dtaint/internal/corpus"
	"dtaint/internal/dataflow"
	"dtaint/internal/emul"
	"dtaint/internal/image"
)

// benchScale shrinks the synthetic binaries' filler; detection results
// are scale-invariant.
const benchScale = 0.1

// BenchmarkFig1Emulation boots the 6,529-image population in the
// FIRMADYNE-style emulation model (Figure 1).
func BenchmarkFig1Emulation(b *testing.B) {
	images := corpus.Population()
	e := emul.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := e.Study(images)
		if len(stats) != 8 {
			b.Fatal("bad study")
		}
	}
}

// BenchmarkTable2Summary builds each study binary and recovers its CFG
// (the Table II measurement).
func BenchmarkTable2Summary(b *testing.B) {
	for _, spec := range corpus.StudyImages() {
		spec := spec
		b.Run(spec.Product, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bin, _, err := corpus.BuildBinary(spec, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cfg.Build(bin); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3Pipeline runs the full detection pipeline per study
// image (the Table III measurement).
func BenchmarkTable3Pipeline(b *testing.B) {
	for _, spec := range corpus.StudyImages() {
		spec := spec
		bin, planted, err := corpus.BuildBinary(spec, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(spec.Product, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := cfg.Build(bin)
				if err != nil {
					b.Fatal(err)
				}
				res, err := dataflow.Analyze(prog, dataflow.Options{Filter: corpus.ModuleFilter(spec)})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Vulnerabilities()) != len(planted) {
					b.Fatalf("found %d vulns, want %d", len(res.Vulnerabilities()), len(planted))
				}
			}
		})
	}
}

// BenchmarkTable4And5Detection verifies and times the re-discovery of
// every known CVE (Table IV) and zero-day (Table V) analog.
func BenchmarkTable4And5Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := bench.RunStudy(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if err := bench.Table4(io.Discard, runs); err != nil {
			b.Fatal(err)
		}
		if err := bench.Table5(io.Discard, runs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6Resources measures the pipeline's phases with memory
// accounting enabled (-benchmem reports the Table VI memory column).
func BenchmarkTable6Resources(b *testing.B) {
	spec, _ := corpus.SpecByProduct("DGN2200")
	bin, _, err := corpus.BuildBinary(spec, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog, err := cfg.Build(bin)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dataflow.Analyze(prog, dataflow.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7DTaint times DTaint's bottom-up data-flow generation on
// the four Table VII workloads.
func BenchmarkTable7DTaint(b *testing.B) {
	for _, product := range bench.Table7Workloads {
		product := product
		bin := table7Bin(b, product)
		b.Run(product, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := cfg.Build(bin)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dataflow.Analyze(prog, dataflow.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable7Baseline times the top-down context-sensitive baseline
// on the same workloads (bounded: the full exponential blowup is the
// phenomenon being measured, not a useful benchmark duration).
func BenchmarkTable7Baseline(b *testing.B) {
	for _, product := range bench.Table7Workloads {
		product := product
		bin := table7Bin(b, product)
		b.Run(product, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := cfg.Build(bin)
				if err != nil {
					b.Fatal(err)
				}
				res, err := baseline.Analyze(prog, baseline.Options{MaxAnalyses: 3000})
				if err != nil {
					b.Fatal(err)
				}
				if res.Analyses == 0 {
					b.Fatal("baseline did nothing")
				}
			}
		})
	}
}

func table7Bin(b *testing.B, product string) *image.Binary {
	b.Helper()
	if product == "openssl" {
		bin, err := corpus.OpenSSL(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		return bin
	}
	spec, ok := corpus.SpecByProduct(product)
	if !ok {
		b.Fatalf("unknown product %s", product)
	}
	bin, _, err := corpus.BuildBinary(spec, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return bin
}

// BenchmarkLoopHeuristic compares the paper's loop-once heuristic with
// bounded loop unrolling (a DESIGN.md ablation).
func BenchmarkLoopHeuristic(b *testing.B) {
	spec, _ := corpus.SpecByProduct("DS-2CD6233F")
	bin, _, err := corpus.BuildBinary(spec, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	filter := corpus.ModuleFilter(spec)
	run := func(b *testing.B, loopOnce bool) {
		for i := 0; i < b.N; i++ {
			prog, err := cfg.Build(bin)
			if err != nil {
				b.Fatal(err)
			}
			opts := dataflow.Options{Filter: filter}
			opts.Symexec.LoopOnce = loopOnce
			if !loopOnce {
				opts.Symexec.MaxLoopIters = 3
			}
			if _, err := dataflow.Analyze(prog, opts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("loop-once", func(b *testing.B) { run(b, true) })
	b.Run("unroll-3x", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblations measures the feature-ablated pipelines on the
// Hikvision image (alias / structure similarity off).
func BenchmarkAblations(b *testing.B) {
	spec, _ := corpus.SpecByProduct("DS-2CD6233F")
	bin, _, err := corpus.BuildBinary(spec, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	filter := corpus.ModuleFilter(spec)
	cases := []struct {
		name string
		opts dataflow.Options
	}{
		{"full", dataflow.Options{}},
		{"no-alias", dataflow.Options{DisableAlias: true}},
		{"no-structsim", dataflow.Options{DisableStructSim: true}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog, err := cfg.Build(bin)
				if err != nil {
					b.Fatal(err)
				}
				c.opts.Filter = filter
				if _, err := dataflow.Analyze(prog, c.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPublicAPI measures the whole public entry point: generate,
// unpack, and analyze a firmware image.
func BenchmarkPublicAPI(b *testing.B) {
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	a := dtaint.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := a.AnalyzeFirmware(fw, "/htdocs/cgibin")
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Vulnerabilities()) != 4 {
			b.Fatal("wrong vulnerability count")
		}
	}
}

// BenchmarkScreening measures the detector over the randomized screening
// corpus (precision/recall experiment).
func BenchmarkScreening(b *testing.B) {
	cases, err := corpus.ScreeningCorpus(40, 11)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			prog, err := cfg.Build(c.Binary)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dataflow.Analyze(prog, dataflow.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Cameraaudit: analyze the two large IP-camera binaries the way
// Section V-A does — restricted to their network-protocol modules — and
// demonstrate why the Hikvision zero-days need the paper's two headline
// analyses: pointer aliasing (Algorithm 1) and data-structure layout
// similarity.
package main

import (
	"fmt"
	"log"

	"dtaint"
)

func main() {
	// Uniview: RTSP module only (the paper manually extracts 430 of the
	// 6,714 functions).
	auditCamera("IPC_6201", "/usr/bin/mwareserver")
	fmt.Println()

	// Hikvision: RTSP/HTTP/ONVIF/ISAPI modules (3,233 of 14,035
	// functions), then the ablation study.
	auditCamera("DS-2CD6233F", "/usr/bin/centaurus")
	fmt.Println()
	ablate("DS-2CD6233F", "/usr/bin/centaurus")
}

func auditCamera(product, binPath string) {
	fw, err := dtaint.GenerateStudyFirmware(product, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	analyzer := dtaint.New(dtaint.WithFunctionFilter(dtaint.StudyModuleFilter(product)))
	rep, err := analyzer.AnalyzeFirmware(fw, binPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (%s): %d functions total, %d in the network module\n",
		product, rep.Arch, rep.Functions, rep.FunctionsAnalyzed)
	fmt.Printf("  %d sink sites, %d indirect calls resolved by layout similarity\n",
		rep.SinkCount, rep.IndirectResolved)
	for _, v := range rep.Vulnerabilities() {
		fmt.Println("  ", v)
	}
	fmt.Printf("  %d vulnerabilities over %d paths in %v\n",
		len(rep.Vulnerabilities()), len(rep.VulnerablePaths()),
		(rep.SSATime + rep.DDGTime).Round(1e6))
}

func ablate(product, binPath string) {
	fw, err := dtaint.GenerateStudyFirmware(product, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	filter := dtaint.StudyModuleFilter(product)
	configs := []struct {
		name string
		opts []dtaint.Option
	}{
		{"full pipeline", nil},
		{"without pointer aliasing", []dtaint.Option{dtaint.WithoutAliasAnalysis()}},
		{"without struct similarity", []dtaint.Option{dtaint.WithoutStructSimilarity()}},
	}
	fmt.Println("Hikvision ablations (the paper: three URL-parameter overflows \"are")
	fmt.Println("associated with pointer alias and the similarity of data structure\"):")
	for _, c := range configs {
		opts := append([]dtaint.Option{dtaint.WithFunctionFilter(filter)}, c.opts...)
		rep, err := dtaint.New(opts...).AnalyzeFirmware(fw, binPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-27s %d vulnerabilities, %d paths\n",
			c.name+":", len(rep.Vulnerabilities()), len(rep.VulnerablePaths()))
	}
}

// Routeraudit: audit the four router firmware images of the study
// (two D-Link, two Netgear) the way Section V-A does — unpack each image,
// analyze its CGI/web binary, and tabulate vulnerable paths and
// vulnerabilities per image, distinguishing command injections from
// buffer overflows.
package main

import (
	"fmt"
	"log"

	"dtaint"
)

var routers = []string{"DIR-645", "DIR-890L", "DGN1000", "DGN2200"}

func main() {
	analyzer := dtaint.New()
	fmt.Println("Router firmware audit (synthetic study images, scale 0.25)")
	fmt.Println()
	fmt.Println("Product    Binary      Funcs  Sinks  Paths  Vulns  CmdInj  Overflow  Time")

	totalVulns := 0
	for _, img := range dtaint.StudyImages() {
		if !contains(routers, img.Product) {
			continue
		}
		fw, err := dtaint.GenerateStudyFirmware(img.Product, 0.25)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := analyzer.AnalyzeFirmware(fw, img.BinaryPath)
		if err != nil {
			log.Fatal(err)
		}
		vulns := rep.Vulnerabilities()
		cmd, ovf := 0, 0
		for _, v := range vulns {
			switch v.Class {
			case dtaint.ClassCommandInjection:
				cmd++
			case dtaint.ClassBufferOverflow:
				ovf++
			}
		}
		totalVulns += len(vulns)
		fmt.Printf("%-9s  %-10s  %5d  %5d  %5d  %5d  %6d  %8d  %v\n",
			img.Product, img.Binary, rep.FunctionsAnalyzed, rep.SinkCount,
			len(rep.VulnerablePaths()), len(vulns), cmd, ovf,
			(rep.SSATime + rep.DDGTime).Round(1e6))
	}
	fmt.Printf("\ntotal vulnerabilities across the four routers: %d (paper: 14)\n", totalVulns)

	// Show one report in detail: the DIR-890L SOAPAction injection
	// (CVE-2015-2051), which the paper describes as reachable from three
	// handlers.
	fw, err := dtaint.GenerateStudyFirmware("DIR-890L", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := analyzer.AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nDIR-890L command-injection paths (CVE-2015-2051 analog):")
	for _, f := range rep.VulnerablePaths() {
		if f.Class == dtaint.ClassCommandInjection {
			fmt.Println(" ", f)
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

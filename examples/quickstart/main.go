// Quickstart: generate a synthetic D-Link DIR-645 firmware image, unpack
// it, and run the full DTaint pipeline over its cgibin binary — the
// smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"dtaint"
)

func main() {
	// Generate the DIR-645 study image (scale 0.25 keeps this instant;
	// the planted vulnerabilities are present at every scale).
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("firmware image: %d bytes\n", len(fw))

	// Analyze the CGI binary inside the image.
	analyzer := dtaint.New()
	report, err := analyzer.AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("binary %s (%s): %d functions, %d basic blocks, %d call edges\n",
		report.Binary, report.Arch, report.Functions, report.Blocks, report.CallEdges)
	fmt.Printf("pipeline: symbolic analysis %v, interprocedural data flow %v\n\n",
		report.SSATime, report.DDGTime)

	fmt.Println("vulnerabilities (deduplicated by sink):")
	for _, v := range report.Vulnerabilities() {
		fmt.Println(" ", v)
	}
	fmt.Printf("\n%d vulnerabilities over %d vulnerable paths\n",
		len(report.Vulnerabilities()), len(report.VulnerablePaths()))
	fmt.Println("\n(the DIR-645 analogs: CVE-2013-7389 x2, CVE-2016-5681, and one zero-day injection)")
}

// Heartbleed: reproduce the paper's Section II-B motivating example.
//
// The OpenSSL-like binary contains the inlined n2s macro (two byte loads
// assembling a 16-bit length from network data) inside
// tls1_process_heartbeat, with the record buffer filled by recv() two
// functions away in ssl3_read_n. At the binary level the source macro is
// invisible — the paper notes state-of-the-art static taint analyses miss
// it — but the interprocedural data-flow pass connects
// deref(deref(s+0x58)) across the call chain and flags the memcpy whose
// length is attacker-controlled and unchecked.
package main

import (
	"fmt"
	"log"
	"strings"

	"dtaint"
)

func main() {
	raw, err := dtaint.GenerateOpenSSL(0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("openssl-like binary: %d bytes\n\n", len(raw))

	report, err := dtaint.New().AnalyzeExecutable(raw)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed %d functions in %v\n\n",
		report.FunctionsAnalyzed, report.SSATime+report.DDGTime)

	var hits []dtaint.Finding
	for _, v := range report.Vulnerabilities() {
		if v.SinkFunc == "tls1_process_heartbeat" {
			hits = append(hits, v)
		}
	}
	if len(hits) == 0 {
		log.Fatal("Heartbleed not detected — reproduction broken")
	}
	fmt.Println("Heartbleed detected:")
	for _, v := range hits {
		fmt.Println(" ", v)
	}
	fmt.Println()
	fmt.Println("data path (paper Figure 3):")
	fmt.Println("  ssl3_read_bytes -> ssl3_read_n: recv() taints deref(deref(s+0x58))")
	fmt.Println("  tls1_process_heartbeat: n2s (two LDRB + ORR/LSL) reads the tainted length")
	fmt.Println("  memcpy(bp, pl, payload) with no `payload <= len(p1)` constraint")

	// Counter-check: other memcpy sites in the filler are not reported.
	benign := 0
	for _, f := range report.Findings {
		if f.Sink == "memcpy" && !strings.Contains(f.SinkFunc, "heartbeat") && !f.Sanitized {
			benign++
		}
	}
	fmt.Printf("\nfalse memcpy reports outside the heartbeat handler: %d\n", benign)
}

package dtaint_test

import (
	"fmt"
	"log"

	"dtaint"
)

// The smallest end-to-end use: generate a study image, analyze its CGI
// binary, print the deduplicated vulnerabilities.
func Example() {
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		log.Fatal(err)
	}
	report, err := dtaint.New().AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d vulnerabilities over %d paths\n",
		len(report.Vulnerabilities()), len(report.VulnerablePaths()))
	for _, v := range report.Vulnerabilities() {
		fmt.Printf("%s: %s -> %s in %s\n", v.CWE(), v.Source, v.Sink, v.SinkFunc)
	}
	// Output:
	// 4 vulnerabilities over 7 paths
	// CWE-121: getenv -> sprintf in cgi_ck_fmt_cookie
	// CWE-78: getenv -> system in cgi_pg_exec
	// CWE-121: read -> strncpy in cgi_pw_copy_field
	// CWE-121: getenv -> strcpy in cgi_ss_save_session
}

// Restricting analysis to a module and disabling individual analyses
// (ablation switches).
func ExampleNew() {
	fw, err := dtaint.GenerateStudyFirmware("IPC_6201", 0.05)
	if err != nil {
		log.Fatal(err)
	}
	analyzer := dtaint.New(
		dtaint.WithFunctionFilter(dtaint.StudyModuleFilter("IPC_6201")),
		dtaint.WithParallelism(2),
	)
	report, err := analyzer.AnalyzeFirmware(fw, "/usr/bin/mwareserver")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d vulnerability in the RTSP module\n", len(report.Vulnerabilities()))
	// Output:
	// 1 vulnerability in the RTSP module
}

// Extending the Table I vocabulary with vendor-specific sources and
// sinks.
func ExampleWithSink() {
	// nvram_get returns attacker-influenced configuration; flash_write's
	// second argument must not carry unbounded tainted data.
	analyzer := dtaint.New(
		dtaint.WithReturningSource("nvram_get"),
		dtaint.WithSink("flash_write", dtaint.ClassBufferOverflow, 1, 2),
	)
	_ = analyzer
	fmt.Println("vocabulary extended")
	// Output:
	// vocabulary extended
}

// The Section II-A emulation study over the synthetic population.
func ExampleEmulationStudy() {
	total, emulable := 0, 0
	for _, year := range dtaint.EmulationStudy() {
		total += year.Total
		emulable += year.Emulable
	}
	fmt.Printf("%d of %d images boot in the emulator\n", emulable, total)
	// Output:
	// 670 of 6529 images boot in the emulator
}

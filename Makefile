# Tier-1 verify is `make test`; `make check` adds gofmt, vet, the
# race-enabled run that guards the parallel SCC-DAG scheduler and the
# fleet orchestrator, and the dtaintd smoke test.

.PHONY: build test check bench smoke

build:
	go build ./...

test: build
	go test ./...

check:
	./scripts/check.sh

smoke:
	./scripts/smoke.sh

bench:
	go test -bench=. -benchmem

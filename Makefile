# Tier-1 verify is `make test`; `make check` adds gofmt, vet, the
# dtaintlint contract rules, the race-enabled run that guards the
# parallel SCC-DAG scheduler and the fleet orchestrator, the
# screening-corpus precision/recall gate, and the dtaintd smoke test.

.PHONY: build test check lint bench smoke trace

build:
	go build ./...

test: build
	go test ./...

# lint runs the repo-specific rules: unordered map iteration in
# determinism-critical code, nil-guarded calls on nil-safe obs handles,
# unversioned serialization, hard-coded vocabulary names, and
# string-keyed identity over interned SSE nodes. gofmt and vet run
# under `make check`.
lint:
	go run ./cmd/dtaintlint .

check:
	./scripts/check.sh

smoke:
	./scripts/smoke.sh

bench:
	go test -bench=. -benchmem

# trace analyzes a study image with the span tracer attached and leaves
# trace.json in the repo root — load it in ui.perfetto.dev or
# chrome://tracing to see the pipeline stages and per-function spans.
trace:
	go run ./cmd/fwgen -out /tmp/dtaint-trace-corpus -product DIR-645 -scale 0.10
	go run ./cmd/dtaint -fw /tmp/dtaint-trace-corpus/DIR-645.fwimg \
		-bin /htdocs/cgibin -trace-out trace.json -progress
	@echo "trace: wrote trace.json (open in ui.perfetto.dev)"

# Tier-1 verify is `make test`; `make check` adds vet and the
# race-enabled run that guards the parallel SCC-DAG scheduler.

.PHONY: build test check bench

build:
	go build ./...

test: build
	go test ./...

check:
	./scripts/check.sh

bench:
	go test -bench=. -benchmem

// Command logcheck validates a dtaint/dtaintd structured log stream:
// it reads stdin, skips lines that are not JSON (plain-stdout banners,
// curl noise), requires every JSON line to parse, and asserts that at
// least one "stage done" line was logged for each pipeline stage named
// in -stages. The smoke test pipes the dtaintd log through it, so a
// regression that drops per-stage logging (or emits malformed JSON)
// fails scripts/check.sh.
//
//	dtaintd -log-format json -log-level debug ... 2>&1 | logcheck
//	logcheck -stages parse-image,build-cfg < dtaintd.log
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

const defaultStages = "parse-image,build-cfg,function-analysis,structsim,interproc-dataflow"

func main() {
	stages := flag.String("stages", defaultStages, "comma-separated stages that must each log at least one line")
	flag.Parse()
	if err := run(os.Stdin, strings.Split(*stages, ",")); err != nil {
		fmt.Fprintln(os.Stderr, "logcheck:", err)
		os.Exit(1)
	}
}

func run(r *os.File, stages []string) error {
	seen := map[string]int{}
	jsonLines := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] != '{' {
			continue // server banner, curl output, etc.
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("malformed JSON log line %q: %v", line, err)
		}
		jsonLines++
		if stage, ok := rec["stage"].(string); ok && rec["msg"] == "stage done" {
			seen[stage]++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if jsonLines == 0 {
		return fmt.Errorf("no JSON log lines on stdin")
	}
	var missing []string
	for _, s := range stages {
		if s = strings.TrimSpace(s); s != "" && seen[s] == 0 {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("no \"stage done\" line for: %s (saw %v over %d JSON lines)",
			strings.Join(missing, ", "), seen, jsonLines)
	}
	fmt.Printf("logcheck: OK (%d JSON lines; stages %v)\n", jsonLines, seen)
	return nil
}

// Command vocabcheck validates vocabulary specs end to end: the JSON
// layer (parse + schema validation with line-precise errors) and the
// engine layer (compilation into dispatch models, which classifies
// shapes the schema alone cannot reject). With no arguments it checks
// the embedded default vocabulary and asserts the invariants the
// pipeline relies on — at least one source, and every finding class
// backed by at least one sink. scripts/check.sh runs it so a bad edit
// to internal/vocab/default.json fails `make check` with the precise
// error instead of panicking the first analysis.
//
//	vocabcheck                # validate the embedded default
//	vocabcheck vendor.json    # validate a custom spec file
package main

import (
	"flag"
	"fmt"
	"os"

	"dtaint/internal/taint"
	"dtaint/internal/vocab"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vocabcheck [spec.json ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	ok := true
	if flag.NArg() == 0 {
		// The embedded default is parsed at package init; reaching this
		// line means it decoded. Re-validate the semantic invariants and
		// compile it.
		ok = check("embedded default", vocab.Default(), true)
	}
	for _, path := range flag.Args() {
		spec, err := vocab.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vocabcheck:", err)
			ok = false
			continue
		}
		ok = check(path, spec, false) && ok
	}
	if !ok {
		os.Exit(1)
	}
}

// check compiles a parsed spec and, for the default, asserts the
// pipeline's coverage invariants.
func check(name string, spec *vocab.Spec, isDefault bool) bool {
	v, err := taint.CompileVocabulary(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vocabcheck: %s: %v\n", name, err)
		return false
	}
	sources, sinks := v.SourceNames(), v.SinkNames()
	if isDefault {
		if len(sources) == 0 {
			fmt.Fprintf(os.Stderr, "vocabcheck: %s declares no sources\n", name)
			return false
		}
		classes := map[string]bool{}
		for i := range spec.Functions {
			if spec.Functions[i].Kind == vocab.KindSink {
				classes[spec.Functions[i].Class] = true
			}
		}
		for _, c := range []string{
			vocab.ClassBufferOverflow, vocab.ClassCommandInjection,
			vocab.ClassFormatString, vocab.ClassPathTraversal,
		} {
			if !classes[c] {
				fmt.Fprintf(os.Stderr, "vocabcheck: %s has no %q sink\n", name, c)
				return false
			}
		}
	}
	fmt.Printf("vocabcheck: %s ok: %d functions (%d sources, %d sinks), fingerprint %s\n",
		name, len(spec.Functions), len(sources), len(sinks), v.Fingerprint())
	return true
}

#!/bin/sh
# check.sh — the repository's full verification gate.
#
# Runs the tier-1 verify (build + tests) plus go vet and a race-enabled
# test pass, so the parallel bottom-up scheduler is always race-checked.
# Invoked by `make check`; keep CI and local runs on this single path.
set -eu

cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

echo ">> go test -race ./..."
go test -race ./...

echo "check: OK"

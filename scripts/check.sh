#!/bin/sh
# check.sh — the repository's full verification gate.
#
# Runs the tier-1 verify (build + tests) plus gofmt, go vet, the
# repo-specific dtaintlint rules (determinism + nil-safe obs handles), a
# race-enabled test pass (so the parallel bottom-up scheduler and the
# fleet orchestrator are always race-checked), the screening-corpus
# precision/recall gate, and the dtaintd smoke test. Invoked by
# `make check`; keep CI and local runs on this single path.
set -eu

cd "$(dirname "$0")/.."

echo ">> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: these files need formatting:"
	echo "$unformatted"
	exit 1
fi

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

echo ">> dtaintlint ."
go run ./cmd/dtaintlint .

echo ">> go test -race ./..."
go test -race ./...

echo ">> benchtab -screen (precision/recall gate)"
go run ./cmd/benchtab -screen -min-precision 1 -min-recall 1 -bench-out off

echo ">> scripts/smoke.sh"
./scripts/smoke.sh

echo "check: OK"

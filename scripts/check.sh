#!/bin/sh
# check.sh — the repository's full verification gate.
#
# Runs the tier-1 verify (build + tests) plus gofmt, go vet, the
# repo-specific dtaintlint rules (determinism + nil-safe obs handles +
# versioned serialization + no hard-coded vocabulary names + no
# string-keyed identity over interned SSE nodes), the
# vocabulary spec check (the embedded default must parse, validate,
# compile, and cover every finding class), a race-enabled test pass (so the parallel
# bottom-up scheduler and the fleet orchestrator are always
# race-checked), the screening-corpus precision/recall gate, a small
# cold-then-warm corpus pass (warm re-scan must be faster, replay its
# summaries entirely from the store, and report identical findings), and
# the dtaintd smoke test. Invoked by `make check`; keep CI and local
# runs on this single path. The diff gate re-scans a vendor re-release
# differentially and fails when the replay skip rate drops (the counters
# are exact for the generated pair, so the threshold is deterministic).
set -eu

cd "$(dirname "$0")/.."

echo ">> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: these files need formatting:"
	echo "$unformatted"
	exit 1
fi

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

echo ">> dtaintlint ."
go run ./cmd/dtaintlint .

echo ">> vocabcheck (embedded default vocabulary)"
go run ./scripts/vocabcheck internal/vocab/default.json
go run ./scripts/vocabcheck

echo ">> go test -race ./..."
go test -race ./...

echo ">> benchtab -screen (precision/recall gate)"
go run ./cmd/benchtab -screen -min-precision 1 -min-recall 1 -bench-out off

echo ">> benchtab -corpus (cold/warm summary-store gate)"
go run ./cmd/benchtab -corpus -corpus-scale 0.05 -min-corpus-speedup 2 -min-corpus-hits 1 -bench-out off

echo ">> benchtab -diff (differential re-scan skip-rate gate)"
go run ./cmd/benchtab -diff -diff-scale 0.25 -min-diff-skip 0.6 -bench-out off

echo ">> scripts/smoke.sh"
./scripts/smoke.sh

echo "check: OK"

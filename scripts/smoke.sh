#!/bin/sh
# smoke.sh — end-to-end smoke test of the dtaintd scan service.
#
# Builds dtaintd, generates a small study firmware image, starts the
# server on an ephemeral port with JSON structured logging, POSTs the
# image to /v1/scan, polls the job until it is done, and asserts the
# report finds at least one vulnerability, /v1/metrics speaks
# Prometheus text to a text/plain client, and the log stream contains a
# valid JSON line for every pipeline stage (scripts/logcheck). It then
# POSTs the image against itself to /v1/diff: with the cache warmed by
# the scan, the self-diff must replay everything (zero re-analyses) and
# report zero new findings. Along the way it watches the scan live over
# the SSE event stream (ordered ids, progress events, a terminal
# job.done), probes /healthz and /readyz, and finally SIGTERMs the
# server and asserts /readyz flips to 503 during the drain window.
# Invoked by `make smoke` and by scripts/check.sh.
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
pid=""
cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo ">> smoke: build dtaintd and logcheck"
go build -o "$tmp/dtaintd" ./cmd/dtaintd
go build -o "$tmp/logcheck" ./scripts/logcheck

echo ">> smoke: generate firmware"
go run ./cmd/fwgen -out "$tmp/corpus" -product DIR-645 -scale 0.05 >/dev/null

echo ">> smoke: start dtaintd on an ephemeral port"
"$tmp/dtaintd" -addr 127.0.0.1:0 -cache-dir "$tmp/cache" \
	-drain-notice 3s \
	-log-format json -log-level debug >"$tmp/dtaintd.log" 2>&1 &
pid=$!

# The server prints "dtaintd: listening on http://HOST:PORT" once the
# listener is up; wait for that line to learn the chosen port.
base=""
for _ in $(seq 1 50); do
	base=$(sed -n 's/^dtaintd: listening on \(http:\/\/[^ ]*\)$/\1/p' "$tmp/dtaintd.log")
	[ -n "$base" ] && break
	kill -0 "$pid" 2>/dev/null || { cat "$tmp/dtaintd.log"; echo "smoke: server died"; exit 1; }
	sleep 0.1
done
[ -n "$base" ] || { cat "$tmp/dtaintd.log"; echo "smoke: server never came up"; exit 1; }

echo ">> smoke: /healthz and /readyz answer 200"
[ "$(curl -s -o /dev/null -w '%{http_code}' "$base/healthz")" = "200" ] ||
	{ echo "smoke: /healthz not 200"; exit 1; }
[ "$(curl -s -o /dev/null -w '%{http_code}' "$base/readyz")" = "200" ] ||
	{ echo "smoke: /readyz not 200"; exit 1; }

echo ">> smoke: POST /v1/scan ($base)"
resp=$(curl -sf -X POST --data-binary @"$tmp/corpus/DIR-645.fwimg" "$base/v1/scan")
id=$(printf '%s' "$resp" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "smoke: no job id in response: $resp"; exit 1; }

# Watch the scan live: the per-job SSE stream closes itself after the
# terminal event, so this curl exits with the job.
echo ">> smoke: open SSE stream for $id"
curl -sN --max-time 60 "$base/v1/jobs/$id/events" >"$tmp/events.sse" &
ssepid=$!

echo ">> smoke: poll job $id"
state=""
for _ in $(seq 1 100); do
	state=$(curl -sf "$base/v1/jobs/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
	case "$state" in
	done | failed) break ;;
	esac
	sleep 0.1
done
[ "$state" = "done" ] || { echo "smoke: job ended in state '$state'"; exit 1; }

echo ">> smoke: SSE stream carries ordered progress and a terminal job.done"
wait "$ssepid" || { echo "smoke: SSE curl failed"; exit 1; }
ids=$(sed -n 's/^id: \([0-9]*\).*/\1/p' "$tmp/events.sse")
[ -n "$ids" ] || { echo "smoke: SSE stream carried no event ids"; exit 1; }
printf '%s\n' "$ids" | sort -n -c 2>/dev/null ||
	{ echo "smoke: SSE event ids out of order"; exit 1; }
grep -q '^event: progress$' "$tmp/events.sse" ||
	{ echo "smoke: no progress event in SSE stream"; exit 1; }
last_event=$(sed -n 's/^event: \(.*\)$/\1/p' "$tmp/events.sse" | tail -1)
[ "$last_event" = "job.done" ] ||
	{ echo "smoke: SSE stream ended with '$last_event', want job.done"; exit 1; }

echo ">> smoke: fetch report"
report=$(curl -sf "$base/v1/jobs/$id/report")
vulns=$(printf '%s' "$report" | sed -n 's/.*"vulnerabilities": *\([0-9]*\).*/\1/p')
[ -n "$vulns" ] || { echo "smoke: no vulnerability count in report"; exit 1; }
[ "$vulns" -ge 1 ] || { echo "smoke: expected >=1 vulnerability, got $vulns"; exit 1; }

echo ">> smoke: POST /v1/diff (image against itself, warmed cache)"
dresp=$(curl -sf -X POST -F old=@"$tmp/corpus/DIR-645.fwimg" -F new=@"$tmp/corpus/DIR-645.fwimg" "$base/v1/diff")
did=$(printf '%s' "$dresp" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$did" ] || { echo "smoke: no diff job id in response: $dresp"; exit 1; }

echo ">> smoke: poll diff job $did"
state=""
for _ in $(seq 1 100); do
	state=$(curl -sf "$base/v1/jobs/$did" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
	case "$state" in
	done | failed) break ;;
	esac
	sleep 0.1
done
[ "$state" = "done" ] || { echo "smoke: diff job ended in state '$state'"; exit 1; }

dreport=$(curl -sf "$base/v1/jobs/$did/report")
reanalyzed=$(printf '%s' "$dreport" | sed -n 's/.*"reanalyzed": *\([0-9]*\).*/\1/p')
newfound=$(printf '%s' "$dreport" | sed -n 's/.*"newFindings": *\([0-9]*\).*/\1/p')
[ "$reanalyzed" = "0" ] || { echo "smoke: self-diff re-analyzed $reanalyzed binaries, want 0"; exit 1; }
[ "$newfound" = "0" ] || { echo "smoke: self-diff reported $newfound new findings, want 0"; exit 1; }

curl -sf "$base/v1/metrics" >/dev/null

echo ">> smoke: /v1/metrics speaks Prometheus text"
promtext=$(curl -sf -H 'Accept: text/plain' "$base/v1/metrics")
printf '%s' "$promtext" | grep -q '^# TYPE dtaintd_jobs_done_total counter' ||
	{ echo "smoke: no Prometheus exposition:"; printf '%s\n' "$promtext" | head -5; exit 1; }
printf '%s' "$promtext" | grep -q '^dtaint_diff_binaries_replayed_total' ||
	{ echo "smoke: no diff counters in Prometheus exposition"; exit 1; }

echo ">> smoke: SIGTERM flips /readyz to 503 during the drain window"
kill -TERM "$pid"
drain=""
for _ in $(seq 1 20); do
	drain=$(curl -s -o /dev/null -w '%{http_code}' "$base/readyz" || true)
	[ "$drain" = "503" ] && break
	sleep 0.1
done
[ "$drain" = "503" ] || { echo "smoke: draining /readyz answered '$drain', want 503"; exit 1; }
wait "$pid" || true
pid=""

echo ">> smoke: one JSON log line per pipeline stage"
"$tmp/logcheck" <"$tmp/dtaintd.log"

echo "smoke: OK ($vulns vulnerabilities reported)"

package dtaint

import (
	"context"
	"time"

	"dtaint/internal/fleet"
	"dtaint/internal/sumstore"
)

// This file is the public face of the fleet-scale scanning subsystem
// (internal/fleet): whole-image scans over a bounded worker pool with a
// content-addressed report cache, the workload shape of the paper's
// evaluation (six study images, 115 binaries; a 6,529-image population).

// BinaryStatus classifies one binary's outcome in an image scan.
type BinaryStatus string

// Binary scan outcomes.
const (
	// BinaryOK: analyzed fresh in this run.
	BinaryOK BinaryStatus = "ok"
	// BinaryCached: report served from the content-addressed cache.
	BinaryCached BinaryStatus = "cached"
	// BinaryFailed: the analysis errored or panicked.
	BinaryFailed BinaryStatus = "failed"
	// BinaryTimeout: the per-binary deadline elapsed.
	BinaryTimeout BinaryStatus = "timeout"
	// BinaryStalled: the stall watchdog (WithFleetStallTimeout) fired and
	// the in-flight analysis was abandoned — reported distinctly so a
	// killed analysis never reads as an empty success.
	BinaryStalled BinaryStatus = "stalled"
	// BinarySkipped: the scan was cancelled before this binary started.
	BinarySkipped BinaryStatus = "skipped"
)

// BinaryScan is one rootfs executable's entry in an ImageReport.
type BinaryScan struct {
	// Path is the executable's rootfs path.
	Path string
	// SHA256 is the hex digest of the binary bytes.
	SHA256 string
	Status BinaryStatus
	// Error describes a failed, timed-out, or skipped scan.
	Error string
	// Duration is the wall-clock this run spent on the binary (zero for
	// cache hits and skips).
	Duration time.Duration
	// Report is the full per-binary report; nil unless Status is
	// BinaryOK or BinaryCached.
	Report *Report
}

// CacheStats snapshots the fleet report cache's counters.
type CacheStats struct {
	// Hits counts lookups served from memory or disk; DiskHits is the
	// subset read from the persistent tier.
	Hits     uint64
	DiskHits uint64
	// Misses counts lookups that forced a fresh analysis.
	Misses uint64
	// Evictions counts in-memory LRU entries dropped under pressure.
	Evictions uint64
	// Entries is the current in-memory entry count.
	Entries int
}

// ImageReport aggregates a whole firmware image's scan: identity from
// the container header, per-binary reports in rootfs path order, and
// Table VI-style totals. Timings aside, it is identical for every
// worker count.
type ImageReport struct {
	Vendor  string
	Product string
	Version string
	Year    int
	Arch    string

	// Candidates is how many rootfs files looked like executables;
	// Scanned/Cached/Failed/Stalled/Skipped partition them by outcome.
	Candidates int
	Scanned    int
	Cached     int
	Failed     int
	Stalled    int
	Skipped    int

	// Vulnerabilities and VulnerablePaths are totals over all analyzed
	// binaries (deduplicated per binary by sink location).
	Vulnerabilities int
	VulnerablePaths int
	// FindingsByClass counts deduplicated vulnerabilities per class.
	FindingsByClass map[Class]int

	// Workers is the orchestrator pool size; Wall the whole-image time.
	Workers int
	Wall    time.Duration

	Binaries []BinaryScan

	// Cache is the report cache's counters when the scan finished (zero
	// when the scan ran uncached).
	Cache CacheStats

	// Runtime snapshots the Go runtime (heap, goroutines, GC) when the
	// scan finished.
	Runtime RuntimeStats
}

// FleetCache is a process-wide content-addressed report cache shared
// across image scans: key = SHA-256(binary bytes) + analyzer-options
// fingerprint. Fleets of firmware images share binaries heavily (every
// image ships busybox; the same daemons recur across models), so a
// shared cache collapses a fleet scan to one analysis per distinct
// binary. Safe for concurrent use.
type FleetCache struct {
	c *fleet.Cache
}

// NewFleetCache returns a cache holding at most maxEntries reports in
// memory (<= 0 selects a default). A non-empty dir adds a persistent
// on-disk tier that survives process restarts.
func NewFleetCache(maxEntries int, dir string) (*FleetCache, error) {
	c, err := fleet.NewCache(maxEntries, dir)
	if err != nil {
		return nil, err
	}
	return &FleetCache{c: c}, nil
}

// Stats returns the cache's counters.
func (c *FleetCache) Stats() CacheStats {
	st := c.c.Stats()
	return CacheStats{
		Hits:      st.Hits,
		DiskHits:  st.DiskHits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Entries:   st.Entries,
	}
}

// SummaryStore is a process-wide content-addressed store of per-function
// analysis summaries, shared across scans: key = fingerprint of the
// function's bytes, ISA, and the analysis-options version. Where the
// FleetCache collapses duplicate binaries, the SummaryStore collapses
// duplicate functions across distinct binaries — firmware fleets reuse
// the same SDK and libc code in binary after binary, so each unique
// function is symbolically executed once per corpus. Results are
// bit-identical with and without a store. Safe for concurrent use.
type SummaryStore struct {
	s *sumstore.Store
}

// NewSummaryStore returns a store holding at most maxEntries summaries
// in memory (<= 0 selects a default). A non-empty dir adds a persistent
// on-disk tier that survives process restarts.
func NewSummaryStore(maxEntries int, dir string) (*SummaryStore, error) {
	s, err := sumstore.NewStore(maxEntries, dir)
	if err != nil {
		return nil, err
	}
	return &SummaryStore{s: s}, nil
}

// SummaryStoreStats snapshots a summary store's counters.
type SummaryStoreStats struct {
	// Hits counts lookups served from memory or disk; DiskHits is the
	// subset read from the persistent tier.
	Hits     uint64
	DiskHits uint64
	// Misses counts lookups that forced a fresh symbolic execution.
	Misses uint64
	// Evictions counts in-memory LRU entries dropped under pressure.
	Evictions uint64
	// Entries is the current in-memory entry count.
	Entries int
}

// Stats returns the store's counters.
func (s *SummaryStore) Stats() SummaryStoreStats {
	st := s.s.Stats()
	return SummaryStoreStats{
		Hits:      st.Hits,
		DiskHits:  st.DiskHits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Entries:   st.Entries,
	}
}

// FleetOption configures an image scan beyond the Analyzer's own
// options.
type FleetOption func(*fleetConfig)

type fleetConfig struct {
	workers      int
	timeout      time.Duration
	cache        *FleetCache
	sumStore     *SummaryStore
	pathFilter   func(string) bool
	filterTag    string
	progress     func(done, total int)
	stallTimeout time.Duration
	debugDir     string
}

// WithFleetWorkers bounds how many binaries are analyzed concurrently
// (0 = GOMAXPROCS). Per-binary analysis parallelism is set separately
// via WithParallelism on the Analyzer and defaults to 1 inside a fleet
// scan.
func WithFleetWorkers(n int) FleetOption {
	return func(c *fleetConfig) { c.workers = n }
}

// WithFleetTimeout caps each binary's analysis wall-clock; timed-out
// binaries are reported as BinaryTimeout without failing the image.
func WithFleetTimeout(d time.Duration) FleetOption {
	return func(c *fleetConfig) { c.timeout = d }
}

// WithFleetCache attaches a shared report cache to the scan.
func WithFleetCache(cache *FleetCache) FleetOption {
	return func(c *fleetConfig) { c.cache = cache }
}

// WithFleetSummaryStore attaches a shared function-summary store to the
// scan: binaries that share code (same SDK, same libc) re-use each
// other's per-function analysis results.
func WithFleetSummaryStore(store *SummaryStore) FleetOption {
	return func(c *fleetConfig) { c.sumStore = store }
}

// WithFleetPathFilter restricts the scan to rootfs paths for which keep
// returns true (e.g. only /usr/sbin daemons).
func WithFleetPathFilter(keep func(path string) bool) FleetOption {
	return func(c *fleetConfig) { c.pathFilter = keep }
}

// WithFleetFilterTag names the Analyzer's function filter for cache-key
// purposes. Function values cannot be fingerprinted, so a scan whose
// Analyzer has a filter set bypasses the cache unless a tag identifies
// the filter; two scans with the same tag are assumed to use the same
// filter.
func WithFleetFilterTag(tag string) FleetOption {
	return func(c *fleetConfig) { c.filterTag = tag }
}

// WithFleetProgress registers a callback invoked after each binary
// completes with the running done count and the candidate total. Calls
// are serialized.
func WithFleetProgress(fn func(done, total int)) FleetOption {
	return func(c *fleetConfig) { c.progress = fn }
}

// WithFleetStallTimeout arms a stall watchdog over the scan's event
// stream: when no telemetry event is journaled for d, the watchdog
// emits a stall event, captures a diagnostic bundle (WithFleetDebugDir)
// and abandons the in-flight binaries — they report BinaryStalled,
// never an empty success. Pick d well above the slowest single
// function's analysis time; 0 (the default) disables the watchdog.
func WithFleetStallTimeout(d time.Duration) FleetOption {
	return func(c *fleetConfig) { c.stallTimeout = d }
}

// WithFleetDebugDir names the directory that receives one diagnostic
// bundle per watchdog stall: goroutine dump, Chrome trace, metrics
// snapshot, options fingerprint, event journal, and the partial report
// of the binaries completed so far.
func WithFleetDebugDir(dir string) FleetOption {
	return func(c *fleetConfig) { c.debugDir = dir }
}

// ScanFirmwareFleet unpacks a firmware image and analyzes every
// executable in its root filesystem across a bounded worker pool — the
// whole-image counterpart of AnalyzeFirmware. One corrupt binary cannot
// kill the scan (panic isolation, per-binary timeouts), cancelling ctx
// stops new work, and a FleetCache shared across calls makes re-scans
// and binary-sharing fleets cheap. The Analyzer's own options (filters,
// ablations, custom sources/sinks, parallelism) apply to every binary.
func (a *Analyzer) ScanFirmwareFleet(ctx context.Context, data []byte, opts ...FleetOption) (*ImageReport, error) {
	var cfg fleetConfig
	for _, o := range opts {
		o(&cfg)
	}
	fopts := fleet.Options{
		Workers:          cfg.workers,
		PerBinaryTimeout: cfg.timeout,
		Analysis:         a.opts,
		FilterTag:        cfg.filterTag,
		PathFilter:       cfg.pathFilter,
		Progress:         cfg.progress,
		StallTimeout:     cfg.stallTimeout,
		DebugDir:         cfg.debugDir,
	}
	if cfg.cache != nil {
		fopts.Cache = cfg.cache.c
	}
	if cfg.sumStore != nil {
		fopts.SummaryStore = cfg.sumStore.s
	}
	rep, err := fleet.ScanImage(ctx, data, fopts)
	if err != nil {
		return nil, err
	}
	return publicImageReport(rep), nil
}

// CorpusReport aggregates a whole-corpus scan: per-image reports in
// input order, the cross-image binary dedup accounting, and final
// snapshots of the shared cache tiers.
type CorpusReport struct {
	// Images holds one report per input image, in input order.
	Images []*ImageReport
	// UniqueBinaries and DuplicateBinaries partition the corpus's
	// candidate executables by content; duplicates are served from the
	// shared report cache rather than re-analyzed.
	UniqueBinaries    int
	DuplicateBinaries int
	// Cache and SummaryStore snapshot the shared tiers when the corpus
	// scan finished.
	Cache        CacheStats
	SummaryStore SummaryStoreStats
	// Wall is the whole-corpus wall-clock time.
	Wall time.Duration
}

// ScanFirmwareCorpus scans a corpus of firmware images with one report
// cache and one summary store shared across every image — each unique
// binary is analyzed once per corpus and each unique function is
// symbolically executed once per corpus. Supply the tiers with
// WithFleetCache / WithFleetSummaryStore to persist or reuse them across
// calls; otherwise corpus-lifetime in-memory tiers are created. Images
// are scanned sequentially, each fanning its binaries across the worker
// pool; cancelling ctx stops new work.
func (a *Analyzer) ScanFirmwareCorpus(ctx context.Context, images [][]byte, opts ...FleetOption) (*CorpusReport, error) {
	var cfg fleetConfig
	for _, o := range opts {
		o(&cfg)
	}
	fopts := fleet.Options{
		Workers:          cfg.workers,
		PerBinaryTimeout: cfg.timeout,
		Analysis:         a.opts,
		FilterTag:        cfg.filterTag,
		PathFilter:       cfg.pathFilter,
		Progress:         cfg.progress,
		StallTimeout:     cfg.stallTimeout,
		DebugDir:         cfg.debugDir,
	}
	if cfg.cache != nil {
		fopts.Cache = cfg.cache.c
	}
	if cfg.sumStore != nil {
		fopts.SummaryStore = cfg.sumStore.s
	}
	rep, err := fleet.ScanCorpus(ctx, images, fopts)
	if err != nil {
		return nil, err
	}
	out := &CorpusReport{
		UniqueBinaries:    rep.UniqueBinaries,
		DuplicateBinaries: rep.DuplicateBinaries,
		Cache: CacheStats{
			Hits:      rep.Cache.Hits,
			DiskHits:  rep.Cache.DiskHits,
			Misses:    rep.Cache.Misses,
			Evictions: rep.Cache.Evictions,
			Entries:   rep.Cache.Entries,
		},
		SummaryStore: SummaryStoreStats{
			Hits:      rep.SummaryStore.Hits,
			DiskHits:  rep.SummaryStore.DiskHits,
			Misses:    rep.SummaryStore.Misses,
			Evictions: rep.SummaryStore.Evictions,
			Entries:   rep.SummaryStore.Entries,
		},
		Wall: rep.Wall,
	}
	for _, ir := range rep.Images {
		out.Images = append(out.Images, publicImageReport(ir))
	}
	return out, nil
}

func publicImageReport(r *fleet.ImageReport) *ImageReport {
	out := &ImageReport{
		Vendor:          r.Vendor,
		Product:         r.Product,
		Version:         r.Version,
		Year:            r.Year,
		Arch:            r.Arch,
		Candidates:      r.Candidates,
		Scanned:         r.Scanned,
		Cached:          r.Cached,
		Failed:          r.Failed,
		Stalled:         r.Stalled,
		Skipped:         r.Skipped,
		Vulnerabilities: r.Vulnerabilities,
		VulnerablePaths: r.VulnerablePaths,
		FindingsByClass: make(map[Class]int, len(r.FindingsByClass)),
		Workers:         r.Workers,
		Wall:            r.Wall,
		Cache: CacheStats{
			Hits:      r.Cache.Hits,
			DiskHits:  r.Cache.DiskHits,
			Misses:    r.Cache.Misses,
			Evictions: r.Cache.Evictions,
			Entries:   r.Cache.Entries,
		},
		Runtime: publicRuntimeStats(r.Runtime),
	}
	for class, n := range r.FindingsByClass {
		out.FindingsByClass[Class(class)] = n
	}
	for _, b := range r.Binaries {
		out.Binaries = append(out.Binaries, BinaryScan{
			Path:     b.Path,
			SHA256:   b.SHA256,
			Status:   BinaryStatus(b.Status),
			Error:    b.Error,
			Duration: b.Duration,
			Report:   publicBinaryReport(b.Analysis),
		})
	}
	return out
}

func publicBinaryReport(a *fleet.BinaryAnalysis) *Report {
	if a == nil {
		return nil
	}
	rep := &Report{
		Binary:            a.Binary,
		Arch:              a.Arch,
		Functions:         a.Functions,
		Blocks:            a.Blocks,
		CallEdges:         a.CallEdges,
		FunctionsAnalyzed: a.FunctionsAnalyzed,
		SinkCount:         a.SinkCount,
		IndirectResolved:  a.IndirectResolved,
		DefPairs:          a.DefPairs,
		Truncated:         a.Truncated,
		SSATime:           a.SSATime,
		DDGTime:           a.DDGTime,
		DDGWorkers:        a.DDGWorkers,
		SCCComponents:     a.SCCComponents,
		CriticalPath:      a.CriticalPath,
	}
	for _, f := range a.Findings {
		rep.Findings = append(rep.Findings, Finding{
			Class:     Class(f.Class),
			Sink:      f.Sink,
			SinkFunc:  f.SinkFunc,
			SinkAddr:  f.SinkAddr,
			Source:    f.Source,
			Path:      append([]string(nil), f.Path...),
			Sanitized: f.Sanitized,
		})
	}
	return rep
}

package dtaint_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"dtaint"
	"dtaint/internal/corpus"
)

// TestScanFirmwareDiff runs the public diff entry point over a vendor
// re-release pair: a warm fleet scan of the old version, then a diff,
// checking the delta-proportional cost and the ground-truth finding
// classification end to end.
func TestScanFirmwareDiff(t *testing.T) {
	vp, err := corpus.BuildVersionPair(corpus.VersionPairSpec{
		Binaries: 3, Mutated: 1, SharedFuncs: 10, TailFuncs: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := dtaint.NewFleetCache(256, "")
	if err != nil {
		t.Fatal(err)
	}
	store, err := dtaint.NewSummaryStore(0, "")
	if err != nil {
		t.Fatal(err)
	}
	a := dtaint.New()
	// Nightly flow: the old version was already fleet-scanned through the
	// same cache and store.
	if _, err := a.ScanFirmwareFleet(context.Background(), vp.Old,
		dtaint.WithFleetWorkers(2), dtaint.WithFleetCache(cache),
		dtaint.WithFleetSummaryStore(store)); err != nil {
		t.Fatal(err)
	}
	rep, err := a.ScanFirmwareDiff(context.Background(), vp.Old, vp.New,
		dtaint.WithFleetWorkers(2), dtaint.WithFleetCache(cache),
		dtaint.WithFleetSummaryStore(store))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Old.Version != "1.0.0" || rep.New.Version != "1.0.1" {
		t.Fatalf("versions %s → %s, want 1.0.0 → 1.0.1", rep.Old.Version, rep.New.Version)
	}
	// Only the mutated binary's new version and the added binary are
	// fresh work; everything else replays.
	if want := vp.Spec.Mutated + 1; rep.Reanalyzed != want {
		t.Fatalf("Reanalyzed = %d, want %d", rep.Reanalyzed, want)
	}
	if rep.Failed != 0 {
		t.Fatalf("Failed = %d: %+v", rep.Failed, rep.Binaries)
	}
	if rep.NewFindings != vp.NewVulns || rep.FixedFindings != vp.FixedVulns ||
		rep.PersistingFindings != vp.PersistingVulns {
		t.Fatalf("findings new/fixed/persisting = %d/%d/%d, want %d/%d/%d",
			rep.NewFindings, rep.FixedFindings, rep.PersistingFindings,
			vp.NewVulns, vp.FixedVulns, vp.PersistingVulns)
	}
	if rep.SummaryHitRate == 0 {
		t.Fatal("SummaryHitRate = 0: changed binary did not replay old-version summaries")
	}
	if rep.Cache.Hits == 0 {
		t.Fatal("cache stats empty after a warmed diff")
	}
}

// TestScanFirmwareDiffIdentical diffs an image against itself: nothing
// may be re-analyzed and nothing may classify as new or fixed.
func TestScanFirmwareDiffIdentical(t *testing.T) {
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := dtaint.NewFleetCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	a := dtaint.New()
	if _, err := a.ScanFirmwareFleet(context.Background(), fw,
		dtaint.WithFleetCache(cache)); err != nil {
		t.Fatal(err)
	}
	rep, err := a.ScanFirmwareDiff(context.Background(), fw, fw,
		dtaint.WithFleetCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reanalyzed != 0 {
		t.Fatalf("Reanalyzed = %d, want 0 (all replayed)", rep.Reanalyzed)
	}
	if rep.NewFindings != 0 || rep.FixedFindings != 0 {
		t.Fatalf("new/fixed = %d/%d, want 0/0", rep.NewFindings, rep.FixedFindings)
	}
	if rep.Unchanged == 0 || rep.Changed+rep.Added+rep.Removed+rep.Moved != 0 {
		t.Fatalf("pairing %d/%d/%d/%d/%d, want all unchanged", rep.Unchanged,
			rep.Changed, rep.Added, rep.Removed, rep.Moved)
	}
}

// TestDiffReportJSONRoundTripPublic: the public DiffReport survives a
// marshal/unmarshal cycle unchanged — the dtaintd and CLI wire format.
func TestDiffReportJSONRoundTripPublic(t *testing.T) {
	vp, err := corpus.BuildVersionPair(corpus.VersionPairSpec{
		Binaries: 2, Mutated: 1, SharedFuncs: 8, TailFuncs: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dtaint.New().ScanFirmwareDiff(context.Background(), vp.Old, vp.New,
		dtaint.WithFleetWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back dtaint.DiffReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, &back) {
		t.Fatalf("round trip diverged:\n  in:  %+v\n  out: %+v", rep, &back)
	}
	var buf bytes.Buffer
	if err := rep.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{"# Firmware diff:", "New findings", "Binary pairs"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

module dtaint

go 1.22

package symexec

import (
	"testing"

	"dtaint/internal/expr"
)

// Absolute memory addresses are variables in their own right
// (Section III-B: "DTaint directly uses the memory to present variables,
// such as 0x670B0").
func TestAbsoluteAddressVariables(t *testing.T) {
	sum := analyze(t, `
.arch arm
.func f
  MOV R5, #0x670B0
  MOV R4, #42
  STR R4, [R5, #0]
  LDR R6, [R5, #0]
  STR R6, [SP, #-4]
  BX LR
.endfunc
`, "f", nil)
	// The global def is recorded at the constant address.
	want := expr.Deref(expr.Const(0x670B0)).Key()
	defs := sum.FindDefs(want)
	if len(defs) != 1 {
		t.Fatalf("global def missing: %v", sum.SortedDefKeys())
	}
	if v, ok := defs[0].U.ConstVal(); !ok || v != 42 {
		t.Fatalf("global value = %s", defs[0].U)
	}
	// And the load forwards it into the local store.
	local := expr.Deref(expr.Add(expr.Sym(expr.StackSym), -4)).Key()
	lds := sum.FindDefs(local)
	if len(lds) != 1 {
		t.Fatalf("local def missing")
	}
	if v, ok := lds[0].U.ConstVal(); !ok || v != 42 {
		t.Fatalf("forwarded global = %s", lds[0].U)
	}
}

// Calls to unresolved targets still produce unique return symbols and do
// not derail the analysis.
func TestUnknownCalleeHandled(t *testing.T) {
	sum := analyze(t, `
.arch arm
.func f
  LDR R9, [R0, #0]
  BLX R9
  MOV R4, R0
  STR R4, [SP, #-4]
  BX LR
.endfunc
`, "f", nil)
	if len(sum.Calls) != 1 {
		t.Fatalf("calls = %+v", sum.Calls)
	}
	name, ok := sum.Calls[0].Ret.SymName()
	if !ok || !expr.IsRetSym(name) {
		t.Fatalf("indirect ret = %s", sum.Calls[0].Ret)
	}
}

// Analysis is deterministic: two runs over the same function produce the
// same definition pairs in the same order.
func TestAnalysisDeterministic(t *testing.T) {
	src := `
.arch mips
.import memcpy
.func f
  SUB SP, SP, #0x40
  CMP R4, #10
  BGE big
  STR R4, [SP, #-4]
  B out
big:
  STR R5, [SP, #-4]
out:
  ADD R4, SP, #8
  MOV R5, R4
  MOV R6, #8
  BL memcpy
  BX LR
.endfunc
`
	a := analyze(t, src, "f", nil)
	b := analyze(t, src, "f", nil)
	ka, kb := a.SortedDefKeys(), b.SortedDefKeys()
	if len(ka) != len(kb) {
		t.Fatalf("defpair counts differ: %d vs %d", len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("defpair %d differs: %s vs %s", i, ka[i], kb[i])
		}
	}
	if a.StatesExplored != b.StatesExplored {
		t.Fatal("state counts differ across runs")
	}
}

// Byte stores are recorded with their size and produce char-typed fields.
func TestByteStoreFieldType(t *testing.T) {
	sum := analyze(t, `
.arch arm
.func f
  MOV R4, #0x3B
  STRB R4, [R0, #5]
  BX LR
.endfunc
`, "f", nil)
	var found bool
	for _, fo := range sum.Fields {
		if name, _ := fo.Base.SymName(); name == "arg0" && fo.Off == 5 && fo.Ty == expr.TypeChar {
			found = true
		}
	}
	if !found {
		t.Fatalf("byte field not observed: %+v", sum.Fields)
	}
	for _, dp := range sum.DefPairs {
		if dp.Size == 1 {
			return
		}
	}
	t.Fatal("byte-sized defpair not recorded")
}

// Conditional branches off an untested flag (no preceding CMP) do not
// record junk constraints.
func TestBranchWithoutCompare(t *testing.T) {
	sum := analyze(t, `
.arch arm
.func f
  BEQ skip
  MOV R4, #1
skip:
  BX LR
.endfunc
`, "f", nil)
	if len(sum.Constraints) != 0 {
		t.Fatalf("constraints = %+v", sum.Constraints)
	}
}

// The return register differs per flavor: MIPS returns in R2.
func TestMIPSReturnRegister(t *testing.T) {
	sum := analyze(t, `
.arch mips
.func f
  MOV R2, #99
  BX LR
.endfunc
`, "f", nil)
	if len(sum.Rets) != 1 {
		t.Fatalf("rets = %v", sum.Rets)
	}
	if v, ok := sum.Rets[0].ConstVal(); !ok || v != 99 {
		t.Fatalf("MIPS ret = %s", sum.Rets[0])
	}
}

package symexec

import (
	"strings"
	"testing"

	"dtaint/internal/asm"
	"dtaint/internal/cfg"
	"dtaint/internal/expr"
	"dtaint/internal/image"
	"dtaint/internal/isa"
)

func build(t *testing.T, src string) (*cfg.Program, *image.Binary) {
	t.Helper()
	bin, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	return p, bin
}

func analyze(t *testing.T, src, fn string, o Oracle) *Summary {
	t.Helper()
	p, bin := build(t, src)
	f := p.ByName[fn]
	if f == nil {
		t.Fatalf("function %s not found", fn)
	}
	return Analyze(f, bin, o, Options{})
}

// recvOracle models recv(fd, buf, n): the buffer contents become tainted.
type recvOracle struct{}

func (recvOracle) Call(ctx *CallContext) CallEffect {
	if ctx.Callee != "recv" || len(ctx.Args) < 2 {
		return CallEffect{}
	}
	return CallEffect{
		Handled: true,
		MemDefs: []MemDef{{Addr: ctx.Args[1], Val: expr.Sym(expr.TaintName("recv", uint64(ctx.Site)))}},
	}
}

func TestVariableDescription(t *testing.T) {
	// The paper's running example: woo(arg0, arg1) stores
	// deref(arg0+0x4C) = deref(arg1+0x24).
	sum := analyze(t, `
.arch arm
.import recv
.func woo
  LDR R5, [R1, #0x24]
  STR R5, [R0, #0x4C]
  MOV R2, #0x200
  MOV R1, R5
  BL recv
  BX LR
.endfunc
`, "woo", recvOracle{})

	wantD := expr.Deref(expr.Add(expr.Arg(0), 0x4C)).Key()
	wantU := expr.Deref(expr.Add(expr.Arg(1), 0x24)).Key()
	var found bool
	for _, dp := range sum.DefPairs {
		if dp.D.Key() == wantD && dp.U.Key() == wantU {
			found = true
		}
	}
	if !found {
		t.Fatalf("defpair %s = %s not found in %v", wantD, wantU, sum.SortedDefKeys())
	}

	// recv taints deref(deref(arg1+0x24)).
	taintD := expr.Deref(expr.Deref(expr.Add(expr.Arg(1), 0x24))).Key()
	defs := sum.FindDefs(taintD)
	if len(defs) != 1 || !defs[0].U.ContainsTaint() {
		t.Fatalf("taint def missing: %v", sum.SortedDefKeys())
	}
}

func TestCallingConventionARMvsMIPS(t *testing.T) {
	armSum := analyze(t, `
.arch arm
.func f
  STR R0, [SP, #-8]
  BX LR
.endfunc
`, "f", nil)
	mipsSum := analyze(t, `
.arch mips
.func f
  STR R4, [SP, #-8]
  BX LR
.endfunc
`, "f", nil)
	want := expr.Deref(expr.Add(expr.Sym(expr.StackSym), -8)).Key()
	for name, sum := range map[string]*Summary{"arm": armSum, "mips": mipsSum} {
		defs := sum.FindDefs(want)
		if len(defs) != 1 {
			t.Fatalf("%s: defs = %v", name, sum.SortedDefKeys())
		}
		if got, _ := defs[0].U.SymName(); got != "arg0" {
			t.Fatalf("%s: stored %s, want arg0", name, defs[0].U)
		}
	}
}

func TestReturnValueSymbolPerCallsite(t *testing.T) {
	sum := analyze(t, `
.arch arm
.func f
  BL g
  MOV R4, R0
  BL g
  MOV R5, R0
  BX LR
.endfunc
.func g
  MOV R0, #7
  BX LR
.endfunc
`, "f", nil)
	if len(sum.Calls) != 2 {
		t.Fatalf("calls = %d", len(sum.Calls))
	}
	r1, r2 := sum.Calls[0].Ret, sum.Calls[1].Ret
	if r1.Equal(r2) {
		t.Fatalf("distinct callsites must produce distinct ret symbols: %s", r1)
	}
	for _, r := range []*expr.Expr{r1, r2} {
		name, _ := r.SymName()
		if !expr.IsRetSym(name) || !strings.Contains(name, "g") {
			t.Fatalf("ret sym = %s", r)
		}
	}
}

func TestStackArgumentsInAndOut(t *testing.T) {
	// Caller passes 6 args: 4 in regs, 2 on the stack; callee reads them.
	p, bin := build(t, `
.arch arm
.func caller
  SUB SP, SP, #0x20
  MOV R0, #10
  MOV R1, #11
  MOV R2, #12
  MOV R3, #13
  MOV R4, #14
  STR R4, [SP, #0]
  MOV R4, #15
  STR R4, [SP, #4]
  BL callee
  BX LR
.endfunc
.func callee
  LDR R5, [SP, #0]
  LDR R6, [SP, #4]
  STR R5, [SP, #-4]
  BX LR
.endfunc
`)
	callerSum := Analyze(p.ByName["caller"], bin, nil, Options{})
	if len(callerSum.Calls) != 1 {
		t.Fatalf("calls = %+v", callerSum.Calls)
	}
	args := callerSum.Calls[0].Args
	if len(args) != 6 {
		t.Fatalf("collected %d args, want 6 (%v)", len(args), args)
	}
	for i, want := range []int64{10, 11, 12, 13, 14, 15} {
		if v, ok := args[i].ConstVal(); !ok || v != want {
			t.Fatalf("arg%d = %s, want %d", i, args[i], want)
		}
	}

	calleeSum := Analyze(p.ByName["callee"], bin, nil, Options{})
	want := expr.Deref(expr.Add(expr.Sym(expr.StackSym), -4)).Key()
	defs := calleeSum.FindDefs(want)
	if len(defs) != 1 {
		t.Fatalf("callee defs = %v", calleeSum.SortedDefKeys())
	}
	if got, _ := defs[0].U.SymName(); got != "arg4" {
		t.Fatalf("stack arg read as %s, want arg4", defs[0].U)
	}
}

func TestLoopOnceHeuristic(t *testing.T) {
	src := `
.arch arm
.func f
  MOV R2, #0
loop:
  LDRB R3, [R1, #0]
  STRB R3, [R0, #0]
  ADD R2, R2, #1
  CMP R2, #16
  BLT loop
  BX LR
.endfunc
`
	sum := analyze(t, src, "f", nil)
	if sum.Truncated {
		t.Fatal("loop-once analysis must terminate untruncated")
	}
	// The loop body stores are recorded as loop stores.
	if len(sum.LoopStores) == 0 {
		t.Fatal("loop store not recorded")
	}
	// Ablation: loop unrolled a bounded number of times still terminates.
	p, bin := build(t, src)
	sum2 := Analyze(p.ByName["f"], bin, nil, Options{LoopOnce: false, MaxLoopIters: 3})
	if sum2.StatesExplored <= sum.StatesExplored {
		t.Fatalf("loop ablation explored %d states, loop-once %d", sum2.StatesExplored, sum.StatesExplored)
	}
}

func TestBothBranchDirectionsExplored(t *testing.T) {
	sum := analyze(t, `
.arch arm
.func f
  CMP R0, #64
  BGE big
  MOV R4, #1
  STR R4, [SP, #-4]
  B done
big:
  MOV R4, #2
  STR R4, [SP, #-4]
done:
  BX LR
.endfunc
`, "f", nil)
	want := expr.Deref(expr.Add(expr.Sym(expr.StackSym), -4)).Key()
	defs := sum.FindDefs(want)
	if len(defs) != 2 {
		t.Fatalf("want defs from both paths, got %v", defs)
	}
	// Both branch polarities recorded as constraints on arg0.
	var ge, lt bool
	for _, c := range sum.Constraints {
		if name, _ := c.L.SymName(); name == "arg0" {
			if c.Cond == isa.CondGE {
				ge = true
			}
			if c.Cond == isa.CondLT {
				lt = true
			}
		}
	}
	if !ge || !lt {
		t.Fatalf("constraints = %+v", sum.Constraints)
	}
}

func TestTypeInference(t *testing.T) {
	sum := analyze(t, `
.arch arm
.import strcpy
.func f
  LDR R4, [R0, #8]
  CMP R1, #5
  MOV R0, R4
  MOV R1, R4
  BL strcpy
  BX LR
.endfunc
`, "f", nil)
	// LDR base: arg0 is a pointer.
	if !sum.Types[expr.ArgName(0)].IsPointer() {
		t.Errorf("arg0 type = %s, want pointer", sum.Types[expr.ArgName(0)])
	}
	// CMP with immediate: arg1 is an integer.
	if sum.Types[expr.ArgName(1)] != expr.TypeInt {
		t.Errorf("arg1 type = %s, want int", sum.Types[expr.ArgName(1)])
	}
	// Prototype channel: strcpy args are char*.
	p, bin := build(t, `
.arch arm
.import strcpy
.func f
  LDR R4, [R0, #8]
  MOV R0, R4
  MOV R1, R4
  BL strcpy
  BX LR
.endfunc
`)
	sum2 := Analyze(p.ByName["f"], bin, nil, Options{
		Prototypes: map[string]Proto{
			"strcpy": {Args: []expr.Type{expr.TypeCharPtr, expr.TypeCharPtr}, Ret: expr.TypeCharPtr},
		},
	})
	loaded := expr.Deref(expr.Add(expr.Arg(0), 8)).Key()
	if sum2.Types[loaded] != expr.TypeCharPtr {
		t.Errorf("deref(arg0+8) type = %s, want char*", sum2.Types[loaded])
	}
}

func TestFieldObservations(t *testing.T) {
	sum := analyze(t, `
.arch arm
.func f
  LDR R4, [R0, #0]
  LDRB R5, [R0, #4]
  LDR R6, [R0, #8]
  BX LR
.endfunc
`, "f", nil)
	offs := map[int64]expr.Type{}
	for _, fo := range sum.Fields {
		if name, _ := fo.Base.SymName(); name == "arg0" {
			offs[fo.Off] = offs[fo.Off].Join(fo.Ty)
		}
	}
	if len(offs) != 3 {
		t.Fatalf("fields = %+v", sum.Fields)
	}
	if offs[4] != expr.TypeChar {
		t.Errorf("field +4 type = %s, want char", offs[4])
	}
}

func TestFunctionPointerStoreObserved(t *testing.T) {
	p, bin := build(t, `
.arch arm
.func register_handler
  MOV R4, =h ; placeholder, replaced below
  BX LR
.endfunc
.func handler
  BX LR
.endfunc
.data h "x"
`)
	_ = p
	_ = bin
	// Function addresses cannot be written with =sym (that is rodata);
	// craft the store with the real function address via an immediate.
	hAddr := int64(0)
	p2, bin2 := build(t, `
.arch arm
.func handler
  BX LR
.endfunc
.func register_handler
  MOV R4, #0x10000
  STR R4, [R0, #12]
  BX LR
.endfunc
`)
	hAddr = int64(p2.ByName["handler"].Addr)
	if hAddr != 0x10000 {
		t.Fatalf("layout assumption broken: handler at %#x", hAddr)
	}
	sum := Analyze(p2.ByName["register_handler"], bin2, nil, Options{})
	var found bool
	for _, fo := range sum.Fields {
		if fo.FnTarget == "handler" && fo.Off == 12 && fo.Ty == expr.TypeFuncPtr {
			found = true
		}
	}
	if !found {
		t.Fatalf("function-pointer field not observed: %+v", sum.Fields)
	}
}

func TestIndirectCallRecorded(t *testing.T) {
	sum := analyze(t, `
.arch arm
.func dispatch
  LDR R9, [R0, #8]
  BLX R9
  BX LR
.endfunc
`, "dispatch", nil)
	if len(sum.Calls) != 1 {
		t.Fatalf("calls = %+v", sum.Calls)
	}
	c := sum.Calls[0]
	if c.Kind != cfg.CallIndirect {
		t.Fatalf("kind = %v", c.Kind)
	}
	want := expr.Deref(expr.Add(expr.Arg(0), 8)).Key()
	if c.FnPtr.Key() != want {
		t.Fatalf("fnptr = %s, want %s", c.FnPtr, want)
	}
}

func TestUndefUseRecorded(t *testing.T) {
	sum := analyze(t, `
.arch arm
.func f
  LDR R4, [R0, #0x4C]
  BX LR
.endfunc
`, "f", nil)
	if len(sum.UndefUses) != 1 {
		t.Fatalf("undef uses = %v", sum.UndefUses)
	}
	want := expr.Deref(expr.Add(expr.Arg(0), 0x4C)).Key()
	if sum.UndefUses[0].Key() != want {
		t.Fatalf("use = %s, want %s", sum.UndefUses[0], want)
	}
	// Loads from locals previously stored are not undefined uses.
	sum2 := analyze(t, `
.arch arm
.func f
  MOV R4, #7
  STR R4, [SP, #-8]
  LDR R5, [SP, #-8]
  BX LR
.endfunc
`, "f", nil)
	if len(sum2.UndefUses) != 0 {
		t.Fatalf("locals flagged as undef uses: %v", sum2.UndefUses)
	}
}

func TestMemoryForwarding(t *testing.T) {
	// A store followed by a load from the same address forwards the value.
	sum := analyze(t, `
.arch arm
.func f
  MOV R4, #42
  STR R4, [R0, #16]
  LDR R5, [R0, #16]
  STR R5, [SP, #-4]
  BX LR
.endfunc
`, "f", nil)
	want := expr.Deref(expr.Add(expr.Sym(expr.StackSym), -4)).Key()
	defs := sum.FindDefs(want)
	if len(defs) != 1 {
		t.Fatalf("defs = %v", sum.SortedDefKeys())
	}
	if v, ok := defs[0].U.ConstVal(); !ok || v != 42 {
		t.Fatalf("forwarded value = %s, want 42", defs[0].U)
	}
}

func TestReturnValues(t *testing.T) {
	sum := analyze(t, `
.arch arm
.func f
  CMP R0, #0
  BEQ zero
  MOV R0, #1
  BX LR
zero:
  MOV R0, #2
  BX LR
.endfunc
`, "f", nil)
	if len(sum.Rets) != 2 {
		t.Fatalf("rets = %v", sum.Rets)
	}
}

func TestStateCapTruncation(t *testing.T) {
	// A function with many sequential branches explodes paths; the cap
	// must stop exploration and mark truncation.
	var sb strings.Builder
	sb.WriteString(".arch arm\n.func f\n")
	for i := 0; i < 12; i++ {
		sb.WriteString("  CMP R0, #1\n  BEQ l")
		sb.WriteString(string(rune('a' + i)))
		sb.WriteString("\nl")
		sb.WriteString(string(rune('a' + i)))
		sb.WriteString(":\n  MOV R4, #1\n")
	}
	sb.WriteString("  BX LR\n.endfunc\n")
	p, bin := build(t, sb.String())
	sum := Analyze(p.ByName["f"], bin, nil, Options{MaxStatesPerFunc: 20})
	if !sum.Truncated {
		t.Fatal("expected truncation")
	}
	if sum.StatesExplored > 20 {
		t.Fatalf("explored %d states past cap", sum.StatesExplored)
	}
}

func TestResolveAndResolveDeep(t *testing.T) {
	var captured *CallContext
	oracle := oracleFunc(func(ctx *CallContext) CallEffect {
		captured = ctx
		if ctx.Callee == "recv" {
			return CallEffect{Handled: true, MemDefs: []MemDef{
				{Addr: ctx.Args[1], Val: expr.Sym(expr.TaintName("recv", uint64(ctx.Site)))},
			}}
		}
		return CallEffect{}
	})
	analyze(t, `
.arch arm
.import recv
.import use
.func f
  MOV R4, R0
  MOV R1, R4
  MOV R2, #64
  BL recv
  MOV R1, R4
  BL use
  BX LR
.endfunc
`, "f", oracle)
	if captured == nil || captured.Callee != "use" {
		t.Fatalf("oracle not called for use: %+v", captured)
	}
	// arg1 of use is the buffer pointer (arg0); its pointee is tainted.
	got := captured.Resolve(captured.Args[1])
	if !got.ContainsTaint() {
		t.Fatalf("Resolve(%s) = %s, want taint", captured.Args[1], got)
	}
	deep := captured.ResolveDeep(expr.Deref(expr.Arg(0)))
	if !deep.ContainsTaint() {
		t.Fatalf("ResolveDeep = %s, want taint", deep)
	}
}

type oracleFunc func(*CallContext) CallEffect

func (f oracleFunc) Call(ctx *CallContext) CallEffect { return f(ctx) }

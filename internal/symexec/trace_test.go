package symexec

import (
	"fmt"
	"strings"
	"testing"
)

// The trace output reproduces the paper's Figure 6 listing: for woo, the
// store must appear as deref((arg0+76)) = deref((arg1+36)).
func TestTraceReproducesFigure6(t *testing.T) {
	p, bin := build(t, `
.arch arm
.import recv
.func woo
  LDR R5, [R1, #0x24]
  STR R5, [R0, #0x4C]
  MOV R2, #0x200
  MOV R1, R5
  BL recv
  BX LR
.endfunc
`)
	var lines []string
	opts := Options{
		Trace: func(addr uint32, line string) {
			lines = append(lines, fmt.Sprintf("%X: %s", addr, line))
		},
	}
	Analyze(p.ByName["woo"], bin, recvOracle{}, opts)
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"R5 = deref((arg1+36))",
		"deref((arg0+76)) = deref((arg1+36))",
		"R2 = 512",
		"call recv",
	} {
		if !strings.Contains(joined, want) {
			t.Fatalf("trace missing %q:\n%s", want, joined)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	// No Trace hook: analysis runs normally (smoke check that the hook is
	// optional on every statement form).
	sum := analyze(t, `
.arch arm
.func f
  MOV R4, #1
  ADD R4, R4, #2
  CMP R4, #3
  BEQ out
  STR R4, [SP, #-4]
out:
  BX LR
.endfunc
`, "f", nil)
	if sum.StatesExplored == 0 {
		t.Fatal("analysis did not run")
	}
}

// Package symexec implements DTaint's per-function static symbolic
// analysis (the "function analysis" component of Section III-B).
//
// Every function is analyzed separately. Registers holding arguments are
// initialized with the symbolic values arg0..arg3 per the calling
// convention; stack-passed arguments appear as arg4..arg9; every callee
// returns a unique symbolic value ret_<callee>_<site>. Memory is described
// by address expressions ("base + offset" with deref marking access), so
// `LDR R1, [R5, #0x4C]` becomes `R1 = deref(R5 + 0x4C)`.
//
// The engine explores both directions of each conditional branch and
// applies the paper's loop heuristic — blocks in the same loop are only
// analyzed once (per path) — producing for each function its definition
// pairs, branch constraints, callsites, inferred types, and data-structure
// field observations.
package symexec

import (
	"sort"

	"dtaint/internal/cfg"
	"dtaint/internal/expr"
	"dtaint/internal/image"
	"dtaint/internal/ir"
	"dtaint/internal/isa"
	"dtaint/internal/vrange"
)

// DefPair is the paper's definition pair (d, u): d names a storage
// location (a deref expression), u is the value defined there.
type DefPair struct {
	D    *expr.Expr
	U    *expr.Expr
	Addr uint32
	Size int // 1 or 4; 0 for synthesized pairs (library models, callees)
}

// Constraint is a branch condition observed on some path, used by the
// vulnerability detector to decide whether tainted data was sanitized.
type Constraint struct {
	L, R   *expr.Expr
	Cond   isa.Cond
	Addr   uint32
	InLoop bool
}

// CallRecord is a callsite with its evaluated actual arguments.
type CallRecord struct {
	Addr   uint32
	Kind   cfg.CallKind
	Callee string // empty for unresolved indirect calls
	Args   []*expr.Expr
	Ret    *expr.Expr // value left in the return register
	// FnPtr is the symbolic value of the call-target register for
	// indirect calls (typically deref(obj + off)).
	FnPtr  *expr.Expr
	InLoop bool
}

// FieldObs is one observed data-structure field access in 'base + offset'
// form, feeding the data-structure layout similarity (Section III-D).
type FieldObs struct {
	Base *expr.Expr
	Off  int64
	Ty   expr.Type
	// FnTarget names the function whose address was stored into this
	// field, when the store value was a known code address.
	FnTarget string
}

// LoopStore is a store executed inside a natural loop; the detector uses
// these to recognize loop-copy sinks (Table I's "loop" sink).
type LoopStore struct {
	Addr     uint32
	AddrExpr *expr.Expr
	Val      *expr.Expr
	Size     int
}

// Summary is the result of analyzing one function.
type Summary struct {
	Func string
	Addr uint32

	DefPairs    []DefPair
	Rets        []*expr.Expr
	Calls       []CallRecord
	Constraints []Constraint
	Types       map[string]expr.Type
	Fields      []FieldObs
	LoopStores  []LoopStore
	UndefUses   []*expr.Expr
	// Ranges are the per-symbol value intervals proven for this function:
	// upper-bound evidence from branch constraints (with widening for
	// bounds observed inside loops), plus facts contributed by library
	// models and summarized callees through CallEffect.Ranges. Keys are
	// expression keys (symbol names, deref keys, or whole-expression
	// keys for callee return values).
	Ranges map[string]vrange.Interval

	BlocksAnalyzed int
	StatesExplored int
	Truncated      bool // hit the state-exploration cap
}

// Proto declares the argument and return types of a library function, one
// of the paper's two type-inference channels ("in the most standard
// library calls, the parameters are specified data types").
type Proto struct {
	Args []expr.Type
	Ret  expr.Type
}

// CallEffect is what an Oracle applies to the state at a callsite.
type CallEffect struct {
	// Handled reports the oracle modeled the call; otherwise the engine
	// assigns a fresh ret symbol and nothing else.
	Handled bool
	// Ret overrides the return value (nil keeps the fresh ret symbol).
	Ret *expr.Expr
	// MemDefs are memory definitions the callee performs, expressed over
	// caller values (Algorithm 2's pushed definition pairs).
	MemDefs []MemDef
	// Ranges are value-interval facts the call establishes in the caller,
	// keyed by expression key — e.g. fgets(buf, n, f) bounds the length
	// of the content it writes by n-1, and a summarized callee's proven
	// return range is attached to the instantiated return expression.
	// Facts for a key already known are combined by Meet (both hold).
	Ranges map[string]vrange.Interval
}

// MemDef is a memory write: mem[Addr] = Val.
type MemDef struct {
	Addr *expr.Expr
	Val  *expr.Expr
}

// CallContext gives an Oracle access to the callsite.
type CallContext struct {
	Func   string
	Site   uint32
	Kind   cfg.CallKind
	Callee string
	Args   []*expr.Expr
	InLoop bool

	st     *State
	ranges map[string]vrange.Interval
}

// RangeOf returns the interval proven so far for an expression key
// (facts contributed by earlier CallEffect.Ranges on this function).
// Oracles use it to chain models — e.g. strtol's result range depends
// on the proven length of its input string.
func (c *CallContext) RangeOf(key string) (vrange.Interval, bool) {
	iv, ok := c.ranges[key]
	return iv, ok
}

// Resolve returns the value stored at pointer p, or deref(p) when the
// location has no known definition on this path.
func (c *CallContext) Resolve(p *expr.Expr) *expr.Expr { return c.st.Resolve(p) }

// ResolveDeep resolves nested derefs against the path state, bounded.
func (c *CallContext) ResolveDeep(e *expr.Expr) *expr.Expr { return c.st.ResolveDeep(e) }

// MemSnapshot copies the path's memory state (address key -> value). The
// top-down baseline passes it into recursive callee analyses for full
// context sensitivity.
func (c *CallContext) MemSnapshot() map[string]*expr.Expr {
	out := make(map[string]*expr.Expr, len(c.st.mem))
	for k, v := range c.st.mem {
		out[k] = v
	}
	return out
}

// Oracle models calls: library functions (sources, sinks, libc) and —
// during the interprocedural pass — previously summarized local callees.
type Oracle interface {
	Call(ctx *CallContext) CallEffect
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(ctx *CallContext) CallEffect

// Call implements Oracle.
func (f OracleFunc) Call(ctx *CallContext) CallEffect { return f(ctx) }

// Options tunes the engine.
type Options struct {
	// MaxStatesPerBlock caps how many distinct symbolic states are
	// propagated through one basic block (path merging bound). The paper
	// notes a block "may contain several distinct symbolic states in the
	// different path".
	MaxStatesPerBlock int
	// MaxStatesPerFunc caps total explored states.
	MaxStatesPerFunc int
	// LoopOnce enables the paper's heuristic: blocks in the same loop are
	// only analyzed once per path. Disabling it (ablation) falls back to
	// MaxLoopIters visits per block per path.
	LoopOnce     bool
	MaxLoopIters int
	// Prototypes maps library function names to their type signatures.
	Prototypes map[string]Proto
	// InitialArgs, when non-nil, seeds the argument registers with the
	// given expressions instead of the symbolic arg0..arg3 — used by the
	// context-sensitive top-down baseline, which re-analyzes each callee
	// with the caller's actual expressions.
	InitialArgs []*expr.Expr
	// InitialMem, when non-nil, seeds the entry memory state (copied).
	InitialMem map[string]*expr.Expr
	// Trace, when non-nil, receives one line per executed statement with
	// the evaluated symbolic values — the paper's Figure 6 listing
	// ("65C: deref(arg0+0x4C) = deref(arg1+0x24)").
	Trace func(addr uint32, line string)
}

// Defaults fills zero fields with production values.
func (o Options) withDefaults() Options {
	if o.MaxStatesPerBlock <= 0 {
		o.MaxStatesPerBlock = 4
	}
	if o.MaxStatesPerFunc <= 0 {
		o.MaxStatesPerFunc = 4096
	}
	if o.MaxLoopIters <= 0 {
		o.MaxLoopIters = 2
	}
	return o
}

// State is one symbolic machine state along a path.
type State struct {
	regs    [isa.NumRegs]*expr.Expr
	mem     map[string]*expr.Expr // address key -> value
	visits  map[int]int           // block index -> visits on this path
	cmpL    *expr.Expr
	cmpR    *expr.Expr
	hasFlag bool
}

func (s *State) clone() *State {
	n := &State{cmpL: s.cmpL, cmpR: s.cmpR, hasFlag: s.hasFlag}
	n.regs = s.regs
	n.mem = make(map[string]*expr.Expr, len(s.mem))
	for k, v := range s.mem {
		n.mem[k] = v
	}
	n.visits = make(map[int]int, len(s.visits))
	for k, v := range s.visits {
		n.visits[k] = v
	}
	return n
}

// Reg returns the symbolic value of a register.
func (s *State) Reg(r isa.Reg) *expr.Expr { return s.regs[r] }

// Resolve returns the value at pointer p on this path, or deref(p).
func (s *State) Resolve(p *expr.Expr) *expr.Expr {
	if p == nil {
		return nil
	}
	if v, ok := s.mem[p.Key()]; ok {
		return v
	}
	return expr.Deref(p)
}

// ResolveDeep rewrites deref subexpressions of e through the path memory,
// bounded to a few rounds.
func (s *State) ResolveDeep(e *expr.Expr) *expr.Expr {
	if e == nil {
		return nil
	}
	for round := 0; round < 4; round++ {
		changed := false
		e2 := s.rewriteDerefs(e, &changed)
		if !changed {
			return e2
		}
		e = e2
	}
	return e
}

func (s *State) rewriteDerefs(e *expr.Expr, changed *bool) *expr.Expr {
	switch e.Kind() {
	case expr.KindDeref:
		addr, _ := e.DerefAddr()
		if v, ok := s.mem[addr.Key()]; ok && !v.Equal(e) {
			*changed = true
			return v
		}
		// Resolve the address itself (inner-first): deref(deref(p)) needs
		// deref(p) rewritten to the stored pointer before the outer lookup
		// can hit. The next round retries the lookup.
		na := s.rewriteDerefs(addr, changed)
		if na != addr {
			return expr.Deref(na)
		}
		return e
	case expr.KindBinOp:
		op, x, y, _ := e.BinOperands()
		nx := s.rewriteDerefs(x, changed)
		ny := s.rewriteDerefs(y, changed)
		if nx == x && ny == y {
			return e
		}
		return expr.Bin(op, nx, ny)
	}
	return e
}

type engine struct {
	fn     *cfg.Function
	bin    *image.Binary
	conv   isa.CallConv
	oracle Oracle
	opts   Options

	sum        *Summary
	ranges     map[string]vrange.Interval // facts from oracle CallEffects
	defSeen    map[string]bool
	constSeen  map[string]bool
	fieldSeen  map[string]bool
	retSeen    map[string]bool
	useSeen    map[string]bool
	blockSeen  map[int]int // total states executed per block
	callByAddr map[uint32]cfg.CallSite
}

// Analyze runs the static symbolic analysis over one function.
func Analyze(fn *cfg.Function, bin *image.Binary, oracle Oracle, opts Options) *Summary {
	e := &engine{
		fn:     fn,
		bin:    bin,
		conv:   bin.Arch.Conv(),
		oracle: oracle,
		opts:   opts.withDefaults(),
		sum: &Summary{
			Func:  fn.Name,
			Addr:  fn.Addr,
			Types: make(map[string]expr.Type),
		},
		ranges:     make(map[string]vrange.Interval),
		defSeen:    make(map[string]bool),
		constSeen:  make(map[string]bool),
		fieldSeen:  make(map[string]bool),
		retSeen:    make(map[string]bool),
		useSeen:    make(map[string]bool),
		blockSeen:  make(map[int]int),
		callByAddr: make(map[uint32]cfg.CallSite, len(fn.Calls)),
	}
	for _, cs := range fn.Calls {
		e.callByAddr[cs.Addr] = cs
	}
	e.run()
	e.sum.Ranges = DeriveRanges(e.sum.Constraints, e.ranges)
	return e.sum
}

// mergeRange meets an oracle-provided interval fact into the function's
// accumulated ranges. Meet is commutative and associative, so the result
// is independent of the order facts arrive in.
func (e *engine) mergeRange(key string, iv vrange.Interval) {
	if key == "" || iv.IsTop() {
		return
	}
	if old, ok := e.ranges[key]; ok {
		iv = old.Meet(iv)
	}
	e.ranges[key] = iv
}

// DeriveRanges builds a per-symbol interval environment from branch
// constraints and (optionally nil) oracle facts accumulated during
// execution. The detector also calls it over the carried constraints of
// a pending sink, re-deriving bounds in the caller's namespace after
// formal arguments were substituted.
//
// The engine records the constraints of both directions of every branch
// (taken and fall-through are different paths), so meeting everything
// per symbol would yield ⊥ for any compared value. Instead only
// upper-bound evidence is kept (intervals with a finite Hi — a pure
// lower bound can never prove a copy fits), and sibling bounds on the
// same symbol are joined: the weakest recorded upper bound is the one
// the detector may trust. Bounds observed inside loops go through
// Widen — a bound that escapes previously seen evidence is assumed
// unstable across iterations and jumps to the domain edge. Oracle facts
// (libc models, callee summaries) hold unconditionally and are met in
// last.
func DeriveRanges(cs []Constraint, oracle map[string]vrange.Interval) map[string]vrange.Interval {
	derived := make(map[string]vrange.Interval)
	apply := func(key string, iv vrange.Interval, inLoop bool) {
		if !iv.Bounded() {
			return
		}
		old, ok := derived[key]
		switch {
		case !ok:
			derived[key] = iv
		case inLoop:
			derived[key] = old.Widen(iv)
		default:
			derived[key] = old.Join(iv)
		}
	}
	for _, c := range cs {
		if key, iv, ok := vrange.FromConstraint(c.L, c.R, c.Cond); ok {
			apply(key, iv, c.InLoop)
			continue
		}
		// Taint bookkeeping OR-combines the real value with marker
		// symbols (e.g. strlen's len_x | taint_recv_1): a comparison of
		// the combined register bounds every component.
		l, r := c.L, c.R
		if _, isConst := l.ConstVal(); isConst {
			l, r = r, l
		}
		if _, isConst := r.ConstVal(); !isConst {
			continue
		}
		for _, comp := range orComponents(l) {
			if key, iv, ok := vrange.FromConstraint(comp, r, c.Cond); ok {
				apply(key, iv, c.InLoop)
			}
		}
	}
	for key, iv := range oracle {
		if old, ok := derived[key]; ok {
			iv = old.Meet(iv)
		}
		derived[key] = iv
	}
	if len(derived) == 0 {
		return nil
	}
	return derived
}

// orComponents splits an OR-combined expression into its components; a
// non-OR expression is its own single component.
func orComponents(e *expr.Expr) []*expr.Expr {
	if e == nil {
		return nil
	}
	if op, x, y, ok := e.BinOperands(); ok && op == expr.OpOr {
		return append(orComponents(x), orComponents(y)...)
	}
	return []*expr.Expr{e}
}

func (e *engine) initialState() *State {
	st := &State{
		mem:    make(map[string]*expr.Expr),
		visits: make(map[int]int),
	}
	// Uninitialized registers get function-unique symbols so that junk
	// values never unify across functions.
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		st.regs[r] = expr.Sym("init_" + e.fn.Name + "_" + r.Name())
	}
	for i, r := range e.conv.ArgRegs {
		st.regs[r] = expr.Arg(i)
		e.sum.Types[expr.ArgName(i)] = expr.TypeUnknown
	}
	if e.opts.InitialArgs != nil {
		for i, r := range e.conv.ArgRegs {
			if i < len(e.opts.InitialArgs) && e.opts.InitialArgs[i] != nil {
				st.regs[r] = e.opts.InitialArgs[i]
			}
		}
	}
	for k, v := range e.opts.InitialMem {
		st.mem[k] = v
	}
	st.regs[isa.SP] = expr.Sym(expr.StackSym)
	return st
}

type workItem struct {
	block *cfg.Block
	st    *State
}

func (e *engine) run() {
	if e.fn.Entry == nil {
		return
	}
	stack := []workItem{{block: e.fn.Entry, st: e.initialState()}}
	for len(stack) > 0 {
		if e.sum.StatesExplored >= e.opts.MaxStatesPerFunc {
			e.sum.Truncated = true
			return
		}
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		b := it.block
		st := it.st
		// Loop-once heuristic: a block already visited on this path is not
		// re-analyzed (or at most MaxLoopIters times in the ablation).
		limit := 1
		if !e.opts.LoopOnce {
			limit = e.opts.MaxLoopIters
		}
		if st.visits[b.Index] >= limit {
			continue
		}
		// Per-block merging bound across all paths.
		if e.blockSeen[b.Index] >= e.opts.MaxStatesPerBlock {
			e.sum.Truncated = true
			continue
		}
		st.visits[b.Index]++
		e.blockSeen[b.Index]++
		e.sum.StatesExplored++
		if e.blockSeen[b.Index] == 1 {
			e.sum.BlocksAnalyzed++
		}

		next := e.execBlock(b, st)
		// Push in reverse so the first successor is explored first.
		for i := len(next) - 1; i >= 0; i-- {
			stack = append(stack, next[i])
		}
	}
}

// execBlock executes all instructions of b over st and returns successor
// work items.
func (e *engine) execBlock(b *cfg.Block, st *State) []workItem {
	inLoop := e.fn.LoopBlocks[b.Index]
	for _, li := range b.Insts {
		for _, stmt := range li.IR {
			e.exec(li.Addr, stmt, st, inLoop)
		}
	}

	term, hasTerm := b.Terminator()
	var items []workItem
	switch {
	case hasTerm && term.Raw.Op == isa.OpBX:
		e.recordRet(st)
		return nil
	case hasTerm && term.Raw.Op == isa.OpB && term.Raw.Cond != isa.CondAL:
		// Constant comparisons decide the branch statically; the infeasible
		// side is pruned so dead code does not produce phantom paths. The
		// pruning is skipped when the feasible target was already visited
		// (a statically-true loop back edge): the path must still leave
		// the loop through the other side under the loop-once heuristic.
		takeTaken, takeFall := true, true
		if st.hasFlag {
			if lv, okL := st.cmpL.ConstVal(); okL {
				if rv, okR := st.cmpR.ConstVal(); okR {
					feasible := evalCond(term.Raw.Cond, lv, rv)
					if feasible && len(b.Succs) > 0 && st.visits[b.Succs[0].Index] == 0 {
						takeFall = false
					}
					if !feasible && len(b.Succs) > 1 && st.visits[b.Succs[1].Index] == 0 {
						takeTaken = false
					}
				}
			}
		}
		// Conditional: successor 0 is taken, 1 is fallthrough.
		if takeTaken && len(b.Succs) > 0 {
			taken := st.clone()
			e.recordConstraint(term.Addr, st, term.Raw.Cond, inLoop)
			items = append(items, workItem{block: b.Succs[0], st: taken})
		}
		if takeFall && len(b.Succs) > 1 {
			fall := st.clone()
			e.recordConstraint(term.Addr, st, term.Raw.Cond.Negate(), inLoop)
			items = append(items, workItem{block: b.Succs[1], st: fall})
		}
		return items
	default:
		for i, s := range b.Succs {
			next := st
			if i > 0 {
				next = st.clone()
			}
			items = append(items, workItem{block: s, st: next})
		}
		// A block that falls off the end of the function acts as a return.
		if len(b.Succs) == 0 {
			e.recordRet(st)
		}
		return items
	}
}

func (e *engine) exec(addr uint32, stmt ir.Stmt, st *State, inLoop bool) {
	switch s := stmt.(type) {
	case ir.Nop, ir.Branch, ir.Ret:
		// Branch/Ret handled at block level.
	case ir.Move:
		st.regs[s.Dst] = e.val(s.Src, st)
		e.trace(addr, s.Dst.Name()+" = "+st.regs[s.Dst].Key())
	case ir.BinOp:
		st.regs[s.Dst] = expr.Bin(s.Op.ExprOp(), e.val(s.A, st), e.val(s.B, st))
		e.trace(addr, s.Dst.Name()+" = "+st.regs[s.Dst].Key())
	case ir.Compare:
		st.cmpL = e.val(s.A, st)
		st.cmpR = e.val(s.B, st)
		st.hasFlag = true
		e.trace(addr, "flags = cmp("+st.cmpL.Key()+", "+st.cmpR.Key()+")")
		// Type inference from machine instructions: `CMP R0, 8` means the
		// value held in R0 is an integer (Section III-B).
		if s.B.IsImm {
			e.observeType(st.cmpL, expr.TypeInt)
		}
	case ir.Load:
		base := st.regs[s.Base]
		addrE := expr.Add(base, int64(s.Off))
		e.observeType(base, expr.TypePtr)
		e.observeField(base, int64(s.Off), loadType(s.Size), "")
		v := e.loadValue(addrE, s.Size, st)
		st.regs[s.Dst] = v
		e.trace(addr, s.Dst.Name()+" = "+v.Key())
		if s.Size == 1 {
			e.observeType(v, expr.TypeChar)
		}
	case ir.Store:
		base := st.regs[s.Base]
		addrE := expr.Add(base, int64(s.Off))
		e.observeType(base, expr.TypePtr)
		val := e.val(s.Src, st)
		fieldTy := loadType(s.Size)
		fnTarget := ""
		if c, ok := val.ConstVal(); ok && s.Size == 4 {
			if sym, ok := e.bin.FuncAt(uint32(c)); ok {
				fieldTy = expr.TypeFuncPtr
				fnTarget = sym.Name
				e.observeType(val, expr.TypeFuncPtr)
			}
		} else if e.isPointerValue(val) && s.Size == 4 {
			fieldTy = expr.TypePtr
		}
		e.observeField(base, int64(s.Off), fieldTy, fnTarget)
		st.mem[addrE.Key()] = val
		e.trace(addr, "deref("+addrE.Key()+") = "+val.Key())
		e.recordDef(expr.Deref(addrE), val, addr, s.Size)
		if inLoop {
			e.sum.LoopStores = append(e.sum.LoopStores, LoopStore{
				Addr: addr, AddrExpr: addrE, Val: val, Size: s.Size,
			})
		}
	case ir.Call:
		e.execCall(addr, s, st, inLoop)
	}
}

// evalCond evaluates a branch condition over two signed constants.
func evalCond(c isa.Cond, l, r int64) bool {
	switch c {
	case isa.CondEQ:
		return l == r
	case isa.CondNE:
		return l != r
	case isa.CondLT:
		return l < r
	case isa.CondGE:
		return l >= r
	case isa.CondGT:
		return l > r
	case isa.CondLE:
		return l <= r
	}
	return true
}

func loadType(size int) expr.Type {
	if size == 1 {
		return expr.TypeChar
	}
	return expr.TypeUnknown
}

// loadValue reads memory at addrE, falling back to the symbolic deref and
// recognizing stack-passed incoming arguments.
func (e *engine) loadValue(addrE *expr.Expr, size int, st *State) *expr.Expr {
	if v, ok := st.mem[addrE.Key()]; ok {
		return v
	}
	// Incoming stack arguments: [sp0 + j*4] is arg(4+j).
	if base, off, ok := addrE.BasePlusOffset(); ok {
		if name, isSym := base.SymName(); isSym && name == expr.StackSym && off >= 0 && off%4 == 0 {
			idx := 4 + int(off/4)
			if idx < e.conv.MaxArgs {
				return expr.Arg(idx)
			}
		}
	}
	v := expr.Deref(addrE)
	e.recordUndefUse(v)
	return v
}

func (e *engine) val(v ir.Val, st *State) *expr.Expr {
	if v.IsImm {
		return expr.Const(v.Imm)
	}
	return st.regs[v.Reg]
}

func (e *engine) execCall(addr uint32, c ir.Call, st *State, inLoop bool) {
	cs := e.callByAddr[addr]
	args := e.collectArgs(st)

	rec := CallRecord{
		Addr:   addr,
		Kind:   cs.Kind,
		Callee: cs.Callee,
		Args:   args,
		InLoop: inLoop,
	}
	calleeName := cs.Callee
	if cs.Kind == cfg.CallIndirect {
		rec.FnPtr = st.regs[c.Reg]
		if calleeName == "" {
			calleeName = "indirect"
		}
	}
	if calleeName == "" {
		calleeName = "unknown"
	}

	retSym := expr.Sym(expr.RetName(calleeName, uint64(addr)))
	ret := retSym
	if e.oracle != nil {
		ctx := &CallContext{
			Func:   e.fn.Name,
			Site:   addr,
			Kind:   cs.Kind,
			Callee: calleeName,
			Args:   args,
			InLoop: inLoop,
			st:     st,
			ranges: e.ranges,
		}
		eff := e.oracle.Call(ctx)
		if eff.Handled {
			for _, md := range eff.MemDefs {
				if md.Addr == nil || md.Val == nil {
					continue
				}
				st.mem[md.Addr.Key()] = md.Val
				e.recordDef(expr.Deref(md.Addr), md.Val, addr, 0)
			}
			for k, iv := range eff.Ranges {
				e.mergeRange(k, iv)
			}
			if eff.Ret != nil {
				ret = eff.Ret
			}
		}
	}
	// Library prototypes refine argument and return types.
	if proto, ok := e.opts.Prototypes[calleeName]; ok {
		for i, ty := range proto.Args {
			if i < len(args) && args[i] != nil {
				e.observeType(args[i], ty)
			}
		}
		if proto.Ret != expr.TypeUnknown {
			e.observeType(ret, proto.Ret)
		}
	}
	st.regs[e.conv.RetReg] = ret
	rec.Ret = ret
	e.trace(addr, "call "+calleeName+", "+e.conv.RetReg.Name()+" = "+ret.Key())
	e.sum.Calls = append(e.sum.Calls, rec)
}

// collectArgs gathers register arguments plus any stack-passed arguments
// visible at the current SP.
func (e *engine) collectArgs(st *State) []*expr.Expr {
	args := make([]*expr.Expr, 0, e.conv.MaxArgs)
	for _, r := range e.conv.ArgRegs {
		args = append(args, st.regs[r])
	}
	sp := st.regs[isa.SP]
	for j := 0; len(args) < e.conv.MaxArgs; j++ {
		slot := expr.Add(sp, int64(j)*4)
		v, ok := st.mem[slot.Key()]
		if !ok {
			break
		}
		args = append(args, v)
	}
	return args
}

// trace emits one Figure 6-style line when tracing is enabled.
func (e *engine) trace(addr uint32, line string) {
	if e.opts.Trace != nil {
		e.opts.Trace(addr, line)
	}
}

func (e *engine) recordRet(st *State) {
	v := st.regs[e.conv.RetReg]
	if v == nil {
		return
	}
	if !e.retSeen[v.Key()] {
		e.retSeen[v.Key()] = true
		e.sum.Rets = append(e.sum.Rets, v)
	}
}

func (e *engine) recordDef(d, u *expr.Expr, addr uint32, size int) {
	key := d.Key() + "=" + u.Key()
	if e.defSeen[key] {
		return
	}
	e.defSeen[key] = true
	e.sum.DefPairs = append(e.sum.DefPairs, DefPair{D: d, U: u, Addr: addr, Size: size})
}

func (e *engine) recordConstraint(addr uint32, st *State, cond isa.Cond, inLoop bool) {
	if !st.hasFlag {
		return
	}
	key := st.cmpL.Key() + "|" + st.cmpR.Key() + "|" + cond.String()
	if e.constSeen[key] {
		return
	}
	e.constSeen[key] = true
	e.sum.Constraints = append(e.sum.Constraints, Constraint{
		L: st.cmpL, R: st.cmpR, Cond: cond, Addr: addr, InLoop: inLoop,
	})
}

func (e *engine) recordUndefUse(u *expr.Expr) {
	root := u.RootPointer()
	if root == nil {
		return
	}
	name, ok := root.SymName()
	if !ok {
		return
	}
	if _, isArg := expr.ArgIndex(name); !isArg && !expr.IsHeapName(name) && !expr.IsTaintName(name) {
		return
	}
	if e.useSeen[u.Key()] {
		return
	}
	e.useSeen[u.Key()] = true
	e.sum.UndefUses = append(e.sum.UndefUses, u)
}

func (e *engine) observeType(v *expr.Expr, ty expr.Type) {
	if v == nil || ty == expr.TypeUnknown {
		return
	}
	if _, isConst := v.ConstVal(); isConst && ty != expr.TypeFuncPtr {
		return
	}
	k := v.Key()
	e.sum.Types[k] = e.sum.Types[k].Join(ty)
}

func (e *engine) observeField(base *expr.Expr, off int64, ty expr.Type, fnTarget string) {
	if base == nil {
		return
	}
	if _, isConst := base.ConstVal(); isConst {
		return
	}
	key := base.Key() + "#" + itoa(off) + "#" + ty.String() + "#" + fnTarget
	if e.fieldSeen[key] {
		return
	}
	e.fieldSeen[key] = true
	e.sum.Fields = append(e.sum.Fields, FieldObs{Base: base, Off: off, Ty: ty, FnTarget: fnTarget})
}

// isPointerValue guesses whether a value expression is a pointer: known
// pointer type, heap identity, the stack pointer, or an argument already
// observed as a pointer base.
func (e *engine) isPointerValue(v *expr.Expr) bool {
	if v == nil {
		return false
	}
	if e.sum.Types[v.Key()].IsPointer() {
		return true
	}
	if name, ok := v.SymName(); ok {
		if expr.IsHeapName(name) || name == expr.StackSym {
			return true
		}
	}
	if base, _, ok := v.BasePlusOffset(); ok && base != v {
		if name, ok := base.SymName(); ok && (name == expr.StackSym || expr.IsHeapName(name)) {
			return true
		}
	}
	return false
}

func itoa(v int64) string {
	// small local helper to avoid strconv import churn
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// SortedDefKeys returns the definition-pair destination keys in sorted
// order (diagnostics and tests).
func (s *Summary) SortedDefKeys() []string {
	out := make([]string, 0, len(s.DefPairs))
	for _, dp := range s.DefPairs {
		out = append(out, dp.D.Key())
	}
	sort.Strings(out)
	return out
}

// FindDefs returns all definition pairs whose destination matches key.
func (s *Summary) FindDefs(key string) []DefPair {
	var out []DefPair
	for _, dp := range s.DefPairs {
		if dp.D.Key() == key {
			out = append(out, dp)
		}
	}
	return out
}

package ir

import (
	"testing"

	"dtaint/internal/expr"
	"dtaint/internal/isa"
)

func TestLiftCoversAllOpcodes(t *testing.T) {
	tests := []struct {
		in   isa.Inst
		want string
	}{
		{isa.Inst{Op: isa.OpMOV, Rd: isa.R5, Rm: isa.R0}, "R5 = R0"},
		{isa.Inst{Op: isa.OpMOV, Rd: isa.R2, Imm: 0x200, HasImm: true}, "R2 = 0x200"},
		{isa.Inst{Op: isa.OpLDR, Rd: isa.R1, Rn: isa.R5, Imm: 0x4C, HasImm: true}, "R1 = mem4[R5+76]"},
		{isa.Inst{Op: isa.OpLDRB, Rd: isa.R1, Rn: isa.R5, HasImm: true}, "R1 = mem1[R5+0]"},
		{isa.Inst{Op: isa.OpSTR, Rd: isa.R1, Rn: isa.SP, Imm: 8, HasImm: true}, "mem4[SP+8] = R1"},
		{isa.Inst{Op: isa.OpSTRB, Rd: isa.R0, Rn: isa.R4, HasImm: true}, "mem1[R4+0] = R0"},
		{isa.Inst{Op: isa.OpADD, Rd: isa.R0, Rn: isa.SP, Imm: 0x18, HasImm: true}, "R0 = SP + 0x18"},
		{isa.Inst{Op: isa.OpSUB, Rd: isa.SP, Rn: isa.SP, Imm: 0x118, HasImm: true}, "SP = SP - 0x118"},
		{isa.Inst{Op: isa.OpMUL, Rd: isa.R3, Rn: isa.R3, Rm: isa.R4}, "R3 = R3 * R4"},
		{isa.Inst{Op: isa.OpAND, Rd: isa.R10, Rn: isa.R3, Imm: 7, HasImm: true}, "R10 = R3 & 0x7"},
		{isa.Inst{Op: isa.OpORR, Rd: isa.R6, Rn: isa.R6, Rm: isa.R2}, "R6 = R6 | R2"},
		{isa.Inst{Op: isa.OpEOR, Rd: isa.R1, Rn: isa.R1, Rm: isa.R1}, "R1 = R1 ^ R1"},
		{isa.Inst{Op: isa.OpLSL, Rd: isa.R2, Rn: isa.R2, Imm: 8, HasImm: true}, "R2 = R2 << 0x8"},
		{isa.Inst{Op: isa.OpLSR, Rd: isa.R2, Rn: isa.R2, Imm: 16, HasImm: true}, "R2 = R2 >> 0x10"},
		{isa.Inst{Op: isa.OpCMP, Rd: isa.R0, Imm: 8, HasImm: true}, "flags = cmp(R0, 0x8)"},
		{isa.Inst{Op: isa.OpB, Cond: isa.CondEQ, Target: 0x670BC}, "if EQ goto 0x670bc"},
		{isa.Inst{Op: isa.OpB, Target: 0x1000}, "goto 0x1000"},
		{isa.Inst{Op: isa.OpBL, Target: 0x8000}, "call 0x8000"},
		{isa.Inst{Op: isa.OpBLX, Rm: isa.R12}, "call [R12]"},
		{isa.Inst{Op: isa.OpBX}, "ret"},
		{isa.Inst{Op: isa.OpNOP}, "nop"},
	}
	for _, tt := range tests {
		stmts := Lift(tt.in)
		if len(stmts) != 1 {
			t.Fatalf("%v lifts to %d stmts", tt.in, len(stmts))
		}
		if got := stmts[0].String(); got != tt.want {
			t.Errorf("Lift(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestExprOpMapping(t *testing.T) {
	want := map[Oper]expr.Op{
		OperAdd: expr.OpAdd, OperSub: expr.OpSub, OperMul: expr.OpMul,
		OperAnd: expr.OpAnd, OperOr: expr.OpOr, OperXor: expr.OpXor,
		OperShl: expr.OpShl, OperShr: expr.OpShr,
	}
	for o, e := range want {
		if o.ExprOp() != e {
			t.Errorf("%v.ExprOp() = %v, want %v", o, o.ExprOp(), e)
		}
	}
}

func TestValString(t *testing.T) {
	if R(isa.R3).String() != "R3" {
		t.Error("register operand")
	}
	if Imm(255).String() != "0xff" {
		t.Errorf("imm operand: %s", Imm(255))
	}
}

// Package ir defines the architecture-neutral intermediate representation
// that DTaint's analyses consume, standing in for the VEX IR the paper
// lifts firmware binaries into (Section III-B: "we first transfer the
// binary executable file into an intermediate representation").
//
// Every machine instruction lifts to a short sequence of IR statements
// over registers and memory; after lifting, nothing downstream depends on
// the architecture flavor except the calling convention.
package ir

import (
	"fmt"

	"dtaint/internal/expr"
	"dtaint/internal/isa"
)

// Val is an operand: a register or an immediate constant.
type Val struct {
	Reg   isa.Reg
	Imm   int64
	IsImm bool
}

// R returns a register operand.
func R(r isa.Reg) Val { return Val{Reg: r} }

// Imm returns an immediate operand.
func Imm(v int64) Val { return Val{Imm: v, IsImm: true} }

// String implements fmt.Stringer.
func (v Val) String() string {
	if v.IsImm {
		return fmt.Sprintf("%#x", v.Imm)
	}
	return v.Reg.String()
}

// Stmt is one IR statement.
type Stmt interface {
	irStmt()
	String() string
}

// Move assigns a value to a register: Dst = Src.
type Move struct {
	Dst isa.Reg
	Src Val
}

// Load reads Size bytes of memory: Dst = mem[Base + Off].
type Load struct {
	Dst  isa.Reg
	Base isa.Reg
	Off  int32
	Size int // 1 or 4
}

// Store writes Size bytes of memory: mem[Base + Off] = Src.
type Store struct {
	Src  Val
	Base isa.Reg
	Off  int32
	Size int
}

// BinOp computes Dst = A op B.
type BinOp struct {
	Dst  isa.Reg
	Op   Oper
	A, B Val
}

// Oper is an arithmetic/logic operator in the IR.
type Oper int

// IR operators.
const (
	OperAdd Oper = iota + 1
	OperSub
	OperMul
	OperAnd
	OperOr
	OperXor
	OperShl
	OperShr
)

var operNames = map[Oper]string{
	OperAdd: "+", OperSub: "-", OperMul: "*", OperAnd: "&",
	OperOr: "|", OperXor: "^", OperShl: "<<", OperShr: ">>",
}

// String implements fmt.Stringer.
func (o Oper) String() string {
	if s, ok := operNames[o]; ok {
		return s
	}
	return "?"
}

// Compare sets the condition flags from A compared with B.
type Compare struct {
	A, B Val
}

// Branch transfers control to Target when Cond holds (CondAL is
// unconditional).
type Branch struct {
	Cond   isa.Cond
	Target uint32
}

// Call invokes a function: direct (Target) or indirect (through Reg).
type Call struct {
	Target   uint32
	Indirect bool
	Reg      isa.Reg
}

// Ret returns to the caller.
type Ret struct{}

// Nop does nothing.
type Nop struct{}

func (Move) irStmt()    {}
func (Load) irStmt()    {}
func (Store) irStmt()   {}
func (BinOp) irStmt()   {}
func (Compare) irStmt() {}
func (Branch) irStmt()  {}
func (Call) irStmt()    {}
func (Ret) irStmt()     {}
func (Nop) irStmt()     {}

// String implements fmt.Stringer.
func (s Move) String() string { return fmt.Sprintf("%s = %s", s.Dst, s.Src) }

// String implements fmt.Stringer.
func (s Load) String() string {
	return fmt.Sprintf("%s = mem%d[%s%+d]", s.Dst, s.Size, s.Base, s.Off)
}

// String implements fmt.Stringer.
func (s Store) String() string {
	return fmt.Sprintf("mem%d[%s%+d] = %s", s.Size, s.Base, s.Off, s.Src)
}

// String implements fmt.Stringer.
func (s BinOp) String() string {
	return fmt.Sprintf("%s = %s %s %s", s.Dst, s.A, s.Op, s.B)
}

// String implements fmt.Stringer.
func (s Compare) String() string { return fmt.Sprintf("flags = cmp(%s, %s)", s.A, s.B) }

// String implements fmt.Stringer.
func (s Branch) String() string {
	if s.Cond == isa.CondAL {
		return fmt.Sprintf("goto %#x", s.Target)
	}
	return fmt.Sprintf("if %s goto %#x", s.Cond, s.Target)
}

// String implements fmt.Stringer.
func (s Call) String() string {
	if s.Indirect {
		return fmt.Sprintf("call [%s]", s.Reg)
	}
	return fmt.Sprintf("call %#x", s.Target)
}

// String implements fmt.Stringer.
func (Ret) String() string { return "ret" }

// String implements fmt.Stringer.
func (Nop) String() string { return "nop" }

// Lift translates one decoded machine instruction into IR statements.
// The lifting is total over valid instructions.
func Lift(in isa.Inst) []Stmt {
	switch in.Op {
	case isa.OpNOP:
		return []Stmt{Nop{}}
	case isa.OpMOV:
		return []Stmt{Move{Dst: in.Rd, Src: srcVal(in)}}
	case isa.OpLDR:
		return []Stmt{Load{Dst: in.Rd, Base: in.Rn, Off: in.Imm, Size: 4}}
	case isa.OpLDRB:
		return []Stmt{Load{Dst: in.Rd, Base: in.Rn, Off: in.Imm, Size: 1}}
	case isa.OpSTR:
		return []Stmt{Store{Src: R(in.Rd), Base: in.Rn, Off: in.Imm, Size: 4}}
	case isa.OpSTRB:
		return []Stmt{Store{Src: R(in.Rd), Base: in.Rn, Off: in.Imm, Size: 1}}
	case isa.OpADD:
		return []Stmt{BinOp{Dst: in.Rd, Op: OperAdd, A: R(in.Rn), B: srcVal(in)}}
	case isa.OpSUB:
		return []Stmt{BinOp{Dst: in.Rd, Op: OperSub, A: R(in.Rn), B: srcVal(in)}}
	case isa.OpMUL:
		return []Stmt{BinOp{Dst: in.Rd, Op: OperMul, A: R(in.Rn), B: srcVal(in)}}
	case isa.OpAND:
		return []Stmt{BinOp{Dst: in.Rd, Op: OperAnd, A: R(in.Rn), B: srcVal(in)}}
	case isa.OpORR:
		return []Stmt{BinOp{Dst: in.Rd, Op: OperOr, A: R(in.Rn), B: srcVal(in)}}
	case isa.OpEOR:
		return []Stmt{BinOp{Dst: in.Rd, Op: OperXor, A: R(in.Rn), B: srcVal(in)}}
	case isa.OpLSL:
		return []Stmt{BinOp{Dst: in.Rd, Op: OperShl, A: R(in.Rn), B: srcVal(in)}}
	case isa.OpLSR:
		return []Stmt{BinOp{Dst: in.Rd, Op: OperShr, A: R(in.Rn), B: srcVal(in)}}
	case isa.OpCMP:
		return []Stmt{Compare{A: R(in.Rd), B: srcVal(in)}}
	case isa.OpB:
		return []Stmt{Branch{Cond: in.Cond, Target: in.Target}}
	case isa.OpBL:
		return []Stmt{Call{Target: in.Target}}
	case isa.OpBLX:
		return []Stmt{Call{Indirect: true, Reg: in.Rm}}
	case isa.OpBX:
		return []Stmt{Ret{}}
	}
	return []Stmt{Nop{}}
}

func srcVal(in isa.Inst) Val {
	if in.HasImm {
		return Imm(int64(in.Imm))
	}
	return R(in.Rm)
}

// ExprOp maps an IR operator onto the symbolic expression operator.
func (o Oper) ExprOp() expr.Op {
	switch o {
	case OperAdd:
		return expr.OpAdd
	case OperSub:
		return expr.OpSub
	case OperMul:
		return expr.OpMul
	case OperAnd:
		return expr.OpAnd
	case OperOr:
		return expr.OpOr
	case OperXor:
		return expr.OpXor
	case OperShl:
		return expr.OpShl
	case OperShr:
		return expr.OpShr
	}
	return expr.OpAdd
}

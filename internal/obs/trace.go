package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// SpanRecord is one finished (or, in start callbacks, just-started)
// span: a named, annotated time interval in the pipeline.
type SpanRecord struct {
	// ID is unique within the tracer; Parent is the enclosing span's ID
	// (0 for roots). IDs are allocation-ordered, not deterministic across
	// differently parallel runs — compare spans by Name and Attrs.
	ID     uint64
	Parent uint64
	Name   string
	Start  time.Time
	// Duration is zero in OnSpanStart callbacks.
	Duration time.Duration
	Attrs    []Attr
}

// Attr returns the value of the named attribute (nil if absent).
func (r SpanRecord) Attr(key string) any {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// Tracer collects spans from any number of goroutines. The zero value
// is not usable; call NewTracer. A nil *Tracer is a valid no-op tracer.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	nextID  uint64
	spans   []SpanRecord
	onStart []func(SpanRecord)
	onEnd   []func(SpanRecord)
}

// NewTracer returns an empty tracer whose trace clock starts now.
func NewTracer() *Tracer { return &Tracer{epoch: time.Now()} }

// OnSpanStart registers fn to run synchronously whenever a span starts.
// Handlers must be registered before spans are created.
func (t *Tracer) OnSpanStart(fn func(SpanRecord)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onStart = append(t.onStart, fn)
	t.mu.Unlock()
}

// OnSpanEnd registers fn to run synchronously whenever a span ends.
func (t *Tracer) OnSpanEnd(fn func(SpanRecord)) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.onEnd = append(t.onEnd, fn)
	t.mu.Unlock()
}

// Span is an in-flight interval. Nil spans (from a nil tracer) are
// valid: every method no-ops and StartChild returns nil again.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// StartSpan starts a root span.
func (t *Tracer) StartSpan(name string, attrs ...Attr) *Span {
	return t.startSpan(0, name, attrs)
}

// Start starts a span under parent, or a root span when parent is nil —
// the form instrumented code uses to thread an optional enclosing span.
func (t *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	if parent != nil && parent.t != nil {
		return parent.StartChild(name, attrs...)
	}
	return t.startSpan(0, name, attrs)
}

// StartChild starts a nested span. Safe to call from any goroutine —
// sibling children may run concurrently.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil || s.t == nil {
		return nil
	}
	return s.t.startSpan(s.id, name, attrs)
}

func (t *Tracer) startSpan(parent uint64, name string, attrs []Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	s := &Span{t: t, id: t.nextID, parent: parent, name: name,
		start: time.Now(), attrs: append([]Attr(nil), attrs...)}
	handlers := t.onStart
	t.mu.Unlock()
	if len(handlers) > 0 {
		rec := s.record(0)
		for _, fn := range handlers {
			fn(rec)
		}
	}
	return s
}

// SetAttr sets (or replaces) an attribute on the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End finishes the span and records it. Double-End is a no-op.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.mu.Unlock()

	rec := s.record(time.Since(s.start))
	t := s.t
	t.mu.Lock()
	t.spans = append(t.spans, rec)
	handlers := t.onEnd
	t.mu.Unlock()
	for _, fn := range handlers {
		fn(rec)
	}
}

func (s *Span) record(d time.Duration) SpanRecord {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	return SpanRecord{ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Duration: d, Attrs: attrs}
}

// Spans returns a snapshot of every finished span, in end order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// SpanNames returns the distinct names of finished spans, sorted.
func (t *Tracer) SpanNames() []string {
	seen := map[string]bool{}
	for _, s := range t.Spans() {
		seen[s.Name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------------------
// Chrome trace_event export.

// chromeEvent is one complete ("ph":"X") event of the Chrome trace
// format, the JSON that chrome://tracing and Perfetto load directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds since trace epoch
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the finished spans as Chrome trace_event
// JSON. Spans are laid out on synthetic threads ("lanes"): a span lands
// on its parent's lane when it nests there in time, so call structure
// reads as slice nesting; concurrent siblings spill onto further lanes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := w.Write([]byte(`{"traceEvents":[]}` + "\n"))
		return err
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		// Equal starts: longer first so parents precede their children.
		if spans[i].Duration != spans[j].Duration {
			return spans[i].Duration > spans[j].Duration
		}
		return spans[i].ID < spans[j].ID
	})

	t.mu.Lock()
	epoch := t.epoch
	t.mu.Unlock()

	type iv struct{ start, end int64 } // microseconds
	lanes := make([][]iv, 0, 4)        // per-lane stack of open intervals
	laneOf := make(map[uint64]int, len(spans))

	fits := func(lane int, s iv) bool {
		st := lanes[lane]
		// Drop intervals that ended before this span starts (spans are
		// visited in start order, so they can never matter again).
		for len(st) > 0 && st[len(st)-1].end <= s.start {
			st = st[:len(st)-1]
		}
		lanes[lane] = st
		return len(st) == 0 || (s.start >= st[len(st)-1].start && s.end <= st[len(st)-1].end)
	}

	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		start := s.Start.Sub(epoch).Microseconds()
		span := iv{start: start, end: start + s.Duration.Microseconds()}
		lane := -1
		if pl, ok := laneOf[s.Parent]; ok && fits(pl, span) {
			lane = pl
		} else {
			for l := range lanes {
				if fits(l, span) {
					lane = l
					break
				}
			}
		}
		if lane == -1 {
			lanes = append(lanes, nil)
			lane = len(lanes) - 1
		}
		lanes[lane] = append(lanes[lane], span)
		laneOf[s.ID] = lane

		ev := chromeEvent{
			Name: s.Name, Cat: "dtaint", Ph: "X",
			Ts: span.start, Dur: s.Duration.Microseconds(),
			Pid: 1, Tid: lane + 1,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// Package events is the live-telemetry substrate of the pipeline: a
// bounded, lock-free-read ring-buffer journal of typed, sequence-
// numbered ScanEvents, fed by a span→event bridge over the obs tracer
// and by first-class progress emissions from the analysis phases.
//
// One journal serves every consumer the same stream: the dtaintd SSE
// endpoints (per-job and firehose, resumable via Last-Event-ID), the
// dtaint -progress printer, the stall watchdog, and the bench harness.
//
// Like the rest of internal/obs, every handle is nil-safe: a nil
// *Journal, *Emitter, or *Watchdog no-ops on every method, so
// instrumented code never branches on whether telemetry is attached.
//
// Determinism contract: the event *multiset* — compared by DetKey,
// which excludes the wall-clock fields (Seq, Time, Duration, ETA,
// Rate) — is bit-identical for any worker count, exactly as span
// multisets are today. Emission sites therefore derive Done counters
// from atomic or mutex-ordered counts (unique values, order-free) and
// keep wall-clock readings out of Attrs.
package events

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Event types. Stage, binary, and component events come from the
// span→event bridge; progress, cache, sumstore, and finding events are
// emitted first-class by dataflow/fleet/diff; job.* events are emitted
// by dtaintd's job lifecycle; stall comes from the watchdog.
const (
	TypeJobQueued  = "job.queued"
	TypeJobStarted = "job.started"
	TypeJobDone    = "job.done"
	TypeJobFailed  = "job.failed"

	TypeStageStart = "stage.start"
	TypeStageEnd   = "stage.end"

	TypeBinaryStart = "binary.start"
	TypeBinaryDone  = "binary.done"

	// TypeComponentDone marks one SCC-DAG component (one wave unit of
	// the bottom-up interprocedural pass) finished.
	TypeComponentDone = "scc.done"

	TypeCacheHit = "cache.hit"
	TypeSumStore = "sumstore.stats"
	TypeFinding  = "finding"
	TypeProgress = "progress"
	TypeStall    = "stall"
)

// ScanEvent is one typed, sequence-numbered telemetry record. The
// zero value plus a Type is a valid event; the journal stamps Seq and
// Time on append.
type ScanEvent struct {
	// Seq is the journal-assigned sequence number, strictly increasing
	// from 1. It doubles as the SSE event id for Last-Event-ID resume.
	Seq uint64 `json:"seq"`
	// Time is the append wall-clock time (journal-stamped when zero).
	Time time.Time `json:"time"`
	Type string    `json:"type"`
	// Job scopes the event to one dtaintd job ("" for CLI runs).
	Job string `json:"job,omitempty"`
	// Path is the rootfs path of the binary the event concerns.
	Path string `json:"path,omitempty"`
	// Stage names the pipeline stage for stage.*/progress events.
	Stage string `json:"stage,omitempty"`
	// Done/Total carry progress numerators and denominators.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`

	// Wall-clock fields — excluded from DetKey, free to vary run to run.
	Duration time.Duration `json:"durationNanos,omitempty"`
	ETA      time.Duration `json:"etaNanos,omitempty"`
	Rate     float64       `json:"rate,omitempty"` // progress units per second

	// Attrs carries deterministic content only (counts, names, hashes,
	// statuses) — never durations or timestamps, which belong in the
	// dedicated wall-clock fields above.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Terminal reports whether the event ends its job's stream — the
// condition the per-job SSE handler closes on.
func (e ScanEvent) Terminal() bool {
	return e.Type == TypeJobDone || e.Type == TypeJobFailed
}

// DetKey is the canonical deterministic identity of the event: every
// field except the wall-clock ones (Seq, Time, Duration, ETA, Rate),
// with Attrs in sorted key order. Two runs of the same analysis at any
// worker counts produce equal DetKey multisets.
func (e ScanEvent) DetKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|job=%s|path=%s|stage=%s|done=%d|total=%d",
		e.Type, e.Job, e.Path, e.Stage, e.Done, e.Total)
	if len(e.Attrs) > 0 {
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "|%s=%v", k, e.Attrs[k])
		}
	}
	return b.String()
}

// DetKeys returns the sorted DetKey multiset of evs — the form the
// determinism tests compare across worker counts.
func DetKeys(evs []ScanEvent) []string {
	keys := make([]string, len(evs))
	for i, e := range evs {
		keys[i] = e.DetKey()
	}
	sort.Strings(keys)
	return keys
}

package events

import (
	"fmt"
	"io"
	"sync"
)

// Printer renders ScanEvents as human progress lines — the single
// progress implementation behind both `dtaint -progress` and any
// consumer of the dtaintd SSE stream. All state rides in the events
// themselves, so the printer is a stateless line formatter; a mutex
// keeps concurrent Handle calls from interleaving lines.
type Printer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewPrinter returns a printer writing "dtaint: ..." lines to w.
func NewPrinter(w io.Writer) *Printer { return &Printer{w: w} }

// AttachPrinter registers a printer on the journal and returns the
// tap remover. Events already buffered are not replayed.
func AttachPrinter(j *Journal, w io.Writer) (remove func()) {
	p := NewPrinter(w)
	return j.OnEvent(p.Handle)
}

// unitOf names the progress unit per stage; stages absent here print
// unitless "done/total" counts.
var unitOf = map[string]string{
	"function-analysis":  "functions",
	"interproc-dataflow": "functions",
	"binaries":           "binaries",
}

// Handle renders one event (safe for concurrent use).
func (p *Printer) Handle(ev ScanEvent) {
	line := renderLine(ev)
	if line == "" {
		return
	}
	p.mu.Lock()
	fmt.Fprintln(p.w, line)
	p.mu.Unlock()
}

// renderLine formats one event as a progress line ("" to skip it).
func renderLine(ev ScanEvent) string {
	switch ev.Type {
	case TypeStageStart:
		if n, ok := attrInt(ev.Attrs["functions"]); ok && n > 0 {
			return fmt.Sprintf("dtaint: %s: %d functions", ev.Stage, n)
		}
		return fmt.Sprintf("dtaint: %s...", ev.Stage)
	case TypeStageEnd:
		return fmt.Sprintf("dtaint: %s done in %.2fs", ev.Stage, ev.Duration.Seconds())
	case TypeProgress:
		if ev.Total <= 0 {
			return ""
		}
		line := fmt.Sprintf("dtaint: %s: %d/%d", ev.Stage, ev.Done, ev.Total)
		if unit := unitOf[ev.Stage]; unit != "" {
			line += " " + unit
		}
		line += fmt.Sprintf(" (%d%%)", ev.Done*100/ev.Total)
		if ev.ETA > 0 {
			line += fmt.Sprintf(" eta %.0fs", ev.ETA.Seconds())
		}
		return line
	case TypeBinaryDone:
		status, _ := ev.Attrs["status"].(string)
		return fmt.Sprintf("dtaint: scanned %s (%s) in %.2fs", ev.Path, status, ev.Duration.Seconds())
	case TypeStall:
		line := fmt.Sprintf("dtaint: STALL: no events for %v", ev.Duration)
		if b, _ := ev.Attrs["bundle"].(string); b != "" {
			line += ", diagnostic bundle at " + b
		}
		return line
	case TypeJobDone:
		return fmt.Sprintf("dtaint: job %s done", ev.Job)
	case TypeJobFailed:
		return fmt.Sprintf("dtaint: job %s failed", ev.Job)
	}
	return ""
}

// attrInt widens whichever integer type an event attr carries (span
// attrs arrive as int/int64; JSON round-trips arrive as float64).
func attrInt(v any) (int, bool) {
	switch n := v.(type) {
	case int:
		return n, true
	case int64:
		return int(n), true
	case uint64:
		return int(n), true
	case float64:
		return int(n), true
	}
	return 0, false
}

package events

import (
	"sync"

	"dtaint/internal/obs"
)

// Per-function spans are too fine-grained to journal one event each —
// the progress events emitted by the analysis phases aggregate them.
var perFunctionSpans = map[string]bool{
	"ssa-function": true,
	"ddg-function": true,
}

// Bridge registers span handlers on the tracer that republish every
// span as a typed ScanEvent on the emitter: stage spans become
// stage.start/stage.end, per-binary scan spans become
// binary.start/binary.done, and SCC-DAG component spans become
// scc.done waves. Binary paths propagate from a span's "path" attr
// down to its child stage spans, so stage events are attributable to
// the binary they ran for even in concurrent fleet scans.
//
// Register before any spans are created (the tracer contract). A nil
// tracer registers nothing; a nil emitter makes the handlers no-ops.
func Bridge(t *obs.Tracer, em *Emitter) {
	b := &spanBridge{em: em, pathOf: make(map[uint64]string)}
	t.OnSpanStart(b.spanStart)
	t.OnSpanEnd(b.spanEnd)
}

type spanBridge struct {
	em *Emitter

	mu     sync.Mutex
	pathOf map[uint64]string // open span ID -> binary path it belongs to
}

func (b *spanBridge) spanStart(rec obs.SpanRecord) {
	if perFunctionSpans[rec.Name] || rec.Name == "scc-component" {
		return
	}
	path, _ := rec.Attr("path").(string)
	b.mu.Lock()
	if path == "" {
		path = b.pathOf[rec.Parent]
	}
	b.pathOf[rec.ID] = path
	b.mu.Unlock()

	if rec.Name == "scan-binary" {
		b.em.Emit(ScanEvent{Type: TypeBinaryStart, Path: path, Attrs: attrMap(rec.Attrs, "path")})
		return
	}
	b.em.Emit(ScanEvent{Type: TypeStageStart, Stage: rec.Name, Path: path, Attrs: attrMap(rec.Attrs)})
}

func (b *spanBridge) spanEnd(rec obs.SpanRecord) {
	if perFunctionSpans[rec.Name] {
		return
	}
	if rec.Name == "scc-component" {
		b.mu.Lock()
		path := b.pathOf[rec.Parent]
		b.mu.Unlock()
		b.em.Emit(ScanEvent{Type: TypeComponentDone, Stage: "interproc-dataflow",
			Path: path, Duration: rec.Duration, Attrs: attrMap(rec.Attrs)})
		return
	}
	b.mu.Lock()
	path := b.pathOf[rec.ID]
	delete(b.pathOf, rec.ID)
	b.mu.Unlock()
	if p, _ := rec.Attr("path").(string); p != "" {
		path = p
	}

	if rec.Name == "scan-binary" {
		b.em.Emit(ScanEvent{Type: TypeBinaryDone, Path: path,
			Duration: rec.Duration, Attrs: attrMap(rec.Attrs, "path")})
		return
	}
	b.em.Emit(ScanEvent{Type: TypeStageEnd, Stage: rec.Name, Path: path,
		Duration: rec.Duration, Attrs: attrMap(rec.Attrs)})
}

// attrMap converts span attrs to an event attr map, dropping the
// listed keys (already lifted into dedicated event fields).
func attrMap(attrs []obs.Attr, drop ...string) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
outer:
	for _, a := range attrs {
		for _, d := range drop {
			if a.Key == d {
				continue outer
			}
		}
		m[a.Key] = a.Value
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

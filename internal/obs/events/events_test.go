package events

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJournalAppendAndSince(t *testing.T) {
	j := NewJournal(8)
	for i := 0; i < 5; i++ {
		seq := j.Append(ScanEvent{Type: TypeProgress, Done: i})
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	evs, dropped := j.Since(0)
	if dropped != 0 || len(evs) != 5 {
		t.Fatalf("Since(0) = %d events, %d dropped; want 5, 0", len(evs), dropped)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) || ev.Done != i {
			t.Fatalf("event %d = seq %d done %d", i, ev.Seq, ev.Done)
		}
		if ev.Time.IsZero() {
			t.Fatalf("event %d has zero time", i)
		}
	}
	evs, _ = j.Since(3)
	if len(evs) != 2 || evs[0].Seq != 4 {
		t.Fatalf("Since(3) = %+v", evs)
	}
	if evs, _ := j.Since(5); len(evs) != 0 {
		t.Fatalf("Since(head) returned %d events", len(evs))
	}
}

// TestJournalWraparound is the satellite overflow test: a ring of 4
// receiving 10 events keeps the newest 4 and reports the overwritten
// ones as dropped.
func TestJournalWraparound(t *testing.T) {
	j := NewJournal(4)
	for i := 1; i <= 10; i++ {
		j.Append(ScanEvent{Type: TypeProgress, Done: i})
	}
	evs, dropped := j.Since(0)
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("kept %d events, seqs %d..%d; want 4 events 7..10",
			len(evs), evs[0].Seq, evs[len(evs)-1].Seq)
	}
	st := j.Stats()
	want := JournalStats{Appended: 10, Dropped: 6, Capacity: 4, HighWater: 4}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
}

func TestJournalConcurrentAppendAndRead(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.Append(ScanEvent{Type: TypeProgress, Done: i, Attrs: map[string]any{"w": w}})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			evs, _ := j.Since(0)
			for k := 1; k < len(evs); k++ {
				if evs[k].Seq <= evs[k-1].Seq {
					t.Errorf("non-increasing seqs: %d then %d", evs[k-1].Seq, evs[k].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if head := j.Head(); head != 1600 {
		t.Fatalf("head = %d, want 1600", head)
	}
}

func TestSubscribePollAndNext(t *testing.T) {
	j := NewJournal(16)
	j.Append(ScanEvent{Type: TypeStageStart, Stage: "a"})
	j.Append(ScanEvent{Type: TypeStageEnd, Stage: "a"})

	s := j.Subscribe(0)
	defer s.Close()
	evs, dropped := s.Poll()
	if dropped != 0 || len(evs) != 2 {
		t.Fatalf("Poll = %d events, %d dropped", len(evs), dropped)
	}
	if evs, _ := s.Poll(); len(evs) != 0 {
		t.Fatalf("second Poll returned %d events", len(evs))
	}

	go func() {
		time.Sleep(10 * time.Millisecond)
		j.Append(ScanEvent{Type: TypeJobDone})
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	evs, _, err := s.Next(ctx)
	if err != nil || len(evs) != 1 || evs[0].Type != TypeJobDone {
		t.Fatalf("Next = %+v, %v", evs, err)
	}

	// Resume semantics: a fresh subscription after seq 2 sees only 3.
	r := j.Subscribe(2)
	defer r.Close()
	evs, _ = r.Poll()
	if len(evs) != 1 || evs[0].Seq != 3 {
		t.Fatalf("resumed Poll = %+v", evs)
	}
}

// A subscriber that fell behind a wrapped ring learns how many events
// it lost — the contract the SSE resume path reports as a comment.
func TestSubscribeBehindWrap(t *testing.T) {
	j := NewJournal(4)
	s := j.Subscribe(0)
	defer s.Close()
	for i := 1; i <= 10; i++ {
		j.Append(ScanEvent{Type: TypeProgress, Done: i})
	}
	evs, dropped := s.Poll()
	if dropped != 6 || len(evs) != 4 {
		t.Fatalf("Poll = %d events, %d dropped; want 4, 6", len(evs), dropped)
	}
	j.Append(ScanEvent{Type: TypeJobDone})
	evs, dropped = s.Poll()
	if dropped != 0 || len(evs) != 1 || evs[0].Seq != 11 {
		t.Fatalf("post-wrap Poll = %+v, %d dropped", evs, dropped)
	}
}

func TestNilJournalHandles(t *testing.T) {
	var j *Journal
	if seq := j.Append(ScanEvent{Type: TypeProgress}); seq != 0 {
		t.Fatalf("nil Append = %d", seq)
	}
	if evs, dropped := j.Since(0); evs != nil || dropped != 0 {
		t.Fatal("nil Since returned data")
	}
	j.OnEvent(func(ScanEvent) {})()
	if j.Stats() != (JournalStats{}) {
		t.Fatal("nil Stats non-zero")
	}
	var em *Emitter = j.Emitter("job")
	if em != nil {
		t.Fatal("nil journal produced an emitter")
	}
	em.Emit(ScanEvent{Type: TypeProgress})
	em.Progress("stage", 1, 2)
	if em.WithPath("/bin/sh") != nil || em.Journal() != nil || em.Job() != "" {
		t.Fatal("nil emitter derived state")
	}
	var w *Watchdog
	w.Stop()
	if w.Stalled() != nil || w.Fired() != 0 {
		t.Fatal("nil watchdog returned state")
	}
	var s *Sub = j.Subscribe(0)
	s.Close()
	if evs, d := s.Poll(); evs != nil || d != 0 {
		t.Fatal("nil sub polled data")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.Next(ctx); err == nil {
		t.Fatal("nil sub Next returned without error")
	}
}

func TestEmitterScopeStamping(t *testing.T) {
	j := NewJournal(16)
	em := j.Emitter("job-1").WithPath("/bin/busybox")
	em.Emit(ScanEvent{Type: TypeCacheHit})
	em.Emit(ScanEvent{Type: TypeFinding, Path: "/other", Job: "job-2"})
	evs := j.Snapshot()
	if evs[0].Job != "job-1" || evs[0].Path != "/bin/busybox" {
		t.Fatalf("scope not stamped: %+v", evs[0])
	}
	if evs[1].Job != "job-2" || evs[1].Path != "/other" {
		t.Fatalf("explicit fields overwritten: %+v", evs[1])
	}
}

func TestProgressRateAndETA(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clock := base
	now = func() time.Time { return clock }
	defer func() { now = time.Now }()

	j := NewJournal(16)
	em := j.Emitter("")
	for i := 1; i <= 5; i++ {
		clock = base.Add(time.Duration(i) * time.Second)
		em.Progress("function-analysis", i*10, 100)
	}
	evs := j.Snapshot()
	last := evs[len(evs)-1]
	if last.Done != 50 || last.Total != 100 {
		t.Fatalf("last progress = %d/%d", last.Done, last.Total)
	}
	// 10 units/sec over the window; 50 remaining -> 5s ETA.
	if last.Rate < 9.9 || last.Rate > 10.1 {
		t.Fatalf("rate = %v, want ~10/s", last.Rate)
	}
	if last.ETA < 4900*time.Millisecond || last.ETA > 5100*time.Millisecond {
		t.Fatalf("eta = %v, want ~5s", last.ETA)
	}
	if first := evs[0]; first.Rate != 0 || first.ETA != 0 {
		t.Fatalf("first sample has rate %v eta %v, want unknown", first.Rate, first.ETA)
	}
}

func TestDetKeyExcludesWallClock(t *testing.T) {
	a := ScanEvent{Seq: 1, Time: time.Now(), Type: TypeProgress, Stage: "s",
		Done: 3, Total: 9, Rate: 12.5, ETA: time.Second, Duration: time.Minute,
		Attrs: map[string]any{"b": 2, "a": 1}}
	b := ScanEvent{Seq: 99, Time: time.Now().Add(time.Hour), Type: TypeProgress,
		Stage: "s", Done: 3, Total: 9, Rate: 1e9, ETA: 0, Duration: 0,
		Attrs: map[string]any{"a": 1, "b": 2}}
	if a.DetKey() != b.DetKey() {
		t.Fatalf("DetKey differs on wall-clock-only changes:\n%s\n%s", a.DetKey(), b.DetKey())
	}
	c := b
	c.Done = 4
	if a.DetKey() == c.DetKey() {
		t.Fatal("DetKey ignores Done")
	}
	if !strings.Contains(a.DetKey(), "a=1|b=2") {
		t.Fatalf("attrs not sorted in %q", a.DetKey())
	}
}

func TestDetKeysMultiset(t *testing.T) {
	mk := func(order []int) []ScanEvent {
		evs := make([]ScanEvent, len(order))
		for i, d := range order {
			evs[i] = ScanEvent{Seq: uint64(i), Type: TypeProgress, Done: d, Total: 4}
		}
		return evs
	}
	a := DetKeys(mk([]int{1, 2, 3, 4}))
	b := DetKeys(mk([]int{4, 2, 1, 3}))
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("multisets differ:\n%v\n%v", a, b)
	}
}

func TestPrinterLines(t *testing.T) {
	cases := []struct {
		ev   ScanEvent
		want string
	}{
		{ScanEvent{Type: TypeStageStart, Stage: "parse-image"}, "dtaint: parse-image..."},
		{ScanEvent{Type: TypeStageStart, Stage: "function-analysis",
			Attrs: map[string]any{"functions": 40}}, "dtaint: function-analysis: 40 functions"},
		{ScanEvent{Type: TypeProgress, Stage: "function-analysis", Done: 12, Total: 40},
			"dtaint: function-analysis: 12/40 functions (30%)"},
		{ScanEvent{Type: TypeProgress, Stage: "binaries", Done: 1, Total: 2, ETA: 9 * time.Second},
			"dtaint: binaries: 1/2 binaries (50%) eta 9s"},
		{ScanEvent{Type: TypeStageEnd, Stage: "build-cfg", Duration: 1500 * time.Millisecond},
			"dtaint: build-cfg done in 1.50s"},
		{ScanEvent{Type: TypeBinaryDone, Path: "/bin/sh", Duration: 2 * time.Second,
			Attrs: map[string]any{"status": "ok"}}, "dtaint: scanned /bin/sh (ok) in 2.00s"},
		{ScanEvent{Type: TypeStall, Duration: 30 * time.Second,
			Attrs: map[string]any{"bundle": "/tmp/d/stall-001"}},
			"dtaint: STALL: no events for 30s, diagnostic bundle at /tmp/d/stall-001"},
		{ScanEvent{Type: TypeCacheHit}, ""},
		{ScanEvent{Type: TypeProgress, Stage: "x", Done: 1, Total: 0}, ""},
	}
	for _, c := range cases {
		if got := renderLine(c.ev); got != c.want {
			t.Errorf("renderLine(%s) = %q, want %q", c.ev.Type, got, c.want)
		}
	}

	var sb strings.Builder
	j := NewJournal(8)
	remove := AttachPrinter(j, &sb)
	j.Append(ScanEvent{Type: TypeStageStart, Stage: "parse-image"})
	remove()
	j.Append(ScanEvent{Type: TypeStageStart, Stage: "build-cfg"})
	if got := sb.String(); got != "dtaint: parse-image...\n" {
		t.Fatalf("printed %q", got)
	}
}

package events

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dtaint/internal/obs"
)

// WatchdogConfig configures a stall watchdog over one job's event
// stream.
type WatchdogConfig struct {
	// Journal is the event stream watched and the destination of the
	// stall event. Required.
	Journal *Journal
	// Job scopes the watch to events stamped with this job id; ""
	// watches (and re-arms on) every event.
	Job string
	// Deadline is the silence duration that counts as a stall. Required.
	Deadline time.Duration
	// DebugDir, when non-empty, receives one diagnostic bundle
	// directory per stall: goroutines.txt, trace.json, metrics.json,
	// options.txt, events.jsonl, and report.json when Partial is set.
	DebugDir string
	// Fingerprint is the analyzer-options fingerprint written to
	// options.txt — which cache/store keyspace the wedged run was in.
	Fingerprint string
	// Tracer/Metrics are snapshotted into the bundle (nil-safe).
	Tracer  *obs.Tracer
	Metrics *obs.Registry
	// Partial, when set, writes the partial report (whatever completed
	// before the stall) into the bundle's report.json.
	Partial func(io.Writer) error
	// OnStall, when set, runs after each stall fires, with the bundle
	// directory ("" when no bundle was written).
	OnStall func(bundleDir string)
}

// Watchdog fires when its job emits no events for the configured
// deadline: it captures a goroutine dump and a diagnostic bundle,
// emits a stall event, and closes the current Stalled channel so
// in-flight work can be abandoned. Any subsequent event re-arms it,
// so one wedged binary doesn't condemn the binaries after it.
//
// A nil *Watchdog is valid: Stop no-ops and Stalled returns a nil
// channel (which never delivers — exactly the "no watchdog" select
// behavior).
type Watchdog struct {
	cfg WatchdogConfig
	em  *Emitter

	armed    atomic.Bool
	lastAt   atomic.Int64 // unix nanos of the last counted event
	lastType atomic.Value // string: type of the last counted event
	fired    atomic.Uint64

	mu      sync.Mutex
	stalled chan struct{} // closed on fire, then replaced

	stop      chan struct{}
	done      chan struct{}
	removeTap func()
}

// StartWatchdog arms a watchdog per cfg and returns it, or nil when
// cfg has no journal or no deadline (telemetry off means no watchdog).
// The watchdog arms on the job's first event. Call Stop when the job
// finishes.
func StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Journal == nil || cfg.Deadline <= 0 {
		return nil
	}
	w := &Watchdog{
		cfg:     cfg,
		em:      cfg.Journal.Emitter(cfg.Job),
		stalled: make(chan struct{}),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	w.removeTap = cfg.Journal.OnEvent(w.observe)
	go w.watch()
	return w
}

// Stop disarms the watchdog and releases its tap and goroutine.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.removeTap()
	close(w.stop)
	<-w.done
}

// Stalled returns a channel closed when the watchdog fires. Each fire
// closes the channel returned before it; the next call returns a fresh
// one, so work started after a stall gets its own kill signal.
func (w *Watchdog) Stalled() <-chan struct{} {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stalled
}

// Fired returns how many times the watchdog has fired.
func (w *Watchdog) Fired() int {
	if w == nil {
		return 0
	}
	return int(w.fired.Load())
}

// observe is the journal tap: every event of the watched job (except
// the watchdog's own stall events) re-arms the deadline. Atomics only —
// it runs under the journal's append lock.
func (w *Watchdog) observe(ev ScanEvent) {
	if w.cfg.Job != "" && ev.Job != w.cfg.Job {
		return
	}
	if ev.Type == TypeStall {
		return
	}
	w.lastAt.Store(now().UnixNano())
	w.lastType.Store(ev.Type)
	w.armed.Store(true)
}

func (w *Watchdog) watch() {
	defer close(w.done)
	interval := w.cfg.Deadline / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
		}
		if !w.armed.Load() {
			continue
		}
		silence := now().Sub(time.Unix(0, w.lastAt.Load()))
		if silence < w.cfg.Deadline {
			continue
		}
		w.fire(silence)
	}
}

func (w *Watchdog) fire(silence time.Duration) {
	w.armed.Store(false) // disarm until the next event
	n := w.fired.Add(1)
	dir := w.writeBundle(n)

	attrs := map[string]any{"count": n}
	if dir != "" {
		attrs["bundle"] = dir
	}
	if lt, _ := w.lastType.Load().(string); lt != "" {
		attrs["lastType"] = lt
	}
	w.em.Emit(ScanEvent{Type: TypeStall, Duration: silence, Attrs: attrs})

	w.mu.Lock()
	close(w.stalled)
	w.stalled = make(chan struct{})
	w.mu.Unlock()

	if w.cfg.OnStall != nil {
		w.cfg.OnStall(dir)
	}
}

// writeBundle captures the diagnostic bundle directory for the n-th
// stall and returns its path ("" when DebugDir is unset or the
// directory cannot be created; individual capture errors are recorded
// in the bundle itself rather than aborting it).
func (w *Watchdog) writeBundle(n uint64) string {
	if w.cfg.DebugDir == "" {
		return ""
	}
	name := fmt.Sprintf("stall-%03d", n)
	if w.cfg.Job != "" {
		name = fmt.Sprintf("stall-%s-%03d", sanitizeName(w.cfg.Job), n)
	}
	dir := filepath.Join(w.cfg.DebugDir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return ""
	}

	writeFile(dir, "goroutines.txt", func(f io.Writer) error {
		_, err := f.Write(goroutineDump())
		return err
	})
	writeFile(dir, "trace.json", w.cfg.Tracer.WriteChromeTrace)
	writeFile(dir, "metrics.json", w.cfg.Metrics.WriteJSON)
	writeFile(dir, "options.txt", func(f io.Writer) error {
		_, err := fmt.Fprintf(f, "fingerprint: %s\ndeadline: %v\n", w.cfg.Fingerprint, w.cfg.Deadline)
		return err
	})
	writeFile(dir, "events.jsonl", func(f io.Writer) error {
		enc := json.NewEncoder(f)
		for _, ev := range w.cfg.Journal.Snapshot() {
			if w.cfg.Job != "" && ev.Job != w.cfg.Job {
				continue
			}
			if err := enc.Encode(ev); err != nil {
				return err
			}
		}
		return nil
	})
	if w.cfg.Partial != nil {
		writeFile(dir, "report.json", w.cfg.Partial)
	}
	return dir
}

// writeFile writes one bundle member; a capture error is preserved as
// the file's content so a half-broken process still yields evidence.
func writeFile(dir, name string, fill func(io.Writer) error) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return
	}
	if err := fill(f); err != nil {
		fmt.Fprintf(f, "\ncapture error: %v\n", err)
	}
	f.Close()
}

// goroutineDump returns the full all-goroutine stack dump.
func goroutineDump() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, 2*len(buf))
	}
}

// sanitizeName keeps bundle directory names shell- and fs-safe.
func sanitizeName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

package events

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// now is time.Now, a variable so tests can pin the clock.
var now = time.Now

// DefaultJournalSize is the ring capacity NewJournal uses for size <= 0.
const DefaultJournalSize = 4096

// Journal is a bounded ring buffer of ScanEvents with lock-free reads:
// writers serialize on a mutex (assigning strictly increasing sequence
// numbers), while readers load the published head atomically and copy
// slots without taking any lock, validating each slot's Seq to detect
// being lapped. When the ring wraps, the oldest events are dropped —
// consumers that fall more than Capacity events behind observe a
// dropped count, never a blocked writer.
//
// A nil *Journal is a valid no-op journal, matching the obs handle
// contract.
type Journal struct {
	size  uint64
	slots []atomic.Pointer[ScanEvent]
	head  atomic.Uint64 // last published seq; 0 = empty

	mu   sync.Mutex
	taps []*tap
	subs map[*Sub]struct{}
}

type tap struct{ fn func(ScanEvent) }

// NewJournal returns an empty journal holding the last size events
// (DefaultJournalSize when size <= 0).
func NewJournal(size int) *Journal {
	if size <= 0 {
		size = DefaultJournalSize
	}
	return &Journal{
		size:  uint64(size),
		slots: make([]atomic.Pointer[ScanEvent], size),
		subs:  make(map[*Sub]struct{}),
	}
}

// Append stamps ev with the next sequence number (and the current time,
// when ev.Time is zero), publishes it, runs the taps, and wakes the
// subscribers. It returns the assigned sequence number (0 on a nil
// journal).
func (j *Journal) Append(ev ScanEvent) uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	seq := j.head.Load() + 1
	ev.Seq = seq
	if ev.Time.IsZero() {
		ev.Time = now()
	}
	e := ev
	j.slots[seq%j.size].Store(&e)
	j.head.Store(seq)
	// Taps run synchronously under the append lock so they observe
	// events in sequence order; they must be fast and must not call
	// back into the journal.
	for _, t := range j.taps {
		t.fn(e)
	}
	//dtaintlint:ignore wake signals are idempotent; notification order cannot escape
	for s := range j.subs {
		select {
		case s.notify <- struct{}{}:
		default: // already signalled; the subscriber will catch up
		}
	}
	j.mu.Unlock()
	return seq
}

// Head returns the sequence number of the newest event (0 when empty).
func (j *Journal) Head() uint64 {
	if j == nil {
		return 0
	}
	return j.head.Load()
}

// Since returns a copy of every buffered event with Seq > after, in
// sequence order, plus the number of requested events that were already
// overwritten (dropped > 0 means the consumer fell behind the ring).
// The read is lock-free: concurrent appends may overwrite slots while
// we copy, which is detected per slot and counted as dropped.
func (j *Journal) Since(after uint64) (evs []ScanEvent, dropped uint64) {
	if j == nil {
		return nil, 0
	}
	head := j.head.Load()
	if head <= after {
		return nil, 0
	}
	lo := after + 1
	if head > j.size && lo <= head-j.size {
		dropped = head - j.size - lo + 1
		lo = head - j.size + 1
	}
	evs = make([]ScanEvent, 0, head-lo+1)
	for seq := lo; seq <= head; seq++ {
		p := j.slots[seq%j.size].Load()
		if p == nil || p.Seq != seq {
			dropped++ // lapped by a concurrent writer mid-read
			continue
		}
		evs = append(evs, *p)
	}
	return evs, dropped
}

// Snapshot returns every buffered event in sequence order.
func (j *Journal) Snapshot() []ScanEvent {
	evs, _ := j.Since(0)
	return evs
}

// OnEvent registers fn to run synchronously for every appended event,
// in sequence order. It returns a function removing the registration.
// fn must be fast, must not block, and must not call back into the
// journal. A nil journal returns a no-op remover.
func (j *Journal) OnEvent(fn func(ScanEvent)) (remove func()) {
	if j == nil {
		return func() {}
	}
	t := &tap{fn: fn}
	j.mu.Lock()
	j.taps = append(j.taps, t)
	j.mu.Unlock()
	return func() {
		j.mu.Lock()
		for i, x := range j.taps {
			if x == t {
				j.taps = append(j.taps[:i], j.taps[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}
}

// JournalStats summarizes ring usage for bench records and /v1/metrics.
type JournalStats struct {
	// Appended is the total events ever published (== newest Seq).
	Appended uint64 `json:"appended"`
	// Dropped counts events already overwritten by the wrapping ring.
	Dropped uint64 `json:"dropped"`
	// Capacity is the ring size; HighWater the peak occupancy reached.
	Capacity  int `json:"capacity"`
	HighWater int `json:"highWater"`
}

// Stats returns the current usage counters.
func (j *Journal) Stats() JournalStats {
	if j == nil {
		return JournalStats{}
	}
	head := j.head.Load()
	st := JournalStats{Appended: head, Capacity: int(j.size)}
	if head > j.size {
		st.Dropped = head - j.size
		st.HighWater = int(j.size)
	} else {
		st.HighWater = int(head)
	}
	return st
}

// Sub is one subscriber's cursor into the journal, created by
// Subscribe. Not safe for concurrent use by multiple goroutines.
type Sub struct {
	j      *Journal
	next   uint64 // first sequence number not yet delivered
	notify chan struct{}
}

// Subscribe returns a cursor delivering every event with Seq > after —
// buffered history first, then live appends. Close the subscription
// when done. On a nil journal it returns nil; a nil *Sub delivers
// nothing and Next blocks until the context ends.
func (j *Journal) Subscribe(after uint64) *Sub {
	if j == nil {
		return nil
	}
	s := &Sub{j: j, next: after + 1, notify: make(chan struct{}, 1)}
	j.mu.Lock()
	j.subs[s] = struct{}{}
	j.mu.Unlock()
	return s
}

// Close removes the subscription from the journal.
func (s *Sub) Close() {
	if s == nil {
		return
	}
	s.j.mu.Lock()
	delete(s.j.subs, s)
	s.j.mu.Unlock()
}

// Poll returns the events available right now (possibly none) and the
// count of events lost to ring wraparound since the last call, then
// advances the cursor.
func (s *Sub) Poll() (evs []ScanEvent, dropped uint64) {
	if s == nil {
		return nil, 0
	}
	evs, dropped = s.j.Since(s.next - 1)
	if n := len(evs); n > 0 {
		s.next = evs[n-1].Seq + 1
	} else if dropped > 0 {
		s.next += dropped
	}
	return evs, dropped
}

// Next blocks until at least one event past the cursor is available
// (returning it and any wraparound drop count) or the context ends.
func (s *Sub) Next(ctx context.Context) (evs []ScanEvent, dropped uint64, err error) {
	if s == nil {
		<-ctx.Done()
		return nil, 0, ctx.Err()
	}
	for {
		if evs, dropped = s.Poll(); len(evs) > 0 {
			return evs, dropped, nil
		}
		select {
		case <-s.notify:
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		}
	}
}

package events

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dtaint/internal/obs"
)

func TestBridgeSpanMapping(t *testing.T) {
	j := NewJournal(64)
	tr := obs.NewTracer()
	Bridge(tr, j.Emitter("job-9"))

	img := tr.StartSpan("scan-image")
	bin := img.StartChild("scan-binary", obs.KV("path", "/bin/httpd"))
	stage := bin.StartChild("function-analysis", obs.KV("functions", 7))
	fn := stage.StartChild("ssa-function", obs.KV("fn", "main"))
	fn.End()
	stage.End()
	inter := bin.StartChild("interproc-dataflow")
	comp := inter.StartChild("scc-component", obs.KV("index", 0), obs.KV("functions", 3))
	comp.End()
	inter.End()
	bin.SetAttr("status", "ok")
	bin.End()
	img.End()

	evs := j.Snapshot()
	var keys []string
	for _, ev := range evs {
		keys = append(keys, ev.Type+" "+ev.Stage+" "+ev.Path)
		if ev.Job != "job-9" {
			t.Errorf("event %s missing job scope: %q", ev.Type, ev.Job)
		}
	}
	want := []string{
		"stage.start scan-image ",
		"binary.start  /bin/httpd",
		"stage.start function-analysis /bin/httpd", // path inherited from scan-binary
		"stage.end function-analysis /bin/httpd",
		"stage.start interproc-dataflow /bin/httpd",
		"scc.done interproc-dataflow /bin/httpd",
		"stage.end interproc-dataflow /bin/httpd",
		"binary.done  /bin/httpd",
		"stage.end scan-image ",
	}
	if strings.Join(keys, "\n") != strings.Join(want, "\n") {
		t.Fatalf("bridged events:\n%s\nwant:\n%s", strings.Join(keys, "\n"), strings.Join(want, "\n"))
	}

	// Per-function spans must not journal events of their own.
	for _, ev := range evs {
		if ev.Stage == "ssa-function" || ev.Stage == "ddg-function" {
			t.Fatalf("per-function span leaked into journal: %+v", ev)
		}
	}
	// The binary.done event lifts "path" into the Path field and keeps
	// the status attr; stage attrs survive.
	last := evs[7]
	if last.Type != TypeBinaryDone || last.Attrs["status"] != "ok" || last.Attrs["path"] != nil {
		t.Fatalf("binary.done = %+v", last)
	}
	if evs[2].Attrs["functions"] != 7 {
		t.Fatalf("stage attrs dropped: %+v", evs[2])
	}
	if evs[5].Attrs["index"] != 0 || evs[5].Attrs["functions"] != 3 {
		t.Fatalf("scc.done attrs = %+v", evs[5])
	}
}

func TestWatchdogStallAndRearm(t *testing.T) {
	dir := t.TempDir()
	j := NewJournal(64)
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	reg.Counter("dtaint_test_total", "test", nil).Inc()

	fired := make(chan string, 4)
	w := StartWatchdog(WatchdogConfig{
		Journal:     j,
		Job:         "job-1",
		Deadline:    50 * time.Millisecond,
		DebugDir:    dir,
		Fingerprint: "v3|test",
		Tracer:      tr,
		Metrics:     reg,
		Partial: func(f io.Writer) error {
			_, err := f.Write([]byte(`{"partial":true}`))
			return err
		},
		OnStall: func(bundle string) { fired <- bundle },
	})
	defer w.Stop()

	em := j.Emitter("job-1")
	em.Emit(ScanEvent{Type: TypeBinaryStart, Path: "/bin/wedged"})
	stalled := w.Stalled()

	var bundle string
	select {
	case bundle = <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not fire")
	}
	select {
	case <-stalled:
	case <-time.After(time.Second):
		t.Fatal("Stalled channel not closed")
	}
	if w.Fired() != 1 {
		t.Fatalf("Fired = %d", w.Fired())
	}

	// The stall event is journaled with the bundle path.
	var stall *ScanEvent
	for _, ev := range j.Snapshot() {
		if ev.Type == TypeStall {
			ev := ev
			stall = &ev
		}
	}
	if stall == nil {
		t.Fatal("no stall event journaled")
	}
	if stall.Job != "job-1" || stall.Attrs["bundle"] != bundle || stall.Attrs["lastType"] != TypeBinaryStart {
		t.Fatalf("stall event = %+v", stall)
	}

	// The bundle holds the full diagnostic set.
	for name, needle := range map[string]string{
		"goroutines.txt": "goroutine",
		"trace.json":     "traceEvents",
		"metrics.json":   "dtaint_test_total",
		"options.txt":    "fingerprint: v3|test",
		"events.jsonl":   `"type":"binary.start"`,
		"report.json":    `"partial":true`,
	} {
		data, err := os.ReadFile(filepath.Join(bundle, name))
		if err != nil {
			t.Errorf("bundle member %s: %v", name, err)
			continue
		}
		if !strings.Contains(string(data), needle) {
			t.Errorf("bundle %s does not contain %q", name, needle)
		}
	}

	// A new event re-arms the watchdog; a fresh Stalled channel closes
	// on the second fire, and the second bundle is a distinct directory.
	em.Emit(ScanEvent{Type: TypeBinaryStart, Path: "/bin/wedged2"})
	stalled2 := w.Stalled()
	var bundle2 string
	select {
	case bundle2 = <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog did not re-fire after re-arm")
	}
	select {
	case <-stalled2:
	case <-time.After(time.Second):
		t.Fatal("second Stalled channel not closed")
	}
	if bundle2 == bundle {
		t.Fatalf("second stall reused bundle dir %s", bundle)
	}

	// Events from other jobs neither re-arm nor count.
	other := j.Emitter("job-2")
	other.Emit(ScanEvent{Type: TypeBinaryStart})
	time.Sleep(120 * time.Millisecond)
	if w.Fired() != 2 {
		t.Fatalf("foreign-job event re-armed the watchdog: fired = %d", w.Fired())
	}
}

func TestStartWatchdogDisabled(t *testing.T) {
	if w := StartWatchdog(WatchdogConfig{Journal: nil, Deadline: time.Second}); w != nil {
		t.Fatal("watchdog without journal")
	}
	if w := StartWatchdog(WatchdogConfig{Journal: NewJournal(4)}); w != nil {
		t.Fatal("watchdog without deadline")
	}
}

package events

import (
	"sync"
	"time"
)

// Emitter is the handle instrumented code emits through: a journal
// scoped to one job (and optionally one binary path), stamping every
// event with that scope. A nil *Emitter no-ops on every method, so
// analysis code emits unconditionally — the same contract as the other
// obs handles (and enforced by dtaintlint rule 2).
type Emitter struct {
	j    *Journal
	job  string
	path string

	mu     sync.Mutex
	meters map[string]*rateMeter // stage -> moving-rate ETA meter
}

// Emitter returns an emitter appending to the journal with Job stamped
// to job. On a nil journal it returns nil.
func (j *Journal) Emitter(job string) *Emitter {
	if j == nil {
		return nil
	}
	return &Emitter{j: j, job: job, meters: make(map[string]*rateMeter)}
}

// WithPath returns an emitter for the same journal and job that stamps
// Path on every event — the per-binary scope fleet workers hand to the
// analysis pipeline. The derived emitter has its own progress meters.
func (e *Emitter) WithPath(path string) *Emitter {
	if e == nil {
		return nil
	}
	return &Emitter{j: e.j, job: e.job, path: path, meters: make(map[string]*rateMeter)}
}

// Journal returns the underlying journal (nil on a nil emitter).
func (e *Emitter) Journal() *Journal {
	if e == nil {
		return nil
	}
	return e.j
}

// Job returns the job id the emitter stamps on events.
func (e *Emitter) Job() string {
	if e == nil {
		return ""
	}
	return e.job
}

// Emit stamps the emitter's scope onto ev (without overwriting fields
// already set) and appends it to the journal.
func (e *Emitter) Emit(ev ScanEvent) {
	if e == nil {
		return
	}
	if ev.Job == "" {
		ev.Job = e.job
	}
	if ev.Path == "" {
		ev.Path = e.path
	}
	e.j.Append(ev)
}

// Progress emits a progress event for stage with the moving-rate ETA
// computed from this emitter's recent Progress calls on the same stage.
// Done/Total are the deterministic payload; Rate and ETA are wall-clock
// estimates excluded from DetKey.
func (e *Emitter) Progress(stage string, done, total int) {
	if e == nil {
		return
	}
	ev := ScanEvent{Type: TypeProgress, Stage: stage, Done: done, Total: total}
	e.mu.Lock()
	m := e.meters[stage]
	if m == nil {
		m = newRateMeter()
		e.meters[stage] = m
	}
	ev.Rate, ev.ETA = m.observe(now(), done, total)
	e.mu.Unlock()
	e.Emit(ev)
}

// ProgressDecile emits Progress only when done crosses a 10% boundary,
// bounding per-stage progress volume at ~10 events regardless of unit
// count. Callers must pass unique done values (from an atomic or
// mutex-ordered counter): crossings are then a pure function of done
// and total, so the emitted multiset is identical for any worker
// interleaving — the event determinism contract.
func (e *Emitter) ProgressDecile(stage string, done, total int) {
	if e == nil || total <= 0 {
		return
	}
	if done*10/total > (done-1)*10/total {
		e.Progress(stage, done, total)
	}
}

// rateMeter estimates throughput from a short window of (time, done)
// samples: rate is the slope across the window, ETA the remaining work
// divided by it. A window (rather than since-start averaging) tracks
// phase changes — e.g. a run whose large functions cluster at the end.
type rateMeter struct {
	samples []rateSample // ring, oldest first, at most meterWindow
}

type rateSample struct {
	t    time.Time
	done int
}

const meterWindow = 8

func newRateMeter() *rateMeter { return &rateMeter{} }

// observe records a sample and returns the current rate (units/sec,
// 0 when unknown) and ETA (0 when unknown or finished).
func (m *rateMeter) observe(t time.Time, done, total int) (rate float64, eta time.Duration) {
	m.samples = append(m.samples, rateSample{t: t, done: done})
	if len(m.samples) > meterWindow {
		m.samples = m.samples[len(m.samples)-meterWindow:]
	}
	first, last := m.samples[0], m.samples[len(m.samples)-1]
	dt := last.t.Sub(first.t).Seconds()
	if dt <= 0 || last.done <= first.done {
		return 0, 0
	}
	rate = float64(last.done-first.done) / dt
	if remaining := total - done; remaining > 0 && rate > 0 {
		eta = time.Duration(float64(remaining) / rate * float64(time.Second))
	}
	return rate, eta
}

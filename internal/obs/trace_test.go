package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestTracerNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("root", KV("image", "DIR-645"))
	child := root.StartChild("child")
	child.SetAttr("n", 3)
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// End order: child first.
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Fatalf("span order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Fatalf("child parent = %d, root id = %d", spans[0].Parent, spans[1].ID)
	}
	if got := spans[0].Attr("n"); got != 3 {
		t.Fatalf("child attr n = %v, want 3", got)
	}
	if got := spans[1].Attr("image"); got != "DIR-645" {
		t.Fatalf("root attr image = %v", got)
	}
	if got := tr.SpanNames(); !reflect.DeepEqual(got, []string{"child", "root"}) {
		t.Fatalf("SpanNames = %v", got)
	}
}

func TestTracerNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("x")
	if s != nil {
		t.Fatal("nil tracer should return nil span")
	}
	s.SetAttr("k", 1) // must not panic
	c := s.StartChild("y")
	if c != nil {
		t.Fatal("nil span child should be nil")
	}
	c.End()
	s.End()
	if tr.Spans() != nil {
		t.Fatal("nil tracer should have no spans")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil-tracer export is not valid JSON: %v", err)
	}
}

func TestTracerStartHelper(t *testing.T) {
	tr := NewTracer()
	// Start with nil parent makes a root span on the tracer.
	a := tr.Start(nil, "a")
	// Start with a parent nests under it.
	b := tr.Start(a, "b")
	b.End()
	a.End()
	spans := tr.Spans()
	if spans[0].Name != "b" || spans[0].Parent != spans[1].ID {
		t.Fatalf("Start(parent) did not nest: %+v", spans)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := root.StartChild("work")
				s.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(tr.Spans()); got != 16*50+1 {
		t.Fatalf("got %d spans, want %d", got, 16*50+1)
	}
	// IDs must be unique.
	seen := map[uint64]bool{}
	for _, s := range tr.Spans() {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestSpanHandlers(t *testing.T) {
	tr := NewTracer()
	var mu sync.Mutex
	var started, ended []string
	tr.OnSpanStart(func(r SpanRecord) {
		mu.Lock()
		started = append(started, r.Name)
		mu.Unlock()
	})
	tr.OnSpanEnd(func(r SpanRecord) {
		mu.Lock()
		ended = append(ended, r.Name)
		mu.Unlock()
	})
	s := tr.StartSpan("stage", KV("total", 10))
	s.End()
	s.End() // double End fires the handler once
	if !reflect.DeepEqual(started, []string{"stage"}) || !reflect.DeepEqual(ended, []string{"stage"}) {
		t.Fatalf("handlers: started=%v ended=%v", started, ended)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("analyze", KV("binary", "/bin/cgibin"))
	time.Sleep(2 * time.Millisecond)
	c1 := root.StartChild("phase1")
	time.Sleep(2 * time.Millisecond)
	c1.End()
	c2 := root.StartChild("phase2")
	time.Sleep(2 * time.Millisecond)
	c2.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(out.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %s has ph=%q, want X", ev.Name, ev.Ph)
		}
		if ev.Dur <= 0 {
			t.Fatalf("event %s has dur=%d", ev.Name, ev.Dur)
		}
		byName[ev.Name] = i
	}
	// Sequential children of one parent collapse onto the parent's lane.
	rootEv := out.TraceEvents[byName["analyze"]]
	for _, n := range []string{"phase1", "phase2"} {
		ev := out.TraceEvents[byName[n]]
		if ev.Tid != rootEv.Tid {
			t.Fatalf("%s on lane %d, parent on %d — sequential children should share the parent lane", n, ev.Tid, rootEv.Tid)
		}
		if ev.Ts < rootEv.Ts || ev.Ts+ev.Dur > rootEv.Ts+rootEv.Dur {
			t.Fatalf("%s [%d,%d] not contained in parent [%d,%d]", n, ev.Ts, ev.Ts+ev.Dur, rootEv.Ts, rootEv.Ts+rootEv.Dur)
		}
	}
	if got := rootEv.Args["binary"]; got != "/bin/cgibin" {
		t.Fatalf("root args = %v", rootEv.Args)
	}
}

func TestWriteChromeTraceConcurrentSiblings(t *testing.T) {
	tr := NewTracer()
	root := tr.StartSpan("scan")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := root.StartChild("binary")
			time.Sleep(5 * time.Millisecond)
			s.End()
		}()
	}
	wg.Wait()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	// No two events on one lane may overlap in time.
	type iv struct{ s, e int64 }
	byLane := map[int][]iv{}
	for _, ev := range out.TraceEvents {
		byLane[ev.Tid] = append(byLane[ev.Tid], iv{ev.Ts, ev.Ts + ev.Dur})
	}
	for lane, ivs := range byLane {
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				contained := (a.s <= b.s && b.e <= a.e) || (b.s <= a.s && a.e <= b.e)
				disjoint := a.e <= b.s || b.e <= a.s
				if !contained && !disjoint {
					t.Fatalf("lane %d has partially overlapping events %v and %v", lane, a, b)
				}
			}
		}
	}
}

// Package obs is the pipeline-wide observability layer: a lightweight
// span tracer exportable as Chrome trace_event JSON, a zero-dependency
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus text and JSON exposition, structured-logging helpers over
// log/slog, and Go-runtime snapshots.
//
// Every handle is nil-safe: a nil *Tracer produces nil *Span values
// whose methods no-op, and a nil *Registry hands out unregistered dummy
// instruments. Instrumented code therefore threads the handles through
// unconditionally and pays only a pointer check when observability is
// off — no boolean plumbing, no wrapper interfaces.
//
// The layer is deliberately dependency-free (stdlib only): it must be
// embeddable in the analysis hot path, in the fleet orchestrator's
// worker pools, and in the dtaintd service without pulling a client
// library into a static-analysis codebase.
package obs

import (
	"runtime"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// KV builds an Attr.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// RuntimeStats is a point-in-time snapshot of the Go runtime — the
// memory and scheduling context an analysis ran under, embedded in
// reports so a slow or fat run carries its own explanation.
type RuntimeStats struct {
	// HeapAllocBytes is the live heap at snapshot time; HeapSysBytes the
	// heap memory obtained from the OS.
	HeapAllocBytes uint64 `json:"heapAllocBytes"`
	HeapSysBytes   uint64 `json:"heapSysBytes"`
	// TotalAllocBytes is the cumulative allocation volume (monotonic).
	TotalAllocBytes uint64 `json:"totalAllocBytes"`
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// NumGC is the completed GC cycle count; GCPauseTotal the cumulative
	// stop-the-world pause time.
	NumGC        uint32        `json:"numGC"`
	GCPauseTotal time.Duration `json:"gcPauseTotalNanos"`
}

// CaptureRuntimeStats snapshots the Go runtime.
func CaptureRuntimeStats() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return RuntimeStats{
		HeapAllocBytes:  m.HeapAlloc,
		HeapSysBytes:    m.HeapSys,
		TotalAllocBytes: m.TotalAlloc,
		Goroutines:      runtime.NumGoroutine(),
		NumGC:           m.NumGC,
		GCPauseTotal:    time.Duration(m.PauseTotalNs),
	}
}

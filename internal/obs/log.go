package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a slog.Logger writing to w at the given level
// ("debug", "info", "warn", "error") and format ("text", "json").
// Commands share this so -log-level/-log-format behave identically
// across dtaint, dtaintd, and benchtab.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
}

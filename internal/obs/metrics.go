package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// MetricType classifies a registered metric.
type MetricType string

// Metric types, matching the Prometheus exposition vocabulary.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Labels annotates a metric with constant label pairs; two metrics with
// the same name but different labels are distinct series of one family.
type Labels map[string]string

// Counter is a monotonically increasing value. Safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store overwrites the counter — for exposing a counter whose
// authoritative value lives elsewhere and is copied out of a consistent
// snapshot (e.g. dtaintd's job counters, maintained under the server
// lock). Regular instrumentation should use Inc/Add.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative
// less-or-equal semantics, Prometheus-style). Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []uint64  // len(bounds)+1, last = overflow
	sum    float64
	n      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// DefTimeBuckets are the default upper bounds (seconds) for per-unit
// analysis durations: sub-millisecond function analyses up to
// multi-second stragglers.
var DefTimeBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n exponential upper bounds starting at start and
// multiplying by factor: ExpBuckets(1, 4, 6) = 1, 4, 16, 64, 256, 1024.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// entry is one registered series.
type entry struct {
	name, help string
	typ        MetricType
	labels     []Attr // sorted by key, string values
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// Registry holds metrics. A nil *Registry is valid: it hands out live
// but unregistered instruments, so instrumentation never branches.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{entries: make(map[string]*entry)} }

// seriesKey canonicalizes name+labels.
func seriesKey(name string, labels Labels) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func sortedLabels(labels Labels) []Attr {
	out := make([]Attr, 0, len(labels))
	for k, v := range labels {
		out = append(out, Attr{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup get-or-creates a series, enforcing type consistency.
func (r *Registry) lookup(name, help string, typ MetricType, labels Labels, make_ func() *entry) *entry {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, typ, e.typ))
		}
		return e
	}
	e := make_()
	e.name, e.help, e.typ, e.labels = name, help, typ, sortedLabels(labels)
	r.entries[key] = e
	return e
}

// Counter returns the named counter, creating it on first use. Extra
// labels distinguish series within the family; pass nil for none.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return &Counter{}
	}
	return r.lookup(name, help, TypeCounter, labels, func() *entry {
		return &entry{c: &Counter{}}
	}).c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	return r.lookup(name, help, TypeGauge, labels, func() *entry {
		return &entry{g: &Gauge{}}
	}).g
}

// Histogram returns the named histogram, creating it on first use with
// the given upper bounds (they are ignored on later lookups).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		buckets = append([]float64(nil), buckets...)
		return &Histogram{bounds: buckets, counts: make([]uint64, len(buckets)+1)}
	}
	return r.lookup(name, help, TypeHistogram, labels, func() *entry {
		b := append([]float64(nil), buckets...)
		sort.Float64s(b)
		return &entry{h: &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}}
	}).h
}

// ---------------------------------------------------------------------------
// Exposition.

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// LE is the bucket's inclusive upper bound; math.Inf(1) marshals as
	// the JSON string "+Inf".
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders +Inf as a string (JSON has no infinity literal).
func (b Bucket) MarshalJSON() ([]byte, error) {
	type alias struct {
		LE    any    `json:"le"`
		Count uint64 `json:"count"`
	}
	var le any = b.LE
	if math.IsInf(b.LE, 1) {
		le = "+Inf"
	}
	return json.Marshal(alias{LE: le, Count: b.Count})
}

// UnmarshalJSON accepts both numeric bounds and the "+Inf" string.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    json.RawMessage `json:"le"`
		Count uint64          `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	var s string
	if err := json.Unmarshal(raw.LE, &s); err == nil {
		if s == "+Inf" {
			b.LE = math.Inf(1)
			return nil
		}
		return fmt.Errorf("obs: bad bucket bound %q", s)
	}
	return json.Unmarshal(raw.LE, &b.LE)
}

// MetricSnapshot is one series' state at snapshot time.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Type   MetricType        `json:"type"`
	Help   string            `json:"help,omitempty"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counters and gauges.
	Value float64 `json:"value,omitempty"`
	// Sum, Count, and Buckets carry histograms; bucket counts are
	// cumulative and the +Inf bucket equals Count.
	Sum     float64  `json:"sum,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot returns every series, sorted by name then label set. Each
// individual value is read atomically; the set is collected under the
// registry lock.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	keys := make([]string, 0, len(r.entries))
	for k := range r.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		entries = append(entries, r.entries[k])
	}
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(entries))
	for _, e := range entries {
		s := MetricSnapshot{Name: e.name, Type: e.typ, Help: e.help}
		if len(e.labels) > 0 {
			s.Labels = make(map[string]string, len(e.labels))
			for _, l := range e.labels {
				s.Labels[l.Key] = l.Value.(string)
			}
		}
		switch e.typ {
		case TypeCounter:
			s.Value = float64(e.c.Value())
		case TypeGauge:
			s.Value = e.g.Value()
		case TypeHistogram:
			e.h.mu.Lock()
			cum := uint64(0)
			for i, b := range e.h.bounds {
				cum += e.h.counts[i]
				s.Buckets = append(s.Buckets, Bucket{LE: b, Count: cum})
			}
			s.Buckets = append(s.Buckets, Bucket{LE: math.Inf(1), Count: e.h.n})
			s.Sum, s.Count = e.h.sum, e.h.n
			e.h.mu.Unlock()
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON writes the snapshot as {"metrics": [...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}{Metrics: r.Snapshot()})
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	pw := &errWriter{w: w}
	lastFamily := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastFamily {
			lastFamily = s.Name
			if s.Help != "" {
				pw.printf("# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			pw.printf("# TYPE %s %s\n", s.Name, s.Type)
		}
		switch s.Type {
		case TypeHistogram:
			for _, b := range s.Buckets {
				pw.printf("%s_bucket%s %d\n", s.Name, labelString(s.Labels, "le", formatBound(b.LE)), b.Count)
			}
			pw.printf("%s_sum%s %s\n", s.Name, labelString(s.Labels, "", ""), formatFloat(s.Sum))
			pw.printf("%s_count%s %d\n", s.Name, labelString(s.Labels, "", ""), s.Count)
		default:
			pw.printf("%s%s %s\n", s.Name, labelString(s.Labels, "", ""), formatFloat(s.Value))
		}
	}
	return pw.err
}

// labelString renders a label set (plus one optional extra pair) as
// {k="v",...}, or "" when empty.
func labelString(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, escapeLabel(labels[k]))
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return formatFloat(v)
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

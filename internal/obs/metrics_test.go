package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dtaint_jobs_total", "Jobs.", nil)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same instrument.
	if r.Counter("dtaint_jobs_total", "Jobs.", nil) != c {
		t.Fatal("re-lookup returned a different counter")
	}
	g := r.Gauge("dtaint_queue_depth", "Depth.", nil)
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur_seconds", "Durations.", []float64{1, 2.5, 5}, nil)
	// A value exactly on a bound lands in that bound's bucket (le is
	// inclusive, Prometheus semantics).
	for _, v := range []float64{0.5, 1, 1.0001, 2.5, 4, 5, 7} {
		h.Observe(v)
	}
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot has %d series, want 1", len(snaps))
	}
	s := snaps[0]
	want := []Bucket{
		{LE: 1, Count: 2},           // 0.5, 1
		{LE: 2.5, Count: 4},         // + 1.0001, 2.5
		{LE: 5, Count: 6},           // + 4, 5
		{LE: math.Inf(1), Count: 7}, // + 7
	}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if wantSum := 0.5 + 1 + 1.0001 + 2.5 + 4 + 5 + 7; math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("dtaint_scans_total", "Total scans.", Labels{"status": "ok"}).Add(3)
	r.Counter("dtaint_scans_total", "Total scans.", Labels{"status": "error"}).Add(1)
	r.Gauge("dtaint_queue_depth", "Jobs queued.", nil).Set(2)
	h := r.Histogram("dtaint_fn_seconds", "Per-function time.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dtaint_fn_seconds Per-function time.
# TYPE dtaint_fn_seconds histogram
dtaint_fn_seconds_bucket{le="0.1"} 1
dtaint_fn_seconds_bucket{le="1"} 2
dtaint_fn_seconds_bucket{le="+Inf"} 3
dtaint_fn_seconds_sum 2.55
dtaint_fn_seconds_count 3
# HELP dtaint_queue_depth Jobs queued.
# TYPE dtaint_queue_depth gauge
dtaint_queue_depth 2
# HELP dtaint_scans_total Total scans.
# TYPE dtaint_scans_total counter
dtaint_scans_total{status="error"} 1
dtaint_scans_total{status="ok"} 3
`
	if got := buf.String(); got != want {
		t.Fatalf("Prometheus exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "A counter.", Labels{"k": "v"}).Add(9)
	r.Gauge("g", "A gauge.", nil).Set(1.25)
	h := r.Histogram("h_seconds", "A histogram.", []float64{0.5, 2}, nil)
	h.Observe(0.25)
	h.Observe(3)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Metrics []MetricSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("decode: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(decoded.Metrics, r.Snapshot()) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", decoded.Metrics, r.Snapshot())
	}
	// The +Inf bound must survive as the JSON string "+Inf".
	if !strings.Contains(buf.String(), `"+Inf"`) {
		t.Fatalf("JSON exposition lacks +Inf bucket:\n%s", buf.String())
	}
}

func TestNilRegistryInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "", nil)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("nil-registry counter should still count")
	}
	g := r.Gauge("y", "", nil)
	g.Set(7)
	if g.Value() != 7 {
		t.Fatal("nil-registry gauge should still hold a value")
	}
	h := r.Histogram("z", "", []float64{1}, nil)
	h.Observe(0.5) // must not panic
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", got)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("conc_total", "", nil).Inc()
				r.Histogram("conc_seconds", "", []float64{0.5}, nil).Observe(0.1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("conc_total", "", nil).Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	for _, s := range r.Snapshot() {
		if s.Name == "conc_seconds" && s.Count != 8000 {
			t.Fatalf("histogram count = %d, want 8000", s.Count)
		}
	}
}

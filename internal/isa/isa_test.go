package isa

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	insts := []Inst{
		{Op: OpMOV, Rd: R5, Rm: R0},
		{Op: OpMOV, Rd: R2, Imm: 0x200, HasImm: true},
		{Op: OpLDR, Rd: R1, Rn: R5, Imm: 0x4C, HasImm: true},
		{Op: OpLDRB, Rd: R6, Rn: R3, Imm: 0, HasImm: true},
		{Op: OpSTR, Rd: R1, Rn: SP, Imm: 8, HasImm: true},
		{Op: OpSTRB, Rd: R0, Rn: R4, Imm: -4, HasImm: true},
		{Op: OpADD, Rd: R0, Rn: SP, Imm: 0x18, HasImm: true},
		{Op: OpSUB, Rd: SP, Rn: SP, Imm: 0x118, HasImm: true},
		{Op: OpMUL, Rd: R3, Rn: R3, Rm: R4},
		{Op: OpAND, Rd: R10, Rn: R3, Imm: 7, HasImm: true},
		{Op: OpORR, Rd: R6, Rn: R6, Rm: R2},
		{Op: OpEOR, Rd: R1, Rn: R1, Rm: R1},
		{Op: OpLSL, Rd: R2, Rn: R2, Imm: 8, HasImm: true},
		{Op: OpLSR, Rd: R2, Rn: R2, Imm: 16, HasImm: true},
		{Op: OpCMP, Rd: R0, Imm: 8, HasImm: true},
		{Op: OpCMP, Rd: R9, Rm: R1},
		{Op: OpB, Cond: CondEQ, Target: 0x670BC},
		{Op: OpB, Target: 0x1000},
		{Op: OpBL, Target: 0x8000},
		{Op: OpBLX, Rm: R12},
		{Op: OpBX},
		{Op: OpNOP},
	}
	for _, arch := range []Arch{ArchARM, ArchMIPS} {
		for _, in := range insts {
			t.Run(arch.String()+"/"+in.String(), func(t *testing.T) {
				enc, err := Encode(arch, in)
				if err != nil {
					t.Fatalf("encode: %v", err)
				}
				got, err := Decode(arch, enc[:])
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if got != in {
					t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, got)
				}
			})
		}
	}
}

func TestArchEncodingsDiffer(t *testing.T) {
	// The two flavors must produce different bytes for the same instruction;
	// this is what makes the multi-arch dimension real.
	in := Inst{Op: OpLDR, Rd: R1, Rn: R5, Imm: 0x4C, HasImm: true}
	a, err := Encode(ArchARM, in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Encode(ArchMIPS, in)
	if err != nil {
		t.Fatal(err)
	}
	if a == m {
		t.Fatal("ARM and MIPS encodings are identical")
	}
}

func randomInst(r *rand.Rand) Inst {
	var in Inst
	in.Op = Opcode(1 + r.Intn(int(numOpcodes)-1))
	in.Rd = Reg(r.Intn(13)) // avoid PC as destination
	in.Rn = Reg(r.Intn(16))
	in.Rm = Reg(r.Intn(16))
	switch in.Op {
	case OpB:
		in.Cond = Cond(r.Intn(int(numConds)))
		in.Target = r.Uint32()
		in.Rd, in.Rn, in.Rm = 0, 0, 0
	case OpBL:
		in.Target = r.Uint32()
		in.Rd, in.Rn, in.Rm = 0, 0, 0
	case OpBLX:
		in.Rd, in.Rn = 0, 0
	case OpBX, OpNOP:
		in.Rd, in.Rn, in.Rm = 0, 0, 0
	case OpCMP, OpMOV:
		in.Rn = 0
		if r.Intn(2) == 0 {
			in.HasImm = true
			in.Imm = int32(r.Uint32())
			in.Rm = 0
		}
	case OpLDR, OpLDRB, OpSTR, OpSTRB:
		in.HasImm = true
		in.Imm = int32(r.Int31n(1<<20)) - 1<<19
		in.Rm = 0
	default:
		if r.Intn(2) == 0 {
			in.HasImm = true
			in.Imm = int32(r.Uint32())
			in.Rm = 0
		}
	}
	return in
}

func TestPropertyRoundTrip(t *testing.T) {
	for _, arch := range []Arch{ArchARM, ArchMIPS} {
		arch := arch
		f := func(seed int64) bool {
			in := randomInst(rand.New(rand.NewSource(seed)))
			enc, err := Encode(arch, in)
			if err != nil {
				return false
			}
			got, err := Decode(arch, enc[:])
			return err == nil && got == in
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatalf("%s: %v", arch, err)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(ArchARM, []byte{1, 2, 3}); !errors.Is(err, ErrShortCode) {
		t.Errorf("short code: got %v", err)
	}
	var zero [InstSize]byte
	if _, err := Decode(ArchARM, zero[:]); !errors.Is(err, ErrBadOpcode) {
		t.Errorf("zero opcode: got %v", err)
	}
	bad := [InstSize]byte{0xFF}
	if _, err := Decode(ArchARM, bad[:]); !errors.Is(err, ErrBadOpcode) {
		t.Errorf("bad opcode: got %v", err)
	}
	if _, err := Decode(Arch(99), zero[:]); !errors.Is(err, ErrUnknownArch) {
		t.Errorf("unknown arch: got %v", err)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := Encode(ArchARM, Inst{Op: OpInvalid}); !errors.Is(err, ErrBadOpcode) {
		t.Errorf("invalid op: got %v", err)
	}
	if _, err := Encode(ArchARM, Inst{Op: OpMOV, Rd: PC}); !errors.Is(err, ErrPCNotWritable) {
		t.Errorf("PC dest: got %v", err)
	}
	if _, err := Encode(ArchARM, Inst{Op: OpMOV, Rd: 200}); !errors.Is(err, ErrBadRegister) {
		t.Errorf("bad reg: got %v", err)
	}
	if _, err := Encode(Arch(0), Inst{Op: OpNOP}); !errors.Is(err, ErrUnknownArch) {
		t.Errorf("unknown arch: got %v", err)
	}
}

func TestDecodeAll(t *testing.T) {
	prog := []Inst{
		{Op: OpMOV, Rd: R0, Imm: 1, HasImm: true},
		{Op: OpADD, Rd: R0, Rn: R0, Imm: 2, HasImm: true},
		{Op: OpBX},
	}
	var code []byte
	for _, in := range prog {
		enc, err := Encode(ArchMIPS, in)
		if err != nil {
			t.Fatal(err)
		}
		code = append(code, enc[:]...)
	}
	got, err := DecodeAll(ArchMIPS, code, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prog) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(prog))
	}
	for i := range prog {
		if got[i] != prog[i] {
			t.Errorf("inst %d: got %+v, want %+v", i, got[i], prog[i])
		}
	}
	if _, err := DecodeAll(ArchMIPS, code[:len(code)-1], 0); !errors.Is(err, ErrShortCode) {
		t.Errorf("truncated section: got %v", err)
	}
}

func TestCallConv(t *testing.T) {
	arm := ArchARM.Conv()
	if len(arm.ArgRegs) != 4 || arm.ArgRegs[0] != R0 || arm.RetReg != R0 {
		t.Errorf("ARM conv = %+v", arm)
	}
	mips := ArchMIPS.Conv()
	if len(mips.ArgRegs) != 4 || mips.ArgRegs[0] != R4 || mips.RetReg != R2 {
		t.Errorf("MIPS conv = %+v", mips)
	}
	if arm.MaxArgs != 10 || mips.MaxArgs != 10 {
		t.Error("MaxArgs must be 10 (arg0-arg9 per the paper)")
	}
}

func TestCondNegate(t *testing.T) {
	pairs := [][2]Cond{{CondEQ, CondNE}, {CondLT, CondGE}, {CondGT, CondLE}}
	for _, p := range pairs {
		if p[0].Negate() != p[1] || p[1].Negate() != p[0] {
			t.Errorf("negate %s/%s broken", p[0], p[1])
		}
	}
	if CondAL.Negate() != CondAL {
		t.Error("AL negates to AL")
	}
}

func TestInstPredicates(t *testing.T) {
	if !(Inst{Op: OpB}).IsTerminator() || !(Inst{Op: OpBX}).IsTerminator() {
		t.Error("B/BX must terminate blocks")
	}
	if (Inst{Op: OpBL}).IsTerminator() {
		t.Error("calls must not terminate blocks")
	}
	if !(Inst{Op: OpBL}).IsBranch() || !(Inst{Op: OpBLX}).IsBranch() {
		t.Error("calls are branches")
	}
	if (Inst{Op: OpADD}).IsBranch() {
		t.Error("ADD is not a branch")
	}
}

func TestStringForms(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpLDR, Rd: R1, Rn: R5, Imm: 0x4C, HasImm: true}, "LDR R1, [R5, #76]"},
		{Inst{Op: OpMOV, Rd: R0, Rm: R11}, "MOV R0, R11"},
		{Inst{Op: OpB, Cond: CondEQ, Target: 0x670BC}, "BEQ 0x670BC"},
		{Inst{Op: OpBX}, "BX LR"},
		{Inst{Op: OpSUB, Rd: SP, Rn: SP, Imm: 0x118, HasImm: true}, "SUB SP, SP, #280"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

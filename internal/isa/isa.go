// Package isa defines the mini 32-bit load/store instruction set that
// stands in for ARM and MIPS machine code in this reproduction.
//
// The paper analyzes firmware binaries for 32-bit ARM and MIPS. Since no
// binary-lifting framework exists for Go's stdlib, we define our own ISA
// with two *architecture flavors* that differ exactly where ARM and MIPS
// differ from DTaint's point of view: instruction encoding (including byte
// order) and calling convention (which registers carry arguments and return
// values). Everything downstream of the lifter (internal/ir) is
// architecture-neutral, mirroring how DTaint relies on VEX IR.
//
// Instructions are fixed-width 8-byte words: a 4-byte operation word and a
// 4-byte immediate/target word. ArchARM encodes little-endian, ArchMIPS
// big-endian with a permuted field layout.
package isa

import (
	"errors"
	"fmt"
	"strconv"
)

// Arch selects an architecture flavor.
type Arch int

// Architecture flavors.
const (
	ArchARM Arch = iota + 1
	ArchMIPS
)

// String implements fmt.Stringer.
func (a Arch) String() string {
	switch a {
	case ArchARM:
		return "ARM"
	case ArchMIPS:
		return "MIPS"
	}
	return "arch?"
}

// Valid reports whether a is a known architecture.
func (a Arch) Valid() bool { return a == ArchARM || a == ArchMIPS }

// Reg is a general-purpose register, R0 through R15.
type Reg uint8

// Register aliases.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // R13: stack pointer
	LR // R14: link register
	PC // R15: program counter (not generally addressable)

	NumRegs = 16
)

// String implements fmt.Stringer.
func (r Reg) String() string {
	switch r {
	case SP:
		return "SP"
	case LR:
		return "LR"
	case PC:
		return "PC"
	}
	return "R" + strconv.Itoa(int(r))
}

// Name returns the register's symbolic name used in the analysis
// (identical to String; registers are uniform across flavors).
func (r Reg) Name() string { return r.String() }

// Opcode identifies the operation of an instruction.
type Opcode uint8

// Opcodes.
const (
	OpInvalid Opcode = iota
	OpMOV            // MOV rd, rm | MOV rd, #imm | MOV rd, =sym
	OpLDR            // LDR rd, [rn, #imm]   (32-bit load)
	OpLDRB           // LDRB rd, [rn, #imm]  (byte load)
	OpSTR            // STR rd, [rn, #imm]   (32-bit store)
	OpSTRB           // STRB rd, [rn, #imm]  (byte store)
	OpADD            // ADD rd, rn, rm|#imm
	OpSUB            // SUB rd, rn, rm|#imm
	OpMUL            // MUL rd, rn, rm|#imm
	OpAND            // AND rd, rn, rm|#imm
	OpORR            // ORR rd, rn, rm|#imm
	OpEOR            // EOR rd, rn, rm|#imm
	OpLSL            // LSL rd, rn, rm|#imm
	OpLSR            // LSR rd, rn, rm|#imm
	OpCMP            // CMP rn, rm|#imm (sets flags)
	OpB              // B target | B<cond> target
	OpBL             // BL target (direct call, return address -> LR)
	OpBLX            // BLX rm (indirect call through register)
	OpBX             // BX LR (return)
	OpNOP            // no operation

	numOpcodes
)

var opcodeNames = [...]string{
	OpInvalid: "INVALID",
	OpMOV:     "MOV",
	OpLDR:     "LDR",
	OpLDRB:    "LDRB",
	OpSTR:     "STR",
	OpSTRB:    "STRB",
	OpADD:     "ADD",
	OpSUB:     "SUB",
	OpMUL:     "MUL",
	OpAND:     "AND",
	OpORR:     "ORR",
	OpEOR:     "EOR",
	OpLSL:     "LSL",
	OpLSR:     "LSR",
	OpCMP:     "CMP",
	OpB:       "B",
	OpBL:      "BL",
	OpBLX:     "BLX",
	OpBX:      "BX",
	OpNOP:     "NOP",
}

// String implements fmt.Stringer.
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return "op?"
}

// Cond is a branch condition.
type Cond uint8

// Branch conditions. CondAL (always) is the zero value so unconditional
// instructions need no explicit condition.
const (
	CondAL Cond = iota // always
	CondEQ             // equal
	CondNE             // not equal
	CondLT             // signed less than
	CondGE             // signed greater or equal
	CondGT             // signed greater than
	CondLE             // signed less or equal

	numConds
)

var condNames = [...]string{
	CondAL: "",
	CondEQ: "EQ",
	CondNE: "NE",
	CondLT: "LT",
	CondGE: "GE",
	CondGT: "GT",
	CondLE: "LE",
}

// String implements fmt.Stringer.
func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return "cond?"
}

// Negate returns the opposite condition (EQ<->NE, LT<->GE, GT<->LE).
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondGE:
		return CondLT
	case CondGT:
		return CondLE
	case CondLE:
		return CondGT
	}
	return CondAL
}

// InstSize is the fixed encoded size of every instruction, in bytes.
const InstSize = 8

// Inst is a decoded instruction. The same structure is produced by both
// architecture flavors' decoders.
type Inst struct {
	Op     Opcode
	Cond   Cond   // branch condition for OpB
	Rd     Reg    // destination (or compared register for CMP)
	Rn     Reg    // first source / base register
	Rm     Reg    // second source register (when !HasImm)
	Imm    int32  // immediate operand or memory offset
	HasImm bool   // Imm is used instead of Rm
	Target uint32 // absolute branch/call target for OpB/OpBL
}

// IsBranch reports whether the instruction transfers control (branch,
// call, or return).
func (in Inst) IsBranch() bool {
	switch in.Op {
	case OpB, OpBL, OpBLX, OpBX:
		return true
	}
	return false
}

// IsTerminator reports whether the instruction ends a basic block.
// Calls do not terminate blocks (control returns to the next instruction),
// matching how CFG construction treats them.
func (in Inst) IsTerminator() bool {
	switch in.Op {
	case OpB, OpBX:
		return true
	}
	return false
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	switch in.Op {
	case OpNOP:
		return "NOP"
	case OpBX:
		return "BX LR"
	case OpBLX:
		return "BLX " + in.Rm.String()
	case OpB:
		return fmt.Sprintf("B%s 0x%X", in.Cond, in.Target)
	case OpBL:
		return fmt.Sprintf("BL 0x%X", in.Target)
	case OpCMP:
		if in.HasImm {
			return fmt.Sprintf("CMP %s, #%d", in.Rd, in.Imm)
		}
		return fmt.Sprintf("CMP %s, %s", in.Rd, in.Rm)
	case OpMOV:
		if in.HasImm {
			return fmt.Sprintf("MOV %s, #%d", in.Rd, in.Imm)
		}
		return fmt.Sprintf("MOV %s, %s", in.Rd, in.Rm)
	case OpLDR, OpLDRB:
		return fmt.Sprintf("%s %s, [%s, #%d]", in.Op, in.Rd, in.Rn, in.Imm)
	case OpSTR, OpSTRB:
		return fmt.Sprintf("%s %s, [%s, #%d]", in.Op, in.Rd, in.Rn, in.Imm)
	case OpADD, OpSUB, OpMUL, OpAND, OpORR, OpEOR, OpLSL, OpLSR:
		if in.HasImm {
			return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Rd, in.Rn, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rn, in.Rm)
	}
	return "INVALID"
}

// CallConv describes a flavor's calling convention, as used by the
// function-analysis component to seed symbolic argument values
// (Section III-B: "DTaint uses unique symbolic values to initialize the
// corresponding calling convention").
type CallConv struct {
	// ArgRegs carry the first len(ArgRegs) arguments; further arguments are
	// passed on the stack at SP+0, SP+4, ...
	ArgRegs []Reg
	// RetReg receives the return value.
	RetReg Reg
	// MaxArgs is the total number of tracked arguments (arg0..arg{MaxArgs-1}),
	// register plus stack, matching the paper's arg0-arg9.
	MaxArgs int
}

// Conv returns the calling convention of the flavor.
func (a Arch) Conv() CallConv {
	switch a {
	case ArchMIPS:
		// MIPS o32-like: a0-a3 are R4-R7, return in v0 (R2).
		return CallConv{ArgRegs: []Reg{R4, R5, R6, R7}, RetReg: R2, MaxArgs: 10}
	default:
		// ARM AAPCS-like: R0-R3, return in R0.
		return CallConv{ArgRegs: []Reg{R0, R1, R2, R3}, RetReg: R0, MaxArgs: 10}
	}
}

// Errors returned by the decoders.
var (
	ErrShortCode     = errors.New("isa: code not a multiple of the instruction size")
	ErrBadOpcode     = errors.New("isa: invalid opcode")
	ErrBadRegister   = errors.New("isa: invalid register field")
	ErrBadCondition  = errors.New("isa: invalid condition field")
	ErrUnknownArch   = errors.New("isa: unknown architecture")
	ErrPCNotWritable = errors.New("isa: PC is not a general destination")
)

// Encode encodes the instruction for the flavor.
func Encode(a Arch, in Inst) ([InstSize]byte, error) {
	var out [InstSize]byte
	if in.Op == OpInvalid || in.Op >= numOpcodes {
		return out, fmt.Errorf("%w: %d", ErrBadOpcode, in.Op)
	}
	if in.Cond >= numConds {
		return out, fmt.Errorf("%w: %d", ErrBadCondition, in.Cond)
	}
	if in.Rd >= NumRegs || in.Rn >= NumRegs || in.Rm >= NumRegs {
		return out, ErrBadRegister
	}
	if in.Rd == PC && writesRd(in.Op) {
		return out, ErrPCNotWritable
	}
	var flags uint8
	if in.HasImm {
		flags = 1
	}
	imm := uint32(in.Imm)
	if in.Op == OpB || in.Op == OpBL {
		imm = in.Target
	}
	switch a {
	case ArchARM:
		// Little-endian: [op][cond|flags][rd|rn][rm|0] [imm LE]
		out[0] = byte(in.Op)
		out[1] = byte(in.Cond)<<4 | flags
		out[2] = byte(in.Rd)<<4 | byte(in.Rn)
		out[3] = byte(in.Rm) << 4
		putLE32(out[4:8], imm)
	case ArchMIPS:
		// Big-endian with a permuted layout: [rm|rd][rn|cond][flags][op] [imm BE]
		out[0] = byte(in.Rm)<<4 | byte(in.Rd)
		out[1] = byte(in.Rn)<<4 | byte(in.Cond)
		out[2] = flags
		out[3] = byte(in.Op)
		putBE32(out[4:8], imm)
	default:
		return out, ErrUnknownArch
	}
	return out, nil
}

func writesRd(op Opcode) bool {
	switch op {
	case OpMOV, OpLDR, OpLDRB, OpADD, OpSUB, OpMUL, OpAND, OpORR, OpEOR, OpLSL, OpLSR:
		return true
	}
	return false
}

// Decode decodes one instruction for the flavor.
func Decode(a Arch, b []byte) (Inst, error) {
	var in Inst
	if len(b) < InstSize {
		return in, ErrShortCode
	}
	var imm uint32
	var flags uint8
	switch a {
	case ArchARM:
		in.Op = Opcode(b[0])
		in.Cond = Cond(b[1] >> 4)
		flags = b[1] & 0x0F
		in.Rd = Reg(b[2] >> 4)
		in.Rn = Reg(b[2] & 0x0F)
		in.Rm = Reg(b[3] >> 4)
		imm = getLE32(b[4:8])
	case ArchMIPS:
		in.Rm = Reg(b[0] >> 4)
		in.Rd = Reg(b[0] & 0x0F)
		in.Rn = Reg(b[1] >> 4)
		in.Cond = Cond(b[1] & 0x0F)
		flags = b[2]
		in.Op = Opcode(b[3])
		imm = getBE32(b[4:8])
	default:
		return in, ErrUnknownArch
	}
	if in.Op == OpInvalid || in.Op >= numOpcodes {
		return in, fmt.Errorf("%w: %d", ErrBadOpcode, in.Op)
	}
	if in.Cond >= numConds {
		return in, fmt.Errorf("%w: %d", ErrBadCondition, in.Cond)
	}
	in.HasImm = flags&1 != 0
	if in.Op == OpB || in.Op == OpBL {
		in.Target = imm
	} else {
		in.Imm = int32(imm)
	}
	return in, nil
}

// DecodeAll decodes a whole code section starting at base, returning the
// instructions in address order.
func DecodeAll(a Arch, code []byte, base uint32) ([]Inst, error) {
	if len(code)%InstSize != 0 {
		return nil, ErrShortCode
	}
	out := make([]Inst, 0, len(code)/InstSize)
	for off := 0; off < len(code); off += InstSize {
		in, err := Decode(a, code[off:off+InstSize])
		if err != nil {
			return nil, fmt.Errorf("at %#x: %w", base+uint32(off), err)
		}
		out = append(out, in)
	}
	return out, nil
}

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getLE32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putBE32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func getBE32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

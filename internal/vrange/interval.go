// Package vrange implements the interval abstract domain DTaint uses to
// give numeric meaning to sanitization checks (Section IV of the paper).
//
// The domain abstracts 32-bit machine values as closed intervals
// [Lo, Hi] of int64, clamped to the span a 32-bit register can denote
// under either signedness interpretation: DomainMin = -2^31 (most
// negative signed value) through DomainMax = 2^32-1 (largest unsigned
// value). The lattice has the usual shape: Bottom (empty set) at the
// foot, Top (the full span) at the head, Join = interval hull,
// Meet = intersection. Widen jumps unstable bounds straight to the
// domain edge so that loop-head iteration terminates after one widening
// step per bound.
//
// Intervals flow into the analysis from three sides: branch constraints
// recorded by symexec ("CMP n, #151; BGT reject" proves n <= 151 on the
// fall-through path), libc models (fgets never writes more than n-1
// content bytes), and structural mask/shift bounds (the former
// expr.MaxValue, now the OfExpr walker in this package).
package vrange

// Domain edges: everything a 32-bit register can denote, signed or
// unsigned.
const (
	DomainMin int64 = -(1 << 31)
	DomainMax int64 = (1 << 32) - 1
)

// Interval is a closed interval [Lo, Hi] over the 32-bit domain span.
// Lo > Hi encodes Bottom (the empty set). The zero value is the point
// interval [0, 0]; use Bottom()/Top() for the lattice extremes.
type Interval struct {
	Lo, Hi int64
}

// Bottom returns the empty interval (unreachable / contradictory facts).
func Bottom() Interval { return Interval{Lo: 1, Hi: 0} }

// Top returns the full domain span (no information).
func Top() Interval { return Interval{Lo: DomainMin, Hi: DomainMax} }

// Point returns the singleton interval {v}, clamped to the domain.
func Point(v int64) Interval { return Range(v, v) }

// Range returns [lo, hi] clamped to the domain span; an empty input
// (lo > hi) normalizes to Bottom.
func Range(lo, hi int64) Interval {
	if lo > hi {
		return Bottom()
	}
	if lo < DomainMin {
		lo = DomainMin
	}
	if hi > DomainMax {
		hi = DomainMax
	}
	if lo > hi { // the clamp emptied the interval
		return Bottom()
	}
	return Interval{Lo: lo, Hi: hi}
}

// AtMost returns [DomainMin, hi]: pure upper-bound evidence, the form a
// branch constraint such as `n <= 151` contributes.
func AtMost(hi int64) Interval { return Range(DomainMin, hi) }

// AtLeast returns [lo, DomainMax]: pure lower-bound evidence.
func AtLeast(lo int64) Interval { return Range(lo, DomainMax) }

// IsBottom reports whether the interval is empty.
func (i Interval) IsBottom() bool { return i.Lo > i.Hi }

// IsTop reports whether the interval carries no information.
func (i Interval) IsTop() bool { return i.Lo <= DomainMin && i.Hi >= DomainMax }

// Bounded reports whether the interval supplies a usable upper bound:
// non-empty and with Hi strictly inside the domain. Lower-bound-only
// facts (`n > 4`) are not Bounded — they can never prove a copy fits.
func (i Interval) Bounded() bool { return !i.IsBottom() && i.Hi < DomainMax }

// Contains reports whether v lies in the interval.
func (i Interval) Contains(v int64) bool { return !i.IsBottom() && i.Lo <= v && v <= i.Hi }

// Eq reports lattice equality: all Bottom representations are equal.
func (i Interval) Eq(o Interval) bool {
	if i.IsBottom() || o.IsBottom() {
		return i.IsBottom() && o.IsBottom()
	}
	return i.Lo == o.Lo && i.Hi == o.Hi
}

// Join returns the least upper bound (interval hull).
func (i Interval) Join(o Interval) Interval {
	if i.IsBottom() {
		return o
	}
	if o.IsBottom() {
		return i
	}
	lo, hi := i.Lo, i.Hi
	if o.Lo < lo {
		lo = o.Lo
	}
	if o.Hi > hi {
		hi = o.Hi
	}
	return Interval{Lo: lo, Hi: hi}
}

// Meet returns the greatest lower bound (intersection).
func (i Interval) Meet(o Interval) Interval {
	if i.IsBottom() || o.IsBottom() {
		return Bottom()
	}
	lo, hi := i.Lo, i.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if lo > hi {
		return Bottom()
	}
	return Interval{Lo: lo, Hi: hi}
}

// Widen returns the standard interval widening of i by o: any bound of o
// that escapes i jumps to the domain edge. Used at loop heads, where a
// bound that moved between iterations must be assumed unstable; a bound
// that held still is kept. Widen(i, o) always contains Join(i, o), and
// iterating x = Widen(x, next) stabilizes after at most two steps.
func (i Interval) Widen(o Interval) Interval {
	if i.IsBottom() {
		return o
	}
	if o.IsBottom() {
		return i
	}
	lo, hi := i.Lo, i.Hi
	if o.Lo < lo {
		lo = DomainMin
	}
	if o.Hi > hi {
		hi = DomainMax
	}
	return Interval{Lo: lo, Hi: hi}
}

// String formats the interval for evidence chains and diagnostics.
func (i Interval) String() string {
	switch {
	case i.IsBottom():
		return "⊥"
	case i.IsTop():
		return "⊤"
	case i.Lo <= DomainMin:
		return "[..," + itoa(i.Hi) + "]"
	case i.Hi >= DomainMax:
		return "[" + itoa(i.Lo) + ",..]"
	}
	return "[" + itoa(i.Lo) + "," + itoa(i.Hi) + "]"
}

func itoa(v int64) string {
	// Small local formatter keeps the hot path allocation-light.
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	p := len(buf)
	for v > 0 {
		p--
		buf[p] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}

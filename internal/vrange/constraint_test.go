package vrange

import (
	"testing"

	"dtaint/internal/expr"
	"dtaint/internal/isa"
)

func TestFromConstraint(t *testing.T) {
	n := expr.Sym("len_abc")
	tests := []struct {
		name string
		l, r *expr.Expr
		cond isa.Cond
		key  string
		iv   Interval
		ok   bool
	}{
		{"lt", n, expr.Const(152), isa.CondLT, "len_abc", AtMost(151), true},
		{"le", n, expr.Const(151), isa.CondLE, "len_abc", AtMost(151), true},
		{"eq", n, expr.Const(7), isa.CondEQ, "len_abc", Point(7), true},
		{"gt lower bound only", n, expr.Const(4), isa.CondGT, "len_abc", AtLeast(5), true},
		{"ge lower bound only", n, expr.Const(4), isa.CondGE, "len_abc", AtLeast(4), true},
		{"ne unsupported", n, expr.Const(4), isa.CondNE, "", Interval{}, false},
		{"al unsupported", n, expr.Const(4), isa.CondAL, "", Interval{}, false},
		{"mirrored const left", expr.Const(152), n, isa.CondGT, "len_abc", AtMost(151), true},
		{"mirrored le", expr.Const(10), n, isa.CondLE, "len_abc", AtLeast(10), true},
		{"offset shifted", expr.Add(n, 1), expr.Const(64), isa.CondLE, "len_abc", AtMost(63), true},
		{"offset shifted lt", expr.Add(n, 1), expr.Const(64), isa.CondLT, "len_abc", AtMost(62), true},
		{"two symbols", n, expr.Sym("cap"), isa.CondLT, "", Interval{}, false},
		{"two consts", expr.Const(1), expr.Const(2), isa.CondLT, "", Interval{}, false},
		{"deref base", expr.Deref(expr.Sym("p")), expr.Const(9), isa.CondLE, expr.Deref(expr.Sym("p")).Key(), AtMost(9), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			key, iv, ok := FromConstraint(tt.l, tt.r, tt.cond)
			if ok != tt.ok {
				t.Fatalf("ok = %v, want %v", ok, tt.ok)
			}
			if !ok {
				return
			}
			if key != tt.key || !iv.Eq(tt.iv) {
				t.Fatalf("got (%q, %v), want (%q, %v)", key, iv, tt.key, tt.iv)
			}
		})
	}
}

// The guard idiom the satellite fix targets: `if (n > 151) return` leaves
// n <= 151 on the fall-through path, which bounds but does not shrink
// below a 152-byte destination — the copy of n+NUL bytes still overflows
// by one. FromConstraint must report Hi == 151 exactly so the detector
// can make that call.
func TestFromConstraintOffByOneBoundary(t *testing.T) {
	n := expr.Sym("n")
	_, iv, ok := FromConstraint(n, expr.Const(152), isa.CondLE)
	if !ok || iv.Hi != 152 {
		t.Fatalf("n <= 152: got %v, %v", iv, ok)
	}
	_, iv, ok = FromConstraint(n, expr.Const(152), isa.CondLT)
	if !ok || iv.Hi != 151 {
		t.Fatalf("n < 152: got %v, %v", iv, ok)
	}
}

// FuzzIntervalFromConstraint checks two invariants over arbitrary
// constraint shapes: (1) derivation never panics or returns Bottom with
// ok, and (2) soundness — every concrete value satisfying the concrete
// comparison lies inside the derived interval.
func FuzzIntervalFromConstraint(f *testing.F) {
	f.Add(int64(152), uint8(isa.CondLT), int64(0), int64(100), false)
	f.Add(int64(64), uint8(isa.CondLE), int64(1), int64(64), true)
	f.Add(int64(-3), uint8(isa.CondGT), int64(0), int64(-4), false)
	f.Add(int64(0), uint8(isa.CondEQ), int64(0), int64(0), true)
	f.Add(DomainMin, uint8(isa.CondLT), int64(-7), DomainMin, false)
	f.Add(DomainMax, uint8(isa.CondGT), int64(5), DomainMax, true)
	f.Fuzz(func(t *testing.T, c int64, condRaw uint8, off int64, v int64, mirrored bool) {
		cond := isa.Cond(condRaw % 7)
		n := expr.Sym("n")
		lhs := expr.Add(n, off%1024) // keep the offset small enough to not clamp
		rhs := expr.Const(c)
		var key string
		var iv Interval
		var ok bool
		if mirrored {
			key, iv, ok = FromConstraint(rhs, lhs, mirror(cond))
		} else {
			key, iv, ok = FromConstraint(lhs, rhs, cond)
		}
		if !ok {
			return
		}
		if key != "n" {
			t.Fatalf("key = %q, want n", key)
		}
		if iv.IsBottom() {
			t.Fatalf("ok result must not be Bottom")
		}
		// Soundness: if the concrete comparison (n+off) cond c holds for
		// n = v, then v must be inside iv (modulo domain clamping).
		if v < DomainMin || v > DomainMax {
			return
		}
		lv := v + off%1024
		holds := false
		switch cond {
		case isa.CondEQ:
			holds = lv == c
		case isa.CondLT:
			holds = lv < c
		case isa.CondLE:
			holds = lv <= c
		case isa.CondGT:
			holds = lv > c
		case isa.CondGE:
			holds = lv >= c
		}
		if holds && !iv.Contains(v) {
			t.Fatalf("unsound: n=%d satisfies (n%+d) %v %d but %v excludes it",
				v, off%1024, cond, c, iv)
		}
	})
}

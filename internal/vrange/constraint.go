package vrange

import (
	"dtaint/internal/expr"
	"dtaint/internal/isa"
)

// FromConstraint turns one branch constraint `l cond r` into an interval
// fact about a single expression: the returned key identifies the
// constrained expression (its canonical Key) and iv is the set of values
// it can take on the path where the constraint holds. ok is false when
// the constraint does not shape up as "expression versus constant" —
// two symbolic sides, two constants, or a condition (NE, AL) that an
// interval cannot represent usefully.
//
// Base-plus-offset forms are shifted onto the base: `(n+1) <= cap`
// yields n <= cap-1, so the guard idiom `if (len+1 > sizeof buf) reject`
// still bounds len itself.
//
// Note symexec records the constraints of *both* branch directions
// (taken and fall-through are different paths); callers must therefore
// treat each derived interval as evidence about its own path, keeping
// upper-bound evidence (iv.Bounded()) for sanitization, never meeting
// intervals across sibling paths.
func FromConstraint(l, r *expr.Expr, cond isa.Cond) (key string, iv Interval, ok bool) {
	if l == nil || r == nil {
		return "", Interval{}, false
	}
	c, rConst := r.ConstVal()
	if !rConst {
		// Maybe the constant is on the left: flip operands and mirror
		// the condition (c < n  ⇔  n > c).
		lc, lConst := l.ConstVal()
		if !lConst {
			return "", Interval{}, false
		}
		l, c = r, lc
		cond = mirror(cond)
	} else if _, alsoConst := l.ConstVal(); alsoConst {
		return "", Interval{}, false
	}
	base, off, okBase := l.BasePlusOffset()
	if !okBase || base == nil {
		return "", Interval{}, false
	}
	c -= off
	switch cond {
	case isa.CondEQ:
		iv = Point(c)
	case isa.CondLT:
		iv = AtMost(c - 1)
	case isa.CondLE:
		iv = AtMost(c)
	case isa.CondGT:
		iv = AtLeast(c + 1)
	case isa.CondGE:
		iv = AtLeast(c)
	default: // NE, AL: no single-interval meaning
		return "", Interval{}, false
	}
	if iv.IsBottom() {
		return "", Interval{}, false
	}
	return base.Key(), iv, true
}

// mirror swaps the operand order of a comparison: `c cond n` holds iff
// `n mirror(cond) c` does.
func mirror(cond isa.Cond) isa.Cond {
	switch cond {
	case isa.CondLT:
		return isa.CondGT
	case isa.CondGT:
		return isa.CondLT
	case isa.CondLE:
		return isa.CondGE
	case isa.CondGE:
		return isa.CondLE
	}
	return cond
}

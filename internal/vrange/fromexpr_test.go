package vrange

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dtaint/internal/expr"
)

// TestMaxValue is the compatibility suite for the structural bound
// formerly implemented as expr.MaxValue and now a thin wrapper over
// OfExpr.
func TestMaxValue(t *testing.T) {
	taintE := expr.Sym(expr.TaintName("recv", 1))
	tests := []struct {
		name  string
		e     *expr.Expr
		bound int64
		ok    bool
	}{
		{"const", expr.Const(42), 42, true},
		{"negative const", expr.Const(-1), 0, false},
		{"symbol", expr.Sym("n"), 0, false},
		{"mask", expr.Bin(expr.OpAnd, taintE, expr.Const(7)), 7, true},
		{"mask reversed", expr.Bin(expr.OpAnd, expr.Const(0xFF), taintE), 255, true},
		{"mask of bounded", expr.Bin(expr.OpAnd, expr.Const(3), expr.Const(0xFF)), 3, true},
		{"shr", expr.Bin(expr.OpShr, expr.Bin(expr.OpAnd, taintE, expr.Const(0xFF)), expr.Const(4)), 15, true},
		{"shl", expr.Bin(expr.OpShl, expr.Bin(expr.OpAnd, taintE, expr.Const(3)), expr.Const(2)), 12, true},
		{"sum", expr.Bin(expr.OpAdd, expr.Bin(expr.OpAnd, taintE, expr.Const(7)), expr.Bin(expr.OpAnd, expr.Sym("x"), expr.Const(8))), 15, true},
		{"sum unbounded", expr.Bin(expr.OpAdd, expr.Sym("x"), expr.Const(7)), 0, false},
		{"mul", expr.Bin(expr.OpMul, expr.Bin(expr.OpAnd, taintE, expr.Const(3)), expr.Const(4)), 12, true},
		{"or", expr.Bin(expr.OpOr, expr.Bin(expr.OpAnd, taintE, expr.Const(7)), expr.Bin(expr.OpAnd, expr.Sym("x"), expr.Const(8))), 15, true},
		{"or unbounded", expr.Bin(expr.OpOr, taintE, expr.Const(7)), 0, false},
		{"deref", expr.Deref(expr.Sym("p")), 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b, ok := MaxValue(tt.e)
			if ok != tt.ok || (ok && b != tt.bound) {
				t.Fatalf("MaxValue(%s) = %d,%v want %d,%v", tt.e, b, ok, tt.bound, tt.ok)
			}
		})
	}
}

func TestOfExprEnv(t *testing.T) {
	n := expr.Sym("len_abc")
	env := Env{"len_abc": AtMost(151)}
	if iv := OfExpr(n, env); !iv.Eq(AtMost(151)) {
		t.Fatalf("env lookup: got %v", iv)
	}
	// (len+1) under len <= 151 is <= 152.
	if iv := OfExpr(expr.Add(n, 1), env); iv.Hi != 152 || !iv.Bounded() {
		t.Fatalf("shifted bound: got %v", iv)
	}
	// A symbol without a proven range stays Top and poisons the sum.
	if iv := OfExpr(expr.Bin(expr.OpAdd, n, expr.Sym("other")), env); iv.Bounded() {
		t.Fatalf("unbounded term must poison the sum: got %v", iv)
	}
	// Deref keys resolve through the env too.
	d := expr.Deref(expr.Add(expr.Sym("sp"), -64))
	env[d.Key()] = Range(0, 31)
	if iv := OfExpr(d, env); !iv.Eq(Range(0, 31)) {
		t.Fatalf("deref env lookup: got %v", iv)
	}
}

func TestOfExprSubtraction(t *testing.T) {
	// The domain is non-relational: n-m subtracts interval endpoints.
	env := Env{"n": Range(10, 20), "m": Range(1, 2)}
	iv := OfExpr(expr.Bin(expr.OpSub, expr.Sym("n"), expr.Sym("m")), env)
	if !iv.Eq(Range(8, 19)) {
		t.Fatalf("sub: got %v", iv)
	}
}

// Property: whenever MaxValue returns a bound for a randomly built
// expression over masked leaves, evaluating the expression with any
// concrete leaf assignment stays <= the bound (soundness of the
// abstract domain with respect to the concrete semantics).
func TestMaxValueSoundness(t *testing.T) {
	type leaf struct {
		sym  *expr.Expr
		mask int64
	}
	build := func(r *rand.Rand) (*expr.Expr, []leaf) {
		leaves := []leaf{
			{expr.Sym("a"), int64(r.Intn(255) + 1)},
			{expr.Sym("b"), int64(r.Intn(255) + 1)},
		}
		e1 := expr.Bin(expr.OpAnd, leaves[0].sym, expr.Const(leaves[0].mask))
		e2 := expr.Bin(expr.OpAnd, leaves[1].sym, expr.Const(leaves[1].mask))
		ops := []expr.Op{expr.OpAdd, expr.OpMul, expr.OpOr}
		return expr.Bin(ops[r.Intn(len(ops))], e1, e2), leaves
	}
	eval := func(e *expr.Expr, env map[string]int64) int64 {
		var ev func(x *expr.Expr) int64
		ev = func(x *expr.Expr) int64 {
			if v, ok := x.ConstVal(); ok {
				return v
			}
			if n, ok := x.SymName(); ok {
				return env[n]
			}
			op, l, rr, _ := x.BinOperands()
			a, b := ev(l), ev(rr)
			switch op {
			case expr.OpAdd:
				return a + b
			case expr.OpMul:
				return a * b
			case expr.OpAnd:
				return a & b
			case expr.OpOr:
				return a | b
			}
			return 0
		}
		return ev(e)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e, leaves := build(r)
		bound, ok := MaxValue(e)
		if !ok {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			env := map[string]int64{}
			for _, l := range leaves {
				name, _ := l.sym.SymName()
				env[name] = r.Int63n(1 << 20)
			}
			if eval(e, env) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

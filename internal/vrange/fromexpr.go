package vrange

import "dtaint/internal/expr"

// Env maps expression keys (symbol names, deref keys) to proven
// intervals. OfExpr consults it for leaves it cannot bound structurally.
type Env map[string]Interval

// ofExprDepth caps the structural walk, mirroring the old
// expr.MaxValue recursion limit.
const ofExprDepth = 16

// OfExpr evaluates e in the interval domain under env. Constants bound
// themselves, masks bound by the mask (firmware length fields are
// routinely masked, e.g. Figure 3's `AND R10, R3, #7`), shifts scale
// bounds, and sums/products of bounded terms combine. The env is
// consulted at every node by expression key — symbol names, deref keys,
// and whole-expression keys (callee return values carry facts under
// their instantiated expression key) — and env facts are met with the
// structural bound, both being true of the same value. The result is a
// sound over-approximation of the concrete 32-bit value whenever env is.
func OfExpr(e *expr.Expr, env Env) Interval {
	return ofExpr(e, env, 0)
}

func ofExpr(e *expr.Expr, env Env, depth int) Interval {
	if e == nil || depth > ofExprDepth {
		return Top()
	}
	s := structural(e, env, depth)
	if env != nil {
		if iv, ok := env[e.Key()]; ok {
			s = s.Meet(iv)
		}
	}
	return s
}

// structural is the purely syntactic half of ofExpr: leaves other than
// constants are Top (their env facts are applied by the caller).
func structural(e *expr.Expr, env Env, depth int) Interval {
	if v, ok := e.ConstVal(); ok {
		return Point(v)
	}
	op, x, y, ok := e.BinOperands()
	if !ok {
		return Top() // symbol or deref: env-only
	}
	a := ofExpr(x, env, depth+1)
	b := ofExpr(y, env, depth+1)
	switch op {
	case expr.OpAdd:
		if a.IsBottom() || b.IsBottom() {
			return Bottom()
		}
		return Range(a.Lo+b.Lo, a.Hi+b.Hi)
	case expr.OpSub:
		if a.IsBottom() || b.IsBottom() {
			return Bottom()
		}
		return Range(a.Lo-b.Hi, a.Hi-b.Lo)
	case expr.OpMul:
		if nonNegBounded(a) && nonNegBounded(b) && a.Hi < (1<<31) && b.Hi < (1<<31) {
			return Range(a.Lo*b.Lo, a.Hi*b.Hi)
		}
	case expr.OpAnd:
		// x & mask lies in [0, mask] for a non-negative mask no matter
		// what x is; a tighter non-negative bound on x wins.
		if m, ok := y.ConstVal(); ok && m >= 0 {
			hi := m
			if nonNegBounded(a) && a.Hi < hi {
				hi = a.Hi
			}
			return Range(0, hi)
		}
		if m, ok := x.ConstVal(); ok && m >= 0 {
			hi := m
			if nonNegBounded(b) && b.Hi < hi {
				hi = b.Hi
			}
			return Range(0, hi)
		}
		if nonNegBounded(a) && nonNegBounded(b) {
			hi := a.Hi
			if b.Hi < hi {
				hi = b.Hi
			}
			return Range(0, hi)
		}
	case expr.OpOr, expr.OpXor:
		// Both stay under the sum of the operand bounds (a coarse but
		// simple bound; OR is at most the next power of two minus one).
		if nonNegBounded(a) && nonNegBounded(b) {
			return Range(0, a.Hi+b.Hi)
		}
	case expr.OpShl:
		if sh, ok := y.ConstVal(); ok && sh >= 0 && sh < 32 && nonNegBounded(a) && a.Hi < (1<<31) {
			return Range(a.Lo<<uint(sh), a.Hi<<uint(sh))
		}
	case expr.OpShr:
		if sh, ok := y.ConstVal(); ok && sh >= 0 && sh < 63 && nonNegBounded(a) {
			return Range(a.Lo>>uint(sh), a.Hi>>uint(sh))
		}
	}
	return Top()
}

func nonNegBounded(i Interval) bool { return i.Bounded() && i.Lo >= 0 }

// MaxValue computes a structural upper bound for a non-negative
// expression, when one exists. It is the thin compatibility wrapper over
// OfExpr that replaces the former expr.MaxValue: constants bound
// themselves, AND with a constant mask bounds by the mask, right shifts
// divide the bound, and sums/products of bounded terms combine. Symbolic
// values are unbounded. ok is false when no bound can be derived.
func MaxValue(e *expr.Expr) (int64, bool) {
	iv := OfExpr(e, nil)
	if !iv.Bounded() || iv.Lo < 0 {
		return 0, false
	}
	return iv.Hi, true
}

// MaxValueEnv is MaxValue with proven ranges for leaves: the upper bound
// of e under env, when one exists.
func MaxValueEnv(e *expr.Expr, env Env) (int64, bool) {
	iv := OfExpr(e, env)
	if !iv.Bounded() {
		return 0, false
	}
	return iv.Hi, true
}

package vrange

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate produces a mix of Bottom, Top, points, half-bounded and
// proper intervals so the lattice laws are exercised across the whole
// domain, not just well-behaved finite boxes.
func (Interval) Generate(r *rand.Rand, _ int) reflect.Value {
	var iv Interval
	switch r.Intn(6) {
	case 0:
		iv = Bottom()
	case 1:
		iv = Top()
	case 2:
		iv = Point(randVal(r))
	case 3:
		iv = AtMost(randVal(r))
	case 4:
		iv = AtLeast(randVal(r))
	default:
		a, b := randVal(r), randVal(r)
		if a > b {
			a, b = b, a
		}
		iv = Range(a, b)
	}
	return reflect.ValueOf(iv)
}

func randVal(r *rand.Rand) int64 {
	switch r.Intn(4) {
	case 0:
		return DomainMin
	case 1:
		return DomainMax
	case 2:
		return int64(r.Intn(512)) - 256
	}
	return r.Int63n(DomainMax-DomainMin) + DomainMin
}

func qc(t *testing.T, name string, f interface{}) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatal(err)
		}
	})
}

// leq is the lattice partial order: a ⊑ b iff a ⊆ b.
func leq(a, b Interval) bool {
	if a.IsBottom() {
		return true
	}
	if b.IsBottom() {
		return false
	}
	return b.Lo <= a.Lo && a.Hi <= b.Hi
}

func TestLatticeLaws(t *testing.T) {
	qc(t, "join commutative", func(a, b Interval) bool { return a.Join(b).Eq(b.Join(a)) })
	qc(t, "meet commutative", func(a, b Interval) bool { return a.Meet(b).Eq(b.Meet(a)) })
	qc(t, "join associative", func(a, b, c Interval) bool {
		return a.Join(b).Join(c).Eq(a.Join(b.Join(c)))
	})
	qc(t, "meet associative", func(a, b, c Interval) bool {
		return a.Meet(b).Meet(c).Eq(a.Meet(b.Meet(c)))
	})
	qc(t, "join idempotent", func(a Interval) bool { return a.Join(a).Eq(a) })
	qc(t, "meet idempotent", func(a Interval) bool { return a.Meet(a).Eq(a) })
	qc(t, "absorption", func(a, b Interval) bool {
		return a.Join(a.Meet(b)).Eq(a) && a.Meet(a.Join(b)).Eq(a)
	})
	qc(t, "bottom is join identity", func(a Interval) bool { return a.Join(Bottom()).Eq(a) })
	qc(t, "top is meet identity", func(a Interval) bool { return a.Meet(Top()).Eq(a) })
	qc(t, "bottom annihilates meet", func(a Interval) bool { return a.Meet(Bottom()).IsBottom() })
	qc(t, "top annihilates join", func(a Interval) bool { return a.Join(Top()).IsTop() })
	qc(t, "join is an upper bound", func(a, b Interval) bool {
		j := a.Join(b)
		return leq(a, j) && leq(b, j)
	})
	qc(t, "meet is a lower bound", func(a, b Interval) bool {
		m := a.Meet(b)
		return leq(m, a) && leq(m, b)
	})
	qc(t, "join is the least upper bound", func(a, b, c Interval) bool {
		if leq(a, c) && leq(b, c) {
			return leq(a.Join(b), c)
		}
		return true
	})
}

func TestWidening(t *testing.T) {
	qc(t, "widen covers join", func(a, b Interval) bool {
		return leq(a.Join(b), a.Widen(b))
	})
	qc(t, "widen stabilizes", func(a, b, c Interval) bool {
		// One widening step per bound: after w = a∇b, further
		// observations inside w change nothing, and observations
		// outside terminate at Top in one more step.
		w := a.Widen(b)
		w2 := w.Widen(c)
		return w.Widen(b).Eq(w) && w2.Widen(c).Eq(w2)
	})
	// An unstable upper bound jumps to the domain edge, a stable one is
	// kept: this is the loop-head policy (DESIGN.md §3.3).
	if got := Range(0, 10).Widen(Range(0, 11)); !got.Eq(Range(0, DomainMax)) {
		t.Fatalf("unstable Hi: got %v", got)
	}
	if got := Range(0, 10).Widen(Range(3, 10)); !got.Eq(Range(0, 10)) {
		t.Fatalf("stable bounds: got %v", got)
	}
}

func TestContains(t *testing.T) {
	if Bottom().Contains(0) {
		t.Fatal("bottom contains nothing")
	}
	if !Top().Contains(DomainMax) || !Top().Contains(DomainMin) {
		t.Fatal("top contains everything in the domain")
	}
	iv := Range(3, 7)
	for v, want := range map[int64]bool{2: false, 3: true, 5: true, 7: true, 8: false} {
		if iv.Contains(v) != want {
			t.Fatalf("Contains(%d) = %v", v, !want)
		}
	}
}

func TestClamping(t *testing.T) {
	if got := Range(DomainMin-5, DomainMax+5); !got.Eq(Top()) {
		t.Fatalf("Range clamps to domain: got %v", got)
	}
	if got := Range(5, 3); !got.IsBottom() {
		t.Fatalf("inverted Range is Bottom: got %v", got)
	}
	// Hi == DomainMax means "could be anything up there": a point
	// exactly at the edge is indistinguishable from unbounded evidence,
	// so Bounded is false — the detector must not trust it.
	if Point(DomainMax).Bounded() {
		t.Fatal("point at domain edge must count as unbounded")
	}
}

func TestBounded(t *testing.T) {
	cases := []struct {
		iv   Interval
		want bool
	}{
		{Bottom(), false},
		{Top(), false},
		{AtMost(151), true},
		{AtLeast(4), false}, // lower bounds never prove a copy fits
		{Range(0, 255), true},
		{Point(42), true},
	}
	for _, c := range cases {
		if c.iv.Bounded() != c.want {
			t.Fatalf("Bounded(%v) = %v, want %v", c.iv, !c.want, c.want)
		}
	}
}

func TestString(t *testing.T) {
	for _, c := range []struct {
		iv   Interval
		want string
	}{
		{Bottom(), "⊥"},
		{Top(), "⊤"},
		{AtMost(64), "[..,64]"},
		{AtLeast(-3), "[-3,..]"},
		{Range(0, 151), "[0,151]"},
	} {
		if got := c.iv.String(); got != c.want {
			t.Fatalf("String(%#v) = %q, want %q", c.iv, got, c.want)
		}
	}
}

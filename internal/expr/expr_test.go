package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	tests := []struct {
		name string
		got  *Expr
		want int64
	}{
		{"add", Bin(OpAdd, Const(3), Const(4)), 7},
		{"sub", Bin(OpSub, Const(3), Const(4)), -1},
		{"mul", Bin(OpMul, Const(3), Const(4)), 12},
		{"and", Bin(OpAnd, Const(0xF0), Const(0x3C)), 0x30},
		{"or", Bin(OpOr, Const(0xF0), Const(0x0C)), 0xFC},
		{"xor", Bin(OpXor, Const(0xFF), Const(0x0F)), 0xF0},
		{"shl", Bin(OpShl, Const(1), Const(4)), 16},
		{"shr", Bin(OpShr, Const(16), Const(4)), 1},
		{"nested", Bin(OpAdd, Bin(OpMul, Const(2), Const(3)), Const(1)), 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, ok := tt.got.ConstVal()
			if !ok {
				t.Fatalf("expected constant, got %s", tt.got)
			}
			if v != tt.want {
				t.Fatalf("got %d, want %d", v, tt.want)
			}
		})
	}
}

func TestAddNormalization(t *testing.T) {
	a := Sym("arg0")
	b := Sym("arg1")
	left := Bin(OpAdd, a, b)
	right := Bin(OpAdd, b, a)
	if !left.Equal(right) {
		t.Fatalf("addition not commutative after normalization: %s vs %s", left, right)
	}

	// (arg0 + 4) + 8 == arg0 + 12
	e1 := Add(Add(a, 4), 8)
	e2 := Add(a, 12)
	if !e1.Equal(e2) {
		t.Fatalf("constants not folded across nesting: %s vs %s", e1, e2)
	}

	// arg0 - 4 == arg0 + (-4)
	e3 := Bin(OpSub, a, Const(4))
	e4 := Add(a, -4)
	if !e3.Equal(e4) {
		t.Fatalf("subtraction of constant not canonicalized: %s vs %s", e3, e4)
	}
}

func TestIdentities(t *testing.T) {
	a := Sym("x")
	if got := Bin(OpMul, a, Const(1)); !got.Equal(a) {
		t.Errorf("x*1 = %s, want x", got)
	}
	if got := Bin(OpMul, a, Const(0)); !got.Equal(Const(0)) {
		t.Errorf("x*0 = %s, want 0", got)
	}
	if got := Bin(OpOr, a, Const(0)); !got.Equal(a) {
		t.Errorf("x|0 = %s, want x", got)
	}
	if got := Bin(OpShl, a, Const(0)); !got.Equal(a) {
		t.Errorf("x<<0 = %s, want x", got)
	}
	if got := Bin(OpSub, a, a); !got.Equal(Const(0)) {
		t.Errorf("x-x = %s, want 0", got)
	}
}

func TestDerefString(t *testing.T) {
	// The paper's running example: R1 = deref(R5 + 0x4C).
	e := Deref(Add(Sym("arg1"), 0x4C))
	if e.String() != "deref((arg1+76))" {
		t.Fatalf("unexpected canonical form: %s", e)
	}
	addr, ok := e.DerefAddr()
	if !ok {
		t.Fatal("DerefAddr failed")
	}
	b, off, ok := addr.BasePlusOffset()
	if !ok || off != 0x4C {
		t.Fatalf("BasePlusOffset: base=%v off=%#x ok=%v", b, off, ok)
	}
	if name, _ := b.SymName(); name != "arg1" {
		t.Fatalf("base = %s, want arg1", b)
	}
}

func TestBasePointers(t *testing.T) {
	// deref(deref(arg0+0x58)+0xEC) has base pointers arg0 and
	// deref(arg0+0x58) — the paper's multi-base example.
	inner := Deref(Add(Sym("arg0"), 0x58))
	e := Deref(Add(inner, 0xEC))
	ptrs := e.BasePointers()
	if len(ptrs) != 2 {
		t.Fatalf("got %d base pointers (%v), want 2", len(ptrs), ptrs)
	}
	keys := map[string]bool{}
	for _, p := range ptrs {
		keys[p.Key()] = true
	}
	if !keys[inner.Key()] || !keys["arg0"] {
		t.Fatalf("base pointers = %v, want arg0 and %s", ptrs, inner)
	}
}

func TestRootPointer(t *testing.T) {
	inner := Deref(Add(Sym("arg0"), 0x58))
	e := Deref(Add(inner, 0xEC))
	root := e.RootPointer()
	if root == nil {
		t.Fatal("nil root")
	}
	if name, _ := root.SymName(); name != "arg0" {
		t.Fatalf("root = %s, want arg0", root)
	}
}

func TestSubst(t *testing.T) {
	// Substituting a formal argument with an actual at a callsite:
	// deref(arg0+0x4C) with arg0 -> deref(sp+(-0x100)) becomes nested.
	formal := Deref(Add(Sym("arg0"), 0x4C))
	actual := Deref(Add(Sym(StackSym), -0x100))
	got := formal.Subst(Sym("arg0"), actual)
	want := Deref(Add(actual, 0x4C))
	if !got.Equal(want) {
		t.Fatalf("got %s, want %s", got, want)
	}
	// No-op substitution returns the receiver unchanged.
	if formal.Subst(Sym("argX"), actual) != formal {
		t.Fatal("no-op substitution should return the same pointer")
	}
}

func TestSubstMapSinglePass(t *testing.T) {
	// a -> b and b -> c applied simultaneously must not chain a -> c.
	e := Bin(OpAdd, Sym("a"), Sym("b"))
	got := e.SubstMap(map[string]*Expr{
		"a": Sym("b"),
		"b": Sym("c"),
	})
	want := Bin(OpAdd, Sym("b"), Sym("c"))
	if !got.Equal(want) {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestContainsAndSyms(t *testing.T) {
	e := Deref(Bin(OpAdd, Sym("arg2"), Bin(OpMul, Sym("i"), Const(4))))
	if !e.ContainsSym("arg2") || !e.ContainsSym("i") || e.ContainsSym("j") {
		t.Fatalf("ContainsSym wrong for %s", e)
	}
	syms := e.Syms()
	if len(syms) != 2 {
		t.Fatalf("Syms = %v, want 2 entries", syms)
	}
	if Deref(Sym(TaintSym)).ContainsTaint() != true {
		t.Fatal("taint not detected")
	}
}

func TestArgHelpers(t *testing.T) {
	if ArgName(3) != "arg3" {
		t.Fatalf("ArgName(3) = %s", ArgName(3))
	}
	if i, ok := ArgIndex("arg7"); !ok || i != 7 {
		t.Fatalf("ArgIndex(arg7) = %d,%v", i, ok)
	}
	if _, ok := ArgIndex("argle"); ok {
		t.Fatal("argle should not parse as an argument")
	}
	if _, ok := ArgIndex("ret_foo_1c"); ok {
		t.Fatal("ret symbol is not an argument")
	}
	if !IsRetSym(RetName("memcpy", 0x6fc44)) {
		t.Fatal("RetName not recognized by IsRetSym")
	}
}

func TestDepthTruncation(t *testing.T) {
	e := Sym("p")
	for i := 0; i < MaxDepth*3; i++ {
		e = Deref(e)
	}
	if e.Depth() > MaxDepth+2 {
		t.Fatalf("depth %d exceeds bound", e.Depth())
	}
	// Truncation must be deterministic: building it again gives an equal key.
	f := Sym("p")
	for i := 0; i < MaxDepth*3; i++ {
		f = Deref(f)
	}
	if !e.Equal(f) {
		t.Fatal("truncation is not deterministic")
	}
}

// randomExpr builds a random expression of bounded size for property tests.
func randomExpr(r *rand.Rand, depth int) *Expr {
	if depth <= 0 {
		if r.Intn(2) == 0 {
			return Const(int64(r.Intn(256) - 128))
		}
		return Sym(ArgName(r.Intn(4)))
	}
	switch r.Intn(4) {
	case 0:
		return Const(int64(r.Intn(256) - 128))
	case 1:
		return Sym(ArgName(r.Intn(4)))
	case 2:
		return Deref(randomExpr(r, depth-1))
	default:
		ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor}
		return Bin(ops[r.Intn(len(ops))], randomExpr(r, depth-1), randomExpr(r, depth-1))
	}
}

func TestPropertyKeyDeterminism(t *testing.T) {
	// Rebuilding an expression from the same random stream yields the same key.
	f := func(seed int64) bool {
		a := randomExpr(rand.New(rand.NewSource(seed)), 5)
		b := randomExpr(rand.New(rand.NewSource(seed)), 5)
		return a.Equal(b) && a.Key() == b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddCommutative(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomExpr(rand.New(rand.NewSource(s1)), 4)
		b := randomExpr(rand.New(rand.NewSource(s2)), 4)
		return Bin(OpAdd, a, b).Equal(Bin(OpAdd, b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddAssociativeWithConstants(t *testing.T) {
	f := func(seed int64, c1, c2 int32) bool {
		a := randomExpr(rand.New(rand.NewSource(seed)), 3)
		l := Add(Add(a, int64(c1)), int64(c2))
		r := Add(a, int64(c1)+int64(c2))
		return l.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubstIdentity(t *testing.T) {
	// Substituting a symbol that does not occur is the identity.
	f := func(seed int64) bool {
		a := randomExpr(rand.New(rand.NewSource(seed)), 4)
		return a.Subst(Sym("never_occurs"), Const(42)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySubstRemovesSymbol(t *testing.T) {
	// After substituting argN -> const, argN no longer occurs (depth-bounded
	// expressions only; truncation can hide symbols inside opaque names).
	f := func(seed int64) bool {
		a := randomExpr(rand.New(rand.NewSource(seed)), 4)
		if a.Depth() >= MaxDepth {
			return true
		}
		got := a.Subst(Sym("arg0"), Const(7))
		return !got.ContainsSym("arg0")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDepthBounded(t *testing.T) {
	f := func(seed int64) bool {
		a := randomExpr(rand.New(rand.NewSource(seed)), 40)
		return a.Depth() <= MaxDepth+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTypeJoin(t *testing.T) {
	tests := []struct {
		a, b, want Type
	}{
		{TypeUnknown, TypeInt, TypeInt},
		{TypeInt, TypeUnknown, TypeInt},
		{TypeInt, TypeInt, TypeInt},
		{TypePtr, TypeCharPtr, TypeCharPtr},
		{TypeCharPtr, TypePtr, TypeCharPtr},
		{TypeInt, TypeCharPtr, TypeConflict},
		{TypeFuncPtr, TypePtr, TypeFuncPtr},
	}
	for _, tt := range tests {
		if got := tt.a.Join(tt.b); got != tt.want {
			t.Errorf("%s.Join(%s) = %s, want %s", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestTypeCompatible(t *testing.T) {
	if !TypeUnknown.Compatible(TypeCharPtr) {
		t.Error("unknown should be compatible with anything")
	}
	if !TypePtr.Compatible(TypeFuncPtr) {
		t.Error("generic pointer should match func pointer")
	}
	if TypeInt.Compatible(TypeCharPtr) {
		t.Error("int must not match char*")
	}
}

func TestPropertyJoinCommutative(t *testing.T) {
	all := []Type{TypeUnknown, TypeInt, TypeChar, TypeIntPtr, TypeCharPtr, TypePtr, TypeFuncPtr, TypeConflict}
	for _, a := range all {
		for _, b := range all {
			if a.Join(b) != b.Join(a) {
				t.Fatalf("Join not commutative for %s, %s", a, b)
			}
			if a.Compatible(b) != b.Compatible(a) {
				t.Fatalf("Compatible not symmetric for %s, %s", a, b)
			}
		}
	}
}

package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxValue(t *testing.T) {
	taintE := Sym(TaintName("recv", 1))
	tests := []struct {
		name  string
		e     *Expr
		bound int64
		ok    bool
	}{
		{"const", Const(42), 42, true},
		{"negative const", Const(-1), 0, false},
		{"symbol", Sym("n"), 0, false},
		{"mask", Bin(OpAnd, taintE, Const(7)), 7, true},
		{"mask reversed", Bin(OpAnd, Const(0xFF), taintE), 255, true},
		{"mask of bounded", Bin(OpAnd, Const(3), Const(0xFF)), 3, true},
		{"shr", Bin(OpShr, Bin(OpAnd, taintE, Const(0xFF)), Const(4)), 15, true},
		{"shl", Bin(OpShl, Bin(OpAnd, taintE, Const(3)), Const(2)), 12, true},
		{"sum", Bin(OpAdd, Bin(OpAnd, taintE, Const(7)), Bin(OpAnd, Sym("x"), Const(8))), 15, true},
		{"sum unbounded", Bin(OpAdd, Sym("x"), Const(7)), 0, false},
		{"mul", Bin(OpMul, Bin(OpAnd, taintE, Const(3)), Const(4)), 12, true},
		{"or", Bin(OpOr, Bin(OpAnd, taintE, Const(7)), Bin(OpAnd, Sym("x"), Const(8))), 15, true},
		{"or unbounded", Bin(OpOr, taintE, Const(7)), 0, false},
		{"deref", Deref(Sym("p")), 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b, ok := MaxValue(tt.e)
			if ok != tt.ok || (ok && b != tt.bound) {
				t.Fatalf("MaxValue(%s) = %d,%v want %d,%v", tt.e, b, ok, tt.bound, tt.ok)
			}
		})
	}
}

// Property: whenever MaxValue returns a bound for a randomly built
// expression over bounded leaves, evaluating the expression with any leaf
// assignment within those bounds stays <= the bound.
func TestMaxValueSoundness(t *testing.T) {
	type leaf struct {
		sym  *Expr
		mask int64
	}
	build := func(r *rand.Rand) (*Expr, []leaf) {
		leaves := []leaf{
			{Sym("a"), int64(r.Intn(255) + 1)},
			{Sym("b"), int64(r.Intn(255) + 1)},
		}
		e1 := Bin(OpAnd, leaves[0].sym, Const(leaves[0].mask))
		e2 := Bin(OpAnd, leaves[1].sym, Const(leaves[1].mask))
		ops := []Op{OpAdd, OpMul, OpOr}
		return Bin(ops[r.Intn(len(ops))], e1, e2), leaves
	}
	eval := func(e *Expr, env map[string]int64) int64 {
		var ev func(x *Expr) int64
		ev = func(x *Expr) int64 {
			if v, ok := x.ConstVal(); ok {
				return v
			}
			if n, ok := x.SymName(); ok {
				return env[n]
			}
			op, l, rr, _ := x.BinOperands()
			a, b := ev(l), ev(rr)
			switch op {
			case OpAdd:
				return a + b
			case OpMul:
				return a * b
			case OpAnd:
				return a & b
			case OpOr:
				return a | b
			}
			return 0
		}
		return ev(e)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e, leaves := build(r)
		bound, ok := MaxValue(e)
		if !ok {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			env := map[string]int64{}
			for _, l := range leaves {
				name, _ := l.sym.SymName()
				env[name] = r.Int63n(1 << 20)
			}
			if eval(e, env) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package expr

// MaxValue computes a structural upper bound for a non-negative
// expression, when one exists: constants bound themselves, AND with a
// constant mask bounds by the mask (firmware length fields are routinely
// masked, e.g. Figure 3's `AND R10, R3, #7`), right shifts divide the
// bound, and sums/products of bounded terms combine. Symbolic values are
// unbounded. ok is false when no bound can be derived.
//
// The bound is used by the vulnerability detector: a copy length that is
// structurally bounded below the destination buffer's capacity cannot
// overflow it.
func MaxValue(e *Expr) (int64, bool) {
	return maxValue(e, 0)
}

const maxValueDepth = 16

func maxValue(e *Expr, depth int) (int64, bool) {
	if e == nil || depth > maxValueDepth {
		return 0, false
	}
	switch e.kind {
	case KindConst:
		if e.val < 0 {
			return 0, false
		}
		return e.val, true
	case KindBinOp:
		switch e.op {
		case OpAnd:
			// x & mask <= mask (for non-negative mask); either side may be
			// the mask.
			if v, ok := e.y.ConstVal(); ok && v >= 0 {
				if b, okX := maxValue(e.x, depth+1); okX && b < v {
					return b, true
				}
				return v, true
			}
			if v, ok := e.x.ConstVal(); ok && v >= 0 {
				return v, true
			}
			return 0, false
		case OpShr:
			if sh, ok := e.y.ConstVal(); ok && sh >= 0 && sh < 63 {
				if b, okX := maxValue(e.x, depth+1); okX {
					return b >> uint(sh), true
				}
			}
			return 0, false
		case OpShl:
			if sh, ok := e.y.ConstVal(); ok && sh >= 0 && sh < 32 {
				if b, okX := maxValue(e.x, depth+1); okX && b < (1<<31) {
					return b << uint(sh), true
				}
			}
			return 0, false
		case OpAdd:
			bx, okX := maxValue(e.x, depth+1)
			by, okY := maxValue(e.y, depth+1)
			if okX && okY {
				return bx + by, true
			}
			return 0, false
		case OpMul:
			bx, okX := maxValue(e.x, depth+1)
			by, okY := maxValue(e.y, depth+1)
			if okX && okY && bx < (1<<31) && by < (1<<31) {
				return bx * by, true
			}
			return 0, false
		case OpOr:
			// x | y < 2*max(bound(x), bound(y)) rounded to the next power
			// of two minus one; we use the simpler sum bound.
			bx, okX := maxValue(e.x, depth+1)
			by, okY := maxValue(e.y, depth+1)
			if okX && okY {
				return bx + by, true
			}
			return 0, false
		}
	}
	return 0, false
}

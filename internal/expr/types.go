package expr

// Type is the primitive-type lattice used by DTaint's data-type inference
// (Section III-B). The paper uses int, char, int* and char*; we add an
// explicit function-pointer type, which the data-structure similarity
// component needs to recognize indirect-call fields, plus Top/Bottom for
// the join.
type Type int

// Primitive types. TypeUnknown is the lattice bottom.
const (
	TypeUnknown Type = iota
	TypeInt
	TypeChar
	TypeIntPtr
	TypeCharPtr
	TypePtr     // pointer of unknown pointee
	TypeFuncPtr // pointer to code
	TypeConflict
)

var typeNames = map[Type]string{
	TypeUnknown:  "unknown",
	TypeInt:      "int",
	TypeChar:     "char",
	TypeIntPtr:   "int*",
	TypeCharPtr:  "char*",
	TypePtr:      "void*",
	TypeFuncPtr:  "func*",
	TypeConflict: "conflict",
}

// String implements fmt.Stringer.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return "type?"
}

// IsPointer reports whether t is any pointer type.
func (t Type) IsPointer() bool {
	switch t {
	case TypeIntPtr, TypeCharPtr, TypePtr, TypeFuncPtr:
		return true
	}
	return false
}

// Join merges two type observations. Observations refine TypeUnknown;
// a generic pointer is refined by a specific pointer; contradictory
// observations yield TypeConflict.
func (t Type) Join(o Type) Type {
	switch {
	case t == o:
		return t
	case t == TypeUnknown:
		return o
	case o == TypeUnknown:
		return t
	case t == TypePtr && o.IsPointer():
		return o
	case o == TypePtr && t.IsPointer():
		return t
	}
	return TypeConflict
}

// Compatible reports whether two field-type observations may describe the
// same structure field. Rule 2 of the similarity metric (Section III-D)
// requires fields with the same offset at the same base to have the same
// type; unknown matches anything, and the generic pointer matches any
// pointer.
func (t Type) Compatible(o Type) bool {
	if t == o || t == TypeUnknown || o == TypeUnknown {
		return true
	}
	if t == TypePtr && o.IsPointer() {
		return true
	}
	if o == TypePtr && t.IsPointer() {
		return true
	}
	return false
}

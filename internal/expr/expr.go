// Package expr implements the symbolic expression language DTaint uses to
// describe variables at the binary level.
//
// Following Section III-B of the paper, a variable is described by the
// address expression of the memory that holds it: absolute addresses are
// constants, indirect accesses are "base + offset" forms, and deref marks a
// memory access. For example the instruction `LDR R1, [R5, 0x4C]` is
// described as `R1 = deref(R5 + 0x4C)`.
//
// Expressions are immutable; all constructors normalize their result
// (constant folding, canonical base+offset ordering) so that structurally
// equal program values compare equal by Key().
package expr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the expression variants.
type Kind int

// Expression kinds.
const (
	KindConst Kind = iota + 1
	KindSym
	KindDeref
	KindBinOp
)

// Op is a binary operator.
type Op int

// Binary operators. Add and Mul are canonicalized (commutative).
const (
	OpAdd Op = iota + 1
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
)

var opNames = map[Op]string{
	OpAdd: "+",
	OpSub: "-",
	OpMul: "*",
	OpAnd: "&",
	OpOr:  "|",
	OpXor: "^",
	OpShl: "<<",
	OpShr: ">>",
}

// String returns the operator's symbol.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return "op?"
}

// MaxDepth bounds expression nesting. Deeper expressions are truncated to an
// opaque symbol; this keeps pathological programs (deep pointer chases,
// unbounded loops folded once) from exploding the analysis.
const MaxDepth = 12

// Expr is an immutable symbolic expression.
type Expr struct {
	kind Kind
	val  int64  // KindConst
	name string // KindSym
	op   Op     // KindBinOp
	x, y *Expr  // operands: x for Deref; x,y for BinOp

	depth int
	key   string // canonical form, computed at construction
}

// Well-known symbol names used across the analysis.
const (
	// TaintSym marks attacker-controlled data written by an input source.
	// Site-specific taint symbols share the same prefix (see TaintName).
	TaintSym = "taint"
	// StackSym is the symbolic initial stack pointer of a function.
	StackSym = "sp"
	// HeapPrefix begins the name of heap-object identity symbols
	// (Section III-E: heap pointers are identified by hashing the callsite
	// chain from the use of the pointer to the allocation).
	HeapPrefix = "heap_"
)

// TaintName returns the site-specific taint symbol for data introduced by
// an input source (e.g. "taint_recv_67240"). Site-specific names let the
// detector attribute a vulnerability to its exact source callsite.
func TaintName(source string, site uint64) string {
	return TaintSym + "_" + source + "_" + strconv.FormatUint(site, 16)
}

// IsTaintName reports whether name denotes attacker-controlled data.
func IsTaintName(name string) bool { return strings.HasPrefix(name, TaintSym) }

// TaintSource extracts the source function name from a taint symbol
// produced by TaintName; ok is false for the generic TaintSym.
func TaintSource(name string) (source string, site uint64, ok bool) {
	if !strings.HasPrefix(name, TaintSym+"_") {
		return "", 0, false
	}
	rest := name[len(TaintSym)+1:]
	i := strings.LastIndexByte(rest, '_')
	if i <= 0 {
		return "", 0, false
	}
	site, err := strconv.ParseUint(rest[i+1:], 16, 64)
	if err != nil {
		return "", 0, false
	}
	return rest[:i], site, true
}

// HeapName returns the heap-identity symbol for an allocation reached
// through the given callsite chain.
func HeapName(chain string) string { return HeapPrefix + shortHash(chain) }

// IsHeapName reports whether name is a heap-identity symbol.
func IsHeapName(name string) bool { return strings.HasPrefix(name, HeapPrefix) }

// RehashHeap derives a new heap identity by extending the callsite chain,
// keeping two allocations from distinct callsite chains distinct
// (Listing 1 of the paper: x = B(); y = B() must not alias).
func RehashHeap(name string, callsite uint64) string {
	return HeapName(name + "@" + strconv.FormatUint(callsite, 16))
}

// Const returns a constant expression.
func Const(v int64) *Expr {
	e := &Expr{kind: KindConst, val: v, depth: 1}
	e.key = strconv.FormatInt(v, 10)
	return e
}

// Sym returns a named symbolic value (e.g. "arg0", "ret_foo_1c", "taint").
func Sym(name string) *Expr {
	e := &Expr{kind: KindSym, name: name, depth: 1}
	e.key = name
	return e
}

// Arg returns the canonical symbol for the i-th formal argument.
func Arg(i int) *Expr { return Sym(ArgName(i)) }

// ArgName returns the canonical name of the i-th formal argument symbol.
func ArgName(i int) string { return "arg" + strconv.Itoa(i) }

// ArgIndex reports whether name is a formal-argument symbol and its index.
func ArgIndex(name string) (int, bool) {
	if !strings.HasPrefix(name, "arg") {
		return 0, false
	}
	n, err := strconv.Atoi(name[3:])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// RetName returns the canonical name for the return symbol of a callsite.
// The callsite is identified by the callee name and the call address, which
// makes the symbol unique per call site as required by Section III-B.
func RetName(callee string, site uint64) string {
	return "ret_" + callee + "_" + strconv.FormatUint(site, 16)
}

// IsRetSym reports whether name is a callsite-return symbol.
func IsRetSym(name string) bool { return strings.HasPrefix(name, "ret_") }

// Taint returns the canonical taint symbol.
func Taint() *Expr { return Sym(TaintSym) }

// Deref returns a memory access of addr.
func Deref(addr *Expr) *Expr {
	if addr == nil {
		return nil
	}
	if addr.depth >= MaxDepth {
		addr = truncated(addr)
	}
	e := &Expr{kind: KindDeref, x: addr, depth: addr.depth + 1}
	e.key = "deref(" + addr.key + ")"
	return e
}

// truncated replaces an over-deep expression with an opaque symbol whose
// name is derived from the original key, so equal expressions still collapse
// to equal symbols.
func truncated(e *Expr) *Expr {
	return Sym("opaque_" + shortHash(e.key))
}

// Hash returns a short stable hash of s, used to derive deterministic
// symbol names (heap identities, string-length symbols) from expression
// keys.
func Hash(s string) string { return shortHash(s) }

func shortHash(s string) string {
	// FNV-1a, 64-bit.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return strconv.FormatUint(h, 16)
}

// Bin returns the normalized binary operation a op b.
func Bin(op Op, a, b *Expr) *Expr {
	if a == nil || b == nil {
		return nil
	}
	// Constant folding.
	if a.kind == KindConst && b.kind == KindConst {
		if v, ok := foldConst(op, a.val, b.val); ok {
			return Const(v)
		}
	}
	switch op {
	case OpAdd:
		return normalizeAdd(a, b)
	case OpSub:
		// a - c  ==  a + (-c): keeps all base+offset forms additive.
		if b.kind == KindConst {
			return normalizeAdd(a, Const(-b.val))
		}
		if a.Equal(b) {
			return Const(0)
		}
	case OpMul:
		if a.kind == KindConst {
			a, b = b, a // canonical: constant on the right
		}
		if b.kind == KindConst {
			switch b.val {
			case 0:
				return Const(0)
			case 1:
				return a
			}
		}
	case OpAnd:
		if b.kind == KindConst && b.val == 0 {
			return Const(0)
		}
	case OpOr, OpXor:
		if b.kind == KindConst && b.val == 0 {
			return a
		}
	case OpShl, OpShr:
		if b.kind == KindConst && b.val == 0 {
			return a
		}
	}
	return rawBin(op, a, b)
}

func foldConst(op Op, a, b int64) (int64, bool) {
	switch op {
	case OpAdd:
		return a + b, true
	case OpSub:
		return a - b, true
	case OpMul:
		return a * b, true
	case OpAnd:
		return a & b, true
	case OpOr:
		return a | b, true
	case OpXor:
		return a ^ b, true
	case OpShl:
		if b >= 0 && b < 64 {
			return a << uint(b), true
		}
	case OpShr:
		if b >= 0 && b < 64 {
			return int64(uint64(a) >> uint(b)), true
		}
	}
	return 0, false
}

// normalizeAdd flattens nested additions and produces the canonical
// "base + constant" form with the constant folded and placed last.
func normalizeAdd(a, b *Expr) *Expr {
	var terms []*Expr
	var c int64
	var collect func(e *Expr)
	collect = func(e *Expr) {
		switch {
		case e.kind == KindConst:
			c += e.val
		case e.kind == KindBinOp && e.op == OpAdd:
			collect(e.x)
			collect(e.y)
		default:
			terms = append(terms, e)
		}
	}
	collect(a)
	collect(b)
	if len(terms) == 0 {
		return Const(c)
	}
	// Canonical order for symbolic terms: sort by key so x+y == y+x.
	sort.Slice(terms, func(i, j int) bool { return terms[i].key < terms[j].key })
	out := terms[0]
	for _, t := range terms[1:] {
		out = rawBin(OpAdd, out, t)
	}
	if c != 0 {
		out = rawBin(OpAdd, out, Const(c))
	}
	return out
}

func rawBin(op Op, a, b *Expr) *Expr {
	d := a.depth
	if b.depth > d {
		d = b.depth
	}
	if d >= MaxDepth {
		return truncated(rawBinNoLimit(op, a, b))
	}
	return rawBinNoLimit(op, a, b)
}

func rawBinNoLimit(op Op, a, b *Expr) *Expr {
	d := a.depth
	if b.depth > d {
		d = b.depth
	}
	e := &Expr{kind: KindBinOp, op: op, x: a, y: b, depth: d + 1}
	e.key = "(" + a.key + op.String() + b.key + ")"
	return e
}

// Add is shorthand for Bin(OpAdd, a, Const(off)).
func Add(a *Expr, off int64) *Expr { return Bin(OpAdd, a, Const(off)) }

// Kind returns the expression kind.
func (e *Expr) Kind() Kind { return e.kind }

// ConstVal returns the constant value; ok is false for non-constants.
func (e *Expr) ConstVal() (int64, bool) {
	if e.kind == KindConst {
		return e.val, true
	}
	return 0, false
}

// SymName returns the symbol name; ok is false for non-symbols.
func (e *Expr) SymName() (string, bool) {
	if e.kind == KindSym {
		return e.name, true
	}
	return "", false
}

// DerefAddr returns the address operand of a deref; ok is false otherwise.
func (e *Expr) DerefAddr() (*Expr, bool) {
	if e.kind == KindDeref {
		return e.x, true
	}
	return nil, false
}

// BinOperands returns the operator and operands of a binary op.
func (e *Expr) BinOperands() (Op, *Expr, *Expr, bool) {
	if e.kind == KindBinOp {
		return e.op, e.x, e.y, true
	}
	return 0, nil, nil, false
}

// Key returns the canonical string form; expressions are equal iff their
// keys are equal.
func (e *Expr) Key() string { return e.key }

// String implements fmt.Stringer.
func (e *Expr) String() string {
	if e == nil {
		return "<nil>"
	}
	return e.key
}

// Depth returns the nesting depth of the expression tree.
func (e *Expr) Depth() int { return e.depth }

// Equal reports structural equality.
func (e *Expr) Equal(o *Expr) bool {
	if e == nil || o == nil {
		return e == o
	}
	return e.key == o.key
}

// IsDeref reports whether the expression is a memory access.
func (e *Expr) IsDeref() bool { return e.kind == KindDeref }

// ContainsSym reports whether the symbol name occurs anywhere in e.
func (e *Expr) ContainsSym(name string) bool {
	switch e.kind {
	case KindSym:
		return e.name == name
	case KindDeref:
		return e.x.ContainsSym(name)
	case KindBinOp:
		return e.x.ContainsSym(name) || e.y.ContainsSym(name)
	}
	return false
}

// ContainsTaint reports whether any taint symbol occurs anywhere in e.
func (e *Expr) ContainsTaint() bool {
	switch e.kind {
	case KindSym:
		return IsTaintName(e.name)
	case KindDeref:
		return e.x.ContainsTaint()
	case KindBinOp:
		return e.x.ContainsTaint() || e.y.ContainsTaint()
	}
	return false
}

// TaintSyms returns the names of all taint symbols occurring in e.
func (e *Expr) TaintSyms() []string {
	var out []string
	for _, s := range e.Syms() {
		if IsTaintName(s) {
			out = append(out, s)
		}
	}
	return out
}

// Syms appends the names of all symbols in e to dst, in first-occurrence
// order, without duplicates.
func (e *Expr) Syms() []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(x *Expr)
	walk = func(x *Expr) {
		switch x.kind {
		case KindSym:
			if !seen[x.name] {
				seen[x.name] = true
				out = append(out, x.name)
			}
		case KindDeref:
			walk(x.x)
		case KindBinOp:
			walk(x.x)
			walk(x.y)
		}
	}
	walk(e)
	return out
}

// DerefKeys returns the canonical keys of every deref subexpression of e
// (including e itself), without duplicates. The def-use graph uses these
// to connect a value expression to the definitions it reads.
func (e *Expr) DerefKeys() []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(x *Expr)
	walk = func(x *Expr) {
		switch x.kind {
		case KindDeref:
			if !seen[x.key] {
				seen[x.key] = true
				out = append(out, x.key)
			}
			walk(x.x)
		case KindBinOp:
			walk(x.x)
			walk(x.y)
		}
	}
	walk(e)
	return out
}

// Subst returns e with every occurrence of old replaced by new. The result
// is re-normalized.
func (e *Expr) Subst(old, new *Expr) *Expr {
	if e == nil || old == nil || new == nil {
		return e
	}
	if e.key == old.key {
		return new
	}
	switch e.kind {
	case KindConst, KindSym:
		return e
	case KindDeref:
		nx := e.x.Subst(old, new)
		if nx == e.x {
			return e
		}
		return Deref(nx)
	case KindBinOp:
		nx := e.x.Subst(old, new)
		ny := e.y.Subst(old, new)
		if nx == e.x && ny == e.y {
			return e
		}
		return Bin(e.op, nx, ny)
	}
	return e
}

// SubstMap applies all substitutions in one pass (keys are Expr keys of the
// patterns to replace). A single pass avoids re-substituting into
// replacement values.
func (e *Expr) SubstMap(m map[string]*Expr) *Expr {
	if e == nil || len(m) == 0 {
		return e
	}
	if r, ok := m[e.key]; ok {
		return r
	}
	switch e.kind {
	case KindConst, KindSym:
		return e
	case KindDeref:
		nx := e.x.SubstMap(m)
		if nx == e.x {
			return e
		}
		return Deref(nx)
	case KindBinOp:
		nx := e.x.SubstMap(m)
		ny := e.y.SubstMap(m)
		if nx == e.x && ny == e.y {
			return e
		}
		return Bin(e.op, nx, ny)
	}
	return e
}

// MapSyms rewrites every symbol in e through f; f returns nil to keep a
// symbol unchanged. Used for heap-identity rehashing at callsites.
func (e *Expr) MapSyms(f func(name string) *Expr) *Expr {
	switch e.kind {
	case KindConst:
		return e
	case KindSym:
		if r := f(e.name); r != nil {
			return r
		}
		return e
	case KindDeref:
		nx := e.x.MapSyms(f)
		if nx == e.x {
			return e
		}
		return Deref(nx)
	case KindBinOp:
		nx := e.x.MapSyms(f)
		ny := e.y.MapSyms(f)
		if nx == e.x && ny == e.y {
			return e
		}
		return Bin(e.op, nx, ny)
	}
	return e
}

// BasePlusOffset decomposes e into a symbolic base and a constant offset
// (the GetBasePtr operation of Algorithm 1). For plain symbols or derefs the
// offset is zero. It fails for pure constants and non-additive forms.
func (e *Expr) BasePlusOffset() (base *Expr, off int64, ok bool) {
	switch e.kind {
	case KindSym, KindDeref:
		return e, 0, true
	case KindBinOp:
		if e.op != OpAdd {
			return nil, 0, false
		}
		// Normalized adds keep the constant on the right.
		if c, isC := e.y.ConstVal(); isC {
			if b, o, ok2 := e.x.BasePlusOffset(); ok2 {
				return b, o + c, true
			}
			return e.x, c, true
		}
		return e, 0, true
	}
	return nil, 0, false
}

// BasePointers returns every pointer-like subexpression that acts as a base
// of a memory access inside e (the GetPtrInVar operation of Algorithm 1).
// For deref(deref(arg0+0x58)+0xEC) it returns [arg0, deref(arg0+0x58)].
func (e *Expr) BasePointers() []*Expr {
	seen := make(map[string]bool)
	var out []*Expr
	var walk func(x *Expr)
	walk = func(x *Expr) {
		switch x.kind {
		case KindDeref:
			if b, _, ok := x.x.BasePlusOffset(); ok && b.kind != KindConst {
				if !seen[b.key] {
					seen[b.key] = true
					out = append(out, b)
				}
			}
			walk(x.x)
		case KindBinOp:
			walk(x.x)
			walk(x.y)
		}
	}
	walk(e)
	return out
}

// RootPointer returns the innermost symbolic base of a (possibly nested)
// memory expression, e.g. arg0 for deref(deref(arg0+0x58)+0xEC). Returns
// nil when there is no symbolic root.
func (e *Expr) RootPointer() *Expr {
	switch e.kind {
	case KindSym:
		return e
	case KindDeref:
		if b, _, ok := e.x.BasePlusOffset(); ok {
			return b.RootPointer()
		}
		return nil
	case KindBinOp:
		if b, _, ok := e.BasePlusOffset(); ok && !b.Equal(e) {
			return b.RootPointer()
		}
		// Fall back to the left operand's root.
		return e.x.RootPointer()
	}
	return nil
}

// Format helpers ------------------------------------------------------------

// Fmt formats an expression for diagnostics, e.g. in vulnerability reports.
func Fmt(e *Expr) string {
	if e == nil {
		return "<nil>"
	}
	return e.String()
}

var _ fmt.Stringer = (*Expr)(nil)

// Package structsim implements the data-structure layout similarity of
// Section III-D, which DTaint uses to connect the data flow across
// indirect calls.
//
// A structure is represented as a multi-layer collection of fields
// S = (S1, ..., Sn), each Si holding the (offset, type) fields observed
// under one base address, all sharing a root pointer. Two structures A
// and B are comparable when base(A) ⊆ base(B) or base(B) ⊆ base(A) and
// fields at the same offset under the same base have compatible types;
// their similarity is
//
//	σ(A,B) = Σ |Ai ∩ Bj| / |Ai ∪ Bj|   over aligned base pairs (i,j).
//
// For every indirect callsite (the call target loaded from a structure
// field), the resolver picks the structure with the highest σ among those
// that register a function pointer at the corresponding field, and binds
// the callsite to that function.
package structsim

import (
	"sort"

	"dtaint/internal/expr"
	"dtaint/internal/symexec"
)

// Layout is one structure: fields grouped by canonical base address,
// sharing one root pointer. Base keys are canonicalized by rewriting the
// root symbol to "ROOT", so layouts from different functions align.
type Layout struct {
	Func string // owning function
	Root string // original root symbol name in its function
	// Fields: canonical base key -> offset -> field type.
	Fields map[string]map[int64]expr.Type
	// FnPtrs: canonical base key -> offset -> registered function name.
	FnPtrs map[string]map[int64]string
}

const rootPlaceholder = "ROOT"

// NumFields returns the total number of observed fields.
func (l *Layout) NumFields() int {
	n := 0
	for _, m := range l.Fields {
		n += len(m)
	}
	return n
}

// baseSet returns the canonical base keys.
func (l *Layout) baseSet() []string {
	out := make([]string, 0, len(l.Fields))
	for k := range l.Fields {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Canonicalize rewrites an expression's root symbol to the placeholder.
func canonicalize(e *expr.Expr, rootName string) string {
	return e.MapSyms(func(name string) *expr.Expr {
		if name == rootName {
			return expr.Sym(rootPlaceholder)
		}
		return nil
	}).Key()
}

// BuildLayouts groups a function's field observations into layouts, one
// per root pointer. Roots that are arguments, heap identities, return
// values, or the stack pointer all qualify — the paper builds stack
// layouts when a stack pointer is passed to a callee.
func BuildLayouts(sum *symexec.Summary) []*Layout {
	byRoot := make(map[string]*Layout)
	for _, fo := range sum.Fields {
		root := fo.Base.RootPointer()
		if root == nil {
			continue
		}
		rootName, ok := root.SymName()
		if !ok {
			continue
		}
		l := byRoot[rootName]
		if l == nil {
			l = &Layout{
				Func:   sum.Func,
				Root:   rootName,
				Fields: make(map[string]map[int64]expr.Type),
				FnPtrs: make(map[string]map[int64]string),
			}
			byRoot[rootName] = l
		}
		baseKey := canonicalize(fo.Base, rootName)
		fm := l.Fields[baseKey]
		if fm == nil {
			fm = make(map[int64]expr.Type)
			l.Fields[baseKey] = fm
		}
		fm[fo.Off] = fm[fo.Off].Join(fo.Ty)
		if fo.FnTarget != "" {
			pm := l.FnPtrs[baseKey]
			if pm == nil {
				pm = make(map[int64]string)
				l.FnPtrs[baseKey] = pm
			}
			pm[fo.Off] = fo.FnTarget
		}
	}
	out := make([]*Layout, 0, len(byRoot))
	roots := make([]string, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}

// Similarity computes σ(A, B). ok is false when the comparability rules
// fail: neither base set contains the other, or fields at the same
// offset under the same base have incompatible types.
func Similarity(a, b *Layout) (sigma float64, ok bool) {
	if a == nil || b == nil || len(a.Fields) == 0 || len(b.Fields) == 0 {
		return 0, false
	}
	// Rule 1: base(A) ⊆ base(B) or base(B) ⊆ base(A).
	if !subset(a.baseSet(), b.baseSet()) && !subset(b.baseSet(), a.baseSet()) {
		return 0, false
	}
	for base, fa := range a.Fields {
		fb, shared := b.Fields[base]
		if !shared {
			continue
		}
		// Rule 2: same offset at same base must have compatible types.
		inter := 0
		union := len(fa)
		for off, tb := range fb {
			ta, has := fa[off]
			if !has {
				union++
				continue
			}
			if !ta.Compatible(tb) {
				return 0, false
			}
			inter++
		}
		if union > 0 {
			sigma += float64(inter) / float64(union)
		}
	}
	return sigma, true
}

func subset(a, b []string) bool {
	set := make(map[string]bool, len(b))
	for _, k := range b {
		set[k] = true
	}
	for _, k := range a {
		if !set[k] {
			return false
		}
	}
	return true
}

// Resolution binds one indirect callsite to a resolved callee.
type Resolution struct {
	Caller string
	Site   uint32
	Callee string
	Score  float64
}

// ResolveIndirect resolves every indirect callsite across the analyzed
// functions. For a callsite whose target was loaded from deref(base+off),
// it builds the callsite's structure layout, finds the most similar
// layout that registers a function pointer at the aligned (base, off)
// field, and binds the call to that function.
func ResolveIndirect(sums map[string]*symexec.Summary) []Resolution {
	// Gather all layouts across functions.
	type owned struct {
		layout *Layout
	}
	var all []owned
	layoutsByFunc := make(map[string][]*Layout, len(sums))
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ls := BuildLayouts(sums[name])
		layoutsByFunc[name] = ls
		for _, l := range ls {
			all = append(all, owned{layout: l})
		}
	}

	var out []Resolution
	for _, name := range names {
		sum := sums[name]
		for _, call := range sum.Calls {
			if call.FnPtr == nil {
				continue
			}
			addr, ok := call.FnPtr.DerefAddr()
			if !ok {
				continue
			}
			base, off, ok := addr.BasePlusOffset()
			if !ok {
				continue
			}
			root := base.RootPointer()
			if root == nil {
				continue
			}
			rootName, ok := root.SymName()
			if !ok {
				continue
			}
			// The callsite's own structure layout.
			var siteLayout *Layout
			for _, l := range layoutsByFunc[name] {
				if l.Root == rootName {
					siteLayout = l
					break
				}
			}
			if siteLayout == nil {
				continue
			}
			baseKey := canonicalize(base, rootName)

			best := Resolution{Caller: name, Site: call.Addr, Score: -1}
			for _, o := range all {
				pm := o.layout.FnPtrs[baseKey]
				if pm == nil {
					continue
				}
				target, has := pm[off]
				if !has {
					continue
				}
				score, ok := Similarity(siteLayout, o.layout)
				if !ok {
					continue
				}
				if score > best.Score ||
					(score == best.Score && target < best.Callee) {
					best.Score = score
					best.Callee = target
				}
			}
			if best.Callee != "" {
				out = append(out, best)
			}
		}
	}
	return out
}

package structsim

import (
	"math"
	"testing"

	"dtaint/internal/asm"
	"dtaint/internal/cfg"
	"dtaint/internal/expr"
	"dtaint/internal/symexec"
)

func layoutFrom(fn string, fields []symexec.FieldObs) *Layout {
	sum := &symexec.Summary{Func: fn, Fields: fields}
	ls := BuildLayouts(sum)
	if len(ls) != 1 {
		return nil
	}
	return ls[0]
}

func obs(base *expr.Expr, off int64, ty expr.Type) symexec.FieldObs {
	return symexec.FieldObs{Base: base, Off: off, Ty: ty}
}

func TestBuildLayoutsGroupsByRoot(t *testing.T) {
	a0 := expr.Arg(0)
	a1 := expr.Arg(1)
	sum := &symexec.Summary{Func: "f", Fields: []symexec.FieldObs{
		obs(a0, 0, expr.TypePtr),
		obs(a0, 4, expr.TypeInt),
		obs(expr.Deref(expr.Add(a0, 0)), 8, expr.TypeChar), // nested base, same root
		obs(a1, 0, expr.TypeInt),
	}}
	ls := BuildLayouts(sum)
	if len(ls) != 2 {
		t.Fatalf("layouts = %d, want 2", len(ls))
	}
	// Sorted by root: arg0 first.
	if ls[0].Root != "arg0" || ls[1].Root != "arg1" {
		t.Fatalf("roots = %s, %s", ls[0].Root, ls[1].Root)
	}
	if len(ls[0].Fields) != 2 { // ROOT and deref(ROOT+0)
		t.Fatalf("arg0 layout bases = %d", len(ls[0].Fields))
	}
	if ls[0].NumFields() != 3 {
		t.Fatalf("arg0 fields = %d", ls[0].NumFields())
	}
}

func TestCanonicalAlignmentAcrossFunctions(t *testing.T) {
	// The same structure accessed through arg0 in f and arg2 in g must
	// produce identical similarity as if roots matched.
	mk := func(root *expr.Expr, fn string) *Layout {
		return layoutFrom(fn, []symexec.FieldObs{
			obs(root, 0, expr.TypePtr),
			obs(root, 4, expr.TypeInt),
			obs(root, 8, expr.TypeCharPtr),
		})
	}
	a := mk(expr.Arg(0), "f")
	b := mk(expr.Arg(2), "g")
	sigma, ok := Similarity(a, b)
	if !ok || math.Abs(sigma-1.0) > 1e-9 {
		t.Fatalf("σ = %v, ok=%v; want 1.0", sigma, ok)
	}
}

func TestSimilarityPartialOverlap(t *testing.T) {
	a := layoutFrom("f", []symexec.FieldObs{
		obs(expr.Arg(0), 0, expr.TypeInt),
		obs(expr.Arg(0), 4, expr.TypeInt),
	})
	b := layoutFrom("g", []symexec.FieldObs{
		obs(expr.Arg(0), 0, expr.TypeInt),
		obs(expr.Arg(0), 4, expr.TypeInt),
		obs(expr.Arg(0), 8, expr.TypeInt),
		obs(expr.Arg(0), 12, expr.TypeInt),
	})
	sigma, ok := Similarity(a, b)
	if !ok {
		t.Fatal("comparable layouts rejected")
	}
	if math.Abs(sigma-0.5) > 1e-9 { // |∩|=2, |∪|=4
		t.Fatalf("σ = %v, want 0.5", sigma)
	}
	// σ is symmetric.
	s2, ok2 := Similarity(b, a)
	if !ok2 || math.Abs(sigma-s2) > 1e-9 {
		t.Fatalf("σ not symmetric: %v vs %v", sigma, s2)
	}
}

func TestTypeConflictRejects(t *testing.T) {
	a := layoutFrom("f", []symexec.FieldObs{obs(expr.Arg(0), 4, expr.TypeInt)})
	b := layoutFrom("g", []symexec.FieldObs{obs(expr.Arg(0), 4, expr.TypeCharPtr)})
	if _, ok := Similarity(a, b); ok {
		t.Fatal("conflicting field types must make layouts incomparable")
	}
}

func TestBaseSubsetRule(t *testing.T) {
	// Layout a has bases {ROOT}, b has {ROOT, deref(ROOT+0)} -> a ⊆ b: ok.
	a := layoutFrom("f", []symexec.FieldObs{obs(expr.Arg(0), 0, expr.TypePtr)})
	b := layoutFrom("g", []symexec.FieldObs{
		obs(expr.Arg(0), 0, expr.TypePtr),
		obs(expr.Deref(expr.Add(expr.Arg(0), 0)), 4, expr.TypeInt),
	})
	if _, ok := Similarity(a, b); !ok {
		t.Fatal("subset base sets must be comparable")
	}
	// Disjoint-ish base sets: {ROOT, deref(ROOT+0)} vs {ROOT, deref(ROOT+8)}.
	c := layoutFrom("h", []symexec.FieldObs{
		obs(expr.Arg(0), 8, expr.TypePtr),
		obs(expr.Deref(expr.Add(expr.Arg(0), 8)), 4, expr.TypeInt),
	})
	if _, ok := Similarity(b, c); ok {
		t.Fatal("non-nested base sets must be incomparable")
	}
}

func TestSimilarityDegenerate(t *testing.T) {
	if _, ok := Similarity(nil, nil); ok {
		t.Fatal("nil layouts comparable")
	}
	empty := &Layout{Fields: map[string]map[int64]expr.Type{}}
	a := layoutFrom("f", []symexec.FieldObs{obs(expr.Arg(0), 0, expr.TypeInt)})
	if _, ok := Similarity(a, empty); ok {
		t.Fatal("empty layout comparable")
	}
}

// End-to-end: a dispatcher calls through a struct field; a registrar
// function stores handler addresses into a struct with the same layout.
func TestResolveIndirectEndToEnd(t *testing.T) {
	src := `
.arch arm
.func handler
  BX LR
.endfunc
.func register
  MOV R4, #0x10000
  STR R4, [R0, #12]
  MOV R5, #0
  STR R5, [R0, #0]
  STR R5, [R0, #4]
  BX LR
.endfunc
.func dispatch
  LDR R5, [R0, #0]
  LDR R6, [R0, #4]
  LDR R9, [R0, #12]
  BLX R9
  BX LR
.endfunc
`
	bin, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Funcs[0].Name != "handler" || bin.Funcs[0].Addr != 0x10000 {
		t.Fatalf("layout assumption broken: %+v", bin.Funcs[0])
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	sums := make(map[string]*symexec.Summary)
	for _, fn := range prog.Funcs {
		sums[fn.Name] = symexec.Analyze(fn, bin, nil, symexec.Options{})
	}
	res := ResolveIndirect(sums)
	if len(res) != 1 {
		t.Fatalf("resolutions = %+v", res)
	}
	if res[0].Caller != "dispatch" || res[0].Callee != "handler" {
		t.Fatalf("resolution = %+v", res[0])
	}
	if res[0].Score <= 0 {
		t.Fatalf("score = %v", res[0].Score)
	}
}

// When two registrars use different struct shapes, the dispatcher binds
// to the most similar one.
func TestResolvePicksHighestSimilarity(t *testing.T) {
	src := `
.arch arm
.func good_handler
  BX LR
.endfunc
.func bad_handler
  BX LR
.endfunc
.func register_good
  MOV R4, #0x10000
  STR R4, [R0, #12]
  MOV R5, #0
  STR R5, [R0, #0]
  STR R5, [R0, #4]
  STR R5, [R0, #8]
  BX LR
.endfunc
.func register_bad
  MOV R4, #0x10008
  STR R4, [R0, #12]
  MOV R5, #0
  STR R5, [R0, #32]
  STR R5, [R0, #48]
  BX LR
.endfunc
.func dispatch
  LDR R5, [R0, #0]
  LDR R6, [R0, #4]
  LDR R7, [R0, #8]
  LDR R9, [R0, #12]
  BLX R9
  BX LR
.endfunc
`
	bin, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := bin.FuncByName("good_handler"); got.Addr != 0x10000 {
		t.Fatalf("good_handler at %#x", got.Addr)
	}
	if got, _ := bin.FuncByName("bad_handler"); got.Addr != 0x10008 {
		t.Fatalf("bad_handler at %#x", got.Addr)
	}
	sums := make(map[string]*symexec.Summary)
	for _, fn := range prog.Funcs {
		sums[fn.Name] = symexec.Analyze(fn, bin, nil, symexec.Options{})
	}
	res := ResolveIndirect(sums)
	if len(res) != 1 {
		t.Fatalf("resolutions = %+v", res)
	}
	if res[0].Callee != "good_handler" {
		t.Fatalf("bound to %s, want good_handler (higher σ)", res[0].Callee)
	}
}

func TestResolveNoCandidates(t *testing.T) {
	src := `
.arch arm
.func dispatch
  LDR R9, [R0, #12]
  BLX R9
  BX LR
.endfunc
`
	bin, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	sums := map[string]*symexec.Summary{
		"dispatch": symexec.Analyze(prog.ByName["dispatch"], bin, nil, symexec.Options{}),
	}
	if res := ResolveIndirect(sums); len(res) != 0 {
		t.Fatalf("phantom resolution: %+v", res)
	}
}

// planted.go emits the vulnerability analogs of Tables IV and V. Every
// planted weakness reproduces the source→sink pair the paper reports
// (e.g. CVE-2015-2051 is getenv→system with no semicolon check) and is
// wired through helper functions so detection exercises the
// interprocedural machinery; the Hikvision zero-days additionally require
// pointer aliasing and data-structure similarity, as the paper notes.
//
// Templates are written with register placeholders so the same weakness
// compiles correctly under both calling conventions:
//
//	%a0%..%a3%  argument registers (ARM R0-R3, MIPS R4-R7)
//	%rt%        return register   (ARM R0,     MIPS R2)
//	%t0%..%t3%  scratch registers safe under either convention
package corpus

import (
	"fmt"
	"strings"

	"dtaint/internal/isa"
	"dtaint/internal/taint"
)

// Planted is the ground truth for one planted vulnerability.
type Planted struct {
	ID     string // CVE/EDB identifier or zero-day tag
	Class  taint.Class
	Source string
	Sink   string
	// SinkFunc is the function containing the sink callsite.
	SinkFunc string
	// Paths is the number of vulnerable paths expected to reach the sink.
	Paths int
	// Known marks previously-reported vulnerabilities (Table IV);
	// the rest are the zero-day analogs (Table V).
	Known bool
	// Status is Table V's bug status for zero-days.
	Status string
	// Needs lists analysis features required: "alias", "structsim".
	Needs []string
}

// regmap translates the register placeholders for an architecture flavor.
func regmap(arch isa.Arch) *strings.Replacer {
	if arch == isa.ArchMIPS {
		return strings.NewReplacer(
			"%a0%", "R4", "%a1%", "R5", "%a2%", "R6", "%a3%", "R7",
			"%rt%", "R2",
			"%t0%", "R8", "%t1%", "R9", "%t2%", "R10", "%t3%", "R11",
		)
	}
	return strings.NewReplacer(
		"%a0%", "R0", "%a1%", "R1", "%a2%", "R2", "%a3%", "R3",
		"%rt%", "R0",
		"%t0%", "R4", "%t1%", "R5", "%t2%", "R6", "%t3%", "R7",
	)
}

// emitter bundles the output builder with the convention replacer.
type emitter struct {
	b  *strings.Builder
	cv *strings.Replacer
}

func (e emitter) writef(format string, args ...any) {
	e.b.WriteString(e.cv.Replace(fmt.Sprintf(format, args...)))
}

// emitReadStrncpy plants CVE-2013-7389's first half: an HTTP POST value
// read from the network is strncpy'd into a stack buffer with
// strlen-derived (attacker-controlled) length. callers controls the
// number of vulnerable paths.
func emitReadStrncpy(e emitter, tag string, id string, callers int, known bool, status string) Planted {
	helper := tag + "_copy_field"
	e.writef(`.func %s
  SUB SP, SP, #0xA0
  MOV %%t0%%, %%a0%%
  BL strlen
  MOV %%t1%%, %%rt%%
  ADD %%a0%%, SP, #8
  MOV %%a1%%, %%t0%%
  MOV %%a2%%, %%t1%%
  BL strncpy
  BX LR
.endfunc
`, helper)
	for i := 0; i < callers; i++ {
		e.writef(`.func %s_post_%d
  SUB SP, SP, #0x440
  MOV %%a0%%, #0
  ADD %%a1%%, SP, #16
  MOV %%a2%%, #0x400
  BL read
  ADD %%a0%%, SP, #16
  BL %s
  BX LR
.endfunc
`, tag, i, helper)
	}
	return Planted{
		ID: id, Class: taint.ClassBufferOverflow, Source: "read", Sink: "strncpy",
		SinkFunc: helper, Paths: callers, Known: known, Status: status,
	}
}

// emitGetenvSprintf plants CVE-2013-7389's second half: an overly-long
// cookie value from getenv is sprintf'd into a stack buffer unchecked.
func emitGetenvSprintf(e emitter, tag string, id string, callers int, known bool, status string) Planted {
	fmtSym := tag + "_fmt"
	e.writef(".data %s \"Cookie: %%%%s\"\n", fmtSym)
	helper := tag + "_fmt_cookie"
	e.writef(`.func %s
  SUB SP, SP, #0x80
  MOV %%a2%%, %%a0%%
  MOV %%a1%%, =%s
  ADD %%a0%%, SP, #8
  BL sprintf
  BX LR
.endfunc
`, helper, fmtSym)
	env := tag + "_env"
	e.writef(".data %s \"HTTP_COOKIE\"\n", env)
	for i := 0; i < callers; i++ {
		e.writef(`.func %s_cookie_%d
  MOV %%a0%%, =%s
  BL getenv
  MOV %%a0%%, %%rt%%
  BL %s
  BX LR
.endfunc
`, tag, i, env, helper)
	}
	return Planted{
		ID: id, Class: taint.ClassBufferOverflow, Source: "getenv", Sink: "sprintf",
		SinkFunc: helper, Paths: callers, Known: known, Status: status,
	}
}

// emitGetenvStrcpy plants CVE-2016-5681: a long session cookie from
// getenv is strcpy'd into a fixed 152-byte stack buffer unchecked.
func emitGetenvStrcpy(e emitter, tag string, id string, callers int, known bool, status string) Planted {
	helper := tag + "_save_session"
	e.writef(`.func %s
  SUB SP, SP, #0x98
  MOV %%a1%%, %%a0%%
  ADD %%a0%%, SP, #0
  BL strcpy
  BX LR
.endfunc
`, helper)
	env := tag + "_skey"
	e.writef(".data %s \"uid\"\n", env)
	for i := 0; i < callers; i++ {
		e.writef(`.func %s_session_%d
  MOV %%a0%%, =%s
  BL getenv
  MOV %%a0%%, %%rt%%
  BL %s
  BX LR
.endfunc
`, tag, i, env, helper)
	}
	return Planted{
		ID: id, Class: taint.ClassBufferOverflow, Source: "getenv", Sink: "strcpy",
		SinkFunc: helper, Paths: callers, Known: known, Status: status,
	}
}

// emitCmdInjection plants a command-injection: a value from source
// (getenv/websGetVar/find_var) reaches system/popen with no semicolon
// check (CVE-2015-2051, CVE-2017-6334, CVE-2017-6077, EDB-ID:43055 and
// the zero-day injections).
func emitCmdInjection(e emitter, tag, id, source, sink string, callers int, known bool, status string) Planted {
	helper := tag + "_exec"
	e.writef(`.func %s
  BL %s
  BX LR
.endfunc
`, helper, sink)
	key := tag + "_key"
	e.writef(".data %s \"param\"\n", key)
	for i := 0; i < callers; i++ {
		e.writef(".func %s_handler_%d\n", tag, i)
		switch source {
		case "websGetVar":
			e.writef("  MOV %%a1%%, =%s\n  MOV %%a2%%, #0\n  BL websGetVar\n", key)
		default:
			e.writef("  MOV %%a0%%, =%s\n  BL %s\n", key, source)
		}
		e.writef("  MOV %%a0%%, %%rt%%\n  BL %s\n  BX LR\n.endfunc\n", helper)
	}
	return Planted{
		ID: id, Class: taint.ClassCommandInjection, Source: source, Sink: sink,
		SinkFunc: helper, Paths: callers, Known: known, Status: status,
	}
}

// emitFgetsStrcpy plants a buffer overflow from a file-style source.
func emitFgetsStrcpy(e emitter, tag, id string, callers int, known bool, status string) Planted {
	helper := tag + "_store_line"
	e.writef(`.func %s
  SUB SP, SP, #0x50
  MOV %%a1%%, %%a0%%
  ADD %%a0%%, SP, #4
  BL strcpy
  BX LR
.endfunc
`, helper)
	for i := 0; i < callers; i++ {
		e.writef(`.func %s_line_%d
  SUB SP, SP, #0x110
  ADD %%a0%%, SP, #8
  MOV %%a1%%, #0x100
  MOV %%a2%%, #3
  BL fgets
  ADD %%a0%%, SP, #8
  BL %s
  BX LR
.endfunc
`, tag, i, helper)
	}
	return Planted{
		ID: id, Class: taint.ClassBufferOverflow, Source: "fgets", Sink: "strcpy",
		SinkFunc: helper, Paths: callers, Known: known, Status: status,
	}
}

// emitReadSprintf plants a stack overflow where network data is formatted
// into a small stack buffer.
func emitReadSprintf(e emitter, tag, id string, callers int, known bool, status string) Planted {
	fmtSym := tag + "_rfmt"
	e.writef(".data %s \"host=%%%%s\"\n", fmtSym)
	helper := tag + "_format_host"
	e.writef(`.func %s
  SUB SP, SP, #0x60
  MOV %%a2%%, %%a0%%
  MOV %%a1%%, =%s
  ADD %%a0%%, SP, #8
  BL sprintf
  BX LR
.endfunc
`, helper, fmtSym)
	for i := 0; i < callers; i++ {
		e.writef(`.func %s_req_%d
  SUB SP, SP, #0x210
  MOV %%a0%%, #0
  ADD %%a1%%, SP, #8
  MOV %%a2%%, #0x200
  BL read
  ADD %%a0%%, SP, #8
  BL %s
  BX LR
.endfunc
`, tag, i, helper)
	}
	return Planted{
		ID: id, Class: taint.ClassBufferOverflow, Source: "read", Sink: "sprintf",
		SinkFunc: helper, Paths: callers, Known: known, Status: status,
	}
}

// emitReadMemcpy plants the Hikvision-style overflow: network data is
// memcpy'd into a 48-byte stack buffer without a length check.
func emitReadMemcpy(e emitter, tag, id string, callers int, known bool, status string) Planted {
	helper := tag + "_fill_hdr"
	e.writef(`.func %s
  SUB SP, SP, #0x30
  MOV %%t0%%, %%a0%%
  BL strlen
  MOV %%a2%%, %%rt%%
  MOV %%a1%%, %%t0%%
  ADD %%a0%%, SP, #0
  BL memcpy
  BX LR
.endfunc
`, helper)
	for i := 0; i < callers; i++ {
		e.writef(`.func %s_hdr_%d
  SUB SP, SP, #0x210
  MOV %%a0%%, #0
  ADD %%a1%%, SP, #8
  MOV %%a2%%, #0x200
  BL read
  ADD %%a0%%, SP, #8
  BL %s
  BX LR
.endfunc
`, tag, i, helper)
	}
	return Planted{
		ID: id, Class: taint.ClassBufferOverflow, Source: "read", Sink: "memcpy",
		SinkFunc: helper, Paths: callers, Known: known, Status: status,
	}
}

// emitLoopCopy plants the Hikvision loop-copy overflow: up to 2048 bytes
// of network data are copied byte-by-byte into a small stack buffer (the
// structural "loop" sink of Table I).
func emitLoopCopy(e emitter, tag, id string, callers int, known bool, status string) Planted {
	helper := tag + "_copy_loop"
	e.writef(`.func %s
  SUB SP, SP, #0x30
  MOV %%t0%%, %%a0%%
  ADD %%t1%%, SP, #4
  MOV %%t2%%, #0
%s_lp:
  LDRB %%t3%%, [%%t0%%, #0]
  STRB %%t3%%, [%%t1%%, #0]
  ADD %%t0%%, %%t0%%, #1
  ADD %%t1%%, %%t1%%, #1
  ADD %%t2%%, %%t2%%, #1
  CMP %%t2%%, #0x800
  BLT %s_lp
  BX LR
.endfunc
`, helper, helper, helper)
	for i := 0; i < callers; i++ {
		e.writef(`.func %s_body_%d
  SUB SP, SP, #0x810
  MOV %%a0%%, #0
  ADD %%a1%%, SP, #8
  MOV %%a2%%, #0x800
  BL read
  ADD %%a0%%, SP, #8
  BL %s
  BX LR
.endfunc
`, tag, i, helper)
	}
	return Planted{
		ID: id, Class: taint.ClassBufferOverflow, Source: "read", Sink: "loop",
		SinkFunc: helper, Paths: callers, Known: known, Status: status,
	}
}

// emitAliasOverflow plants the alias-dependent Hikvision overflow: a
// parser stores the address of its receive buffer into a request
// structure; a later stage loads the pointer back from the structure and
// strcpy's the (tainted) URL parameter. Only Algorithm 1 exposes the flow.
func emitAliasOverflow(e emitter, tag, id string, callers int, known bool, status string) Planted {
	fill := tag + "_parse_url"
	use := tag + "_copy_param"
	e.writef(`.func %s
  SUB SP, SP, #0x100
  ADD %%t0%%, SP, #0
  STR %%t0%%, [%%a0%%, #4]
  MOV %%a1%%, %%t0%%
  MOV %%a0%%, #0
  MOV %%a2%%, #0x100
  BL recv
  BX LR
.endfunc
`, fill)
	e.writef(`.func %s
  SUB SP, SP, #0x40
  LDR %%a1%%, [%%a0%%, #4]
  ADD %%a0%%, SP, #4
  BL strcpy
  BX LR
.endfunc
`, use)
	for i := 0; i < callers; i++ {
		e.writef(`.func %s_stage_%d
  SUB SP, SP, #0x20
  ADD %%t2%%, SP, #0
  MOV %%a0%%, %%t2%%
  BL %s
  MOV %%a0%%, %%t2%%
  BL %s
  BX LR
.endfunc
`, tag, i, fill, use)
	}
	return Planted{
		ID: id, Class: taint.ClassBufferOverflow, Source: "recv", Sink: "strcpy",
		SinkFunc: use, Paths: callers, Known: known, Status: status,
		Needs: []string{"alias"},
	}
}

// emitStructSimOverflow plants the similarity-dependent Hikvision
// overflow: the URL handler is invoked through a function pointer stored
// in a method table; the binding is only recoverable through
// data-structure layout similarity.
func emitStructSimOverflow(e emitter, tag, id string, callers int, known bool, status string) Planted {
	handler := tag + "_on_request"
	register := tag + "_register"
	dispatch := tag + "_dispatch"
	e.writef(`.func %s
  SUB SP, SP, #0x40
  LDR %%a1%%, [%%a0%%, #0]
  ADD %%a0%%, SP, #4
  BL strcpy
  BX LR
.endfunc
`, handler)
	e.writef(`.func %s
  MOV %%t0%%, &%s
  STR %%t0%%, [%%a0%%, #12]
  MOV %%t1%%, #0
  STR %%t1%%, [%%a0%%, #0]
  STR %%t1%%, [%%a0%%, #4]
  BX LR
.endfunc
`, register, handler)
	e.writef(`.func %s
  MOV %%t2%%, %%a0%%
  STR %%a1%%, [%%t2%%, #0]
  LDR %%t3%%, [%%t2%%, #4]
  MOV %%a0%%, %%t2%%
  LDR R12, [%%t2%%, #12]
  BLX R12
  BX LR
.endfunc
`, dispatch)
	for i := 0; i < callers; i++ {
		e.writef(`.func %s_serve_%d
  SUB SP, SP, #0x220
  ADD %%t2%%, SP, #0
  MOV %%a0%%, %%t2%%
  BL %s
  ADD %%t1%%, SP, #0x20
  MOV %%a1%%, %%t1%%
  MOV %%a0%%, #0
  MOV %%a2%%, #0x200
  BL recv
  MOV %%a0%%, %%t2%%
  MOV %%a1%%, %%t1%%
  BL %s
  BX LR
.endfunc
`, tag, i, register, dispatch)
	}
	return Planted{
		ID: id, Class: taint.ClassBufferOverflow, Source: "recv", Sink: "strcpy",
		SinkFunc: handler, Paths: callers, Known: known, Status: status,
		Needs: []string{"structsim"},
	}
}

// emitStructFieldSprintf plants the remaining Hikvision URL-parameter
// overflow: the parameter pointer travels through a request structure
// field into sprintf.
func emitStructFieldSprintf(e emitter, tag, id string, callers int, known bool, status string) Planted {
	fmtSym := tag + "_pfmt"
	e.writef(".data %s \"param=%%%%s\"\n", fmtSym)
	helper := tag + "_log_param"
	e.writef(`.func %s
  SUB SP, SP, #0x50
  LDR %%a2%%, [%%a0%%, #8]
  MOV %%a1%%, =%s
  ADD %%a0%%, SP, #4
  BL sprintf
  BX LR
.endfunc
`, helper, fmtSym)
	for i := 0; i < callers; i++ {
		e.writef(`.func %s_param_%d
  SUB SP, SP, #0x230
  ADD %%t1%%, SP, #0x20
  MOV %%a1%%, %%t1%%
  MOV %%a0%%, #0
  MOV %%a2%%, #0x200
  BL recv
  ADD %%t2%%, SP, #0
  STR %%t1%%, [%%t2%%, #8]
  MOV %%a0%%, %%t2%%
  BL %s
  BX LR
.endfunc
`, tag, i, helper)
	}
	return Planted{
		ID: id, Class: taint.ClassBufferOverflow, Source: "recv", Sink: "sprintf",
		SinkFunc: helper, Paths: callers, Known: known, Status: status,
	}
}

// emitSscanfSession plants the Uniview zero-day: the RTSP Session field
// is sscanf'd into a 180-byte stack buffer while the format admits 254
// characters.
func emitSscanfSession(e emitter, tag, id string, callers int, known bool, status string) Planted {
	fmtSym := tag + "_sfmt"
	e.writef(".data %s \"Session: %%%%254s\"\n", fmtSym)
	helper := tag + "_parse_session"
	e.writef(`.func %s
  SUB SP, SP, #0xB4
  MOV %%a1%%, =%s
  ADD %%a2%%, SP, #0
  BL sscanf
  BX LR
.endfunc
`, helper, fmtSym)
	for i := 0; i < callers; i++ {
		e.writef(`.func %s_method_%d
  SUB SP, SP, #0x210
  ADD %%t1%%, SP, #8
  MOV %%a1%%, %%t1%%
  MOV %%a0%%, #0
  MOV %%a2%%, #0x200
  BL recv
  MOV %%a0%%, %%t1%%
  BL %s
  BX LR
.endfunc
`, tag, i, helper)
	}
	return Planted{
		ID: id, Class: taint.ClassBufferOverflow, Source: "recv", Sink: "sscanf",
		SinkFunc: helper, Paths: callers, Known: known, Status: status,
	}
}

// emitSanitizedHandlers writes handlers whose tainted flows are properly
// checked: they contribute sink callsites and sanitized paths but no
// vulnerabilities — the firmware code that does validate its inputs.
func emitSanitizedHandlers(e emitter, tag string, n int) {
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("%s_sk%d", tag, i)
		e.writef(".data %s \"opt\"\n", key)
		switch i % 2 {
		case 0:
			// Length-checked strcpy.
			e.writef(`.func %s_safe_%d
  SUB SP, SP, #0x50
  MOV %%a0%%, =%s
  BL getenv
  MOV %%t0%%, %%rt%%
  MOV %%a0%%, %%t0%%
  BL strlen
  CMP %%rt%%, #0x20
  BGE %s_safe_%d_out
  MOV %%a1%%, %%t0%%
  ADD %%a0%%, SP, #4
  BL strcpy
%s_safe_%d_out:
  BX LR
.endfunc
`, tag, i, key, tag, i, tag, i)
		default:
			// Semicolon-checked system.
			e.writef(`.func %s_safe_%d
  MOV %%a0%%, =%s
  BL getenv
  MOV %%t0%%, %%rt%%
  MOV %%a0%%, %%t0%%
  MOV %%a1%%, #0x3B
  BL strchr
  CMP %%rt%%, #0
  BNE %s_safe_%d_out
  MOV %%a0%%, %%t0%%
  BL system
%s_safe_%d_out:
  BX LR
.endfunc
`, tag, i, key, tag, i, tag, i)
		}
	}
}

// versionpair.go generates vendor re-release pairs: two firmware images
// of the same product where most binaries are byte-identical, a few are
// mutated at function granularity, one binary is added, and one removed.
// This is the workload the differential scanner (internal/diff) is built
// for, and the generator controls the ground truth precisely:
//
//   - every binary starts with a stable module (a persisting planted
//     vulnerability plus a filler family seeded from the binary index
//     alone) whose bytes and addresses are identical in both versions, so
//     its functions replay from the summary store;
//   - mutated binaries append a renamed module — byte-identical code and
//     data at identical addresses whose symbol names carry the version —
//     exercising the exact-bytes function pairing (the findings inside it
//     must classify as persisting despite the rename);
//   - mutated binaries end with a version tail: version-seeded filler plus
//     a version-specific planted vulnerability with a *different*
//     source→sink pair per version, so the old tail's finding is fixed and
//     the new tail's finding is new;
//   - the added binary exists only in the new image (all findings new) and
//     the removed binary only in the old one (all findings fixed).
//
// The stable module comes first because the summary store keys fold in
// function names and addresses: only a byte-identical prefix replays.
package corpus

import (
	"fmt"
	"strings"

	"dtaint/internal/asm"
	"dtaint/internal/firmware"
	"dtaint/internal/isa"
)

// VersionPairSpec describes a vendor re-release pair.
type VersionPairSpec struct {
	// Binaries is the number of binaries present in both versions.
	Binaries int
	// Mutated is how many of those binaries differ between versions
	// (mutated binaries are indices 0..Mutated-1).
	Mutated int
	// SharedFuncs sizes each binary's stable filler family (identical in
	// both versions).
	SharedFuncs int
	// TailFuncs sizes the version-private filler family of each mutated
	// binary.
	TailFuncs int
	Arch      isa.Arch
	Seed      uint64
}

// VersionPairAt is the scale knob for version-pair workloads: 1.0 yields
// a dozen-binary image with a quarter of the binaries mutated — the
// "nightly vendor build" shape where the delta is a small fraction of the
// image.
func VersionPairAt(scale float64) VersionPairSpec {
	if scale <= 0 {
		scale = 1
	}
	return VersionPairSpec{
		Binaries:    scaleInt(12, scale, 4),
		Mutated:     scaleInt(3, scale, 1),
		SharedFuncs: 32,
		TailFuncs:   12,
		Arch:        isa.ArchARM,
		Seed:        11,
	}
}

// normalized clamps a spec to buildable values.
func (s VersionPairSpec) normalized() VersionPairSpec {
	if s.Binaries < 2 {
		s.Binaries = 2
	}
	if s.Mutated < 1 {
		s.Mutated = 1
	}
	if s.Mutated > s.Binaries {
		s.Mutated = s.Binaries
	}
	if s.SharedFuncs < 8 {
		s.SharedFuncs = 8
	}
	if s.TailFuncs < 4 {
		s.TailFuncs = 4
	}
	if s.Arch != isa.ArchMIPS {
		s.Arch = isa.ArchARM
	}
	return s
}

// Rootfs paths of the pair's binaries.
const (
	versionPairBinaryPathFmt = "/usr/sbin/vsvc%02d"
	// VersionPairAddedPath is the binary present only in the new image.
	VersionPairAddedPath = "/usr/sbin/vnew"
	// VersionPairRemovedPath is the binary present only in the old image.
	VersionPairRemovedPath = "/usr/sbin/vold"
)

// VersionPairBinaryPath returns the rootfs path of shared binary idx.
func VersionPairBinaryPath(idx int) string {
	return fmt.Sprintf(versionPairBinaryPathFmt, idx)
}

// VersionPair is a built re-release pair with its diff ground truth.
type VersionPair struct {
	Spec VersionPairSpec
	// Old and New are the packed FWIMG containers (versions 1.0.0 and
	// 1.0.1 of the same product).
	Old []byte
	New []byte
	// UnchangedPaths and MutatedPaths partition the shared binaries.
	UnchangedPaths []string
	MutatedPaths   []string
	AddedPath      string
	RemovedPath    string
	// Ground-truth deduplicated vulnerability counts by diff status:
	// persisting = Binaries + Mutated (one stable plant per binary plus
	// one renamed plant per mutated binary), new = Mutated + 1 (each new
	// tail plus the added binary), fixed = Mutated + 1 (each old tail
	// plus the removed binary).
	PersistingVulns int
	NewVulns        int
	FixedVulns      int
}

// BuildVersionPair builds the pair described by spec; generation is
// deterministic for a given spec.
func BuildVersionPair(spec VersionPairSpec) (*VersionPair, error) {
	spec = spec.normalized()
	vp := &VersionPair{
		Spec:            spec,
		AddedPath:       VersionPairAddedPath,
		RemovedPath:     VersionPairRemovedPath,
		PersistingVulns: spec.Binaries + spec.Mutated,
		NewVulns:        spec.Mutated + 1,
		FixedVulns:      spec.Mutated + 1,
	}

	type entry struct {
		path string
		raw  []byte
	}
	var oldFiles, newFiles []entry
	for idx := 0; idx < spec.Binaries; idx++ {
		path := VersionPairBinaryPath(idx)
		mutated := idx < spec.Mutated
		if mutated {
			vp.MutatedPaths = append(vp.MutatedPaths, path)
		} else {
			vp.UnchangedPaths = append(vp.UnchangedPaths, path)
		}
		oldRaw, err := assembleVersionBinary(fmt.Sprintf("vsvc%02d", idx), versionBinarySource(spec, idx, 1, mutated))
		if err != nil {
			return nil, fmt.Errorf("corpus: version pair binary %d v1: %w", idx, err)
		}
		oldFiles = append(oldFiles, entry{path, oldRaw})
		if !mutated {
			// Unchanged binaries ship the same bytes in both versions.
			newFiles = append(newFiles, entry{path, oldRaw})
			continue
		}
		newRaw, err := assembleVersionBinary(fmt.Sprintf("vsvc%02d", idx), versionBinarySource(spec, idx, 2, mutated))
		if err != nil {
			return nil, fmt.Errorf("corpus: version pair binary %d v2: %w", idx, err)
		}
		newFiles = append(newFiles, entry{path, newRaw})
	}

	removedRaw, err := assembleVersionBinary("vold", sideBinarySource(spec, "brem", "VP-REMOVED", 101))
	if err != nil {
		return nil, fmt.Errorf("corpus: version pair removed binary: %w", err)
	}
	oldFiles = append(oldFiles, entry{VersionPairRemovedPath, removedRaw})
	addedRaw, err := assembleVersionBinary("vnew", sideBinarySource(spec, "badd", "VP-ADDED", 102))
	if err != nil {
		return nil, fmt.Errorf("corpus: version pair added binary: %w", err)
	}
	newFiles = append(newFiles, entry{VersionPairAddedPath, addedRaw})

	pack := func(version string, files []entry) ([]byte, error) {
		fs := &firmware.FS{}
		stubs := []firmware.File{
			{Path: "/bin/busybox", Mode: 0o755, Data: []byte("busybox-stub")},
			{Path: "/etc/passwd", Mode: 0o644, Data: []byte("root::0:0::/:/bin/sh\n")},
			{Path: "/etc/version", Mode: 0o644, Data: []byte(version)},
		}
		for _, f := range stubs {
			if err := fs.Add(f); err != nil {
				return nil, err
			}
		}
		for _, f := range files {
			if err := fs.Add(firmware.File{Path: f.path, Mode: 0o755, Data: f.raw}); err != nil {
				return nil, err
			}
		}
		payload, err := firmware.MarshalFS(fs)
		if err != nil {
			return nil, err
		}
		return firmware.Pack(&firmware.Image{
			Header: firmware.Header{
				Vendor:  "DiffCo",
				Product: "VPAIR",
				Version: version,
				Year:    2026,
				Arch:    spec.Arch,
				Boot: firmware.BootRequirements{
					Peripherals: []string{"nvram", "flash"},
				},
			},
			Parts: []firmware.Part{
				{Type: firmware.PartKernel, Data: []byte("kernel-stub")},
				{Type: firmware.PartRootFS, Data: payload},
			},
		})
	}
	if vp.Old, err = pack("1.0.0", oldFiles); err != nil {
		return nil, fmt.Errorf("corpus: version pair old image: %w", err)
	}
	if vp.New, err = pack("1.0.1", newFiles); err != nil {
		return nil, fmt.Errorf("corpus: version pair new image: %w", err)
	}
	return vp, nil
}

func assembleVersionBinary(name, src string) ([]byte, error) {
	bin, err := asm.Assemble(name, src)
	if err != nil {
		return nil, err
	}
	return bin.Marshal()
}

// versionBinarySource emits shared binary idx for version v (1 or 2).
// Emission order is load-bearing: the stable module must occupy an
// identical prefix at identical addresses in both versions (summary-store
// keys fold in names and addresses), the renamed module must keep its
// bytes and addresses while its names change (exact-bytes function
// pairing), and only the tail may shift.
func versionBinarySource(spec VersionPairSpec, idx, v int, mutated bool) string {
	var b strings.Builder
	b.Grow(1 << 17)
	fmt.Fprintf(&b, "; version pair binary %02d v%d\n", idx, v)
	fmt.Fprintf(&b, ".arch %s\n", strings.ToLower(spec.Arch.String()))
	emitImports(&b)

	em := emitter{b: &b, cv: regmap(spec.Arch)}
	// Stable module: identical in both versions.
	emitGetenvStrcpy(em, fmt.Sprintf("b%02dp", idx), fmt.Sprintf("VP-KEEP-%02d", idx), 2, true, "")
	emitFiller(em, shape{
		Funcs:            spec.SharedFuncs,
		BlocksPerFunc:    9,
		CallsPerFunc:     3,
		SinkRatePermille: 200,
		Prefix:           fmt.Sprintf("b%02ds", idx),
	}, newLCG(spec.Seed*2654435761+uint64(idx+1)*1013))
	if !mutated {
		return b.String()
	}

	// Renamed module: the version lives only in the symbol names; code
	// and data bytes — and, because the prefix above is identical, the
	// addresses — match exactly across versions.
	emitCmdInjection(em, fmt.Sprintf("b%02dr%d", idx, v), fmt.Sprintf("VP-REN-%02d", idx), "getenv", "system", 1, true, "")

	// Version tail: version-seeded filler shifts the tail's addresses,
	// and the planted vulnerability differs per version (the vendor fixed
	// the sprintf overflow and introduced a strncpy one).
	emitFiller(em, shape{
		Funcs:            spec.TailFuncs,
		BlocksPerFunc:    9,
		CallsPerFunc:     3,
		SinkRatePermille: 200,
		Prefix:           fmt.Sprintf("b%02dv%d", idx, v),
	}, newLCG(spec.Seed*6364136223846793005+uint64(idx+1)*31+uint64(v)*7919))
	if v == 1 {
		emitGetenvSprintf(em, fmt.Sprintf("b%02do", idx), fmt.Sprintf("VP-OLDTAIL-%02d", idx), 1, false, "unpatched")
	} else {
		emitReadStrncpy(em, fmt.Sprintf("b%02dn", idx), fmt.Sprintf("VP-NEWTAIL-%02d", idx), 1, false, "unpatched")
	}
	return b.String()
}

// sideBinarySource emits a binary present in only one version (the added
// or removed one).
func sideBinarySource(spec VersionPairSpec, tag, id string, salt uint64) string {
	var b strings.Builder
	b.Grow(1 << 16)
	fmt.Fprintf(&b, "; version pair side binary %s\n", tag)
	fmt.Fprintf(&b, ".arch %s\n", strings.ToLower(spec.Arch.String()))
	emitImports(&b)

	em := emitter{b: &b, cv: regmap(spec.Arch)}
	emitGetenvStrcpy(em, tag, id, 2, true, "")
	emitFiller(em, shape{
		Funcs:            spec.TailFuncs,
		BlocksPerFunc:    9,
		CallsPerFunc:     3,
		SinkRatePermille: 200,
		Prefix:           tag + "f",
	}, newLCG(spec.Seed*2862933555777941757+salt*104729))
	return b.String()
}

// Package corpus generates the synthetic firmware corpus of this
// reproduction: the six study images of Tables II-V (with every CVE and
// zero-day analog planted), the OpenSSL-like binary with the Heartbleed
// weakness used in Table VII, and the 6,529-image population behind
// Figure 1's emulation study.
//
// Everything is deterministic: the same spec and scale produce the same
// bytes, so experiment outputs are reproducible.
package corpus

import (
	"fmt"
	"strings"

	"dtaint/internal/asm"
	"dtaint/internal/firmware"
	"dtaint/internal/image"
	"dtaint/internal/isa"
	"dtaint/internal/taint"
)

// Spec describes one study image (a row of Table II).
type Spec struct {
	Index      int
	Vendor     string
	Product    string
	Version    string
	BinaryName string
	Arch       isa.Arch
	Year       int

	// Table II scale targets.
	Funcs     int
	Blocks    int
	CallEdges int

	// AnalyzeFuncs is Table III's "Analysis functions": the size of the
	// module subset DTaint analyzes (the paper restricts the two large
	// camera binaries to their network modules). Zero means all.
	AnalyzeFuncs int
	// SinkTarget is Table III's "Sinks count" over the analyzed subset.
	SinkTarget int

	// ModulePrefix names the analyzed filler family; CorePrefix names the
	// out-of-module filler (only used when AnalyzeFuncs < Funcs).
	ModulePrefix string
	CorePrefix   string

	// plant writes the image's planted vulnerabilities.
	plant func(e emitter) []Planted
	// sanitized is how many properly-checked handlers to add.
	sanitized int
}

// StudyImages returns the six firmware images of Table II with their
// Table IV/V vulnerability sets.
func StudyImages() []Spec {
	return []Spec{
		{
			Index: 1, Vendor: "D-Link", Product: "DIR-645", Version: "1.03",
			BinaryName: "cgibin", Arch: isa.ArchMIPS, Year: 2013,
			Funcs: 237, Blocks: 3414, CallEdges: 1087,
			SinkTarget: 176, ModulePrefix: "cgi", sanitized: 8,
			plant: func(e emitter) []Planted {
				return []Planted{
					emitReadStrncpy(e, "cgi_pw", "CVE-2013-7389", 2, true, ""),
					emitGetenvSprintf(e, "cgi_ck", "CVE-2013-7389", 1, true, ""),
					emitGetenvStrcpy(e, "cgi_ss", "CVE-2016-5681", 2, true, ""),
					emitCmdInjection(e, "cgi_pg", "ZD-DIR645-1", "getenv", "system", 2, false, "repaired"),
				}
			},
		},
		{
			Index: 2, Vendor: "D-Link", Product: "DIR-890L", Version: "1.03",
			BinaryName: "cgibin", Arch: isa.ArchARM, Year: 2015,
			Funcs: 358, Blocks: 3913, CallEdges: 1418,
			SinkTarget: 276, ModulePrefix: "cgi", sanitized: 10,
			plant: func(e emitter) []Planted {
				return []Planted{
					emitCmdInjection(e, "cgi_soap", "CVE-2015-2051", "getenv", "system", 3, true, ""),
					emitGetenvStrcpy(e, "cgi_sid", "CVE-2016-5681", 2, true, ""),
				}
			},
		},
		{
			Index: 3, Vendor: "Netgear", Product: "DGN1000", Version: "1.1.00.46",
			BinaryName: "setup.cgi", Arch: isa.ArchMIPS, Year: 2017,
			Funcs: 732, Blocks: 4943, CallEdges: 2457,
			SinkTarget: 958, ModulePrefix: "setup", sanitized: 16,
			plant: func(e emitter) []Planted {
				return []Planted{
					emitCmdInjection(e, "setup_host", "CVE-2017-6334", "websGetVar", "system", 4, true, ""),
					emitCmdInjection(e, "setup_ping", "CVE-2017-6077", "websGetVar", "system", 3, true, ""),
					emitCmdInjection(e, "setup_tr", "ZD-DGN1000-1", "websGetVar", "system", 3, false, "reviewing"),
					emitCmdInjection(e, "setup_dns", "ZD-DGN1000-2", "getenv", "system", 3, false, "-"),
					emitCmdInjection(e, "setup_ntp", "ZD-DGN1000-3", "getenv", "popen", 2, false, "-"),
					emitReadSprintf(e, "setup_hn", "ZD-DGN1000-4", 4, false, "-"),
				}
			},
		},
		{
			Index: 4, Vendor: "Netgear", Product: "DGN2200", Version: "1.0.0.50",
			BinaryName: "httpd", Arch: isa.ArchMIPS, Year: 2017,
			Funcs: 796, Blocks: 11183, CallEdges: 4497,
			SinkTarget: 1264, ModulePrefix: "httpd", sanitized: 18,
			plant: func(e emitter) []Planted {
				return []Planted{
					emitCmdInjection(e, "httpd_cmd", "EDB-ID:43055", "find_var", "popen", 7, true, ""),
					emitFgetsStrcpy(e, "httpd_cfg", "ZD-DGN2200-1", 7, false, "-"),
				}
			},
		},
		{
			Index: 5, Vendor: "Uniview", Product: "IPC_6201", Version: "latest",
			BinaryName: "mwareserver", Arch: isa.ArchARM, Year: 2017,
			Funcs: 6714, Blocks: 99958, CallEdges: 32495,
			AnalyzeFuncs: 430, SinkTarget: 447,
			ModulePrefix: "rtsp", CorePrefix: "mw", sanitized: 12,
			plant: func(e emitter) []Planted {
				return []Planted{
					emitSscanfSession(e, "rtsp_sess", "ZD-UNV-1", 10, false, "reviewing"),
				}
			},
		},
		{
			Index: 6, Vendor: "Hikvision", Product: "DS-2CD6233F", Version: "latest",
			BinaryName: "centaurus", Arch: isa.ArchARM, Year: 2017,
			Funcs: 14035, Blocks: 219945, CallEdges: 68974,
			AnalyzeFuncs: 3233, SinkTarget: 2052,
			ModulePrefix: "net", CorePrefix: "cent", sanitized: 40,
			plant: func(e emitter) []Planted {
				return []Planted{
					emitReadMemcpy(e, "net_hdr", "ZD-HIK-1", 5, false, "repaired"),
					emitLoopCopy(e, "net_b1", "ZD-HIK-2", 5, false, "repaired"),
					emitLoopCopy(e, "net_b2", "ZD-HIK-3", 5, false, "repaired"),
					emitAliasOverflow(e, "net_url", "ZD-HIK-4", 5, false, "repaired"),
					emitStructSimOverflow(e, "net_disp", "ZD-HIK-5", 5, false, "repaired"),
					emitStructFieldSprintf(e, "net_par", "ZD-HIK-6", 5, false, "repaired"),
				}
			},
		},
	}
}

// SpecByProduct returns the study spec for a product name.
func SpecByProduct(product string) (Spec, bool) {
	for _, s := range StudyImages() {
		if s.Product == product {
			return s, true
		}
	}
	return Spec{}, false
}

// BuildSource generates the assembly program for a spec. scale in (0, 1]
// shrinks the filler (planted code is always complete, so detection
// results are scale-invariant); 1.0 reproduces the Table II size targets.
func BuildSource(spec Spec, scale float64) (string, []Planted) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	var b strings.Builder
	b.Grow(1 << 20)
	fmt.Fprintf(&b, "; synthetic firmware binary %s (%s %s %s)\n",
		spec.BinaryName, spec.Vendor, spec.Product, spec.Version)
	fmt.Fprintf(&b, ".arch %s\n", strings.ToLower(spec.Arch.String()))
	emitImports(&b)

	em := emitter{b: &b, cv: regmap(spec.Arch)}
	planted := spec.plant(em)
	emitSanitizedHandlers(em, spec.ModulePrefix+"_v", scaleInt(spec.sanitized, scale, 2))

	plantedFuncs := 0
	for _, p := range planted {
		plantedFuncs += p.Paths + 1 // callers + helper (approximation)
	}
	plantedFuncs += scaleInt(spec.sanitized, scale, 2)

	analyze := spec.AnalyzeFuncs
	if analyze == 0 {
		analyze = spec.Funcs
	}
	moduleFuncs := scaleInt(analyze, scale, 4) - plantedFuncs
	if moduleFuncs < 4 {
		moduleFuncs = 4
	}
	coreFuncs := scaleInt(spec.Funcs-analyze, scale, 0)

	// Per-filler-function averages are computed against the full-scale
	// targets (they are scale-invariant); the filler compensates for the
	// planted and sanitized functions being smaller than average.
	plantedFull := 0
	for _, p := range planted {
		plantedFull += p.Paths + 1
	}
	plantedFull += spec.sanitized
	fillerFull := spec.Funcs - plantedFull
	if fillerFull < 1 {
		fillerFull = 1
	}
	plantedBlocksEst := float64(plantedFull)*1.3 + float64(spec.sanitized)*2
	plantedCallsEst := float64(plantedFull) * 2.2
	blocksPer := (float64(spec.Blocks) - plantedBlocksEst) / float64(fillerFull)
	callsPer := (float64(spec.CallEdges) - plantedCallsEst) / float64(fillerFull)
	// Import callsites are ~45% of filler callsites; solve the sink rate
	// from the Table III target over the analyzed subset.
	sinkRate := 0
	moduleFillerFull := spec.Funcs
	if spec.AnalyzeFuncs > 0 {
		moduleFillerFull = spec.AnalyzeFuncs
	}
	moduleFillerFull -= plantedFull
	// The planted helpers and sanitized handlers contribute roughly one
	// sink callsite each; the filler covers the rest of the target.
	fillerSinkTarget := float64(spec.SinkTarget) - float64(len(planted)+spec.sanitized)*1.4
	if importCalls := float64(moduleFillerFull) * callsPer * 0.45; importCalls > 0 && fillerSinkTarget > 0 {
		sinkRate = int(fillerSinkTarget / importCalls * 1000)
	}
	if sinkRate > 1000 {
		sinkRate = 1000
	}

	rng := newLCG(uint64(spec.Index) * 977)
	emitFiller(em, shape{
		Funcs:            moduleFuncs,
		BlocksPerFunc:    blocksPer,
		CallsPerFunc:     callsPer,
		SinkRatePermille: sinkRate,
		Prefix:           spec.ModulePrefix,
	}, rng)
	if coreFuncs > 0 {
		emitFiller(em, shape{
			Funcs:            coreFuncs,
			BlocksPerFunc:    blocksPer,
			CallsPerFunc:     callsPer,
			SinkRatePermille: 150,
			Prefix:           spec.CorePrefix,
		}, rng)
	}
	return b.String(), planted
}

func scaleInt(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		v = min
	}
	return v
}

// BuildBinary assembles the spec's binary.
func BuildBinary(spec Spec, scale float64) (*image.Binary, []Planted, error) {
	src, planted := BuildSource(spec, scale)
	bin, err := asm.Assemble(spec.BinaryName, src)
	if err != nil {
		return nil, nil, fmt.Errorf("corpus %s: %w", spec.Product, err)
	}
	return bin, planted, nil
}

// ModuleFilter returns the function filter for the spec's analyzed subset
// (Table III's "Analysis functions"): the module filler family, the
// planted code, and the sanitized handlers; the core filler is excluded.
func ModuleFilter(spec Spec) func(string) bool {
	if spec.AnalyzeFuncs == 0 || spec.CorePrefix == "" {
		return nil
	}
	core := spec.CorePrefix + "_"
	return func(name string) bool {
		return !strings.HasPrefix(name, core)
	}
}

// BuildFirmware packs the spec's binary into a FWIMG container with a
// realistic root filesystem.
func BuildFirmware(spec Spec, scale float64) ([]byte, []Planted, error) {
	bin, planted, err := BuildBinary(spec, scale)
	if err != nil {
		return nil, nil, err
	}
	raw, err := bin.Marshal()
	if err != nil {
		return nil, nil, err
	}
	fs := &firmware.FS{}
	files := []firmware.File{
		{Path: "/bin/busybox", Mode: 0o755, Data: []byte("busybox-stub")},
		{Path: "/etc/passwd", Mode: 0o644, Data: []byte("root::0:0::/:/bin/sh\n")},
		{Path: "/etc/version", Mode: 0o644, Data: []byte(spec.Version)},
		{Path: BinaryPathFor(spec), Mode: 0o755, Data: raw},
	}
	for _, f := range files {
		if err := fs.Add(f); err != nil {
			return nil, nil, err
		}
	}
	payload, err := firmware.MarshalFS(fs)
	if err != nil {
		return nil, nil, err
	}
	img := &firmware.Image{
		Header: firmware.Header{
			Vendor: spec.Vendor, Product: spec.Product, Version: spec.Version,
			Year: spec.Year, Arch: spec.Arch,
			Boot: firmware.BootRequirements{
				Peripherals: []string{"nvram", "flash", spec.Vendor + "-asic"},
			},
		},
		Parts: []firmware.Part{
			{Type: firmware.PartKernel, Data: []byte("kernel-stub")},
			{Type: firmware.PartRootFS, Data: payload},
		},
	}
	data, err := firmware.Pack(img)
	if err != nil {
		return nil, nil, err
	}
	return data, planted, nil
}

// BinaryPathFor is where the study binary lives inside the rootfs.
func BinaryPathFor(spec Spec) string {
	switch spec.BinaryName {
	case "cgibin":
		return "/htdocs/cgibin"
	case "setup.cgi":
		return "/www/setup.cgi"
	case "httpd":
		return "/usr/sbin/httpd"
	default:
		return "/usr/bin/" + spec.BinaryName
	}
}

// ExpectedVulns sums the planted vulnerability count (Table III's
// "Vulnerability" column).
func ExpectedVulns(planted []Planted) int { return len(planted) }

// ExpectedPaths sums the planted path counts (Table III's "Vulnerable
// paths" column).
func ExpectedPaths(planted []Planted) int {
	n := 0
	for _, p := range planted {
		n += p.Paths
	}
	return n
}

// ExpectedZeroDays counts the planted zero-days (Table V rows).
func ExpectedZeroDays(planted []Planted) int {
	n := 0
	for _, p := range planted {
		if !p.Known {
			n++
		}
	}
	return n
}

// OpenSSL builds the OpenSSL-like binary with the Heartbleed weakness
// (Section II-B, Figure 2/3) used as the fourth Table VII workload: the
// 16-bit payload length is read from network data (the inlined n2s macro)
// and passed to memcpy with no bound check, across three functions.
func OpenSSL(scale float64) (*image.Binary, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	var b strings.Builder
	b.WriteString(".arch arm\n")
	emitImports(&b)
	// ssl3_read_n: fills the record buffer s->s3->rbuf (here s+0x58)
	// from the network.
	b.WriteString(`.func ssl3_read_n
  LDR R8, [R0, #0x58]
  MOV R1, R8
  MOV R0, #0
  MOV R2, #0x200
  BL recv
  MOV R0, R2
  BX LR
.endfunc
`)
	// tls1_process_heartbeat: n2s reads a 16-bit length from the tainted
	// record (two byte loads + ORR/LSL, as in Figure 3), then memcpy's
	// payload bytes with that length.
	b.WriteString(`.func tls1_process_heartbeat
  SUB SP, SP, #0x50
  LDR R3, [R0, #0x58]
  LDRB R5, [R3, #0]
  LDRB R2, [R3, #1]
  LSL R2, R2, #8
  ORR R6, R5, R2
  ADD R1, R3, #3
  ADD R0, SP, #4
  MOV R2, R6
  BL memcpy
  BX LR
.endfunc
`)
	// ssl3_read_bytes: drives read_n then the heartbeat processing with
	// the same SSL object.
	b.WriteString(`.func ssl3_read_bytes
  MOV R11, R0
  MOV R0, R11
  BL ssl3_read_n
  MOV R0, R11
  BL tls1_process_heartbeat
  BX LR
.endfunc
`)
	rng := newLCG(42)
	emitFiller(emitter{b: &b, cv: regmap(isa.ArchARM)}, shape{
		Funcs:            scaleInt(420, scale, 8),
		BlocksPerFunc:    12,
		CallsPerFunc:     4,
		SinkRatePermille: 220,
		Prefix:           "ssl",
	}, rng)
	return asm.Assemble("openssl", b.String())
}

// HeartbleedGroundTruth describes the planted OpenSSL weakness.
func HeartbleedGroundTruth() Planted {
	return Planted{
		ID: "CVE-2014-0160", Class: taint.ClassBufferOverflow,
		Source: "recv", Sink: "memcpy", SinkFunc: "tls1_process_heartbeat",
		Paths: 1, Known: true,
	}
}

package corpus

import (
	"testing"

	"dtaint/internal/cfg"
	"dtaint/internal/dataflow"
)

// TestScreeningPrecisionRecall runs the detector over a randomized corpus
// of vulnerable and sanitized binaries: every vulnerable case must be
// found in the handler (recall 1.0) and no sanitized case may be flagged
// (precision 1.0).
func TestScreeningPrecisionRecall(t *testing.T) {
	cases, err := ScreeningCorpus(120, 7)
	if err != nil {
		t.Fatal(err)
	}
	vulnerableCases, sanitizedCases := 0, 0
	for _, c := range cases {
		prog, err := cfg.Build(c.Binary)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		res, err := dataflow.Analyze(prog, dataflow.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		found := false
		for _, v := range res.Vulnerabilities() {
			if v.SinkFunc == "handler" && v.Class == c.Class {
				found = true
			}
		}
		switch {
		case c.HasVuln:
			vulnerableCases++
			if !found {
				for _, f := range res.Findings {
					t.Logf("finding: %s", f.String())
				}
				t.Fatalf("%s (%s): vulnerable case missed (recall < 1)", c.Name, c.Shape)
			}
		default:
			sanitizedCases++
			if found {
				for _, f := range res.Findings {
					t.Logf("finding: %s", f.String())
				}
				t.Fatalf("%s (%s): sanitized case flagged (precision < 1)", c.Name, c.Shape)
			}
		}
	}
	// The random split must exercise both sides substantially.
	if vulnerableCases < 30 || sanitizedCases < 30 {
		t.Fatalf("lopsided corpus: %d vulnerable, %d sanitized", vulnerableCases, sanitizedCases)
	}
}

// TestScreeningVRangeInvariant checks the ablation contract: disabling
// the interval value-range domain may flip Sanitized and the finding
// class, but never which source→sink paths are discovered.
func TestScreeningVRangeInvariant(t *testing.T) {
	cases, err := ScreeningCorpus(60, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		// Rebuild per run: structsim resolution adds call edges in place.
		progOn, err := cfg.Build(c.Binary)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		on, err := dataflow.Analyze(progOn, dataflow.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		progOff, err := cfg.Build(c.Binary)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		off, err := dataflow.Analyze(progOff, dataflow.Options{DisableVRange: true})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if len(on.Findings) != len(off.Findings) {
			t.Fatalf("%s: vrange ablation changed path discovery: %d findings on, %d off",
				c.Name, len(on.Findings), len(off.Findings))
		}
		for i := range on.Findings {
			a, b := on.Findings[i], off.Findings[i]
			if a.Sink != b.Sink || a.SinkFunc != b.SinkFunc ||
				a.SinkAddr != b.SinkAddr || a.Source != b.Source ||
				len(a.Path) != len(b.Path) {
				t.Fatalf("%s: finding %d differs beyond verdict: on=%s off=%s",
					c.Name, i, a.String(), b.String())
			}
		}
	}
}

// TestScreeningAblationDegradesPrecision quantifies what the interval
// domain buys: with it the corpus scores precision = recall = 1.0 (the
// test above); without it the fgets-bounded copies are false positives
// (precision drops) and the off-by-one and truncation plants are missed
// (recall drops).
func TestScreeningAblationDegradesPrecision(t *testing.T) {
	cases, err := ScreeningCorpus(120, 7)
	if err != nil {
		t.Fatal(err)
	}
	var tp, fp, fn int
	for _, c := range cases {
		prog, err := cfg.Build(c.Binary)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		res, err := dataflow.Analyze(prog, dataflow.Options{DisableVRange: true})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		flagged := false
		for _, v := range res.Vulnerabilities() {
			if v.SinkFunc == "handler" {
				flagged = true
			}
		}
		switch {
		case c.HasVuln && flagged:
			tp++
		case !c.HasVuln && flagged:
			fp++
		case c.HasVuln && !flagged:
			fn++
		}
	}
	if fp == 0 {
		t.Fatal("ablated run produced no false positives: the interval domain is not buying precision")
	}
	if fn == 0 {
		t.Fatal("ablated run missed nothing: the off-by-one/truncation classes are not interval-dependent")
	}
	t.Logf("ablated: tp=%d fp=%d fn=%d precision=%.3f recall=%.3f",
		tp, fp, fn, float64(tp)/float64(tp+fp), float64(tp)/float64(tp+fn))
}

func TestScreeningDeterministic(t *testing.T) {
	a, err := ScreeningCorpus(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScreeningCorpus(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].HasVuln != b[i].HasVuln ||
			string(a[i].Binary.Text) != string(b[i].Binary.Text) {
			t.Fatalf("case %d differs across runs", i)
		}
	}
	c, err := ScreeningCorpus(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if string(a[i].Binary.Text) != string(c[i].Binary.Text) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

// TestScreeningDispatchShapesNeedSSE pins the SSE dependence of the two
// indirect-dispatch templates: their vulnerable cases are found by the
// full pipeline (the precision/recall test above) but must be missed
// with the SSE resolver ablated — struct-layout similarity alone cannot
// match a callsite whose table pointer is itself loaded from the object.
func TestScreeningDispatchShapesNeedSSE(t *testing.T) {
	cases, err := ScreeningCorpus(120, 7)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, c := range cases {
		if c.Shape != "fnptr-table-dispatch" && c.Shape != "nested-struct-handoff" {
			continue
		}
		if !c.HasVuln {
			continue
		}
		checked++
		prog, err := cfg.Build(c.Binary)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		res, err := dataflow.Analyze(prog, dataflow.Options{DisableSSE: true})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		for _, v := range res.Vulnerabilities() {
			if v.SinkFunc == "handler" {
				t.Fatalf("%s (%s): found without SSE — the template does not require the resolver", c.Name, c.Shape)
			}
		}
	}
	if checked < 4 {
		t.Fatalf("only %d vulnerable dispatch-shape cases drawn; corpus too thin to pin the ablation", checked)
	}
}

func TestScreeningCoversAllTemplates(t *testing.T) {
	cases, err := ScreeningCorpus(120, 7)
	if err != nil {
		t.Fatal(err)
	}
	shapes := map[string]int{}
	for _, c := range cases {
		shapes[c.Shape]++
	}
	if len(shapes) != len(screeningTemplates) {
		t.Fatalf("only %d of %d templates drawn: %v", len(shapes), len(screeningTemplates), shapes)
	}
}

package corpus

import (
	"testing"

	"dtaint/internal/cfg"
	"dtaint/internal/dataflow"
)

// TestScreeningPrecisionRecall runs the detector over a randomized corpus
// of vulnerable and sanitized binaries: every vulnerable case must be
// found in the handler (recall 1.0) and no sanitized case may be flagged
// (precision 1.0).
func TestScreeningPrecisionRecall(t *testing.T) {
	cases, err := ScreeningCorpus(120, 7)
	if err != nil {
		t.Fatal(err)
	}
	vulnerableCases, sanitizedCases := 0, 0
	for _, c := range cases {
		prog, err := cfg.Build(c.Binary)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		res, err := dataflow.Analyze(prog, dataflow.Options{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		found := false
		for _, v := range res.Vulnerabilities() {
			if v.SinkFunc == "handler" && v.Class == c.Class {
				found = true
			}
		}
		switch {
		case c.HasVuln:
			vulnerableCases++
			if !found {
				for _, f := range res.Findings {
					t.Logf("finding: %s", f.String())
				}
				t.Fatalf("%s (%s): vulnerable case missed (recall < 1)", c.Name, c.Shape)
			}
		default:
			sanitizedCases++
			if found {
				for _, f := range res.Findings {
					t.Logf("finding: %s", f.String())
				}
				t.Fatalf("%s (%s): sanitized case flagged (precision < 1)", c.Name, c.Shape)
			}
		}
	}
	// The random split must exercise both sides substantially.
	if vulnerableCases < 30 || sanitizedCases < 30 {
		t.Fatalf("lopsided corpus: %d vulnerable, %d sanitized", vulnerableCases, sanitizedCases)
	}
}

func TestScreeningDeterministic(t *testing.T) {
	a, err := ScreeningCorpus(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScreeningCorpus(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].HasVuln != b[i].HasVuln ||
			string(a[i].Binary.Text) != string(b[i].Binary.Text) {
			t.Fatalf("case %d differs across runs", i)
		}
	}
	c, err := ScreeningCorpus(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if string(a[i].Binary.Text) != string(c[i].Binary.Text) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestScreeningCoversAllTemplates(t *testing.T) {
	cases, err := ScreeningCorpus(120, 7)
	if err != nil {
		t.Fatal(err)
	}
	shapes := map[string]int{}
	for _, c := range cases {
		shapes[c.Shape]++
	}
	if len(shapes) != len(screeningTemplates) {
		t.Fatalf("only %d of %d templates drawn: %v", len(shapes), len(screeningTemplates), shapes)
	}
}

// builder.go emits the filler code that gives each synthetic firmware
// binary the scale reported in Table II (functions, basic blocks, call
// graph edges) and Table III (static sink-callsite counts). Filler
// functions are deterministic, benign (their sink calls operate on local
// buffers only), and call earlier filler functions so the call graph stays
// acyclic and realistically deep.
package corpus

import (
	"fmt"
	"strings"
)

// shape describes the filler targets for one binary.
type shape struct {
	// Funcs is the number of filler functions to emit.
	Funcs int
	// BlocksPerFunc is the average basic-block count per filler function
	// (fractional averages are tracked with error diffusion so totals hit
	// the Table II targets).
	BlocksPerFunc float64
	// CallsPerFunc is the average callsite count per filler function.
	CallsPerFunc float64
	// SinkRate is how many of a function's import callsites go to Table I
	// sinks (permille, 0..1000).
	SinkRatePermille int
	// Prefix names the filler family (e.g. "sub", "rtsp").
	Prefix string
}

// fillerImports are the benign library functions filler code calls, plus
// the sink functions that contribute to the static sink count.
var fillerSinkPool = []string{"strcpy", "strncpy", "sprintf", "memcpy", "strcat", "sscanf"}

var fillerLibPool = []string{"strlen", "strcmp", "memset", "atoi", "malloc"}

// lcg is a tiny deterministic linear congruential generator; corpus
// generation must be reproducible byte-for-byte across runs.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*6364136223846793005 + 1442695040888963407} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 11
}

func (l *lcg) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(l.next() % uint64(n))
}

// emitFiller writes sh.Funcs filler functions. Functions are named
// <prefix>_<i>; function i may call functions with smaller i (keeping the
// call graph acyclic). Returns the emitted function names.
func emitFiller(e emitter, sh shape, rng *lcg) []string {
	names := make([]string, 0, sh.Funcs)
	var carryBlocks, carryCalls float64
	for i := 0; i < sh.Funcs; i++ {
		name := fmt.Sprintf("%s_%04d", sh.Prefix, i)
		names = append(names, name)

		carryBlocks += sh.BlocksPerFunc
		diamonds := int(carryBlocks-1) / 2
		if diamonds < 0 {
			diamonds = 0
		}
		// Vary ±1 so the corpus is not perfectly uniform; the carry
		// self-corrects on later functions.
		if diamonds > 1 && rng.intn(2) == 0 {
			diamonds += rng.intn(3) - 1
		}
		carryBlocks -= float64(1 + 2*diamonds)

		carryCalls += sh.CallsPerFunc
		calls := int(carryCalls)
		if calls > 1 && rng.intn(2) == 0 {
			calls += rng.intn(3) - 1
		}
		if calls < 0 {
			calls = 0
		}
		carryCalls -= float64(calls)

		emitFillerFunc(e, name, i, names, sh, rng, diamonds, calls)
	}
	return names
}

// emitFillerFunc writes one filler function. The body is a chain of
// conditional diamonds (each contributes two basic blocks beyond the
// entry) interleaved with call sites.
func emitFillerFunc(e emitter, name string, idx int, names []string, sh shape, rng *lcg, diamonds, calls int) {
	e.writef(".func %s\n", name)
	e.writef("  SUB SP, SP, #0x40\n")
	e.writef("  MOV %%t0%%, %%a0%%\n")

	callsEmitted := 0
	for d := 0; d < diamonds; d++ {
		e.writef("  CMP %%t0%%, #%d\n", (d+1)*8)
		e.writef("  BGE %s_l%d\n", name, d)
		e.writef("  ADD %%t0%%, %%t0%%, #1\n")
		if callsEmitted < calls {
			emitFillerCall(e, idx, names, sh, rng)
			callsEmitted++
		}
		e.writef("%s_l%d:\n", name, d)
	}
	for callsEmitted < calls {
		emitFillerCall(e, idx, names, sh, rng)
		callsEmitted++
	}
	e.writef("  MOV %%rt%%, %%t0%%\n")
	e.writef("  BX LR\n")
	e.writef(".endfunc\n")
}

// emitFillerCall emits one callsite: a local call to an earlier filler
// function, a benign library call, or a benign (local-buffer) sink call.
func emitFillerCall(e emitter, idx int, names []string, sh shape, rng *lcg) {
	if idx > 0 && rng.intn(1000) < 550 {
		// Local call to an earlier filler function (acyclic).
		callee := names[rng.intn(idx)]
		e.writef("  MOV %%a0%%, %%t0%%\n")
		e.writef("  BL %s\n", callee)
		return
	}
	if rng.intn(1000) < sh.SinkRatePermille {
		sink := fillerSinkPool[rng.intn(len(fillerSinkPool))]
		// Benign: copy one local buffer into another with a small bound.
		e.writef("  ADD %%a0%%, SP, #8\n")
		e.writef("  ADD %%a1%%, SP, #24\n")
		e.writef("  MOV %%a2%%, #8\n")
		e.writef("  BL %s\n", sink)
		return
	}
	lib := fillerLibPool[rng.intn(len(fillerLibPool))]
	e.writef("  ADD %%a0%%, SP, #8\n")
	e.writef("  MOV %%a1%%, #16\n")
	e.writef("  BL %s\n", lib)
}

// emitImports writes the .import directives every corpus binary needs.
func emitImports(b *strings.Builder) {
	imports := []string{
		// Table I sources.
		"read", "recv", "recvfrom", "recvmsg", "getenv", "fgets",
		"websGetVar", "find_var",
		// Table I sinks.
		"strcpy", "strncpy", "sprintf", "memcpy", "strcat", "sscanf",
		"system", "popen",
		// Supporting libc.
		"strlen", "strcmp", "strncmp", "strchr", "memset", "atoi",
		"malloc", "free",
		// Vocabulary extensions: NVRAM sources, the printf family, and
		// the path-consuming file operations.
		"nvram_get", "nvram_safe_get", "acosNvramConfig_get",
		"printf", "fprintf", "syslog", "open", "fopen", "unlink",
	}
	for _, im := range imports {
		fmt.Fprintf(b, ".import %s\n", im)
	}
}

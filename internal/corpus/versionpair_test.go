package corpus

import (
	"bytes"
	"strings"
	"testing"

	"dtaint/internal/cfg"
	"dtaint/internal/firmware"
	"dtaint/internal/image"
)

func unpackBinaries(t *testing.T, img []byte) map[string][]byte {
	t.Helper()
	_, fs, err := firmware.Unpack(img)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	out := make(map[string][]byte)
	for _, f := range fs.Files {
		if bytes.HasPrefix(f.Data, image.Magic[:]) {
			out[f.Path] = f.Data
		}
	}
	return out
}

func TestBuildVersionPairShape(t *testing.T) {
	spec := VersionPairSpec{Binaries: 4, Mutated: 2, SharedFuncs: 10, TailFuncs: 5, Seed: 3}
	vp, err := BuildVersionPair(spec)
	if err != nil {
		t.Fatalf("BuildVersionPair: %v", err)
	}
	oldBins := unpackBinaries(t, vp.Old)
	newBins := unpackBinaries(t, vp.New)

	if len(oldBins) != spec.Binaries+1 || len(newBins) != spec.Binaries+1 {
		t.Fatalf("binary counts: old %d new %d, want %d each", len(oldBins), len(newBins), spec.Binaries+1)
	}
	if _, ok := oldBins[vp.RemovedPath]; !ok {
		t.Errorf("old image missing removed binary %s", vp.RemovedPath)
	}
	if _, ok := newBins[vp.RemovedPath]; ok {
		t.Errorf("new image still has removed binary %s", vp.RemovedPath)
	}
	if _, ok := newBins[vp.AddedPath]; !ok {
		t.Errorf("new image missing added binary %s", vp.AddedPath)
	}
	if _, ok := oldBins[vp.AddedPath]; ok {
		t.Errorf("old image already has added binary %s", vp.AddedPath)
	}
	for _, p := range vp.UnchangedPaths {
		if !bytes.Equal(oldBins[p], newBins[p]) {
			t.Errorf("unchanged binary %s differs across versions", p)
		}
	}
	for _, p := range vp.MutatedPaths {
		if bytes.Equal(oldBins[p], newBins[p]) {
			t.Errorf("mutated binary %s is byte-identical across versions", p)
		}
	}
	if got, want := len(vp.MutatedPaths), spec.Mutated; got != want {
		t.Errorf("MutatedPaths = %d, want %d", got, want)
	}
	if vp.PersistingVulns != spec.Binaries+spec.Mutated ||
		vp.NewVulns != spec.Mutated+1 || vp.FixedVulns != spec.Mutated+1 {
		t.Errorf("ground truth counts = %d/%d/%d", vp.PersistingVulns, vp.NewVulns, vp.FixedVulns)
	}
}

// TestVersionPairStablePrefix proves the property the differential
// scanner's incremental mode depends on: inside a mutated binary, the
// stable module's functions keep their names, addresses, and bytes
// across versions, while the renamed module keeps addresses and bytes
// but not names.
func TestVersionPairStablePrefix(t *testing.T) {
	spec := VersionPairSpec{Binaries: 2, Mutated: 1, SharedFuncs: 10, TailFuncs: 5, Seed: 3}
	vp, err := BuildVersionPair(spec)
	if err != nil {
		t.Fatalf("BuildVersionPair: %v", err)
	}
	oldBins := unpackBinaries(t, vp.Old)
	newBins := unpackBinaries(t, vp.New)
	path := vp.MutatedPaths[0]

	progOf := func(raw []byte) *cfg.Program {
		bin, err := image.Parse(raw)
		if err != nil {
			t.Fatalf("Parse: %v", err)
		}
		prog, err := cfg.Build(bin)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return prog
	}
	oldProg, newProg := progOf(oldBins[path]), progOf(newBins[path])

	stable := 0
	for name, oldFn := range oldProg.ByName {
		if !strings.HasPrefix(name, "b00p") && !strings.HasPrefix(name, "b00s") {
			continue
		}
		stable++
		newFn, ok := newProg.ByName[name]
		if !ok {
			t.Errorf("stable function %s missing from new version", name)
			continue
		}
		if oldFn.Addr != newFn.Addr || oldFn.Size != newFn.Size {
			t.Errorf("stable function %s moved: old %#x+%d new %#x+%d",
				name, oldFn.Addr, oldFn.Size, newFn.Addr, newFn.Size)
		}
	}
	if stable < spec.SharedFuncs {
		t.Errorf("found %d stable functions, want >= %d", stable, spec.SharedFuncs)
	}

	// The renamed module: same addresses, version-suffixed names.
	oldRen, okOld := oldProg.ByName["b00r1_exec"]
	newRen, okNew := newProg.ByName["b00r2_exec"]
	if !okOld || !okNew {
		t.Fatalf("renamed module helpers missing: old %v new %v", okOld, okNew)
	}
	if oldRen.Addr != newRen.Addr {
		t.Errorf("renamed helper moved: old %#x new %#x", oldRen.Addr, newRen.Addr)
	}
	if _, ok := newProg.ByName["b00r1_exec"]; ok {
		t.Errorf("old renamed-module name survived into new version")
	}
}

// screening.go generates a randomized screening corpus: many small
// firmware binaries, each either carrying exactly one planted taint-style
// vulnerability or a properly sanitized variant of the same code shape.
// Running the detector over the corpus measures its precision and recall
// against known ground truth — the quantitative robustness check behind
// the paper's qualitative "more vulnerabilities, no false alarms" claims.
package corpus

import (
	"fmt"
	"strings"

	"dtaint/internal/asm"
	"dtaint/internal/image"
	"dtaint/internal/isa"
	"dtaint/internal/taint"
)

// ScreeningCase is one generated binary with its ground truth.
type ScreeningCase struct {
	Name    string
	Binary  *image.Binary
	HasVuln bool
	Class   taint.Class
	Shape   string // template name, for failure diagnostics
}

// screeningTemplate writes one code shape in vulnerable or sanitized form.
type screeningTemplate struct {
	name  string
	class taint.Class
	emit  func(e emitter, vulnerable bool)
}

var screeningTemplates = []screeningTemplate{
	{
		name:  "getenv-system",
		class: taint.ClassCommandInjection,
		emit: func(e emitter, vulnerable bool) {
			e.writef(".data sk \"CMD\"\n.func handler\n  MOV %%a0%%, =sk\n  BL getenv\n  MOV %%t0%%, %%rt%%\n")
			if !vulnerable {
				e.writef("  MOV %%a0%%, %%t0%%\n  MOV %%a1%%, #0x3B\n  BL strchr\n  CMP %%rt%%, #0\n  BNE handler_rej\n")
			}
			e.writef("  MOV %%a0%%, %%t0%%\n  BL system\nhandler_rej:\n  BX LR\n.endfunc\n")
		},
	},
	{
		name:  "getenv-strcpy",
		class: taint.ClassBufferOverflow,
		emit: func(e emitter, vulnerable bool) {
			e.writef(".data sk \"UID\"\n.func handler\n  SUB SP, SP, #0x40\n  MOV %%a0%%, =sk\n  BL getenv\n  MOV %%t0%%, %%rt%%\n")
			if !vulnerable {
				e.writef("  MOV %%a0%%, %%t0%%\n  BL strlen\n  CMP %%rt%%, #0x20\n  BGE handler_rej\n")
			}
			e.writef("  MOV %%a1%%, %%t0%%\n  ADD %%a0%%, SP, #0\n  BL strcpy\nhandler_rej:\n  BX LR\n.endfunc\n")
		},
	},
	{
		name:  "read-memcpy",
		class: taint.ClassBufferOverflow,
		emit: func(e emitter, vulnerable bool) {
			e.writef(".func handler\n  SUB SP, SP, #0x60\n  ADD %%t0%%, SP, #0x20\n  MOV %%a1%%, %%t0%%\n  MOV %%a0%%, #0\n  MOV %%a2%%, #0x40\n  BL read\n")
			if vulnerable {
				// Attacker-derived length.
				e.writef("  MOV %%a0%%, %%t0%%\n  BL strlen\n  MOV %%a2%%, %%rt%%\n")
			} else {
				// Constant length within the destination buffer.
				e.writef("  MOV %%a2%%, #0x10\n")
			}
			e.writef("  MOV %%a1%%, %%t0%%\n  ADD %%a0%%, SP, #0\n  BL memcpy\n  BX LR\n.endfunc\n")
		},
	},
	{
		name:  "loop-copy",
		class: taint.ClassBufferOverflow,
		emit: func(e emitter, vulnerable bool) {
			bound := "#0x800"
			if !vulnerable {
				bound = "#0x10"
			}
			e.writef(`.func handler
  SUB SP, SP, #0x830
  ADD %%t0%%, SP, #0x30
  MOV %%a1%%, %%t0%%
  MOV %%a0%%, #0
  MOV %%a2%%, #0x800
  BL read
  ADD %%t1%%, SP, #4
  MOV %%t2%%, #0
handler_lp:
  LDRB %%t3%%, [%%t0%%, #0]
  STRB %%t3%%, [%%t1%%, #0]
  ADD %%t0%%, %%t0%%, #1
  ADD %%t1%%, %%t1%%, #1
  ADD %%t2%%, %%t2%%, #1
  CMP %%t2%%, `)
			e.writef("%s\n  BLT handler_lp\n  BX LR\n.endfunc\n", bound)
		},
	},
	{
		name:  "recv-sscanf",
		class: taint.ClassBufferOverflow,
		emit: func(e emitter, vulnerable bool) {
			fmtStr := "Session: %254s"
			if !vulnerable {
				fmtStr = "Session: %16s"
			}
			// The width is passed as an argument, so no printf-escaping is
			// applied to it.
			e.writef(".data sf \"%s\"\n", fmtStr)
			e.writef(`.func handler
  SUB SP, SP, #0x2C4
  ADD %%t0%%, SP, #0x50
  MOV %%a1%%, %%t0%%
  MOV %%a0%%, #0
  MOV %%a2%%, #0x200
  BL recv
  MOV %%a0%%, %%t0%%
  MOV %%a1%%, =sf
  ADD %%a2%%, SP, #0x210
  BL sscanf
  BX LR
.endfunc
`)
		},
	},
	{
		// Provable only with the interval domain: fgets(buf, n, f) writes
		// at most n-1 content bytes, so the strcpy is safe iff n-1 fits
		// the destination with room for the NUL. The sanitized form has no
		// explicit length check at all — the structural/constraint checks
		// alone cannot clear it.
		name:  "fgets-strcpy-bounded",
		class: taint.ClassBufferOverflow,
		emit: func(e emitter, vulnerable bool) {
			n := "#0x20"
			if vulnerable {
				n = "#0x80"
			}
			e.writef(".func handler\n  SUB SP, SP, #0xC0\n  ADD %%t0%%, SP, #0\n  MOV %%a0%%, %%t0%%\n  MOV %%a1%%, %s\n  MOV %%a2%%, #0\n  BL fgets\n", n)
			e.writef("  MOV %%a1%%, %%t0%%\n  ADD %%a0%%, SP, #0x80\n  BL strcpy\n  BX LR\n.endfunc\n")
		},
	},
	{
		// The `<=` boundary blunder: the guard rejects len > 64 but the
		// 64-byte destination also needs the NUL terminator, so len == 64
		// overruns by exactly one byte. The sanitized form rejects
		// len >= 64.
		name:  "offbyone-strcpy",
		class: taint.ClassOffByOne,
		emit: func(e emitter, vulnerable bool) {
			rej := "BGE"
			if vulnerable {
				rej = "BGT"
			}
			e.writef(".func handler\n  SUB SP, SP, #0x140\n  ADD %%t0%%, SP, #0x40\n  MOV %%a1%%, %%t0%%\n  MOV %%a0%%, #0\n  MOV %%a2%%, #0x100\n  BL recv\n")
			e.writef("  MOV %%a0%%, %%t0%%\n  BL strlen\n  CMP %%rt%%, #0x40\n  %s handler_rej\n", rej)
			e.writef("  MOV %%a1%%, %%t0%%\n  ADD %%a0%%, SP, #0x100\n  BL strcpy\nhandler_rej:\n  BX LR\n.endfunc\n")
		},
	},
	{
		// A tainted length squeezed through a 1-byte store: the truncated
		// value defeats any later bound check (CWE-197). The sanitized
		// form masks the length into the byte range first.
		name:  "truncated-length",
		class: taint.ClassLengthTruncation,
		emit: func(e emitter, vulnerable bool) {
			e.writef(".func handler\n  SUB SP, SP, #0x90\n  ADD %%t0%%, SP, #0x10\n  MOV %%a1%%, %%t0%%\n  MOV %%a0%%, #0\n  MOV %%a2%%, #0x80\n  BL recv\n")
			e.writef("  MOV %%a0%%, %%t0%%\n  BL strlen\n  MOV %%t1%%, %%rt%%\n")
			if !vulnerable {
				e.writef("  AND %%t1%%, %%t1%%, #0x7F\n")
			}
			e.writef("  ADD %%t2%%, SP, #0\n  STRB %%t1%%, [%%t2%%, #0]\n  BX LR\n.endfunc\n")
		},
	},
	{
		// The NVRAM extension: router firmware reads attacker-persisted
		// configuration through nvram_get, which taints like getenv.
		name:  "nvram-strcpy",
		class: taint.ClassBufferOverflow,
		emit: func(e emitter, vulnerable bool) {
			e.writef(".data nk \"lan_ipaddr\"\n.func handler\n  SUB SP, SP, #0x40\n  MOV %%a0%%, =nk\n  BL nvram_get\n  MOV %%t0%%, %%rt%%\n")
			if !vulnerable {
				e.writef("  MOV %%a0%%, %%t0%%\n  BL strlen\n  CMP %%rt%%, #0x20\n  BGE handler_rej\n")
			}
			e.writef("  MOV %%a1%%, %%t0%%\n  ADD %%a0%%, SP, #0\n  BL strcpy\nhandler_rej:\n  BX LR\n.endfunc\n")
		},
	},
	{
		// A second NVRAM getter feeding the shell: the classic router
		// command-injection shape, sanitized by a ';' scan.
		name:  "nvram-system",
		class: taint.ClassCommandInjection,
		emit: func(e emitter, vulnerable bool) {
			e.writef(".data wk \"wan_ifname\"\n.func handler\n  MOV %%a0%%, =wk\n  BL nvram_safe_get\n  MOV %%t0%%, %%rt%%\n")
			if !vulnerable {
				e.writef("  MOV %%a0%%, %%t0%%\n  MOV %%a1%%, #0x3B\n  BL strchr\n  CMP %%rt%%, #0\n  BNE handler_rej\n")
			}
			e.writef("  MOV %%a0%%, %%t0%%\n  BL system\nhandler_rej:\n  BX LR\n.endfunc\n")
		},
	},
	{
		// Format-string extension (CWE-134): network data used directly
		// as the printf format. The sanitized form logs through a
		// constant format with the data demoted to a variadic argument.
		name:  "recv-printf",
		class: taint.ClassFormatString,
		emit: func(e emitter, vulnerable bool) {
			e.writef(".data lf \"%s\"\n", "log: %s")
			e.writef(".func handler\n  SUB SP, SP, #0x110\n  ADD %%t0%%, SP, #8\n  MOV %%a1%%, %%t0%%\n  MOV %%a0%%, #0\n  MOV %%a2%%, #0x100\n  BL recv\n")
			if vulnerable {
				e.writef("  MOV %%a0%%, %%t0%%\n  BL printf\n")
			} else {
				e.writef("  MOV %%a0%%, =lf\n  MOV %%a1%%, %%t0%%\n  BL printf\n")
			}
			e.writef("  BX LR\n.endfunc\n")
		},
	},
	{
		// Path-traversal extension (CWE-22): an environment-supplied path
		// opened without probing for the '.' climb marker; the sanitized
		// form scans for '.' first, mirroring the ';' command rule.
		name:  "getenv-fopen",
		class: taint.ClassPathTraversal,
		emit: func(e emitter, vulnerable bool) {
			e.writef(".data pk \"PATH_INFO\"\n.data om \"r\"\n.func handler\n  MOV %%a0%%, =pk\n  BL getenv\n  MOV %%t0%%, %%rt%%\n")
			if !vulnerable {
				e.writef("  MOV %%a0%%, %%t0%%\n  MOV %%a1%%, #0x2E\n  BL strchr\n  CMP %%rt%%, #0\n  BNE handler_rej\n")
			}
			e.writef("  MOV %%a0%%, %%t0%%\n  MOV %%a1%%, =om\n  BL fopen\nhandler_rej:\n  BX LR\n.endfunc\n")
		},
	},
	{
		// The ops-struct idiom: a function pointer registered into a
		// dispatch table field and invoked through two loads and BLX.
		// Struct-layout similarity alone cannot resolve the callsite — the
		// table pointer is itself loaded from the object, so the site's
		// access path only matches the registration through the SSE alias
		// class built from register's stored-pointer fact. The handler is
		// only reachable through the indirect call, so detection requires
		// the resolution.
		name:  "fnptr-table-dispatch",
		class: taint.ClassBufferOverflow,
		emit: func(e emitter, vulnerable bool) {
			e.writef(".func handler\n  SUB SP, SP, #0x40\n  LDR %%t0%%, [%%a0%%, #0]\n")
			if !vulnerable {
				e.writef("  MOV %%a0%%, %%t0%%\n  BL strlen\n  CMP %%rt%%, #0x20\n  BGE handler_rej\n")
			}
			e.writef("  MOV %%a1%%, %%t0%%\n  ADD %%a0%%, SP, #8\n  BL strcpy\nhandler_rej:\n  BX LR\n.endfunc\n")
			e.writef(`.func register
  STR %%a1%%, [%%a0%%, #8]
  MOV %%t0%%, &handler
  STR %%t0%%, [%%a1%%, #4]
  MOV %%t1%%, #0
  STR %%t1%%, [%%a0%%, #0]
  BX LR
.endfunc
.func dispatch
  MOV %%t0%%, %%a0%%
  LDR %%a1%%, [%%t0%%, #0]
  MOV %%a0%%, #0
  MOV %%a2%%, #0x100
  BL recv
  MOV %%a0%%, %%t0%%
  LDR %%t1%%, [%%t0%%, #8]
  LDR %%t2%%, [%%t1%%, #4]
  BLX %%t2%%
  BX LR
.endfunc
`)
		},
	},
	{
		// A nested-struct pointer handoff: the handler address sits three
		// loads deep (obj → mid → ops → fn), with each link stored by a
		// separate fact in register. Resolving the BLX needs the chained
		// substitution through the alias classes — exactly the transitive
		// reach Algorithm 1's one-shot pairwise rewriting lacks.
		name:  "nested-struct-handoff",
		class: taint.ClassBufferOverflow,
		emit: func(e emitter, vulnerable bool) {
			e.writef(".func handler\n  SUB SP, SP, #0x40\n  LDR %%t0%%, [%%a0%%, #0]\n")
			if !vulnerable {
				e.writef("  MOV %%a0%%, %%t0%%\n  BL strlen\n  CMP %%rt%%, #0x20\n  BGE handler_rej\n")
			}
			e.writef("  MOV %%a1%%, %%t0%%\n  ADD %%a0%%, SP, #8\n  BL strcpy\nhandler_rej:\n  BX LR\n.endfunc\n")
			e.writef(`.func register
  STR %%a1%%, [%%a0%%, #16]
  STR %%a2%%, [%%a1%%, #8]
  MOV %%t0%%, &handler
  STR %%t0%%, [%%a2%%, #4]
  BX LR
.endfunc
.func dispatch
  MOV %%t0%%, %%a0%%
  LDR %%a1%%, [%%t0%%, #0]
  MOV %%a0%%, #0
  MOV %%a2%%, #0x100
  BL recv
  MOV %%a0%%, %%t0%%
  LDR %%t1%%, [%%t0%%, #16]
  LDR %%t2%%, [%%t1%%, #8]
  LDR %%t3%%, [%%t2%%, #4]
  BLX %%t3%%
  BX LR
.endfunc
`)
		},
	},
	{
		name:  "masked-memcpy",
		class: taint.ClassBufferOverflow,
		emit: func(e emitter, vulnerable bool) {
			e.writef(".func handler\n  SUB SP, SP, #0x50\n  ADD %%t0%%, SP, #0x10\n  MOV %%a1%%, %%t0%%\n  MOV %%a0%%, #0\n  MOV %%a2%%, #0x40\n  BL recv\n  LDRB %%t1%%, [%%t0%%, #0]\n")
			if !vulnerable {
				e.writef("  AND %%t1%%, %%t1%%, #0x0F\n")
			} else {
				e.writef("  LDRB %%t2%%, [%%t0%%, #1]\n  LSL %%t2%%, %%t2%%, #8\n  ORR %%t1%%, %%t1%%, %%t2%%\n")
			}
			e.writef("  MOV %%a1%%, %%t0%%\n  ADD %%a0%%, SP, #0\n  MOV %%a2%%, %%t1%%\n  BL memcpy\n  BX LR\n.endfunc\n")
		},
	},
}

// ScreeningCorpus deterministically generates n screening binaries from
// the seed: random template, random vulnerable/sanitized form, random
// architecture flavor, with some benign filler around the handler.
func ScreeningCorpus(n int, seed uint64) ([]ScreeningCase, error) {
	rng := newLCG(seed)
	out := make([]ScreeningCase, 0, n)
	for i := 0; i < n; i++ {
		tpl := screeningTemplates[rng.intn(len(screeningTemplates))]
		vulnerable := rng.intn(2) == 0
		arch := isa.ArchARM
		if rng.intn(2) == 0 {
			arch = isa.ArchMIPS
		}
		var b strings.Builder
		fmt.Fprintf(&b, ".arch %s\n", strings.ToLower(arch.String()))
		emitImports(&b)
		em := emitter{b: &b, cv: regmap(arch)}
		tpl.emit(em, vulnerable)
		emitFiller(em, shape{
			Funcs:            2 + rng.intn(4),
			BlocksPerFunc:    5,
			CallsPerFunc:     2,
			SinkRatePermille: 250,
			Prefix:           "fill",
		}, rng)
		name := fmt.Sprintf("scr_%04d_%s", i, tpl.name)
		bin, err := asm.Assemble(name, b.String())
		if err != nil {
			return nil, fmt.Errorf("screening case %s: %w", name, err)
		}
		out = append(out, ScreeningCase{
			Name:    name,
			Binary:  bin,
			HasVuln: vulnerable,
			Class:   tpl.class,
			Shape:   tpl.name,
		})
	}
	return out, nil
}

// overlap.go generates corpora with controlled cross-image overlap: many
// firmware images cycling a small set of binary variants (exact duplicate
// binaries), where every variant starts with an identical shared module
// (shared functions at identical addresses) followed by a variant-private
// filler family. This is the workload the corpus-scale caches are built
// for — the report cache collapses the duplicate binaries and the summary
// store collapses the shared functions of the non-duplicate variants.
package corpus

import (
	"fmt"
	"math"
	"strings"

	"dtaint/internal/asm"
	"dtaint/internal/firmware"
	"dtaint/internal/isa"
)

// OverlapSpec describes an overlap corpus. The two overlap ratios are
// directly controlled: (Images-Variants)/Images of the corpus's binaries
// are exact duplicates, and SharedFuncs/(SharedFuncs+UniqueFuncs) of each
// variant's functions are byte-identical across variants.
type OverlapSpec struct {
	// Images is the number of firmware images. Image i ships the binary
	// of variant i%Variants, so every variant after the first Variants
	// images is an exact duplicate.
	Images int
	// Variants is the number of distinct binaries.
	Variants int
	// SharedFuncs sizes the shared module emitted first in every variant:
	// the planted vulnerability plus a filler family seeded from Seed
	// alone, so its bytes and addresses are identical in every variant.
	SharedFuncs int
	// UniqueFuncs sizes each variant's private filler family, seeded from
	// Seed and the variant index.
	UniqueFuncs int
	Arch        isa.Arch
	Seed        uint64
}

// OverlapAt is the corpus scale knob: 1.0 yields a two-hundred-image
// corpus, 10 a two-thousand-image one. Image count grows linearly with
// scale; the variant count grows with its square root so the unique
// analysis work stays a shrinking fraction of the corpus.
func OverlapAt(scale float64) OverlapSpec {
	if scale <= 0 {
		scale = 1
	}
	return OverlapSpec{
		Images:      scaleInt(200, scale, 6),
		Variants:    scaleInt(8, math.Sqrt(scale), 2),
		SharedFuncs: 96,
		UniqueFuncs: 32,
		Arch:        isa.ArchARM,
		Seed:        7,
	}
}

// normalized clamps a spec to buildable values.
func (s OverlapSpec) normalized() OverlapSpec {
	if s.Images < 1 {
		s.Images = 1
	}
	if s.Variants < 1 {
		s.Variants = 1
	}
	if s.Variants > s.Images {
		s.Variants = s.Images
	}
	// The shared module always contains the planted vulnerability
	// (helper + two callers) plus at least a minimal filler family.
	if s.SharedFuncs < 7 {
		s.SharedFuncs = 7
	}
	if s.UniqueFuncs < 4 {
		s.UniqueFuncs = 4
	}
	if s.Arch != isa.ArchMIPS {
		s.Arch = isa.ArchARM
	}
	return s
}

// DuplicateBinaryRatio is the fraction of the corpus's binaries that are
// exact duplicates of an earlier image's binary.
func (s OverlapSpec) DuplicateBinaryRatio() float64 {
	s = s.normalized()
	return float64(s.Images-s.Variants) / float64(s.Images)
}

// SharedFunctionRatio is the fraction of each variant's functions that
// are byte-identical across variants.
func (s OverlapSpec) SharedFunctionRatio() float64 {
	s = s.normalized()
	return float64(s.SharedFuncs) / float64(s.SharedFuncs+s.UniqueFuncs)
}

// OverlapCorpus is a built overlap corpus.
type OverlapCorpus struct {
	Spec OverlapSpec
	// Images holds the packed FWIMG containers in corpus order. Image i
	// embeds Binaries[i%len(Binaries)] byte-for-byte.
	Images [][]byte
	// Binaries holds one marshalled FWELF binary per variant.
	Binaries [][]byte
	// Planted is the shared-module vulnerability, present in every
	// variant at the same addresses.
	Planted Planted
}

// BuildOverlapCorpus builds the corpus described by spec. Each variant
// binary is assembled once and its bytes reused by every image that
// ships it; generation is deterministic for a given spec.
func BuildOverlapCorpus(spec OverlapSpec) (*OverlapCorpus, error) {
	spec = spec.normalized()
	c := &OverlapCorpus{Spec: spec}
	for v := 0; v < spec.Variants; v++ {
		src, planted := overlapVariantSource(spec, v)
		bin, err := asm.Assemble("netsvc", src)
		if err != nil {
			return nil, fmt.Errorf("corpus: overlap variant %d: %w", v, err)
		}
		raw, err := bin.Marshal()
		if err != nil {
			return nil, fmt.Errorf("corpus: overlap variant %d: %w", v, err)
		}
		c.Binaries = append(c.Binaries, raw)
		c.Planted = planted
	}
	for i := 0; i < spec.Images; i++ {
		img, err := packOverlapImage(spec, i, c.Binaries[i%spec.Variants])
		if err != nil {
			return nil, fmt.Errorf("corpus: overlap image %d: %w", i, err)
		}
		c.Images = append(c.Images, img)
	}
	return c, nil
}

// overlapVariantSource emits one variant's assembly. The shared module —
// the planted vulnerability and a filler family driven by a generator
// seeded from Seed alone — comes first, so its text and rodata occupy an
// identical prefix at identical addresses in every variant (the filler
// emits no rodata, and the import table is the fixed emitImports list).
// The variant-private filler family follows.
func overlapVariantSource(spec OverlapSpec, v int) (string, Planted) {
	var b strings.Builder
	b.Grow(1 << 18)
	fmt.Fprintf(&b, "; overlap corpus variant %02d/%02d\n", v, spec.Variants)
	fmt.Fprintf(&b, ".arch %s\n", strings.ToLower(spec.Arch.String()))
	emitImports(&b)

	em := emitter{b: &b, cv: regmap(spec.Arch)}
	planted := emitGetenvStrcpy(em, "shr_sess", "OVL-SHARED-1", 2, true, "")
	emitFiller(em, shape{
		Funcs:            spec.SharedFuncs - 3, // planted = helper + 2 callers
		BlocksPerFunc:    9,
		CallsPerFunc:     3,
		SinkRatePermille: 200,
		Prefix:           "shr",
	}, newLCG(spec.Seed*1013904223+11))

	emitFiller(em, shape{
		Funcs:            spec.UniqueFuncs,
		BlocksPerFunc:    9,
		CallsPerFunc:     3,
		SinkRatePermille: 200,
		Prefix:           fmt.Sprintf("u%02d", v),
	}, newLCG(spec.Seed*2654435761+uint64(v+1)*977))
	return b.String(), planted
}

// packOverlapImage wraps a variant binary in a FWIMG container with the
// usual rootfs stubs. Headers vary per image (distinct product strings),
// so the corpus exercises cross-image — not just same-bytes-image —
// binary dedup.
func packOverlapImage(spec OverlapSpec, idx int, raw []byte) ([]byte, error) {
	fs := &firmware.FS{}
	files := []firmware.File{
		{Path: "/bin/busybox", Mode: 0o755, Data: []byte("busybox-stub")},
		{Path: "/etc/passwd", Mode: 0o644, Data: []byte("root::0:0::/:/bin/sh\n")},
		{Path: "/etc/version", Mode: 0o644, Data: []byte("1.0")},
		{Path: "/usr/sbin/netsvc", Mode: 0o755, Data: raw},
	}
	for _, f := range files {
		if err := fs.Add(f); err != nil {
			return nil, err
		}
	}
	payload, err := firmware.MarshalFS(fs)
	if err != nil {
		return nil, err
	}
	img := &firmware.Image{
		Header: firmware.Header{
			Vendor:  "OverlapCo",
			Product: fmt.Sprintf("OVL-%04d", idx),
			Version: "1.0",
			Year:    2026,
			Arch:    spec.Arch,
			Boot: firmware.BootRequirements{
				Peripherals: []string{"nvram", "flash"},
			},
		},
		Parts: []firmware.Part{
			{Type: firmware.PartKernel, Data: []byte("kernel-stub")},
			{Type: firmware.PartRootFS, Data: payload},
		},
	}
	return firmware.Pack(img)
}

// population.go generates the 6,529-image metadata corpus behind the
// paper's Section II-A study (Figure 1): firmware collected from 12
// manufacturers, released 2009-2016, of which more than 65% cannot be
// unpacked and only 670 boot in a FIRMADYNE-style emulator.
package corpus

import (
	"fmt"

	"dtaint/internal/firmware"
	"dtaint/internal/isa"
)

// PopulationSize is the total number of collected firmware images.
const PopulationSize = 6529

// EmulableTotal is the number of images that boot successfully
// ("less than 670" in the text; 6,529 - 5,859 failed = 670).
const EmulableTotal = 670

// populationYears lists release years with their image counts (rising
// with the IoT market) and the per-year emulation successes. The counts
// sum to PopulationSize and EmulableTotal respectively.
var populationYears = []struct {
	Year    int
	Total   int
	Success int
}{
	{2009, 312, 55},
	{2010, 428, 62},
	{2011, 561, 70},
	{2012, 702, 78},
	{2013, 845, 85},
	{2014, 1021, 92},
	{2015, 1232, 105},
	{2016, 1428, 123},
}

// vendors are the 12 manufacturers of the collection study.
var vendors = []string{
	"D-Link", "Netgear", "TP-Link", "Linksys", "Tenda", "Zyxel",
	"Hikvision", "Uniview", "Dahua", "Axis", "Belkin", "Trendnet",
}

// unpackFailPermille models the >65% of images Binwalk-style extraction
// cannot unpack (encrypted, incomplete, or unrecognized).
const unpackFailPermille = 655

// Population deterministically generates the full metadata corpus. The
// images carry real (tiny) rootfs payloads so the emulation model runs the
// genuine unpack step; per-image boot requirements encode the three
// failure modes.
func Population() []*firmware.Image {
	bootFS := &firmware.FS{}
	if err := bootFS.Add(firmware.File{Path: "/sbin/init", Mode: 0o755, Data: []byte("init-stub")}); err != nil {
		panic("corpus: build boot fs: " + err.Error())
	}
	emptyFS, err := firmware.MarshalFS(bootFS)
	if err != nil {
		// Cannot happen: marshaling a tiny filesystem is infallible.
		panic("corpus: marshal boot fs: " + err.Error())
	}
	rng := newLCG(20180625) // DSN 2018 camera-ready week; any fixed seed works

	images := make([]*firmware.Image, 0, PopulationSize)
	for _, y := range populationYears {
		unpackFails := y.Total * unpackFailPermille / 1000
		for i := 0; i < y.Total; i++ {
			vendor := vendors[rng.intn(len(vendors))]
			arch := isa.ArchARM
			if rng.intn(2) == 0 {
				arch = isa.ArchMIPS
			}
			img := &firmware.Image{
				Header: firmware.Header{
					Vendor:  vendor,
					Product: fmt.Sprintf("%s-%d-%04d", vendor, y.Year, i),
					Version: fmt.Sprintf("1.%d.%d", rng.intn(10), rng.intn(100)),
					Year:    y.Year,
					Arch:    arch,
				},
			}
			part := firmware.Part{Type: firmware.PartRootFS, Data: emptyFS}
			switch {
			case i < y.Success:
				// Boots: generic peripherals and standard NVRAM keys only.
				img.Header.Boot = firmware.BootRequirements{
					Peripherals: []string{"nvram", "uart"},
					NVRAMKeys:   []string{"lan_ipaddr"},
				}
			case i < y.Success+unpackFails:
				// Extraction fails: vendor-encrypted rootfs.
				part.Flags = firmware.FlagEncrypted
			case rng.intn(4) == 0:
				// Network configuration fails: proprietary NVRAM keys.
				img.Header.Boot = firmware.BootRequirements{
					Peripherals: []string{"nvram"},
					NVRAMKeys:   []string{fmt.Sprintf("%s_factory_key", vendor)},
				}
			default:
				// Custom hardware the emulator does not provide.
				img.Header.Boot = firmware.BootRequirements{
					Peripherals: []string{"nvram", fmt.Sprintf("asic-%s-%d", vendor, rng.intn(8))},
				}
			}
			img.Parts = []firmware.Part{part}
			images = append(images, img)
		}
	}
	return images
}

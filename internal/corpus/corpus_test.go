package corpus

import (
	"testing"

	"dtaint/internal/cfg"
	"dtaint/internal/dataflow"
	"dtaint/internal/emul"
	"dtaint/internal/firmware"
	"dtaint/internal/taint"
)

// testScale keeps unit tests fast; detection results are scale-invariant
// because planted code is never scaled.
const testScale = 0.05

func TestStudyImagesWellFormed(t *testing.T) {
	specs := StudyImages()
	if len(specs) != 6 {
		t.Fatalf("study images = %d, want 6", len(specs))
	}
	totalVulns, totalZero := 0, 0
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Product, func(t *testing.T) {
			bin, planted, err := BuildBinary(spec, testScale)
			if err != nil {
				t.Fatal(err)
			}
			if bin.Arch != spec.Arch {
				t.Errorf("arch = %v, want %v", bin.Arch, spec.Arch)
			}
			if len(planted) == 0 {
				t.Fatal("no planted vulnerabilities")
			}
			totalVulns += ExpectedVulns(planted)
			totalZero += ExpectedZeroDays(planted)
			// Every planted sink function must exist in the binary.
			for _, p := range planted {
				if _, ok := bin.FuncByName(p.SinkFunc); !ok {
					t.Errorf("planted sink function %s missing", p.SinkFunc)
				}
			}
		})
	}
	// The paper's bottom line: 21 vulnerabilities, 13 zero-days.
	if totalVulns != 21 {
		t.Errorf("total planted vulnerabilities = %d, want 21", totalVulns)
	}
	if totalZero != 13 {
		t.Errorf("total planted zero-days = %d, want 13", totalZero)
	}
}

func TestPathTotalsMatchTableIII(t *testing.T) {
	want := map[string]struct{ paths, vulns int }{
		"DIR-645":     {7, 4},
		"DIR-890L":    {5, 2},
		"DGN1000":     {19, 6},
		"DGN2200":     {14, 2},
		"IPC_6201":    {10, 1},
		"DS-2CD6233F": {30, 6},
	}
	for _, spec := range StudyImages() {
		_, planted := BuildSource(spec, testScale)
		w := want[spec.Product]
		if got := ExpectedPaths(planted); got != w.paths {
			t.Errorf("%s: planted paths = %d, want %d", spec.Product, got, w.paths)
		}
		if got := ExpectedVulns(planted); got != w.vulns {
			t.Errorf("%s: planted vulns = %d, want %d", spec.Product, got, w.vulns)
		}
	}
}

// TestDetectionMatchesGroundTruth is the core end-to-end check: DTaint
// must find exactly the planted vulnerabilities in every study image —
// right sink function, right source, right class — and nothing else.
func TestDetectionMatchesGroundTruth(t *testing.T) {
	for _, spec := range StudyImages() {
		spec := spec
		t.Run(spec.Product, func(t *testing.T) {
			bin, planted, err := BuildBinary(spec, testScale)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := cfg.Build(bin)
			if err != nil {
				t.Fatal(err)
			}
			res, err := dataflow.Analyze(prog, dataflow.Options{Filter: ModuleFilter(spec)})
			if err != nil {
				t.Fatal(err)
			}
			vulns := res.Vulnerabilities()
			if len(vulns) != len(planted) {
				for _, v := range vulns {
					t.Logf("found: %s", v.String())
				}
				t.Fatalf("found %d vulnerabilities, want %d", len(vulns), len(planted))
			}
			paths := res.VulnerablePaths()
			if len(paths) != ExpectedPaths(planted) {
				for _, p := range paths {
					t.Logf("path: %s", p.String())
				}
				t.Fatalf("found %d paths, want %d", len(paths), ExpectedPaths(planted))
			}
			// Each planted vuln matched by sink function and source.
			for _, p := range planted {
				matched := false
				for _, v := range vulns {
					if v.SinkFunc == p.SinkFunc && v.Source == p.Source &&
						v.Sink == p.Sink && v.Class == p.Class {
						matched = true
					}
				}
				if !matched {
					for _, v := range vulns {
						t.Logf("found: %s", v.String())
					}
					t.Fatalf("planted %s (%s->%s in %s) not detected",
						p.ID, p.Source, p.Sink, p.SinkFunc)
				}
			}
		})
	}
}

// TestAblationsLoseFeatureDependentVulns verifies the paper's claim that
// the Hikvision findings depend on pointer aliasing and data-structure
// similarity.
func TestAblationsLoseFeatureDependentVulns(t *testing.T) {
	spec, ok := SpecByProduct("DS-2CD6233F")
	if !ok {
		t.Fatal("spec missing")
	}
	bin, planted, err := BuildBinary(spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Analyze mutates the program's call graph (indirect-call resolution),
	// so each configuration gets a fresh CFG.
	count := func(opts dataflow.Options) int {
		prog, err := cfg.Build(bin)
		if err != nil {
			t.Fatal(err)
		}
		opts.Filter = ModuleFilter(spec)
		res, err := dataflow.Analyze(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Vulnerabilities())
	}
	full := count(dataflow.Options{})
	if full != len(planted) {
		t.Fatalf("full analysis found %d, want %d", full, len(planted))
	}
	needs := func(feature string) int {
		n := 0
		for _, p := range planted {
			for _, f := range p.Needs {
				if f == feature {
					n++
				}
			}
		}
		return n
	}
	noAlias := count(dataflow.Options{DisableAlias: true})
	if want := full - needs("alias"); noAlias != want {
		t.Errorf("alias ablation found %d, want %d", noAlias, want)
	}
	noSim := count(dataflow.Options{DisableStructSim: true})
	if want := full - needs("structsim"); noSim != want {
		t.Errorf("structsim ablation found %d, want %d", noSim, want)
	}
}

func TestBuildFirmwareRoundTrip(t *testing.T) {
	spec := StudyImages()[0]
	data, planted, err := BuildFirmware(spec, testScale)
	if err != nil {
		t.Fatal(err)
	}
	img, fs, err := firmware.Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.Header.Vendor != "D-Link" || img.Header.Product != "DIR-645" {
		t.Fatalf("header = %+v", img.Header)
	}
	f, err := fs.Lookup("/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Data) == 0 || len(planted) != 4 {
		t.Fatalf("binary %d bytes, planted %d", len(f.Data), len(planted))
	}
}

func TestDeterminism(t *testing.T) {
	spec := StudyImages()[2]
	a, _ := BuildSource(spec, testScale)
	b, _ := BuildSource(spec, testScale)
	if a != b {
		t.Fatal("corpus generation is not deterministic")
	}
}

func TestScaleOneApproachesTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale build in -short mode")
	}
	// Check the smallest study image at full scale: function, block, and
	// edge counts within 15% of Table II.
	spec := StudyImages()[0] // cgibin, 237 funcs
	bin, _, err := BuildBinary(spec, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	st := prog.Stats()
	within := func(got, want int) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return float64(d) <= 0.15*float64(want)
	}
	if !within(st.Functions, spec.Funcs) {
		t.Errorf("functions = %d, want ≈%d", st.Functions, spec.Funcs)
	}
	if !within(st.Blocks, spec.Blocks) {
		t.Errorf("blocks = %d, want ≈%d", st.Blocks, spec.Blocks)
	}
	if !within(st.CallGraphEdges, spec.CallEdges) {
		t.Errorf("edges = %d, want ≈%d", st.CallGraphEdges, spec.CallEdges)
	}
}

func TestOpenSSLHeartbleed(t *testing.T) {
	bin, err := OpenSSL(testScale)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dataflow.Analyze(prog, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gt := HeartbleedGroundTruth()
	var found bool
	for _, v := range res.Vulnerabilities() {
		if v.SinkFunc == gt.SinkFunc && v.Sink == gt.Sink && v.Source == gt.Source {
			found = true
		}
	}
	if !found {
		for _, v := range res.Vulnerabilities() {
			t.Logf("found: %s", v.String())
		}
		t.Fatal("Heartbleed not detected")
	}
	if gt.Class != taint.ClassBufferOverflow {
		t.Fatal("ground truth class")
	}
}

func TestPopulationShape(t *testing.T) {
	images := Population()
	if len(images) != PopulationSize {
		t.Fatalf("population = %d, want %d", len(images), PopulationSize)
	}
	e := emul.New()
	stats := e.Study(images)
	if len(stats) != 8 {
		t.Fatalf("years = %d", len(stats))
	}
	success := 0
	for _, st := range stats {
		success += st.Success
		if st.Year < 2009 || st.Year > 2016 {
			t.Errorf("year %d out of range", st.Year)
		}
		// Success is a small fraction in every year.
		if st.Success*3 > st.Total {
			t.Errorf("year %d: %d/%d emulable — too many", st.Year, st.Success, st.Total)
		}
	}
	if success != EmulableTotal {
		t.Fatalf("emulable = %d, want %d", success, EmulableTotal)
	}
	// >65% unpack failures.
	unpackFails := 0
	for _, img := range images {
		if _, err := firmware.ExtractRootFS(img); err != nil {
			unpackFails++
		}
	}
	if ratio := float64(unpackFails) / float64(len(images)); ratio < 0.60 || ratio > 0.70 {
		t.Fatalf("unpack failure ratio = %.2f, want ≈0.65", ratio)
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a := Population()
	b := Population()
	if len(a) != len(b) {
		t.Fatal("length differs")
	}
	for i := range a {
		if a[i].Header.Product != b[i].Header.Product ||
			a[i].Header.Year != b[i].Header.Year {
			t.Fatalf("image %d differs", i)
		}
	}
}

package corpus

import (
	"bytes"
	"strings"
	"testing"

	"dtaint/internal/image"
)

func testOverlapSpec() OverlapSpec {
	return OverlapSpec{
		Images:      6,
		Variants:    2,
		SharedFuncs: 12,
		UniqueFuncs: 6,
		Seed:        3,
	}
}

func TestOverlapCorpusDeterministic(t *testing.T) {
	a, err := BuildOverlapCorpus(testOverlapSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildOverlapCorpus(testOverlapSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Images) != 6 || len(a.Binaries) != 2 {
		t.Fatalf("got %d images, %d binaries", len(a.Images), len(a.Binaries))
	}
	for i := range a.Images {
		if !bytes.Equal(a.Images[i], b.Images[i]) {
			t.Fatalf("image %d differs between identical builds", i)
		}
	}
}

func TestOverlapImagesCycleVariants(t *testing.T) {
	c, err := BuildOverlapCorpus(testOverlapSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Images 0 and 1 carry distinct binaries; image 2 repeats image 0's.
	if bytes.Equal(c.Binaries[0], c.Binaries[1]) {
		t.Fatal("variant binaries are identical; unique filler missing")
	}
	if !bytes.Contains(c.Images[2], c.Binaries[0]) {
		t.Fatal("image 2 does not embed variant 0's binary")
	}
	if !bytes.Contains(c.Images[1], c.Binaries[1]) {
		t.Fatal("image 1 does not embed variant 1's binary")
	}
	// Headers still differ, so dedup must be by binary content, not
	// image content.
	if bytes.Equal(c.Images[0], c.Images[2]) {
		t.Fatal("images sharing a variant should still differ (headers)")
	}
}

// TestOverlapSharedModuleIdentical verifies the property the summary
// store's cross-variant hits depend on: every shared-module function has
// the same address and code bytes in every variant.
func TestOverlapSharedModuleIdentical(t *testing.T) {
	c, err := BuildOverlapCorpus(testOverlapSpec())
	if err != nil {
		t.Fatal(err)
	}
	b0, err := image.Parse(c.Binaries[0])
	if err != nil {
		t.Fatal(err)
	}
	b1, err := image.Parse(c.Binaries[1])
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for _, s := range b0.Funcs {
		if !strings.HasPrefix(s.Name, "shr") {
			continue
		}
		shared++
		s1, ok := b1.FuncByName(s.Name)
		if !ok {
			t.Fatalf("%s missing from variant 1", s.Name)
		}
		if s1.Addr != s.Addr || s1.Size != s.Size {
			t.Fatalf("%s: variant 0 at %#x+%d, variant 1 at %#x+%d",
				s.Name, s.Addr, s.Size, s1.Addr, s1.Size)
		}
		c0, err := b0.FuncCode(s)
		if err != nil {
			t.Fatal(err)
		}
		c1, err := b1.FuncCode(s1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(c0, c1) {
			t.Fatalf("%s: code bytes differ across variants", s.Name)
		}
	}
	if shared < 12 {
		t.Fatalf("only %d shared functions found", shared)
	}
	if !bytes.Equal(b0.Rodata, b1.Rodata) {
		t.Fatal("rodata differs across variants")
	}
}

func TestOverlapAtScales(t *testing.T) {
	small := OverlapAt(1)
	big := OverlapAt(10)
	if small.Images != 200 {
		t.Fatalf("OverlapAt(1).Images = %d", small.Images)
	}
	if big.Images != 2000 {
		t.Fatalf("OverlapAt(10).Images = %d", big.Images)
	}
	if big.Variants <= small.Variants {
		t.Fatalf("variants should grow with scale: %d vs %d", big.Variants, small.Variants)
	}
	if r := small.DuplicateBinaryRatio(); r < 0.9 {
		t.Fatalf("duplicate ratio %.2f too low", r)
	}
	if r := small.SharedFunctionRatio(); r < 0.7 {
		t.Fatalf("shared-function ratio %.2f too low", r)
	}
}

package sumstore

import (
	"bytes"
	"encoding/binary"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dtaint/internal/expr"
	"dtaint/internal/isa"
	"dtaint/internal/symexec"
	"dtaint/internal/taint"
	"dtaint/internal/vrange"
)

var regen = flag.Bool("regen", false, "regenerate golden wire-format files")

// richSummary exercises every summary field, including deep and
// normalized expression trees (the codec must reproduce constructor
// fixed points exactly).
func richSummary() *symexec.Summary {
	arg0 := expr.Sym("arg0")
	field := expr.Deref(expr.Add(arg0, 0x4C))
	deep := expr.Deref(expr.Bin(expr.OpAdd, field, expr.Sym("idx")))
	return &symexec.Summary{
		Func: "tls1_process_heartbeat",
		Addr: 0x1000_0040,
		DefPairs: []DefPairAlias{
			{D: expr.Deref(expr.Add(expr.Sym("SP0"), 8)), U: field, Addr: 0x1000_0060, Size: 4},
			{D: expr.Sym("R0"), U: deep, Addr: 0x1000_0064, Size: 1},
		},
		Rets: []*expr.Expr{expr.Const(0), field},
		Calls: []symexec.CallRecord{
			{
				Addr: 0x1000_0070, Kind: 1, Callee: "memcpy",
				Args:   []*expr.Expr{expr.Sym("dst"), field, expr.Const(0x200)},
				Ret:    expr.Sym("ret_memcpy_10000070"),
				FnPtr:  nil,
				InLoop: true,
			},
			{Addr: 0x1000_0080, Kind: 2, Callee: "", FnPtr: deep},
		},
		Constraints: []symexec.Constraint{
			{L: field, R: expr.Const(0x100), Cond: isa.CondLT, Addr: 0x1000_0068, InLoop: false},
			{L: expr.Sym("n"), R: nil, Cond: isa.CondGE, Addr: 0x1000_006C, InLoop: true},
		},
		Types: map[string]expr.Type{
			"arg0":              expr.TypeCharPtr,
			field.Key():         expr.TypeUnknown,
			expr.Sym("n").Key(): expr.TypeConflict,
		},
		Fields: []symexec.FieldObs{
			{Base: arg0, Off: 0x4C, Ty: expr.TypeFuncPtr, FnTarget: "handler"},
			{Base: field, Off: -8, Ty: expr.TypeUnknown, FnTarget: ""},
		},
		LoopStores: []symexec.LoopStore{
			{Addr: 0x1000_0090, AddrExpr: expr.Add(expr.Sym("p"), 1), Val: deep, Size: 1},
		},
		UndefUses: []*expr.Expr{expr.Sym("R11")},
		Ranges: map[string]vrange.Interval{
			"arg0":      {Lo: 0, Hi: 0xFFFF},
			field.Key(): vrange.Bottom(),
		},
		BlocksAnalyzed: 17,
		StatesExplored: 233,
		Truncated:      true,
	}
}

// DefPairAlias keeps the literal above readable.
type DefPairAlias = symexec.DefPair

func richEntry() *Entry {
	step := []taint.Step{
		{Func: "rtsp_parse", Addr: 0x1000_0100, Note: "call memcpy"},
		{Func: "rtsp_recv", Addr: 0x1000_0200, Note: ""},
	}
	return &Entry{
		Summaries: []*symexec.Summary{richSummary()},
		Pendings: map[string][]taint.PendingSink{
			"rtsp_parse": {
				{
					Class: taint.ClassBufferOverflow, Sink: "memcpy",
					SinkFunc: "rtsp_parse", SinkAddr: 0x1000_0100,
					TaintExpr: expr.Deref(expr.Add(expr.Sym("arg0"), 0x4C)),
					GuardExpr: expr.Sym("g"),
					Path:      step,
					Constraints: []symexec.Constraint{
						{L: expr.Sym("len"), R: expr.Const(64), Cond: isa.CondGE, Addr: 0x1000_00F0},
					},
					Guarded: true, Depth: 3, DstCap: 152, BoundHint: -1,
				},
			},
		},
		Findings: []taint.Finding{
			{
				Class: taint.ClassCommandInjection, Sink: "system",
				SinkFunc: "cgi_exec", SinkAddr: 0x1000_0300,
				Source: "getenv", SourceAddr: 0x1000_0280,
				TaintExpr: expr.Sym("env"),
				Path:      step[:1],
				Sanitized: false,
				Evidence:  []string{"no ';' scan on any path", "interval [0,65535]"},
			},
			{
				Class: taint.ClassBufferOverflow, Sink: "strcpy",
				SinkFunc: "save", SinkAddr: 0x1000_0310,
				Source: "recv", SourceAddr: 0x1000_0290,
				Sanitized: true,
			},
		},
		DefPairs:  42,
		Truncated: 1,
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	want := richSummary()
	blob := EncodeSummary(want)
	got, err := DecodeSummary(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Re-encoding the decoded value must reproduce the bytes: decoding
	// rebuilds expressions through the public constructors, and stored
	// trees are constructor fixed points.
	if !bytes.Equal(EncodeSummary(got), blob) {
		t.Fatal("re-encode of decoded summary differs")
	}
}

func TestEntryRoundTrip(t *testing.T) {
	want := richEntry()
	blob := EncodeEntry(want)
	got, err := DecodeEntry(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if !bytes.Equal(EncodeEntry(got), blob) {
		t.Fatal("re-encode of decoded entry differs")
	}
}

func TestEmptyValuesRoundTrip(t *testing.T) {
	sum := &symexec.Summary{Func: "empty"}
	got, err := DecodeSummary(EncodeSummary(sum))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sum) {
		t.Fatalf("empty summary mismatch: %+v", got)
	}
	ent := &Entry{}
	gotEnt, err := DecodeEntry(EncodeEntry(ent))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotEnt, ent) {
		t.Fatalf("empty entry mismatch: %+v", gotEnt)
	}
}

// TestGoldenWireFormat pins the v1 encoding byte-for-byte. If this test
// fails because the format deliberately changed, bump FormatVersion and
// regenerate with: go test ./internal/sumstore -run Golden -regen
func TestGoldenWireFormat(t *testing.T) {
	for _, tc := range []struct {
		file string
		blob []byte
	}{
		{"summary_v1.golden", EncodeSummary(richSummary())},
		{"entry_v1.golden", EncodeEntry(richEntry())},
	} {
		path := filepath.Join("testdata", tc.file)
		if *regen {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.blob, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("regenerated %s (%d bytes)", path, len(tc.blob))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -regen to create)", err)
		}
		if !bytes.Equal(tc.blob, want) {
			t.Errorf("%s: encoding changed (%d bytes vs golden %d); bump FormatVersion and regenerate",
				tc.file, len(tc.blob), len(want))
		}
	}
}

// TestTruncationIsError feeds every proper prefix of a valid blob to the
// decoder: all must fail cleanly (a truncated store file is a cache
// miss, never a panic or a silent partial decode).
func TestTruncationIsError(t *testing.T) {
	blob := EncodeSummary(richSummary())
	for n := 0; n < len(blob); n++ {
		if _, err := DecodeSummary(blob[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(blob))
		}
	}
	ent := EncodeEntry(richEntry())
	for n := 0; n < len(ent); n++ {
		if _, err := DecodeEntry(ent[:n]); err == nil {
			t.Fatalf("entry prefix of %d/%d bytes decoded successfully", n, len(ent))
		}
	}
}

// TestCorruptionIsError flips every byte of a valid blob in turn; the
// CRC trailer must catch each one.
func TestCorruptionIsError(t *testing.T) {
	blob := EncodeSummary(richSummary())
	for i := range blob {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x41
		if _, err := DecodeSummary(bad); err == nil {
			t.Fatalf("flip at byte %d/%d decoded successfully", i, len(blob))
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	blob := append(EncodeSummary(richSummary()), 0)
	if _, err := DecodeSummary(blob); err == nil {
		t.Fatal("blob with trailing byte decoded successfully")
	}
}

// TestVersionBumpRejected patches the version field and fixes up the
// CRC so the version is the only inconsistency: the reader must refuse
// it, which is what makes a FormatVersion bump invalidate every stored
// blob at once.
func TestVersionBumpRejected(t *testing.T) {
	blob := append([]byte(nil), EncodeSummary(richSummary())...)
	binary.BigEndian.PutUint16(blob[4:6], FormatVersion+1)
	body := blob[:len(blob)-4]
	binary.BigEndian.PutUint32(blob[len(blob)-4:], crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)))
	if _, err := DecodeSummary(blob); err == nil {
		t.Fatal("future-version blob decoded successfully")
	}
}

func TestWrongKindRejected(t *testing.T) {
	// A summary blob handed to the entry decoder (and vice versa) must
	// fail even though magic, version, and CRC all check out.
	if _, err := DecodeEntry(EncodeSummary(richSummary())); err == nil {
		t.Fatal("entry decoder accepted a summary blob")
	}
	if _, err := DecodeSummary(EncodeEntry(richEntry())); err == nil {
		t.Fatal("summary decoder accepted an entry blob")
	}
}

package sumstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"dtaint/internal/cfg"
	"dtaint/internal/expr"
	"dtaint/internal/isa"
	"dtaint/internal/symexec"
	"dtaint/internal/taint"
	"dtaint/internal/vrange"
)

// Wire format, version 1:
//
//	"DTSS" | u16be version | u8 kind | payload | u32be CRC32-C
//
// The CRC covers everything before it, so random corruption — bit
// flips, truncation, a torn disk write — fails the checksum (or the
// strict length/bounds checks below) and decodes to an error, which
// the store counts as a miss. Payload integers are varints (unsigned)
// or zigzag varints (signed); strings and slices are length-prefixed;
// maps are serialized in sorted key order so encoding is deterministic.
// Expressions are preorder trees rebuilt through package expr's public
// constructors, which re-establish every canonical-form invariant
// (constant folding, add normalization, depth truncation); stored trees
// are already constructor-built fixed points, so decode(encode(x))
// reproduces x key-for-key.
const (
	// FormatVersion is the current wire version. Readers refuse any
	// other value, so bumping it invalidates every persisted entry.
	FormatVersion = 1

	kindSummary byte = 1
	kindEntry   byte = 2

	headerLen  = 4 + 2 + 1
	trailerLen = 4

	// maxExprDepth bounds decoded expression nesting. Legitimate trees
	// respect expr.MaxDepth; the slack tolerates future deepening while
	// still stopping corrupt input from recursing unboundedly.
	maxExprDepth = 4 * expr.MaxDepth
)

var wireMagic = [4]byte{'D', 'T', 'S', 'S'}

// ErrWire reports an undecodable blob: wrong magic, unknown version,
// checksum mismatch, truncation, or malformed payload.
var ErrWire = errors.New("sumstore: bad wire data")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeSummary serializes a phase-1 function summary.
func EncodeSummary(sum *symexec.Summary) []byte {
	e := newEnc(kindSummary)
	e.summary(sum)
	return e.finish()
}

// DecodeSummary deserializes a phase-1 function summary.
func DecodeSummary(blob []byte) (*symexec.Summary, error) {
	d, err := newDec(blob, kindSummary)
	if err != nil {
		return nil, err
	}
	sum := d.summary()
	if err := d.close(); err != nil {
		return nil, err
	}
	return sum, nil
}

// EncodeEntry serializes a bottom-up component entry.
func EncodeEntry(ent *Entry) []byte {
	e := newEnc(kindEntry)
	e.uint(uint64(len(ent.Summaries)))
	for _, s := range ent.Summaries {
		e.summary(s)
	}
	names := make([]string, 0, len(ent.Pendings))
	for name := range ent.Pendings {
		names = append(names, name)
	}
	sort.Strings(names)
	e.uint(uint64(len(names)))
	for _, name := range names {
		e.str(name)
		ps := ent.Pendings[name]
		e.uint(uint64(len(ps)))
		for i := range ps {
			e.pending(&ps[i])
		}
	}
	e.uint(uint64(len(ent.Findings)))
	for i := range ent.Findings {
		e.finding(&ent.Findings[i])
	}
	e.uint(uint64(ent.DefPairs))
	e.uint(uint64(ent.Truncated))
	return e.finish()
}

// DecodeEntry deserializes a bottom-up component entry.
func DecodeEntry(blob []byte) (*Entry, error) {
	d, err := newDec(blob, kindEntry)
	if err != nil {
		return nil, err
	}
	ent := &Entry{}
	for i, n := 0, d.count(); i < n; i++ {
		ent.Summaries = append(ent.Summaries, d.summary())
	}
	if n := d.count(); n > 0 {
		ent.Pendings = make(map[string][]taint.PendingSink, n)
		for i := 0; i < n; i++ {
			name := d.str()
			m := d.count()
			ps := make([]taint.PendingSink, 0, m)
			for j := 0; j < m; j++ {
				ps = append(ps, d.pending())
			}
			if d.err == nil {
				ent.Pendings[name] = ps
			}
		}
	}
	for i, n := 0, d.count(); i < n; i++ {
		ent.Findings = append(ent.Findings, d.finding())
	}
	ent.DefPairs = int(d.uint())
	ent.Truncated = int(d.uint())
	if err := d.close(); err != nil {
		return nil, err
	}
	return ent, nil
}

// ---------------------------------------------------------------- encoder

type enc struct {
	buf []byte
}

func newEnc(kind byte) *enc {
	e := &enc{buf: make([]byte, 0, 512)}
	e.buf = append(e.buf, wireMagic[:]...)
	e.buf = binary.BigEndian.AppendUint16(e.buf, FormatVersion)
	e.buf = append(e.buf, kind)
	return e
}

func (e *enc) finish() []byte {
	return binary.BigEndian.AppendUint32(e.buf, crc32.Checksum(e.buf, crcTable))
}

func (e *enc) uint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) sint(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) bool(b bool)   { e.buf = append(e.buf, boolByte(b)) }
func (e *enc) str(s string)  { e.uint(uint64(len(s))); e.buf = append(e.buf, s...) }

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Expression tags (preorder).
const (
	exprNil   byte = 0
	exprConst byte = 1
	exprSym   byte = 2
	exprDeref byte = 3
	exprBin   byte = 4
)

func (e *enc) expr(x *expr.Expr) {
	if x == nil {
		e.buf = append(e.buf, exprNil)
		return
	}
	if v, ok := x.ConstVal(); ok {
		e.buf = append(e.buf, exprConst)
		e.sint(v)
		return
	}
	if name, ok := x.SymName(); ok {
		e.buf = append(e.buf, exprSym)
		e.str(name)
		return
	}
	if addr, ok := x.DerefAddr(); ok {
		e.buf = append(e.buf, exprDeref)
		e.expr(addr)
		return
	}
	op, a, b, _ := x.BinOperands()
	e.buf = append(e.buf, exprBin)
	e.uint(uint64(op))
	e.expr(a)
	e.expr(b)
}

func (e *enc) exprs(xs []*expr.Expr) {
	e.uint(uint64(len(xs)))
	for _, x := range xs {
		e.expr(x)
	}
}

func (e *enc) steps(path []taint.Step) {
	e.uint(uint64(len(path)))
	for _, s := range path {
		e.str(s.Func)
		e.uint(uint64(s.Addr))
		e.str(s.Note)
	}
}

func (e *enc) constraint(c *symexec.Constraint) {
	e.expr(c.L)
	e.expr(c.R)
	e.uint(uint64(c.Cond))
	e.uint(uint64(c.Addr))
	e.bool(c.InLoop)
}

func (e *enc) summary(s *symexec.Summary) {
	e.str(s.Func)
	e.uint(uint64(s.Addr))
	e.uint(uint64(len(s.DefPairs)))
	for i := range s.DefPairs {
		dp := &s.DefPairs[i]
		e.expr(dp.D)
		e.expr(dp.U)
		e.uint(uint64(dp.Addr))
		e.sint(int64(dp.Size))
	}
	e.exprs(s.Rets)
	e.uint(uint64(len(s.Calls)))
	for i := range s.Calls {
		c := &s.Calls[i]
		e.uint(uint64(c.Addr))
		e.uint(uint64(c.Kind))
		e.str(c.Callee)
		e.exprs(c.Args)
		e.expr(c.Ret)
		e.expr(c.FnPtr)
		e.bool(c.InLoop)
	}
	e.uint(uint64(len(s.Constraints)))
	for i := range s.Constraints {
		e.constraint(&s.Constraints[i])
	}
	tkeys := make([]string, 0, len(s.Types))
	for k := range s.Types {
		tkeys = append(tkeys, k)
	}
	sort.Strings(tkeys)
	e.uint(uint64(len(tkeys)))
	for _, k := range tkeys {
		e.str(k)
		e.uint(uint64(s.Types[k]))
	}
	e.uint(uint64(len(s.Fields)))
	for i := range s.Fields {
		f := &s.Fields[i]
		e.expr(f.Base)
		e.sint(f.Off)
		e.uint(uint64(f.Ty))
		e.str(f.FnTarget)
	}
	e.uint(uint64(len(s.LoopStores)))
	for i := range s.LoopStores {
		ls := &s.LoopStores[i]
		e.uint(uint64(ls.Addr))
		e.expr(ls.AddrExpr)
		e.expr(ls.Val)
		e.sint(int64(ls.Size))
	}
	e.exprs(s.UndefUses)
	rkeys := make([]string, 0, len(s.Ranges))
	for k := range s.Ranges {
		rkeys = append(rkeys, k)
	}
	sort.Strings(rkeys)
	e.uint(uint64(len(rkeys)))
	for _, k := range rkeys {
		e.str(k)
		iv := s.Ranges[k]
		e.sint(iv.Lo)
		e.sint(iv.Hi)
	}
	e.uint(uint64(s.BlocksAnalyzed))
	e.uint(uint64(s.StatesExplored))
	e.bool(s.Truncated)
}

func (e *enc) pending(p *taint.PendingSink) {
	e.uint(uint64(p.Class))
	e.str(p.Sink)
	e.str(p.SinkFunc)
	e.uint(uint64(p.SinkAddr))
	e.expr(p.TaintExpr)
	e.expr(p.GuardExpr)
	e.steps(p.Path)
	e.uint(uint64(len(p.Constraints)))
	for i := range p.Constraints {
		e.constraint(&p.Constraints[i])
	}
	e.bool(p.Guarded)
	e.uint(uint64(p.Depth))
	e.sint(p.DstCap)
	e.sint(p.BoundHint)
}

func (e *enc) finding(f *taint.Finding) {
	e.uint(uint64(f.Class))
	e.str(f.Sink)
	e.str(f.SinkFunc)
	e.uint(uint64(f.SinkAddr))
	e.str(f.Source)
	e.uint(f.SourceAddr)
	e.expr(f.TaintExpr)
	e.expr(f.GuardExpr)
	e.steps(f.Path)
	e.bool(f.Sanitized)
	e.uint(uint64(len(f.Evidence)))
	for _, ev := range f.Evidence {
		e.str(ev)
	}
}

// ---------------------------------------------------------------- decoder

type dec struct {
	b   []byte
	pos int
	err error
}

func newDec(blob []byte, kind byte) (*dec, error) {
	if len(blob) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: short blob (%d bytes)", ErrWire, len(blob))
	}
	if [4]byte(blob[:4]) != wireMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrWire)
	}
	if v := binary.BigEndian.Uint16(blob[4:6]); v != FormatVersion {
		return nil, fmt.Errorf("%w: unknown version %d (want %d)", ErrWire, v, FormatVersion)
	}
	body := blob[:len(blob)-trailerLen]
	want := binary.BigEndian.Uint32(blob[len(blob)-trailerLen:])
	if crc32.Checksum(body, crcTable) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrWire)
	}
	if blob[6] != kind {
		return nil, fmt.Errorf("%w: entry kind %d, want %d", ErrWire, blob[6], kind)
	}
	return &dec{b: body, pos: headerLen}, nil
}

// close verifies the whole payload was consumed — trailing bytes mean a
// malformed or foreign blob.
func (d *dec) close() error {
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrWire, len(d.b)-d.pos)
	}
	return nil
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: malformed payload at offset %d", ErrWire, d.pos)
	}
}

func (d *dec) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

func (d *dec) sint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

// count reads a collection length and sanity-checks it against the
// remaining payload (every element costs at least one byte), so corrupt
// lengths cannot trigger giant allocations.
func (d *dec) count() int {
	n := d.uint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.pos) {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.pos >= len(d.b) {
		d.fail()
		return false
	}
	v := d.b[d.pos]
	d.pos++
	if v > 1 {
		d.fail()
		return false
	}
	return v == 1
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.pos >= len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.pos]
	d.pos++
	return v
}

func (d *dec) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.pos : d.pos+n])
	d.pos += n
	return s
}

func (d *dec) u32() uint32 {
	v := d.uint()
	if v > 0xFFFFFFFF {
		d.fail()
		return 0
	}
	return uint32(v)
}

func (d *dec) expr() *expr.Expr { return d.exprAt(0) }

func (d *dec) exprAt(depth int) *expr.Expr {
	if depth > maxExprDepth {
		d.fail()
		return nil
	}
	switch tag := d.byte(); tag {
	case exprNil:
		return nil
	case exprConst:
		return expr.Const(d.sint())
	case exprSym:
		return expr.Sym(d.str())
	case exprDeref:
		addr := d.exprAt(depth + 1)
		if addr == nil {
			d.fail()
			return nil
		}
		return expr.Deref(addr)
	case exprBin:
		op := expr.Op(d.uint())
		a := d.exprAt(depth + 1)
		b := d.exprAt(depth + 1)
		if a == nil || b == nil {
			d.fail()
			return nil
		}
		return expr.Bin(op, a, b)
	default:
		d.fail()
		return nil
	}
}

func (d *dec) exprs() []*expr.Expr {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]*expr.Expr, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.expr())
	}
	return out
}

func (d *dec) steps() []taint.Step {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]taint.Step, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, taint.Step{Func: d.str(), Addr: d.u32(), Note: d.str()})
	}
	return out
}

func (d *dec) constraint() symexec.Constraint {
	return symexec.Constraint{
		L:      d.expr(),
		R:      d.expr(),
		Cond:   isa.Cond(d.uint()),
		Addr:   d.u32(),
		InLoop: d.bool(),
	}
}

func (d *dec) summary() *symexec.Summary {
	s := &symexec.Summary{
		Func: d.str(),
		Addr: d.u32(),
	}
	for i, n := 0, d.count(); i < n; i++ {
		s.DefPairs = append(s.DefPairs, symexec.DefPair{
			D:    d.expr(),
			U:    d.expr(),
			Addr: d.u32(),
			Size: int(d.sint()),
		})
	}
	s.Rets = d.exprs()
	for i, n := 0, d.count(); i < n; i++ {
		s.Calls = append(s.Calls, symexec.CallRecord{
			Addr:   d.u32(),
			Kind:   cfg.CallKind(d.uint()),
			Callee: d.str(),
			Args:   d.exprs(),
			Ret:    d.expr(),
			FnPtr:  d.expr(),
			InLoop: d.bool(),
		})
	}
	for i, n := 0, d.count(); i < n; i++ {
		s.Constraints = append(s.Constraints, d.constraint())
	}
	if n := d.count(); n > 0 {
		s.Types = make(map[string]expr.Type, n)
		for i := 0; i < n; i++ {
			k := d.str()
			ty := expr.Type(d.uint())
			if d.err == nil {
				s.Types[k] = ty
			}
		}
	}
	for i, n := 0, d.count(); i < n; i++ {
		s.Fields = append(s.Fields, symexec.FieldObs{
			Base:     d.expr(),
			Off:      d.sint(),
			Ty:       expr.Type(d.uint()),
			FnTarget: d.str(),
		})
	}
	for i, n := 0, d.count(); i < n; i++ {
		s.LoopStores = append(s.LoopStores, symexec.LoopStore{
			Addr:     d.u32(),
			AddrExpr: d.expr(),
			Val:      d.expr(),
			Size:     int(d.sint()),
		})
	}
	s.UndefUses = d.exprs()
	if n := d.count(); n > 0 {
		s.Ranges = make(map[string]vrange.Interval, n)
		for i := 0; i < n; i++ {
			k := d.str()
			iv := vrange.Interval{Lo: d.sint(), Hi: d.sint()}
			if d.err == nil {
				s.Ranges[k] = iv
			}
		}
	}
	s.BlocksAnalyzed = int(d.uint())
	s.StatesExplored = int(d.uint())
	s.Truncated = d.bool()
	return s
}

func (d *dec) pending() taint.PendingSink {
	p := taint.PendingSink{
		Class:     taint.Class(d.uint()),
		Sink:      d.str(),
		SinkFunc:  d.str(),
		SinkAddr:  d.u32(),
		TaintExpr: d.expr(),
		GuardExpr: d.expr(),
		Path:      d.steps(),
	}
	for i, n := 0, d.count(); i < n; i++ {
		p.Constraints = append(p.Constraints, d.constraint())
	}
	p.Guarded = d.bool()
	p.Depth = int(d.uint())
	p.DstCap = d.sint()
	p.BoundHint = d.sint()
	return p
}

func (d *dec) finding() taint.Finding {
	f := taint.Finding{
		Class:      taint.Class(d.uint()),
		Sink:       d.str(),
		SinkFunc:   d.str(),
		SinkAddr:   d.u32(),
		Source:     d.str(),
		SourceAddr: d.uint(),
		TaintExpr:  d.expr(),
		GuardExpr:  d.expr(),
		Path:       d.steps(),
		Sanitized:  d.bool(),
	}
	for i, n := 0, d.count(); i < n; i++ {
		f.Evidence = append(f.Evidence, d.str())
	}
	return f
}

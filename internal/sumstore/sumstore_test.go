package sumstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dtaint/internal/obs"
)

func TestStoreHitMissCounters(t *testing.T) {
	s, err := NewStore(8, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetSummary("p1-absent"); ok {
		t.Fatal("lookup in empty store hit")
	}
	s.PutSummary("p1-a", richSummary())
	got, ok := s.GetSummary("p1-a")
	if !ok {
		t.Fatal("stored summary missing")
	}
	if !reflect.DeepEqual(got, richSummary()) {
		t.Fatal("stored summary mutated")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.DiskHits != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s, err := NewStore(2, "")
	if err != nil {
		t.Fatal(err)
	}
	sum := richSummary()
	s.PutSummary("p1-a", sum)
	s.PutSummary("p1-b", sum)
	if _, ok := s.GetSummary("p1-a"); !ok { // touch a: b becomes LRU
		t.Fatal("p1-a missing before eviction")
	}
	s.PutSummary("p1-c", sum) // evicts b
	if _, ok := s.GetSummary("p1-b"); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := s.GetSummary("p1-a"); !ok {
		t.Fatal("recently used entry was evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStoreDiskTier checks persistence across store instances: a fresh
// Store over the same directory serves the old entries as disk hits and
// promotes them back into memory.
func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.PutSummary("p1-a", richSummary())
	s1.PutEntry("bu-x", richEntry())

	s2, err := NewStore(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	sum, ok := s2.GetSummary("p1-a")
	if !ok || !reflect.DeepEqual(sum, richSummary()) {
		t.Fatalf("disk summary: ok=%v", ok)
	}
	ent, ok := s2.GetEntry("bu-x")
	if !ok || !reflect.DeepEqual(ent, richEntry()) {
		t.Fatalf("disk entry: ok=%v", ok)
	}
	st := s2.Stats()
	if st.DiskHits != 2 || st.Hits != 2 || st.Entries != 2 {
		t.Fatalf("stats after disk promote = %+v", st)
	}
	// Promoted entries now serve from memory.
	if _, ok := s2.GetSummary("p1-a"); !ok {
		t.Fatal("promoted entry missing")
	}
	if got := s2.Stats(); got.DiskHits != 2 || got.Hits != 3 {
		t.Fatalf("stats after memory hit = %+v", got)
	}
}

// TestStoreCorruptDiskFileIsMiss overwrites a persisted blob with
// garbage: the lookup must degrade to a miss, never return bad data or
// crash.
func TestStoreCorruptDiskFileIsMiss(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStore(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	s1.PutSummary("p1-a", richSummary())
	path := filepath.Join(dir, "p1-a.dtss")
	if err := os.WriteFile(path, []byte("DTSSgarbage-not-a-valid-blob"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewStore(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.GetSummary("p1-a"); ok {
		t.Fatal("corrupt disk file served as a hit")
	}
	if st := s2.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStoreKindConfusionIsMiss asks for an entry under a key holding a
// summary: the kind byte must turn it into a miss.
func TestStoreKindConfusionIsMiss(t *testing.T) {
	s, err := NewStore(8, "")
	if err != nil {
		t.Fatal(err)
	}
	s.PutSummary("k", richSummary())
	if _, ok := s.GetEntry("k"); ok {
		t.Fatal("summary blob served as an entry")
	}
}

func TestStoreDefaultCapacity(t *testing.T) {
	s, err := NewStore(0, "")
	if err != nil {
		t.Fatal(err)
	}
	sum := richSummary()
	for i := 0; i < 64; i++ {
		s.PutSummary(fmt.Sprintf("p1-%02d", i), sum)
	}
	if st := s.Stats(); st.Evictions != 0 || st.Entries != 64 {
		t.Fatalf("default capacity evicted early: %+v", st)
	}
}

func TestStorePublishMetrics(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	s.PutSummary("p1-a", richSummary())
	s.GetSummary("p1-a")
	s.GetSummary("p1-b")

	reg := obs.NewRegistry()
	s.PublishMetrics(reg)
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"dtaint_sumstore_hits_total 1",
		"dtaint_sumstore_misses_total 1",
		"dtaint_sumstore_entries 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

package sumstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"sort"

	"dtaint/internal/cfg"
)

// Fingerprinter derives content-addressed store keys for one program.
// Every key folds in three layers:
//
//   - the analysis identity: the versioned options fingerprint
//     (dataflow.OptionsFingerprint) plus the binary's ISA — a different
//     option set or architecture never aliases;
//   - the function's content: its decoded instructions block by block
//     (equivalent to the function's code bytes under the decoder), the
//     string- and function-table entries its immediates resolve to
//     (the only binary-wide tables the analysis reads through a
//     function), and its callsite bindings, which include
//     structsim-resolved indirect targets;
//   - for bottom-up component keys, a Merkle chain: the keys of every
//     callee component, computed in condensation index order so each
//     dependency's key exists before it is consumed. A change anywhere
//     in a function's callee cone therefore invalidates every component
//     above it, while phase-1 keys — phase 1 never applies callee
//     summaries — depend on the function alone and survive callee
//     edits.
//
// Function digests are recomputed on every call rather than memoized:
// structsim mutates callsites between phase 1 and the bottom-up pass,
// and the two passes must fingerprint the state they actually analyze.
type Fingerprinter struct {
	prog *cfg.Program
	base string // ISA + options fingerprint, folded into every key
}

// NewFingerprinter builds a fingerprinter for prog under the given
// options fingerprint (dataflow.OptionsFingerprint output).
func NewFingerprinter(prog *cfg.Program, optionsFingerprint string) *Fingerprinter {
	return &Fingerprinter{
		prog: prog,
		base: prog.Binary.Arch.String() + "|" + optionsFingerprint,
	}
}

// FuncKey returns the phase-1 store key for one function: its content
// digest under the analysis identity, with no callee chain. Call it
// before the bottom-up pass begins; it is safe for concurrent use.
func (f *Fingerprinter) FuncKey(name string) string {
	h := sha256.New()
	io.WriteString(h, "p1v1|")
	io.WriteString(h, f.base)
	f.writeFuncDigest(h, name)
	return "p1-" + hex.EncodeToString(h.Sum(nil))
}

// CompKeys returns the bottom-up store key of every condensation
// component, indexed like cond.Comps. Keys are computed in condensation
// order — every dependency of Comps[i] has a smaller index, so its key
// is already available when i folds it in.
func (f *Fingerprinter) CompKeys(cond *cfg.Condensation) []string {
	// Invert Callers into per-component dependency lists: dep appears in
	// depsOf[i] exactly when the scheduler counts dep in i's in-degree.
	depsOf := make([][]int, len(cond.Comps))
	for dep, callers := range cond.Callers {
		for _, c := range callers {
			depsOf[c] = append(depsOf[c], dep)
		}
	}
	keys := make([]string, len(cond.Comps))
	for i, comp := range cond.Comps {
		h := sha256.New()
		io.WriteString(h, "buv1|")
		io.WriteString(h, f.base)
		writeUvarint(h, uint64(len(comp)))
		for _, name := range comp {
			f.writeFuncDigest(h, name)
		}
		sort.Ints(depsOf[i])
		writeUvarint(h, uint64(len(depsOf[i])))
		for _, dep := range depsOf[i] {
			io.WriteString(h, keys[dep])
		}
		keys[i] = "bu-" + hex.EncodeToString(h.Sum(nil))
	}
	return keys
}

// writeFuncDigest folds one function's analysis-relevant content into h:
// name, address, decoded instructions, the rodata strings and function
// symbols its immediates resolve to, and its callsite bindings.
func (f *Fingerprinter) writeFuncDigest(h io.Writer, name string) {
	fn := f.prog.ByName[name]
	writeStr(h, name)
	if fn == nil {
		return
	}
	bin := f.prog.Binary
	writeUvarint(h, uint64(fn.Addr))
	writeUvarint(h, uint64(len(fn.Blocks)))
	for _, b := range fn.Blocks {
		writeUvarint(h, uint64(b.Start))
		writeUvarint(h, uint64(len(b.Insts)))
		for _, in := range b.Insts {
			r := in.Raw
			var rec [16]byte
			rec[0] = byte(r.Op)
			rec[1] = byte(r.Cond)
			rec[2] = byte(r.Rd)
			rec[3] = byte(r.Rn)
			rec[4] = byte(r.Rm)
			binary.BigEndian.PutUint32(rec[5:], uint32(r.Imm))
			rec[9] = boolByte(r.HasImm)
			binary.BigEndian.PutUint32(rec[10:], r.Target)
			h.Write(rec[:])
			// The analysis reads two binary-wide tables through constant
			// immediates: rodata strings (library models fetch formats
			// and guard sets via StringAt) and the function table
			// (function-pointer stores resolve via FuncAt). Folding the
			// resolved entries in — rather than whole-section digests —
			// keeps keys stable across unrelated rodata edits while
			// still invalidating on the bytes the analysis can observe.
			if r.HasImm {
				if s, ok := bin.StringAt(uint32(r.Imm)); ok {
					writeStr(h, "s:"+s)
				}
				if sym, ok := bin.FuncAt(uint32(r.Imm)); ok {
					writeStr(h, "f:"+sym.Name)
				}
			}
		}
	}
	writeUvarint(h, uint64(len(fn.Calls)))
	for _, cs := range fn.Calls {
		writeUvarint(h, uint64(cs.Addr))
		writeUvarint(h, uint64(cs.Kind))
		writeStr(h, cs.Callee)
		writeUvarint(h, uint64(cs.Target))
	}
}

func writeUvarint(h io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	h.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func writeStr(h io.Writer, s string) {
	writeUvarint(h, uint64(len(s)))
	io.WriteString(h, s)
}

// Package sumstore is the persistent, content-addressed store for
// function summaries — the corpus-scale throughput lever: a firmware
// corpus links the same libc-shaped code into thousands of binaries, so
// whole-corpus analysis cost should be O(unique functions), not
// O(total functions).
//
// Two entry granularities are cached, matching the pipeline's two
// analysis passes:
//
//   - a phase-1 symexec.Summary per function (the static symbolic pass:
//     scratch tracker, no alias rewriting), keyed by the function's own
//     content only — phase 1 never consults callee summaries;
//   - a bottom-up Entry per call-graph SCC component (the summaries the
//     component exports after alias rewriting, plus the pending sinks,
//     findings, and counters its tracker shard produced), keyed by a
//     Merkle chain: the component's function digests plus the keys of
//     every callee component, so a change anywhere below a component
//     invalidates it transitively.
//
// Keys are derived by the Fingerprinter from the function's decoded
// instructions, the ISA, the string/function-table entries its
// immediates resolve to, its callsite bindings (including structsim
// resolutions), and the versioned analysis-options fingerprint
// (dataflow.OptionsFingerprint). See DESIGN.md §3.4 for the
// invalidation rules.
//
// Values travel in a versioned binary wire format (wire.go): a "DTSS"
// magic, a format version that unknown readers refuse, and a
// length-checked payload, so a corrupt or truncated entry decodes to a
// cache miss — never a crash or a wrong result.
//
// The store itself mirrors the fleet report cache's two tiers: a
// bounded in-memory LRU for the hot set over an optional unbounded
// on-disk tier (one file per key, write-then-rename) that survives
// process restarts. Values are stored serialized and decoded on every
// Get, so callers own their copy. All methods are safe for concurrent
// use.
package sumstore

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dtaint/internal/obs"
	"dtaint/internal/symexec"
	"dtaint/internal/taint"
)

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Hits counts lookups served from memory or disk.
	Hits uint64 `json:"hits"`
	// DiskHits is the subset of Hits that had to read the on-disk tier
	// (a miss in the LRU; the entry is promoted back into memory).
	DiskHits uint64 `json:"diskHits"`
	// Misses counts lookups that found nothing (or found an entry that
	// failed to decode) and forced a symbolic execution.
	Misses uint64 `json:"misses"`
	// Evictions counts LRU entries dropped from memory (the disk tier,
	// when configured, never evicts).
	Evictions uint64 `json:"evictions"`
	// Entries is the current in-memory entry count.
	Entries int `json:"entries"`
}

// Entry is the bottom-up pass's cacheable unit: one SCC component's
// complete contribution. Caching only the summaries would not be enough
// — replaying a component must also reproduce the pending sinks its
// callers will import and the findings the merge concatenates, or a
// warm run would diverge from a cold one.
type Entry struct {
	// Summaries are the component's exported per-function summaries
	// (post alias rewriting), in the component's fixed function order.
	Summaries []*symexec.Summary
	// Pendings are the unresolved sinks climbing out of the component,
	// keyed by function name.
	Pendings map[string][]taint.PendingSink
	// Findings are the component shard's findings, in emission order.
	Findings []taint.Finding
	// DefPairs and Truncated are the component's counter contributions.
	DefPairs  int
	Truncated int
}

// Store is the two-tier summary store. The zero value is not usable;
// construct with NewStore.
type Store struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	dir     string
	hits    uint64
	disk    uint64
	misses  uint64
	evicted uint64
}

type storeEntry struct {
	key  string
	blob []byte // wire-encoded (magic + version + payload)
}

// NewStore returns a store holding at most maxEntries values in memory
// (maxEntries <= 0 selects a default of 4096 — summaries are far
// smaller than whole-binary reports, so the default tier is deeper than
// the report cache's). If dir is non-empty it is created if needed and
// used as the persistent tier.
func NewStore(maxEntries int, dir string) (*Store, error) {
	if maxEntries <= 0 {
		maxEntries = 4096
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("sumstore: store dir: %w", err)
		}
	}
	return &Store{
		max:   maxEntries,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		dir:   dir,
	}, nil
}

// GetSummary looks up a phase-1 function summary. Any decode failure —
// unknown wire version, corruption, truncation, or a key that resolves
// to a component entry — counts as a miss.
func (s *Store) GetSummary(key string) (*symexec.Summary, bool) {
	blob, ok := s.getBlob(key)
	if !ok {
		return nil, false
	}
	sum, err := DecodeSummary(blob)
	if err != nil {
		s.miss()
		return nil, false
	}
	s.hit()
	return sum, true
}

// PutSummary stores a phase-1 function summary under key.
func (s *Store) PutSummary(key string, sum *symexec.Summary) {
	s.putBlob(key, EncodeSummary(sum))
}

// GetEntry looks up a bottom-up component entry. Any decode failure
// counts as a miss.
func (s *Store) GetEntry(key string) (*Entry, bool) {
	blob, ok := s.getBlob(key)
	if !ok {
		return nil, false
	}
	e, err := DecodeEntry(blob)
	if err != nil {
		s.miss()
		return nil, false
	}
	s.hit()
	return e, true
}

// PutEntry stores a bottom-up component entry under key.
func (s *Store) PutEntry(key string, e *Entry) {
	s.putBlob(key, EncodeEntry(e))
}

// getBlob fetches the raw wire bytes for key: memory first, then disk
// (promoting disk reads back into the LRU). It does NOT touch the
// hit/miss counters on success — the caller classifies the lookup after
// decoding, so a corrupt blob is counted as a miss, not a hit.
func (s *Store) getBlob(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		blob := el.Value.(*storeEntry).blob
		s.mu.Unlock()
		return blob, true
	}
	dir := s.dir
	s.mu.Unlock()

	if dir != "" {
		blob, err := os.ReadFile(s.diskPath(key))
		if err == nil {
			s.mu.Lock()
			s.disk++
			s.insertLocked(key, blob)
			s.mu.Unlock()
			return blob, true
		}
	}

	s.miss()
	return nil, false
}

func (s *Store) hit() {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

func (s *Store) miss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

func (s *Store) putBlob(key string, blob []byte) {
	s.mu.Lock()
	s.insertLocked(key, blob)
	dir := s.dir
	s.mu.Unlock()
	if dir != "" {
		// Write-then-rename so a crashed writer never leaves a torn
		// entry; a torn entry would only cost a miss anyway, but the
		// rename keeps the disk tier clean.
		tmp := s.diskPath(key) + ".tmp"
		if err := os.WriteFile(tmp, blob, 0o644); err == nil {
			_ = os.Rename(tmp, s.diskPath(key))
		}
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:      s.hits,
		DiskHits:  s.disk,
		Misses:    s.misses,
		Evictions: s.evicted,
		Entries:   len(s.items),
	}
}

// PublishMetrics exports the store's lifetime counters into an obs
// registry (Store semantics: idempotent snapshots, shareable across
// many analyses over the same store).
func (s *Store) PublishMetrics(reg *obs.Registry) {
	st := s.Stats()
	reg.Counter("dtaint_sumstore_hits_total",
		"Summary-store lookups served from memory or disk.", nil).Store(st.Hits)
	reg.Counter("dtaint_sumstore_disk_hits_total",
		"Summary-store hits served from the on-disk tier.", nil).Store(st.DiskHits)
	reg.Counter("dtaint_sumstore_misses_total",
		"Summary-store lookups that forced a symbolic execution.", nil).Store(st.Misses)
	reg.Counter("dtaint_sumstore_evictions_total",
		"Summary-store LRU entries dropped from memory.", nil).Store(st.Evictions)
	reg.Gauge("dtaint_sumstore_entries",
		"Summary-store in-memory entry count.", nil).Set(float64(st.Entries))
}

func (s *Store) insertLocked(key string, blob []byte) {
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*storeEntry).blob = blob
		return
	}
	s.items[key] = s.ll.PushFront(&storeEntry{key: key, blob: blob})
	for len(s.items) > s.max {
		last := s.ll.Back()
		if last == nil {
			break
		}
		s.ll.Remove(last)
		delete(s.items, last.Value.(*storeEntry).key)
		s.evicted++
	}
}

func (s *Store) diskPath(key string) string {
	return filepath.Join(s.dir, key+".dtss")
}

package image

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dtaint/internal/isa"
)

func sampleBinary() *Binary {
	b := &Binary{
		Name:       "cgibin",
		Arch:       isa.ArchARM,
		Entry:      0x10000,
		TextBase:   0x10000,
		Text:       make([]byte, 64),
		RodataBase: 0x8000000,
		Rodata:     []byte("hello\x00world\x00"),
		Funcs: []Symbol{
			{Name: "main", Addr: 0x10000, Size: 32},
			{Name: "helper", Addr: 0x10020, Size: 32},
		},
		Imports: []Import{
			{Name: "recv", Addr: ImportBase},
			{Name: "memcpy", Addr: ImportBase + 8},
		},
		Data: []DataSym{
			{Name: "greet", Addr: 0x8000000, Size: 6},
			{Name: "target", Addr: 0x8000006, Size: 6},
		},
	}
	b.SortTables()
	return b
}

func TestMarshalParseRoundTrip(t *testing.T) {
	b := sampleBinary()
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != b.Name || got.Arch != b.Arch || got.Entry != b.Entry {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Funcs) != 2 || got.Funcs[0].Name != "main" {
		t.Fatalf("funcs mismatch: %+v", got.Funcs)
	}
	if len(got.Imports) != 2 || got.Imports[1].Name != "memcpy" {
		t.Fatalf("imports mismatch: %+v", got.Imports)
	}
	if len(got.Data) != 2 {
		t.Fatalf("data mismatch: %+v", got.Data)
	}
	if string(got.Rodata) != string(b.Rodata) {
		t.Fatal("rodata mismatch")
	}
}

func TestParseErrors(t *testing.T) {
	b := sampleBinary()
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse([]byte("ELF")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}
	if _, err := Parse(raw[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: got %v", err)
	}
	// Every truncation point must fail cleanly, never panic.
	for i := 0; i < len(raw); i += 7 {
		if _, err := Parse(raw[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestParseFuzzLike(t *testing.T) {
	// Random corruption must never panic and must either fail or produce a
	// binary that passes Validate.
	b := sampleBinary()
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mut := append([]byte(nil), raw...)
		for i := 0; i < 8; i++ {
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		}
		got, err := Parse(mut)
		if err != nil {
			return true
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLookups(t *testing.T) {
	b := sampleBinary()
	if s, ok := b.FuncByName("helper"); !ok || s.Addr != 0x10020 {
		t.Errorf("FuncByName: %+v %v", s, ok)
	}
	if _, ok := b.FuncByName("nope"); ok {
		t.Error("FuncByName found a ghost")
	}
	if s, ok := b.FuncAt(0x10020); !ok || s.Name != "helper" {
		t.Errorf("FuncAt: %+v %v", s, ok)
	}
	if _, ok := b.FuncAt(0x10021); ok {
		t.Error("FuncAt matched a mid-function address")
	}
	if s, ok := b.FuncContaining(0x10028); !ok || s.Name != "helper" {
		t.Errorf("FuncContaining: %+v %v", s, ok)
	}
	if _, ok := b.FuncContaining(0x20000); ok {
		t.Error("FuncContaining matched out of range")
	}
	if im, ok := b.ImportAt(ImportBase + 8); !ok || im.Name != "memcpy" {
		t.Errorf("ImportAt: %+v %v", im, ok)
	}
	if im, ok := b.ImportByName("recv"); !ok || im.Addr != ImportBase {
		t.Errorf("ImportByName: %+v %v", im, ok)
	}
	if d, ok := b.DataByName("target"); !ok || d.Addr != 0x8000006 {
		t.Errorf("DataByName: %+v %v", d, ok)
	}
}

func TestStringAt(t *testing.T) {
	b := sampleBinary()
	if s, ok := b.StringAt(0x8000000); !ok || s != "hello" {
		t.Errorf("StringAt(0) = %q, %v", s, ok)
	}
	if s, ok := b.StringAt(0x8000006); !ok || s != "world" {
		t.Errorf("StringAt(6) = %q, %v", s, ok)
	}
	if _, ok := b.StringAt(0x9000000); ok {
		t.Error("StringAt out of range succeeded")
	}
}

func TestFuncCode(t *testing.T) {
	b := sampleBinary()
	code, err := b.FuncCode(b.Funcs[0])
	if err != nil || len(code) != 32 {
		t.Fatalf("FuncCode: %d bytes, err=%v", len(code), err)
	}
	if _, err := b.FuncCode(Symbol{Name: "bad", Addr: 0x10000, Size: 1 << 20}); err == nil {
		t.Error("oversized function accepted")
	}
	if _, err := b.FuncCode(Symbol{Name: "low", Addr: 0x100, Size: 8}); err == nil {
		t.Error("below-base function accepted")
	}
}

func TestValidate(t *testing.T) {
	b := sampleBinary()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *b
	bad.Text = make([]byte, 13)
	if err := bad.Validate(); err == nil {
		t.Error("unaligned text accepted")
	}
	bad2 := *b
	bad2.Funcs = []Symbol{{Name: "x", Addr: 0, Size: 8}}
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range function accepted")
	}
	bad3 := *b
	bad3.Arch = 0
	if err := bad3.Validate(); err == nil {
		t.Error("invalid arch accepted")
	}
	bad4 := *b
	bad4.Imports = []Import{{Name: "x", Addr: 4}}
	if err := bad4.Validate(); err == nil {
		t.Error("low import stub accepted")
	}
}

func TestSizeAccounting(t *testing.T) {
	b := sampleBinary()
	if b.Size() <= len(b.Text) {
		t.Error("Size must include symbol overhead")
	}
}

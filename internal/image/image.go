// Package image defines FWELF, the executable object format used by the
// synthetic firmware in this reproduction.
//
// Real firmware ships ELF binaries for ARM/MIPS; FWELF plays that role for
// the mini-ISA. A Binary carries a text section of fixed-width instructions,
// a read-only data section, a function symbol table (DTaint, like angr,
// relies on function identification to analyze each function separately),
// and an import table naming the C-library functions the binary calls
// (strcpy, recv, system, ...). Imported functions are represented by stub
// addresses in a reserved high address range, the way a PLT maps library
// calls to fixed code addresses.
package image

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"dtaint/internal/isa"
)

// Magic begins every serialized FWELF binary.
var Magic = [6]byte{'F', 'W', 'E', 'L', 'F', 1}

// ImportBase is the address of the first import stub. Each import occupies
// one instruction slot.
const ImportBase uint32 = 0xF000_0000

// Limits guarding the parser against corrupt or adversarial inputs.
const (
	MaxTextSize   = 64 << 20
	MaxRodataSize = 16 << 20
	MaxSymbols    = 1 << 20
	MaxNameLen    = 4096
)

// Symbol names a function in the text section.
type Symbol struct {
	Name string
	Addr uint32 // start address within [TextBase, TextBase+len(Text))
	Size uint32 // size in bytes; a multiple of isa.InstSize
}

// Import names an external library function reachable at a stub address.
type Import struct {
	Name string
	Addr uint32
}

// DataSym names an object in the rodata section (e.g. a command string).
type DataSym struct {
	Name string
	Addr uint32
	Size uint32
}

// Binary is a loaded FWELF executable.
type Binary struct {
	Name       string
	Arch       isa.Arch
	Entry      uint32
	TextBase   uint32
	Text       []byte
	RodataBase uint32
	Rodata     []byte
	Funcs      []Symbol  // sorted by Addr
	Imports    []Import  // sorted by Addr
	Data       []DataSym // sorted by Addr
}

// Errors returned by Parse and the lookup helpers.
var (
	ErrBadMagic  = errors.New("image: bad magic")
	ErrTruncated = errors.New("image: truncated input")
	ErrMalformed = errors.New("image: malformed binary")
)

// SortTables sorts the symbol tables by address; Parse and well-formed
// builders maintain this invariant, which the lookup helpers rely on.
func (b *Binary) SortTables() {
	sort.Slice(b.Funcs, func(i, j int) bool { return b.Funcs[i].Addr < b.Funcs[j].Addr })
	sort.Slice(b.Imports, func(i, j int) bool { return b.Imports[i].Addr < b.Imports[j].Addr })
	sort.Slice(b.Data, func(i, j int) bool { return b.Data[i].Addr < b.Data[j].Addr })
}

// FuncByName returns the function symbol with the given name.
func (b *Binary) FuncByName(name string) (Symbol, bool) {
	for _, s := range b.Funcs {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// FuncAt returns the function symbol starting exactly at addr.
func (b *Binary) FuncAt(addr uint32) (Symbol, bool) {
	i := sort.Search(len(b.Funcs), func(i int) bool { return b.Funcs[i].Addr >= addr })
	if i < len(b.Funcs) && b.Funcs[i].Addr == addr {
		return b.Funcs[i], true
	}
	return Symbol{}, false
}

// FuncContaining returns the function symbol whose range contains addr.
func (b *Binary) FuncContaining(addr uint32) (Symbol, bool) {
	i := sort.Search(len(b.Funcs), func(i int) bool { return b.Funcs[i].Addr > addr })
	if i == 0 {
		return Symbol{}, false
	}
	s := b.Funcs[i-1]
	if addr >= s.Addr && addr < s.Addr+s.Size {
		return s, true
	}
	return Symbol{}, false
}

// ImportAt returns the import whose stub address is addr.
func (b *Binary) ImportAt(addr uint32) (Import, bool) {
	i := sort.Search(len(b.Imports), func(i int) bool { return b.Imports[i].Addr >= addr })
	if i < len(b.Imports) && b.Imports[i].Addr == addr {
		return b.Imports[i], true
	}
	return Import{}, false
}

// ImportByName returns the import with the given name.
func (b *Binary) ImportByName(name string) (Import, bool) {
	for _, im := range b.Imports {
		if im.Name == name {
			return im, true
		}
	}
	return Import{}, false
}

// DataByName returns the rodata symbol with the given name.
func (b *Binary) DataByName(name string) (DataSym, bool) {
	for _, d := range b.Data {
		if d.Name == name {
			return d, true
		}
	}
	return DataSym{}, false
}

// StringAt returns the NUL-terminated string at a rodata address.
func (b *Binary) StringAt(addr uint32) (string, bool) {
	if addr < b.RodataBase || addr >= b.RodataBase+uint32(len(b.Rodata)) {
		return "", false
	}
	off := int(addr - b.RodataBase)
	end := bytes.IndexByte(b.Rodata[off:], 0)
	if end < 0 {
		return string(b.Rodata[off:]), true
	}
	return string(b.Rodata[off : off+end]), true
}

// FuncCode returns the code bytes of a function symbol.
func (b *Binary) FuncCode(s Symbol) ([]byte, error) {
	if s.Addr < b.TextBase {
		return nil, fmt.Errorf("%w: function %q below text base", ErrMalformed, s.Name)
	}
	start := int(s.Addr - b.TextBase)
	end := start + int(s.Size)
	if end > len(b.Text) || start > end {
		return nil, fmt.Errorf("%w: function %q exceeds text section", ErrMalformed, s.Name)
	}
	return b.Text[start:end], nil
}

// Size returns the total serialized size estimate in bytes (used for the
// "Size (KB)" column of Table II).
func (b *Binary) Size() int {
	n := len(b.Text) + len(b.Rodata)
	for _, s := range b.Funcs {
		n += len(s.Name) + 12
	}
	for _, s := range b.Imports {
		n += len(s.Name) + 8
	}
	for _, s := range b.Data {
		n += len(s.Name) + 12
	}
	return n + 64
}

// Validate checks the structural invariants of the binary.
func (b *Binary) Validate() error {
	if !b.Arch.Valid() {
		return fmt.Errorf("%w: invalid arch %d", ErrMalformed, b.Arch)
	}
	if len(b.Text)%isa.InstSize != 0 {
		return fmt.Errorf("%w: text size %d not a multiple of %d", ErrMalformed, len(b.Text), isa.InstSize)
	}
	for _, s := range b.Funcs {
		if s.Addr < b.TextBase || uint64(s.Addr)+uint64(s.Size) > uint64(b.TextBase)+uint64(len(b.Text)) {
			return fmt.Errorf("%w: function %q out of text range", ErrMalformed, s.Name)
		}
		if s.Size%isa.InstSize != 0 {
			return fmt.Errorf("%w: function %q size not instruction-aligned", ErrMalformed, s.Name)
		}
	}
	for _, im := range b.Imports {
		if im.Addr < ImportBase {
			return fmt.Errorf("%w: import %q below import base", ErrMalformed, im.Name)
		}
	}
	return nil
}

// Marshal serializes the binary to the FWELF wire format.
func (b *Binary) Marshal() ([]byte, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.Write(Magic[:])
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	writeStr := func(s string) {
		w(uint32(len(s)))
		buf.WriteString(s)
	}
	writeStr(b.Name)
	w(uint32(b.Arch))
	w(b.Entry)
	w(b.TextBase)
	w(uint32(len(b.Text)))
	buf.Write(b.Text)
	w(b.RodataBase)
	w(uint32(len(b.Rodata)))
	buf.Write(b.Rodata)
	w(uint32(len(b.Funcs)))
	for _, s := range b.Funcs {
		writeStr(s.Name)
		w(s.Addr)
		w(s.Size)
	}
	w(uint32(len(b.Imports)))
	for _, s := range b.Imports {
		writeStr(s.Name)
		w(s.Addr)
	}
	w(uint32(len(b.Data)))
	for _, s := range b.Data {
		writeStr(s.Name)
		w(s.Addr)
		w(s.Size)
	}
	return buf.Bytes(), nil
}

type reader struct {
	b   []byte
	off int
}

func (r *reader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) bytes(n uint32, limit int) ([]byte, error) {
	if int64(n) > int64(limit) {
		return nil, fmt.Errorf("%w: section of %d bytes exceeds limit", ErrMalformed, n)
	}
	if r.off+int(n) > len(r.b) {
		return nil, ErrTruncated
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	raw, err := r.bytes(n, MaxNameLen)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// Parse deserializes a FWELF binary and validates it.
func Parse(data []byte) (*Binary, error) {
	if len(data) < len(Magic) || !bytes.Equal(data[:len(Magic)], Magic[:]) {
		return nil, ErrBadMagic
	}
	r := &reader{b: data, off: len(Magic)}
	var b Binary
	var err error
	if b.Name, err = r.str(); err != nil {
		return nil, err
	}
	arch, err := r.u32()
	if err != nil {
		return nil, err
	}
	b.Arch = isa.Arch(arch)
	if b.Entry, err = r.u32(); err != nil {
		return nil, err
	}
	if b.TextBase, err = r.u32(); err != nil {
		return nil, err
	}
	tn, err := r.u32()
	if err != nil {
		return nil, err
	}
	text, err := r.bytes(tn, MaxTextSize)
	if err != nil {
		return nil, err
	}
	b.Text = append([]byte(nil), text...)
	if b.RodataBase, err = r.u32(); err != nil {
		return nil, err
	}
	rn, err := r.u32()
	if err != nil {
		return nil, err
	}
	ro, err := r.bytes(rn, MaxRodataSize)
	if err != nil {
		return nil, err
	}
	b.Rodata = append([]byte(nil), ro...)

	nf, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nf > MaxSymbols {
		return nil, fmt.Errorf("%w: %d function symbols", ErrMalformed, nf)
	}
	b.Funcs = make([]Symbol, 0, nf)
	for i := uint32(0); i < nf; i++ {
		var s Symbol
		if s.Name, err = r.str(); err != nil {
			return nil, err
		}
		if s.Addr, err = r.u32(); err != nil {
			return nil, err
		}
		if s.Size, err = r.u32(); err != nil {
			return nil, err
		}
		b.Funcs = append(b.Funcs, s)
	}
	ni, err := r.u32()
	if err != nil {
		return nil, err
	}
	if ni > MaxSymbols {
		return nil, fmt.Errorf("%w: %d imports", ErrMalformed, ni)
	}
	b.Imports = make([]Import, 0, ni)
	for i := uint32(0); i < ni; i++ {
		var s Import
		if s.Name, err = r.str(); err != nil {
			return nil, err
		}
		if s.Addr, err = r.u32(); err != nil {
			return nil, err
		}
		b.Imports = append(b.Imports, s)
	}
	nd, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nd > MaxSymbols {
		return nil, fmt.Errorf("%w: %d data symbols", ErrMalformed, nd)
	}
	b.Data = make([]DataSym, 0, nd)
	for i := uint32(0); i < nd; i++ {
		var s DataSym
		if s.Name, err = r.str(); err != nil {
			return nil, err
		}
		if s.Addr, err = r.u32(); err != nil {
			return nil, err
		}
		if s.Size, err = r.u32(); err != nil {
			return nil, err
		}
		b.Data = append(b.Data, s)
	}
	b.SortTables()
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

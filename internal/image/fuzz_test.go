package image

import (
	"testing"

	"dtaint/internal/isa"
)

// FuzzParse hardens the FWELF parser: arbitrary bytes must never panic,
// and anything accepted must satisfy the structural invariants.
func FuzzParse(f *testing.F) {
	b := &Binary{
		Name: "seed", Arch: isa.ArchARM, TextBase: 0x10000,
		Text:   make([]byte, 32),
		Funcs:  []Symbol{{Name: "f", Addr: 0x10000, Size: 32}},
		Rodata: []byte("hello\x00"),
	}
	raw, err := b.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte{})
	f.Add([]byte("FWELF"))
	f.Fuzz(func(t *testing.T, data []byte) {
		bin, err := Parse(data)
		if err != nil {
			return
		}
		if err := bin.Validate(); err != nil {
			t.Fatalf("accepted binary fails validation: %v", err)
		}
	})
}

// Package baseline implements the conventional top-down, worklist-based
// interprocedural data-dependence analysis that the paper compares DTaint
// against (Section V-B, Table VII; angr's DDG).
//
// The defining properties — and the source of its cost — are:
//
//   - Top-down traversal: roots of the call graph are analyzed first, and
//     every callee is re-analyzed at every callsite, in the caller's full
//     context (actual argument expressions and a snapshot of the caller's
//     memory state). The same callee is therefore analyzed many times
//     ("the different context-sensitive information needs to be passed to
//     callee through callsite chains, which causes the same callee to be
//     analyzed multiple times").
//   - Iterative worklist: each function-context is re-run until its
//     definition set converges (bounded by Iterations), repeatedly
//     rebuilding data flows for the same blocks.
//   - Per-variable dependence: every definition and use contributes edges
//     to a global def-use graph, regardless of relevance to taint.
//
// DTaint's bottom-up pass (package dataflow) analyzes every function
// exactly once; the wall-clock gap between the two on the same binaries
// reproduces Table VII's shape.
package baseline

import (
	"errors"
	"sort"
	"time"

	"dtaint/internal/cfg"
	"dtaint/internal/expr"
	"dtaint/internal/symexec"
	"dtaint/internal/taint"
)

// Options tunes the baseline.
type Options struct {
	// MaxDepth bounds the callsite-chain recursion.
	MaxDepth int
	// Iterations is the worklist repetition count per function context.
	Iterations int
	// MaxAnalyses is a safety cap on total function analyses.
	MaxAnalyses int
	// Symexec tunes the underlying engine. The baseline defaults are
	// heavier than DTaint's (loops unrolled, more states per block),
	// mirroring angr's more exhaustive state exploration.
	Symexec symexec.Options
	// Filter restricts the analyzed functions (same semantics as
	// dataflow.Options.Filter).
	Filter func(name string) bool
}

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	if o.Iterations <= 0 {
		o.Iterations = 2
	}
	if o.MaxAnalyses <= 0 {
		o.MaxAnalyses = 200_000
	}
	if o.Symexec.MaxStatesPerBlock == 0 {
		o.Symexec.MaxStatesPerBlock = 8
	}
	if o.Symexec.MaxLoopIters == 0 {
		o.Symexec.MaxLoopIters = 2
	}
	// LoopOnce false: the baseline unrolls loops up to MaxLoopIters.
	return o
}

// Result reports the baseline run.
type Result struct {
	// Analyses is the total number of per-function analyses performed —
	// with context-sensitive re-analysis this greatly exceeds the number
	// of functions.
	Analyses int
	// DefUseEdges counts the per-variable dependence edges built.
	DefUseEdges int
	// Findings are the taint findings the baseline discovered.
	Findings []taint.Finding
	// SSATime is the per-function symbolic-analysis phase.
	SSATime time.Duration
	// DDGTime is the interprocedural dependence-graph phase.
	DDGTime time.Duration
	// Capped reports that MaxAnalyses stopped the traversal early.
	Capped bool
}

// ErrNoProgram is returned for an empty program.
var ErrNoProgram = errors.New("baseline: empty program")

// Analyze runs the top-down baseline over the program.
func Analyze(prog *cfg.Program, opts Options) (*Result, error) {
	if prog == nil || len(prog.Funcs) == 0 {
		return nil, ErrNoProgram
	}
	opts = opts.withDefaults()
	if opts.Symexec.Prototypes == nil {
		opts.Symexec.Prototypes = taint.Prototypes()
	}
	names := make([]string, 0, len(prog.Funcs))
	inSet := make(map[string]bool, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		if opts.Filter == nil || opts.Filter(fn.Name) {
			names = append(names, fn.Name)
			inSet[fn.Name] = true
		}
	}
	if len(names) == 0 {
		return nil, ErrNoProgram
	}
	sort.Strings(names)

	res := &Result{}

	// Phase 1: per-function symbolic states, angr-style (loops unrolled).
	t0 := time.Now()
	scratch := taint.NewTracker()
	scratch.SetBinary(prog.Binary)
	for _, name := range names {
		scratch.BeginFunction(name)
		symexec.Analyze(prog.ByName[name], prog.Binary, scratch, opts.Symexec)
	}
	res.SSATime = time.Since(t0)

	// Phase 2: top-down context-sensitive dependence construction from
	// the call-graph roots.
	t1 := time.Now()
	tr := taint.NewTracker()
	tr.SetBinary(prog.Binary)
	e := &engine{prog: prog, opts: opts, res: res, inSet: inSet, tracker: tr}
	roots := rootFunctions(prog, names)
	for _, root := range roots {
		e.tracker.BeginFunction(root)
		sum := e.analyzeContext(root, nil, nil, 0)
		if sum != nil {
			e.tracker.EndFunction(sum)
		}
	}
	res.Findings = e.tracker.Findings()
	res.DDGTime = time.Since(t1)
	return res, nil
}

// rootFunctions returns functions without callers inside the set; if the
// whole set is cyclic, every function is a root.
func rootFunctions(prog *cfg.Program, names []string) []string {
	var roots []string
	for _, n := range names {
		hasCaller := false
		for _, c := range prog.Callers[n] {
			if c != n {
				hasCaller = true
				break
			}
		}
		if !hasCaller {
			roots = append(roots, n)
		}
	}
	if len(roots) == 0 {
		return names
	}
	return roots
}

type engine struct {
	prog    *cfg.Program
	opts    Options
	res     *Result
	inSet   map[string]bool
	tracker *taint.Tracker
}

// analyzeContext analyzes fn in a specific calling context, recursing into
// callees at every callsite. Iterations > 1 re-runs the analysis, the
// worklist behavior that rebuilds flows for the same blocks.
func (e *engine) analyzeContext(fn string, args []*expr.Expr, mem map[string]*expr.Expr, depth int) *symexec.Summary {
	if depth >= e.opts.MaxDepth {
		return nil
	}
	f := e.prog.ByName[fn]
	if f == nil {
		return nil
	}
	so := e.opts.Symexec
	so.InitialArgs = args
	so.InitialMem = mem

	var sum *symexec.Summary
	for i := 0; i < e.opts.Iterations; i++ {
		if e.res.Analyses >= e.opts.MaxAnalyses {
			e.res.Capped = true
			return sum
		}
		e.res.Analyses++
		oracle := &recursiveOracle{e: e, depth: depth}
		sum = symexec.Analyze(f, e.prog.Binary, oracle, so)
	}
	// Per-variable dependence edges: one per definition pair and one per
	// unresolved use.
	e.res.DefUseEdges += len(sum.DefPairs) + len(sum.UndefUses)
	return sum
}

// recursiveOracle descends into local callees at every callsite with the
// live caller context; imports go to the taint library models.
type recursiveOracle struct {
	e     *engine
	depth int
}

var _ symexec.Oracle = (*recursiveOracle)(nil)

// Call implements symexec.Oracle.
func (o *recursiveOracle) Call(ctx *symexec.CallContext) symexec.CallEffect {
	if ctx.Kind == cfg.CallImport || ctx.Kind == cfg.CallUnknown {
		return o.e.tracker.Call(ctx)
	}
	if !o.e.inSet[ctx.Callee] {
		return symexec.CallEffect{}
	}
	if o.e.res.Analyses >= o.e.opts.MaxAnalyses {
		o.e.res.Capped = true
		return symexec.CallEffect{}
	}
	o.e.tracker.PushFrame(ctx.Callee)
	sum := o.e.analyzeContext(ctx.Callee, ctx.Args, ctx.MemSnapshot(), o.depth+1)
	if sum == nil {
		// Depth or analysis cap: unwind the frame without observations.
		o.e.tracker.PopFrame(&symexec.Summary{Func: ctx.Callee})
		return symexec.CallEffect{}
	}
	o.e.tracker.PopFrame(sum)

	// Apply the callee's definitions back into the caller state. In a
	// context-sensitive analysis no substitution is needed: the callee ran
	// over the caller's actual expressions.
	eff := symexec.CallEffect{Handled: true}
	switch {
	case len(sum.Rets) == 1:
		eff.Ret = sum.Rets[0]
	case len(sum.Rets) >= 2 && len(sum.Rets) <= 4:
		var combined *expr.Expr
		for _, r := range sum.Rets {
			if r == nil {
				continue
			}
			if combined == nil {
				combined = r
			} else if !combined.Equal(r) {
				combined = expr.Bin(expr.OpOr, combined, r)
			}
		}
		eff.Ret = combined
	}
	for _, dp := range sum.DefPairs {
		addr, ok := dp.D.DerefAddr()
		if !ok {
			continue
		}
		eff.MemDefs = append(eff.MemDefs, symexec.MemDef{Addr: addr, Val: dp.U})
	}
	return eff
}

package baseline

import (
	"errors"
	"strings"
	"testing"

	"dtaint/internal/asm"
	"dtaint/internal/cfg"
	"dtaint/internal/dataflow"
)

func buildProg(t *testing.T, src string) *cfg.Program {
	t.Helper()
	bin, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

const vulnSrc = `
.arch arm
.import getenv
.import system
.data k "CMD"

.func helper
  BL system
  BX LR
.endfunc

.func main
  MOV R0, =k
  BL getenv
  BL helper
  BX LR
.endfunc
`

func TestBaselineFindsVulnerability(t *testing.T) {
	prog := buildProg(t, vulnSrc)
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, f := range res.Findings {
		if f.Sink == "system" && f.Source == "getenv" && !f.Sanitized {
			found = true
		}
	}
	if !found {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("top-down baseline missed the vulnerability")
	}
}

func TestCalleeReanalyzedPerCallsite(t *testing.T) {
	// Three callsites to the same leaf: the baseline must analyze the leaf
	// at least 3×Iterations times, plus the callers.
	src := `
.arch arm
.func leaf
  MOV R0, #1
  BX LR
.endfunc
.func a
  BL leaf
  BL leaf
  BX LR
.endfunc
.func b
  BL leaf
  BX LR
.endfunc
`
	prog := buildProg(t, src)
	res, err := Analyze(prog, Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Roots a and b: a analyzes leaf at 2 sites, b at 1 site; with 2
	// iterations per context and 2 iterations per root, leaf runs
	// (2+2)*... — at minimum far more often than once.
	if res.Analyses < 8 {
		t.Fatalf("analyses = %d; callees not re-analyzed per callsite", res.Analyses)
	}
}

func TestBaselineSlowerThanDTaint(t *testing.T) {
	// A call chain with fan-out: bottom-up analyzes each function once;
	// top-down pays the product of callsites. Compare analysis counts,
	// not wall-clock (robust under CI noise).
	var sb strings.Builder
	sb.WriteString(".arch arm\n.func l0\n  MOV R0, #1\n  BX LR\n.endfunc\n")
	for i := 1; i <= 5; i++ {
		sb.WriteString(".func l")
		sb.WriteByte(byte('0' + i))
		sb.WriteString("\n")
		// Each level calls the previous level twice.
		sb.WriteString("  BL l")
		sb.WriteByte(byte('0' + i - 1))
		sb.WriteString("\n  BL l")
		sb.WriteByte(byte('0' + i - 1))
		sb.WriteString("\n  BX LR\n.endfunc\n")
	}
	prog := buildProg(t, sb.String())
	res, err := Analyze(prog, Options{Iterations: 1, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	dtRes, err := dataflow.Analyze(prog, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Analyses <= 2*dtRes.FunctionsAnalyzed {
		t.Fatalf("baseline analyses = %d vs DTaint %d functions; expected exponential blowup",
			res.Analyses, dtRes.FunctionsAnalyzed)
	}
}

func TestDepthCap(t *testing.T) {
	src := `
.arch arm
.func a
  BL b
  BX LR
.endfunc
.func b
  BL a
  BX LR
.endfunc
`
	prog := buildProg(t, src)
	res, err := Analyze(prog, Options{MaxDepth: 4, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Mutual recursion terminates via depth cap.
	if res.Analyses == 0 || res.Analyses > 64 {
		t.Fatalf("analyses = %d", res.Analyses)
	}
}

func TestAnalysisCap(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(".arch arm\n.func l0\n  MOV R0, #1\n  BX LR\n.endfunc\n")
	for i := 1; i <= 7; i++ {
		sb.WriteString(".func l")
		sb.WriteByte(byte('0' + i))
		sb.WriteString("\n  BL l")
		sb.WriteByte(byte('0' + i - 1))
		sb.WriteString("\n  BL l")
		sb.WriteByte(byte('0' + i - 1))
		sb.WriteString("\n  BL l")
		sb.WriteByte(byte('0' + i - 1))
		sb.WriteString("\n  BX LR\n.endfunc\n")
	}
	prog := buildProg(t, sb.String())
	res, err := Analyze(prog, Options{MaxAnalyses: 50, Iterations: 1, MaxDepth: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped {
		t.Fatalf("cap not reported; analyses = %d", res.Analyses)
	}
	if res.Analyses > 60 {
		t.Fatalf("cap ineffective: %d analyses", res.Analyses)
	}
}

func TestEmptyProgram(t *testing.T) {
	if _, err := Analyze(nil, Options{}); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("want ErrNoProgram, got %v", err)
	}
}

func TestFilter(t *testing.T) {
	prog := buildProg(t, vulnSrc)
	res, err := Analyze(prog, Options{Filter: func(n string) bool { return n == "helper" }})
	if err != nil {
		t.Fatal(err)
	}
	// Only helper analyzed; its system() call sees an argument expression,
	// not taint, so no unsanitized finding with a source.
	for _, f := range res.Findings {
		if f.Source == "getenv" {
			t.Fatalf("filtered function contributed taint: %s", f.String())
		}
	}
	if res.Analyses == 0 {
		t.Fatal("nothing analyzed")
	}
}

func TestDefUseEdgesCounted(t *testing.T) {
	prog := buildProg(t, vulnSrc)
	res, err := Analyze(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DefUseEdges < 0 {
		t.Fatal("negative edges")
	}
	if res.SSATime <= 0 || res.DDGTime <= 0 {
		t.Fatalf("phases not timed: %+v", res)
	}
}

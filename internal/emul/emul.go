// Package emul models full-system firmware emulation in the style of
// FIRMADYNE, for the paper's Section II-A study (Figure 1).
//
// The paper runs 6,529 firmware images through an emulator and finds that
// fewer than 670 boot successfully; the rest fail to access custom
// hardware peripherals or to initialize their network configuration. This
// model reproduces exactly those two failure classes: an Emulator provides
// a fixed set of generic peripherals and default NVRAM keys; an image
// boots iff its declared requirements are satisfiable.
package emul

import (
	"fmt"
	"sort"

	"dtaint/internal/firmware"
)

// FailReason classifies why a boot failed.
type FailReason int

// Boot failure classes: extraction, a missing init program, the paper's
// two dominant runtime causes (custom hardware, network configuration).
const (
	FailNone FailReason = iota
	FailUnpack
	FailNoInit
	FailPeripheral
	FailNetworkConfig
)

// String implements fmt.Stringer.
func (f FailReason) String() string {
	switch f {
	case FailNone:
		return "ok"
	case FailUnpack:
		return "unpack failed"
	case FailNoInit:
		return "no init program in rootfs"
	case FailPeripheral:
		return "missing peripheral"
	case FailNetworkConfig:
		return "network configuration failed"
	}
	return "fail?"
}

// Result reports the outcome of a boot attempt.
type Result struct {
	OK      bool
	Reason  FailReason
	Missing []string // peripherals or NVRAM keys that were unavailable
}

// Emulator is a full-system emulator with a fixed hardware model.
type Emulator struct {
	peripherals map[string]bool
	nvram       map[string]bool
}

// DefaultPeripherals is the generic hardware a FIRMADYNE-like emulator
// provides: standard CPU, memory, flash, a generic NIC and an NVRAM shim.
var DefaultPeripherals = []string{
	"nvram",
	"flash",
	"uart",
	"eth-generic",
	"watchdog",
}

// DefaultNVRAMKeys are the keys the NVRAM shim pre-populates.
var DefaultNVRAMKeys = []string{
	"lan_ipaddr",
	"lan_netmask",
	"wan_proto",
	"hostname",
}

// New returns an emulator with the default hardware model.
func New() *Emulator {
	return NewWith(DefaultPeripherals, DefaultNVRAMKeys)
}

// NewWith returns an emulator providing exactly the given peripherals and
// NVRAM keys.
func NewWith(peripherals, nvramKeys []string) *Emulator {
	e := &Emulator{
		peripherals: make(map[string]bool, len(peripherals)),
		nvram:       make(map[string]bool, len(nvramKeys)),
	}
	for _, p := range peripherals {
		e.peripherals[p] = true
	}
	for _, k := range nvramKeys {
		e.nvram[k] = true
	}
	return e
}

// initPaths are the programs the boot process will execute as PID 1,
// in probe order (FIRMADYNE patches the kernel to locate the image's own
// init).
var initPaths = []string{"/sbin/init", "/init", "/bin/busybox", "/bin/sh"}

// Boot attempts to boot a parsed firmware image through the full staged
// pipeline: extract the root filesystem, locate an init program, probe
// the hardware the boot scripts touch, then bring up the network
// configuration from NVRAM.
func (e *Emulator) Boot(img *firmware.Image) Result {
	fs, err := firmware.ExtractRootFS(img)
	if err != nil {
		return Result{Reason: FailUnpack}
	}
	hasInit := false
	for _, p := range initPaths {
		if _, err := fs.Lookup(p); err == nil {
			hasInit = true
			break
		}
	}
	if !hasInit {
		return Result{Reason: FailNoInit}
	}
	var missing []string
	for _, p := range img.Header.Boot.Peripherals {
		if !e.peripherals[p] {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return Result{Reason: FailPeripheral, Missing: missing}
	}
	for _, k := range img.Header.Boot.NVRAMKeys {
		if !e.nvram[k] {
			missing = append(missing, k)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return Result{Reason: FailNetworkConfig, Missing: missing}
	}
	return Result{OK: true}
}

// BootRaw scans, unpacks, and boots raw image bytes.
func (e *Emulator) BootRaw(data []byte) Result {
	img, _, err := firmware.Scan(data)
	if err != nil {
		return Result{Reason: FailUnpack}
	}
	return e.Boot(img)
}

// YearStat aggregates boot outcomes for one release year (one histogram
// bar of Figure 1).
type YearStat struct {
	Year    int
	Total   int
	Success int
}

// Failed returns the number of failed boots in the year.
func (y YearStat) Failed() int { return y.Total - y.Success }

// Study boots every image and aggregates results per release year,
// producing the Figure 1 data series.
func (e *Emulator) Study(images []*firmware.Image) []YearStat {
	byYear := make(map[int]*YearStat)
	for _, img := range images {
		st, ok := byYear[img.Header.Year]
		if !ok {
			st = &YearStat{Year: img.Header.Year}
			byYear[img.Header.Year] = st
		}
		st.Total++
		if e.Boot(img).OK {
			st.Success++
		}
	}
	out := make([]YearStat, 0, len(byYear))
	for _, st := range byYear {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Year < out[j].Year })
	return out
}

// Summarize renders the study as text rows (year, emulable, failed).
func Summarize(stats []YearStat) string {
	s := "Year  Total  Emulable  Failed\n"
	for _, st := range stats {
		s += fmt.Sprintf("%d  %5d  %8d  %6d\n", st.Year, st.Total, st.Success, st.Failed())
	}
	return s
}

package emul

import (
	"strings"
	"testing"

	"dtaint/internal/firmware"
	"dtaint/internal/isa"
)

func imageWith(t *testing.T, reqs firmware.BootRequirements, rootFlags uint8) *firmware.Image {
	t.Helper()
	fs := &firmware.FS{}
	if err := fs.Add(firmware.File{Path: "/sbin/init", Mode: 0o755, Data: []byte("init")}); err != nil {
		t.Fatal(err)
	}
	payload, err := firmware.MarshalFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	return &firmware.Image{
		Header: firmware.Header{
			Vendor: "v", Product: "p", Version: "1", Year: 2014,
			Arch: isa.ArchARM, Boot: reqs,
		},
		Parts: []firmware.Part{{Type: firmware.PartRootFS, Flags: rootFlags, Data: payload}},
	}
}

func TestBootSuccess(t *testing.T) {
	e := New()
	img := imageWith(t, firmware.BootRequirements{
		Peripherals: []string{"nvram", "uart"},
		NVRAMKeys:   []string{"lan_ipaddr"},
	}, 0)
	res := e.Boot(img)
	if !res.OK || res.Reason != FailNone {
		t.Fatalf("boot failed: %+v", res)
	}
}

func TestBootMissingPeripheral(t *testing.T) {
	e := New()
	img := imageWith(t, firmware.BootRequirements{
		Peripherals: []string{"nvram", "sensor-imx291", "dsp-vendor"},
	}, 0)
	res := e.Boot(img)
	if res.OK || res.Reason != FailPeripheral {
		t.Fatalf("want peripheral failure, got %+v", res)
	}
	if len(res.Missing) != 2 || res.Missing[0] != "dsp-vendor" {
		t.Fatalf("missing = %v", res.Missing)
	}
}

func TestBootMissingNVRAM(t *testing.T) {
	e := New()
	img := imageWith(t, firmware.BootRequirements{
		Peripherals: []string{"nvram"},
		NVRAMKeys:   []string{"vendor_secret_key"},
	}, 0)
	res := e.Boot(img)
	if res.OK || res.Reason != FailNetworkConfig {
		t.Fatalf("want network-config failure, got %+v", res)
	}
}

func TestBootNoInit(t *testing.T) {
	e := New()
	payload, err := firmware.MarshalFS(&firmware.FS{})
	if err != nil {
		t.Fatal(err)
	}
	img := &firmware.Image{
		Header: firmware.Header{Vendor: "v", Product: "p", Version: "1", Year: 2014, Arch: isa.ArchARM},
		Parts:  []firmware.Part{{Type: firmware.PartRootFS, Data: payload}},
	}
	res := e.Boot(img)
	if res.OK || res.Reason != FailNoInit {
		t.Fatalf("want init failure, got %+v", res)
	}
}

func TestBootEncryptedImageFailsUnpack(t *testing.T) {
	e := New()
	img := imageWith(t, firmware.BootRequirements{}, firmware.FlagEncrypted)
	res := e.Boot(img)
	if res.OK || res.Reason != FailUnpack {
		t.Fatalf("want unpack failure, got %+v", res)
	}
}

func TestBootRaw(t *testing.T) {
	e := New()
	img := imageWith(t, firmware.BootRequirements{Peripherals: []string{"uart"}}, 0)
	raw, err := firmware.Pack(img)
	if err != nil {
		t.Fatal(err)
	}
	if res := e.BootRaw(raw); !res.OK {
		t.Fatalf("BootRaw failed: %+v", res)
	}
	if res := e.BootRaw([]byte("garbage")); res.OK || res.Reason != FailUnpack {
		t.Fatalf("garbage booted: %+v", res)
	}
}

func TestStudyAggregation(t *testing.T) {
	e := New()
	var images []*firmware.Image
	mk := func(year int, periph string) *firmware.Image {
		img := imageWith(t, firmware.BootRequirements{Peripherals: []string{periph}}, 0)
		img.Header.Year = year
		return img
	}
	images = append(images,
		mk(2009, "uart"), mk(2009, "custom-asic"),
		mk(2010, "uart"), mk(2010, "uart"), mk(2010, "custom-asic"),
	)
	stats := e.Study(images)
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].Year != 2009 || stats[0].Total != 2 || stats[0].Success != 1 {
		t.Fatalf("2009 = %+v", stats[0])
	}
	if stats[1].Year != 2010 || stats[1].Total != 3 || stats[1].Success != 2 || stats[1].Failed() != 1 {
		t.Fatalf("2010 = %+v", stats[1])
	}
	text := Summarize(stats)
	if !strings.Contains(text, "2009") || !strings.Contains(text, "Emulable") {
		t.Fatalf("summary:\n%s", text)
	}
}

func TestNewWithCustomHardware(t *testing.T) {
	e := NewWith([]string{"sensor-imx291"}, nil)
	img := imageWith(t, firmware.BootRequirements{Peripherals: []string{"sensor-imx291"}}, 0)
	if res := e.Boot(img); !res.OK {
		t.Fatalf("custom hardware not honored: %+v", res)
	}
}

func TestFailReasonStrings(t *testing.T) {
	for r, want := range map[FailReason]string{
		FailNone:          "ok",
		FailNoInit:        "no init program in rootfs",
		FailUnpack:        "unpack failed",
		FailPeripheral:    "missing peripheral",
		FailNetworkConfig: "network configuration failed",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), want)
		}
	}
}

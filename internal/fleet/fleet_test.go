package fleet

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"dtaint/internal/asm"
	"dtaint/internal/dataflow"
	"dtaint/internal/firmware"
	"dtaint/internal/obs"
	"dtaint/internal/taint"
)

// vulnSrc is a minimal vulnerable program: recv fills a buffer that
// strcpy copies without a bound.
const vulnSrc = `
.arch arm
.import recv
.import strcpy

.func handler
  SUB SP, SP, #0x120
  MOV R0, #0
  ADD R1, SP, #0x20
  MOV R2, #0x100
  BL recv
  ADD R1, SP, #0x20
  ADD R0, SP, #0x8
  BL strcpy
  BX LR
.endfunc
`

// cleanSrc has no taint path at all.
const cleanSrc = `
.arch arm
.import memset

.func tidy
  SUB SP, SP, #0x40
  ADD R0, SP, #0x10
  MOV R1, #0
  MOV R2, #0x20
  BL memset
  BX LR
.endfunc
`

func mustAssemble(t *testing.T, name, src string) []byte {
	t.Helper()
	bin, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := bin.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// testImage packs a firmware container whose rootfs holds the given
// executables plus non-FWELF noise files.
func testImage(t *testing.T, bins map[string][]byte) []byte {
	t.Helper()
	fs := &firmware.FS{}
	files := map[string][]byte{
		"/bin/busybox": []byte("busybox-stub"),
		"/etc/passwd":  []byte("root::0:0::/:/bin/sh\n"),
	}
	for path, data := range bins {
		files[path] = data
	}
	for path, data := range files {
		if err := fs.Add(firmware.File{Path: path, Mode: 0o755, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	payload, err := firmware.MarshalFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	img := &firmware.Image{
		Header: firmware.Header{Vendor: "TestCo", Product: "TC-1", Version: "1.0", Year: 2016},
		Parts: []firmware.Part{
			{Type: firmware.PartKernel, Data: []byte("kernel-stub")},
			{Type: firmware.PartRootFS, Data: payload},
		},
	}
	data, err := firmware.Pack(img)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func twoBinaryImage(t *testing.T) []byte {
	t.Helper()
	vuln := mustAssemble(t, "webd", vulnSrc)
	clean := mustAssemble(t, "tidyd", cleanSrc)
	return testImage(t, map[string][]byte{
		"/usr/sbin/webd":  vuln,
		"/usr/sbin/webd2": vuln, // same bytes at a second path: cache fodder
		"/usr/bin/tidyd":  clean,
	})
}

// normalize zeroes every timing field so reports from differently
// parallel (or differently fast) runs compare equal.
func normalize(r *ImageReport) *ImageReport {
	c := *r
	c.Wall = 0
	c.Workers = 0
	c.Cache = CacheStats{}
	c.Runtime = obs.RuntimeStats{}
	c.Binaries = append([]BinaryScan(nil), r.Binaries...)
	for i := range c.Binaries {
		c.Binaries[i].Duration = 0
		if a := c.Binaries[i].Analysis; a != nil {
			ac := *a
			ac.SSATime = 0
			ac.DDGTime = 0
			c.Binaries[i].Analysis = &ac
		}
	}
	return &c
}

func TestScanImageFindsVulnerabilities(t *testing.T) {
	rep, err := ScanImage(context.Background(), twoBinaryImage(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 3 {
		t.Fatalf("candidates = %d, want 3", rep.Candidates)
	}
	if rep.Scanned != 3 || rep.Failed != 0 || rep.Skipped != 0 {
		t.Fatalf("scanned/failed/skipped = %d/%d/%d, want 3/0/0", rep.Scanned, rep.Failed, rep.Skipped)
	}
	if rep.Vulnerabilities != 2 { // one per webd copy
		t.Fatalf("vulnerabilities = %d, want 2", rep.Vulnerabilities)
	}
	if got := rep.FindingsByClass[taint.ClassBufferOverflow.String()]; got != 2 {
		t.Fatalf("buffer-overflow count = %d, want 2", got)
	}
	// Binaries are listed in rootfs path order.
	var paths []string
	for _, b := range rep.Binaries {
		paths = append(paths, b.Path)
	}
	want := []string{"/usr/bin/tidyd", "/usr/sbin/webd", "/usr/sbin/webd2"}
	if !reflect.DeepEqual(paths, want) {
		t.Fatalf("paths = %v, want %v", paths, want)
	}
	for _, b := range rep.Binaries {
		if b.SHA256 == "" || len(b.SHA256) != 64 {
			t.Fatalf("binary %s: bad sha256 %q", b.Path, b.SHA256)
		}
	}
}

// TestScanImageDeterministic is the worker-count determinism guarantee:
// identical ImageReports (timings aside) for pools of 1, 4, and 8.
func TestScanImageDeterministic(t *testing.T) {
	img := twoBinaryImage(t)
	var base *ImageReport
	for _, workers := range []int{1, 4, 8} {
		rep, err := ScanImage(context.Background(), img, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		n := normalize(rep)
		if base == nil {
			base = n
			continue
		}
		if !reflect.DeepEqual(base, n) {
			t.Fatalf("workers=%d: report differs from 1-worker report\n got %+v\nwant %+v", workers, n, base)
		}
	}
}

func TestScanImageCache(t *testing.T) {
	cache, err := NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	img := twoBinaryImage(t)

	// One worker so the two webd copies run in order: the second copy
	// must hit the entry the first one just stored.
	rep1, err := ScanImage(context.Background(), img, Options{Cache: cache, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// webd and webd2 share bytes, so the first pass already hits once.
	if rep1.Cached != 1 || rep1.Scanned != 2 {
		t.Fatalf("first pass cached/scanned = %d/%d, want 1/2", rep1.Cached, rep1.Scanned)
	}

	rep2, err := ScanImage(context.Background(), img, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Cached != 3 || rep2.Scanned != 0 {
		t.Fatalf("second pass cached/scanned = %d/%d, want 3/0", rep2.Cached, rep2.Scanned)
	}
	if rep2.Cache.Hits < 4 {
		t.Fatalf("cache hits = %d, want >= 4", rep2.Cache.Hits)
	}
	// Cached results carry the same findings.
	if rep1.Vulnerabilities != rep2.Vulnerabilities || rep1.VulnerablePaths != rep2.VulnerablePaths {
		t.Fatalf("cached totals diverge: %d/%d vs %d/%d",
			rep1.Vulnerabilities, rep1.VulnerablePaths, rep2.Vulnerabilities, rep2.VulnerablePaths)
	}
}

func TestScanImageDiskCache(t *testing.T) {
	dir := t.TempDir()
	img := twoBinaryImage(t)

	c1, err := NewCache(16, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScanImage(context.Background(), img, Options{Cache: c1}); err != nil {
		t.Fatal(err)
	}

	// A fresh process (new Cache over the same dir) must hit disk.
	c2, err := NewCache(16, dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ScanImage(context.Background(), img, Options{Cache: c2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cached != 3 {
		t.Fatalf("disk-backed pass cached = %d, want 3", rep.Cached)
	}
	st := c2.Stats()
	if st.DiskHits == 0 {
		t.Fatalf("disk hits = 0, want > 0 (stats %+v)", st)
	}
}

func TestCacheEviction(t *testing.T) {
	c, err := NewCache(1, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("a", &BinaryAnalysis{Binary: "a"})
	c.Put("b", &BinaryAnalysis{Binary: "b"})
	if _, ok := c.Get("a"); ok {
		t.Fatal("evicted entry still present")
	}
	if v, ok := c.Get("b"); !ok || v.Binary != "b" {
		t.Fatalf("entry b missing or wrong: %v %v", v, ok)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 eviction, 1 entry", st)
	}
}

func TestCacheGetIsolation(t *testing.T) {
	c, err := NewCache(4, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", &BinaryAnalysis{Binary: "x", Findings: []Finding{{Sink: "strcpy"}}})
	v1, _ := c.Get("k")
	v1.Findings[0].Sink = "mutated"
	v2, _ := c.Get("k")
	if v2.Findings[0].Sink != "strcpy" {
		t.Fatal("cache value mutated through a returned report")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(dataflow.Options{}, "")
	if got := Fingerprint(dataflow.Options{Parallelism: 8}, ""); got != base {
		t.Fatal("parallelism must not change the fingerprint")
	}
	if got := Fingerprint(dataflow.Options{DisableAlias: true}, ""); got == base {
		t.Fatal("alias ablation must change the fingerprint")
	}
	withSrc := dataflow.Options{ExtraSources: []taint.SourceSpec{{Name: "nvram_get", BufArg: -1, ViaReturn: true}}}
	if got := Fingerprint(withSrc, ""); got == base {
		t.Fatal("extra sources must change the fingerprint")
	}
	if got := Fingerprint(dataflow.Options{}, "module-x"); got == base {
		t.Fatal("filter tag must change the fingerprint")
	}
	if Key([]byte("bin"), base) == Key([]byte("bin"), Fingerprint(dataflow.Options{DisableAlias: true}, "")) {
		t.Fatal("different fingerprints produced the same key")
	}
}

// TestScanImageFilterBypassesCache: a non-nil filter with no tag must
// never share cache entries.
func TestScanImageFilterBypassesCache(t *testing.T) {
	cache, err := NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	img := twoBinaryImage(t)
	opts := Options{
		Cache:    cache,
		Analysis: dataflow.Options{Filter: func(string) bool { return true }},
	}
	rep, err := ScanImage(context.Background(), img, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cached != 0 {
		t.Fatalf("cached = %d, want 0 (untagged filter must bypass cache)", rep.Cached)
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("cache entries = %d, want 0", st.Entries)
	}
}

func TestScanImagePanicIsolation(t *testing.T) {
	orig := analyze
	defer func() { analyze = orig }()
	analyze = func(f firmware.File, o dataflow.Options) (*BinaryAnalysis, error) {
		if strings.Contains(f.Path, "webd") {
			panic("corrupt section table")
		}
		return orig(f, o)
	}
	rep, err := ScanImage(context.Background(), twoBinaryImage(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 2 || rep.Scanned != 1 {
		t.Fatalf("failed/scanned = %d/%d, want 2/1", rep.Failed, rep.Scanned)
	}
	for _, b := range rep.Binaries {
		if strings.Contains(b.Path, "webd") {
			if b.Status != StatusFailed || !strings.Contains(b.Error, "panicked") {
				t.Fatalf("binary %s: status %q error %q, want failed/panicked", b.Path, b.Status, b.Error)
			}
		} else if b.Status != StatusOK {
			t.Fatalf("healthy binary %s: status %q, want ok", b.Path, b.Status)
		}
	}
}

func TestScanImagePerBinaryTimeout(t *testing.T) {
	orig := analyze
	defer func() { analyze = orig }()
	release := make(chan struct{})
	defer close(release)
	analyze = func(f firmware.File, o dataflow.Options) (*BinaryAnalysis, error) {
		if strings.HasSuffix(f.Path, "webd") {
			<-release // hang until the test tears down
		}
		return orig(f, o)
	}
	rep, err := ScanImage(context.Background(), twoBinaryImage(t),
		Options{PerBinaryTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var timedOut int
	for _, b := range rep.Binaries {
		if b.Status == StatusTimeout {
			timedOut++
		}
	}
	if timedOut != 1 || rep.Failed != 1 {
		t.Fatalf("timeouts = %d, failed = %d, want 1/1", timedOut, rep.Failed)
	}
}

func TestScanImageCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := ScanImage(ctx, twoBinaryImage(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != rep.Candidates || rep.Scanned != 0 {
		t.Fatalf("skipped/scanned = %d/%d, want %d/0", rep.Skipped, rep.Scanned, rep.Candidates)
	}
}

func TestScanImageProgress(t *testing.T) {
	var calls []int
	_, err := ScanImage(context.Background(), twoBinaryImage(t), Options{
		Workers:  2,
		Progress: func(done, total int) { calls = append(calls, done*100+total) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{103, 203, 303}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("progress calls = %v, want %v", calls, want)
	}
}

func TestScanImageErrors(t *testing.T) {
	if _, err := ScanImage(context.Background(), []byte("not firmware"), Options{}); err == nil {
		t.Fatal("junk accepted")
	}
	if _, err := ScanImage(context.Background(), nil, Options{Workers: -1}); err != ErrBadWorkers {
		t.Fatalf("negative workers: err = %v, want ErrBadWorkers", err)
	}
}

func TestMergeReports(t *testing.T) {
	r1 := &ImageReport{Candidates: 2, Scanned: 2, Vulnerabilities: 3, VulnerablePaths: 5,
		FindingsByClass: map[string]int{"buffer-overflow": 3}}
	r2 := &ImageReport{Candidates: 1, Cached: 1, Vulnerabilities: 1, VulnerablePaths: 1,
		FindingsByClass: map[string]int{"command-injection": 1}}
	tot := MergeReports([]*ImageReport{r1, nil, r2})
	if tot.Images != 2 || tot.Candidates != 3 || tot.Vulnerabilities != 4 || tot.VulnerablePaths != 6 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.FindingsByClass["buffer-overflow"] != 3 || tot.FindingsByClass["command-injection"] != 1 {
		t.Fatalf("by-class = %v", tot.FindingsByClass)
	}
}

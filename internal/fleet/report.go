// Package fleet scans whole firmware images — and fleets of images —
// instead of one executable per process. It is the serving layer the
// paper's evaluation implies: Table II's six study images carry 115
// binaries, and the Section II-A population holds 6,529 images, so the
// unit of work at scale is "image" (or "device fleet"), not "binary".
//
// The package provides three pieces:
//
//   - a job orchestrator (ScanImage) that unpacks a firmware container,
//     enumerates candidate FWELF executables in its root filesystem, and
//     fans them out across a bounded worker pool with per-binary
//     timeouts, panic isolation, and context cancellation;
//   - a content-addressed report cache (Cache) keyed by the SHA-256 of
//     the binary bytes plus an analyzer-options fingerprint, with an
//     in-memory LRU tier and an optional on-disk tier, so re-scanning an
//     image — or a fleet of images sharing binaries — skips redundant
//     analysis;
//   - an aggregation layer (ImageReport) that merges per-binary results
//     into Table VI-style per-image totals.
//
// Results are deterministic: for a fixed image and analysis options the
// ImageReport is identical for any worker count (the per-binary analyzer
// already guarantees this; the orchestrator preserves input order and
// keeps aggregation order-independent).
package fleet

import (
	"sort"
	"time"

	"dtaint/internal/obs"
	"dtaint/internal/taint"
)

// Status classifies the outcome of one binary's scan.
type Status string

// Binary scan outcomes.
const (
	// StatusOK: analyzed fresh in this run.
	StatusOK Status = "ok"
	// StatusCached: report served from the content-addressed cache.
	StatusCached Status = "cached"
	// StatusFailed: the analysis returned an error or panicked.
	StatusFailed Status = "failed"
	// StatusTimeout: the per-binary deadline elapsed before the analysis
	// finished.
	StatusTimeout Status = "timeout"
	// StatusStalled: the stall watchdog fired (no telemetry events for
	// the configured deadline) and the in-flight analysis was abandoned.
	// Distinct from StatusTimeout so a watchdog kill never masquerades
	// as an empty success or an ordinary deadline.
	StatusStalled Status = "stalled"
	// StatusSkipped: the scan was cancelled before this binary started.
	StatusSkipped Status = "skipped"
)

// Finding is the wire/cache form of one (source, path, sink) tuple. It
// mirrors the public report's finding with every field JSON-serializable.
type Finding struct {
	Class     string   `json:"class"`
	Sink      string   `json:"sink"`
	SinkFunc  string   `json:"sinkFunc"`
	SinkAddr  uint32   `json:"sinkAddr"`
	Source    string   `json:"source"`
	Path      []string `json:"path"`
	Sanitized bool     `json:"sanitized"`
}

// Key returns the canonical deduplication key (shared with every other
// report layer via taint.VulnKey).
func (f Finding) Key() string {
	return taint.VulnKey(f.SinkFunc, f.Sink, f.SinkAddr, f.Class)
}

// BinaryAnalysis is the complete, serializable result of analyzing one
// executable. It is both the cache value and the per-binary payload of
// the HTTP ImageReport, so a cached scan reproduces exactly what a fresh
// scan would have reported (timings excepted: cached entries keep the
// timings of the run that produced them).
type BinaryAnalysis struct {
	Binary            string        `json:"binary"`
	Arch              string        `json:"arch"`
	Functions         int           `json:"functions"`
	Blocks            int           `json:"blocks"`
	CallEdges         int           `json:"callEdges"`
	FunctionsAnalyzed int           `json:"functionsAnalyzed"`
	SinkCount         int           `json:"sinkCount"`
	IndirectResolved  int           `json:"indirectResolved"`
	DefPairs          int           `json:"defPairs"`
	Truncated         int           `json:"truncated"`
	SSATime           time.Duration `json:"ssaNanos"`
	DDGTime           time.Duration `json:"ddgNanos"`
	DDGWorkers        int           `json:"ddgWorkers"`
	SCCComponents     int           `json:"sccComponents"`
	CriticalPath      int           `json:"criticalPath"`
	// SummaryHits/SummaryMisses count the producing run's function-summary
	// store lookups (both zero when the run had no store). Like the
	// timings, cached entries keep the values of the run that produced
	// them — they are cost attribution, not part of the analysis result.
	SummaryHits   int       `json:"summaryHits,omitempty"`
	SummaryMisses int       `json:"summaryMisses,omitempty"`
	Findings      []Finding `json:"findings"`
}

// VulnerablePaths counts the unsanitized findings.
func (a *BinaryAnalysis) VulnerablePaths() int {
	n := 0
	for _, f := range a.Findings {
		if !f.Sanitized {
			n++
		}
	}
	return n
}

// Vulnerabilities counts unsanitized findings deduplicated by sink
// location, using the same key as every other report layer.
func (a *BinaryAnalysis) Vulnerabilities() int {
	seen := make(map[string]bool)
	for _, f := range a.Findings {
		if f.Sanitized || seen[f.Key()] {
			continue
		}
		seen[f.Key()] = true
	}
	return len(seen)
}

// BinaryScan is one rootfs executable's entry in an ImageReport.
type BinaryScan struct {
	// Path is the file's rootfs path.
	Path string `json:"path"`
	// SHA256 is the hex digest of the binary bytes (the content half of
	// the cache key).
	SHA256 string `json:"sha256"`
	Status Status `json:"status"`
	// Error describes a failed, timed-out, or skipped scan.
	Error string `json:"error,omitempty"`
	// Duration is this run's wall-clock spent on the binary (zero for
	// cache hits and skips).
	Duration time.Duration `json:"durationNanos"`
	// Analysis is the full result; nil unless Status is ok or cached.
	Analysis *BinaryAnalysis `json:"analysis,omitempty"`
}

// ImageReport aggregates one firmware image's scan — the per-image row
// of a fleet run (Table VI-style totals plus per-binary detail).
type ImageReport struct {
	// Image identity, from the container header.
	Vendor  string `json:"vendor"`
	Product string `json:"product"`
	Version string `json:"version"`
	Year    int    `json:"year"`
	Arch    string `json:"arch"`

	// Candidates is how many rootfs files carried the FWELF magic (after
	// the optional path filter).
	Candidates int `json:"candidates"`
	// Scanned/Cached/Failed/Stalled/Skipped partition the candidates:
	// analyzed fresh, served from cache, failed or timed out, abandoned
	// by the stall watchdog, never started.
	Scanned int `json:"scanned"`
	Cached  int `json:"cached"`
	Failed  int `json:"failed"`
	Stalled int `json:"stalled,omitempty"`
	Skipped int `json:"skipped"`

	// Vulnerabilities and VulnerablePaths are totals over all analyzed
	// binaries (deduplicated per binary; the same weak busybox installed
	// twice is two attack surfaces and counts twice).
	Vulnerabilities int `json:"vulnerabilities"`
	VulnerablePaths int `json:"vulnerablePaths"`
	// FindingsByClass counts deduplicated vulnerabilities per class.
	FindingsByClass map[string]int `json:"findingsByClass"`

	// Workers is the orchestrator pool size the scan ran with.
	Workers int `json:"workers"`
	// Wall is the whole-image wall-clock time.
	Wall time.Duration `json:"wallNanos"`

	// Binaries lists every candidate in rootfs path order.
	Binaries []BinaryScan `json:"binaries"`

	// Cache is a snapshot of the report cache's counters taken when the
	// scan finished (zero value when the scan ran uncached).
	Cache CacheStats `json:"cache"`

	// Runtime snapshots the Go runtime (heap, goroutines, GC) when the
	// scan finished.
	Runtime obs.RuntimeStats `json:"runtime"`
}

// aggregate fills the report's totals from its Binaries list. The input
// order is the deterministic rootfs path order, and every total is a sum
// over per-binary values, so the result is identical for any worker
// count.
func (r *ImageReport) aggregate() {
	r.FindingsByClass = make(map[string]int)
	for _, b := range r.Binaries {
		switch b.Status {
		case StatusOK:
			r.Scanned++
		case StatusCached:
			r.Cached++
		case StatusFailed, StatusTimeout:
			r.Failed++
		case StatusStalled:
			r.Stalled++
		case StatusSkipped:
			r.Skipped++
		}
		if b.Analysis == nil {
			continue
		}
		r.Vulnerabilities += b.Analysis.Vulnerabilities()
		r.VulnerablePaths += b.Analysis.VulnerablePaths()
		seen := make(map[string]bool)
		for _, f := range b.Analysis.Findings {
			if f.Sanitized || seen[f.Key()] {
				continue
			}
			seen[f.Key()] = true
			r.FindingsByClass[f.Class]++
		}
	}
}

// MergeReports folds several per-image reports into fleet-wide totals:
// candidates, scan outcomes, and deduplicated vulnerability counts by
// class, for a fleet run over many images (the 6,529-image population
// workload). Per-binary detail stays in the per-image reports.
type FleetTotals struct {
	Images          int            `json:"images"`
	Candidates      int            `json:"candidates"`
	Scanned         int            `json:"scanned"`
	Cached          int            `json:"cached"`
	Failed          int            `json:"failed"`
	Stalled         int            `json:"stalled,omitempty"`
	Skipped         int            `json:"skipped"`
	Vulnerabilities int            `json:"vulnerabilities"`
	VulnerablePaths int            `json:"vulnerablePaths"`
	FindingsByClass map[string]int `json:"findingsByClass"`
	Wall            time.Duration  `json:"wallNanos"`
}

// MergeReports aggregates per-image reports into fleet totals.
func MergeReports(reports []*ImageReport) FleetTotals {
	t := FleetTotals{FindingsByClass: make(map[string]int)}
	for _, r := range reports {
		if r == nil {
			continue
		}
		t.Images++
		t.Candidates += r.Candidates
		t.Scanned += r.Scanned
		t.Cached += r.Cached
		t.Failed += r.Failed
		t.Stalled += r.Stalled
		t.Skipped += r.Skipped
		t.Vulnerabilities += r.Vulnerabilities
		t.VulnerablePaths += r.VulnerablePaths
		t.Wall += r.Wall
		for class, n := range r.FindingsByClass {
			t.FindingsByClass[class] += n
		}
	}
	return t
}

// Classes returns the report's vulnerability classes in sorted order —
// a stable iteration order for rendering FindingsByClass.
func (r *ImageReport) Classes() []string {
	out := make([]string, 0, len(r.FindingsByClass))
	for c := range r.FindingsByClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"dtaint/internal/obs"
)

// A traced image scan must record the scan-image root span, one
// scan-binary span per candidate (status attr included), and the full
// per-binary pipeline stages nested under them.
func TestScanImageSpans(t *testing.T) {
	img := twoBinaryImage(t)
	tr := obs.NewTracer()
	reg := obs.NewRegistry()
	opts := Options{Workers: 2}
	opts.Analysis.Tracer = tr
	opts.Analysis.Metrics = reg

	rep, err := ScanImage(context.Background(), img, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runtime.HeapAllocBytes == 0 || rep.Runtime.Goroutines == 0 {
		t.Fatalf("runtime snapshot missing: %+v", rep.Runtime)
	}

	byName := map[string]int{}
	var binaryStatuses []string
	for _, s := range tr.Spans() {
		byName[s.Name]++
		if s.Name == "scan-binary" {
			st, _ := s.Attr("status").(string)
			binaryStatuses = append(binaryStatuses, st)
		}
	}
	if byName["scan-image"] != 1 {
		t.Fatalf("scan-image spans = %d, want 1", byName["scan-image"])
	}
	if byName["scan-binary"] != rep.Candidates {
		t.Fatalf("scan-binary spans = %d, candidates = %d", byName["scan-binary"], rep.Candidates)
	}
	for _, st := range binaryStatuses {
		if st != string(StatusOK) {
			t.Fatalf("scan-binary status attr = %q", st)
		}
	}
	for _, stage := range []string{"unpack-firmware", "parse-image", "build-cfg",
		"function-analysis", "interproc-dataflow"} {
		if byName[stage] == 0 {
			t.Errorf("stage span %q missing (got %v)", stage, byName)
		}
	}

	// Fleet metrics: outcome counters and image total.
	counters := map[string]float64{}
	for _, s := range reg.Snapshot() {
		key := s.Name
		if s.Labels["status"] != "" {
			key += ":" + s.Labels["status"]
		}
		counters[key] = s.Value
	}
	if counters["dtaint_fleet_binaries_total:ok"] != float64(rep.Scanned) {
		t.Fatalf("fleet ok counter = %v, scanned = %d", counters["dtaint_fleet_binaries_total:ok"], rep.Scanned)
	}
	if counters["dtaint_fleet_images_total"] != 1 {
		t.Fatalf("fleet images counter = %v", counters["dtaint_fleet_images_total"])
	}
}

// Per-binary structured logs must carry the binary path and the image
// attrs, and a cached rescan must publish a cache hit ratio gauge.
func TestScanImageLogsAndCacheRatio(t *testing.T) {
	img := twoBinaryImage(t)
	cache, err := NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	opts := Options{Workers: 1, Cache: cache}
	opts.Analysis.Log = slog.New(slog.NewJSONHandler(&buf, nil))
	opts.Analysis.Metrics = reg

	for i := 0; i < 2; i++ { // second pass hits the cache
		if _, err := ScanImage(context.Background(), img, opts); err != nil {
			t.Fatal(err)
		}
	}

	sawBinaryLine := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] == "scan-binary done" {
			if rec["binary"] == nil || rec["image"] == nil || rec["sha"] == nil {
				t.Fatalf("scan-binary line lacks attrs: %v", rec)
			}
			sawBinaryLine = true
		}
	}
	if !sawBinaryLine {
		t.Fatal("no scan-binary done log lines")
	}

	var ratio float64 = -1
	for _, s := range reg.Snapshot() {
		if s.Name == "dtaint_cache_hit_ratio" {
			ratio = s.Value
		}
	}
	if ratio <= 0 || ratio >= 1 {
		t.Fatalf("cache hit ratio = %v, want in (0,1)", ratio)
	}
}

package fleet

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dtaint/internal/dataflow"
	"dtaint/internal/firmware"
	"dtaint/internal/obs"
	"dtaint/internal/obs/events"
)

// vulnSrcTemplate is vulnSrc with a parameterized function name, so a
// test can mint any number of byte-unique vulnerable binaries.
const vulnSrcTemplate = `
.arch arm
.import recv
.import strcpy

.func handler%d
  SUB SP, SP, #0x120
  MOV R0, #0
  ADD R1, SP, #0x20
  MOV R2, #0x100
  BL recv
  ADD R1, SP, #0x20
  ADD R0, SP, #0x8
  BL strcpy
  BX LR
.endfunc
`

// uniqueBinaryImage packs n byte-unique vulnerable executables, so no
// run-internal cache or dedup can make outcomes depend on scheduling.
func uniqueBinaryImage(t *testing.T, n int) []byte {
	t.Helper()
	bins := map[string][]byte{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("svc%d", i)
		bins["/usr/sbin/"+name] = mustAssemble(t, name, fmt.Sprintf(vulnSrcTemplate, i))
	}
	return testImage(t, bins)
}

// eventKeysAtWorkers scans img with a fresh journal, tracer, and bridge
// at the given worker count and returns the sorted DetKey multiset.
func eventKeysAtWorkers(t *testing.T, img []byte, workers int) []string {
	t.Helper()
	j := events.NewJournal(0)
	em := j.Emitter("det")
	tr := obs.NewTracer()
	events.Bridge(tr, em)
	_, err := ScanImage(context.Background(), img, Options{
		Workers:  workers,
		Analysis: dataflow.Options{Tracer: tr, Events: em},
	})
	if err != nil {
		t.Fatal(err)
	}
	evs, dropped := j.Since(0)
	if dropped != 0 {
		t.Fatalf("journal dropped %d events; grow the test ring", dropped)
	}
	return events.DetKeys(evs)
}

// The determinism contract: the multiset of events — wall-clock fields
// excluded — is identical for any worker count.
func TestEventMultisetDeterministicAcrossWorkers(t *testing.T) {
	img := uniqueBinaryImage(t, 6)
	serial := eventKeysAtWorkers(t, img, 1)
	parallel := eventKeysAtWorkers(t, img, 8)
	if len(serial) == 0 {
		t.Fatal("serial scan journaled no events")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("event multiset differs between workers 1 (%d events) and 8 (%d events):\nserial:   %v\nparallel: %v",
			len(serial), len(parallel), diffKeys(serial, parallel), diffKeys(parallel, serial))
	}
}

// diffKeys returns the multiset difference a - b.
func diffKeys(a, b []string) []string {
	count := map[string]int{}
	for _, k := range b {
		count[k]++
	}
	var out []string
	for _, k := range a {
		if count[k] > 0 {
			count[k]--
			continue
		}
		out = append(out, k)
	}
	return out
}

// A hung analysis trips the stall watchdog: the binary reports
// StatusStalled (never an empty success), a stall event lands in the
// journal, and a diagnostic bundle is written to DebugDir.
func TestScanImageStallWatchdog(t *testing.T) {
	orig := analyze
	defer func() { analyze = orig }()
	release := make(chan struct{})
	defer close(release)
	analyze = func(f firmware.File, o dataflow.Options) (*BinaryAnalysis, error) {
		if strings.HasSuffix(f.Path, "/webd") {
			<-release // hang silently until the test tears down
		}
		return orig(f, o)
	}

	j := events.NewJournal(0)
	debugDir := t.TempDir()
	rep, err := ScanImage(context.Background(), twoBinaryImage(t), Options{
		StallTimeout: 100 * time.Millisecond,
		DebugDir:     debugDir,
		Analysis:     dataflow.Options{Events: j.Emitter("stall-job")},
	})
	if err != nil {
		t.Fatal(err)
	}

	var stalled []BinaryScan
	for _, b := range rep.Binaries {
		if b.Status == StatusStalled {
			stalled = append(stalled, b)
		}
	}
	if len(stalled) != 1 || rep.Stalled != 1 {
		t.Fatalf("stalled binaries = %d, rep.Stalled = %d, want 1/1", len(stalled), rep.Stalled)
	}
	if !strings.Contains(stalled[0].Error, "watchdog") {
		t.Fatalf("stalled binary error = %q, want a watchdog message", stalled[0].Error)
	}
	if stalled[0].Analysis != nil {
		t.Fatal("stalled binary carries an analysis result; must never look like success")
	}

	evs, _ := j.Since(0)
	var sawStall bool
	for _, ev := range evs {
		if ev.Type == events.TypeStall {
			sawStall = true
		}
	}
	if !sawStall {
		t.Fatal("no stall event journaled")
	}

	entries, err := os.ReadDir(debugDir)
	if err != nil {
		t.Fatal(err)
	}
	var bundle string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "stall-") {
			bundle = filepath.Join(debugDir, e.Name())
		}
	}
	if bundle == "" {
		t.Fatalf("no stall bundle under %s: %v", debugDir, entries)
	}
	for _, f := range []string{"goroutines.txt", "events.jsonl", "report.json"} {
		data, err := os.ReadFile(filepath.Join(bundle, f))
		if err != nil || len(data) == 0 {
			t.Fatalf("bundle file %s missing or empty: %v", f, err)
		}
	}
	partial, err := os.ReadFile(filepath.Join(bundle, "report.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(partial), `"partial": true`) && !strings.Contains(string(partial), `"partial":true`) {
		t.Fatalf("bundle report.json not marked partial: %s", partial)
	}
}

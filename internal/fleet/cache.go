package fleet

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"dtaint/internal/dataflow"
)

// CacheStats is a snapshot of the report cache's counters.
type CacheStats struct {
	// Hits counts lookups served from memory or disk.
	Hits uint64 `json:"hits"`
	// DiskHits is the subset of Hits that had to read the on-disk tier
	// (a miss in the LRU; the entry is promoted back into memory).
	DiskHits uint64 `json:"diskHits"`
	// Misses counts lookups that found nothing and forced an analysis.
	Misses uint64 `json:"misses"`
	// Evictions counts LRU entries dropped from memory (the disk tier,
	// when configured, never evicts).
	Evictions uint64 `json:"evictions"`
	// Entries is the current in-memory entry count.
	Entries int `json:"entries"`
}

// Cache is the content-addressed report cache: key = SHA-256(binary
// bytes) ⊕ analyzer-options fingerprint, value = the full BinaryAnalysis.
// Firmware fleets share binaries heavily (every image ships busybox, the
// same libc-linked daemons recur across models and versions), so the
// cache turns a fleet scan from O(images × binaries) analyses into
// O(distinct binaries).
//
// Two tiers: a bounded in-memory LRU for the hot set, and an optional
// unbounded on-disk store (one JSON file per key) that survives process
// restarts. Values are stored serialized and decoded on every Get, so
// callers own their copy and cannot corrupt the cache by mutating a
// returned report.
//
// All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	dir     string
	hits    uint64
	disk    uint64
	misses  uint64
	evicted uint64
}

type cacheEntry struct {
	key  string
	blob []byte // JSON-encoded BinaryAnalysis
}

// NewCache returns a cache holding at most maxEntries reports in memory
// (maxEntries <= 0 selects a default of 1024). If dir is non-empty it is
// created if needed and used as the persistent tier.
func NewCache(maxEntries int, dir string) (*Cache, error) {
	if maxEntries <= 0 {
		maxEntries = 1024
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: cache dir: %w", err)
		}
	}
	return &Cache{
		max:   maxEntries,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		dir:   dir,
	}, nil
}

// Key derives the content-addressed cache key for one binary under one
// analyzer configuration: SHA-256 over the binary bytes, a zero
// separator, and the options fingerprint. Different analyzer options
// therefore never alias, and identical binaries at different rootfs
// paths (or in different images) always do.
func Key(binary []byte, fingerprint string) string {
	h := sha256.New()
	h.Write(binary)
	h.Write([]byte{0})
	h.Write([]byte(fingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint canonicalizes the semantically relevant analyzer options
// into a stable string — the second half of the cache key. It is the
// shared pipeline fingerprint (dataflow.OptionsFingerprint), so report
// cache and summary store invalidate together on an analysis version
// bump. Parallelism is deliberately excluded: the analyzer produces
// bit-identical results for every worker count, so reports are
// shareable across differently parallel runs. A non-nil function filter
// cannot be hashed; callers must supply a filterTag naming it (see
// Options.FilterTag). The orchestrator bypasses the cache entirely for
// a non-nil filter with an empty tag, so an unnameable filter can never
// poison shared entries.
func Fingerprint(o dataflow.Options, filterTag string) string {
	return dataflow.OptionsFingerprint(o, filterTag)
}

// Get looks the key up in memory, then on disk. Disk hits are promoted
// back into the LRU.
func (c *Cache) Get(key string) (*BinaryAnalysis, bool) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		blob := el.Value.(*cacheEntry).blob
		c.hits++
		c.mu.Unlock()
		return decodeAnalysis(blob)
	}
	dir := c.dir
	c.mu.Unlock()

	if dir != "" {
		blob, err := os.ReadFile(c.diskPath(key))
		if err == nil {
			if v, ok := decodeAnalysis(blob); ok {
				c.mu.Lock()
				c.hits++
				c.disk++
				c.insertLocked(key, blob)
				c.mu.Unlock()
				return v, true
			}
		}
	}

	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// Put stores the report under key in memory and, when configured, on
// disk. Serialization failures are impossible for well-formed reports;
// disk write failures are ignored (the memory tier still serves).
func (c *Cache) Put(key string, v *BinaryAnalysis) {
	blob, err := json.Marshal(v)
	if err != nil {
		return
	}
	c.mu.Lock()
	c.insertLocked(key, blob)
	dir := c.dir
	c.mu.Unlock()
	if dir != "" {
		// Write-then-rename so a crashed writer never leaves a torn
		// entry for a future Get to decode.
		tmp := c.diskPath(key) + ".tmp"
		if err := os.WriteFile(tmp, blob, 0o644); err == nil {
			_ = os.Rename(tmp, c.diskPath(key))
		}
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		DiskHits:  c.disk,
		Misses:    c.misses,
		Evictions: c.evicted,
		Entries:   len(c.items),
	}
}

func (c *Cache) insertLocked(key string, blob []byte) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).blob = blob
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, blob: blob})
	for len(c.items) > c.max {
		last := c.ll.Back()
		if last == nil {
			break
		}
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
		c.evicted++
	}
}

func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

func decodeAnalysis(blob []byte) (*BinaryAnalysis, bool) {
	var v BinaryAnalysis
	if err := json.Unmarshal(blob, &v); err != nil {
		return nil, false
	}
	return &v, true
}

package fleet

import "sync"

// flightGroup is a minimal single-flight: at most one worker analyzes a
// given cache key at a time, and duplicates wait instead of repeating
// the work. Firmware images ship the same binary at several rootfs
// paths (busybox and its applet copies), and without this the worker
// pool would analyze each copy concurrently — every one a cache miss —
// then overwrite each other's identical cache entries.
//
// A nil *flightGroup is valid and disables deduplication: begin always
// claims leadership, wait and finish are no-ops.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]chan struct{}
}

func newFlightGroup() *flightGroup {
	return &flightGroup{inflight: make(map[string]chan struct{})}
}

// begin reports whether the caller becomes the leader for key. A false
// return means another worker is already analyzing the key; call wait.
func (g *flightGroup) begin(key string) bool {
	if g == nil {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.inflight[key]; ok {
		return false
	}
	g.inflight[key] = make(chan struct{})
	return true
}

// wait blocks until the current leader for key finishes. Returns
// immediately if there is none (the leader may have finished between
// the caller's begin and wait).
func (g *flightGroup) wait(key string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	ch := g.inflight[key]
	g.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

// finish releases leadership for key and wakes every waiter.
func (g *flightGroup) finish(key string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if ch, ok := g.inflight[key]; ok {
		close(ch)
		delete(g.inflight, key)
	}
	g.mu.Unlock()
}

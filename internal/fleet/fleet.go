package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"dtaint/internal/cfg"
	"dtaint/internal/dataflow"
	"dtaint/internal/firmware"
	"dtaint/internal/image"
	"dtaint/internal/obs"
	"dtaint/internal/obs/events"
	"dtaint/internal/sumstore"
)

// Options configures an image scan.
type Options struct {
	// Workers bounds the orchestrator pool: how many binaries are
	// analyzed concurrently (0 = GOMAXPROCS, negative is rejected).
	Workers int
	// PerBinaryTimeout caps one binary's analysis wall-clock (0 = no
	// cap). A timed-out binary is reported as StatusTimeout; its
	// analysis goroutine is abandoned and exits when the analyzer
	// returns (the engine is CPU-bound and not interruptible).
	PerBinaryTimeout time.Duration
	// Analysis configures the per-binary analyzer. If
	// Analysis.Parallelism is 0 the orchestrator sets it to 1: with many
	// binaries in flight, one worker per binary maximizes throughput,
	// and results are identical either way.
	Analysis dataflow.Options
	// FilterTag names Analysis.Filter for cache-key purposes (function
	// values cannot be fingerprinted). Caching is bypassed when
	// Analysis.Filter is non-nil and FilterTag is empty.
	FilterTag string
	// Cache, when non-nil, is consulted before and updated after every
	// binary analysis.
	Cache *Cache
	// SummaryStore, when non-nil, is shared by every binary analysis in
	// the scan (and, via ScanCorpus, across a whole corpus): per-function
	// and per-component summaries are keyed by content, so binaries
	// sharing code — every image's busybox, the common libc-shaped
	// modules — are symbolically executed once per unique function.
	// Results are bit-identical with and without a store, so it is
	// excluded from the report-cache fingerprint.
	SummaryStore *sumstore.Store
	// PathFilter, when non-nil, restricts candidates to rootfs paths for
	// which it returns true.
	PathFilter func(path string) bool
	// Progress, when non-nil, is called after each binary completes with
	// the number done so far and the total candidate count. Calls are
	// serialized.
	Progress func(done, total int)
	// StallTimeout arms a stall watchdog over the scan's event stream:
	// when the scan journals no telemetry event for this long, the
	// watchdog emits a stall event, captures a diagnostic bundle (see
	// DebugDir), and abandons the in-flight binaries — they report
	// StatusStalled, never an empty success. 0 disables the watchdog.
	// When Analysis.Events is nil, ScanImage attaches a private journal
	// so the watchdog has a stream to watch. Pick a deadline well above
	// the slowest single function's analysis time: progress events flow
	// per completed function, so one monstrous function is the finest
	// silence a healthy scan produces.
	StallTimeout time.Duration
	// DebugDir receives one diagnostic bundle directory per stall:
	// goroutine dump, Chrome trace, metrics snapshot, options
	// fingerprint, the job's event journal, and the partial report of
	// the binaries completed so far. Empty skips bundle capture.
	DebugDir string

	// watchdog is the armed stall watchdog ScanImage shares with its
	// workers (nil when StallTimeout is 0).
	watchdog *events.Watchdog

	// inflight deduplicates concurrent analyses of identical binaries
	// within one scan (set by ScanImage when a cache is configured):
	// the first worker to reach a cache key analyzes, the rest wait and
	// re-read the cache.
	inflight *flightGroup
}

// ErrBadWorkers reports a negative worker count.
var ErrBadWorkers = errors.New("fleet: workers must be >= 0 (0 uses GOMAXPROCS)")

// ScanImage unpacks a firmware container, enumerates the FWELF
// executables in its root filesystem, and analyzes each across a bounded
// worker pool. One corrupt or pathological binary cannot take down the
// run: panics are confined to that binary's report entry, and a
// per-binary timeout bounds stragglers. Cancelling ctx stops new work;
// binaries not yet started are reported as StatusSkipped.
//
// The returned report lists binaries in rootfs path order and is
// deterministic (timings aside) for any worker count.
func ScanImage(ctx context.Context, data []byte, opts Options) (*ImageReport, error) {
	if opts.Workers < 0 {
		return nil, ErrBadWorkers
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Analysis.Parallelism == 0 {
		opts.Analysis.Parallelism = 1
	}
	if opts.SummaryStore != nil {
		opts.Analysis.SummaryStore = opts.SummaryStore
	}
	if opts.Cache != nil {
		opts.inflight = newFlightGroup()
	}
	start := time.Now()

	// The scan's observability handles ride on the analysis options; the
	// whole image gets one root span and every binary a child span that
	// the per-binary pipeline stages nest under.
	scanSpan := opts.Analysis.Tracer.Start(opts.Analysis.ParentSpan, "scan-image")
	opts.Analysis.ParentSpan = scanSpan

	st := opts.Analysis.StartStage("unpack-firmware", obs.KV("bytes", len(data)))
	img, fs, err := firmware.Unpack(data)
	if err != nil {
		st.End()
		scanSpan.End()
		return nil, fmt.Errorf("fleet: unpack image: %w", err)
	}
	st.End("files", len(fs.Files))
	scanSpan.SetAttr("product", img.Header.Product)
	if opts.Analysis.Log != nil {
		opts.Analysis.Log = opts.Analysis.Log.With(
			"image", img.Header.Product, "version", img.Header.Version)
	}

	var candidates []firmware.File
	for _, f := range fs.Files {
		if !bytes.HasPrefix(f.Data, image.Magic[:]) {
			continue
		}
		if opts.PathFilter != nil && !opts.PathFilter(f.Path) {
			continue
		}
		candidates = append(candidates, f)
	}

	rep := &ImageReport{
		Vendor:     img.Header.Vendor,
		Product:    img.Header.Product,
		Version:    img.Header.Version,
		Year:       img.Header.Year,
		Arch:       img.Header.Arch.String(),
		Candidates: len(candidates),
		Workers:    opts.Workers,
		Binaries:   make([]BinaryScan, len(candidates)),
	}

	// completed collects finished binaries in completion order for the
	// watchdog's partial report (rep.Binaries has holes mid-scan).
	var (
		completedMu sync.Mutex
		completed   []BinaryScan
	)

	// The stall watchdog needs an event stream to watch; a scan armed
	// without a caller-supplied journal gets a private one.
	if opts.StallTimeout > 0 {
		if opts.Analysis.Events == nil {
			opts.Analysis.Events = events.NewJournal(0).Emitter("")
		}
		em := opts.Analysis.Events
		opts.watchdog = events.StartWatchdog(events.WatchdogConfig{
			Journal:     em.Journal(),
			Job:         em.Job(),
			Deadline:    opts.StallTimeout,
			DebugDir:    opts.DebugDir,
			Fingerprint: dataflow.OptionsFingerprint(opts.Analysis, opts.FilterTag),
			Tracer:      opts.Analysis.Tracer,
			Metrics:     opts.Analysis.Metrics,
			Partial:     partialReportWriter(rep, &completedMu, &completed),
		})
		defer opts.watchdog.Stop()
	}
	em := opts.Analysis.Events

	jobs := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	workers := opts.Workers
	if workers > len(candidates) {
		workers = len(candidates)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				bs := scanOne(ctx, candidates[i], opts)
				rep.Binaries[i] = bs
				completedMu.Lock()
				completed = append(completed, bs)
				completedMu.Unlock()
				progressMu.Lock()
				done++
				n := done
				if opts.Progress != nil {
					opts.Progress(n, len(candidates))
				}
				progressMu.Unlock()
				// n is mutex-ordered (unique per binary), so the progress
				// event multiset is deterministic for any worker count.
				em.Progress("binaries", n, len(candidates))
			}
		}()
	}
	for i := range candidates {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep.aggregate()
	rep.Wall = time.Since(start)
	if opts.Cache != nil {
		rep.Cache = opts.Cache.Stats()
	}
	rep.Runtime = obs.CaptureRuntimeStats()
	scanSpan.SetAttr("candidates", rep.Candidates)
	scanSpan.End()
	recordScanMetrics(opts.Analysis.Metrics, rep)
	if opts.Analysis.Log != nil {
		opts.Analysis.Log.Info("scan-image done",
			"candidates", rep.Candidates, "scanned", rep.Scanned,
			"cached", rep.Cached, "failed", rep.Failed,
			"vulnerabilities", rep.Vulnerabilities,
			"seconds", rep.Wall.Seconds())
	}
	return rep, nil
}

// partialReportWriter returns the watchdog's partial-report callback: a
// JSON snapshot of the binaries completed so far, flagged partial so a
// bundle's report.json is never mistaken for a finished scan's.
func partialReportWriter(rep *ImageReport, mu *sync.Mutex, completed *[]BinaryScan) func(io.Writer) error {
	return func(w io.Writer) error {
		mu.Lock()
		snap := append([]BinaryScan(nil), (*completed)...)
		mu.Unlock()
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Partial    bool         `json:"partial"`
			Vendor     string       `json:"vendor"`
			Product    string       `json:"product"`
			Version    string       `json:"version"`
			Candidates int          `json:"candidates"`
			Completed  int          `json:"completed"`
			Binaries   []BinaryScan `json:"binaries"`
		}{true, rep.Vendor, rep.Product, rep.Version, rep.Candidates, len(snap), snap})
	}
}

// recordScanMetrics publishes one finished image scan's outcome counters
// and the cache hit ratio. Every registry call is nil-safe on reg.
func recordScanMetrics(reg *obs.Registry, rep *ImageReport) {
	for _, oc := range []struct {
		status string
		n      int
	}{
		{"ok", rep.Scanned}, {"cached", rep.Cached},
		{"failed", rep.Failed}, {"stalled", rep.Stalled},
		{"skipped", rep.Skipped},
	} {
		if oc.n > 0 {
			reg.Counter("dtaint_fleet_binaries_total",
				"Binaries scanned by the fleet orchestrator, by outcome.",
				obs.Labels{"status": oc.status}).Add(uint64(oc.n))
		}
	}
	reg.Counter("dtaint_fleet_images_total",
		"Firmware images scanned by the fleet orchestrator.", nil).Inc()
	reg.Counter("dtaint_fleet_vulnerabilities_total",
		"Deduplicated vulnerabilities found by fleet scans.", nil).Add(uint64(rep.Vulnerabilities))
	if total := rep.Cache.Hits + rep.Cache.Misses; total > 0 {
		reg.Gauge("dtaint_cache_hit_ratio",
			"Report cache hit ratio over the cache's lifetime.",
			nil).Set(float64(rep.Cache.Hits) / float64(total))
	}
}

// scanOne analyzes a single rootfs executable: cache lookup, then a
// fresh analysis under panic isolation and the per-binary deadline.
func scanOne(ctx context.Context, f firmware.File, opts Options) BinaryScan {
	sum := sha256.Sum256(f.Data)
	bs := BinaryScan{Path: f.Path, SHA256: hex.EncodeToString(sum[:])}

	span := opts.Analysis.Tracer.Start(opts.Analysis.ParentSpan, "scan-binary",
		obs.KV("path", f.Path))
	opts.Analysis.ParentSpan = span
	// Scope this worker's events to the binary; derived emitters keep
	// their own progress meters, so concurrent binaries never share an
	// ETA window (opts is a copy — the caller's emitter is untouched).
	opts.Analysis.Events = opts.Analysis.Events.WithPath(f.Path)
	if opts.Analysis.Log != nil {
		opts.Analysis.Log = opts.Analysis.Log.With("binary", f.Path, "sha", bs.SHA256[:12])
	}
	defer func() {
		span.SetAttr("status", string(bs.Status))
		span.End()
		if opts.Analysis.Log != nil {
			opts.Analysis.Log.Info("scan-binary done",
				"status", string(bs.Status), "seconds", bs.Duration.Seconds())
		}
	}()

	if ctx.Err() != nil {
		bs.Status = StatusSkipped
		bs.Error = ctx.Err().Error()
		return bs
	}

	cacheable := opts.Cache != nil && (opts.Analysis.Filter == nil || opts.FilterTag != "")
	var key string
	if cacheable {
		key = Key(f.Data, Fingerprint(opts.Analysis, opts.FilterTag))
		for {
			if v, ok := opts.Cache.Get(key); ok {
				bs.Status = StatusCached
				bs.Analysis = v
				opts.Analysis.Events.Emit(events.ScanEvent{
					Type:  events.TypeCacheHit,
					Attrs: map[string]any{"sha256": bs.SHA256},
				})
				return bs
			}
			if opts.inflight.begin(key) {
				break // leader: analyze and fill the cache
			}
			// An identical binary is being analyzed by another worker
			// right now: wait for it and retry the cache. If the leader
			// failed (no cache entry), the retry misses and this worker
			// takes over as leader.
			opts.inflight.wait(key)
		}
		defer opts.inflight.finish(key)
	}

	type outcome struct {
		an  *BinaryAnalysis
		err error
	}
	ch := make(chan outcome, 1)
	t0 := time.Now()
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("analysis panicked: %v", r)}
			}
		}()
		an, err := analyze(f, opts.Analysis)
		ch <- outcome{an: an, err: err}
	}()

	var timeout <-chan time.Time
	if opts.PerBinaryTimeout > 0 {
		t := time.NewTimer(opts.PerBinaryTimeout)
		defer t.Stop()
		timeout = t.C
	}
	// A nil watchdog yields a nil channel — the case never fires. The
	// channel is captured once: a stall mid-analysis kills this binary,
	// while binaries started after the watchdog re-arms get a fresh one.
	stalled := opts.watchdog.Stalled()
	select {
	case out := <-ch:
		bs.Duration = time.Since(t0)
		if out.err != nil {
			bs.Status = StatusFailed
			bs.Error = out.err.Error()
			return bs
		}
		bs.Status = StatusOK
		bs.Analysis = out.an
		if cacheable {
			opts.Cache.Put(key, out.an)
		}
	case <-timeout:
		bs.Duration = time.Since(t0)
		bs.Status = StatusTimeout
		bs.Error = fmt.Sprintf("analysis exceeded %v", opts.PerBinaryTimeout)
	case <-stalled:
		bs.Duration = time.Since(t0)
		bs.Status = StatusStalled
		bs.Error = fmt.Sprintf("watchdog: no events for %v; analysis abandoned", opts.StallTimeout)
	case <-ctx.Done():
		bs.Duration = time.Since(t0)
		bs.Status = StatusFailed
		bs.Error = ctx.Err().Error()
	}
	return bs
}

// analyze is the per-binary pipeline entry; a variable so tests can
// substitute pathological analyzers (panics, hangs) without crafting
// binaries that break the real engine.
var analyze = analyzeBinary

// AnalyzeBinary runs the full single-binary pipeline on one rootfs file
// — the same entry the scan pool uses (including any test substitute).
// It is the building block the differential scanner drives directly
// when it plans its own analysis schedule.
func AnalyzeBinary(f firmware.File, aopts dataflow.Options) (*BinaryAnalysis, error) {
	return analyze(f, aopts)
}

// analyzeBinary runs the full single-binary pipeline and packages the
// result into the serializable wire form.
func analyzeBinary(f firmware.File, aopts dataflow.Options) (*BinaryAnalysis, error) {
	st := aopts.StartStage("parse-image", obs.KV("bytes", len(f.Data)))
	bin, err := image.Parse(f.Data)
	if err != nil {
		st.End()
		return nil, fmt.Errorf("parse %s: %w", f.Path, err)
	}
	st.End("arch", bin.Arch.String())
	st = aopts.StartStage("build-cfg")
	prog, err := cfg.Build(bin)
	if err != nil {
		st.End()
		return nil, fmt.Errorf("recover CFG of %s: %w", f.Path, err)
	}
	st.End("functions", len(prog.Funcs))
	res, err := dataflow.Analyze(prog, aopts)
	if err != nil {
		return nil, fmt.Errorf("analyze %s: %w", f.Path, err)
	}
	stats := prog.Stats()
	an := &BinaryAnalysis{
		Binary:            bin.Name,
		Arch:              bin.Arch.String(),
		Functions:         stats.Functions,
		Blocks:            stats.Blocks,
		CallEdges:         stats.CallGraphEdges,
		FunctionsAnalyzed: res.FunctionsAnalyzed,
		SinkCount:         res.SinkCount,
		IndirectResolved:  len(res.Resolutions),
		DefPairs:          res.DefPairCount,
		Truncated:         res.Truncated,
		SSATime:           res.SSATime,
		DDGTime:           res.DDGTime,
		DDGWorkers:        res.Parallel.Workers,
		SCCComponents:     res.Parallel.Components,
		CriticalPath:      res.Parallel.CriticalPath,
		SummaryHits:       res.SumStore.Hits,
		SummaryMisses:     res.SumStore.Misses,
	}
	for _, tf := range res.Findings {
		wf := Finding{
			Class:     tf.Class.String(),
			Sink:      tf.Sink,
			SinkFunc:  tf.SinkFunc,
			SinkAddr:  tf.SinkAddr,
			Source:    tf.Source,
			Sanitized: tf.Sanitized,
		}
		for _, s := range tf.Path {
			wf.Path = append(wf.Path, s.String())
		}
		an.Findings = append(an.Findings, wf)
	}
	return an, nil
}

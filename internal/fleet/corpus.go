package fleet

import (
	"context"
	"fmt"
	"time"

	"dtaint/internal/sumstore"
)

// CorpusReport aggregates a whole-corpus scan: per-image reports in
// input order, fleet totals, the cross-image binary dedup accounting,
// and final snapshots of the shared cache tiers.
type CorpusReport struct {
	// Images holds one report per input image, in input order.
	Images []*ImageReport `json:"images"`
	// Totals folds the per-image reports (MergeReports).
	Totals FleetTotals `json:"totals"`
	// UniqueBinaries and DuplicateBinaries partition the corpus's
	// candidate executables by content: a binary whose SHA-256 was
	// already seen — in an earlier image or at another rootfs path —
	// counts as a duplicate and is served from the shared report cache
	// rather than re-analyzed.
	UniqueBinaries    int `json:"uniqueBinaries"`
	DuplicateBinaries int `json:"duplicateBinaries"`
	// Cache and SummaryStore snapshot the shared tiers when the corpus
	// scan finished.
	Cache        CacheStats     `json:"cache"`
	SummaryStore sumstore.Stats `json:"summaryStore"`
	// Wall is the whole-corpus wall-clock time.
	Wall time.Duration `json:"wallNanos"`
}

// ScanCorpus scans a corpus of firmware images with one shared report
// cache and one shared summary store. This is the corpus-level entry
// point the per-image API cannot express safely: handing ScanImage a
// fresh cache per image silently forfeits all cross-image dedup, so
// ScanCorpus creates the shared tiers itself when the caller supplies
// none (in-memory, corpus-lifetime). With the shared tiers, each unique
// binary is analyzed once per corpus — duplicates re-emit the cached
// ImageReport entry as StatusCached — and each unique function is
// symbolically executed once per corpus.
//
// Images are scanned sequentially, each fanning its binaries across the
// worker pool (Options.Workers); per-image reports land in input order.
// Cancelling ctx stops new work; remaining binaries and images report
// StatusSkipped.
func ScanCorpus(ctx context.Context, images [][]byte, opts Options) (*CorpusReport, error) {
	if opts.Cache == nil {
		c, err := NewCache(0, "")
		if err != nil {
			return nil, fmt.Errorf("fleet: corpus cache: %w", err)
		}
		opts.Cache = c
	}
	if opts.SummaryStore == nil {
		s, err := sumstore.NewStore(0, "")
		if err != nil {
			return nil, fmt.Errorf("fleet: corpus summary store: %w", err)
		}
		opts.SummaryStore = s
	}
	start := time.Now()
	rep := &CorpusReport{Images: make([]*ImageReport, 0, len(images))}
	seen := make(map[string]bool)
	for _, data := range images {
		ir, err := ScanImage(ctx, data, opts)
		if err != nil {
			return nil, err
		}
		rep.Images = append(rep.Images, ir)
		for _, b := range ir.Binaries {
			if seen[b.SHA256] {
				rep.DuplicateBinaries++
			} else {
				seen[b.SHA256] = true
				rep.UniqueBinaries++
			}
		}
	}
	rep.Totals = MergeReports(rep.Images)
	rep.Cache = opts.Cache.Stats()
	rep.SummaryStore = opts.SummaryStore.Stats()
	rep.Wall = time.Since(start)
	return rep, nil
}

// dom.go computes dominators with the iterative Cooper-Harvey-Kennedy
// algorithm and refines loop detection: an edge n -> h is a loop back
// edge precisely when h dominates n (the standard natural-loop
// definition). The DFS approximation in findLoops is correct for
// reducible CFGs — which a structured compiler emits — but dominators
// make the classification exact and expose a generally useful analysis.
package cfg

// Dominators returns, for each block index, the index of its immediate
// dominator. The entry block is its own idom. Unreachable blocks map
// to -1.
func (f *Function) Dominators() []int {
	n := len(f.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if f.Entry == nil || n == 0 {
		return idom
	}

	// Reverse postorder over reachable blocks.
	order := make([]int, 0, n) // postorder
	number := make([]int, n)   // block index -> postorder number
	visited := make([]bool, n)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		visited[b.Index] = true
		for _, s := range b.Succs {
			if !visited[s.Index] {
				dfs(s)
			}
		}
		number[b.Index] = len(order)
		order = append(order, b.Index)
	}
	dfs(f.Entry)

	preds := make([][]int, n)
	for _, b := range f.Blocks {
		if !visited[b.Index] {
			continue
		}
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b.Index)
		}
	}

	entry := f.Entry.Index
	idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for number[a] < number[b] {
				a = idom[a]
			}
			for number[b] < number[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		// Reverse postorder: iterate order backwards, skipping the entry.
		for i := len(order) - 1; i >= 0; i-- {
			b := order[i]
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether block index a dominates block index b, given
// the idom array from Dominators.
func Dominates(idom []int, a, b int) bool {
	if a < 0 || b < 0 || b >= len(idom) || idom[b] == -1 {
		return false
	}
	for {
		if b == a {
			return true
		}
		next := idom[b]
		if next == b || next == -1 {
			return false
		}
		b = next
	}
}

// NaturalLoops recomputes the function's loop classification using the
// dominator-based back-edge definition (n -> h with h dominating n) and
// returns the back edges found. Build uses the cheaper DFS approximation;
// callers needing exactness on irreducible control flow use this.
func (f *Function) NaturalLoops() [][2]int {
	idom := f.Dominators()
	var edges [][2]int
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if Dominates(idom, s.Index, b.Index) {
				edges = append(edges, [2]int{b.Index, s.Index})
			}
		}
	}
	return edges
}

package cfg

import "sort"

// Condensation is the SCC DAG of the call graph restricted to a name
// set: the strongly connected components in reverse topological order
// (callees before callers) plus the inter-component dependency edges.
// Sibling components have no ordering constraint between them, which is
// what lets the bottom-up interprocedural pass run them concurrently.
type Condensation struct {
	// Comps lists the components in reverse topological order; each
	// component's function names are sorted. Every dependency of Comps[i]
	// has an index smaller than i.
	Comps [][]string
	// CompOf maps a function name to its component index.
	CompOf map[string]int
	// Callers[i] lists the components containing callers of component i —
	// the components whose in-degree drops when i completes. Sorted,
	// deduplicated, self-edges excluded.
	Callers [][]int
	// NumDeps[i] is the number of distinct callee components component i
	// depends on (its in-degree in the bottom-up schedule; 0 means ready
	// immediately).
	NumDeps []int
}

// Condense computes the call graph's SCC condensation restricted to the
// given function names. Functions absent from names are ignored, exactly
// as SCC does.
func (p *Program) Condense(names []string) *Condensation {
	comps := p.SCC(names)
	c := &Condensation{
		Comps:   comps,
		CompOf:  make(map[string]int),
		Callers: make([][]int, len(comps)),
		NumDeps: make([]int, len(comps)),
	}
	for i, comp := range comps {
		for _, n := range comp {
			c.CompOf[n] = i
		}
	}
	seen := make(map[[2]int]bool)
	for i, comp := range comps {
		for _, fn := range comp {
			for _, callee := range p.Callees[fn] {
				j, ok := c.CompOf[callee]
				if !ok || j == i {
					continue
				}
				// Component i depends on its callee component j.
				if seen[[2]int{i, j}] {
					continue
				}
				seen[[2]int{i, j}] = true
				c.Callers[j] = append(c.Callers[j], i)
				c.NumDeps[i]++
			}
		}
	}
	for i := range c.Callers {
		sort.Ints(c.Callers[i])
	}
	return c
}

// CriticalPath returns the number of components on the longest dependency
// chain of the condensation — the minimum number of sequential bottom-up
// steps any schedule needs, and therefore the parallelism ceiling
// (len(Comps) / CriticalPath approximates the achievable speedup).
func (c *Condensation) CriticalPath() int {
	if len(c.Comps) == 0 {
		return 0
	}
	depth := make([]int, len(c.Comps))
	longest := 1
	for i := range c.Comps {
		depth[i]++ // the component itself
		if depth[i] > longest {
			longest = depth[i]
		}
		// Comps is reverse-topological, so every caller of i has a larger
		// index and its depth is still being accumulated.
		for _, caller := range c.Callers[i] {
			if depth[i] > depth[caller] {
				depth[caller] = depth[i]
			}
		}
	}
	return longest
}

package cfg_test

import (
	"testing"

	"dtaint/internal/asm"
	"dtaint/internal/cfg"
	"dtaint/internal/corpus"
)

func buildFn(t *testing.T, src, name string) *cfg.Function {
	t.Helper()
	bin, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.ByName[name]
	if fn == nil {
		t.Fatalf("function %s missing", name)
	}
	return fn
}

func TestDominatorsDiamond(t *testing.T) {
	fn := buildFn(t, `
.arch arm
.func f
  CMP R0, #1
  BGE big
  MOV R1, #1
  B join
big:
  MOV R1, #2
join:
  BX LR
.endfunc
`, "f")
	idom := fn.Dominators()
	entry := fn.Entry.Index
	// Entry dominates everything; neither arm dominates the join.
	for _, b := range fn.Blocks {
		if !cfg.Dominates(idom, entry, b.Index) {
			t.Fatalf("entry does not dominate block %d", b.Index)
		}
	}
	join := fn.Blocks[len(fn.Blocks)-1]
	if idom[join.Index] != entry {
		t.Fatalf("join's idom = %d, want entry %d", idom[join.Index], entry)
	}
}

func TestNaturalLoopsMatchDFSOnStructuredCode(t *testing.T) {
	fn := buildFn(t, `
.arch arm
.func f
  MOV R2, #0
loop:
  ADD R2, R2, #1
  CMP R2, #16
  BLT loop
  BX LR
.endfunc
`, "f")
	dfs := fn.BackEdges
	dom := fn.NaturalLoops()
	if len(dfs) != 1 || len(dom) != 1 {
		t.Fatalf("edges: dfs=%v dom=%v", dfs, dom)
	}
	if dfs[0] != dom[0] {
		t.Fatalf("back edge mismatch: dfs=%v dom=%v", dfs[0], dom[0])
	}
}

func TestNaturalLoopsNested(t *testing.T) {
	fn := buildFn(t, `
.arch arm
.func f
  MOV R2, #0
outer:
  MOV R3, #0
inner:
  ADD R3, R3, #1
  CMP R3, #4
  BLT inner
  ADD R2, R2, #1
  CMP R2, #4
  BLT outer
  BX LR
.endfunc
`, "f")
	dom := fn.NaturalLoops()
	if len(dom) != 2 {
		t.Fatalf("nested loops: %v", dom)
	}
}

// The DFS approximation and the dominator definition agree across the
// whole structured corpus (compiler-emitted control flow is reducible).
func TestLoopDetectionAgreementOnCorpus(t *testing.T) {
	spec := corpus.StudyImages()[5] // the loop-heavy camera image
	bin, _, err := corpus.BuildBinary(spec, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	for _, fn := range prog.Funcs {
		dfs := map[[2]int]bool{}
		for _, e := range fn.BackEdges {
			dfs[e] = true
		}
		for _, e := range fn.NaturalLoops() {
			if !dfs[e] {
				t.Fatalf("%s: dominator back edge %v missed by DFS", fn.Name, e)
			}
			delete(dfs, e)
		}
		if len(dfs) != 0 {
			t.Fatalf("%s: DFS back edges %v not confirmed by dominators", fn.Name, dfs)
		}
	}
}

func TestDominatesEdgeCases(t *testing.T) {
	if cfg.Dominates(nil, 0, 0) {
		t.Fatal("empty idom")
	}
	if cfg.Dominates([]int{-1}, 0, 0) {
		t.Fatal("unreachable block dominated")
	}
}

package cfg

import (
	"testing"
)

// condSrc builds a call graph with a diamond plus a mutual-recursion pair:
//
//	main -> a, b;  a -> leaf;  b -> leaf;  p <-> q (SCC);  main -> p
//
// Condensation (reverse topological): {leaf} and {p,q} first (no deps),
// then {a}, {b}, then {main}.
const condSrc = `
.arch arm
.func leaf
  MOV R0, #1
  BX LR
.endfunc

.func a
  BL leaf
  BX LR
.endfunc

.func b
  BL leaf
  BX LR
.endfunc

.func p
  BL q
  BX LR
.endfunc

.func q
  BL p
  BX LR
.endfunc

.func main
  BL a
  BL b
  BL p
  BX LR
.endfunc
`

func condProgram(t *testing.T) *Program {
	t.Helper()
	p, err := Build(mustAssemble(t, condSrc))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func allNames(p *Program) []string {
	var names []string
	for _, fn := range p.Funcs {
		names = append(names, fn.Name)
	}
	return names
}

func TestCondenseComponents(t *testing.T) {
	p := condProgram(t)
	cond := p.Condense(allNames(p))
	if len(cond.Comps) != 5 {
		t.Fatalf("components = %v, want 5", cond.Comps)
	}
	// The recursion pair must land in one sorted component.
	pq := cond.Comps[cond.CompOf["p"]]
	if len(pq) != 2 || pq[0] != "p" || pq[1] != "q" {
		t.Fatalf("p/q component = %v", pq)
	}
	if cond.CompOf["p"] != cond.CompOf["q"] {
		t.Fatal("p and q must share a component")
	}
	// Reverse topological order: every dependency has a smaller index.
	for i := range cond.Comps {
		for _, caller := range cond.Callers[i] {
			if caller <= i {
				t.Fatalf("caller component %d not after callee %d", caller, i)
			}
		}
	}
}

func TestCondenseDegreesAndEdges(t *testing.T) {
	p := condProgram(t)
	cond := p.Condense(allNames(p))
	main, a, b, leaf, pq := cond.CompOf["main"], cond.CompOf["a"], cond.CompOf["b"], cond.CompOf["leaf"], cond.CompOf["p"]
	if got := cond.NumDeps[main]; got != 3 {
		t.Fatalf("main deps = %d, want 3 (a, b, p/q)", got)
	}
	if cond.NumDeps[leaf] != 0 || cond.NumDeps[pq] != 0 {
		t.Fatal("leaf and p/q must be ready immediately")
	}
	if cond.NumDeps[a] != 1 || cond.NumDeps[b] != 1 {
		t.Fatalf("a/b deps = %d/%d, want 1/1", cond.NumDeps[a], cond.NumDeps[b])
	}
	// leaf is called by a and b; the p/q self-edges must not count.
	if got := cond.Callers[leaf]; len(got) != 2 {
		t.Fatalf("leaf callers = %v, want 2", got)
	}
	if got := cond.Callers[pq]; len(got) != 1 || got[0] != main {
		t.Fatalf("p/q callers = %v, want [main]", got)
	}
}

func TestCondenseCriticalPath(t *testing.T) {
	p := condProgram(t)
	cond := p.Condense(allNames(p))
	// Longest chain: leaf -> a (or b) -> main = 3 components.
	if got := cond.CriticalPath(); got != 3 {
		t.Fatalf("critical path = %d, want 3", got)
	}
	// A filtered set with no calls has critical path 1.
	solo := p.Condense([]string{"leaf"})
	if got := solo.CriticalPath(); got != 1 {
		t.Fatalf("solo critical path = %d, want 1", got)
	}
	if empty := p.Condense(nil); empty.CriticalPath() != 0 {
		t.Fatal("empty condensation must have critical path 0")
	}
}

package cfg_test

import (
	"dtaint/internal/cfg"
	"testing"

	"dtaint/internal/corpus"
	"dtaint/internal/isa"
)

// TestBlocksPartitionFunctions checks the structural CFG invariants over
// the whole synthetic corpus: blocks tile each function exactly, every
// successor edge targets a block leader inside the same function, and
// call records point at call instructions.
func TestBlocksPartitionFunctions(t *testing.T) {
	for _, spec := range corpus.StudyImages()[:3] {
		bin, _, err := corpus.BuildBinary(spec, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := cfg.Build(bin)
		if err != nil {
			t.Fatal(err)
		}
		for _, fn := range prog.Funcs {
			covered := uint32(0)
			next := fn.Addr
			for _, b := range fn.Blocks {
				if b.Start != next {
					t.Fatalf("%s: block at %#x, expected %#x (gap or overlap)",
						fn.Name, b.Start, next)
				}
				next = b.End()
				covered += b.End() - b.Start
				for _, s := range b.Succs {
					if _, ok := fn.BlockAt(s.Start); !ok {
						t.Fatalf("%s: successor %#x is not a block leader", fn.Name, s.Start)
					}
					if s.Start < fn.Addr || s.Start >= fn.Addr+fn.Size {
						t.Fatalf("%s: successor %#x escapes the function", fn.Name, s.Start)
					}
				}
			}
			if covered != fn.Size {
				t.Fatalf("%s: blocks cover %d of %d bytes", fn.Name, covered, fn.Size)
			}
			for _, cs := range fn.Calls {
				blk, ok := fn.BlockAt(cs.Block.Start)
				if !ok || blk != cs.Block {
					t.Fatalf("%s: callsite block mismatch at %#x", fn.Name, cs.Addr)
				}
				found := false
				for _, li := range cs.Block.Insts {
					if li.Addr == cs.Addr && (li.Raw.Op == isa.OpBL || li.Raw.Op == isa.OpBLX) {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: callsite %#x is not a call instruction", fn.Name, cs.Addr)
				}
			}
		}
	}
}

// TestCallGraphConsistency checks Callees/Callers are inverse relations.
func TestCallGraphConsistency(t *testing.T) {
	spec := corpus.StudyImages()[1]
	bin, _, err := corpus.BuildBinary(spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	for caller, callees := range prog.Callees {
		for _, callee := range callees {
			found := false
			for _, c := range prog.Callers[callee] {
				if c == caller {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %s->%s missing from Callers", caller, callee)
			}
		}
	}
	// SCC covers every function exactly once.
	names := make([]string, 0, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		names = append(names, fn.Name)
	}
	seen := map[string]int{}
	for _, comp := range prog.SCC(names) {
		for _, n := range comp {
			seen[n]++
		}
	}
	if len(seen) != len(names) {
		t.Fatalf("SCC covered %d of %d functions", len(seen), len(names))
	}
	for n, c := range seen {
		if c != 1 {
			t.Fatalf("function %s in %d components", n, c)
		}
	}
}

// Package cfg recovers control-flow graphs, the call graph, and natural
// loops from FWELF binaries (Section III-B: "DTaint first creates a
// control flow graph for the firmware ... for each function separately.
// The node in a CFG represents a basic block").
package cfg

import (
	"errors"
	"fmt"
	"sort"

	"dtaint/internal/image"
	"dtaint/internal/ir"
	"dtaint/internal/isa"
)

// LiftedInst pairs a decoded machine instruction with its address and its
// IR lifting.
type LiftedInst struct {
	Addr uint32
	Raw  isa.Inst
	IR   []ir.Stmt
}

// Block is a basic block.
type Block struct {
	Start uint32
	Insts []LiftedInst
	// Succs are the intra-procedural successors in deterministic order:
	// for a conditional branch, the taken edge first, then fallthrough.
	Succs []*Block
	// Index is the block's position in Function.Blocks.
	Index int
}

// End returns the address one past the block's last instruction.
func (b *Block) End() uint32 {
	if len(b.Insts) == 0 {
		return b.Start
	}
	return b.Insts[len(b.Insts)-1].Addr + isa.InstSize
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() (LiftedInst, bool) {
	if len(b.Insts) == 0 {
		return LiftedInst{}, false
	}
	return b.Insts[len(b.Insts)-1], true
}

// CallKind classifies a callsite target.
type CallKind int

// Callsite target kinds.
const (
	CallLocal CallKind = iota + 1 // another function in the binary
	CallImport
	CallIndirect
	CallUnknown // direct target that resolves to nothing
)

// CallSite is a static call instruction inside a function.
type CallSite struct {
	Addr   uint32
	Kind   CallKind
	Callee string  // function or import name (local/import)
	Target uint32  // direct target address
	Reg    isa.Reg // register holding the target (indirect)
	Block  *Block
}

// Function is a recovered function CFG.
type Function struct {
	Name   string
	Addr   uint32
	Size   uint32
	Entry  *Block
	Blocks []*Block // in address order
	Calls  []CallSite
	// LoopBlocks marks block indices that belong to at least one natural
	// loop (used by the loop-copy sink detector and the loop-once
	// heuristic diagnostics).
	LoopBlocks map[int]bool
	// BackEdges lists (from, to) block-index pairs of loop back edges.
	BackEdges [][2]int
}

// NumBlocks returns the number of basic blocks.
func (f *Function) NumBlocks() int { return len(f.Blocks) }

// BlockAt returns the block starting at addr.
func (f *Function) BlockAt(addr uint32) (*Block, bool) {
	i := sort.Search(len(f.Blocks), func(i int) bool { return f.Blocks[i].Start >= addr })
	if i < len(f.Blocks) && f.Blocks[i].Start == addr {
		return f.Blocks[i], true
	}
	return nil, false
}

// Program is the whole-binary analysis unit: all function CFGs plus the
// call graph.
type Program struct {
	Binary *image.Binary
	// Funcs in address order.
	Funcs []*Function
	// ByName indexes Funcs.
	ByName map[string]*Function
	// Callees maps a function name to the local functions it calls
	// directly (deduplicated, sorted).
	Callees map[string][]string
	// Callers is the inverse of Callees.
	Callers map[string][]string
}

// Errors returned by Build.
var (
	ErrNoFunctions = errors.New("cfg: binary has no function symbols")
	ErrBadTarget   = errors.New("cfg: branch target outside function")
)

// Build decodes, lifts, and structures every function of the binary.
func Build(bin *image.Binary) (*Program, error) {
	if len(bin.Funcs) == 0 {
		return nil, ErrNoFunctions
	}
	p := &Program{
		Binary:  bin,
		ByName:  make(map[string]*Function, len(bin.Funcs)),
		Callees: make(map[string][]string),
		Callers: make(map[string][]string),
	}
	for _, sym := range bin.Funcs {
		fn, err := buildFunction(bin, sym)
		if err != nil {
			return nil, fmt.Errorf("function %s: %w", sym.Name, err)
		}
		p.Funcs = append(p.Funcs, fn)
		p.ByName[fn.Name] = fn
	}
	sort.Slice(p.Funcs, func(i, j int) bool { return p.Funcs[i].Addr < p.Funcs[j].Addr })
	p.buildCallGraph()
	return p, nil
}

func buildFunction(bin *image.Binary, sym image.Symbol) (*Function, error) {
	code, err := bin.FuncCode(sym)
	if err != nil {
		return nil, err
	}
	raw, err := isa.DecodeAll(bin.Arch, code, sym.Addr)
	if err != nil {
		return nil, err
	}
	insts := make([]LiftedInst, len(raw))
	for i, in := range raw {
		insts[i] = LiftedInst{
			Addr: sym.Addr + uint32(i)*isa.InstSize,
			Raw:  in,
			IR:   ir.Lift(in),
		}
	}

	fn := &Function{Name: sym.Name, Addr: sym.Addr, Size: sym.Size}
	if len(insts) == 0 {
		entry := &Block{Start: sym.Addr}
		fn.Entry = entry
		fn.Blocks = []*Block{entry}
		fn.LoopBlocks = map[int]bool{}
		return fn, nil
	}

	// Block leaders: function entry, branch targets inside the function,
	// and instructions following terminators or conditional branches.
	leaders := map[uint32]bool{sym.Addr: true}
	end := sym.Addr + sym.Size
	for _, li := range insts {
		switch li.Raw.Op {
		case isa.OpB:
			t := li.Raw.Target
			if t < sym.Addr || t >= end {
				return nil, fmt.Errorf("%w: %#x -> %#x", ErrBadTarget, li.Addr, t)
			}
			leaders[t] = true
			if li.Addr+isa.InstSize < end {
				leaders[li.Addr+isa.InstSize] = true
			}
		case isa.OpBX:
			if li.Addr+isa.InstSize < end {
				leaders[li.Addr+isa.InstSize] = true
			}
		}
	}

	// Materialize blocks in address order.
	starts := make([]uint32, 0, len(leaders))
	for a := range leaders {
		starts = append(starts, a)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	byStart := make(map[uint32]*Block, len(starts))
	for i, a := range starts {
		b := &Block{Start: a, Index: i}
		fn.Blocks = append(fn.Blocks, b)
		byStart[a] = b
	}
	for i, b := range fn.Blocks {
		stop := end
		if i+1 < len(fn.Blocks) {
			stop = fn.Blocks[i+1].Start
		}
		lo := int(b.Start-sym.Addr) / isa.InstSize
		hi := int(stop-sym.Addr) / isa.InstSize
		b.Insts = insts[lo:hi]
	}
	fn.Entry = byStart[sym.Addr]

	// Edges and callsites.
	for i, b := range fn.Blocks {
		term, ok := b.Terminator()
		if !ok {
			continue
		}
		for _, li := range b.Insts {
			switch li.Raw.Op {
			case isa.OpBL:
				cs := CallSite{Addr: li.Addr, Target: li.Raw.Target, Block: b}
				if tgt, ok := bin.FuncAt(li.Raw.Target); ok {
					cs.Kind = CallLocal
					cs.Callee = tgt.Name
				} else if imp, ok := bin.ImportAt(li.Raw.Target); ok {
					cs.Kind = CallImport
					cs.Callee = imp.Name
				} else {
					cs.Kind = CallUnknown
				}
				fn.Calls = append(fn.Calls, cs)
			case isa.OpBLX:
				fn.Calls = append(fn.Calls, CallSite{
					Addr: li.Addr, Kind: CallIndirect, Reg: li.Raw.Rm, Block: b,
				})
			}
		}
		switch term.Raw.Op {
		case isa.OpB:
			tgt := byStart[term.Raw.Target]
			if tgt == nil {
				return nil, fmt.Errorf("%w: %#x", ErrBadTarget, term.Raw.Target)
			}
			b.Succs = append(b.Succs, tgt)
			if term.Raw.Cond != isa.CondAL {
				if i+1 < len(fn.Blocks) {
					b.Succs = append(b.Succs, fn.Blocks[i+1])
				}
			}
		case isa.OpBX:
			// Return: no successors.
		default:
			if i+1 < len(fn.Blocks) {
				b.Succs = append(b.Succs, fn.Blocks[i+1])
			}
		}
	}

	fn.findLoops()
	return fn, nil
}

// findLoops marks natural-loop membership using DFS back edges.
func (f *Function) findLoops() {
	f.LoopBlocks = make(map[int]bool)
	state := make([]int, len(f.Blocks)) // 0 unvisited, 1 on stack, 2 done
	var walk func(b *Block)
	walk = func(b *Block) {
		state[b.Index] = 1
		for _, s := range b.Succs {
			switch state[s.Index] {
			case 0:
				walk(s)
			case 1:
				// Back edge b -> s: the natural loop is s plus every node
				// that reaches b without passing through s.
				f.BackEdges = append(f.BackEdges, [2]int{b.Index, s.Index})
				f.markLoop(b, s)
			}
		}
		state[b.Index] = 2
	}
	if f.Entry != nil {
		walk(f.Entry)
	}
}

// markLoop marks the natural loop of back edge tail->header via reverse
// reachability from tail, stopping at the header.
func (f *Function) markLoop(tail, header *Block) {
	// Build predecessor lists lazily.
	preds := make([][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			preds[s.Index] = append(preds[s.Index], b)
		}
	}
	inLoop := map[int]bool{header.Index: true}
	stack := []*Block{tail}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if inLoop[b.Index] {
			continue
		}
		inLoop[b.Index] = true
		stack = append(stack, preds[b.Index]...)
	}
	for i := range inLoop {
		f.LoopBlocks[i] = true
	}
}

// buildCallGraph populates Callees/Callers from direct local calls.
func (p *Program) buildCallGraph() {
	for _, fn := range p.Funcs {
		seen := map[string]bool{}
		for _, cs := range fn.Calls {
			if cs.Kind != CallLocal || seen[cs.Callee] {
				continue
			}
			seen[cs.Callee] = true
			p.Callees[fn.Name] = append(p.Callees[fn.Name], cs.Callee)
			p.Callers[cs.Callee] = append(p.Callers[cs.Callee], fn.Name)
		}
		sort.Strings(p.Callees[fn.Name])
	}
	for k := range p.Callers {
		sort.Strings(p.Callers[k])
	}
}

// AddCallEdge inserts a resolved indirect call edge (from the
// data-structure-similarity component) into the call graph and the
// function's callsite table.
func (p *Program) AddCallEdge(caller string, site uint32, callee string) {
	fn := p.ByName[caller]
	if fn == nil || p.ByName[callee] == nil {
		return
	}
	for i := range fn.Calls {
		if fn.Calls[i].Addr == site && fn.Calls[i].Kind == CallIndirect {
			fn.Calls[i].Callee = callee
			fn.Calls[i].Target = p.ByName[callee].Addr
		}
	}
	for _, c := range p.Callees[caller] {
		if c == callee {
			return
		}
	}
	p.Callees[caller] = append(p.Callees[caller], callee)
	sort.Strings(p.Callees[caller])
	p.Callers[callee] = append(p.Callers[callee], caller)
	sort.Strings(p.Callers[callee])
}

// Stats summarizes the program for Table II.
type Stats struct {
	Functions      int
	Blocks         int
	CallGraphEdges int
}

// Stats computes Table II-style counts. Call-graph edges count every
// static callsite (local, import, and indirect), matching how binary
// tools report call graph size.
func (p *Program) Stats() Stats {
	var s Stats
	s.Functions = len(p.Funcs)
	for _, fn := range p.Funcs {
		s.Blocks += len(fn.Blocks)
		s.CallGraphEdges += len(fn.Calls)
	}
	return s
}

// SCC computes strongly connected components of the call graph restricted
// to the given function names and returns them in reverse topological
// order (callees before callers) — the bottom-up visiting order of
// Section III-E. Functions absent from names are ignored.
func (p *Program) SCC(names []string) [][]string {
	inSet := make(map[string]bool, len(names))
	for _, n := range names {
		if p.ByName[n] != nil {
			inSet[n] = true
		}
	}
	// Tarjan's algorithm, iterative over the name set in sorted order for
	// determinism.
	sorted := make([]string, 0, len(inSet))
	for n := range inSet {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	index := make(map[string]int, len(sorted))
	low := make(map[string]int, len(sorted))
	onStack := make(map[string]bool, len(sorted))
	var stack []string
	var comps [][]string
	next := 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range p.Callees[v] {
			if !inSet[w] {
				continue
			}
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range sorted {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	// Tarjan emits components in reverse topological order of the
	// condensation (a component is completed only after everything it can
	// reach), which is exactly callees-before-callers.
	return comps
}

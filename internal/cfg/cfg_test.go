package cfg

import (
	"errors"
	"testing"

	"dtaint/internal/asm"
	"dtaint/internal/image"
	"dtaint/internal/isa"
)

func mustAssemble(t *testing.T, src string) *image.Binary {
	t.Helper()
	b, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestLinearFunction(t *testing.T) {
	b := mustAssemble(t, `
.arch arm
.func f
  MOV R0, #1
  ADD R0, R0, #2
  BX LR
.endfunc
`)
	p, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	fn := p.ByName["f"]
	if fn == nil || len(fn.Blocks) != 1 {
		t.Fatalf("blocks = %+v", fn)
	}
	if len(fn.Entry.Insts) != 3 {
		t.Fatalf("entry has %d insts", len(fn.Entry.Insts))
	}
	if len(fn.Entry.Succs) != 0 {
		t.Fatal("return block must have no successors")
	}
}

func TestDiamondCFG(t *testing.T) {
	b := mustAssemble(t, `
.arch arm
.func f
  CMP R0, #64
  BGE big
  MOV R1, #1
  B join
big:
  MOV R1, #2
join:
  BX LR
.endfunc
`)
	p, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	fn := p.ByName["f"]
	if len(fn.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(fn.Blocks))
	}
	entry := fn.Entry
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %d (taken + fallthrough)", len(entry.Succs))
	}
	// Taken edge first.
	if entry.Succs[0].Start <= entry.Succs[1].Start {
		t.Fatal("taken edge (big) should be the later block")
	}
	if len(fn.LoopBlocks) != 0 {
		t.Fatal("diamond has no loops")
	}
}

func TestLoopDetection(t *testing.T) {
	b := mustAssemble(t, `
.arch arm
.func f
  MOV R2, #0
loop:
  LDRB R3, [R1, #0]
  STRB R3, [R0, #0]
  ADD R0, R0, #1
  ADD R1, R1, #1
  ADD R2, R2, #1
  CMP R2, #16
  BLT loop
  BX LR
.endfunc
`)
	p, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	fn := p.ByName["f"]
	if len(fn.BackEdges) != 1 {
		t.Fatalf("back edges = %v", fn.BackEdges)
	}
	if len(fn.LoopBlocks) == 0 {
		t.Fatal("loop blocks not marked")
	}
	// The loop body block must be marked, the entry must not.
	loopB, ok := fn.BlockAt(fn.Addr + 1*8)
	if !ok {
		t.Fatal("loop block not found")
	}
	if !fn.LoopBlocks[loopB.Index] {
		t.Fatal("loop body not in LoopBlocks")
	}
	if fn.LoopBlocks[fn.Entry.Index] {
		t.Fatal("entry wrongly marked as loop")
	}
}

func TestCallsitesAndCallGraph(t *testing.T) {
	b := mustAssemble(t, `
.arch mips
.import recv
.func top
  BL mid
  BL recv
  BLX R9
  BX LR
.endfunc
.func mid
  BL leaf
  BX LR
.endfunc
.func leaf
  BX LR
.endfunc
`)
	p, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	top := p.ByName["top"]
	if len(top.Calls) != 3 {
		t.Fatalf("top calls = %+v", top.Calls)
	}
	kinds := map[CallKind]int{}
	for _, c := range top.Calls {
		kinds[c.Kind]++
	}
	if kinds[CallLocal] != 1 || kinds[CallImport] != 1 || kinds[CallIndirect] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
	if got := p.Callees["top"]; len(got) != 1 || got[0] != "mid" {
		t.Fatalf("callees(top) = %v", got)
	}
	if got := p.Callers["leaf"]; len(got) != 1 || got[0] != "mid" {
		t.Fatalf("callers(leaf) = %v", got)
	}
	st := p.Stats()
	if st.Functions != 3 || st.CallGraphEdges != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSCCBottomUpOrder(t *testing.T) {
	b := mustAssemble(t, `
.arch arm
.func a
  BL b
  BX LR
.endfunc
.func b
  BL c
  BX LR
.endfunc
.func c
  BX LR
.endfunc
`)
	p, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	comps := p.SCC([]string{"a", "b", "c"})
	if len(comps) != 3 {
		t.Fatalf("comps = %v", comps)
	}
	// Bottom-up: callees before callers.
	order := map[string]int{}
	for i, comp := range comps {
		for _, n := range comp {
			order[n] = i
		}
	}
	if !(order["c"] < order["b"] && order["b"] < order["a"]) {
		t.Fatalf("not bottom-up: %v", comps)
	}
}

func TestSCCRecursion(t *testing.T) {
	// Mutually recursive pair must land in one component; the paper's
	// "analyze each function once" has to survive call-graph cycles.
	b := mustAssemble(t, `
.arch arm
.func even
  BL odd
  BX LR
.endfunc
.func odd
  BL even
  BX LR
.endfunc
.func user
  BL even
  BX LR
.endfunc
`)
	p, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	comps := p.SCC([]string{"even", "odd", "user"})
	if len(comps) != 2 {
		t.Fatalf("comps = %v", comps)
	}
	if len(comps[0]) != 2 {
		t.Fatalf("first component should be the cycle: %v", comps)
	}
	if comps[1][0] != "user" {
		t.Fatalf("user must come last: %v", comps)
	}
}

func TestSCCSubset(t *testing.T) {
	b := mustAssemble(t, `
.arch arm
.func a
  BL b
  BX LR
.endfunc
.func b
  BX LR
.endfunc
`)
	p, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	comps := p.SCC([]string{"a"})
	if len(comps) != 1 || comps[0][0] != "a" {
		t.Fatalf("subset SCC = %v", comps)
	}
}

func TestAddCallEdge(t *testing.T) {
	b := mustAssemble(t, `
.arch arm
.func dispatch
  LDR R9, [R0, #8]
  BLX R9
  BX LR
.endfunc
.func handler
  BX LR
.endfunc
`)
	p, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	site := p.ByName["dispatch"].Calls[0].Addr
	p.AddCallEdge("dispatch", site, "handler")
	if got := p.Callees["dispatch"]; len(got) != 1 || got[0] != "handler" {
		t.Fatalf("callees = %v", got)
	}
	cs := p.ByName["dispatch"].Calls[0]
	if cs.Callee != "handler" || cs.Target != p.ByName["handler"].Addr {
		t.Fatalf("callsite not updated: %+v", cs)
	}
	// Duplicate insert must not duplicate the edge.
	p.AddCallEdge("dispatch", site, "handler")
	if got := p.Callees["dispatch"]; len(got) != 1 {
		t.Fatalf("duplicate edge: %v", got)
	}
	// Unknown names are ignored.
	p.AddCallEdge("ghost", 0, "handler")
	p.AddCallEdge("dispatch", 0, "ghost")
}

func TestBadBranchTarget(t *testing.T) {
	// Hand-craft a binary with a branch escaping the function.
	in := isa.Inst{Op: isa.OpB, Target: 0x9999_0000}
	enc, err := isa.Encode(isa.ArchARM, in)
	if err != nil {
		t.Fatal(err)
	}
	bin := &image.Binary{
		Name: "bad", Arch: isa.ArchARM, TextBase: 0x10000,
		Text:  enc[:],
		Funcs: []image.Symbol{{Name: "f", Addr: 0x10000, Size: 8}},
	}
	if _, err := Build(bin); !errors.Is(err, ErrBadTarget) {
		t.Fatalf("want ErrBadTarget, got %v", err)
	}
}

func TestNoFunctions(t *testing.T) {
	bin := &image.Binary{Name: "empty", Arch: isa.ArchARM, TextBase: 0x10000}
	if _, err := Build(bin); !errors.Is(err, ErrNoFunctions) {
		t.Fatalf("want ErrNoFunctions, got %v", err)
	}
}

func TestBlockAt(t *testing.T) {
	b := mustAssemble(t, `
.arch arm
.func f
  B next
next:
  BX LR
.endfunc
`)
	p, err := Build(b)
	if err != nil {
		t.Fatal(err)
	}
	fn := p.ByName["f"]
	if blk, ok := fn.BlockAt(fn.Addr + 8); !ok || blk.Start != fn.Addr+8 {
		t.Fatalf("BlockAt: %+v %v", blk, ok)
	}
	if _, ok := fn.BlockAt(fn.Addr + 4); ok {
		t.Fatal("BlockAt matched a non-leader")
	}
	if fn.Blocks[0].End() != fn.Addr+8 {
		t.Fatalf("End = %#x", fn.Blocks[0].End())
	}
}

// Package vocab defines the declarative source/sink/sanitizer
// vocabulary: a JSON spec describing every function the taint layer
// models — its name, per-argument roles (src/dest/len/format/exec/
// path/base/byte), sink class, return-taint behavior, and sanitizer
// shape. The engine-facing compilation of a Spec lives in
// internal/taint; this package owns the schema, the embedded default
// (the paper's Table I plus the format-string / path-traversal /
// NVRAM extensions), line-precise validation, and the fingerprint
// that cache keys fold in so a changed vocabulary invalidates every
// cached summary and report.
package vocab

import (
	"bytes"
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Argument roles. A role names what the modeled function does with an
// argument; the taint compiler turns roles into propagation models.
const (
	RoleSrc    = "src"    // pointer whose pointed-to content is read
	RoleDest   = "dest"   // pointer whose pointed-to content is written
	RoleLen    = "len"    // explicit copy/read bound
	RoleFormat = "format" // printf/scanf-style format string
	RoleExec   = "exec"   // command string handed to a shell
	RolePath   = "path"   // filesystem path handed to the OS
	RoleBase   = "base"   // numeric base of a strtol-style parse
	RoleByte   = "byte"   // probe byte of a strchr-style scan
)

// Function kinds.
const (
	KindSource = "source" // introduces attacker-controlled data
	KindSink   = "sink"   // security-sensitive consumer of data
	KindModel  = "model"  // propagation-only library model
)

// Sink classes (mirrored by taint.Class / the public dtaint classes).
const (
	ClassBufferOverflow   = "buffer-overflow"
	ClassCommandInjection = "command-injection"
	ClassFormatString     = "format-string"
	ClassPathTraversal    = "path-traversal"
)

// Propagation models for KindModel entries.
const (
	ModelLenOf    = "len-of"    // returns the length of the src content (strlen)
	ModelParseInt = "parse-int" // returns an integer parsed from the src content (atoi/strtol)
	ModelByteScan = "byte-scan" // scans the src content for the byte arg (strchr)
	ModelAlloc    = "alloc"     // returns a fresh heap pointer (malloc)
	ModelNop      = "nop"       // no taint effect (memset, strcmp, free)
)

// Argument value types, mapped to the symbolic engine's type lattice
// for library type inference. Empty means "no type information".
const (
	TypeCharPtr = "char*"
	TypePtr     = "ptr"
	TypeInt     = "int"
	TypeVoid    = "void" // return position only
)

// Arg describes one positional argument of a modeled function.
type Arg struct {
	// Type is the argument's value type ("char*", "ptr", "int", or
	// empty for no type information).
	Type string `json:"type,omitempty"`
	// Role is the argument's taint role (see the Role constants), or
	// empty for an argument the model ignores.
	Role string `json:"role,omitempty"`
}

// Func is one vocabulary entry.
type Func struct {
	// Name is the import/PLT symbol the entry models.
	Name string `json:"name"`
	// Kind is "source", "sink", or "model".
	Kind string `json:"kind"`
	// Class is the finding class of a sink (required for sinks, must
	// be absent otherwise).
	Class string `json:"class,omitempty"`
	// Args are the declared positional arguments with inline roles.
	Args []Arg `json:"args,omitempty"`
	// Roles is the alternate spelling: role name -> argument index.
	// Indices must point into Args and must not contradict an inline
	// role on the same argument.
	Roles map[string]int `json:"roles,omitempty"`
	// Variadic declares trailing varargs past the declared arguments:
	// "src" (printf-style data the function reads) or "dest"
	// (scanf-style pointers the function writes).
	Variadic string `json:"variadic,omitempty"`
	// Ret is the return value type ("void"/empty for none).
	Ret string `json:"ret,omitempty"`
	// RetTaint marks a source returning a pointer to attacker data
	// (getenv-style) rather than filling a dest argument.
	RetTaint bool `json:"retTaint,omitempty"`
	// Nul marks a sink/source that writes NUL-terminated string data:
	// the copy occupies strlen(content)+1 bytes, so sanitization takes
	// the strict `<` capacity comparison (a bound equal to the capacity
	// is the off-by-one class). For a source with a len role it also
	// means at most len-1 content bytes are written (fgets).
	Nul bool `json:"nul,omitempty"`
	// Append marks a sink that appends to dest instead of replacing it
	// (strcat family).
	Append bool `json:"append,omitempty"`
	// Unbounded marks a sink no bound can ever apply to (gets).
	Unbounded bool `json:"unbounded,omitempty"`
	// LenTaint marks a sink where a tainted length alone is a finding
	// even when the copied data is clean (memcpy — the Heartbleed
	// shape).
	LenTaint bool `json:"lenTaint,omitempty"`
	// Unsigned marks a parse-int model with an unsigned result
	// (strtoul).
	Unsigned bool `json:"unsigned,omitempty"`
	// Model selects the propagation model of a KindModel entry.
	Model string `json:"model,omitempty"`
	// GuardByte is the single separator/probe byte whose checked
	// presence sanitizes this sink's class (";" for command injection,
	// "." for path traversal).
	GuardByte string `json:"guardByte,omitempty"`
	// Aux marks a modeled sink outside the Table I census: it is
	// detected and reported, but excluded from the Sources/Sinks
	// vocabulary listings and the static sink-site count.
	Aux bool `json:"aux,omitempty"`
}

// RoleIndex resolves a role to its argument index: inline Args roles
// first, then the Roles map; -1 when the role is absent.
func (f *Func) RoleIndex(role string) int {
	for i, a := range f.Args {
		if a.Role == role {
			return i
		}
	}
	if i, ok := f.Roles[role]; ok {
		return i
	}
	return -1
}

// SrcIndices returns every argument index carrying the src role, in
// positional order.
func (f *Func) SrcIndices() []int {
	var out []int
	for i, a := range f.Args {
		if a.Role == RoleSrc {
			out = append(out, i)
		}
	}
	if i, ok := f.Roles[RoleSrc]; ok {
		out = append(out, i)
	}
	return out
}

// Spec is a complete vocabulary.
type Spec struct {
	Version   int    `json:"version"`
	Functions []Func `json:"functions"`
}

// Error is one line/field-precise validation failure.
type Error struct {
	File  string // source file ("" for in-memory specs)
	Line  int    // 1-based line of the offending entry (0 unknown)
	Func  string // offending function entry ("" for spec-level errors)
	Field string // offending field ("" when the whole entry is wrong)
	Msg   string
}

// Error implements the error interface.
func (e *Error) Error() string {
	var b strings.Builder
	if e.File != "" {
		fmt.Fprintf(&b, "%s:", e.File)
	} else {
		b.WriteString("vocab:")
	}
	if e.Line > 0 {
		fmt.Fprintf(&b, "%d:", e.Line)
	}
	b.WriteString(" ")
	if e.Func != "" {
		fmt.Fprintf(&b, "function %q: ", e.Func)
	}
	if e.Field != "" {
		fmt.Fprintf(&b, "field %s: ", e.Field)
	}
	b.WriteString(e.Msg)
	return b.String()
}

//go:embed default.json
var defaultJSON []byte

// Default returns the embedded default vocabulary: the paper's Table I
// sources and sinks, the supporting libc models, and the format-string
// / path-traversal / NVRAM extensions. The returned Spec is shared;
// callers must not mutate it.
func Default() *Spec {
	return defaultSpec
}

var defaultSpec = func() *Spec {
	s, err := Parse(defaultJSON, "default.json")
	if err != nil {
		panic(fmt.Sprintf("vocab: embedded default invalid: %v", err))
	}
	return s
}()

// Load reads and validates a vocabulary file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("vocab: %w", err)
	}
	return Parse(data, path)
}

// Parse decodes and validates a vocabulary spec. Malformed specs are
// rejected with line/field-precise errors — an unknown role, a
// duplicate function entry, or a role index past the argument list is
// an error, never a silently ignored entry. name labels error messages
// (usually the file path).
func Parse(data []byte, name string) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, decodeError(data, name, err)
	}
	// A second top-level value is malformed input, not trailing data to
	// ignore.
	if dec.More() {
		return nil, &Error{File: name, Line: lineAt(data, dec.InputOffset()), Msg: "unexpected data after the vocabulary object"}
	}
	if errs := validate(&s, name, functionLines(data)); len(errs) > 0 {
		return nil, joinErrors(errs)
	}
	return &s, nil
}

// decodeError maps a json decoding failure to a line-precise Error.
func decodeError(data []byte, name string, err error) error {
	var off int64 = -1
	switch e := err.(type) {
	case *json.SyntaxError:
		off = e.Offset
	case *json.UnmarshalTypeError:
		off = e.Offset
	}
	line := 0
	if off >= 0 {
		line = lineAt(data, off)
	}
	return &Error{File: name, Line: line, Msg: err.Error()}
}

// lineAt converts a byte offset into a 1-based line number.
func lineAt(data []byte, off int64) int {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	return 1 + bytes.Count(data[:off], []byte{'\n'})
}

// functionLines walks the raw JSON tokens and records the line on
// which each element of the top-level "functions" array starts, so
// validation errors can point at the offending entry.
func functionLines(data []byte) []int {
	dec := json.NewDecoder(bytes.NewReader(data))
	var st []tokFrame
	lastKey := ""
	var lines []int
	for {
		tok, err := dec.Token()
		if err != nil {
			return lines
		}
		// InputOffset after the token points just past it — for an
		// opening '{' that is still the delimiter's own line (the offset
		// before the token would end on the previous line's separator).
		off := dec.InputOffset()
		if d, ok := tok.(json.Delim); ok {
			switch d {
			case '{':
				if n := len(st); n > 0 && st[n-1].isFuncs {
					lines = append(lines, lineAt(data, off))
				}
				markValueDone(st)
				st = append(st, tokFrame{isObj: true, keyNext: true})
			case '[':
				isFuncs := len(st) == 1 && st[0].isObj && lastKey == "functions"
				markValueDone(st)
				st = append(st, tokFrame{isFuncs: isFuncs})
			case '}', ']':
				if len(st) > 0 {
					st = st[:len(st)-1]
				}
			}
			continue
		}
		if n := len(st); n > 0 && st[n-1].isObj {
			if st[n-1].keyNext {
				if k, ok := tok.(string); ok {
					lastKey = k
				}
				st[n-1].keyNext = false
			} else {
				st[n-1].keyNext = true
			}
		}
	}
}

// tokFrame is one open container during the functionLines token walk.
type tokFrame struct {
	isObj   bool
	keyNext bool
	isFuncs bool
}

// markValueDone flips the enclosing object's key/value alternation when
// a container value begins.
func markValueDone(st []tokFrame) {
	if n := len(st); n > 0 && st[n-1].isObj {
		st[n-1].keyNext = true
	}
}

var validRoles = map[string]bool{
	RoleSrc: true, RoleDest: true, RoleLen: true, RoleFormat: true,
	RoleExec: true, RolePath: true, RoleBase: true, RoleByte: true,
}

var validTypes = map[string]bool{
	"": true, TypeCharPtr: true, TypePtr: true, TypeInt: true,
}

var validClasses = map[string]bool{
	ClassBufferOverflow: true, ClassCommandInjection: true,
	ClassFormatString: true, ClassPathTraversal: true,
}

var validModels = map[string]bool{
	ModelLenOf: true, ModelParseInt: true, ModelByteScan: true,
	ModelAlloc: true, ModelNop: true,
}

// validate applies the semantic rules. lines carries the source line of
// each functions[i] entry (may be shorter than Functions when the
// token walk could not attribute them).
func validate(s *Spec, name string, lines []int) []error {
	var errs []error
	lineOf := func(i int) int {
		if i < len(lines) {
			return lines[i]
		}
		return 0
	}
	if s.Version != 1 {
		errs = append(errs, &Error{File: name, Field: "version",
			Msg: fmt.Sprintf("unsupported vocabulary version %d (want 1)", s.Version)})
	}
	if len(s.Functions) == 0 {
		errs = append(errs, &Error{File: name, Msg: "vocabulary declares no functions"})
	}
	seen := make(map[string]int, len(s.Functions))
	for i := range s.Functions {
		f := &s.Functions[i]
		ln := lineOf(i)
		fail := func(field, msg string) {
			errs = append(errs, &Error{File: name, Line: ln, Func: f.Name, Field: field, Msg: msg})
		}
		if f.Name == "" {
			errs = append(errs, &Error{File: name, Line: ln, Field: "name",
				Msg: fmt.Sprintf("functions[%d] has no name", i)})
			continue
		}
		if prev, dup := seen[f.Name]; dup {
			fail("name", fmt.Sprintf("duplicate entry (first declared at line %d)", lineOf(prev)))
			continue
		}
		seen[f.Name] = i

		switch f.Kind {
		case KindSource, KindSink, KindModel:
		default:
			fail("kind", fmt.Sprintf("unknown kind %q (want source, sink, or model)", f.Kind))
			continue
		}
		if f.Kind == KindSink {
			if !validClasses[f.Class] {
				fail("class", fmt.Sprintf("unknown sink class %q", f.Class))
			}
		} else if f.Class != "" {
			fail("class", fmt.Sprintf("class %q is only valid on sinks", f.Class))
		}

		roleSeen := map[string]int{}
		for j, a := range f.Args {
			argField := fmt.Sprintf("args[%d]", j)
			if !validTypes[a.Type] {
				fail(argField+".type", fmt.Sprintf("unknown type %q (want char*, ptr, or int)", a.Type))
			}
			if a.Role != "" && !validRoles[a.Role] {
				fail(argField+".role", fmt.Sprintf("unknown role %q", a.Role))
				continue
			}
			if a.Role != "" && a.Role != RoleSrc {
				if prev, dup := roleSeen[a.Role]; dup {
					fail(argField+".role", fmt.Sprintf("role %q already assigned to arg %d", a.Role, prev))
				}
				roleSeen[a.Role] = j
			}
		}
		for role, idx := range f.Roles {
			field := fmt.Sprintf("roles[%q]", role)
			if !validRoles[role] {
				fail(field, fmt.Sprintf("unknown role %q", role))
				continue
			}
			if idx < 0 || idx >= len(f.Args) {
				fail(field, fmt.Sprintf("index %d points past the %d-entry arg list", idx, len(f.Args)))
				continue
			}
			if r := f.Args[idx].Role; r != "" && r != role {
				fail(field, fmt.Sprintf("arg %d already carries role %q", idx, r))
			}
			if prev, dup := roleSeen[role]; dup && role != RoleSrc {
				fail(field, fmt.Sprintf("role %q already assigned to arg %d", role, prev))
			}
			roleSeen[role] = idx
		}

		switch f.Variadic {
		case "", RoleSrc, RoleDest:
		default:
			fail("variadic", fmt.Sprintf("unknown variadic role %q (want src or dest)", f.Variadic))
		}
		if f.Variadic != "" && f.RoleIndex(RoleFormat) < 0 {
			fail("variadic", "variadic entries need a format-role argument to anchor the varargs")
		}
		switch f.Ret {
		case "", TypeVoid, TypeCharPtr, TypePtr, TypeInt:
		default:
			fail("ret", fmt.Sprintf("unknown return type %q", f.Ret))
		}
		if gb := f.GuardByte; gb != "" {
			if len(gb) != 1 {
				fail("guardByte", fmt.Sprintf("%q is not a single byte", gb))
			}
			if f.Kind != KindSink {
				fail("guardByte", "guard bytes are only valid on sinks")
			}
		}
		if f.Model != "" && f.Kind != KindModel {
			fail("model", "the model field is only valid on kind \"model\" entries")
		}

		switch f.Kind {
		case KindSource:
			if !f.RetTaint && f.RoleIndex(RoleDest) < 0 {
				fail("", "a source must either return tainted data (retTaint) or declare a dest-role argument")
			}
		case KindSink:
			if f.RetTaint {
				fail("retTaint", "retTaint is only valid on sources")
			}
			if !f.Unbounded && f.RoleIndex(RoleSrc) < 0 && f.RoleIndex(RoleFormat) < 0 &&
				f.RoleIndex(RoleExec) < 0 && f.RoleIndex(RolePath) < 0 && f.RoleIndex(RoleLen) < 0 {
				fail("", "a sink needs at least one src/format/exec/path/len-role argument (or unbounded)")
			}
			switch f.Class {
			case ClassCommandInjection:
				if f.RoleIndex(RoleExec) < 0 {
					fail("", "a command-injection sink needs an exec-role argument")
				}
			case ClassPathTraversal:
				if f.RoleIndex(RolePath) < 0 {
					fail("", "a path-traversal sink needs a path-role argument")
				}
			case ClassFormatString:
				if f.RoleIndex(RoleFormat) < 0 {
					fail("", "a format-string sink needs a format-role argument")
				}
			}
		case KindModel:
			if !validModels[f.Model] {
				fail("model", fmt.Sprintf("unknown model %q", f.Model))
			}
			if f.RetTaint {
				fail("retTaint", "retTaint is only valid on sources")
			}
			switch f.Model {
			case ModelLenOf, ModelParseInt, ModelByteScan:
				if f.RoleIndex(RoleSrc) < 0 {
					fail("model", fmt.Sprintf("model %q needs a src-role argument", f.Model))
				}
			}
			if f.Model == ModelByteScan && f.RoleIndex(RoleByte) < 0 {
				fail("model", "a byte-scan model needs a byte-role argument")
			}
		}
		if f.Unsigned && f.Model != ModelParseInt {
			fail("unsigned", "unsigned is only valid on parse-int models")
		}
	}
	return errs
}

// joinErrors folds validation failures into one error, newline-
// separated so every line keeps its file:line prefix.
func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%s", strings.Join(msgs, "\n"))
}

// Fingerprint returns a stable digest of the vocabulary's semantic
// content. It is folded into every options fingerprint, so a changed
// vocabulary misses the summary-store and fleet caches while an
// identical one replays warm.
func (s *Spec) Fingerprint() string {
	blob, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("vocab: fingerprint: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:8])
}

// SourceNames returns the non-aux source names in declaration order.
func (s *Spec) SourceNames() []string { return s.namesOf(KindSource) }

// SinkNames returns the non-aux sink names in declaration order.
func (s *Spec) SinkNames() []string { return s.namesOf(KindSink) }

func (s *Spec) namesOf(kind string) []string {
	var out []string
	for i := range s.Functions {
		if f := &s.Functions[i]; f.Kind == kind && !f.Aux {
			out = append(out, f.Name)
		}
	}
	return out
}

package vocab

import (
	"strings"
	"testing"
)

func TestDefaultParsesAndCoversTableI(t *testing.T) {
	s := Default()
	if s.Version != 1 {
		t.Fatalf("default version = %d", s.Version)
	}
	names := make(map[string]*Func, len(s.Functions))
	for i := range s.Functions {
		names[s.Functions[i].Name] = &s.Functions[i]
	}
	for _, want := range []string{
		// Table I sources and sinks.
		"read", "recv", "recvfrom", "recvmsg", "getenv", "fgets", "websGetVar", "find_var",
		"strcpy", "strncpy", "sprintf", "memcpy", "strcat", "sscanf", "system", "popen",
		// The PR's extensions.
		"nvram_get", "printf", "open", "fopen", "unlink",
	} {
		if names[want] == nil {
			t.Errorf("default vocabulary missing %q", want)
		}
	}
	if f := names["strcpy"]; f.RoleIndex(RoleDest) != 0 || f.RoleIndex(RoleSrc) != 1 || !f.Nul {
		t.Errorf("strcpy roles wrong: %+v", f)
	}
	if f := names["memcpy"]; f.RoleIndex(RoleLen) != 2 || !f.LenTaint {
		t.Errorf("memcpy roles wrong: %+v", f)
	}
	if f := names["system"]; f.Class != ClassCommandInjection || f.GuardByte != ";" {
		t.Errorf("system entry wrong: %+v", f)
	}
	if f := names["open"]; f.Class != ClassPathTraversal || f.GuardByte != "." {
		t.Errorf("open entry wrong: %+v", f)
	}
}

func TestFingerprintStability(t *testing.T) {
	a := Default().Fingerprint()
	if a == "" || a != Default().Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	// A semantic edit changes the digest.
	s2, err := Parse([]byte(`{"version":1,"functions":[
		{"name":"strcpy","kind":"sink","class":"buffer-overflow","nul":true,
		 "args":[{"type":"char*","role":"dest"},{"type":"char*","role":"src"}]}]}`), "")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Fingerprint() == a {
		t.Fatal("distinct vocabularies share a fingerprint")
	}
}

// one wraps a single function entry in a complete spec document.
func one(entry string) string {
	return `{"version": 1, "functions": [` + entry + `]}`
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want []string // substrings of the error message
	}{
		{
			name: "unknown role",
			doc: one(`{"name": "f", "kind": "sink", "class": "buffer-overflow",
				"args": [{"type": "char*", "role": "destt"}]}`),
			want: []string{`function "f"`, "args[0].role", `unknown role "destt"`},
		},
		{
			name: "duplicate entry",
			doc: `{"version": 1, "functions": [
				{"name": "strcpy", "kind": "model", "model": "nop"},
				{"name": "strcpy", "kind": "model", "model": "nop"}]}`,
			want: []string{"vocab.json:3", `function "strcpy"`, "duplicate entry (first declared at line 2)"},
		},
		{
			name: "len role past the arg list",
			doc: one(`{"name": "f", "kind": "sink", "class": "buffer-overflow",
				"args": [{"type": "char*", "role": "dest"}, {"type": "char*", "role": "src"}],
				"roles": {"len": 7}}`),
			want: []string{`roles["len"]`, "index 7 points past the 2-entry arg list"},
		},
		{
			name: "role map contradicts inline role",
			doc: one(`{"name": "f", "kind": "sink", "class": "buffer-overflow",
				"args": [{"role": "dest"}, {"role": "src"}], "roles": {"len": 0}}`),
			want: []string{`roles["len"]`, `arg 0 already carries role "dest"`},
		},
		{
			name: "unknown kind",
			doc:  one(`{"name": "f", "kind": "sinkhole"}`),
			want: []string{"field kind", `unknown kind "sinkhole"`},
		},
		{
			name: "unknown class",
			doc:  one(`{"name": "f", "kind": "sink", "class": "overflow", "args": [{"role": "src"}]}`),
			want: []string{"field class", `unknown sink class "overflow"`},
		},
		{
			name: "class on a model",
			doc:  one(`{"name": "f", "kind": "model", "model": "nop", "class": "buffer-overflow"}`),
			want: []string{"only valid on sinks"},
		},
		{
			name: "unknown model",
			doc:  one(`{"name": "f", "kind": "model", "model": "identity"}`),
			want: []string{`unknown model "identity"`},
		},
		{
			name: "unknown arg type",
			doc:  one(`{"name": "f", "kind": "model", "model": "nop", "args": [{"type": "char**"}]}`),
			want: []string{"args[0].type", `unknown type "char**"`},
		},
		{
			name: "duplicate non-src role",
			doc: one(`{"name": "f", "kind": "sink", "class": "buffer-overflow",
				"args": [{"role": "dest"}, {"role": "dest"}, {"role": "src"}]}`),
			want: []string{"args[1].role", `role "dest" already assigned to arg 0`},
		},
		{
			name: "variadic without a format anchor",
			doc: one(`{"name": "f", "kind": "sink", "class": "buffer-overflow", "variadic": "src",
				"args": [{"role": "dest"}]}`),
			want: []string{"field variadic", "need a format-role argument"},
		},
		{
			name: "bad variadic role",
			doc: one(`{"name": "f", "kind": "sink", "class": "buffer-overflow", "variadic": "len",
				"args": [{"role": "dest"}, {"role": "format"}]}`),
			want: []string{`unknown variadic role "len"`},
		},
		{
			name: "multi-byte guard",
			doc: one(`{"name": "f", "kind": "sink", "class": "command-injection", "guardByte": "..",
				"args": [{"role": "exec"}]}`),
			want: []string{"field guardByte", "not a single byte"},
		},
		{
			name: "command sink without exec role",
			doc:  one(`{"name": "f", "kind": "sink", "class": "command-injection", "args": [{"role": "src"}]}`),
			want: []string{"needs an exec-role argument"},
		},
		{
			name: "path sink without path role",
			doc:  one(`{"name": "f", "kind": "sink", "class": "path-traversal", "args": [{"role": "src"}]}`),
			want: []string{"needs a path-role argument"},
		},
		{
			name: "source with neither retTaint nor dest",
			doc:  one(`{"name": "f", "kind": "source", "args": [{"type": "int"}]}`),
			want: []string{"must either return tainted data"},
		},
		{
			name: "sink with no checked argument",
			doc:  one(`{"name": "f", "kind": "sink", "class": "buffer-overflow", "args": [{"type": "int"}]}`),
			want: []string{"needs at least one src/format/exec/path/len-role argument"},
		},
		{
			name: "unsigned outside parse-int",
			doc:  one(`{"name": "f", "kind": "model", "model": "nop", "unsigned": true}`),
			want: []string{"field unsigned", "only valid on parse-int models"},
		},
		{
			name: "wrong version",
			doc:  `{"version": 2, "functions": [{"name": "f", "kind": "model", "model": "nop"}]}`,
			want: []string{"field version", "unsupported vocabulary version 2"},
		},
		{
			name: "empty function list",
			doc:  `{"version": 1, "functions": []}`,
			want: []string{"declares no functions"},
		},
		{
			name: "nameless entry",
			doc:  one(`{"kind": "model", "model": "nop"}`),
			want: []string{"functions[0] has no name"},
		},
		{
			name: "unknown top-level field",
			doc:  `{"version": 1, "functions": [], "sinks": []}`,
			want: []string{"unknown field"},
		},
		{
			name: "trailing garbage",
			doc:  `{"version": 1, "functions": [{"name": "f", "kind": "model", "model": "nop"}]} {}`,
			want: []string{"unexpected data after the vocabulary object"},
		},
		{
			name: "syntax error carries a line",
			doc:  "{\n  \"version\": 1,\n  \"functions\": [,]\n}",
			want: []string{"vocab.json:3"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc), "vocab.json")
			if err == nil {
				t.Fatalf("malformed spec accepted:\n%s", tc.doc)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Errorf("error %q missing %q", err, w)
				}
			}
		})
	}
}

func TestEntryLineAttribution(t *testing.T) {
	// The duplicate sits on line 6 of the document; the error must say so.
	doc := `{
  "version": 1,
  "functions": [
    {"name": "a", "kind": "model", "model": "nop"},
    {"name": "b", "kind": "model", "model": "nop"},
    {"name": "a", "kind": "model", "model": "nop"}
  ]
}`
	_, err := Parse([]byte(doc), "v.json")
	if err == nil {
		t.Fatal("duplicate accepted")
	}
	if !strings.Contains(err.Error(), "v.json:6:") {
		t.Fatalf("error not attributed to line 6: %q", err)
	}
	if !strings.Contains(err.Error(), "first declared at line 4") {
		t.Fatalf("first declaration line missing: %q", err)
	}
}

func TestMultipleErrorsAllReported(t *testing.T) {
	doc := `{"version": 1, "functions": [
		{"name": "f", "kind": "sink", "class": "wat", "args": [{"role": "nope"}]},
		{"name": "g", "kind": "quux"}]}`
	_, err := Parse([]byte(doc), "")
	if err == nil {
		t.Fatal("accepted")
	}
	msg := err.Error()
	for _, w := range []string{`unknown sink class "wat"`, `unknown role "nope"`, `unknown kind "quux"`} {
		if !strings.Contains(msg, w) {
			t.Errorf("joined error missing %q: %s", w, msg)
		}
	}
}

func TestRoleIndexAndRolesMap(t *testing.T) {
	s, err := Parse([]byte(one(`{"name": "wifi_set", "kind": "sink", "class": "buffer-overflow",
		"args": [{"type": "char*"}, {"type": "char*"}, {"type": "int"}],
		"roles": {"dest": 0, "src": 1, "len": 2}}`)), "")
	if err != nil {
		t.Fatal(err)
	}
	f := &s.Functions[0]
	if f.RoleIndex(RoleDest) != 0 || f.RoleIndex(RoleSrc) != 1 || f.RoleIndex(RoleLen) != 2 {
		t.Fatalf("roles map not resolved: %+v", f)
	}
	if f.RoleIndex(RoleFormat) != -1 {
		t.Fatal("absent role must resolve to -1")
	}
}

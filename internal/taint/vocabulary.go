// vocabulary.go compiles a declarative vocab.Spec into the dispatch
// tables the tracker executes: one fnModel per entry, the census
// source/sink name lists, the library prototypes for type inference,
// and the set of sanitizer guard bytes the byte-scan model registers.
package taint

import (
	"fmt"
	"sync"

	"dtaint/internal/expr"
	"dtaint/internal/symexec"
	"dtaint/internal/vocab"
)

// modelKind selects the propagation/observation behavior of one
// compiled vocabulary entry.
type modelKind int

const (
	kindBufferSource  modelKind = iota + 1 // fills a dest argument with attacker data
	kindReturnSource                       // returns a pointer to attacker data
	kindCopy                               // unbounded NUL copy src -> dest (strcpy/strcat)
	kindBoundedCopy                        // explicit-length copy (strncpy/strncat)
	kindRawCopy                            // explicit-length raw copy; tainted length alone is a finding (memcpy)
	kindFormatCopy                         // format + variadic srcs -> dest (sprintf/snprintf)
	kindScanCopy                           // src + format -> variadic dests (sscanf)
	kindUnboundedRead                      // no bound can apply (gets)
	kindSepSink                            // data sink sanitized by a separator-byte check (system/popen/open)
	kindFormatSink                         // tainted format string is the finding (printf family)
	kindLenOf                              // returns the content length (strlen)
	kindParseInt                           // returns an integer parsed from content (atoi/strtol)
	kindByteScan                           // registers separator guards (strchr)
	kindAlloc                              // fresh heap pointer (malloc)
	kindNop                                // no taint effect
)

// fnModel is one vocabulary entry compiled for dispatch. Role indices
// are -1 when the entry has no argument with that role.
type fnModel struct {
	name      string
	kind      modelKind
	class     Class
	src       int // primary src-role argument
	dest      int
	lenArg    int
	fmtArg    int
	dataArg   int // exec/path argument of a kindSepSink
	baseArg   int
	byteArg   int
	nul       bool
	appendTo  bool
	unsigned  bool
	guardByte byte
}

// Vocabulary is a compiled vocabulary: the engine-facing form of a
// vocab.Spec. It is immutable after compilation and safe to share
// across tracker shards and worker goroutines.
type Vocabulary struct {
	spec        *vocab.Spec
	models      map[string]fnModel
	sources     []string
	sinks       []string // census sinks, "loop" appended last
	protos      map[string]symexec.Proto
	guardBytes  map[byte]bool
	fingerprint string
}

// CompileVocabulary validates nothing the vocab package has not
// already enforced; it translates a well-formed Spec into dispatch
// form. Entries whose shape cannot be classified are a compile error,
// so a vocabulary never silently loses a function.
func CompileVocabulary(spec *vocab.Spec) (*Vocabulary, error) {
	v := &Vocabulary{
		spec:        spec,
		models:      make(map[string]fnModel, len(spec.Functions)),
		protos:      make(map[string]symexec.Proto, len(spec.Functions)),
		guardBytes:  make(map[byte]bool),
		fingerprint: spec.Fingerprint(),
	}
	for i := range spec.Functions {
		f := &spec.Functions[i]
		m, err := compileFunc(f)
		if err != nil {
			return nil, fmt.Errorf("vocab entry %q: %w", f.Name, err)
		}
		v.models[f.Name] = m
		if m.guardByte != 0 {
			v.guardBytes[m.guardByte] = true
		}
		if p, ok := protoOf(f); ok {
			v.protos[f.Name] = p
		}
		if !f.Aux {
			switch f.Kind {
			case vocab.KindSource:
				v.sources = append(v.sources, f.Name)
			case vocab.KindSink:
				v.sinks = append(v.sinks, f.Name)
			}
		}
	}
	// The structural loop-copy sink of Table I is not a named function;
	// it closes the census list.
	v.sinks = append(v.sinks, LoopSink)
	return v, nil
}

// MustCompileVocabulary is CompileVocabulary for specs already known
// valid (the embedded default, test fixtures).
func MustCompileVocabulary(spec *vocab.Spec) *Vocabulary {
	v, err := CompileVocabulary(spec)
	if err != nil {
		panic(err)
	}
	return v
}

var defaultVocabOnce sync.Once
var defaultVocab *Vocabulary

// DefaultVocabulary returns the compiled embedded default vocabulary.
func DefaultVocabulary() *Vocabulary {
	defaultVocabOnce.Do(func() {
		defaultVocab = MustCompileVocabulary(vocab.Default())
	})
	return defaultVocab
}

// Spec returns the declarative spec this vocabulary was compiled from.
func (v *Vocabulary) Spec() *vocab.Spec { return v.spec }

// Fingerprint returns the spec's content digest (see
// vocab.Spec.Fingerprint).
func (v *Vocabulary) Fingerprint() string { return v.fingerprint }

// SourceNames returns the census source names in declaration order.
func (v *Vocabulary) SourceNames() []string {
	return append([]string(nil), v.sources...)
}

// SinkNames returns the census sink names in declaration order, with
// the structural "loop" sink appended.
func (v *Vocabulary) SinkNames() []string {
	return append([]string(nil), v.sinks...)
}

// Prototypes returns the library type signatures derived from the
// vocabulary's declared argument and return types.
func (v *Vocabulary) Prototypes() map[string]symexec.Proto {
	out := make(map[string]symexec.Proto, len(v.protos))
	for k, p := range v.protos {
		out[k] = p
	}
	return out
}

// compileFunc classifies one entry into its dispatch kind.
func compileFunc(f *vocab.Func) (fnModel, error) {
	m := fnModel{
		name:     f.Name,
		src:      f.RoleIndex(vocab.RoleSrc),
		dest:     f.RoleIndex(vocab.RoleDest),
		lenArg:   f.RoleIndex(vocab.RoleLen),
		fmtArg:   f.RoleIndex(vocab.RoleFormat),
		baseArg:  f.RoleIndex(vocab.RoleBase),
		byteArg:  f.RoleIndex(vocab.RoleByte),
		dataArg:  -1,
		nul:      f.Nul,
		appendTo: f.Append,
	}
	if f.GuardByte != "" {
		m.guardByte = f.GuardByte[0]
	}
	switch f.Kind {
	case vocab.KindSource:
		if f.RetTaint {
			m.kind = kindReturnSource
		} else {
			m.kind = kindBufferSource
		}
		return m, nil

	case vocab.KindSink:
		switch f.Class {
		case vocab.ClassCommandInjection:
			m.kind = kindSepSink
			m.class = ClassCommandInjection
			m.dataArg = f.RoleIndex(vocab.RoleExec)
			if m.guardByte == 0 {
				m.guardByte = SemicolonByte
			}
		case vocab.ClassPathTraversal:
			m.kind = kindSepSink
			m.class = ClassPathTraversal
			m.dataArg = f.RoleIndex(vocab.RolePath)
			if m.guardByte == 0 {
				m.guardByte = DotByte
			}
		case vocab.ClassFormatString:
			m.kind = kindFormatSink
			m.class = ClassFormatString
		case vocab.ClassBufferOverflow:
			m.class = ClassBufferOverflow
			switch {
			case f.Unbounded:
				m.kind = kindUnboundedRead
			case m.fmtArg >= 0 && f.Variadic == vocab.RoleDest:
				m.kind = kindScanCopy
			case m.fmtArg >= 0:
				m.kind = kindFormatCopy
			case f.LenTaint:
				m.kind = kindRawCopy
			case m.lenArg >= 0:
				m.kind = kindBoundedCopy
			default:
				m.kind = kindCopy
			}
		default:
			return m, fmt.Errorf("unclassifiable sink class %q", f.Class)
		}
		return m, nil

	case vocab.KindModel:
		switch f.Model {
		case vocab.ModelLenOf:
			m.kind = kindLenOf
		case vocab.ModelParseInt:
			m.kind = kindParseInt
			m.unsigned = f.Unsigned
		case vocab.ModelByteScan:
			m.kind = kindByteScan
		case vocab.ModelAlloc:
			m.kind = kindAlloc
		case vocab.ModelNop:
			m.kind = kindNop
		default:
			return m, fmt.Errorf("unclassifiable model %q", f.Model)
		}
		return m, nil
	}
	return m, fmt.Errorf("unclassifiable kind %q", f.Kind)
}

// protoOf derives the symexec prototype from an entry's declared
// types. Entries with no type information contribute no prototype.
func protoOf(f *vocab.Func) (symexec.Proto, bool) {
	var p symexec.Proto
	typed := false
	for _, a := range f.Args {
		t := exprType(a.Type)
		p.Args = append(p.Args, t)
		if t != expr.TypeUnknown {
			typed = true
		}
	}
	if rt := exprType(f.Ret); rt != expr.TypeUnknown {
		p.Ret = rt
		typed = true
	}
	return p, typed
}

func exprType(t string) expr.Type {
	switch t {
	case vocab.TypeCharPtr:
		return expr.TypeCharPtr
	case vocab.TypePtr:
		return expr.TypePtr
	case vocab.TypeInt:
		return expr.TypeInt
	}
	return expr.TypeUnknown
}

// Package taint implements DTaint's vulnerability-detection layer
// (Section IV): the source/sink vocabulary (Table I plus extensions,
// declared in internal/vocab and compiled here), symbolic models of
// the C library, taint introduction and propagation, sink observation,
// and the sanitization-constraint checks that decide whether a
// (source, path, sink) tuple is a taint-style vulnerability.
package taint

import (
	"fmt"
	"sort"
	"strings"

	"dtaint/internal/cfg"
	"dtaint/internal/expr"
	"dtaint/internal/image"
	"dtaint/internal/isa"
	"dtaint/internal/symexec"
	"dtaint/internal/vocab"
	"dtaint/internal/vrange"
)

// Class is the vulnerability class of a sink.
type Class int

// Vulnerability classes. The first two are the paper's constraint-
// expression kinds; off-by-one and length-truncation are refinements
// the value-range domain makes decidable: a copy whose proven bound
// equals the destination capacity exactly (the NUL terminator lands
// one byte past the end), and a tainted length narrowed by a one-byte
// store (the classic truncated-length-check pattern). Format-string
// and path-traversal are vocabulary extensions beyond Table I: a
// tainted format reaching the printf family, and a tainted path
// reaching a file operation without a '.'-probe.
const (
	ClassBufferOverflow Class = iota + 1
	ClassCommandInjection
	ClassOffByOne
	ClassLengthTruncation
	ClassFormatString
	ClassPathTraversal
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassBufferOverflow:
		return "buffer-overflow"
	case ClassCommandInjection:
		return "command-injection"
	case ClassOffByOne:
		return "off-by-one"
	case ClassLengthTruncation:
		return "length-truncation"
	case ClassFormatString:
		return "format-string"
	case ClassPathTraversal:
		return "path-traversal"
	}
	return "class?"
}

// ClassFromVocab maps a vocab sink-class string to its Class.
func ClassFromVocab(s string) Class {
	switch s {
	case vocab.ClassBufferOverflow:
		return ClassBufferOverflow
	case vocab.ClassCommandInjection:
		return ClassCommandInjection
	case vocab.ClassFormatString:
		return ClassFormatString
	case vocab.ClassPathTraversal:
		return ClassPathTraversal
	}
	return 0
}

// Sources is the default vocabulary's input-source census (Table I
// plus the NVRAM getters).
var Sources = DefaultVocabulary().SourceNames()

// Sinks is the default vocabulary's sensitive-sink census (LoopSink
// denotes loop buffer copies, detected structurally rather than by
// name).
var Sinks = DefaultVocabulary().SinkNames()

// LoopSink names the structural loop-copy sink of Table I; it is not a
// library function and never appears in a vocabulary spec.
const LoopSink = "loop"

// NarrowStoreSink names the structural 1-byte-store sink behind the
// length-truncation class.
const NarrowStoreSink = "narrow-store"

// SemicolonByte is the command separator whose absence of checking makes a
// system()/popen() call injectable.
const SemicolonByte = 0x3B

// DotByte is the path-traversal probe: a file-op sink whose tainted
// path was scanned for '.' (the "..' climb marker) counts as sanitized,
// mirroring the ';' rule for command injection.
const DotByte = 0x2E

// Step is one hop of a source-to-sink path, ordered sink-first.
type Step struct {
	Func string
	Addr uint32
	Note string
}

// String implements fmt.Stringer.
func (s Step) String() string {
	if s.Note != "" {
		return fmt.Sprintf("%s@%#x(%s)", s.Func, s.Addr, s.Note)
	}
	return fmt.Sprintf("%s@%#x", s.Func, s.Addr)
}

// Finding is one (source, path, sink) tuple. Sanitized findings are kept
// for diagnostics; unsanitized ones are the paper's "vulnerable paths".
type Finding struct {
	Class      Class
	Sink       string
	SinkFunc   string
	SinkAddr   uint32
	Source     string
	SourceAddr uint64
	TaintExpr  *expr.Expr
	GuardExpr  *expr.Expr
	Path       []Step
	Sanitized  bool
	// Evidence is the constraint/interval chain behind the verdict —
	// why the path was (or was not) considered sanitized — rendered into
	// the report so an analyst can audit the decision.
	Evidence []string
}

// String renders a one-line report.
func (f Finding) String() string {
	state := "VULNERABLE"
	if f.Sanitized {
		state = "sanitized"
	}
	steps := make([]string, len(f.Path))
	for i, s := range f.Path {
		steps[i] = s.String()
	}
	return fmt.Sprintf("[%s] %s -> %s in %s@%#x (%s) path=%s",
		state, f.Source, f.Sink, f.SinkFunc, f.SinkAddr, f.Class,
		strings.Join(steps, " <- "))
}

// PendingSink is a sink whose taintedness depends on the caller: its
// critical expressions are rooted in formal arguments. Algorithm 2 pushes
// these up to every callsite.
type PendingSink struct {
	Class       Class
	Sink        string
	SinkFunc    string
	SinkAddr    uint32
	TaintExpr   *expr.Expr
	GuardExpr   *expr.Expr
	Path        []Step
	Constraints []symexec.Constraint
	Guarded     bool // a guard (e.g. strchr ';' scan) already seen below
	Depth       int
	// DstCap and BoundHint travel with the sink: the destination buffer
	// lives in the sink function's frame, so its capacity is fixed when
	// the observation is made.
	DstCap    int64
	BoundHint int64
}

// MaxPendingDepth bounds how many call levels a pending sink may climb.
const MaxPendingDepth = 24

// sinkObs is an in-flight sink observation inside the current function.
type sinkObs struct {
	class   Class
	sink    string
	addr    uint32
	taint   *expr.Expr
	guard   *expr.Expr
	path    []Step
	carried []symexec.Constraint
	guarded bool
	depth   int
	// dstCap is the destination stack buffer's capacity in bytes when it
	// is derivable from the frame layout (0 = unknown).
	dstCap int64
	// boundHint is an intrinsic copy bound in bytes (e.g. a %254s scanf
	// width means at most 255 bytes are written); 0 = none.
	boundHint int64
}

// SourceSpec declares a custom attacker-controlled input function beyond
// Table I — e.g. a vendor NVRAM getter. Exactly one of BufArg >= 0 or
// ViaReturn should be set.
type SourceSpec struct {
	Name string
	// BufArg is the argument index of the buffer the function fills with
	// attacker data (-1 when unused).
	BufArg int
	// ViaReturn marks functions returning a pointer to attacker data
	// (getenv-style).
	ViaReturn bool
}

// SinkSpec declares a custom security-sensitive sink beyond Table I.
type SinkSpec struct {
	Name  string
	Class Class
	// DataArg is the argument whose pointed-to content must not be
	// tainted (-1 when unused).
	DataArg int
	// LenArg is the argument carrying the copy bound; -1 means the
	// sanitization check applies to the data content itself.
	LenArg int
}

// Tracker is the stateful oracle half of the detector: it models library
// calls for the symbolic engine (sources introduce taint, libc calls
// propagate it, sinks are observed) and accumulates findings across
// functions. It implements symexec.Oracle for import calls; local calls
// return Handled=false so the interprocedural driver can apply callee
// summaries.
type Tracker struct {
	curFunc string
	obs     []sinkObs
	guards  map[guardKey]bool // guarded content roots (strchr-style checks), per separator byte

	findings []Finding
	pendings map[string][]PendingSink
	obsSeen  map[string]bool
	frames   []trackerFrame

	vocab        *Vocabulary
	extraSources map[string]SourceSpec
	extraSinks   map[string]SinkSpec

	bin *image.Binary

	// noVRange disables the value-range sanitization refinement (the
	// `-ablate vrange` mode): verdicts fall back to the pre-interval
	// checks. Path discovery is identical in both modes — only the
	// Sanitized flag and the finding class may differ.
	noVRange bool
}

// DisableValueRange switches the tracker to the pre-interval
// sanitization checks (ablation). Must be set before analysis starts.
func (t *Tracker) DisableValueRange() { t.noVRange = true }

// SetBinary gives the tracker access to the program image, enabling
// models that inspect read-only data (e.g. scanf format-width bounds).
func (t *Tracker) SetBinary(b *image.Binary) { t.bin = b }

// SetVocabulary replaces the compiled vocabulary driving source/sink
// detection, propagation models, and sanitization verdicts. Must be
// set before analysis starts; nil restores the embedded default.
func (t *Tracker) SetVocabulary(v *Vocabulary) {
	if v == nil {
		v = DefaultVocabulary()
	}
	t.vocab = v
}

// guardKey identifies one registered separator-byte guard: the content
// root it covers and the byte that was scanned for.
type guardKey struct {
	root string
	b    byte
}

// AddSource registers a custom input source (applies to subsequent
// analysis).
func (t *Tracker) AddSource(s SourceSpec) {
	if t.extraSources == nil {
		t.extraSources = make(map[string]SourceSpec)
	}
	t.extraSources[s.Name] = s
}

// AddSink registers a custom sensitive sink.
func (t *Tracker) AddSink(s SinkSpec) {
	if t.extraSinks == nil {
		t.extraSinks = make(map[string]SinkSpec)
	}
	t.extraSinks[s.Name] = s
}

var _ symexec.Oracle = (*Tracker)(nil)

// NewTracker returns an empty tracker with the default vocabulary.
func NewTracker() *Tracker {
	return &Tracker{
		vocab:    DefaultVocabulary(),
		pendings: make(map[string][]PendingSink),
		obsSeen:  make(map[string]bool),
	}
}

// Shard returns a tracker sharing t's configuration — the custom
// source/sink vocabulary and the program image — but owning fresh
// finding, pending, and observation state. The parallel bottom-up
// scheduler gives every call-graph component its own shard and merges
// the per-shard results deterministically; the shared maps are never
// mutated after configuration, so shards are safe to use concurrently.
func (t *Tracker) Shard() *Tracker {
	s := NewTracker()
	s.bin = t.bin
	s.vocab = t.vocab
	s.extraSources = t.extraSources
	s.extraSinks = t.extraSinks
	s.noVRange = t.noVRange
	return s
}

// VulnKey is the canonical deduplication key for a vulnerability:
// several paths may reach the same weak sink, and every report layer
// (internal Result, public Report) must collapse them identically — a
// formatting mismatch between layers makes the two counts diverge.
func VulnKey(sinkFunc, sink string, sinkAddr uint32, class string) string {
	return fmt.Sprintf("%s|%s|%08x|%s", sinkFunc, sink, sinkAddr, class)
}

// BeginFunction resets per-function observation state.
func (t *Tracker) BeginFunction(name string) {
	t.curFunc = name
	t.obs = nil
	t.guards = make(map[guardKey]bool)
	t.frames = nil
}

// trackerFrame saves the per-function state across a recursive descent.
type trackerFrame struct {
	fn     string
	obs    []sinkObs
	guards map[guardKey]bool
}

// PushFrame suspends the current function's observation state and begins
// a nested one. The context-sensitive top-down baseline uses this when it
// recursively analyzes a callee in the middle of the caller's analysis.
func (t *Tracker) PushFrame(name string) {
	t.frames = append(t.frames, trackerFrame{fn: t.curFunc, obs: t.obs, guards: t.guards})
	t.curFunc = name
	t.obs = nil
	t.guards = make(map[guardKey]bool)
}

// PopFrame finalizes the nested function against its summary (as
// EndFunction does) and restores the suspended caller state.
func (t *Tracker) PopFrame(sum *symexec.Summary) {
	t.EndFunction(sum)
	if n := len(t.frames); n > 0 {
		fr := t.frames[n-1]
		t.frames = t.frames[:n-1]
		t.curFunc = fr.fn
		t.obs = fr.obs
		t.guards = fr.guards
	}
}

// Pendings returns the pending sinks exported by a summarized function.
func (t *Tracker) Pendings(fn string) []PendingSink { return t.pendings[fn] }

// Findings returns every recorded (source, path, sink) tuple.
func (t *Tracker) Findings() []Finding { return t.findings }

// Prototypes returns the default vocabulary's library type signatures
// (the paper's library type-inference channel) for symexec.Options.
func Prototypes() map[string]symexec.Proto {
	return DefaultVocabulary().Prototypes()
}

// PrototypesFor returns the prototypes of a loaded vocabulary; nil
// falls back to the default.
func PrototypesFor(v *Vocabulary) map[string]symexec.Proto {
	if v == nil {
		v = DefaultVocabulary()
	}
	return v.Prototypes()
}

// LenSymName is the symbol naming the length of the string content with
// the given expression key (the strlen model's return value).
func LenSymName(contentKey string) string { return "len_" + expr.Hash(contentKey) }

// Call implements symexec.Oracle: model library calls.
func (t *Tracker) Call(ctx *symexec.CallContext) symexec.CallEffect {
	// Vocabulary entries model imported library functions. A binary-local
	// function that happens to share a name (firmware shipping its own
	// strcpy) is NOT the libc routine: its body is analyzed like any other
	// local function, so modeling it here would both double-count and
	// mis-model. Models are therefore keyed on import/PLT identity — a
	// resolved local callee is never dispatched to the vocabulary.
	if ctx.Kind == cfg.CallLocal {
		return symexec.CallEffect{}
	}
	if s, ok := t.extraSources[ctx.Callee]; ok {
		if s.ViaReturn {
			return t.modelReturningSource(ctx)
		}
		if s.BufArg >= 0 {
			return t.modelBufferSource(ctx, fnModel{dest: s.BufArg, lenArg: -1})
		}
		return symexec.CallEffect{Handled: true}
	}
	if s, ok := t.extraSinks[ctx.Callee]; ok {
		return t.modelCustomSink(ctx, s)
	}
	m, ok := t.vocab.models[ctx.Callee]
	if !ok {
		return symexec.CallEffect{}
	}
	switch m.kind {
	case kindBufferSource:
		return t.modelBufferSource(ctx, m)
	case kindReturnSource:
		return t.modelReturningSource(ctx)
	case kindCopy:
		return t.modelCopy(ctx, m)
	case kindBoundedCopy:
		return t.modelBoundedCopy(ctx, m)
	case kindRawCopy:
		return t.modelRawCopy(ctx, m)
	case kindFormatCopy:
		return t.modelFormatCopy(ctx, m)
	case kindScanCopy:
		return t.modelScanCopy(ctx, m)
	case kindUnboundedRead:
		return t.modelUnboundedRead(ctx, m)
	case kindSepSink:
		return t.modelSepSink(ctx, m)
	case kindFormatSink:
		return t.modelFormatSink(ctx, m)
	case kindLenOf:
		return t.modelLenOf(ctx, m)
	case kindParseInt:
		return t.modelParseInt(ctx, m)
	case kindByteScan:
		return t.modelByteScan(ctx, m)
	case kindAlloc:
		return symexec.CallEffect{
			Handled: true,
			Ret:     expr.Sym(expr.HeapName(fmt.Sprintf("%s@%x", ctx.Func, ctx.Site))),
		}
	case kindNop:
		return symexec.CallEffect{Handled: true}
	}
	return symexec.CallEffect{}
}

// content returns the string/buffer content reached through pointer value
// p in the current path state. OR-combined pointers (a callee with
// several alternative returns) resolve component-wise so taint behind any
// alternative is seen.
func content(ctx *symexec.CallContext, p *expr.Expr) *expr.Expr {
	if p == nil {
		return nil
	}
	if op, x, y, ok := p.BinOperands(); ok && op == expr.OpOr {
		return orCombine(content(ctx, x), content(ctx, y))
	}
	return ctx.ResolveDeep(ctx.Resolve(p))
}

// arg returns the i'th call argument; absent roles (index -1) and
// calls shorter than the prototype resolve to nil.
func arg(ctx *symexec.CallContext, i int) *expr.Expr {
	if i < 0 || i >= len(ctx.Args) {
		return nil
	}
	return ctx.Args[i]
}

func taintSym(source string, site uint32) *expr.Expr {
	return expr.Sym(expr.TaintName(source, uint64(site)))
}

// orCombine folds non-nil expressions with OR, preserving every taint and
// marker symbol of the operands.
func orCombine(exprs ...*expr.Expr) *expr.Expr {
	var out *expr.Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
			continue
		}
		if out.Equal(e) {
			continue
		}
		out = expr.Bin(expr.OpOr, out, e)
	}
	return out
}

// stackCapacity derives a destination buffer's capacity from the frame
// layout: a pointer sp+d with d < 0 has -d bytes before the writes cross
// the caller's frame (the paper reports exact buffer sizes — "a local
// stack buffer of max size 152" — recovered the same way).
func stackCapacity(p *expr.Expr) int64 {
	if p == nil {
		return 0
	}
	base, off, ok := p.BasePlusOffset()
	if !ok || off >= 0 {
		return 0
	}
	if name, isSym := base.SymName(); isSym && name == expr.StackSym {
		return -off
	}
	return 0
}

// scanfMaxWidth extracts the largest conversion width from a scanf format
// string ("%254s" -> 254); 0 when no width is present.
func scanfMaxWidth(format string) int64 {
	var best int64
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		var w int64
		for i < len(format) && format[i] >= '0' && format[i] <= '9' {
			w = w*10 + int64(format[i]-'0')
			i++
		}
		if w > best {
			best = w
		}
	}
	return best
}

// formatString reads the constant format-string argument from rodata.
func (t *Tracker) formatString(fmtArg *expr.Expr) (string, bool) {
	if t.bin == nil || fmtArg == nil {
		return "", false
	}
	addr, ok := fmtArg.ConstVal()
	if !ok || addr < 0 {
		return "", false
	}
	return t.bin.StringAt(uint32(addr))
}

// modelCustomSink observes a user-declared sink: the DataArg content must
// be clean; LenArg (when present) is the bound whose constraint counts as
// sanitization.
func (t *Tracker) modelCustomSink(ctx *symexec.CallContext, s SinkSpec) symexec.CallEffect {
	var data, guard *expr.Expr
	if s.DataArg >= 0 {
		data = content(ctx, arg(ctx, s.DataArg))
	}
	if s.LenArg >= 0 {
		guard = ctx.ResolveDeep(arg(ctx, s.LenArg))
	} else {
		guard = data
	}
	taintE := data
	if s.LenArg >= 0 {
		taintE = orCombine(data, guard)
	}
	if s.Class == ClassCommandInjection || s.Class == ClassPathTraversal || s.Class == ClassFormatString {
		guard = arg(ctx, s.DataArg)
		taintE = orCombine(ctx.ResolveDeep(arg(ctx, s.DataArg)), data)
	}
	t.observe(sinkObs{
		class: s.Class, sink: s.Name, addr: ctx.Site,
		taint: taintE, guard: guard,
	})
	return symexec.CallEffect{Handled: true}
}

func (t *Tracker) modelBufferSource(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	buf := arg(ctx, m.dest)
	if buf == nil {
		return symexec.CallEffect{Handled: true}
	}
	ts := taintSym(ctx.Callee, ctx.Site)
	eff := symexec.CallEffect{
		Handled: true,
		MemDefs: []symexec.MemDef{{Addr: buf, Val: ts}},
	}
	// A NUL-terminating bounded source (fgets(buf, n, f)) reads at most
	// n-1 characters, so the length of the attacker data it writes is
	// provably in [0, n-1] — the libc model every later strlen/strcpy of
	// this content inherits through the interval environment.
	if m.nul && m.lenArg >= 0 {
		if nArg := ctx.ResolveDeep(arg(ctx, m.lenArg)); nArg != nil {
			if n, ok := nArg.ConstVal(); ok && n > 0 {
				eff.Ranges = map[string]vrange.Interval{
					LenSymName(ts.Key()): vrange.Range(0, n-1),
				}
			}
		}
	}
	return eff
}

func (t *Tracker) modelReturningSource(ctx *symexec.CallContext) symexec.CallEffect {
	ptr := expr.Sym(expr.HeapName(fmt.Sprintf("%s@%x", ctx.Callee, ctx.Site)))
	return symexec.CallEffect{
		Handled: true,
		Ret:     ptr,
		MemDefs: []symexec.MemDef{{Addr: ptr, Val: taintSym(ctx.Callee, ctx.Site)}},
	}
}

// modelCopy is the unbounded NUL-terminating copy (strcpy, and strcat
// with the append flag set).
func (t *Tracker) modelCopy(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	dst, src := arg(ctx, m.dest), arg(ctx, m.src)
	c := content(ctx, src)
	t.observe(sinkObs{
		class: m.class, sink: ctx.Callee, addr: ctx.Site,
		taint: c, guard: c, dstCap: stackCapacity(dst),
	})
	eff := symexec.CallEffect{Handled: true, Ret: dst}
	if dst != nil && c != nil {
		val := c
		if m.appendTo {
			val = orCombine(content(ctx, dst), c)
		}
		eff.MemDefs = []symexec.MemDef{{Addr: dst, Val: val}}
	}
	return eff
}

// modelBoundedCopy is the explicit-length copy (strncpy, and strncat
// with the append flag set).
func (t *Tracker) modelBoundedCopy(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	dst, src, n := arg(ctx, m.dest), arg(ctx, m.src), arg(ctx, m.lenArg)
	c := content(ctx, src)
	nRes := ctx.ResolveDeep(n)
	// The copy is dangerous when the copied data is tainted and the length
	// is not a sanitizing bound (e.g. strncpy(d, s, strlen(s))).
	t.observe(sinkObs{
		class: m.class, sink: ctx.Callee, addr: ctx.Site,
		taint: orCombine(c, nRes), guard: nRes, dstCap: stackCapacity(dst),
	})
	eff := symexec.CallEffect{Handled: true, Ret: dst}
	if dst != nil && c != nil {
		val := c
		if m.appendTo {
			val = orCombine(content(ctx, dst), c)
		}
		eff.MemDefs = []symexec.MemDef{{Addr: dst, Val: val}}
	}
	return eff
}

// modelFormatCopy is the format-driven copy into a destination buffer
// (sprintf; snprintf when a len role bounds it). Every argument from the
// format on — the format itself included — feeds the copy.
func (t *Tracker) modelFormatCopy(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	dst := arg(ctx, m.dest)
	var parts []*expr.Expr
	for i := m.fmtArg; i < len(ctx.Args); i++ {
		a := ctx.Args[i]
		if a == nil {
			continue
		}
		parts = append(parts, ctx.ResolveDeep(a), content(ctx, a))
	}
	combined := orCombine(parts...)
	obs := sinkObs{
		class: m.class, sink: ctx.Callee, addr: ctx.Site,
		taint: combined, guard: combined, dstCap: stackCapacity(dst),
	}
	// A size bound (snprintf): a constant size that fits the destination
	// sanitizes; a tainted or oversized size does not.
	if m.lenArg >= 0 {
		sizeRes := ctx.ResolveDeep(arg(ctx, m.lenArg))
		if sizeRes != nil {
			if v, ok := sizeRes.ConstVal(); ok && v > 0 {
				obs.boundHint = v
			}
		}
		obs.taint = orCombine(combined, sizeRes)
		obs.guard = sizeRes
	}
	t.observe(obs)
	eff := symexec.CallEffect{Handled: true}
	if dst != nil && combined != nil {
		eff.MemDefs = []symexec.MemDef{{Addr: dst, Val: combined}}
	}
	return eff
}

// modelRawCopy is the explicit-length raw copy (memcpy), where a tainted
// length alone is already a finding.
func (t *Tracker) modelRawCopy(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	dst, src, n := arg(ctx, m.dest), arg(ctx, m.src), arg(ctx, m.lenArg)
	c := content(ctx, src)
	nRes := ctx.ResolveDeep(n)
	// Two weaknesses: a tainted length (Heartbleed's payload), and tainted
	// data copied under an unchecked length.
	cap0 := stackCapacity(dst)
	// A constant copy length that fits the destination is statically safe;
	// the observation is kept (as a sanitized path) for diagnostics. The
	// length is judged after resolution — a register holding a constant is
	// as decidable as an immediate.
	fits := false
	if nRes != nil {
		if ln, okC := nRes.ConstVal(); okC && cap0 > 0 && ln <= cap0 {
			fits = true
		}
	}
	t.observe(sinkObs{
		class: m.class, sink: ctx.Callee, addr: ctx.Site,
		taint: nRes, guard: nRes, dstCap: cap0, guarded: fits,
	})
	t.observe(sinkObs{
		class: m.class, sink: ctx.Callee, addr: ctx.Site,
		taint: c, guard: nRes, dstCap: cap0, guarded: fits,
	})
	return propagateMemcpy(dst, c)
}

// propagateMemcpy applies memcpy's data effect: mem[dst] = content(src).
func propagateMemcpy(dst, c *expr.Expr) symexec.CallEffect {
	eff := symexec.CallEffect{Handled: true, Ret: dst}
	if dst != nil && c != nil {
		eff.MemDefs = []symexec.MemDef{{Addr: dst, Val: c}}
	}
	return eff
}

// modelScanCopy is the parsing copy (sscanf): a src argument scanned
// through a format into variadic destination buffers.
func (t *Tracker) modelScanCopy(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	src := arg(ctx, m.src)
	c := content(ctx, src)
	// A tainted format is attacker data reaching the copy in its own
	// right (conversion widths under attacker control); OR it into the
	// scanned content. Constant formats resolve taint-free and leave the
	// observation unchanged.
	if fc := content(ctx, arg(ctx, m.fmtArg)); fc != nil && fc.ContainsTaint() {
		c = orCombine(c, fc)
	}
	// A conversion width in the format bounds the copy; it sanitizes only
	// when the width (plus NUL) fits the smallest destination buffer —
	// the Uniview zero-day is exactly a %254s into a 180-byte buffer.
	var width, minCap int64
	if f, ok := t.formatString(arg(ctx, m.fmtArg)); ok {
		width = scanfMaxWidth(f)
	}
	for i := m.fmtArg + 1; i < len(ctx.Args); i++ {
		if cp := stackCapacity(ctx.Args[i]); cp > 0 && (minCap == 0 || cp < minCap) {
			minCap = cp
		}
	}
	var hint int64
	if width > 0 {
		hint = width + 1
	}
	t.observe(sinkObs{
		class: m.class, sink: ctx.Callee, addr: ctx.Site,
		taint: c, guard: c, dstCap: minCap, boundHint: hint,
	})
	eff := symexec.CallEffect{Handled: true}
	for i := m.fmtArg + 1; i < len(ctx.Args); i++ {
		if ctx.Args[i] != nil && c != nil {
			eff.MemDefs = append(eff.MemDefs, symexec.MemDef{Addr: ctx.Args[i], Val: c})
		}
	}
	return eff
}

// modelSepSink is a data sink whose sanitizer is a separator-byte probe
// on the tainted data: system/popen guarded by a ';' scan, open/fopen/
// unlink guarded by a '.' scan.
func (t *Tracker) modelSepSink(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	data := arg(ctx, m.dataArg)
	c := orCombine(ctx.ResolveDeep(data), content(ctx, data))
	guarded := false
	if c != nil {
		for _, root := range guardRoots(c) {
			if t.guards[guardKey{root, m.guardByte}] {
				guarded = true
			}
		}
	}
	t.observe(sinkObs{
		class: m.class, sink: ctx.Callee, addr: ctx.Site,
		taint: c, guard: data, guarded: guarded,
	})
	return symexec.CallEffect{Handled: true}
}

// modelFormatSink is the printf family: a tainted format string is the
// finding; the copy destination is the output stream, not a buffer.
func (t *Tracker) modelFormatSink(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	f := arg(ctx, m.fmtArg)
	c := orCombine(ctx.ResolveDeep(f), content(ctx, f))
	t.observe(sinkObs{
		class: m.class, sink: ctx.Callee, addr: ctx.Site,
		taint: c, guard: f,
	})
	return symexec.CallEffect{Handled: true}
}

// modelUnboundedRead handles gets-shaped sinks: attacker input with no
// possible bound — a reachable call on a stack buffer is always a
// finding.
func (t *Tracker) modelUnboundedRead(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	buf := arg(ctx, m.dest)
	ts := taintSym(ctx.Callee, ctx.Site)
	t.observe(sinkObs{
		class: m.class, sink: ctx.Callee, addr: ctx.Site,
		taint: ts, guard: nil, dstCap: stackCapacity(buf),
	})
	eff := symexec.CallEffect{Handled: true, Ret: buf}
	if buf != nil {
		eff.MemDefs = []symexec.MemDef{{Addr: buf, Val: ts}}
	}
	return eff
}

func (t *Tracker) modelLenOf(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	c := content(ctx, arg(ctx, m.src))
	if c == nil {
		return symexec.CallEffect{Handled: true}
	}
	lenName := LenSymName(c.Key())
	ret := expr.Sym(lenName)
	// The length of tainted data is itself attacker-controlled.
	for _, ts := range c.TaintSyms() {
		ret = expr.Bin(expr.OpOr, ret, expr.Sym(ts))
	}
	// A string length is never negative; met with any source-model bound
	// (fgets) this pins the symbol to [0, n-1].
	return symexec.CallEffect{
		Handled: true,
		Ret:     ret,
		Ranges:  map[string]vrange.Interval{lenName: vrange.AtLeast(0)},
	}
}

func (t *Tracker) modelParseInt(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	c := content(ctx, arg(ctx, m.src))
	if c == nil {
		return symexec.CallEffect{Handled: true}
	}
	name := "atoi_" + expr.Hash(c.Key())
	ret := expr.Sym(name)
	for _, ts := range c.TaintSyms() {
		ret = expr.Bin(expr.OpOr, ret, expr.Sym(ts))
	}
	eff := symexec.CallEffect{Handled: true, Ret: ret}
	// strtol-family range model: when the input string's length is
	// already bounded (e.g. it came from fgets) and the base is a known
	// constant, the parsed magnitude is below base^len. Entries without a
	// base argument (atoi) parse decimal.
	base := int64(10)
	if m.baseArg >= 0 {
		base = 0
		if b := arg(ctx, m.baseArg); b != nil {
			if v, okC := ctx.ResolveDeep(b).ConstVal(); okC && v >= 2 && v <= 36 {
				base = v
			}
		}
	}
	if base > 0 {
		if lenIv, ok := ctx.RangeOf(LenSymName(c.Key())); ok && lenIv.Bounded() && lenIv.Hi >= 0 {
			if mag, okP := powCapped(base, lenIv.Hi); okP {
				iv := vrange.Range(-(mag - 1), mag-1)
				if m.unsigned {
					iv = vrange.Range(0, mag-1)
				}
				eff.Ranges = map[string]vrange.Interval{name: iv}
			}
		}
	}
	return eff
}

// powCapped computes base^exp, reporting failure once the result leaves
// the 32-bit value domain (an unbounded parse).
func powCapped(base, exp int64) (int64, bool) {
	v := int64(1)
	for i := int64(0); i < exp; i++ {
		v *= base
		if v > vrange.DomainMax {
			return 0, false
		}
	}
	return v, true
}

// modelByteScan treats a scan for a sanitizer byte — strchr(s, ';')
// before system, strchr(s, '.') before open — as a separator guard on
// s, registered under the scanned byte so a ';' probe never sanitizes a
// path sink or vice versa.
func (t *Tracker) modelByteScan(ctx *symexec.CallContext, m fnModel) symexec.CallEffect {
	s, ch := arg(ctx, m.src), arg(ctx, m.byteArg)
	if ch != nil {
		if v, ok := ch.ConstVal(); ok && v >= 0 && v < 256 && t.vocab.guardBytes[byte(v)] {
			if c := content(ctx, s); c != nil {
				for _, root := range guardRoots(c) {
					t.guards[guardKey{root, byte(v)}] = true
				}
			}
		}
	}
	return symexec.CallEffect{Handled: true, Ret: expr.Sym("strchr_" + expr.Hash(fmt.Sprintf("%x", ctx.Site)))}
}

// guardRoots returns the identity keys under which a guard on content c is
// registered and looked up: the content's own key, the keys of each
// OR-combined component (command expressions combine the pointer value
// and its pointee), plus its taint symbols.
func guardRoots(c *expr.Expr) []string {
	seen := map[string]bool{}
	var roots []string
	var add func(e *expr.Expr)
	add = func(e *expr.Expr) {
		if op, x, y, ok := e.BinOperands(); ok && op == expr.OpOr {
			add(x)
			add(y)
			return
		}
		if !seen[e.Key()] {
			seen[e.Key()] = true
			roots = append(roots, e.Key())
		}
	}
	add(c)
	for _, ts := range c.TaintSyms() {
		if !seen[ts] {
			seen[ts] = true
			roots = append(roots, ts)
		}
	}
	return roots
}

// observe stages a sink observation for the current function, deduplicated
// by (site, taint key).
func (t *Tracker) observe(o sinkObs) {
	if o.taint == nil {
		return
	}
	key := fmt.Sprintf("%s|%x|%s|%s", t.curFunc, o.addr, o.sink, o.taint.Key())
	if t.obsSeen[key] {
		return
	}
	t.obsSeen[key] = true
	if len(o.path) == 0 {
		o.path = []Step{{Func: t.curFunc, Addr: o.addr, Note: o.sink}}
	}
	t.obs = append(t.obs, o)
}

// ImportPending re-evaluates a callee's pending sinks at a callsite in the
// current function (Algorithm 2's PushToCallSite, executed bottom-up).
// sub substitutes formal arguments with actuals and resolves the result
// against the live caller state.
func (t *Tracker) ImportPending(ps []PendingSink, sub func(*expr.Expr) *expr.Expr, callSite uint32) {
	for _, p := range ps {
		if p.Depth >= MaxPendingDepth {
			continue
		}
		taintE := sub(p.TaintExpr)
		guardE := p.GuardExpr
		if guardE != nil {
			guardE = sub(guardE)
		}
		carried := make([]symexec.Constraint, 0, len(p.Constraints))
		for _, c := range p.Constraints {
			carried = append(carried, symexec.Constraint{
				L: sub(c.L), R: sub(c.R), Cond: c.Cond, Addr: c.Addr, InLoop: c.InLoop,
			})
		}
		path := make([]Step, len(p.Path), len(p.Path)+1)
		copy(path, p.Path)
		path = append(path, Step{Func: t.curFunc, Addr: callSite, Note: "call " + p.SinkFunc})
		t.observe(sinkObs{
			class: p.Class, sink: p.Sink, addr: p.SinkAddr,
			taint: taintE, guard: guardE,
			path: path, carried: carried, guarded: p.Guarded,
			depth:  p.Depth + 1,
			dstCap: p.DstCap, boundHint: p.BoundHint,
		})
	}
}

// EndFunction finalizes the function's observations against its completed
// summary: tainted sinks become findings, argument-rooted sinks become
// pending sinks for the callers, and loop-copy stores are checked as the
// structural "loop" sink of Table I.
func (t *Tracker) EndFunction(sum *symexec.Summary) {
	// Structural loop-copy sinks.
	for _, ls := range sum.LoopStores {
		if ls.Val == nil || (!ls.Val.ContainsTaint() && !isArgRooted(ls.Val)) {
			continue
		}
		t.observe(sinkObs{
			class: ClassBufferOverflow, sink: LoopSink, addr: ls.Addr,
			taint: ls.Val, guard: ls.Val,
		})
	}

	// Narrowing stores of tainted lengths (CWE-197): a strlen result
	// squeezed through a 1-byte store silently drops the high bits any
	// later bound check would have rejected. Staged in both vrange modes
	// so path discovery is mode-independent; only the verdict differs.
	for _, dp := range sum.DefPairs {
		if dp.Size != 1 || dp.U == nil || !dp.U.ContainsTaint() || !mentionsLenSym(dp.U) {
			continue
		}
		t.observe(sinkObs{
			class: ClassLengthTruncation, sink: NarrowStoreSink, addr: dp.Addr,
			taint: dp.U, guard: dp.U,
		})
	}

	for _, o := range t.obs {
		switch {
		case o.taint.ContainsTaint():
			v := t.checkObs(o, sum)
			f := Finding{
				Class:     v.class,
				Sink:      o.sink,
				SinkFunc:  sinkFuncOf(o, sum.Func),
				SinkAddr:  o.addr,
				TaintExpr: o.taint,
				GuardExpr: o.guard,
				Path:      o.path,
				Sanitized: v.sanitized,
				Evidence:  v.evidence,
			}
			f.Source, f.SourceAddr = primarySource(o.taint)
			t.findings = append(t.findings, f)
		case isArgRooted(o.taint) || readsGlobal(o.taint):
			// A check performed below this point (in this function or a
			// callee) sanitizes the path no matter where the taint enters;
			// evaluate it now, while the local length-symbol names still
			// match (ReplaceFormalArgs cannot rewrite hashed names).
			guarded := o.guarded || t.checkObs(o, sum).sanitized
			t.pendings[sum.Func] = append(t.pendings[sum.Func], PendingSink{
				Class:       o.class,
				Sink:        o.sink,
				SinkFunc:    sinkFuncOf(o, sum.Func),
				SinkAddr:    o.addr,
				TaintExpr:   o.taint,
				GuardExpr:   o.guard,
				Path:        o.path,
				Constraints: append(relevantConstraints(sum.Constraints, o), o.carried...),
				Guarded:     guarded,
				Depth:       o.depth,
				DstCap:      o.dstCap,
				BoundHint:   o.boundHint,
			})
		}
	}
	t.obs = nil
}

func sinkFuncOf(o sinkObs, cur string) string {
	if len(o.path) > 0 {
		return o.path[0].Func
	}
	return cur
}

// obsGuarded re-checks the guard table for observations staged before the
// guard was registered on the same path.
func (t *Tracker) obsGuarded(o sinkObs) bool {
	if o.class != ClassCommandInjection && o.class != ClassPathTraversal {
		return false
	}
	gb := t.guardByteFor(o)
	for _, root := range guardRoots(o.taint) {
		if t.guards[guardKey{root, gb}] {
			return true
		}
	}
	return false
}

// guardByteFor returns the separator byte whose check sanitizes this
// observation's sink: the vocabulary entry's declared guard byte, or the
// class default (';' for command injection, '.' for path traversal).
func (t *Tracker) guardByteFor(o sinkObs) byte {
	if m, ok := t.vocab.models[o.sink]; ok && m.guardByte != 0 {
		return m.guardByte
	}
	if o.class == ClassPathTraversal {
		return DotByte
	}
	return SemicolonByte
}

// isArgRooted reports whether e depends on a formal argument and can
// therefore become tainted in a caller context.
func isArgRooted(e *expr.Expr) bool {
	for _, s := range e.Syms() {
		if _, ok := expr.ArgIndex(s); ok {
			return true
		}
	}
	return false
}

// readsGlobal reports whether e reads memory at an absolute address — a
// global variable that a sibling function (reached earlier in the
// caller's execution) may have tainted.
func readsGlobal(e *expr.Expr) bool {
	if e == nil {
		return false
	}
	if addr, ok := e.DerefAddr(); ok {
		if _, isConst := addr.ConstVal(); isConst {
			return true
		}
		if base, _, ok2 := addr.BasePlusOffset(); ok2 {
			if _, isConst := base.ConstVal(); isConst {
				return true
			}
		}
		return readsGlobal(addr)
	}
	if _, x, y, ok := e.BinOperands(); ok {
		return readsGlobal(x) || readsGlobal(y)
	}
	return false
}

// primarySource attributes the finding to the lexically smallest taint
// symbol (deterministic when multiple sources mix).
func primarySource(e *expr.Expr) (string, uint64) {
	ts := e.TaintSyms()
	if len(ts) == 0 {
		return "", 0
	}
	sort.Strings(ts)
	src, site, ok := expr.TaintSource(ts[0])
	if !ok {
		return "input", 0
	}
	return src, site
}

// relevantConstraints selects the function's constraints that mention any
// symbol of the observation's taint or guard expressions, so they can be
// carried (and substituted) when the pending sink climbs to callers.
func relevantConstraints(cs []symexec.Constraint, o sinkObs) []symexec.Constraint {
	marks := make(map[string]bool)
	for _, s := range o.taint.Syms() {
		marks[s] = true
	}
	if o.guard != nil {
		for _, s := range o.guard.Syms() {
			marks[s] = true
		}
	}
	marks[LenSymName(o.taint.Key())] = true
	if o.guard != nil {
		marks[LenSymName(o.guard.Key())] = true
	}
	var out []symexec.Constraint
	for _, c := range cs {
		if mentionsAny(c.L, marks) || mentionsAny(c.R, marks) {
			out = append(out, c)
		}
	}
	return out
}

func mentionsAny(e *expr.Expr, marks map[string]bool) bool {
	if e == nil {
		return false
	}
	for _, s := range e.Syms() {
		if marks[s] {
			return true
		}
	}
	return false
}

// verdict is the outcome of one sanitization check together with the
// constraint/interval evidence chain behind it.
type verdict struct {
	sanitized bool
	class     Class
	evidence  []string
}

// checkObs decides one observation's verdict: the interval-aware checks
// by default, the legacy constraint checks under the vrange ablation.
// Both modes see the same observations — only Sanitized and the finding
// class may differ between them, never which paths are discovered.
func (t *Tracker) checkObs(o sinkObs, sum *symexec.Summary) verdict {
	all := make([]symexec.Constraint, 0, len(sum.Constraints)+len(o.carried))
	all = append(all, sum.Constraints...)
	all = append(all, o.carried...)
	switch {
	case o.class == ClassCommandInjection || o.class == ClassPathTraversal:
		v := verdict{class: o.class}
		if o.guarded || separatorGuarded(o, all, t.guardByteFor(o)) || t.obsGuarded(o) {
			v.sanitized = true
			if o.class == ClassCommandInjection {
				v.evidence = append(v.evidence,
					"command separator ';' checked on the tainted data")
			} else {
				v.evidence = append(v.evidence,
					"path climb marker '.' probed on the tainted path")
			}
		}
		return v
	case o.class == ClassFormatString:
		// A tainted format string is the vulnerability itself: no byte
		// probe or length bound makes attacker-controlled conversions
		// safe, so the class has no sanitizer shape. Constant formats
		// resolve taint-free and never reach this arm.
		return verdict{class: o.class, evidence: []string{
			"attacker-controlled format string reaches a printf-family sink"}}
	case o.class == ClassLengthTruncation:
		return t.checkTruncation(o, sum)
	case t.noVRange:
		v := verdict{class: o.class, sanitized: o.guarded || legacyOverflowGuarded(o, all)}
		return v
	default:
		return t.checkOverflow(o, sum, all)
	}
}

// checkOverflow is the interval-aware buffer-overflow check: a bound
// sanitizes only when the proven maximum of the copied length stays
// strictly below the destination capacity for NUL-terminating copies
// (`<=` at exact capacity is the off-by-one class), or at most equal for
// explicit-length copies.
func (t *Tracker) checkOverflow(o sinkObs, sum *symexec.Summary, cs []symexec.Constraint) verdict {
	v := verdict{class: o.class}
	if o.guarded {
		v.sanitized = true
		v.evidence = append(v.evidence, "bound established below the sink")
		return v
	}
	if o.guard == nil {
		v.evidence = append(v.evidence, "no bound can apply to this sink")
		return v
	}
	nul := t.nulSink(o.sink)
	// An intrinsic copy bound (scanf conversion width, snprintf size)
	// decides directly against the destination capacity.
	if o.boundHint > 0 && o.dstCap > 0 {
		switch {
		case o.boundHint <= o.dstCap:
			v.sanitized = true
			v.evidence = append(v.evidence, fmt.Sprintf(
				"intrinsic copy bound %d fits capacity %d", o.boundHint, o.dstCap))
		case o.boundHint == o.dstCap+1:
			v.class = ClassOffByOne
			v.evidence = append(v.evidence, fmt.Sprintf(
				"intrinsic copy bound %d overruns capacity %d by exactly one byte",
				o.boundHint, o.dstCap))
		default:
			v.evidence = append(v.evidence, fmt.Sprintf(
				"intrinsic copy bound %d exceeds capacity %d", o.boundHint, o.dstCap))
		}
		return v
	}
	if o.sink == LoopSink {
		if loopGuarded(cs) {
			v.sanitized = true
			v.evidence = append(v.evidence, "loop trip count bounded by a small constant")
		}
		return v
	}
	env := t.obsEnv(o, sum)
	if o.dstCap > 0 {
		if nul {
			// The copy writes strlen(content)+1 bytes: the proven length
			// bound must leave room for the NUL terminator.
			if ub, ok := contentLenBound(o.guard, env); ok {
				switch {
				case ub < o.dstCap:
					v.sanitized = true
					v.evidence = append(v.evidence, fmt.Sprintf(
						"strlen(content) <= %d proven, +NUL fits capacity %d", ub, o.dstCap))
					return v
				case ub == o.dstCap:
					v.class = ClassOffByOne
					v.evidence = append(v.evidence, fmt.Sprintf(
						"strlen(content) <= %d proven: the NUL terminator lands one byte past capacity %d",
						ub, o.dstCap))
					return v
				default:
					v.evidence = append(v.evidence, fmt.Sprintf(
						"proven length bound %d exceeds capacity %d", ub, o.dstCap))
				}
			}
		} else if ub, ok := vrange.MaxValueEnv(o.guard, env); ok {
			// Explicit-length copy: a length of exactly the capacity fits.
			if ub <= o.dstCap {
				v.sanitized = true
				v.evidence = append(v.evidence, fmt.Sprintf(
					"copy length bounded by %d, fits capacity %d", ub, o.dstCap))
				return v
			}
			v.evidence = append(v.evidence, fmt.Sprintf(
				"copy length bound %d exceeds capacity %d", ub, o.dstCap))
		}
	}
	// Constraint scan: symbolic bounds and comparisons the interval
	// derivation cannot express (unknown capacities, symbolic caps).
	marks := guardMarks(o)
	for _, c := range cs {
		if !isMagnitude(c.Cond) {
			continue
		}
		var other *expr.Expr
		switch {
		case sideMarked(c.L, marks):
			other = c.R
		case sideMarked(c.R, marks):
			other = c.L
		default:
			continue
		}
		if b, okC := other.ConstVal(); okC {
			switch {
			case o.dstCap == 0:
				v.sanitized = true
				v.evidence = append(v.evidence, fmt.Sprintf(
					"magnitude check against %d at %#x (capacity unknown)", b, c.Addr))
				return v
			case nul && b == o.dstCap:
				v.class = ClassOffByOne
				v.evidence = append(v.evidence, fmt.Sprintf(
					"guard at %#x admits length == capacity %d: `<=` check is off by one",
					c.Addr, o.dstCap))
				return v
			case (nul && b < o.dstCap) || (!nul && b <= o.dstCap):
				v.sanitized = true
				v.evidence = append(v.evidence, fmt.Sprintf(
					"constant bound %d at %#x fits capacity %d", b, c.Addr, o.dstCap))
				return v
			}
			continue
		}
		v.sanitized = true
		v.evidence = append(v.evidence, fmt.Sprintf(
			"symbolic bound %s at %#x", other, c.Addr))
		return v
	}
	v.evidence = append(v.evidence, "no sanitizing bound on the tainted data")
	return v
}

// checkTruncation decides a narrowing-store observation: the store is
// safe only when the stored length provably fits one byte. The ablation
// cannot judge narrowing stores and marks them all sanitized, restoring
// the pre-interval vulnerable set.
func (t *Tracker) checkTruncation(o sinkObs, sum *symexec.Summary) verdict {
	v := verdict{class: ClassLengthTruncation}
	if t.noVRange {
		v.sanitized = true
		return v
	}
	env := t.obsEnv(o, sum)
	// A structurally masked store (AND 0x7F before STRB) bounds the
	// whole stored value regardless of the length's own range.
	if iv := vrange.OfExpr(o.taint, env); iv.Bounded() && iv.Lo >= 0 && iv.Hi <= 0xFF {
		v.sanitized = true
		v.evidence = append(v.evidence, fmt.Sprintf(
			"stored value in %s fits the 1-byte store", iv))
		return v
	}
	// Otherwise bound the length symbols themselves (the OR-combined
	// taint bookkeeping hides the value from the structural walk).
	lens := lenComponents(o.taint)
	if len(lens) > 0 {
		var hi int64
		for _, c := range lens {
			civ := vrange.OfExpr(c, env)
			if !civ.Bounded() || civ.Hi > 0xFF {
				v.evidence = append(v.evidence, fmt.Sprintf(
					"tainted length %s has range %s: truncated by the 1-byte store", c, civ))
				return v
			}
			if civ.Hi > hi {
				hi = civ.Hi
			}
		}
		v.sanitized = true
		v.evidence = append(v.evidence, fmt.Sprintf(
			"stored length <= %d fits the 1-byte store", hi))
		return v
	}
	v.evidence = append(v.evidence, "tainted length narrowed with no proven bound")
	return v
}

// obsEnv assembles the interval environment for one observation: the
// function's proven ranges, met with bounds re-derived from the
// constraints a pending sink carried up from callees (the carried
// expressions were already substituted into this function's namespace,
// so formal-argument bounds arrive here expressed over the actuals).
func (t *Tracker) obsEnv(o sinkObs, sum *symexec.Summary) vrange.Env {
	if len(o.carried) == 0 {
		return vrange.Env(sum.Ranges)
	}
	carried := symexec.DeriveRanges(o.carried, nil)
	if len(carried) == 0 {
		return vrange.Env(sum.Ranges)
	}
	env := make(vrange.Env, len(sum.Ranges)+len(carried))
	for k, iv := range sum.Ranges {
		env[k] = iv
	}
	for k, iv := range carried {
		if old, ok := env[k]; ok {
			iv = old.Meet(iv)
		}
		env[k] = iv
	}
	return env
}

// contentLenBound returns the proven upper bound of strlen(content) for
// a NUL-terminating copy: every OR-combined alternative of the content
// must have a bounded length symbol, and the weakest bound wins.
func contentLenBound(guard *expr.Expr, env vrange.Env) (int64, bool) {
	comps := orComps(guard)
	if len(comps) == 0 {
		return 0, false
	}
	best := int64(-1)
	for _, c := range comps {
		iv := vrange.OfExpr(expr.Sym(LenSymName(c.Key())), env)
		if !iv.Bounded() {
			return 0, false
		}
		if iv.Hi > best {
			best = iv.Hi
		}
	}
	return best, true
}

// nulSink reports whether the sink's copy writes strlen(content)+1
// bytes (the vocabulary entry's nul flag): a proven bound equal to the
// capacity still overflows by the NUL terminator, so these take the
// strict `<` comparison. Explicit-length sinks write at most their
// length argument and keep `<=`.
func (t *Tracker) nulSink(sink string) bool {
	m, ok := t.vocab.models[sink]
	return ok && m.nul
}

// orComps splits an OR-combined expression into components.
func orComps(e *expr.Expr) []*expr.Expr {
	if e == nil {
		return nil
	}
	if op, x, y, ok := e.BinOperands(); ok && op == expr.OpOr {
		return append(orComps(x), orComps(y)...)
	}
	return []*expr.Expr{e}
}

// lenComponents returns the strlen-result symbols among e's OR
// components.
func lenComponents(e *expr.Expr) []*expr.Expr {
	var out []*expr.Expr
	for _, c := range orComps(e) {
		if name, ok := c.SymName(); ok && strings.HasPrefix(name, "len_") {
			out = append(out, c)
		}
	}
	return out
}

// mentionsLenSym reports whether e mentions a strlen-result symbol.
func mentionsLenSym(e *expr.Expr) bool {
	for _, s := range e.Syms() {
		if strings.HasPrefix(s, "len_") {
			return true
		}
	}
	return false
}

// guardMarks collects the symbol/key marks a sanitizing constraint must
// touch to count for this observation.
func guardMarks(o sinkObs) map[string]bool {
	marks := map[string]bool{o.guard.Key(): true}
	marks[LenSymName(o.guard.Key())] = true
	for _, s := range o.guard.TaintSyms() {
		marks[s] = true
	}
	for _, s := range o.taint.TaintSyms() {
		marks[s] = true
	}
	return marks
}

// legacyOverflowGuarded is the pre-interval buffer-overflow check, kept
// verbatim for the `-ablate vrange` mode: a path is sanitized when some
// magnitude comparison (n < 64, n < y) constrains the tainted
// length/content — EQ/NE checks (NUL scans) do not bound a copy size.
// Note the `<=` comparisons against the capacity: the ablation
// deliberately retains the off-by-one acceptance the interval domain
// fixes.
func legacyOverflowGuarded(o sinkObs, cs []symexec.Constraint) bool {
	if o.guard == nil {
		return false
	}
	// An intrinsic copy bound (scanf conversion width) decides directly:
	// it sanitizes iff it fits the destination buffer.
	if o.boundHint > 0 && o.dstCap > 0 {
		return o.boundHint <= o.dstCap
	}
	// A structurally bounded copy length (masked or shifted) that fits
	// the destination cannot overflow it, tainted or not.
	if o.dstCap > 0 {
		if b, ok := vrange.MaxValue(o.guard); ok && b <= o.dstCap {
			return true
		}
	}
	marks := guardMarks(o)
	if o.sink == LoopSink {
		return loopGuarded(cs)
	}
	for _, c := range cs {
		if !isMagnitude(c.Cond) {
			continue
		}
		var other *expr.Expr
		switch {
		case sideMarked(c.L, marks):
			other = c.R
		case sideMarked(c.R, marks):
			other = c.L
		default:
			continue
		}
		// A constant bound sanitizes only when it fits the destination
		// buffer (a `n < 0x200` check before copying into 64 bytes does
		// not help); symbolic bounds are accepted as the paper does
		// ("n < 64 or n < y, y is a symbolic value").
		if b, okC := other.ConstVal(); okC {
			if o.dstCap == 0 || b <= o.dstCap {
				return true
			}
			continue
		}
		return true
	}
	return false
}

func sideMarked(e *expr.Expr, marks map[string]bool) bool {
	if e == nil {
		return false
	}
	if marks[e.Key()] {
		return true
	}
	for _, s := range e.Syms() {
		if marks[s] {
			return true
		}
	}
	return false
}

func isMagnitude(c isa.Cond) bool {
	switch c {
	case isa.CondLT, isa.CondLE, isa.CondGT, isa.CondGE:
		return true
	}
	return false
}

// loopGuarded: a loop copy is sanitized when the loop's trip count is
// bounded by a small constant (a fixed-size copy); large or symbolic
// bounds over tainted data are not sanitizing.
const maxSafeLoopBound = 256

func loopGuarded(cs []symexec.Constraint) bool {
	for _, c := range cs {
		if !c.InLoop || !isMagnitude(c.Cond) {
			continue
		}
		vL, okL := c.L.ConstVal()
		vR, okR := c.R.ConstVal()
		switch {
		case okL && okR:
			// Loop-once concretizes induction variables, so the trip-count
			// comparison appears as const-vs-const; the larger value is
			// the loop bound.
			bound := vL
			if vR > bound {
				bound = vR
			}
			if bound > 0 && bound < maxSafeLoopBound {
				return true
			}
		case okR && vR > 0 && vR < maxSafeLoopBound && !c.L.ContainsTaint():
			return true
		case okL && vL > 0 && vL < maxSafeLoopBound && !c.R.ContainsTaint():
			return true
		}
	}
	return false
}

// separatorGuarded: a separator-sink path (command injection, path
// traversal) is sanitized when some byte of the tainted data is compared
// against the sink's separator byte (EQ/NE), or a strchr-style scan was
// recorded.
func separatorGuarded(o sinkObs, cs []symexec.Constraint, gb byte) bool {
	taintMarks := make(map[string]bool)
	for _, s := range o.taint.TaintSyms() {
		taintMarks[s] = true
	}
	var roots []string
	if o.guard != nil {
		if r := o.guard.RootPointer(); r != nil {
			if name, ok := r.SymName(); ok {
				roots = append(roots, name)
			}
		}
	}
	for _, c := range cs {
		if c.Cond != isa.CondEQ && c.Cond != isa.CondNE {
			continue
		}
		var deref, other *expr.Expr
		if v, ok := c.R.ConstVal(); ok && v == int64(gb) {
			deref, other = c.L, c.R
		} else if v, ok := c.L.ConstVal(); ok && v == int64(gb) {
			deref, other = c.R, c.L
		}
		_ = other
		if deref == nil {
			continue
		}
		if sideMarked(deref, taintMarks) {
			return true
		}
		if root := deref.RootPointer(); root != nil {
			if name, ok := root.SymName(); ok {
				for _, r := range roots {
					if r == name {
						return true
					}
				}
			}
		}
	}
	return false
}

package taint

import (
	"strings"
	"testing"

	"dtaint/internal/expr"
	"dtaint/internal/isa"
	"dtaint/internal/symexec"
)

func TestTableIVocabulary(t *testing.T) {
	// The exact Table I sets open the census, in paper order; the
	// vocabulary extensions (NVRAM getters, printf family, file ops)
	// follow, and the structural loop sink closes the sink list.
	wantSources := []string{
		"read", "recv", "recvfrom", "recvmsg", "getenv", "fgets", "websGetVar", "find_var",
		"nvram_get", "nvram_safe_get", "acosNvramConfig_get",
	}
	wantSinks := []string{
		"strcpy", "strncpy", "sprintf", "memcpy", "strcat", "sscanf", "system", "popen",
		"printf", "fprintf", "syslog", "open", "fopen", "unlink",
		"loop",
	}
	if len(Sources) != len(wantSources) {
		t.Fatalf("sources = %v", Sources)
	}
	for i, s := range wantSources {
		if Sources[i] != s {
			t.Fatalf("source %d = %s, want %s", i, Sources[i], s)
		}
	}
	if len(Sinks) != len(wantSinks) {
		t.Fatalf("sinks = %v", Sinks)
	}
	for i, s := range wantSinks {
		if Sinks[i] != s {
			t.Fatalf("sink %d = %s, want %s", i, Sinks[i], s)
		}
	}
}

func TestPrototypesCoverVocabulary(t *testing.T) {
	protos := Prototypes()
	for _, s := range Sources {
		if _, ok := protos[s]; !ok {
			t.Errorf("no prototype for source %s", s)
		}
	}
	for _, s := range Sinks {
		if s == "loop" {
			continue
		}
		if _, ok := protos[s]; !ok {
			t.Errorf("no prototype for sink %s", s)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if ClassBufferOverflow.String() != "buffer-overflow" ||
		ClassCommandInjection.String() != "command-injection" {
		t.Fatal("class strings changed")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{
		Class: ClassCommandInjection, Sink: "system", SinkFunc: "h", SinkAddr: 0x10,
		Source: "getenv",
		Path:   []Step{{Func: "h", Addr: 0x10, Note: "system"}},
	}
	s := f.String()
	for _, want := range []string{"VULNERABLE", "getenv", "system", "command-injection"} {
		if !strings.Contains(s, want) {
			t.Errorf("finding string %q missing %q", s, want)
		}
	}
	f.Sanitized = true
	if !strings.Contains(f.String(), "sanitized") {
		t.Error("sanitized not rendered")
	}
}

func TestOverflowGuardRules(t *testing.T) {
	taintE := expr.Sym(expr.TaintName("recv", 0x100))
	obs := sinkObs{class: ClassBufferOverflow, sink: "memcpy", addr: 1, taint: taintE, guard: taintE}

	// No constraints: unsanitized.
	if legacyOverflowGuarded(obs, nil) {
		t.Fatal("no constraints but guarded")
	}
	// EQ/NE checks (NUL scans) do not bound a copy.
	eq := []symexec.Constraint{{L: taintE, R: expr.Const(0), Cond: isa.CondEQ}}
	if legacyOverflowGuarded(obs, eq) {
		t.Fatal("EQ check treated as bound")
	}
	// A magnitude comparison on the tainted value sanitizes.
	lt := []symexec.Constraint{{L: taintE, R: expr.Const(64), Cond: isa.CondLT}}
	if !legacyOverflowGuarded(obs, lt) {
		t.Fatal("LT bound not recognized")
	}
	// A comparison of the length symbol also sanitizes.
	lenC := []symexec.Constraint{{L: expr.Sym(LenSymName(taintE.Key())), R: expr.Const(64), Cond: isa.CondGE}}
	if !legacyOverflowGuarded(obs, lenC) {
		t.Fatal("strlen bound not recognized")
	}
	// Constraints on unrelated values do not sanitize.
	other := []symexec.Constraint{{L: expr.Sym("other"), R: expr.Const(64), Cond: isa.CondLT}}
	if legacyOverflowGuarded(obs, other) {
		t.Fatal("unrelated constraint treated as guard")
	}
}

// TestOffByOneBoundaryGuard is the regression test for the `<=` blunder
// the interval domain fixes: a guard admitting length == capacity on a
// NUL-terminating copy (`if (n > 152) reject` before strcpy into a
// 152-byte buffer) still overflows by the terminator byte. The default
// checks classify it off-by-one and unsanitized; one byte of slack
// (n < 152) sanitizes; the legacy ablation check deliberately keeps the
// old `<=` acceptance.
func TestOffByOneBoundaryGuard(t *testing.T) {
	tr := NewTracker()
	tr.BeginFunction("handler")
	taintE := expr.Sym(expr.TaintName("recv", 0x100))
	obs := sinkObs{class: ClassBufferOverflow, sink: "strcpy", addr: 1,
		taint: taintE, guard: taintE, dstCap: 152}

	le := &symexec.Summary{Func: "handler", Constraints: []symexec.Constraint{
		{L: taintE, R: expr.Const(152), Cond: isa.CondLE, Addr: 0x40},
	}}
	v := tr.checkObs(obs, le)
	if v.sanitized || v.class != ClassOffByOne {
		t.Fatalf("n <= 152 into cap 152: got sanitized=%v class=%v, want off-by-one finding", v.sanitized, v.class)
	}
	if len(v.evidence) == 0 {
		t.Fatal("off-by-one verdict carries no evidence")
	}

	lt := &symexec.Summary{Func: "handler", Constraints: []symexec.Constraint{
		{L: taintE, R: expr.Const(151), Cond: isa.CondLE, Addr: 0x40},
	}}
	if v := tr.checkObs(obs, lt); !v.sanitized {
		t.Fatalf("n <= 151 into cap 152 must sanitize, got %+v", v)
	}

	// Explicit-length sinks (memcpy) legitimately fill the whole buffer.
	memObs := obs
	memObs.sink = "memcpy"
	if v := tr.checkObs(memObs, le); !v.sanitized {
		t.Fatalf("memcpy of <= 152 into cap 152 must sanitize, got %+v", v)
	}

	// The ablation keeps the historical acceptance.
	if !legacyOverflowGuarded(obs, le.Constraints) {
		t.Fatal("legacy check must keep the <= acceptance under -ablate vrange")
	}
}

func TestCommandGuardRules(t *testing.T) {
	ts := expr.Sym(expr.TaintName("getenv", 0x20))
	obs := sinkObs{class: ClassCommandInjection, sink: "system", addr: 1, taint: ts, guard: expr.Sym("cmdptr")}

	if separatorGuarded(obs, nil, SemicolonByte) {
		t.Fatal("unchecked command guarded")
	}
	// EQ against ';' over the tainted data sanitizes.
	semi := []symexec.Constraint{{L: ts, R: expr.Const(SemicolonByte), Cond: isa.CondEQ}}
	if !separatorGuarded(obs, semi, SemicolonByte) {
		t.Fatal("';' EQ check not recognized")
	}
	// Reversed operand order too.
	semiRev := []symexec.Constraint{{L: expr.Const(SemicolonByte), R: ts, Cond: isa.CondNE}}
	if !separatorGuarded(obs, semiRev, SemicolonByte) {
		t.Fatal("reversed ';' check not recognized")
	}
	// A magnitude comparison against ';' does not count.
	mag := []symexec.Constraint{{L: ts, R: expr.Const(SemicolonByte), Cond: isa.CondLT}}
	if separatorGuarded(obs, mag, SemicolonByte) {
		t.Fatal("magnitude ';' comparison treated as guard")
	}
	// A ';' check never sanitizes a path-traversal sink: the guard is
	// keyed on the sink's own separator byte.
	if separatorGuarded(obs, semi, DotByte) {
		t.Fatal("';' check accepted for a '.'-guarded sink")
	}
	// Deref rooted at the command pointer counts.
	cmdPtr := expr.Sym("cmdptr")
	obs2 := sinkObs{class: ClassCommandInjection, sink: "system", addr: 1, taint: ts, guard: cmdPtr}
	byByte := []symexec.Constraint{{
		L: expr.Deref(expr.Add(cmdPtr, 3)), R: expr.Const(SemicolonByte), Cond: isa.CondNE,
	}}
	if !separatorGuarded(obs2, byByte, SemicolonByte) {
		t.Fatal("byte-scan over cmd pointer not recognized")
	}
}

func TestLoopGuardRules(t *testing.T) {
	mk := func(l, r *expr.Expr, cond isa.Cond, inLoop bool) symexec.Constraint {
		return symexec.Constraint{L: l, R: r, Cond: cond, InLoop: inLoop}
	}
	// Small const-const bound (loop-once concretized induction): guarded.
	if !loopGuarded([]symexec.Constraint{mk(expr.Const(1), expr.Const(16), isa.CondLT, true)}) {
		t.Fatal("small fixed loop not guarded")
	}
	// Large bound: unguarded.
	if loopGuarded([]symexec.Constraint{mk(expr.Const(1), expr.Const(2048), isa.CondLT, true)}) {
		t.Fatal("2048-byte loop treated as safe")
	}
	// Tainted symbolic bound: unguarded.
	ts := expr.Sym(expr.TaintName("read", 1))
	if loopGuarded([]symexec.Constraint{mk(ts, expr.Const(16), isa.CondLT, true)}) {
		t.Fatal("tainted bound treated as safe")
	}
	// Symbolic untainted vs small const: guarded.
	if !loopGuarded([]symexec.Constraint{mk(expr.Sym("i"), expr.Const(32), isa.CondLT, true)}) {
		t.Fatal("symbolic small bound not guarded")
	}
	// Out-of-loop constraints are ignored.
	if loopGuarded([]symexec.Constraint{mk(expr.Const(1), expr.Const(16), isa.CondLT, false)}) {
		t.Fatal("out-of-loop constraint counted")
	}
}

func TestIsArgRooted(t *testing.T) {
	if !isArgRooted(expr.Deref(expr.Add(expr.Arg(2), 8))) {
		t.Fatal("arg deref not detected")
	}
	if isArgRooted(expr.Deref(expr.Sym("heap_x"))) {
		t.Fatal("heap deref wrongly arg-rooted")
	}
}

func TestPrimarySource(t *testing.T) {
	e := expr.Bin(expr.OpOr,
		expr.Sym(expr.TaintName("recv", 0x200)),
		expr.Sym(expr.TaintName("getenv", 0x100)))
	src, site := primarySource(e)
	// Lexicographically smallest taint symbol wins: getenv < recv.
	if src != "getenv" || site != 0x100 {
		t.Fatalf("source = %s@%#x", src, site)
	}
	if src, _ := primarySource(expr.Const(1)); src != "" {
		t.Fatal("untainted expr has a source")
	}
}

func TestPendingDepthBound(t *testing.T) {
	tr := NewTracker()
	tr.BeginFunction("f")
	deep := PendingSink{
		Class: ClassBufferOverflow, Sink: "strcpy", SinkAddr: 1,
		TaintExpr: expr.Deref(expr.Arg(0)), Depth: MaxPendingDepth,
	}
	tr.ImportPending([]PendingSink{deep}, func(e *expr.Expr) *expr.Expr { return e }, 0x10)
	sum := &symexec.Summary{Func: "f", Types: map[string]expr.Type{}}
	tr.EndFunction(sum)
	if len(tr.Pendings("f")) != 0 || len(tr.Findings()) != 0 {
		t.Fatal("over-deep pending not dropped")
	}
}

func TestObservationDedup(t *testing.T) {
	tr := NewTracker()
	tr.BeginFunction("f")
	ts := expr.Sym(expr.TaintName("recv", 9))
	o := sinkObs{class: ClassBufferOverflow, sink: "strcpy", addr: 5, taint: ts, guard: ts}
	tr.observe(o)
	tr.observe(o)
	sum := &symexec.Summary{Func: "f", Types: map[string]expr.Type{}}
	tr.EndFunction(sum)
	if len(tr.Findings()) != 1 {
		t.Fatalf("findings = %d, want 1 (dedup)", len(tr.Findings()))
	}
}

func TestLenSymStability(t *testing.T) {
	a := LenSymName("deref(arg0)")
	b := LenSymName("deref(arg0)")
	if a != b {
		t.Fatal("len symbol not deterministic")
	}
	if a == LenSymName("deref(arg1)") {
		t.Fatal("len symbols collide")
	}
}

func TestVulnKeyStable(t *testing.T) {
	// Zero-padded address: the field boundaries stay unambiguous and the
	// public/internal report layers produce byte-identical keys.
	got := VulnKey("f", "strcpy", 0x38, "buffer-overflow")
	if got != "f|strcpy|00000038|buffer-overflow" {
		t.Fatalf("VulnKey = %q", got)
	}
	if VulnKey("f", "strcpy", 0x38, "x") == VulnKey("f", "strcpy", 0x1238, "x") {
		t.Fatal("distinct addresses collide")
	}
}

func TestTrackerShard(t *testing.T) {
	tr := NewTracker()
	tr.AddSource(SourceSpec{Name: "nvram_get", BufArg: -1, ViaReturn: true})
	tr.AddSink(SinkSpec{Name: "flash_write", Class: ClassBufferOverflow, DataArg: 0, LenArg: 1})
	tr.BeginFunction("f")
	ts := expr.Sym(expr.TaintName("recv", 9))
	tr.observe(sinkObs{class: ClassBufferOverflow, sink: "strcpy", addr: 5, taint: ts, guard: ts})
	tr.EndFunction(&symexec.Summary{Func: "f", Types: map[string]expr.Type{}})

	s := tr.Shard()
	// Configuration is shared...
	if len(s.extraSources) != 1 || len(s.extraSinks) != 1 {
		t.Fatal("shard lost the custom vocabulary")
	}
	// ...but finding/pending state is not.
	if len(s.Findings()) != 0 || len(s.Pendings("f")) != 0 {
		t.Fatal("shard inherited finding state")
	}
	s.BeginFunction("g")
	s.observe(sinkObs{class: ClassBufferOverflow, sink: "strcpy", addr: 7, taint: ts, guard: ts})
	s.EndFunction(&symexec.Summary{Func: "g", Types: map[string]expr.Type{}})
	if len(tr.Findings()) != 1 {
		t.Fatalf("shard findings leaked into parent: %d", len(tr.Findings()))
	}
	if len(s.Findings()) != 1 {
		t.Fatalf("shard findings = %d, want 1", len(s.Findings()))
	}
}

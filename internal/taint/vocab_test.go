package taint

import (
	"testing"

	"dtaint/internal/expr"
)

func TestReadsGlobal(t *testing.T) {
	tests := []struct {
		name string
		e    *expr.Expr
		want bool
	}{
		{"plain global", expr.Deref(expr.Const(0x20000)), true},
		{"global field", expr.Deref(expr.Add(expr.Const(0x20000), 8)), true},
		{"nested global", expr.Deref(expr.Deref(expr.Const(0x20000))), true},
		{"or-combined", expr.Bin(expr.OpOr, expr.Sym("x"), expr.Deref(expr.Const(4))), true},
		{"arg deref", expr.Deref(expr.Arg(0)), false},
		{"plain const", expr.Const(0x20000), false},
		{"symbol", expr.Sym("arg0"), false},
		{"nil", nil, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := readsGlobal(tt.e); got != tt.want {
				t.Fatalf("readsGlobal(%s) = %v, want %v", tt.e, got, tt.want)
			}
		})
	}
}

func TestGuardRootsFlattensOr(t *testing.T) {
	a := expr.Deref(expr.Sym("p"))
	b := expr.Deref(expr.Deref(expr.Sym("p")))
	ts := expr.Sym(expr.TaintName("getenv", 1))
	combined := expr.Bin(expr.OpOr, expr.Bin(expr.OpOr, a, b), ts)
	roots := guardRoots(combined)
	want := map[string]bool{a.Key(): false, b.Key(): false, ts.Key(): false}
	for _, r := range roots {
		if _, ok := want[r]; ok {
			want[r] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("guardRoots missing component %s (got %v)", k, roots)
		}
	}
}

func TestAddSourceAndSinkRegistration(t *testing.T) {
	tr := NewTracker()
	tr.AddSource(SourceSpec{Name: "nvram_get", BufArg: -1, ViaReturn: true})
	tr.AddSink(SinkSpec{Name: "flash_write", Class: ClassBufferOverflow, DataArg: 1, LenArg: 2})
	if _, ok := tr.extraSources["nvram_get"]; !ok {
		t.Fatal("source not registered")
	}
	if s, ok := tr.extraSinks["flash_write"]; !ok || s.LenArg != 2 {
		t.Fatal("sink not registered")
	}
	// Re-registration overwrites.
	tr.AddSink(SinkSpec{Name: "flash_write", Class: ClassCommandInjection, DataArg: 0, LenArg: -1})
	if tr.extraSinks["flash_write"].Class != ClassCommandInjection {
		t.Fatal("sink not overwritten")
	}
}

package sse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dtaint/internal/expr"
)

func qc(t *testing.T, name string, f interface{}) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Fatal(err)
		}
	})
}

// pathSpec is a random access path: a root symbol and up to four deref
// steps with small offsets. It drives the canonicalization laws.
type pathSpec struct {
	Root  uint8
	Steps []int8
	Off   int8
}

var specRoots = []string{"arg0", "arg1", "sp", "heap_x", "g"}

func (pathSpec) Generate(r *rand.Rand, _ int) reflect.Value {
	s := pathSpec{
		Root: uint8(r.Intn(len(specRoots))),
		Off:  int8(r.Intn(32) - 8),
	}
	for n := r.Intn(4); n > 0; n-- {
		s.Steps = append(s.Steps, int8(r.Intn(32)-8))
	}
	return reflect.ValueOf(s)
}

// build constructs the spec's expression in the canonical spelling.
func (s pathSpec) build() *expr.Expr {
	e := expr.Sym(specRoots[s.Root%uint8(len(specRoots))])
	for _, st := range s.Steps {
		e = expr.Deref(expr.Add(e, int64(st)))
	}
	return expr.Add(e, int64(s.Off))
}

// buildScrambled constructs the same value with commuted additions and
// subtractive offset spellings: base+off written as off+base, or as
// base-(-off).
func (s pathSpec) buildScrambled(flip uint8) *expr.Expr {
	e := expr.Sym(specRoots[s.Root%uint8(len(specRoots))])
	mix := func(base *expr.Expr, off int64, bit uint8) *expr.Expr {
		switch bit % 3 {
		case 1:
			return expr.Bin(expr.OpAdd, expr.Const(off), base)
		case 2:
			return expr.Bin(expr.OpSub, base, expr.Const(-off))
		}
		return expr.Add(base, off)
	}
	for i, st := range s.Steps {
		e = expr.Deref(mix(e, int64(st), flip>>(uint(i)%6)))
	}
	return mix(e, int64(s.Off), flip>>6)
}

func TestCanonicalizationLaws(t *testing.T) {
	qc(t, "idempotent", func(s pathSpec) bool {
		in := NewInterner()
		p, ok := in.Intern(s.build())
		if !ok {
			return false
		}
		q, ok := in.Intern(p.Expr())
		return ok && p == q
	})
	qc(t, "canonical-equal is pointer-identical", func(s pathSpec) bool {
		in := NewInterner()
		p, ok1 := in.Intern(s.build())
		q, ok2 := in.Intern(s.build())
		return ok1 && ok2 && p.Node == q.Node && p.Off == q.Off
	})
	qc(t, "commutative offsets normalize identically", func(s pathSpec, flip uint8) bool {
		in := NewInterner()
		p, ok1 := in.Intern(s.build())
		q, ok2 := in.Intern(s.buildScrambled(flip))
		return ok1 && ok2 && p == q
	})
	qc(t, "alias is reflexive", func(s pathSpec) bool {
		in := NewInterner()
		p, ok := in.Intern(s.build())
		return ok && in.Alias(p, p)
	})
}

// groupModel drives the union-find law: roots are assigned hidden
// integer values and partitioned into groups; facts assert consistent
// value differences inside each group. Alias must then agree exactly
// with the model.
type groupModel struct {
	Group [5]uint8
	Val   [5]int8
}

func (groupModel) Generate(r *rand.Rand, _ int) reflect.Value {
	var m groupModel
	for i := range m.Group {
		m.Group[i] = uint8(r.Intn(3))
		m.Val[i] = int8(r.Intn(64) - 32)
	}
	return reflect.ValueOf(m)
}

func TestUnionFindMatchesModel(t *testing.T) {
	qc(t, "alias agrees with hidden-value model", func(m groupModel, qa, qb uint8, oa, ob int8) bool {
		in := NewInterner()
		nodes := make([]*Node, len(m.Group))
		for i := range nodes {
			nodes[i] = in.Root(specRoots[i])
		}
		// Assert value(i) = value(j) + (Val[i]-Val[j]) for group peers.
		for i := 1; i < len(nodes); i++ {
			for j := 0; j < i; j++ {
				if m.Group[i] == m.Group[j] {
					if !in.Union(nodes[i], 0, nodes[j], int64(m.Val[i]-m.Val[j])) {
						return false
					}
				}
			}
		}
		a, b := int(qa)%len(nodes), int(qb)%len(nodes)
		p := Path{Node: nodes[a], Off: int64(oa)}
		q := Path{Node: nodes[b], Off: int64(ob)}
		want := m.Group[a] == m.Group[b] &&
			int64(m.Val[a])+int64(oa) == int64(m.Val[b])+int64(ob)
		return in.Alias(p, q) == want
	})
}

func TestWeightedUnion(t *testing.T) {
	in := NewInterner()
	a, b := in.Root("a"), in.Root("b")
	// value(a) = value(b) + 8.
	if !in.Union(a, 0, b, 8) {
		t.Fatal("union rejected")
	}
	if !in.Alias(Path{a, 0}, Path{b, 8}) {
		t.Fatal("displacement lost")
	}
	if in.Alias(Path{a, 0}, Path{b, 0}) {
		t.Fatal("aliased distinct offsets")
	}
	// A contradictory re-assertion is rejected and counted.
	if in.Union(a, 0, b, 4) {
		t.Fatal("contradiction accepted")
	}
	if in.Stats().Conflicts != 1 {
		t.Fatalf("conflicts = %d", in.Stats().Conflicts)
	}
}

func TestCongruenceClosure(t *testing.T) {
	in := NewInterner()
	a, b := in.Root("a"), in.Root("b")
	ca := in.Child(a, 4)
	in.Union(a, 0, b, 0)
	cb := in.Child(b, 4)
	if !in.SameClass(ca, cb) {
		t.Fatal("congruent children not unioned")
	}
	// With a displacement: value(x) = value(y) + 8, so the address x+k
	// is the address y+(k+8).
	x, y := in.Root("x"), in.Root("y")
	cx := in.Child(x, 0)
	cy := in.Child(y, 8)
	in.Union(x, 0, y, 8)
	if !in.SameClass(cx, cy) {
		t.Fatal("displaced congruent children not unioned")
	}
	if in.SameClass(in.Child(x, 4), cx) {
		t.Fatal("distinct displacements merged")
	}
}

func TestCongruenceAtInternTime(t *testing.T) {
	// The union exists before the second spelling is interned: the new
	// child must land in the existing class at creation time.
	in := NewInterner()
	arg0, arg1 := in.Root("arg0"), in.Root("arg1")
	in.Union(in.Child(arg0, 8), 0, arg1, 0) // deref(arg0+8) = arg1
	p, ok := in.Intern(expr.Deref(expr.Add(expr.Sym("arg1"), 4)))
	if !ok {
		t.Fatal("intern failed")
	}
	q, ok := in.Intern(expr.Deref(expr.Add(expr.Deref(expr.Add(expr.Sym("arg0"), 8)), 4)))
	if !ok {
		t.Fatal("intern failed")
	}
	if !in.Alias(p, q) {
		t.Fatal("nested spellings of one address do not alias")
	}
}

func TestInternRejectsNonPaths(t *testing.T) {
	in := NewInterner()
	if _, ok := in.Intern(nil); ok {
		t.Fatal("nil interned")
	}
	if _, ok := in.Intern(expr.Const(7)); ok {
		t.Fatal("constant interned")
	}
	mul := expr.Bin(expr.OpMul, expr.Sym("a"), expr.Sym("b"))
	if _, ok := in.Intern(mul); ok {
		t.Fatal("non-additive form interned")
	}
}

func TestPathExprsExpandsThroughClasses(t *testing.T) {
	// The register/dispatch shape: deref(arg0+8) = arg1 registered, then
	// the path deref(arg1+4) must also spell as deref(deref(arg0+8)+4).
	in := NewInterner()
	arg0 := in.Root("arg0")
	arg1 := in.Root("arg1")
	in.Union(in.Child(arg0, 8), 0, arg1, 0)
	c := in.Child(arg1, 4)
	forms := in.PathExprs(Path{Node: c, Off: 0}, 2, 16)
	want := expr.Deref(expr.Add(expr.Deref(expr.Add(expr.Sym("arg0"), 8)), 4))
	found := false
	for _, f := range forms {
		if f.Equal(want) {
			found = true
		}
	}
	if !found {
		keys := make([]string, len(forms))
		for i, f := range forms {
			keys[i] = f.String()
		}
		t.Fatalf("chained spelling missing; forms = %v", keys)
	}
	if len(forms) == 0 || !forms[0].Equal(c.Expr()) {
		t.Fatalf("first form is not the canonical spelling: %v", forms)
	}
}

func TestPathExprsBudget(t *testing.T) {
	in := NewInterner()
	base := in.Root("p")
	for i := 0; i < 20; i++ {
		in.Union(in.Child(in.Root(specRoots[i%len(specRoots)]), int64(i)*4), 0, base, 0)
	}
	if got := len(in.PathExprs(Path{Node: base}, 2, 5)); got > 5 {
		t.Fatalf("budget overrun: %d forms", got)
	}
}

func TestStats(t *testing.T) {
	in := NewInterner()
	in.Root("a")
	in.Root("a")
	in.Child(in.Root("a"), 4)
	st := in.Stats()
	if st.Nodes != 2 {
		t.Fatalf("nodes = %d", st.Nodes)
	}
	if st.Misses != 2 || st.Hits != 2 {
		t.Fatalf("hits/misses = %d/%d", st.Hits, st.Misses)
	}
	if hr := st.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v", hr)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hit rate not zero")
	}
}

package sse

import (
	"sort"

	"dtaint/internal/expr"
)

// The union-find tracks value equalities between access paths with
// offset potentials: every node carries delta such that
//
//	value(n) = value(n.uf) + n.delta
//
// so a class stores not just "these paths alias" but the exact constant
// displacement between any two members. A stored-pointer definition
// deref(b1+o1) = b2+o2 (Algorithm 1's trigger pattern) becomes one
// Union call, and every later alias question is a find-root comparison.
//
// Unions maintain congruence closure over the dereference step: when
// two classes merge, children reading the same displacement off the
// merged value are unioned too, so deref(p+o) and deref(q+o) land in
// one class whenever p and q alias. New children are checked against
// the class child index at interning time for the same reason.

// Find returns n's class representative and n's displacement from it
// (value(n) = value(rep) + disp), compressing paths as it goes.
func (in *Interner) Find(n *Node) (rep *Node, disp int64) {
	if n.uf == n {
		return n, 0
	}
	r, d := in.Find(n.uf)
	n.uf = r
	n.delta += d
	return r, n.delta
}

// Union asserts value(a) + da == value(b) + db. It returns false when
// the two nodes are already in one class with a contradictory
// displacement; the assertion is then ignored and counted in Stats
// (over-approximate joins would silently merge distinct offsets).
func (in *Interner) Union(a *Node, da int64, b *Node, db int64) bool {
	ra, pa := in.Find(a)
	rb, pb := in.Find(b)
	// value(ra) = value(a) - pa, value(rb) = value(b) - pb, and the
	// assertion gives value(a) - value(b) = db - da.
	if ra == rb {
		if pa-pb != db-da {
			in.conflict++
			return false
		}
		return true
	}
	// Deterministic representative: the earlier-interned node wins, so
	// member order is a pure function of the interning sequence.
	if rb.id < ra.id {
		ra, rb = rb, ra
		pa, pb = pb, pa
		da, db = db, da
	}
	// value(rb) = value(b) - pb = value(a) + da - db - pb
	//           = value(ra) + pa + da - db - pb.
	shift := pa + da - db - pb
	rb.uf = ra
	rb.delta = shift
	in.members[ra] = append(in.members[ra], in.members[rb]...)
	delete(in.members, rb)
	in.unions++

	// Congruence: fold rb's child index into ra's, re-keyed by rb's new
	// displacement; children now reading the same address are unioned.
	// Collisions are collected first and resolved afterwards, in sorted
	// key order, so the merge cascade is deterministic.
	if kb := in.kids[rb]; len(kb) > 0 {
		ka := in.kids[ra]
		if ka == nil {
			ka = make(map[int64]*Node, len(kb))
			in.kids[ra] = ka
		}
		keys := make([]int64, 0, len(kb))
		for k := range kb {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		type collision struct{ x, y *Node }
		var merges []collision
		for _, k := range keys {
			c := kb[k]
			if prior, ok := ka[k+shift]; ok {
				merges = append(merges, collision{prior, c})
				continue
			}
			ka[k+shift] = c
		}
		delete(in.kids, rb)
		for _, m := range merges {
			in.Union(m.x, 0, m.y, 0)
		}
	}
	return true
}

// registerChild indexes a freshly interned child under its class-
// relative displacement and unions it with a congruent sibling when one
// already exists (two spellings of the same load address).
func (in *Interner) registerChild(n *Node) {
	rp, dp := in.Find(n.parent)
	key := n.off + dp
	km := in.kids[rp]
	if km == nil {
		if in.kids == nil {
			in.kids = make(map[*Node]map[int64]*Node)
		}
		km = make(map[int64]*Node, 1)
		in.kids[rp] = km
	}
	if sibling, ok := km[key]; ok {
		in.Union(sibling, 0, n, 0)
		return
	}
	km[key] = n
}

// SameClass reports whether a and b are in one equivalence class.
func (in *Interner) SameClass(a, b *Node) bool {
	ra, _ := in.Find(a)
	rb, _ := in.Find(b)
	return ra == rb
}

// Alias reports whether two paths denote the same value: same class and
// equal cumulative displacement. This is the O(1) replacement for
// Algorithm 1's pairwise rewriting.
func (in *Interner) Alias(p, q Path) bool {
	rp, dp := in.Find(p.Node)
	rq, dq := in.Find(q.Node)
	return rp == rq && dp+p.Off == dq+q.Off
}

// Members returns n's equivalence class in deterministic order: the
// representative's members list, which grows by interning order and
// union concatenation. The returned slice is owned by the interner.
func (in *Interner) Members(n *Node) []*Node {
	r, _ := in.Find(n)
	return in.members[r]
}

// ClassCount returns the number of equivalence classes with 2+ members.
func (in *Interner) ClassCount() int {
	c := 0
	for _, m := range in.members {
		if len(m) > 1 {
			c++
		}
	}
	return c
}

// maxNodeForms bounds the spellings generated per node during variant
// expansion, keeping pathological alias webs from exploding; overflow
// past the bound is truncated (PathExprs callers see at most max
// results anyway).
const maxNodeForms = 64

// PathExprs enumerates expression spellings of value(p.Node) + p.Off,
// rewriting through the alias classes of every node along the access
// path, up to depth class substitutions per chain and at most max
// results. The first result is always the canonical spelling itself;
// order is deterministic (member order along the chain).
func (in *Interner) PathExprs(p Path, depth, max int) []*expr.Expr {
	if max <= 0 {
		max = 1
	}
	// Spelling-level dedup: distinct spellings of one alias class must
	// all survive (that is the point of expansion), so the dedup key is
	// the expression text, not the interned node.
	//dtaintlint:ignore sse-key-identity deduping spellings, not alias identity
	seen := make(map[string]bool)
	var out []*expr.Expr
	for _, ne := range in.nodeExprs(p.Node, depth) {
		e := expr.Add(ne, p.Off)
		// Spellings are deduplicated as expressions, not as class members:
		// distinct spellings of one class intern to distinct nodes, so
		// pointer identity is the wrong dedup key here.
		if seen[e.Key()] { //dtaintlint:ignore sse-key-identity deduping expression spellings, not alias identity
			continue
		}
		seen[e.Key()] = true //dtaintlint:ignore sse-key-identity deduping expression spellings, not alias identity
		out = append(out, e)
		if len(out) >= max {
			break
		}
	}
	return out
}

// nodeExprs returns expression forms of value(n): each class member's
// spelling, with the member's own parent chain recursively expanded
// while depth remains. Cycles through self-referential classes are cut
// by the depth bound.
func (in *Interner) nodeExprs(n *Node, depth int) []*expr.Expr {
	if depth <= 0 {
		return []*expr.Expr{n.Expr()}
	}
	_, dn := in.Find(n)
	var out []*expr.Expr
	for _, m := range in.Members(n) {
		if len(out) >= maxNodeForms {
			break
		}
		_, dm := in.Find(m)
		// value(n) = value(m) + (dn - dm).
		shift := dn - dm
		if m.parent == nil {
			out = append(out, expr.Add(m.Expr(), shift))
			continue
		}
		for _, pe := range in.nodeExprs(m.parent, depth-1) {
			if len(out) >= maxNodeForms {
				break
			}
			out = append(out, expr.Add(expr.Deref(expr.Add(pe, m.off)), shift))
		}
	}
	return out
}

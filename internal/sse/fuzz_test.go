package sse

import (
	"testing"

	"dtaint/internal/expr"
)

// FuzzIntern drives the interner with a byte-coded instruction stream:
// each pair of bytes either extends one of two working expressions with
// a deref step or offset, swaps them, or asserts an alias fact between
// them. The invariants checked are the package contract: interning is
// stable (same expression, same pointer), Alias is reflexive and
// symmetric, and no input sequence panics.
func FuzzIntern(f *testing.F) {
	f.Add([]byte{0x01, 0x08, 0x02, 0x04, 0x03, 0x00})
	f.Add([]byte{0x00, 0x10, 0x01, 0x04, 0x04, 0x00, 0x03, 0x08})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, ops []byte) {
		in := NewInterner()
		a := expr.Sym("arg0")
		b := expr.Sym("arg1")
		for i := 0; i+1 < len(ops); i += 2 {
			arg := int64(int8(ops[i+1]))
			switch ops[i] % 5 {
			case 0: // a = deref(a + k)
				a = expr.Deref(expr.Add(a, arg))
			case 1: // b = deref(b + k)
				b = expr.Deref(expr.Add(b, arg))
			case 2: // swap
				a, b = b, a
			case 3: // fact: value(a) = value(b) + k
				pa, oka := in.Intern(a)
				pb, okb := in.Intern(b)
				if oka && okb {
					in.Union(pa.Node, pa.Off, pb.Node, pb.Off+arg)
				}
			case 4: // reset one side to a fresh root
				a = expr.Sym("sp")
			}
			if a.Depth() > 10 || b.Depth() > 10 {
				break
			}
		}
		pa, oka := in.Intern(a)
		if !oka {
			return
		}
		pa2, _ := in.Intern(a)
		if pa != pa2 {
			t.Fatalf("unstable interning: %+v vs %+v", pa, pa2)
		}
		if !in.Alias(pa, pa) {
			t.Fatal("alias not reflexive")
		}
		if pb, okb := in.Intern(b); okb {
			if in.Alias(pa, pb) != in.Alias(pb, pa) {
				t.Fatal("alias not symmetric")
			}
		}
		for _, fe := range in.PathExprs(pa, 2, 8) {
			if fe == nil {
				t.Fatal("nil spelling")
			}
		}
	})
}

// Package sse implements structured symbolic expressions: interned,
// canonicalized access paths over internal/expr, after the authors'
// follow-up work (EmTaint, arXiv 2109.12209) that replaces DTaint's
// pairwise Algorithm 1 with hash-consed expressions and equivalence
// classes.
//
// An access path is a root symbol followed by dereference steps with
// normalized constant offsets: deref(deref(arg0+0x58)+0xEC) is the node
// chain arg0 → child(0x58) → child(0xEC). Every node is hash-consed, so
// two canonically-equal access paths are represented by the *same* node
// pointer and "are these the same path?" is a pointer comparison. A
// union-find with offset potentials over the interned nodes then turns
// "do p and q alias?" into a find-root comparison plus an offset check —
// O(α(n)) per query instead of Algorithm 1's pairwise rewriting.
//
// Identity contract: within one Interner, canonical equality IS pointer
// equality. Code building on this package must compare nodes with ==,
// never through key strings (cmd/dtaintlint rule 5 enforces this).
package sse

import (
	"dtaint/internal/expr"
)

// Node is one interned access-path node. Roots carry a symbol name;
// children represent deref(parent + off). Nodes are created only by an
// Interner and are unique per (parent, off) / root name, so equality is
// pointer identity.
type Node struct {
	parent *Node  // nil for roots
	off    int64  // child step: this = deref(value(parent) + off)
	name   string // root symbol name (roots only)
	ex     *expr.Expr
	id     int // creation order, for deterministic tie-breaks

	// Union-find state (see unionfind.go): value(n) = value(uf) + delta.
	uf    *Node
	delta int64
}

// IsRoot reports whether n is a root symbol node.
func (n *Node) IsRoot() bool { return n.parent == nil }

// Parent returns the parent node and step offset (zero value for roots).
func (n *Node) Parent() (*Node, int64) { return n.parent, n.off }

// Name returns the root symbol name ("" for non-roots).
func (n *Node) Name() string { return n.name }

// Expr returns the canonical expression form of the node: Sym(name) for
// roots, deref(parentExpr + off) for children. The expression is built
// once at interning time, so this never allocates.
func (n *Node) Expr() *expr.Expr { return n.ex }

// Path is a canonical pointer value: an interned access-path node plus a
// constant offset. Two Paths denote the same canonical expression iff
// their Node pointers are identical and their offsets are equal, so Path
// is directly comparable with ==.
type Path struct {
	Node *Node
	Off  int64
}

// Expr returns the expression form value(Node) + Off.
func (p Path) Expr() *expr.Expr { return expr.Add(p.Node.Expr(), p.Off) }

// childKey addresses one hash-cons slot: children are unique per
// (parent identity, offset). The parent field is the interned pointer
// itself — the table's structural sharing is what makes canonical
// equality collapse to pointer equality.
type childKey struct {
	parent *Node
	off    int64
}

// Stats reports the interner's table shape and hit rate.
type Stats struct {
	Nodes     int    // interned nodes (roots + children)
	Hits      uint64 // lookups answered from the table
	Misses    uint64 // lookups that created a node
	Unions    int    // class merges performed
	Conflicts int    // contradictory offset assertions ignored
}

// HitRate returns Hits / (Hits + Misses), or 0 with no lookups.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Interner owns a hash-cons table and the union-find over its nodes.
// It is not safe for concurrent use; analyses hold one per function (or
// one per resolution pass) so interning stays deterministic.
type Interner struct {
	// roots is the hash-cons slot for root nodes, keyed by the root's
	// symbol NAME — the one string that exists before any node does.
	roots    map[string]*Node //dtaintlint:ignore sse-key-identity the hash-cons table itself: symbol names precede node identity
	children map[childKey]*Node
	members  map[*Node][]*Node // class members, keyed by representative
	// kids indexes each class's children by displacement relative to the
	// representative's value, for congruence closure (see unionfind.go).
	kids     map[*Node]map[int64]*Node
	nodes    int
	hits     uint64
	misses   uint64
	unions   int
	conflict int
}

// NewInterner returns an empty interner. The internal tables are
// allocated lazily on first intern: analyses hold one interner per
// function, and most functions never intern a node, so the empty case
// must cost nothing.
func NewInterner() *Interner {
	return &Interner{}
}

// Stats returns the current table statistics.
func (in *Interner) Stats() Stats {
	return Stats{
		Nodes:     in.nodes,
		Hits:      in.hits,
		Misses:    in.misses,
		Unions:    in.unions,
		Conflicts: in.conflict,
	}
}

func (in *Interner) newNode(n *Node) *Node {
	n.id = in.nodes
	in.nodes++
	n.uf = n
	n.ex = canonicalExpr(n)
	if in.members == nil {
		in.members = make(map[*Node][]*Node)
	}
	in.members[n] = []*Node{n}
	return n
}

func canonicalExpr(n *Node) *expr.Expr {
	if n.parent == nil {
		return expr.Sym(n.name)
	}
	return expr.Deref(expr.Add(n.parent.ex, n.off))
}

// Root interns the root node for a symbol name.
func (in *Interner) Root(name string) *Node {
	if n, ok := in.roots[name]; ok {
		in.hits++
		return n
	}
	in.misses++
	n := in.newNode(&Node{name: name})
	if in.roots == nil {
		in.roots = make(map[string]*Node) //dtaintlint:ignore sse-key-identity the hash-cons table itself: symbol names precede node identity
	}
	in.roots[name] = n
	return n
}

// Child interns the node deref(value(parent) + off).
func (in *Interner) Child(parent *Node, off int64) *Node {
	k := childKey{parent: parent, off: off}
	if n, ok := in.children[k]; ok {
		in.hits++
		return n
	}
	in.misses++
	n := in.newNode(&Node{parent: parent, off: off})
	if in.children == nil {
		in.children = make(map[childKey]*Node)
	}
	in.children[k] = n
	in.registerChild(n)
	return n
}

// Intern canonicalizes a pointer expression into (node, offset) form.
// It succeeds for symbols, dereference chains, and base+constant sums
// over those — exactly the access-path fragment of the expression
// language. Commutative and subtractive offset spellings normalize
// identically because internal/expr already canonicalizes additions
// (constant folded to the right), so equal-valued inputs always intern
// to the identical node pointer.
func (in *Interner) Intern(e *expr.Expr) (Path, bool) {
	if e == nil {
		return Path{}, false
	}
	base, off, ok := e.BasePlusOffset()
	if !ok {
		return Path{}, false
	}
	if name, isSym := base.SymName(); isSym {
		return Path{Node: in.Root(name), Off: off}, true
	}
	if addr, isDeref := base.DerefAddr(); isDeref {
		p, ok := in.Intern(addr)
		if !ok {
			return Path{}, false
		}
		return Path{Node: in.Child(p.Node, p.Off), Off: off}, true
	}
	return Path{}, false
}

//go:build !linux

package bench

import "time"

// processCPUTime is unavailable off Linux; Table VI reports 0% there.
func processCPUTime() time.Duration { return 0 }

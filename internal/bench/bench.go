// Package bench regenerates the paper's evaluation tables and figures
// from the synthetic corpus. It is shared by cmd/benchtab and the
// module's testing.B benchmarks, and prints each experiment side by side
// with the paper's reported values so the reproduction's shape can be
// checked at a glance.
//
// Absolute numbers are not expected to match the paper (the substrate is
// a synthetic mini-ISA corpus, not vendor ARM/MIPS firmware on the
// authors' testbed); the comparisons that must hold are structural: who
// finds what, which paths exist, and who is faster by what order of
// magnitude.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"dtaint/internal/baseline"
	"dtaint/internal/cfg"
	"dtaint/internal/corpus"
	"dtaint/internal/dataflow"
	"dtaint/internal/emul"
	"dtaint/internal/image"
	"dtaint/internal/taint"
)

// StudyRun is the outcome of analyzing one study image.
type StudyRun struct {
	Spec    corpus.Spec
	Planted []corpus.Planted
	Stats   cfg.Stats
	SizeKB  int
	Result  *dataflow.Result
}

// RunStudy builds and analyzes all six study images at the given scale.
func RunStudy(scale float64) ([]StudyRun, error) {
	var runs []StudyRun
	for _, spec := range corpus.StudyImages() {
		run, err := runOne(spec, scale)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

func runOne(spec corpus.Spec, scale float64) (StudyRun, error) {
	bin, planted, err := corpus.BuildBinary(spec, scale)
	if err != nil {
		return StudyRun{}, err
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		return StudyRun{}, err
	}
	res, err := dataflow.Analyze(prog, dataflow.Options{Filter: corpus.ModuleFilter(spec)})
	if err != nil {
		return StudyRun{}, err
	}
	return StudyRun{
		Spec:    spec,
		Planted: planted,
		Stats:   prog.Stats(),
		SizeKB:  bin.Size() / 1024,
		Result:  res,
	}, nil
}

// Figure1 reproduces the Section II-A emulation study: the per-year
// firmware population and how much of it a FIRMADYNE-style emulator can
// boot. The paper reports 6,529 images with fewer than 670 emulable.
func Figure1(w io.Writer) error {
	fmt.Fprintln(w, "== Figure 1: firmware that can be successfully emulated, by release year ==")
	e := emul.New()
	images := corpus.Population()
	stats := e.Study(images)
	fmt.Fprintln(w, "Year   Total  Emulable  Failed")
	total, ok := 0, 0
	for _, st := range stats {
		fmt.Fprintf(w, "%d  %6d  %8d  %6d\n", st.Year, st.Total, st.Success, st.Failed())
		total += st.Total
		ok += st.Success
	}
	fmt.Fprintf(w, "Total  %5d  %8d  %6d\n", total, ok, total-ok)
	fmt.Fprintf(w, "Paper:  6529       670    5859  (\"most firmware (90%%) ... cannot be dynamically analyzed\")\n\n")
	return nil
}

// Table1 prints the source/sink vocabulary (configuration, identical to
// the paper's Table I by construction).
func Table1(w io.Writer) error {
	fmt.Fprintln(w, "== Table I: sources and sinks ==")
	fmt.Fprintf(w, "Sensitive sinks: %v\n", taint.Sinks)
	fmt.Fprintf(w, "Input sources:   %v\n\n", taint.Sources)
	return nil
}

// paperTable2 holds the paper's Table II rows (size KB, functions,
// blocks, call-graph edges) keyed by product.
var paperTable2 = map[string][4]int{
	"DIR-645":     {156, 237, 3414, 1087},
	"DIR-890L":    {151, 358, 3913, 1418},
	"DGN1000":     {331, 732, 4943, 2457},
	"DGN2200":     {994, 796, 11183, 4497},
	"IPC_6201":    {4813, 6714, 99958, 32495},
	"DS-2CD6233F": {13199, 14035, 219945, 68974},
}

// Table2 reproduces the firmware summary. At scale 1.0 the counts land
// within a fraction of a percent of the paper's; at smaller scales the
// per-image proportions are preserved.
func Table2(w io.Writer, scale float64) error {
	fmt.Fprintln(w, "== Table II: firmware summary (measured vs paper) ==")
	fmt.Fprintf(w, "(corpus scale %.2f; paper values are full scale)\n", scale)
	fmt.Fprintln(w, "Product       Arch  Binary       SizeKB      Functions      Blocks          CallEdges")
	for _, spec := range corpus.StudyImages() {
		bin, _, err := corpus.BuildBinary(spec, scale)
		if err != nil {
			return err
		}
		prog, err := cfg.Build(bin)
		if err != nil {
			return err
		}
		st := prog.Stats()
		p := paperTable2[spec.Product]
		fmt.Fprintf(w, "%-12s  %-4s  %-11s  %5d/%-5d  %6d/%-6d  %7d/%-7d  %6d/%-6d\n",
			spec.Product, spec.Arch, spec.BinaryName,
			bin.Size()/1024, p[0], st.Functions, p[1], st.Blocks, p[2], st.CallGraphEdges, p[3])
	}
	fmt.Fprintln(w)
	return nil
}

// paperTable3 holds the paper's Table III rows: analysis functions, sink
// count, execution minutes (scaled to seconds here), vulnerable paths,
// vulnerabilities.
var paperTable3 = map[string]struct {
	funcs, sinks int
	minutes      float64
	paths, vulns int
}{
	"DIR-645":     {237, 176, 1.18, 7, 4},
	"DIR-890L":    {358, 276, 1.48, 5, 2},
	"DGN1000":     {732, 958, 3.19, 19, 6},
	"DGN2200":     {796, 1264, 6.62, 14, 2},
	"IPC_6201":    {430, 447, 3.97, 10, 1},
	"DS-2CD6233F": {3233, 2052, 31.89, 30, 6},
}

// Table3 reproduces the detection-results summary.
func Table3(w io.Writer, runs []StudyRun) error {
	fmt.Fprintln(w, "== Table III: taint-style vulnerabilities found (measured vs paper) ==")
	fmt.Fprintln(w, "Firmware      AnalysisFuncs  Sinks        Time(s)/paper(min)  Paths     Vulns")
	for _, r := range runs {
		p := paperTable3[r.Spec.Product]
		paths := len(r.Result.VulnerablePaths())
		vulns := len(r.Result.Vulnerabilities())
		t := r.Result.SSATime + r.Result.DDGTime
		fmt.Fprintf(w, "%-12s  %5d/%-5d   %5d/%-5d  %8.2f/%-6.2f     %3d/%-3d  %3d/%-3d\n",
			r.Spec.Product,
			r.Result.FunctionsAnalyzed, p.funcs,
			r.Result.SinkCount, p.sinks,
			t.Seconds(), p.minutes,
			paths, p.paths,
			vulns, p.vulns)
	}
	fmt.Fprintln(w)
	return nil
}

// Table4 reproduces the previously-reported vulnerabilities: each known
// CVE/EDB analog with its sink, source, and (absent) security check.
func Table4(w io.Writer, runs []StudyRun) error {
	fmt.Fprintln(w, "== Table IV: previously reported vulnerabilities re-found ==")
	fmt.Fprintln(w, "Vulnerability   Sink     Source      SecurityCheck  Detected")
	for _, r := range runs {
		for _, p := range r.Planted {
			if !p.Known {
				continue
			}
			fmt.Fprintf(w, "%-14s  %-7s  %-10s  N              %v\n",
				p.ID, p.Sink, p.Source, detected(r, p))
		}
	}
	fmt.Fprintln(w)
	return nil
}

// Table5 reproduces the zero-day list with per-firmware counts.
func Table5(w io.Writer, runs []StudyRun) error {
	fmt.Fprintln(w, "== Table V: zero-day vulnerabilities discovered ==")
	fmt.Fprintln(w, "Firmware      Type               Status     Bugs  Detected")
	totalZero := 0
	for _, r := range runs {
		byClass := map[string][]corpus.Planted{}
		var order []string
		for _, p := range r.Planted {
			if p.Known {
				continue
			}
			key := p.Class.String() + "|" + p.Status
			if _, seen := byClass[key]; !seen {
				order = append(order, key)
			}
			byClass[key] = append(byClass[key], p)
		}
		for _, key := range order {
			ps := byClass[key]
			det := 0
			for _, p := range ps {
				if detected(r, p) {
					det++
				}
			}
			totalZero += len(ps)
			fmt.Fprintf(w, "%-12s  %-17s  %-9s  %4d  %d/%d\n",
				r.Spec.Product, ps[0].Class, ps[0].Status, len(ps), det, len(ps))
		}
	}
	fmt.Fprintf(w, "Total zero-days: %d (paper: 13)\n\n", totalZero)
	return nil
}

// detected reports whether the run found the planted vulnerability.
func detected(r StudyRun, p corpus.Planted) bool {
	for _, v := range r.Result.Vulnerabilities() {
		if v.SinkFunc == p.SinkFunc && v.Sink == p.Sink &&
			v.Source == p.Source && v.Class == p.Class {
			return true
		}
	}
	return false
}

// Table6 reproduces the resource-usage measurement over the largest
// study binary: CPU utilization and memory per pipeline phase.
func Table6(w io.Writer, scale float64) error {
	fmt.Fprintln(w, "== Table VI: CPU and memory usage of the pipeline phases ==")
	spec, _ := corpus.SpecByProduct("DGN2200")
	bin, _, err := corpus.BuildBinary(spec, scale)
	if err != nil {
		return err
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		return err
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	cpu0 := cpuTime()
	t0 := time.Now()
	res, err := dataflow.Analyze(prog, dataflow.Options{})
	if err != nil {
		return err
	}
	wall := time.Since(t0)
	cpu := cpuTime() - cpu0
	runtime.ReadMemStats(&after)

	heap := float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20)
	cpuPct := 0.0
	if wall > 0 {
		cpuPct = 100 * float64(cpu) / float64(wall)
	}
	ssaShare := float64(res.SSATime) / float64(res.SSATime+res.DDGTime)
	fmt.Fprintln(w, "Phase                      CPU%    Memory(MB allocated)")
	fmt.Fprintf(w, "Static symbolic analysis   %4.0f    %8.1f\n", cpuPct, heap*ssaShare)
	fmt.Fprintf(w, "Data flow generation       %4.0f    %8.1f\n", cpuPct, heap*(1-ssaShare))
	fmt.Fprintf(w, "Paper: SSA 25%% CPU / 15.3 GB;  DDG 10%% CPU / 208.9 MB (128 GB host)\n\n")
	return nil
}

// Table7Workloads are the four programs of the paper's time-cost
// comparison.
var Table7Workloads = []string{"DIR-645", "DGN1000", "DGN2200", "openssl"}

// paperTable7 holds the paper's Table VII seconds:
// {angr SSA, angr DDG, dtaint SSA, dtaint DDG} keyed by binary label.
var paperTable7 = map[string][4]float64{
	"cgibin":    {134.49, 16463.32, 62.34, 10.48},
	"setup.cgi": {39.17, 539.68, 33.85, 1.205},
	"httpd":     {106.92, 22195.45, 60.92, 8.87},
	"openssl":   {102.94, 7345.56, 47.33, 3.09},
}

// Table7Row is one measured workload of the comparison. DTaintDDG is the
// parallel bottom-up run (Workers workers over the SCC DAG); DTaintDDGSeq
// is the same pass scheduled with one worker, so the per-binary DDG
// speedup of the parallel scheduler is visible next to the paper's
// baseline comparison.
type Table7Row struct {
	Binary                   string
	BaseSSA, BaseDDG         time.Duration
	DTaintSSA, DTaintDDG     time.Duration
	DTaintDDGSeq             time.Duration
	Workers                  int
	Components               int
	CriticalPath             int
	BaselineAnalyses, Capped int
}

// Table7Workers is the worker count of the parallel DDG measurement:
// GOMAXPROCS, but at least 4 so the SCC-DAG scheduler is exercised even
// on small hosts (components are goroutine-cheap to oversubscribe).
func Table7Workers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4
	}
	return w
}

// RunTable7 measures DTaint (sequential and parallel bottom-up) and the
// top-down baseline on the four workloads. maxAnalyses caps the
// baseline's exponential re-analysis (0 uses the package default of 200k;
// the cap is the phenomenon being measured, not an unfairness — uncapped,
// the baseline would not finish).
func RunTable7(scale float64, maxAnalyses int) ([]Table7Row, error) {
	var rows []Table7Row
	for _, product := range Table7Workloads {
		bin, label, err := table7Binary(product, scale)
		if err != nil {
			return nil, err
		}
		prog, err := cfg.Build(bin)
		if err != nil {
			return nil, err
		}
		dt, err := dataflow.Analyze(prog, dataflow.Options{Parallelism: Table7Workers()})
		if err != nil {
			return nil, err
		}
		// Sequential bottom-up reference on a fresh CFG (same reason as the
		// baseline below: resolved indirect edges must not leak between
		// runs).
		progSeq, err := cfg.Build(bin)
		if err != nil {
			return nil, err
		}
		seq, err := dataflow.Analyze(progSeq, dataflow.Options{Parallelism: 1})
		if err != nil {
			return nil, err
		}
		// Fresh CFG so the resolved indirect edges do not leak into the
		// baseline run.
		prog2, err := cfg.Build(bin)
		if err != nil {
			return nil, err
		}
		base, err := baseline.Analyze(prog2, baseline.Options{MaxAnalyses: maxAnalyses})
		if err != nil {
			return nil, err
		}
		capped := 0
		if base.Capped {
			capped = 1
		}
		rows = append(rows, Table7Row{
			Binary:           label,
			BaseSSA:          base.SSATime,
			BaseDDG:          base.DDGTime,
			DTaintSSA:        dt.SSATime,
			DTaintDDG:        dt.DDGTime,
			DTaintDDGSeq:     seq.DDGTime,
			Workers:          dt.Parallel.Workers,
			Components:       dt.Parallel.Components,
			CriticalPath:     dt.Parallel.CriticalPath,
			BaselineAnalyses: base.Analyses,
			Capped:           capped,
		})
	}
	return rows, nil
}

func table7Binary(product string, scale float64) (*image.Binary, string, error) {
	if product == "openssl" {
		b, err := corpus.OpenSSL(scale)
		return b, "openssl", err
	}
	spec, ok := corpus.SpecByProduct(product)
	if !ok {
		return nil, "", fmt.Errorf("bench: unknown product %q", product)
	}
	b, _, err := corpus.BuildBinary(spec, scale)
	return b, spec.BinaryName, err
}

// Table7 prints the time-cost comparison, including the parallel
// SCC-DAG scheduler's DDG wall-clock next to the sequential (1-worker)
// schedule of the same pass. The measured rows are returned so callers
// can archive them (benchtab's BENCH_*.json record).
func Table7(w io.Writer, scale float64) ([]Table7Row, error) {
	fmt.Fprintln(w, "== Table VII: time cost, top-down baseline (angr-style) vs DTaint ==")
	fmt.Fprintf(w, "(corpus scale %.2f; seconds; paper full-scale values in parentheses; DDG(1w) is the sequential bottom-up schedule)\n", scale)
	rows, err := RunTable7(scale, 0)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Program    Baseline-SSA        Baseline-DDG        DTaint-SSA          DTaint-DDG(1w)  DTaint-DDG          par     comps/crit  DDG-speedup")
	for _, r := range rows {
		p := paperTable7[r.Binary]
		speedup := 0.0
		if r.DTaintDDG > 0 {
			speedup = float64(r.BaseDDG) / float64(r.DTaintDDG)
		}
		par := 0.0
		if r.DTaintDDG > 0 {
			par = float64(r.DTaintDDGSeq) / float64(r.DTaintDDG)
		}
		note := ""
		if r.Capped == 1 {
			note = " (baseline capped)"
		}
		fmt.Fprintf(w, "%-9s  %8.3f (%8.2f)  %8.3f (%8.2f)  %8.3f (%8.2f)  %8.3f        %8.3f (%6.2f)  %4.1fx/%dw  %5d/%-5d  %6.1fx%s\n",
			r.Binary,
			r.BaseSSA.Seconds(), p[0],
			r.BaseDDG.Seconds(), p[1],
			r.DTaintSSA.Seconds(), p[2],
			r.DTaintDDGSeq.Seconds(),
			r.DTaintDDG.Seconds(), p[3],
			par, r.Workers,
			r.Components, r.CriticalPath,
			speedup, note)
	}
	fmt.Fprintf(w, "Paper DDG speedups: cgibin 1571x, setup.cgi 448x, httpd 2502x, openssl 2377x\n\n")
	return rows, nil
}

// Ablations measures the design-choice ablations DESIGN.md calls out:
// detection with pointer aliasing or structure similarity disabled, and
// the loop-once heuristic versus bounded unrolling.
func Ablations(w io.Writer, scale float64) error {
	fmt.Fprintln(w, "== Ablations (Hikvision image: the alias- and similarity-dependent zero-days) ==")
	spec, _ := corpus.SpecByProduct("DS-2CD6233F")
	configs := []struct {
		name string
		opts dataflow.Options
	}{
		{"full pipeline", dataflow.Options{}},
		{"no pointer aliasing", dataflow.Options{DisableAlias: true}},
		{"no sse resolution", dataflow.Options{DisableSSE: true}},
		{"no struct similarity", dataflow.Options{DisableStructSim: true}},
		{"no value ranges", dataflow.Options{DisableVRange: true}},
	}
	for _, c := range configs {
		bin, planted, err := corpus.BuildBinary(spec, scale)
		if err != nil {
			return err
		}
		prog, err := cfg.Build(bin)
		if err != nil {
			return err
		}
		c.opts.Filter = corpus.ModuleFilter(spec)
		t0 := time.Now()
		res, err := dataflow.Analyze(prog, c.opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s  vulns %d/%d  paths %3d  time %8.3fs\n",
			c.name, len(res.Vulnerabilities()), len(planted),
			len(res.VulnerablePaths()), time.Since(t0).Seconds())
	}

	// Loop heuristic ablation on the loop-heavy image.
	bin, _, err := corpus.BuildBinary(spec, scale)
	if err != nil {
		return err
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		return err
	}
	filter := corpus.ModuleFilter(spec)
	t0 := time.Now()
	if _, err := dataflow.Analyze(prog, dataflow.Options{Filter: filter}); err != nil {
		return err
	}
	loopOnce := time.Since(t0)
	prog2, err := cfg.Build(bin)
	if err != nil {
		return err
	}
	t1 := time.Now()
	unroll := dataflow.Options{Filter: filter}
	unroll.Symexec.LoopOnce = false
	unroll.Symexec.MaxLoopIters = 3
	if _, err := dataflow.Analyze(prog2, unroll); err != nil {
		return err
	}
	unrolled := time.Since(t1)
	fmt.Fprintf(w, "%-22s  time %8.3fs\n", "loop-once heuristic", loopOnce.Seconds())
	fmt.Fprintf(w, "%-22s  time %8.3fs\n\n", "loops unrolled 3x", unrolled.Seconds())
	return nil
}

// cpuTime returns the process's user+system CPU time.
func cpuTime() time.Duration {
	return processCPUTime()
}

// ScreeningStats holds one screening run's confusion counts and the
// derived precision/recall.
type ScreeningStats struct {
	TP, FP, FN, TN    int
	Precision, Recall float64
}

// Screening runs the detector over a randomized corpus of vulnerable and
// sanitized binaries with known ground truth and reports precision and
// recall — the quantitative form of the paper's "more vulnerabilities,
// fewer false alarms" claim. It runs three times — the full pipeline,
// with the interval value-range domain ablated, and with the SSE-based
// indirect-call resolver ablated — so each subsystem's precision/recall
// contribution is visible (the SSE ablation loses the indirect-dispatch
// shapes: recall drops while precision holds); the full-pipeline stats
// are returned for gating.
func Screening(w io.Writer, n int) (ScreeningStats, error) {
	fmt.Fprintf(w, "== Screening: precision/recall over %d randomized binaries ==\n", n)
	cases, err := corpus.ScreeningCorpus(n, 20180625)
	if err != nil {
		return ScreeningStats{}, err
	}
	full, err := screeningRun(cases, dataflow.Options{})
	if err != nil {
		return ScreeningStats{}, err
	}
	ablated, err := screeningRun(cases, dataflow.Options{DisableVRange: true})
	if err != nil {
		return ScreeningStats{}, err
	}
	noSSE, err := screeningRun(cases, dataflow.Options{DisableSSE: true})
	if err != nil {
		return ScreeningStats{}, err
	}
	for _, r := range []struct {
		name string
		s    ScreeningStats
	}{{"full pipeline", full}, {"ablated (-ablate vrange)", ablated}, {"ablated (-ablate sse)", noSSE}} {
		fmt.Fprintf(w, "%-26s tp %3d  fp %3d  fn %3d  tn %3d  precision %.3f  recall %.3f\n",
			r.name, r.s.TP, r.s.FP, r.s.FN, r.s.TN, r.s.Precision, r.s.Recall)
	}
	fmt.Fprintln(w)
	return full, nil
}

// screeningRun scores one detector configuration over the corpus. A case
// counts as found when an unsanitized vulnerability of its planted class
// is reported in the handler; under the vrange ablation the off-by-one
// and truncation classes cannot be produced, so any handler vulnerability
// counts — the ablation is scored on what it can still claim.
func screeningRun(cases []corpus.ScreeningCase, opts dataflow.Options) (ScreeningStats, error) {
	var st ScreeningStats
	for _, c := range cases {
		// Rebuild per run: structsim resolution adds call edges in place.
		prog, err := cfg.Build(c.Binary)
		if err != nil {
			return st, err
		}
		res, err := dataflow.Analyze(prog, opts)
		if err != nil {
			return st, err
		}
		found := false
		for _, v := range res.Vulnerabilities() {
			if v.SinkFunc == "handler" && (v.Class == c.Class || opts.DisableVRange) {
				found = true
			}
		}
		switch {
		case c.HasVuln && found:
			st.TP++
		case c.HasVuln && !found:
			st.FN++
		case !c.HasVuln && found:
			st.FP++
		default:
			st.TN++
		}
	}
	st.Precision, st.Recall = 1.0, 1.0
	if st.TP+st.FP > 0 {
		st.Precision = float64(st.TP) / float64(st.TP+st.FP)
	}
	if st.TP+st.FN > 0 {
		st.Recall = float64(st.TP) / float64(st.TP+st.FN)
	}
	return st, nil
}

// aliasbench.go measures the alias-rewriting phase in isolation: the
// same raw (pre-alias) definition pairs are rewritten by Algorithm 1's
// sequential pairwise scan and by the SSE class engine, on two
// workloads — the alias-dependent study image (realistic web density)
// and a dense synthetic alias web where the pairwise scan's quadratic
// cost shows. The SSE rows also report the hash-cons table's shape and
// hit rate, so BENCH_*.json records track interner behavior across
// commits.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"dtaint/internal/alias"
	"dtaint/internal/asm"
	"dtaint/internal/cfg"
	"dtaint/internal/corpus"
	"dtaint/internal/dataflow"
	"dtaint/internal/expr"
	"dtaint/internal/symexec"
)

// aliasFn is one function's raw material for the alias phase.
type aliasFn struct {
	dps   []symexec.DefPair
	types map[string]expr.Type
}

// aliasWorkload is a named set of functions to rewrite.
type aliasWorkload struct {
	name string
	fns  []aliasFn
}

// AliasBench runs the alias-phase microbenchmark and returns one record
// per workload.
func AliasBench(w io.Writer, scale float64) ([]AliasRecord, error) {
	fmt.Fprintln(w, "== Alias phase: Algorithm 1 (pairwise) vs SSE classes ==")
	study, err := aliasStudyWorkload(scale)
	if err != nil {
		return nil, err
	}
	web, err := aliasWebWorkload(256, 64)
	if err != nil {
		return nil, err
	}
	var out []AliasRecord
	for _, wl := range []aliasWorkload{study, web} {
		rec := measureAlias(wl)
		out = append(out, rec)
		fmt.Fprintf(w, "%-18s fns %4d  pairs %6d  alg1 %9.3fms  sse %9.3fms  speedup %5.2fx\n",
			rec.Workload, rec.Functions, rec.PairsIn,
			1000*rec.SeqSeconds/float64(rec.Iterations),
			1000*rec.SSESeconds/float64(rec.Iterations), rec.Speedup)
		fmt.Fprintf(w, "%-18s alg1 +%d/-%d  sse +%d/-%d  classes %d  intern %d nodes  hit rate %.3f\n",
			"", rec.SeqAdded, rec.SeqDropped, rec.SSEAdded, rec.SSEDropped,
			rec.Classes, rec.InternNodes, rec.InternHitRate)
	}
	fmt.Fprintln(w)
	return out, nil
}

// aliasStudyWorkload extracts raw definition pairs from the
// alias-dependent Hikvision study image by analyzing it with the alias
// phase disabled.
func aliasStudyWorkload(scale float64) (aliasWorkload, error) {
	spec, ok := corpus.SpecByProduct("DS-2CD6233F")
	if !ok {
		return aliasWorkload{}, fmt.Errorf("aliasbench: study spec missing")
	}
	bin, _, err := corpus.BuildBinary(spec, scale)
	if err != nil {
		return aliasWorkload{}, err
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		return aliasWorkload{}, err
	}
	res, err := dataflow.Analyze(prog, dataflow.Options{
		DisableAlias: true,
		Filter:       corpus.ModuleFilter(spec),
	})
	if err != nil {
		return aliasWorkload{}, err
	}
	return aliasWorkload{name: spec.Product, fns: workloadFns(res.Summaries)}, nil
}

// aliasWebWorkload assembles one function with a dense alias web: k
// stores publish the same pointer into k object fields, then d stores
// write through that pointer. Algorithm 1 scans all k×d (alias, dop)
// combinations; the class engine enumerates a capped variant set per
// pointer.
func aliasWebWorkload(k, d int) (aliasWorkload, error) {
	var b strings.Builder
	b.WriteString(".arch arm\n.func web\n")
	for i := 0; i < k; i++ {
		fmt.Fprintf(&b, "  STR R1, [R0, #%d]\n", 8*i)
	}
	b.WriteString("  MOV R4, #1\n")
	for j := 0; j < d; j++ {
		fmt.Fprintf(&b, "  STR R4, [R1, #%d]\n", 8*j)
	}
	b.WriteString("  BX LR\n.endfunc\n")
	bin, err := asm.Assemble("aliasweb", b.String())
	if err != nil {
		return aliasWorkload{}, err
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		return aliasWorkload{}, err
	}
	res, err := dataflow.Analyze(prog, dataflow.Options{DisableAlias: true})
	if err != nil {
		return aliasWorkload{}, err
	}
	return aliasWorkload{name: fmt.Sprintf("dense-web-%dx%d", k, d), fns: workloadFns(res.Summaries)}, nil
}

// workloadFns flattens summaries into rewrite inputs in name order.
func workloadFns(sums map[string]*symexec.Summary) []aliasFn {
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)
	fns := make([]aliasFn, 0, len(names))
	for _, name := range names {
		sum := sums[name]
		if len(sum.DefPairs) == 0 {
			continue
		}
		fns = append(fns, aliasFn{dps: sum.DefPairs, types: sum.Types})
	}
	return fns
}

// measureAlias times both engines over the workload. The iteration
// count is sized from a single Algorithm 1 pass so each measured side
// runs long enough to dominate timer noise.
func measureAlias(wl aliasWorkload) AliasRecord {
	rec := AliasRecord{Workload: wl.name, Functions: len(wl.fns)}
	for _, fn := range wl.fns {
		rec.PairsIn += len(fn.dps)
	}

	probe := time.Now()
	for _, fn := range wl.fns {
		alias.Rewrite(fn.dps, fn.types)
	}
	onePass := time.Since(probe)
	iters := 5
	if onePass > 0 {
		if n := int(100*time.Millisecond/onePass) + 1; n > iters {
			iters = n
		}
	}
	if iters > 1000 {
		iters = 1000
	}
	rec.Iterations = iters

	t0 := time.Now()
	for i := 0; i < iters; i++ {
		for _, fn := range wl.fns {
			_, st := alias.Rewrite(fn.dps, fn.types)
			if i == 0 {
				rec.SeqAdded += st.Added
				rec.SeqDropped += st.Dropped
			}
		}
	}
	rec.SeqSeconds = time.Since(t0).Seconds()

	t1 := time.Now()
	for i := 0; i < iters; i++ {
		for _, fn := range wl.fns {
			_, st := alias.RewriteSSE(fn.dps, fn.types)
			if i == 0 {
				rec.SSEAdded += st.Added
				rec.SSEDropped += st.Dropped
				rec.Classes += st.Classes
				rec.InternNodes += st.Intern.Nodes
				rec.InternHits += st.Intern.Hits
				rec.InternMisses += st.Intern.Misses
			}
		}
	}
	rec.SSESeconds = time.Since(t1).Seconds()

	if rec.SSESeconds > 0 {
		rec.Speedup = rec.SeqSeconds / rec.SSESeconds
	}
	if total := rec.InternHits + rec.InternMisses; total > 0 {
		rec.InternHitRate = float64(rec.InternHits) / float64(total)
	}
	return rec
}

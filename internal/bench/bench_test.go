package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dtaint/internal/corpus"
	"dtaint/internal/dataflow"
)

const testScale = 0.05

func TestFigure1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"2009", "2016", "Total   6529       670"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"strcpy", "recvfrom", "websGetVar", "loop"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table 1 missing %q", want)
		}
	}
}

func TestTable2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf, testScale); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DIR-645", "DS-2CD6233F", "MIPS", "ARM"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table 2 missing %q", want)
		}
	}
}

func TestStudyTables(t *testing.T) {
	runs, err := RunStudy(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 6 {
		t.Fatalf("runs = %d", len(runs))
	}
	var buf bytes.Buffer
	if err := Table3(&buf, runs); err != nil {
		t.Fatal(err)
	}
	// Detection columns must match the paper exactly (x/x pairs).
	for _, want := range []string{"7/7", "19/19", "30/30", "4/4", "6/6"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table 3 missing %q:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	if err := Table4(&buf, runs); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "false") {
		t.Fatalf("table 4 has undetected CVEs:\n%s", buf.String())
	}
	for _, cve := range []string{"CVE-2013-7389", "CVE-2015-2051", "CVE-2016-5681", "CVE-2017-6334", "CVE-2017-6077", "EDB-ID:43055"} {
		if !strings.Contains(buf.String(), cve) {
			t.Fatalf("table 4 missing %s", cve)
		}
	}
	buf.Reset()
	if err := Table5(&buf, runs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Total zero-days: 13 (paper: 13)") {
		t.Fatalf("table 5 totals wrong:\n%s", buf.String())
	}
}

func TestTable6Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Table6(&buf, testScale); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Static symbolic analysis") {
		t.Fatalf("table 6 malformed:\n%s", buf.String())
	}
}

func TestTable7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline run in -short mode")
	}
	rows, err := RunTable7(0.05, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The headline result's shape: the bottom-up DDG beats the
		// top-down baseline on every workload even at toy scale with the
		// baseline's re-analysis capped; cmd/benchtab shows the orders of
		// magnitude at real scale.
		if r.BaseDDG < 3*r.DTaintDDG {
			t.Errorf("%s: baseline DDG %v not >> DTaint DDG %v (analyses %d)",
				r.Binary, r.BaseDDG, r.DTaintDDG, r.BaselineAnalyses)
		}
		if r.BaselineAnalyses <= 0 {
			t.Errorf("%s: baseline did nothing", r.Binary)
		}
		if r.Workers < 4 {
			t.Errorf("%s: parallel DDG ran with %d workers, want >= 4", r.Binary, r.Workers)
		}
		if r.Components <= 0 || r.CriticalPath <= 0 || r.CriticalPath > r.Components {
			t.Errorf("%s: bad scheduler stats: %d components, critical path %d",
				r.Binary, r.Components, r.CriticalPath)
		}
		if r.DTaintDDGSeq <= 0 {
			t.Errorf("%s: sequential DDG reference not measured", r.Binary)
		}
	}
}

func TestAblationsOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablations(&buf, testScale); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "vulns 6/6") {
		t.Fatalf("full pipeline should find 6/6:\n%s", out)
	}
	if !strings.Contains(out, "vulns 5/6") {
		t.Fatalf("ablations should lose one vuln each:\n%s", out)
	}
}

// TestScreeningOutput asserts the headline claim of the interval domain:
// the full pipeline scores precision = recall = 1.0 on the screening
// corpus, and ablating the domain measurably costs precision.
func TestScreeningOutput(t *testing.T) {
	var buf bytes.Buffer
	stats, err := Screening(&buf, 60)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Precision != 1.0 || stats.Recall != 1.0 {
		t.Fatalf("full pipeline not perfect (precision %.3f, recall %.3f):\n%s",
			stats.Precision, stats.Recall, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "full pipeline") || !strings.Contains(out, "ablated (-ablate vrange)") ||
		!strings.Contains(out, "ablated (-ablate sse)") {
		t.Fatalf("screening must print all three configurations:\n%s", out)
	}
	// The ablated line must show degraded precision: some fp > 0.
	ablated, err := screeningRun(mustScreeningCases(t, 60), dtaintAblated())
	if err != nil {
		t.Fatal(err)
	}
	if ablated.Precision >= 1.0 {
		t.Fatalf("vrange ablation did not degrade precision: %+v", ablated)
	}
	// Ablating the SSE resolver must cost recall (the indirect-dispatch
	// templates become unreachable) while keeping precision perfect: the
	// resolver only adds true paths, never false ones.
	noSSE, err := screeningRun(mustScreeningCases(t, 60), dataflow.Options{DisableSSE: true})
	if err != nil {
		t.Fatal(err)
	}
	if noSSE.Recall >= 1.0 {
		t.Fatalf("sse ablation did not degrade recall: %+v", noSSE)
	}
	if noSSE.Precision != 1.0 {
		t.Fatalf("sse ablation cost precision, want only recall: %+v", noSSE)
	}
}

// TestAliasBenchRecords checks the alias-phase microbenchmark's
// deterministic columns: Algorithm 1 must overflow its synthesis budget
// on the dense web (the drops the SSE engine exists to avoid) while the
// class engine stays within budget with a populated intern table. Wall
// columns are load-dependent and deliberately unasserted.
func TestAliasBenchRecords(t *testing.T) {
	var buf bytes.Buffer
	rows, err := AliasBench(&buf, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 workloads, got %d:\n%s", len(rows), buf.String())
	}
	web := rows[1]
	if web.SeqDropped == 0 {
		t.Fatalf("dense web did not overflow Algorithm 1's budget: %+v", web)
	}
	if web.SSEDropped != 0 {
		t.Fatalf("class engine overflowed its budget on the dense web: %+v", web)
	}
	for _, r := range rows {
		if r.PairsIn == 0 || r.Iterations == 0 || r.InternNodes == 0 {
			t.Fatalf("empty microbenchmark row: %+v", r)
		}
		if r.InternHitRate <= 0 || r.InternHitRate >= 1 {
			t.Fatalf("degenerate intern hit rate: %+v", r)
		}
	}
}

func mustScreeningCases(t *testing.T, n int) []corpus.ScreeningCase {
	t.Helper()
	cases, err := corpus.ScreeningCorpus(n, 20180625)
	if err != nil {
		t.Fatal(err)
	}
	return cases
}

func dtaintAblated() dataflow.Options { return dataflow.Options{DisableVRange: true} }

func TestFleetOutput(t *testing.T) {
	var buf bytes.Buffer
	rec, err := Fleet(&buf, testScale)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"cold", "warm", "TOTAL", "cache: 6 entries, 6 hits, 6 misses"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fleet output missing %q:\n%s", want, out)
		}
	}
	// The warm pass must be served entirely from the cache.
	if !strings.Contains(out, "warm    TOTAL                6        0       6") {
		t.Fatalf("warm pass not fully cached:\n%s", out)
	}
	// The returned record mirrors the printed table.
	if len(rec.Passes) != 2 || rec.Passes[0].Name != "cold" || rec.Passes[1].Name != "warm" {
		t.Fatalf("record passes: %+v", rec.Passes)
	}
	cold, warm := rec.Passes[0], rec.Passes[1]
	if cold.Scanned != 6 || warm.Cached != 6 || warm.Scanned != 0 {
		t.Fatalf("record totals: cold %+v warm %+v", cold, warm)
	}
	if cold.WallSeconds <= 0 {
		t.Fatal("cold pass wall not measured")
	}
	// The cold pass analyzed binaries, so its traced stages must include
	// the per-binary pipeline; the warm pass is cache-only.
	for _, stage := range []string{"scan-image", "scan-binary", "parse-image",
		"build-cfg", "function-analysis", "interproc-dataflow"} {
		if cold.StageSeconds[stage] < 0 {
			t.Fatalf("cold stage %q negative", stage)
		}
		if _, ok := cold.StageSeconds[stage]; !ok {
			t.Fatalf("cold pass lacks stage %q: %v", stage, cold.StageSeconds)
		}
	}
	if _, ok := warm.StageSeconds["parse-image"]; ok {
		t.Fatalf("warm pass re-parsed binaries: %v", warm.StageSeconds)
	}
	if rec.Cache.HitRate != 0.5 {
		t.Fatalf("cache hit rate = %v, want 0.5", rec.Cache.HitRate)
	}
}

func TestRecordWrite(t *testing.T) {
	rec := NewRecord(0.05)
	if !rec.Empty() {
		t.Fatal("fresh record not empty")
	}
	rec.AddTable7([]Table7Row{{Binary: "cgibin", Workers: 4, Components: 10, CriticalPath: 3}})
	if rec.Empty() {
		t.Fatal("record with table7 rows reported empty")
	}
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != RecordSchema || back.Scale != 0.05 {
		t.Fatalf("round trip lost header: %+v", back)
	}
	if back.Env.GoVersion == "" || back.Env.GOMAXPROCS <= 0 {
		t.Fatalf("environment not stamped: %+v", back.Env)
	}
	if len(back.Table7) != 1 || back.Table7[0].Binary != "cgibin" {
		t.Fatalf("table7 rows lost: %+v", back.Table7)
	}
}

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"dtaint/internal/corpus"
	"dtaint/internal/fleet"
	"dtaint/internal/sumstore"
)

// Corpus measures corpus-scale scanning over an overlap corpus (many
// images cycling a few binary variants that share a common module). Four
// passes, all through fleet orchestration with the given worker count:
//
//   - baseline: one image per variant, no caches — the store-off
//     reference every cached pass must reproduce bit-identically.
//   - cold: the whole corpus through a fresh shared report cache and
//     summary store. Duplicate binaries collapse onto the report cache;
//     shared-module functions of the remaining variants collapse onto
//     the summary store.
//   - warm: the whole corpus again through the same tiers — the
//     re-scan-after-re-release case. Every binary is a report-cache hit.
//   - resummarize: a fresh report cache over the same summary store —
//     the analysis-replay case (e.g. after a report-schema change).
//     Every function summary and component entry replays from the store.
//
// Findings are asserted identical across all passes before the record is
// returned; a mismatch is an error, not a number in a table.
func Corpus(w io.Writer, spec corpus.OverlapSpec, workers int) (*CorpusRecord, error) {
	fmt.Fprintln(w, "== Corpus: overlap corpus scans, summary store cold vs warm ==")
	c, err := corpus.BuildOverlapCorpus(spec)
	if err != nil {
		return nil, err
	}
	spec = c.Spec
	fmt.Fprintf(w, "(%d images, %d variants; %.0f%% duplicate binaries, %.0f%% shared functions; %d workers)\n",
		spec.Images, spec.Variants,
		100*spec.DuplicateBinaryRatio(), 100*spec.SharedFunctionRatio(), workers)

	ctx := context.Background()

	// Baseline: the store-off reference, one image per variant.
	baseRefs := make(map[string]string)
	var baseWall float64
	for v := 0; v < spec.Variants; v++ {
		rep, err := fleet.ScanImage(ctx, c.Images[v], fleet.Options{Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("bench corpus baseline: %w", err)
		}
		baseWall += rep.Wall.Seconds()
		for _, bs := range rep.Binaries {
			if bs.Analysis != nil {
				baseRefs[bs.SHA256] = binarySignature(bs)
			}
		}
	}

	cache, err := fleet.NewCache(0, "")
	if err != nil {
		return nil, err
	}
	store, err := sumstore.NewStore(0, "")
	if err != nil {
		return nil, err
	}

	rec := &CorpusRecord{
		Images:   spec.Images,
		Variants: spec.Variants,
		Workers:  workers,
	}
	rec.Passes = append(rec.Passes, CorpusPass{
		Name:        "baseline",
		Images:      spec.Variants,
		WallSeconds: baseWall,
	})

	fmt.Fprintln(w, "Pass         Images  Binaries  Scanned  Cached  Vulns  SumHit  SumMiss  Wall(s)   Bin/s")
	type passDef struct {
		name  string
		cache *fleet.Cache
	}
	passes := []passDef{{"cold", cache}, {"warm", cache}, {"resummarize", nil}}
	sigs := make(map[string]string)
	for _, p := range passes {
		pcache := p.cache
		if pcache == nil {
			if pcache, err = fleet.NewCache(0, ""); err != nil {
				return nil, err
			}
		}
		c0, s0 := pcache.Stats(), store.Stats()
		rep, err := fleet.ScanCorpus(ctx, c.Images, fleet.Options{
			Workers:      workers,
			Cache:        pcache,
			SummaryStore: store,
		})
		if err != nil {
			return nil, fmt.Errorf("bench corpus %s: %w", p.name, err)
		}
		c1, s1 := pcache.Stats(), store.Stats()

		if err := checkAgainstBaseline(rep, baseRefs); err != nil {
			return nil, fmt.Errorf("bench corpus %s: %w", p.name, err)
		}
		sigs[p.name] = reportSignature(rep)

		wall := rep.Wall.Seconds()
		binPerSec := 0.0
		if wall > 0 {
			binPerSec = float64(rep.Totals.Candidates) / wall
		}
		pass := CorpusPass{
			Name:            p.name,
			Images:          len(rep.Images),
			Candidates:      rep.Totals.Candidates,
			Scanned:         rep.Totals.Scanned,
			Cached:          rep.Totals.Cached,
			Vulnerabilities: rep.Totals.Vulnerabilities,
			VulnerablePaths: rep.Totals.VulnerablePaths,
			CacheHits:       c1.Hits - c0.Hits,
			CacheMisses:     c1.Misses - c0.Misses,
			SummaryHits:     s1.Hits + s1.DiskHits - s0.Hits - s0.DiskHits,
			SummaryMisses:   s1.Misses - s0.Misses,
			WallSeconds:     wall,
			BinariesPerSec:  binPerSec,
		}
		rec.Passes = append(rec.Passes, pass)
		rec.UniqueBinaries = rep.UniqueBinaries
		rec.DuplicateBinaries = rep.DuplicateBinaries
		fmt.Fprintf(w, "%-11s  %6d  %8d  %7d  %6d  %5d  %6d  %7d  %7.3f  %6.1f\n",
			p.name, pass.Images, pass.Candidates, pass.Scanned, pass.Cached,
			pass.Vulnerabilities, pass.SummaryHits, pass.SummaryMisses, wall, binPerSec)
	}

	if sigs["warm"] != sigs["cold"] || sigs["resummarize"] != sigs["cold"] {
		return nil, fmt.Errorf("bench corpus: pass reports diverge (cold/warm/resummarize must be bit-identical)")
	}

	cold, warm, resum := &rec.Passes[1], &rec.Passes[2], &rec.Passes[3]
	if warm.WallSeconds > 0 {
		rec.WarmSpeedup = cold.WallSeconds / warm.WallSeconds
	}
	if n := resum.SummaryHits + resum.SummaryMisses; n > 0 {
		rec.SummaryHitRate = float64(resum.SummaryHits) / float64(n)
	}
	fmt.Fprintf(w, "warm re-scan speedup: %.1fx; replay summary hit rate: %.1f%%; findings identical across passes\n\n",
		rec.WarmSpeedup, 100*rec.SummaryHitRate)
	return rec, nil
}

// binarySignature canonicalizes one binary analysis for cross-pass
// comparison: every analysis output except wall-clock timings (cached
// entries keep the producing run's timings by design).
func binarySignature(bs fleet.BinaryScan) string {
	a := bs.Analysis
	findings, err := json.Marshal(a.Findings)
	if err != nil {
		findings = []byte("marshal-error:" + err.Error())
	}
	return fmt.Sprintf("%s|fn=%d blk=%d ce=%d an=%d sink=%d ind=%d dp=%d tr=%d|%s",
		bs.SHA256, a.Functions, a.Blocks, a.CallEdges, a.FunctionsAnalyzed,
		a.SinkCount, a.IndirectResolved, a.DefPairs, a.Truncated, findings)
}

// checkAgainstBaseline verifies every analyzed binary in the corpus
// report reproduces the uncached baseline analysis for the same bytes.
func checkAgainstBaseline(rep *fleet.CorpusReport, refs map[string]string) error {
	for _, ir := range rep.Images {
		for _, bs := range ir.Binaries {
			if bs.Analysis == nil {
				continue
			}
			want, ok := refs[bs.SHA256]
			if !ok {
				return fmt.Errorf("%s: binary %s not in baseline", ir.Product, bs.Path)
			}
			if got := binarySignature(bs); got != want {
				return fmt.Errorf("%s %s: findings differ from store-off baseline", ir.Product, bs.Path)
			}
		}
	}
	return nil
}

// reportSignature canonicalizes a whole corpus report.
func reportSignature(rep *fleet.CorpusReport) string {
	var b strings.Builder
	for _, ir := range rep.Images {
		fmt.Fprintf(&b, "%s/%s\n", ir.Product, ir.Version)
		for _, bs := range ir.Binaries {
			fmt.Fprintf(&b, "  %s %s", bs.Path, bs.SHA256)
			if bs.Analysis != nil {
				b.WriteByte(' ')
				b.WriteString(binarySignature(bs))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

package bench

import (
	"bytes"
	"strings"
	"testing"

	"dtaint/internal/corpus"
)

// TestCorpusBench runs the four-pass corpus benchmark over a tiny
// overlap corpus. The pass-identity and baseline checks inside Corpus
// are the real assertions; here we additionally pin the cache-behavior
// invariants the record is supposed to demonstrate.
func TestCorpusBench(t *testing.T) {
	var buf bytes.Buffer
	spec := corpus.OverlapSpec{
		Images:      6,
		Variants:    2,
		SharedFuncs: 12,
		UniqueFuncs: 6,
		Seed:        3,
	}
	rec, err := Corpus(&buf, spec, 2)
	if err != nil {
		t.Fatalf("%v\noutput:\n%s", err, buf.String())
	}
	if len(rec.Passes) != 4 {
		t.Fatalf("got %d passes", len(rec.Passes))
	}
	cold, warm, resum := rec.Passes[1], rec.Passes[2], rec.Passes[3]
	if cold.Scanned != rec.Variants {
		t.Fatalf("cold pass scanned %d binaries, want one per variant (%d)",
			cold.Scanned, rec.Variants)
	}
	if warm.Scanned != 0 || warm.Cached != warm.Candidates {
		t.Fatalf("warm pass should be all report-cache hits: scanned=%d cached=%d/%d",
			warm.Scanned, warm.Cached, warm.Candidates)
	}
	if resum.SummaryHits == 0 || resum.SummaryMisses != 0 {
		t.Fatalf("resummarize pass should replay entirely from the summary store: hits=%d misses=%d",
			resum.SummaryHits, resum.SummaryMisses)
	}
	if rec.SummaryHitRate != 1 {
		t.Fatalf("summary hit rate %.2f, want 1.0", rec.SummaryHitRate)
	}
	if rec.DuplicateBinaries != rec.Images-rec.Variants {
		t.Fatalf("duplicates=%d images=%d variants=%d",
			rec.DuplicateBinaries, rec.Images, rec.Variants)
	}
	if cold.Vulnerabilities == 0 {
		t.Fatal("planted vulnerability not detected")
	}
	if !strings.Contains(buf.String(), "findings identical across passes") {
		t.Fatalf("missing identity line:\n%s", buf.String())
	}
}

package bench

import (
	"strings"
	"testing"

	"dtaint/internal/corpus"
)

// The diff measurement's counters are exact, not statistical: the unit
// counts follow from the pair's shape, so the CI gate on the skip rate
// can use a fixed threshold.
func TestDiffMeasurement(t *testing.T) {
	spec := corpus.VersionPairSpec{Binaries: 3, Mutated: 1, SharedFuncs: 10, TailFuncs: 5, Seed: 3}
	var out strings.Builder
	rec, err := Diff(&out, spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Units: 2 unchanged + 2 changed-pair sides + 1 added + 1 removed = 6;
	// the mutated binary's new version and the added binary are fresh.
	if rec.Reanalyzed != 2 {
		t.Fatalf("Reanalyzed = %d, want 2", rec.Reanalyzed)
	}
	if rec.Replayed != 4 {
		t.Fatalf("Replayed = %d, want 4", rec.Replayed)
	}
	if want := 4.0 / 6.0; rec.SkipRate < want-1e-9 || rec.SkipRate > want+1e-9 {
		t.Fatalf("SkipRate = %v, want %v", rec.SkipRate, want)
	}
	if rec.SummaryHitRate == 0 {
		t.Fatal("SummaryHitRate = 0: changed binary did not replay old summaries")
	}
	if !strings.Contains(out.String(), "skip rate:") {
		t.Fatalf("table output missing summary line:\n%s", out.String())
	}

	// The record participates in the archive schema.
	r := NewRecord(0.25)
	if !r.Empty() {
		t.Fatal("fresh record not empty")
	}
	r.Diff = rec
	if r.Empty() {
		t.Fatal("record with a diff section reports empty")
	}
}

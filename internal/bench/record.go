package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// RecordSchema identifies the BENCH_*.json layout; bump on breaking
// changes. The schema is documented in EXPERIMENTS.md.
const RecordSchema = "dtaint-bench/v1"

// Record is the machine-readable artifact benchtab writes next to the
// human-readable tables, so benchmark runs can be archived and diffed
// across commits.
type Record struct {
	Schema      string         `json:"schema"`
	GeneratedAt time.Time      `json:"generatedAt"`
	Scale       float64        `json:"scale"`
	Env         EnvRecord      `json:"env"`
	Study       []StudyRecord  `json:"study,omitempty"`
	Table7      []Table7Record `json:"table7,omitempty"`
	Fleet       *FleetRecord   `json:"fleet,omitempty"`
	Corpus      *CorpusRecord  `json:"corpus,omitempty"`
	Diff        *DiffRecord    `json:"diff,omitempty"`
	Alias       []AliasRecord  `json:"alias,omitempty"`
}

// EnvRecord pins the toolchain and host shape a record was measured on.
type EnvRecord struct {
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// NewRecord returns an empty record stamped with the current time and
// environment.
func NewRecord(scale float64) *Record {
	return &Record{
		Schema:      RecordSchema,
		GeneratedAt: time.Now().UTC().Truncate(time.Second),
		Scale:       scale,
		Env: EnvRecord{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
}

// StudyRecord is one study image's detection outcome (Table III data).
type StudyRecord struct {
	Product           string  `json:"product"`
	Arch              string  `json:"arch"`
	Binary            string  `json:"binary"`
	FunctionsAnalyzed int     `json:"functionsAnalyzed"`
	SinkCount         int     `json:"sinkCount"`
	SSASeconds        float64 `json:"ssaSeconds"`
	DDGSeconds        float64 `json:"ddgSeconds"`
	VulnerablePaths   int     `json:"vulnerablePaths"`
	Vulnerabilities   int     `json:"vulnerabilities"`
}

// AddStudy records the detection results of a RunStudy pass.
func (rec *Record) AddStudy(runs []StudyRun) {
	for _, r := range runs {
		rec.Study = append(rec.Study, StudyRecord{
			Product:           r.Spec.Product,
			Arch:              r.Spec.Arch.String(),
			Binary:            r.Spec.BinaryName,
			FunctionsAnalyzed: r.Result.FunctionsAnalyzed,
			SinkCount:         r.Result.SinkCount,
			SSASeconds:        r.Result.SSATime.Seconds(),
			DDGSeconds:        r.Result.DDGTime.Seconds(),
			VulnerablePaths:   len(r.Result.VulnerablePaths()),
			Vulnerabilities:   len(r.Result.Vulnerabilities()),
		})
	}
}

// Table7Record is one workload of the time-cost comparison.
type Table7Record struct {
	Binary             string  `json:"binary"`
	BaselineSSASeconds float64 `json:"baselineSsaSeconds"`
	BaselineDDGSeconds float64 `json:"baselineDdgSeconds"`
	SSASeconds         float64 `json:"ssaSeconds"`
	DDGSeconds         float64 `json:"ddgSeconds"`
	DDGSeqSeconds      float64 `json:"ddgSeqSeconds"`
	Workers            int     `json:"workers"`
	Components         int     `json:"components"`
	CriticalPath       int     `json:"criticalPath"`
	BaselineAnalyses   int     `json:"baselineAnalyses"`
	BaselineCapped     bool    `json:"baselineCapped"`
}

// AddTable7 records the rows of a RunTable7 pass.
func (rec *Record) AddTable7(rows []Table7Row) {
	for _, r := range rows {
		rec.Table7 = append(rec.Table7, Table7Record{
			Binary:             r.Binary,
			BaselineSSASeconds: r.BaseSSA.Seconds(),
			BaselineDDGSeconds: r.BaseDDG.Seconds(),
			SSASeconds:         r.DTaintSSA.Seconds(),
			DDGSeconds:         r.DTaintDDG.Seconds(),
			DDGSeqSeconds:      r.DTaintDDGSeq.Seconds(),
			Workers:            r.Workers,
			Components:         r.Components,
			CriticalPath:       r.CriticalPath,
			BaselineAnalyses:   r.BaselineAnalyses,
			BaselineCapped:     r.Capped == 1,
		})
	}
}

// FleetRecord is the cold/warm fleet measurement: per-pass totals with
// tracer-aggregated stage durations, plus the shared cache's hit rate.
type FleetRecord struct {
	Workers int              `json:"workers"`
	Passes  []FleetPass      `json:"passes"`
	Cache   FleetCacheRecord `json:"cache"`
}

// FleetPass is one pass (cold or warm) over all study images.
type FleetPass struct {
	Name            string             `json:"name"`
	Images          int                `json:"images"`
	Candidates      int                `json:"candidates"`
	Scanned         int                `json:"scanned"`
	Cached          int                `json:"cached"`
	Failed          int                `json:"failed"`
	Skipped         int                `json:"skipped"`
	Vulnerabilities int                `json:"vulnerabilities"`
	VulnerablePaths int                `json:"vulnerablePaths"`
	WallSeconds     float64            `json:"wallSeconds"`
	StageSeconds    map[string]float64 `json:"stageSeconds"`
	// Telemetry throughput: the pass runs with a live event journal
	// attached (span bridge included), so the record captures how many
	// events the scan produced, the publish rate, and the journal ring's
	// peak occupancy.
	Events           uint64  `json:"events"`
	EventsPerSec     float64 `json:"eventsPerSec"`
	JournalHighWater int     `json:"journalHighWater"`
}

// FleetCacheRecord is the cache shape after both passes.
type FleetCacheRecord struct {
	Entries   int     `json:"entries"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hitRate"`
}

// CorpusRecord is the corpus-scale measurement: the overlap corpus's
// shape, the four passes, and the two headline numbers — the warm
// re-scan speedup (cold wall / warm wall) and the summary-store hit rate
// of the resummarize pass.
type CorpusRecord struct {
	Images            int          `json:"images"`
	Variants          int          `json:"variants"`
	UniqueBinaries    int          `json:"uniqueBinaries"`
	DuplicateBinaries int          `json:"duplicateBinaries"`
	Workers           int          `json:"workers"`
	Passes            []CorpusPass `json:"passes"`
	WarmSpeedup       float64      `json:"warmSpeedup"`
	SummaryHitRate    float64      `json:"summaryHitRate"`
}

// CorpusPass is one pass over the overlap corpus. Cache and summary
// counters are per-pass deltas, not cumulative store totals.
type CorpusPass struct {
	Name            string  `json:"name"`
	Images          int     `json:"images"`
	Candidates      int     `json:"candidates"`
	Scanned         int     `json:"scanned"`
	Cached          int     `json:"cached"`
	Vulnerabilities int     `json:"vulnerabilities"`
	VulnerablePaths int     `json:"vulnerablePaths"`
	CacheHits       uint64  `json:"cacheHits"`
	CacheMisses     uint64  `json:"cacheMisses"`
	SummaryHits     uint64  `json:"summaryHits"`
	SummaryMisses   uint64  `json:"summaryMisses"`
	WallSeconds     float64 `json:"wallSeconds"`
	BinariesPerSec  float64 `json:"binariesPerSecond"`
}

// DiffRecord is the differential-scanning measurement over a version
// pair: the full-rescan baseline, the prior (nightly) scan that warms
// the tiers, and the diff itself, with its cost attribution. SkipRate is
// the fraction of analysis units replayed instead of re-analyzed;
// DeltaCostRatio is diff wall over full-rescan wall.
type DiffRecord struct {
	Binaries          int     `json:"binaries"`
	Mutated           int     `json:"mutated"`
	Workers           int     `json:"workers"`
	FullRescanSeconds float64 `json:"fullRescanSeconds"`
	PriorScanSeconds  float64 `json:"priorScanSeconds"`
	DiffSeconds       float64 `json:"diffSeconds"`
	DeltaCostRatio    float64 `json:"deltaCostRatio"`
	SkipRate          float64 `json:"skipRate"`
	Replayed          int     `json:"replayed"`
	Reanalyzed        int     `json:"reanalyzed"`
	SummaryHitRate    float64 `json:"summaryHitRate"`
	New               int     `json:"new"`
	Fixed             int     `json:"fixed"`
	Persisting        int     `json:"persisting"`
}

// AliasRecord is one alias-phase microbenchmark workload: the same raw
// definition pairs rewritten by Algorithm 1 (sequential pairwise scan)
// and by the SSE class engine, with the hash-cons table's shape. Wall
// columns are totals over Iterations passes; Speedup is seq over SSE.
type AliasRecord struct {
	Workload      string  `json:"workload"`
	Functions     int     `json:"functions"`
	PairsIn       int     `json:"pairsIn"`
	Iterations    int     `json:"iterations"`
	SeqSeconds    float64 `json:"seqSeconds"`
	SSESeconds    float64 `json:"sseSeconds"`
	Speedup       float64 `json:"speedup"`
	SeqAdded      int     `json:"seqAdded"`
	SeqDropped    int     `json:"seqDropped"`
	SSEAdded      int     `json:"sseAdded"`
	SSEDropped    int     `json:"sseDropped"`
	Classes       int     `json:"classes"`
	InternNodes   int     `json:"internNodes"`
	InternHits    uint64  `json:"internHits"`
	InternMisses  uint64  `json:"internMisses"`
	InternHitRate float64 `json:"internHitRate"`
}

// Empty reports whether the record has no measured sections; benchtab
// skips writing a file for table-only invocations.
func (rec *Record) Empty() bool {
	return len(rec.Study) == 0 && len(rec.Table7) == 0 && rec.Fleet == nil &&
		rec.Corpus == nil && rec.Diff == nil && len(rec.Alias) == 0
}

// Write writes the record as indented JSON.
func (rec *Record) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rec)
}

// WriteFile writes the record to path (or, when path is empty, to an
// auto-named BENCH_<UTC timestamp>.json in the working directory) and
// returns the path written.
func (rec *Record) WriteFile(path string) (string, error) {
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rec.GeneratedAt.Format("20060102T150405Z"))
	}
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := rec.Write(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"dtaint/internal/corpus"
	"dtaint/internal/fleet"
)

// Fleet measures the fleet orchestrator over the six study firmware
// images: a cold pass that analyzes every binary, then a warm pass over
// the same images through a shared content-addressed cache. The second
// pass's wall-clock collapse is the measurement — an image re-scan after
// a vendor re-release touches only the binaries that changed.
func Fleet(w io.Writer, scale float64) error {
	fmt.Fprintln(w, "== Fleet: orchestrated image scans, cold vs cached ==")
	fmt.Fprintf(w, "(corpus scale %.2f; %d workers; shared cache across passes)\n",
		scale, Table7Workers())

	cache, err := fleet.NewCache(0, "")
	if err != nil {
		return err
	}
	specs := corpus.StudyImages()
	images := make([][]byte, len(specs))
	for i, spec := range specs {
		fw, _, err := corpus.BuildFirmware(spec, scale)
		if err != nil {
			return err
		}
		images[i] = fw
	}

	fmt.Fprintln(w, "Pass    Firmware      Binaries  Scanned  Cached  Vulns  Paths  Wall(s)")
	for _, name := range []string{"cold", "warm"} {
		var reports []*fleet.ImageReport
		t0 := time.Now()
		for i, spec := range specs {
			rep, err := fleet.ScanImage(context.Background(), images[i], fleet.Options{
				Workers: Table7Workers(),
				Cache:   cache,
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-6s  %-12s  %8d  %7d  %6d  %5d  %5d  %7.3f\n",
				name, spec.Product, rep.Candidates, rep.Scanned, rep.Cached,
				rep.Vulnerabilities, rep.VulnerablePaths, rep.Wall.Seconds())
			reports = append(reports, rep)
		}
		totals := fleet.MergeReports(reports)
		fmt.Fprintf(w, "%-6s  %-12s  %8d  %7d  %6d  %5d  %5d  %7.3f\n",
			name, "TOTAL", totals.Candidates, totals.Scanned, totals.Cached,
			totals.Vulnerabilities, totals.VulnerablePaths, time.Since(t0).Seconds())
	}
	st := cache.Stats()
	fmt.Fprintf(w, "cache: %d entries, %d hits, %d misses, %d evictions\n\n",
		st.Entries, st.Hits, st.Misses, st.Evictions)
	return nil
}

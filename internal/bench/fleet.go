package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"dtaint/internal/corpus"
	"dtaint/internal/fleet"
	"dtaint/internal/obs"
	"dtaint/internal/obs/events"
)

// Fleet measures the fleet orchestrator over the six study firmware
// images: a cold pass that analyzes every binary, then a warm pass over
// the same images through a shared content-addressed cache. The second
// pass's wall-clock collapse is the measurement — an image re-scan after
// a vendor re-release touches only the binaries that changed. Each pass
// runs under a span tracer; the returned record carries the per-stage
// duration totals alongside the printed table.
func Fleet(w io.Writer, scale float64) (*FleetRecord, error) {
	fmt.Fprintln(w, "== Fleet: orchestrated image scans, cold vs cached ==")
	fmt.Fprintf(w, "(corpus scale %.2f; %d workers; shared cache across passes)\n",
		scale, Table7Workers())

	cache, err := fleet.NewCache(0, "")
	if err != nil {
		return nil, err
	}
	specs := corpus.StudyImages()
	images := make([][]byte, len(specs))
	for i, spec := range specs {
		fw, _, err := corpus.BuildFirmware(spec, scale)
		if err != nil {
			return nil, err
		}
		images[i] = fw
	}

	rec := &FleetRecord{Workers: Table7Workers()}
	fmt.Fprintln(w, "Pass    Firmware      Binaries  Scanned  Cached  Vulns  Paths  Wall(s)")
	for _, name := range []string{"cold", "warm"} {
		tracer := obs.NewTracer()
		// Each pass carries a live event journal so the record captures
		// telemetry throughput alongside the scan timings.
		journal := events.NewJournal(0)
		em := journal.Emitter(name)
		events.Bridge(tracer, em)
		var reports []*fleet.ImageReport
		t0 := time.Now()
		for i, spec := range specs {
			opts := fleet.Options{
				Workers: Table7Workers(),
				Cache:   cache,
			}
			opts.Analysis.Tracer = tracer
			opts.Analysis.Events = em
			rep, err := fleet.ScanImage(context.Background(), images[i], opts)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "%-6s  %-12s  %8d  %7d  %6d  %5d  %5d  %7.3f\n",
				name, spec.Product, rep.Candidates, rep.Scanned, rep.Cached,
				rep.Vulnerabilities, rep.VulnerablePaths, rep.Wall.Seconds())
			reports = append(reports, rep)
		}
		wall := time.Since(t0)
		totals := fleet.MergeReports(reports)
		fmt.Fprintf(w, "%-6s  %-12s  %8d  %7d  %6d  %5d  %5d  %7.3f\n",
			name, "TOTAL", totals.Candidates, totals.Scanned, totals.Cached,
			totals.Vulnerabilities, totals.VulnerablePaths, wall.Seconds())
		stages := map[string]float64{}
		for _, s := range tracer.Spans() {
			stages[s.Name] += s.Duration.Seconds()
		}
		js := journal.Stats()
		pass := FleetPass{
			Name:             name,
			Images:           len(specs),
			Candidates:       totals.Candidates,
			Scanned:          totals.Scanned,
			Cached:           totals.Cached,
			Failed:           totals.Failed,
			Skipped:          totals.Skipped,
			Vulnerabilities:  totals.Vulnerabilities,
			VulnerablePaths:  totals.VulnerablePaths,
			WallSeconds:      wall.Seconds(),
			StageSeconds:     stages,
			Events:           js.Appended,
			JournalHighWater: js.HighWater,
		}
		if s := wall.Seconds(); s > 0 {
			pass.EventsPerSec = float64(js.Appended) / s
		}
		fmt.Fprintf(w, "%-6s  telemetry: %d events (%.0f/s), journal high-water %d/%d\n",
			name, js.Appended, pass.EventsPerSec, js.HighWater, js.Capacity)
		rec.Passes = append(rec.Passes, pass)
	}
	st := cache.Stats()
	fmt.Fprintf(w, "cache: %d entries, %d hits, %d misses, %d evictions\n\n",
		st.Entries, st.Hits, st.Misses, st.Evictions)
	rec.Cache = FleetCacheRecord{
		Entries:   st.Entries,
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
	}
	if st.Hits+st.Misses > 0 {
		rec.Cache.HitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	return rec, nil
}

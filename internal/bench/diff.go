package bench

import (
	"context"
	"fmt"
	"io"

	"dtaint/internal/corpus"
	"dtaint/internal/diff"
	"dtaint/internal/fleet"
	"dtaint/internal/sumstore"
)

// Diff measures differential scanning over a version pair (a vendor
// re-release mutating a few binaries at function granularity). Three
// steps, all with the given worker count:
//
//   - full-rescan: the new image through a storeless fleet scan — the
//     cost a CI pipeline pays without differential scanning.
//   - prior-scan: the old image through a fresh report cache and summary
//     store — the nightly scan that precedes the release.
//   - diff: old→new through the warmed tiers. Unchanged binaries replay
//     from the report cache; the changed binaries' unchanged functions
//     replay from the summary store.
//
// The diff's shape is asserted against the generator's ground truth —
// exactly the mutated binaries plus the added one re-analyzed, and the
// new/fixed/persisting finding counts — so a regression is an error, not
// a number in a table. The headline numbers are the skip rate (fraction
// of analysis units replayed) and the delta-cost ratio (diff wall over
// full-rescan wall).
func Diff(w io.Writer, spec corpus.VersionPairSpec, workers int) (*DiffRecord, error) {
	fmt.Fprintln(w, "== Diff: differential re-scan of a vendor re-release ==")
	vp, err := corpus.BuildVersionPair(spec)
	if err != nil {
		return nil, err
	}
	spec = vp.Spec
	fmt.Fprintf(w, "(%d binaries, %d mutated, 1 added, 1 removed; %d workers)\n",
		spec.Binaries, spec.Mutated, workers)

	ctx := context.Background()

	// Full-rescan baseline: what scanning the new release from scratch
	// costs.
	full, err := fleet.ScanImage(ctx, vp.New, fleet.Options{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("bench diff full-rescan: %w", err)
	}

	cache, err := fleet.NewCache(0, "")
	if err != nil {
		return nil, err
	}
	store, err := sumstore.NewStore(0, "")
	if err != nil {
		return nil, err
	}

	// Prior scan: the old version's nightly scan warms the tiers.
	prior, err := fleet.ScanImage(ctx, vp.Old, fleet.Options{
		Workers: workers, Cache: cache, SummaryStore: store,
	})
	if err != nil {
		return nil, fmt.Errorf("bench diff prior-scan: %w", err)
	}

	rep, err := diff.Diff(ctx, vp.Old, vp.New, diff.Options{
		Workers: workers, Cache: cache, SummaryStore: store,
	})
	if err != nil {
		return nil, fmt.Errorf("bench diff: %w", err)
	}

	// Ground-truth checks: the diff must touch exactly the delta and
	// classify the generator's planted findings.
	if want := spec.Mutated + 1; rep.Reanalyzed != want {
		return nil, fmt.Errorf("bench diff: re-analyzed %d binaries, ground truth says %d (mutated + added)",
			rep.Reanalyzed, want)
	}
	if rep.Failed != 0 {
		return nil, fmt.Errorf("bench diff: %d binary pairs failed", rep.Failed)
	}
	if rep.NewFindings != vp.NewVulns || rep.FixedFindings != vp.FixedVulns ||
		rep.PersistingFindings != vp.PersistingVulns {
		return nil, fmt.Errorf("bench diff: findings new/fixed/persisting = %d/%d/%d, ground truth %d/%d/%d",
			rep.NewFindings, rep.FixedFindings, rep.PersistingFindings,
			vp.NewVulns, vp.FixedVulns, vp.PersistingVulns)
	}

	rec := &DiffRecord{
		Binaries:          spec.Binaries,
		Mutated:           spec.Mutated,
		Workers:           workers,
		FullRescanSeconds: full.Wall.Seconds(),
		PriorScanSeconds:  prior.Wall.Seconds(),
		DiffSeconds:       rep.Wall.Seconds(),
		Replayed:          rep.Replayed,
		Reanalyzed:        rep.Reanalyzed,
		SummaryHitRate:    rep.SummaryHitRate,
		New:               rep.NewFindings,
		Fixed:             rep.FixedFindings,
		Persisting:        rep.PersistingFindings,
	}
	if units := rep.Replayed + rep.Reanalyzed; units > 0 {
		rec.SkipRate = float64(rep.Replayed) / float64(units)
	}
	if rec.FullRescanSeconds > 0 {
		rec.DeltaCostRatio = rec.DiffSeconds / rec.FullRescanSeconds
	}

	fmt.Fprintln(w, "Step         Wall(s)   Scanned/Reanalyzed  Replayed  SumHitRate")
	fmt.Fprintf(w, "full-rescan  %7.3f  %19d  %8s  %10s\n", rec.FullRescanSeconds, full.Scanned, "-", "-")
	fmt.Fprintf(w, "prior-scan   %7.3f  %19d  %8s  %10s\n", rec.PriorScanSeconds, prior.Scanned, "-", "-")
	fmt.Fprintf(w, "diff         %7.3f  %19d  %8d  %9.1f%%\n",
		rec.DiffSeconds, rec.Reanalyzed, rec.Replayed, 100*rec.SummaryHitRate)
	fmt.Fprintf(w, "skip rate: %.1f%%; delta-cost ratio: %.2f; findings %d new / %d fixed / %d persisting (= ground truth)\n\n",
		100*rec.SkipRate, rec.DeltaCostRatio, rec.New, rec.Fixed, rec.Persisting)
	return rec, nil
}

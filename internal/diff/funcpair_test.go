package diff

import (
	"testing"

	"dtaint/internal/cfg"
	"dtaint/internal/corpus"
	"dtaint/internal/firmware"
	"dtaint/internal/image"
)

// pairPrograms builds the CFGs of the test spec's mutated binary in both
// versions.
func pairPrograms(t *testing.T) (*cfg.Program, *cfg.Program) {
	t.Helper()
	vp, err := corpus.BuildVersionPair(testSpec)
	if err != nil {
		t.Fatalf("BuildVersionPair: %v", err)
	}
	progOf := func(img []byte, path string) *cfg.Program {
		_, fs, err := firmware.Unpack(img)
		if err != nil {
			t.Fatalf("Unpack: %v", err)
		}
		for _, f := range fs.Files {
			if f.Path != path {
				continue
			}
			bin, err := image.Parse(f.Data)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			prog, err := cfg.Build(bin)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			return prog
		}
		t.Fatalf("binary %s not found", path)
		return nil
	}
	path := vp.MutatedPaths[0]
	return progOf(vp.Old, path), progOf(vp.New, path)
}

func TestPairFunctionsExactAndRenamed(t *testing.T) {
	oldProg, newProg := pairPrograms(t)
	p := PairFunctions(oldProg, newProg)

	// Every stable-module function pairs with itself.
	for _, fn := range oldProg.Funcs {
		name := fn.Name
		if len(name) < 4 || name[:4] != "b00s" && name[:4] != "b00p" {
			continue
		}
		if got := p.OldToNew[name]; got != name {
			t.Errorf("stable function %s paired with %q, want itself", name, got)
		}
	}
	// The renamed module pairs across the version-suffixed names.
	for _, pair := range [][2]string{
		{"b00r1_exec", "b00r2_exec"},
		{"b00r1_handler_0", "b00r2_handler_0"},
	} {
		if got := p.OldToNew[pair[0]]; got != pair[1] {
			t.Errorf("OldToNew[%s] = %q, want %s", pair[0], got, pair[1])
		}
	}
	if p.Renamed < 2 {
		t.Errorf("Renamed = %d, want >= 2", p.Renamed)
	}
	if p.Exact <= p.Renamed {
		t.Errorf("Exact = %d, Renamed = %d: stable module should pair exactly under its own name", p.Exact, p.Renamed)
	}
}

func TestFuncDigestRelocationInvariant(t *testing.T) {
	oldProg, newProg := pairPrograms(t)
	// The renamed helper sits at the same address with the same bytes in
	// both versions — its digest must match despite the different local
	// names around it.
	oldFn, newFn := oldProg.ByName["b00r1_exec"], newProg.ByName["b00r2_exec"]
	if oldFn == nil || newFn == nil {
		t.Fatal("renamed helpers missing")
	}
	if funcDigest(oldFn) != funcDigest(newFn) {
		t.Error("renamed helper digests differ")
	}
	// Different code must not collide.
	if funcDigest(oldProg.Funcs[0]) == funcDigest(oldProg.Funcs[len(oldProg.Funcs)-1]) {
		t.Error("distinct functions share a digest")
	}
}

func TestJaccardAndRatio(t *testing.T) {
	if got := jaccard(nil, nil); got != 1 {
		t.Errorf("jaccard(nil, nil) = %v, want 1", got)
	}
	if got := jaccard([]string{"a", "a", "b"}, []string{"a", "b", "b"}); got != 0.5 {
		t.Errorf("multiset jaccard = %v, want 0.5", got)
	}
	if got := ratio(0, 0); got != 1 {
		t.Errorf("ratio(0,0) = %v, want 1", got)
	}
	if got := ratio(8, 4); got != 0.5 {
		t.Errorf("ratio(8,4) = %v, want 0.5", got)
	}
}

package diff

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"dtaint/internal/corpus"
	"dtaint/internal/firmware"
	"dtaint/internal/fleet"
	"dtaint/internal/sumstore"
)

var testSpec = corpus.VersionPairSpec{
	Binaries: 3, Mutated: 1, SharedFuncs: 10, TailFuncs: 5, Seed: 3,
}

func buildPair(t *testing.T) *corpus.VersionPair {
	t.Helper()
	vp, err := corpus.BuildVersionPair(testSpec)
	if err != nil {
		t.Fatalf("BuildVersionPair: %v", err)
	}
	return vp
}

func newCache(t *testing.T) *fleet.Cache {
	t.Helper()
	c, err := fleet.NewCache(256, "")
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	return c
}

func newStore(t *testing.T) *sumstore.Store {
	t.Helper()
	s, err := sumstore.NewStore(4096, "")
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return s
}

// TestDiffIdenticalImages is the fast path of the acceptance criteria:
// diffing an image against itself after a prior scan reports zero new
// and fixed findings and performs zero re-analyses — every pair resolves
// by hash comparison plus cache replay.
func TestDiffIdenticalImages(t *testing.T) {
	vp := buildPair(t)
	cache := newCache(t)

	// A prior nightly scan warms the report cache with the same keys the
	// diff uses.
	prior, err := fleet.ScanImage(context.Background(), vp.Old, fleet.Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatalf("ScanImage: %v", err)
	}
	rep, err := Diff(context.Background(), vp.Old, vp.Old, Options{Workers: 2, Cache: cache})
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if rep.Reanalyzed != 0 {
		t.Errorf("Reanalyzed = %d, want 0 (identical images, warm cache)", rep.Reanalyzed)
	}
	if rep.Replayed == 0 || rep.Replayed != rep.Unchanged {
		t.Errorf("Replayed = %d, Unchanged = %d; want equal and nonzero", rep.Replayed, rep.Unchanged)
	}
	if rep.NewFindings != 0 || rep.FixedFindings != 0 {
		t.Errorf("findings new=%d fixed=%d, want 0/0", rep.NewFindings, rep.FixedFindings)
	}
	if rep.Changed != 0 || rep.Added != 0 || rep.Removed != 0 || rep.Moved != 0 {
		t.Errorf("pairing = %d changed / %d added / %d removed / %d moved, want all 0",
			rep.Changed, rep.Added, rep.Removed, rep.Moved)
	}
	if rep.PersistingFindings != prior.Vulnerabilities {
		t.Errorf("PersistingFindings = %d, want the image's %d vulnerabilities",
			rep.PersistingFindings, prior.Vulnerabilities)
	}
	for _, b := range rep.Binaries {
		if b.Status != PairUnchanged || b.OldSource != SourceCache || b.NewSource != SourceCache {
			t.Errorf("%s: status=%s sources=%s/%s, want unchanged cache/cache",
				b.Path, b.Status, b.OldSource, b.NewSource)
		}
	}
}

// TestDiffVersionPair is the incremental-mode acceptance criterion: with
// one mutated binary, only it (plus the added binary) is re-analyzed,
// unchanged functions inside it replay from the summary store, and
// findings classify as new/fixed/persisting per the generator's ground
// truth — including the renamed module's finding persisting across the
// rename.
func TestDiffVersionPair(t *testing.T) {
	vp := buildPair(t)
	cache := newCache(t)
	store := newStore(t)

	if _, err := fleet.ScanImage(context.Background(), vp.Old, fleet.Options{
		Workers: 2, Cache: cache, SummaryStore: store,
	}); err != nil {
		t.Fatalf("ScanImage: %v", err)
	}
	rep, err := Diff(context.Background(), vp.Old, vp.New, Options{
		Workers: 2, Cache: cache, SummaryStore: store,
	})
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}

	// Only the mutated binary's new version and the added binary need
	// fresh analysis; everything else replays.
	if want := testSpec.Mutated + 1; rep.Reanalyzed != want {
		t.Errorf("Reanalyzed = %d, want %d", rep.Reanalyzed, want)
	}
	if rep.Failed != 0 {
		t.Fatalf("Failed = %d: %+v", rep.Failed, rep.Binaries)
	}
	if rep.Unchanged != testSpec.Binaries-testSpec.Mutated ||
		rep.Changed != testSpec.Mutated || rep.Added != 1 || rep.Removed != 1 {
		t.Errorf("pairing = %d/%d/%d/%d (unchanged/changed/added/removed)",
			rep.Unchanged, rep.Changed, rep.Added, rep.Removed)
	}
	if rep.NewFindings != vp.NewVulns || rep.FixedFindings != vp.FixedVulns ||
		rep.PersistingFindings != vp.PersistingVulns {
		t.Errorf("findings new/fixed/persisting = %d/%d/%d, want %d/%d/%d",
			rep.NewFindings, rep.FixedFindings, rep.PersistingFindings,
			vp.NewVulns, vp.FixedVulns, vp.PersistingVulns)
	}

	var changed *BinaryDiff
	for i := range rep.Binaries {
		if rep.Binaries[i].Status == PairChanged {
			changed = &rep.Binaries[i]
		}
	}
	if changed == nil {
		t.Fatal("no changed pair in report")
	}
	if changed.Path != vp.MutatedPaths[0] {
		t.Errorf("changed pair is %s, want %s", changed.Path, vp.MutatedPaths[0])
	}
	if changed.OldSource != SourceCache || changed.NewSource != SourceFresh {
		t.Errorf("changed sources = %s/%s, want cache/fresh", changed.OldSource, changed.NewSource)
	}
	// The stable module (planted functions + shared filler) replays from
	// summaries the old-image scan wrote.
	total := changed.SummaryHits + changed.SummaryMisses
	if changed.SummaryHits == 0 || total == 0 {
		t.Fatalf("summary hits/misses = %d/%d, want hits > 0", changed.SummaryHits, changed.SummaryMisses)
	}
	if rate := float64(changed.SummaryHits) / float64(total); rate < 0.5 {
		t.Errorf("summary hit rate = %.2f (%d/%d), want >= 0.5", rate, changed.SummaryHits, total)
	}
	if rep.SummaryHitRate == 0 {
		t.Error("report SummaryHitRate = 0, want > 0")
	}
	// The renamed module pairs exactly despite the rename, and its
	// finding persists with the old name recorded.
	if changed.FuncsRenamed == 0 {
		t.Errorf("FuncsRenamed = 0, want > 0 (renamed module)")
	}
	byStatus := map[FindingStatus][]FindingDiff{}
	for _, fd := range changed.Findings {
		byStatus[fd.Status] = append(byStatus[fd.Status], fd)
	}
	if len(byStatus[FindingNew]) != 1 || len(byStatus[FindingFixed]) != 1 || len(byStatus[FindingPersisting]) != 2 {
		t.Fatalf("changed pair findings new/fixed/persisting = %d/%d/%d, want 1/1/2: %+v",
			len(byStatus[FindingNew]), len(byStatus[FindingFixed]), len(byStatus[FindingPersisting]), changed.Findings)
	}
	renamed := false
	for _, fd := range byStatus[FindingPersisting] {
		if fd.OldFunc != "" {
			renamed = true
			if !strings.HasPrefix(fd.OldFunc, "b00r1") || !strings.HasPrefix(fd.Finding.SinkFunc, "b00r2") {
				t.Errorf("renamed persisting finding maps %s -> %s", fd.OldFunc, fd.Finding.SinkFunc)
			}
		}
	}
	if !renamed {
		t.Error("no persisting finding recorded a rename (OldFunc empty on all)")
	}
	// Added/removed binaries classify wholesale.
	for _, b := range rep.Binaries {
		switch b.Status {
		case PairAdded:
			if b.New == 0 || b.Fixed != 0 || b.Persisting != 0 {
				t.Errorf("added %s findings = %d/%d/%d", b.Path, b.New, b.Fixed, b.Persisting)
			}
		case PairRemoved:
			if b.Fixed == 0 || b.New != 0 || b.Persisting != 0 {
				t.Errorf("removed %s findings = %d/%d/%d", b.Path, b.New, b.Fixed, b.Persisting)
			}
		}
	}
}

// TestDiffDeterminism is the determinism contract: the report's semantic
// signature is identical for workers 1 and 8 and with the summary store
// on or off, and the full normalized report matches across worker counts
// for a fixed store configuration.
func TestDiffDeterminism(t *testing.T) {
	vp := buildPair(t)
	run := func(workers int, withStore bool) *Report {
		opts := Options{Workers: workers}
		if withStore {
			opts.SummaryStore = newStore(t)
		}
		rep, err := Diff(context.Background(), vp.Old, vp.New, opts)
		if err != nil {
			t.Fatalf("Diff(workers=%d store=%v): %v", workers, withStore, err)
		}
		return rep
	}
	base := run(1, false)
	configs := []struct {
		workers   int
		withStore bool
	}{{8, false}, {1, true}, {8, true}}
	for _, c := range configs {
		rep := run(c.workers, c.withStore)
		if rep.Signature() != base.Signature() {
			t.Errorf("signature mismatch at workers=%d store=%v", c.workers, c.withStore)
		}
	}
	// Full-report comparison (cost fields normalized) across worker
	// counts at a fixed store configuration.
	w8 := run(8, false)
	normalize := func(r *Report) *Report {
		c := *r
		c.Wall = 0
		c.Workers = 0
		c.Binaries = append([]BinaryDiff(nil), r.Binaries...)
		for i := range c.Binaries {
			c.Binaries[i].Duration = 0
		}
		return &c
	}
	if !reflect.DeepEqual(normalize(base), normalize(w8)) {
		t.Errorf("normalized reports differ between workers 1 and 8")
	}
}

// TestReportJSONRoundTrip: the wire form reproduces the report exactly.
func TestReportJSONRoundTrip(t *testing.T) {
	vp := buildPair(t)
	rep, err := Diff(context.Background(), vp.Old, vp.New, Options{Workers: 2})
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(rep, &back) {
		t.Errorf("round trip mismatch")
	}
	if back.Signature() != rep.Signature() {
		t.Errorf("signature changed across round trip")
	}
}

// TestDiffMovedBinary: identical bytes at a new rootfs path pair as
// moved, findings persisting, no re-analysis of the moved binary beyond
// its single shared unit.
func TestDiffMovedBinary(t *testing.T) {
	vp := buildPair(t)
	movedFrom := vp.UnchangedPaths[0]
	movedTo := "/usr/local/sbin/relocated"
	newImg := renamePath(t, vp.New, movedFrom, movedTo)

	rep, err := Diff(context.Background(), vp.Old, newImg, Options{Workers: 2})
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if rep.Moved != 1 {
		t.Fatalf("Moved = %d, want 1", rep.Moved)
	}
	for _, b := range rep.Binaries {
		if b.Status != PairMoved {
			continue
		}
		if b.Path != movedTo || b.OldPath != movedFrom {
			t.Errorf("moved pair = %s (from %s), want %s (from %s)", b.Path, b.OldPath, movedTo, movedFrom)
		}
		if b.New != 0 || b.Fixed != 0 || b.Persisting == 0 {
			t.Errorf("moved pair findings = %d/%d/%d, want persisting only", b.New, b.Fixed, b.Persisting)
		}
	}
}

// renamePath rewrites one rootfs path inside a packed FWIMG container.
func renamePath(t *testing.T, img []byte, from, to string) []byte {
	t.Helper()
	parsed, fs, err := firmware.Unpack(img)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	nfs := &firmware.FS{}
	for _, f := range fs.Files {
		if f.Path == from {
			f.Path = to
		}
		if err := nfs.Add(f); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	payload, err := firmware.MarshalFS(nfs)
	if err != nil {
		t.Fatalf("MarshalFS: %v", err)
	}
	for i := range parsed.Parts {
		if parsed.Parts[i].Type == firmware.PartRootFS {
			parsed.Parts[i].Data = payload
		}
	}
	out, err := firmware.Pack(parsed)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	return out
}

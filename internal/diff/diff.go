// Package diff implements differential firmware scanning: given two
// versions of a firmware image, it pairs binaries by rootfs path and
// SHA-256, replays unchanged binaries from the fleet report cache,
// re-analyzes only changed ones — inside which unchanged functions
// replay from the function-summary store — and matches findings across
// versions via taint.VulnKey plus a function pairing, so every finding
// classifies as new, fixed, or persisting.
//
// This is the "CI for firmware" workload (ROADMAP item 5): a vendor
// re-release scan whose cost is proportional to the delta, not the image
// size. The determinism contract matches the rest of the pipeline: for a
// fixed image pair and analysis options, the report's semantic content
// (Report.Signature) is identical for any worker count and with the
// summary store on or off.
package diff

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dtaint/internal/cfg"
	"dtaint/internal/dataflow"
	"dtaint/internal/firmware"
	"dtaint/internal/fleet"
	"dtaint/internal/image"
	"dtaint/internal/obs"
	"dtaint/internal/obs/events"
	"dtaint/internal/sumstore"
	"dtaint/internal/taint"
)

// Options configures a differential scan. The analysis knobs mirror
// fleet.Options so a diff shares caches — and cache keys — with ordinary
// fleet scans of the same images.
type Options struct {
	// Workers bounds how many binaries are analyzed concurrently
	// (0 = GOMAXPROCS, negative rejected).
	Workers int
	// PerBinaryTimeout caps one binary's analysis wall clock (0 = none).
	PerBinaryTimeout time.Duration
	// Analysis configures the per-binary analyzer. Parallelism 0 is set
	// to 1, as in fleet scans.
	Analysis dataflow.Options
	// FilterTag names Analysis.Filter for cache keys; caching is bypassed
	// when Analysis.Filter is non-nil and FilterTag is empty.
	FilterTag string
	// Cache, when non-nil, replays unchanged binaries' reports instead of
	// re-analyzing them — the diff's headline saving. The keys are the
	// same as fleet scans', so a prior nightly scan warms the diff.
	Cache *fleet.Cache
	// SummaryStore, when non-nil, replays unchanged *functions* inside
	// changed binaries. The diff analyzes all old-version binaries before
	// new-version-only ones, so the new side hits summaries the old side
	// just wrote even on a cold store.
	SummaryStore *sumstore.Store
	// PathFilter restricts candidates to rootfs paths for which it
	// returns true (applied to both images).
	PathFilter func(path string) bool
	// Progress, when non-nil, is called after each analysis unit
	// completes with done and total counts. Calls are serialized.
	Progress func(done, total int)
}

// binPair is one rootfs binary tracked across the two versions.
type binPair struct {
	path    string // new-image path (old-image path for removed)
	oldPath string // set when it differs from path (moved)
	status  PairStatus
	oldFile *firmware.File
	newFile *firmware.File
	oldSHA  string
	newSHA  string
}

// unit is one distinct binary content that needs an analysis. Pairs
// sharing bytes share a unit.
type unit struct {
	sha     string
	file    firmware.File
	oldSide bool // needed by the old image (analyzed in the first wave)
}

// unitResult is a unit's outcome.
type unitResult struct {
	an  *fleet.BinaryAnalysis
	src Source
	err error
	dur time.Duration
}

// Diff scans the delta between two firmware images. It returns an error
// only when an image fails to unpack or the options are invalid;
// per-binary analysis failures are embedded in the report.
func Diff(ctx context.Context, oldData, newData []byte, opts Options) (*Report, error) {
	if opts.Workers < 0 {
		return nil, fleet.ErrBadWorkers
	}
	if opts.Workers == 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Analysis.Parallelism == 0 {
		opts.Analysis.Parallelism = 1
	}
	if opts.SummaryStore != nil {
		opts.Analysis.SummaryStore = opts.SummaryStore
	}
	start := time.Now()

	diffSpan := opts.Analysis.Tracer.Start(opts.Analysis.ParentSpan, "diff-images")
	opts.Analysis.ParentSpan = diffSpan
	defer diffSpan.End()

	st := opts.Analysis.StartStage("unpack-images",
		obs.KV("oldBytes", len(oldData)), obs.KV("newBytes", len(newData)))
	oldImg, oldBins, err := unpackCandidates(oldData, opts)
	if err != nil {
		st.End()
		return nil, fmt.Errorf("diff: old image: %w", err)
	}
	newImg, newBins, err := unpackCandidates(newData, opts)
	if err != nil {
		st.End()
		return nil, fmt.Errorf("diff: new image: %w", err)
	}
	st.End("oldCandidates", len(oldBins), "newCandidates", len(newBins))
	diffSpan.SetAttr("product", newImg.Header.Product)

	st = opts.Analysis.StartStage("pair-binaries")
	pairs := pairBinaries(oldBins, newBins)
	units, order := planUnits(pairs)
	st.End("pairs", len(pairs), "units", len(units))

	st = opts.Analysis.StartStage("analyze-units", obs.KV("units", len(units)))
	results := executeUnits(ctx, units, order, opts)
	st.End()

	rep := &Report{
		Old: identityOf(oldImg.Header.Vendor, oldImg.Header.Product,
			oldImg.Header.Version, oldImg.Header.Year, oldData, len(oldBins)),
		New: identityOf(newImg.Header.Vendor, newImg.Header.Product,
			newImg.Header.Version, newImg.Header.Year, newData, len(newBins)),
		Workers: opts.Workers,
	}
	for _, res := range results {
		switch res.src {
		case SourceCache:
			rep.Replayed++
		case SourceFresh:
			rep.Reanalyzed++
		}
	}
	for _, p := range pairs {
		rep.Binaries = append(rep.Binaries, assemblePair(p, results, opts))
	}
	rep.aggregate()
	rep.Wall = time.Since(start)
	if opts.Cache != nil {
		rep.Cache = opts.Cache.Stats()
	}
	recordDiffMetrics(opts.Analysis.Metrics, rep)
	if opts.Analysis.Log != nil {
		opts.Analysis.Log.Info("diff-images done",
			"unchanged", rep.Unchanged, "changed", rep.Changed,
			"added", rep.Added, "removed", rep.Removed,
			"replayed", rep.Replayed, "reanalyzed", rep.Reanalyzed,
			"new", rep.NewFindings, "fixed", rep.FixedFindings,
			"persisting", rep.PersistingFindings,
			"seconds", rep.Wall.Seconds())
	}
	return rep, nil
}

// unpackCandidates unpacks one image and collects its FWELF candidates
// in rootfs path order.
func unpackCandidates(data []byte, opts Options) (*firmware.Image, []firmware.File, error) {
	img, fs, err := firmware.Unpack(data)
	if err != nil {
		return nil, nil, err
	}
	var out []firmware.File
	for _, f := range fs.Files {
		if !bytes.HasPrefix(f.Data, image.Magic[:]) {
			continue
		}
		if opts.PathFilter != nil && !opts.PathFilter(f.Path) {
			continue
		}
		out = append(out, f)
	}
	return img, out, nil
}

// pairBinaries matches the two candidate lists: by path first, then
// leftover added/removed entries with identical bytes become moved
// pairs. The result is sorted by path.
func pairBinaries(oldBins, newBins []firmware.File) []*binPair {
	oldByPath := make(map[string]*firmware.File, len(oldBins))
	for i := range oldBins {
		oldByPath[oldBins[i].Path] = &oldBins[i]
	}
	newByPath := make(map[string]*firmware.File, len(newBins))
	for i := range newBins {
		newByPath[newBins[i].Path] = &newBins[i]
	}
	paths := make([]string, 0, len(oldByPath)+len(newByPath))
	for _, f := range oldBins {
		paths = append(paths, f.Path)
	}
	for _, f := range newBins {
		if _, ok := oldByPath[f.Path]; !ok {
			paths = append(paths, f.Path)
		}
	}
	sort.Strings(paths)

	shaOf := func(f *firmware.File) string {
		sum := sha256.Sum256(f.Data)
		return hex.EncodeToString(sum[:])
	}
	var pairs []*binPair
	for _, path := range paths {
		o, n := oldByPath[path], newByPath[path]
		p := &binPair{path: path, oldFile: o, newFile: n}
		switch {
		case o != nil && n != nil:
			p.oldSHA, p.newSHA = shaOf(o), shaOf(n)
			if p.oldSHA == p.newSHA {
				p.status = PairUnchanged
			} else {
				p.status = PairChanged
			}
		case o != nil:
			p.oldSHA = shaOf(o)
			p.status = PairRemoved
		default:
			p.newSHA = shaOf(n)
			p.status = PairAdded
		}
		pairs = append(pairs, p)
	}

	// Moved detection: an added binary with the exact bytes of a removed
	// one is the same binary at a new path. Matching is by path order on
	// both sides.
	removedBySHA := make(map[string][]*binPair)
	for _, p := range pairs {
		if p.status == PairRemoved {
			removedBySHA[p.oldSHA] = append(removedBySHA[p.oldSHA], p)
		}
	}
	var out []*binPair
	claimed := make(map[*binPair]bool)
	for _, p := range pairs {
		if p.status == PairAdded {
			if cands := removedBySHA[p.newSHA]; len(cands) > 0 {
				rm := cands[0]
				removedBySHA[p.newSHA] = cands[1:]
				claimed[rm] = true
				p.status = PairMoved
				p.oldPath = rm.path
				p.oldFile = rm.oldFile
				p.oldSHA = rm.oldSHA
			}
		}
	}
	for _, p := range pairs {
		if !claimed[p] {
			out = append(out, p)
		}
	}
	return out
}

// planUnits deduplicates the pairs' analysis needs by content hash.
// order lists the unit keys in first-need (path) order; units needed by
// the old image run in the first wave so a changed binary's new version
// finds the old version's function summaries already in the store.
func planUnits(pairs []*binPair) (map[string]*unit, []string) {
	units := make(map[string]*unit)
	var order []string
	add := func(sha string, f *firmware.File, oldSide bool) {
		if sha == "" || f == nil {
			return
		}
		if u, ok := units[sha]; ok {
			u.oldSide = u.oldSide || oldSide
			return
		}
		units[sha] = &unit{sha: sha, file: *f, oldSide: oldSide}
		order = append(order, sha)
	}
	for _, p := range pairs {
		switch p.status {
		case PairUnchanged, PairMoved:
			add(p.oldSHA, p.oldFile, true)
		case PairChanged:
			add(p.oldSHA, p.oldFile, true)
			add(p.newSHA, p.newFile, false)
		case PairRemoved:
			add(p.oldSHA, p.oldFile, true)
		case PairAdded:
			add(p.newSHA, p.newFile, false)
		}
	}
	return units, order
}

// executeUnits runs the analysis plan: the old-image wave, then the
// new-only wave, each over a bounded worker pool.
func executeUnits(ctx context.Context, units map[string]*unit, order []string, opts Options) map[string]unitResult {
	var waves [2][]*unit
	for _, sha := range order {
		u := units[sha]
		if u.oldSide {
			waves[0] = append(waves[0], u)
		} else {
			waves[1] = append(waves[1], u)
		}
	}
	results := make(map[string]unitResult, len(units))
	var mu sync.Mutex
	done, total := 0, len(units)
	for _, wave := range waves {
		if len(wave) == 0 {
			continue
		}
		workers := opts.Workers
		if workers > len(wave) {
			workers = len(wave)
		}
		jobs := make(chan *unit)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range jobs {
					res := analyzeUnit(ctx, u.file, opts)
					mu.Lock()
					results[u.sha] = res
					done++
					n := done
					if opts.Progress != nil {
						opts.Progress(n, total)
					}
					mu.Unlock()
					// n is mutex-ordered (unique per unit), keeping the
					// progress event multiset worker-count independent.
					opts.Analysis.Events.Progress("units", n, total)
				}
			}()
		}
		for _, u := range wave {
			jobs <- u
		}
		close(jobs)
		wg.Wait()
	}
	return results
}

// analyzeUnit produces one distinct binary's analysis: report-cache
// lookup first, then a fresh analysis under panic isolation and the
// per-binary deadline — the same discipline as fleet.ScanImage.
func analyzeUnit(ctx context.Context, f firmware.File, opts Options) (ur unitResult) {
	if err := ctx.Err(); err != nil {
		return unitResult{src: SourceNone, err: errors.New("diff cancelled before analysis")}
	}
	// A scan-binary span per unit gives diff jobs the same binary.start/
	// binary.done event stream as fleet scans; the per-unit emitter scope
	// stamps the path on every event the analysis emits.
	span := opts.Analysis.Tracer.Start(opts.Analysis.ParentSpan, "scan-binary",
		obs.KV("path", f.Path))
	opts.Analysis.ParentSpan = span
	opts.Analysis.Events = opts.Analysis.Events.WithPath(f.Path)
	defer func() {
		span.SetAttr("status", string(ur.src))
		span.End()
	}()
	cacheable := opts.Cache != nil && (opts.Analysis.Filter == nil || opts.FilterTag != "")
	var key string
	if cacheable {
		key = fleet.Key(f.Data, fleet.Fingerprint(opts.Analysis, opts.FilterTag))
		if an, ok := opts.Cache.Get(key); ok {
			opts.Analysis.Events.Emit(events.ScanEvent{
				Type:  events.TypeCacheHit,
				Attrs: map[string]any{"sha256": fmt.Sprintf("%x", sha256.Sum256(f.Data))},
			})
			return unitResult{an: an, src: SourceCache}
		}
	}
	start := time.Now()
	type outcome struct {
		an  *fleet.BinaryAnalysis
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("analysis panicked: %v", r)}
			}
		}()
		an, err := fleet.AnalyzeBinary(f, opts.Analysis)
		ch <- outcome{an: an, err: err}
	}()
	var timeout <-chan time.Time
	if opts.PerBinaryTimeout > 0 {
		t := time.NewTimer(opts.PerBinaryTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case o := <-ch:
		if o.err != nil {
			return unitResult{src: SourceNone, err: o.err, dur: time.Since(start)}
		}
		if key != "" {
			opts.Cache.Put(key, o.an)
		}
		return unitResult{an: o.an, src: SourceFresh, dur: time.Since(start)}
	case <-timeout:
		return unitResult{src: SourceNone,
			err: fmt.Errorf("analysis timed out after %s", opts.PerBinaryTimeout), dur: time.Since(start)}
	case <-ctx.Done():
		return unitResult{src: SourceNone, err: errors.New("diff cancelled"), dur: time.Since(start)}
	}
}

// assemblePair builds one pair's report entry, classifying its findings
// across versions.
func assemblePair(p *binPair, results map[string]unitResult, opts Options) BinaryDiff {
	bd := BinaryDiff{
		Path: p.path, OldPath: p.oldPath, Status: p.status,
		OldSHA256: p.oldSHA, NewSHA256: p.newSHA,
	}
	oldRes, newRes := results[p.oldSHA], results[p.newSHA]
	attribute := func(res unitResult) {
		bd.Duration += res.dur
		if res.src == SourceFresh && res.an != nil {
			bd.SummaryHits += res.an.SummaryHits
			bd.SummaryMisses += res.an.SummaryMisses
		}
	}

	switch p.status {
	case PairUnchanged, PairMoved:
		// One shared analysis serves both sides.
		res := results[p.oldSHA]
		bd.OldSource, bd.NewSource = res.src, res.src
		attribute(res)
		if res.err != nil {
			bd.Error = res.err.Error()
			return bd
		}
		bd.Findings = wholesale(res.an, FindingPersisting)
	case PairRemoved:
		bd.OldSource = oldRes.src
		attribute(oldRes)
		if oldRes.err != nil {
			bd.Error = oldRes.err.Error()
			return bd
		}
		bd.Findings = wholesale(oldRes.an, FindingFixed)
	case PairAdded:
		bd.NewSource = newRes.src
		attribute(newRes)
		if newRes.err != nil {
			bd.Error = newRes.err.Error()
			return bd
		}
		bd.Findings = wholesale(newRes.an, FindingNew)
	case PairChanged:
		bd.OldSource, bd.NewSource = oldRes.src, newRes.src
		attribute(oldRes)
		attribute(newRes)
		if oldRes.err != nil || newRes.err != nil {
			bd.Error = joinErrs(oldRes.err, newRes.err)
			return bd
		}
		classifyChanged(&bd, p, oldRes.an, newRes.an)
	}
	sortFindingDiffs(bd.Findings)
	for _, fd := range bd.Findings {
		switch fd.Status {
		case FindingNew:
			bd.New++
		case FindingFixed:
			bd.Fixed++
		case FindingPersisting:
			bd.Persisting++
		}
	}
	return bd
}

// classifyChanged matches a changed pair's findings across versions: the
// function pairing maps old function names onto new ones, and findings
// compare on a relocation-tolerant key (mapped function, sink, sink
// offset within the function, class).
func classifyChanged(bd *BinaryDiff, p *binPair, oldAn, newAn *fleet.BinaryAnalysis) {
	oldProg := buildProgram(p.oldFile)
	newProg := buildProgram(p.newFile)
	pairing := newPairing()
	if oldProg != nil && newProg != nil {
		pairing = PairFunctions(oldProg, newProg)
		bd.FuncsTotal = len(newProg.Funcs)
		bd.FuncsExact = pairing.Exact
		bd.FuncsRenamed = pairing.Renamed
		bd.FuncsSimilar = pairing.Similar
	}

	oldGroups := vulnGroups(oldAn)
	newGroups := vulnGroups(newAn)
	oldByCross := make(map[string]vulnGroup, len(oldGroups))
	for _, g := range oldGroups {
		oldByCross[crossKey(g.rep, oldProg, pairing.OldToNew)] = g
	}
	for _, g := range newGroups {
		ck := crossKey(g.rep, newProg, nil)
		if og, ok := oldByCross[ck]; ok {
			fd := FindingDiff{Status: FindingPersisting, Finding: g.rep, Paths: g.paths}
			if og.rep.SinkFunc != g.rep.SinkFunc {
				fd.OldFunc = og.rep.SinkFunc
			}
			bd.Findings = append(bd.Findings, fd)
			delete(oldByCross, ck)
			continue
		}
		bd.Findings = append(bd.Findings, FindingDiff{Status: FindingNew, Finding: g.rep, Paths: g.paths})
	}
	// Old findings with no cross-version match are fixed; iterate the
	// deterministic group order, not the map.
	for _, g := range oldGroups {
		if _, alive := oldByCross[crossKey(g.rep, oldProg, pairing.OldToNew)]; alive {
			bd.Findings = append(bd.Findings, FindingDiff{Status: FindingFixed, Finding: g.rep, Paths: g.paths})
		}
	}
}

// buildProgram recovers a binary's CFG for pairing; nil when the binary
// does not parse (classification then falls back to name identity).
func buildProgram(f *firmware.File) *cfg.Program {
	if f == nil {
		return nil
	}
	bin, err := image.Parse(f.Data)
	if err != nil {
		return nil
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		return nil
	}
	return prog
}

// vulnGroup is one deduplicated vulnerability: its representative
// finding and the number of vulnerable paths sharing the key.
type vulnGroup struct {
	rep   fleet.Finding
	paths int
}

// vulnGroups deduplicates an analysis's unsanitized findings by
// taint.VulnKey, in first-occurrence order.
func vulnGroups(an *fleet.BinaryAnalysis) []vulnGroup {
	if an == nil {
		return nil
	}
	idx := make(map[string]int)
	var out []vulnGroup
	for _, f := range an.Findings {
		if f.Sanitized {
			continue
		}
		k := f.Key()
		if i, ok := idx[k]; ok {
			out[i].paths++
			continue
		}
		idx[k] = len(out)
		out = append(out, vulnGroup{rep: f, paths: 1})
	}
	return out
}

// crossKey is the cross-version identity of a finding: the containing
// function's name (mapped through the pairing for the old side), the
// sink, the sink's offset within the function (tolerating whole-function
// relocation), and the class. Falls back to the absolute address when
// the function is unknown to the CFG.
func crossKey(f fleet.Finding, prog *cfg.Program, oldToNew map[string]string) string {
	name := f.SinkFunc
	if mapped, ok := oldToNew[name]; ok {
		name = mapped
	}
	addr := f.SinkAddr
	if prog != nil {
		if fn := prog.ByName[f.SinkFunc]; fn != nil && f.SinkAddr >= fn.Addr {
			addr = f.SinkAddr - fn.Addr
		}
	}
	return taint.VulnKey(name, f.Sink, addr, f.Class)
}

// wholesale classifies every vulnerability of one analysis with a single
// status (unchanged/added/removed binaries).
func wholesale(an *fleet.BinaryAnalysis, status FindingStatus) []FindingDiff {
	var out []FindingDiff
	for _, g := range vulnGroups(an) {
		out = append(out, FindingDiff{Status: status, Finding: g.rep, Paths: g.paths})
	}
	return out
}

func joinErrs(errs ...error) string {
	var parts []string
	for _, err := range errs {
		if err != nil {
			parts = append(parts, err.Error())
		}
	}
	return joinWith(parts, "; ")
}

func joinWith(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

// recordDiffMetrics publishes one finished diff's counters. Every
// registry call is nil-safe on reg.
func recordDiffMetrics(reg *obs.Registry, rep *Report) {
	reg.Counter("dtaint_diff_images_total",
		"Firmware image pairs diffed.", nil).Inc()
	reg.Counter("dtaint_diff_binaries_replayed_total",
		"Distinct binaries a diff served from the report cache.", nil).Add(uint64(rep.Replayed))
	reg.Counter("dtaint_diff_binaries_reanalyzed_total",
		"Distinct binaries a diff analyzed fresh.", nil).Add(uint64(rep.Reanalyzed))
	for _, fc := range []struct {
		status string
		n      int
	}{
		{"new", rep.NewFindings}, {"fixed", rep.FixedFindings},
		{"persisting", rep.PersistingFindings},
	} {
		if fc.n > 0 {
			reg.Counter("dtaint_diff_findings_total",
				"Findings classified by differential scans, by cross-version status.",
				obs.Labels{"status": fc.status}).Add(uint64(fc.n))
		}
	}
}

package diff

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"dtaint/internal/fleet"
)

// PairStatus classifies how one rootfs binary relates across the two
// image versions.
type PairStatus string

// Binary pairing outcomes.
const (
	// PairUnchanged: same path, same SHA-256. Never re-analyzed.
	PairUnchanged PairStatus = "unchanged"
	// PairChanged: same path, different bytes.
	PairChanged PairStatus = "changed"
	// PairAdded: present only in the new image.
	PairAdded PairStatus = "added"
	// PairRemoved: present only in the old image.
	PairRemoved PairStatus = "removed"
	// PairMoved: identical bytes at a different rootfs path. Treated like
	// unchanged (findings persist; never re-analyzed).
	PairMoved PairStatus = "moved"
)

// FindingStatus classifies one finding across versions.
type FindingStatus string

// Cross-version finding outcomes.
const (
	FindingNew        FindingStatus = "new"
	FindingFixed      FindingStatus = "fixed"
	FindingPersisting FindingStatus = "persisting"
)

// Source records where one side's analysis came from in this run.
type Source string

// Analysis provenance.
const (
	// SourceCache: replayed from the fleet report cache.
	SourceCache Source = "cache"
	// SourceFresh: analyzed in this run.
	SourceFresh Source = "fresh"
	// SourceNone: unavailable (analysis failed or scan cancelled).
	SourceNone Source = "none"
)

// FindingDiff is one deduplicated vulnerability with its cross-version
// classification. New and persisting findings carry the new version's
// finding; fixed findings carry the old version's (it no longer exists
// in the new image).
type FindingDiff struct {
	Status  FindingStatus `json:"status"`
	Finding fleet.Finding `json:"finding"`
	// OldFunc is set on persisting findings whose containing function was
	// renamed between versions: the old version's name for the function
	// the pairing matched to Finding.SinkFunc.
	OldFunc string `json:"oldFunc,omitempty"`
	// Paths is the number of vulnerable paths sharing this finding's key.
	Paths int `json:"paths"`
}

// BinaryDiff is one binary pair's entry in the Report.
type BinaryDiff struct {
	// Path is the rootfs path in the new image (old image for removed
	// binaries).
	Path string `json:"path"`
	// OldPath is set when it differs from Path (moved binaries).
	OldPath   string     `json:"oldPath,omitempty"`
	Status    PairStatus `json:"status"`
	OldSHA256 string     `json:"oldSha256,omitempty"`
	NewSHA256 string     `json:"newSha256,omitempty"`
	// OldSource/NewSource record each side's analysis provenance.
	// Unchanged and moved pairs share one analysis, so both sides report
	// the same source.
	OldSource Source `json:"oldSource,omitempty"`
	NewSource Source `json:"newSource,omitempty"`
	// Error describes a failed analysis; findings are not classified for
	// a pair with an error.
	Error string `json:"error,omitempty"`
	// Duration is this run's fresh-analysis wall clock spent on the pair
	// (zero when both sides replayed).
	Duration time.Duration `json:"durationNanos"`

	// Function pairing statistics (changed pairs only). FuncsExact counts
	// pairs matched on identical code bytes (FuncsRenamed of which under
	// a different name); FuncsSimilar counts pairs recovered by the
	// layout/callgraph similarity stage.
	FuncsTotal   int `json:"funcsTotal,omitempty"`
	FuncsExact   int `json:"funcsExact,omitempty"`
	FuncsRenamed int `json:"funcsRenamed,omitempty"`
	FuncsSimilar int `json:"funcsSimilar,omitempty"`

	// SummaryHits/SummaryMisses attribute the new side's analysis cost to
	// the function-summary store: hits are units replayed from summaries
	// the old version (or a prior scan) wrote. Zero when the new side
	// replayed from the report cache or the run had no store.
	SummaryHits   int `json:"summaryHits,omitempty"`
	SummaryMisses int `json:"summaryMisses,omitempty"`

	// New/Fixed/Persisting count this pair's deduplicated findings by
	// cross-version status.
	New        int `json:"new"`
	Fixed      int `json:"fixed"`
	Persisting int `json:"persisting"`
	// Findings lists them, sorted by status (new, fixed, persisting) then
	// finding key.
	Findings []FindingDiff `json:"findings,omitempty"`
}

// ImageIdentity names one side of the diff.
type ImageIdentity struct {
	Vendor     string `json:"vendor"`
	Product    string `json:"product"`
	Version    string `json:"version"`
	Year       int    `json:"year"`
	SHA256     string `json:"sha256"`
	Candidates int    `json:"candidates"`
}

// Report is the result of diffing two firmware images.
type Report struct {
	Old ImageIdentity `json:"old"`
	New ImageIdentity `json:"new"`

	// Pairing totals.
	Unchanged int `json:"unchanged"`
	Changed   int `json:"changed"`
	Added     int `json:"added"`
	Removed   int `json:"removed"`
	Moved     int `json:"moved"`

	// Cost attribution: of the distinct binaries this diff needed
	// analyses for, how many replayed from the report cache and how many
	// were analyzed fresh in this run. Unchanged pairs need one analysis,
	// changed pairs two; binaries sharing bytes share one.
	Replayed   int `json:"replayed"`
	Reanalyzed int `json:"reanalyzed"`
	Failed     int `json:"failed"`
	// SummaryHitRate is hits/(hits+misses) over this run's fresh analyses
	// (zero when nothing was fresh or the run had no summary store).
	SummaryHitRate float64 `json:"summaryHitRate"`

	// Finding totals across all pairs.
	NewFindings        int `json:"newFindings"`
	FixedFindings      int `json:"fixedFindings"`
	PersistingFindings int `json:"persistingFindings"`

	// Binaries lists every pair, sorted by Path.
	Binaries []BinaryDiff `json:"binaries"`

	// Workers is the analysis pool size; Wall the whole-diff wall clock.
	Workers int           `json:"workers"`
	Wall    time.Duration `json:"wallNanos"`
	// Cache snapshots the report cache's lifetime counters when the diff
	// finished (zero value when uncached).
	Cache fleet.CacheStats `json:"cache"`
}

// aggregate fills the report's totals from its Binaries list. Totals are
// sums over the path-ordered pair list, so the result is independent of
// analysis scheduling.
func (r *Report) aggregate() {
	hits, misses := 0, 0
	for i := range r.Binaries {
		b := &r.Binaries[i]
		switch b.Status {
		case PairUnchanged:
			r.Unchanged++
		case PairChanged:
			r.Changed++
		case PairAdded:
			r.Added++
		case PairRemoved:
			r.Removed++
		case PairMoved:
			r.Moved++
		}
		if b.Error != "" {
			r.Failed++
		}
		r.NewFindings += b.New
		r.FixedFindings += b.Fixed
		r.PersistingFindings += b.Persisting
		hits += b.SummaryHits
		misses += b.SummaryMisses
	}
	if hits+misses > 0 {
		r.SummaryHitRate = float64(hits) / float64(hits+misses)
	}
}

// sigReport mirrors Report restricted to semantic content. Run-cost
// fields — durations, wall clock, cache counters, replay-vs-fresh
// provenance, and summary-store hit attribution — are excluded: they
// legitimately vary with the cache and store configuration while the
// diff's *meaning* (pairing, hashes, finding classifications) may not.
type sigReport struct {
	Old, New  ImageIdentity
	Pairs     []sigPair
	NewF      int
	FixedF    int
	PersistF  int
	Unchanged int
	Changed   int
	Added     int
	Removed   int
	Moved     int
}

type sigPair struct {
	Path, OldPath    string
	Status           PairStatus
	OldSHA, NewSHA   string
	Error            string
	Total, Exact     int
	Renamed, Similar int
	Findings         []FindingDiff
}

// Signature canonicalizes the report's semantic content: the determinism
// contract is that two diffs of the same image pair with the same
// analysis options produce equal signatures for any worker count and
// with the summary store on or off.
func (r *Report) Signature() string {
	s := sigReport{
		Old: r.Old, New: r.New,
		NewF: r.NewFindings, FixedF: r.FixedFindings, PersistF: r.PersistingFindings,
		Unchanged: r.Unchanged, Changed: r.Changed,
		Added: r.Added, Removed: r.Removed, Moved: r.Moved,
	}
	for _, b := range r.Binaries {
		s.Pairs = append(s.Pairs, sigPair{
			Path: b.Path, OldPath: b.OldPath, Status: b.Status,
			OldSHA: b.OldSHA256, NewSHA: b.NewSHA256, Error: b.Error,
			Total: b.FuncsTotal, Exact: b.FuncsExact,
			Renamed: b.FuncsRenamed, Similar: b.FuncsSimilar,
			Findings: b.Findings,
		})
	}
	raw, err := json.Marshal(s)
	if err != nil {
		// Impossible for the field types above; keep the signature total.
		return "sig-error:" + err.Error()
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// sortFindingDiffs orders a pair's findings: new, fixed, persisting,
// then by finding key within a status.
func sortFindingDiffs(fds []FindingDiff) {
	rank := map[FindingStatus]int{FindingNew: 0, FindingFixed: 1, FindingPersisting: 2}
	sort.Slice(fds, func(i, j int) bool {
		if rank[fds[i].Status] != rank[fds[j].Status] {
			return rank[fds[i].Status] < rank[fds[j].Status]
		}
		return fds[i].Finding.Key() < fds[j].Finding.Key()
	})
}

// identityOf fills an ImageIdentity from a parsed header and raw bytes.
func identityOf(vendor, product, version string, year int, raw []byte, candidates int) ImageIdentity {
	sum := sha256.Sum256(raw)
	return ImageIdentity{
		Vendor: vendor, Product: product, Version: version, Year: year,
		SHA256:     hex.EncodeToString(sum[:]),
		Candidates: candidates,
	}
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("%s %s -> %s: %d unchanged, %d changed, %d added, %d removed, %d moved; findings %d new / %d fixed / %d persisting",
		r.New.Product, r.Old.Version, r.New.Version,
		r.Unchanged, r.Changed, r.Added, r.Removed, r.Moved,
		r.NewFindings, r.FixedFindings, r.PersistingFindings)
}

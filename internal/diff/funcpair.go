// funcpair.go pairs functions across two versions of a binary. The
// pairing drives cross-version finding identity: a finding persists when
// the new version has "the same function" containing "the same sink",
// even if the vendor renamed the function or the linker moved it.
//
// Two stages:
//
//  1. Exact: functions whose code bytes match — a canonical digest over
//     block shapes and instruction fields, with block starts and direct
//     branch targets expressed relative to the function entry, so a
//     function that merely moved or was renamed still matches. Within a
//     digest group, same-named functions pair first, then the leftovers
//     zip in address order.
//  2. Similarity (EmTaint-style function identity): leftover functions
//     score against each other on callgraph identity (callee/caller name
//     multisets, mapped through already-established pairs), CFG shape,
//     and structsim data-structure layouts; pairs above a threshold are
//     taken greedily in deterministic order.
package diff

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"

	"dtaint/internal/cfg"
	"dtaint/internal/structsim"
	"dtaint/internal/symexec"
	"dtaint/internal/taint"
)

// similarityThreshold is the minimum stage-2 score for a pair.
const similarityThreshold = 0.55

// similarityBudget caps the stage-2 candidate cross product; beyond it
// the leftover functions stay unpaired (their findings classify as
// fixed/new, which is the conservative direction).
const similarityBudget = 4096

// Pairing maps function names across versions.
type Pairing struct {
	OldToNew map[string]string
	NewToOld map[string]string
	// Exact counts stage-1 pairs; Renamed those among them whose names
	// differ; Similar counts stage-2 pairs.
	Exact   int
	Renamed int
	Similar int
}

func newPairing() *Pairing {
	return &Pairing{OldToNew: make(map[string]string), NewToOld: make(map[string]string)}
}

func (p *Pairing) add(oldName, newName string) {
	p.OldToNew[oldName] = newName
	p.NewToOld[newName] = oldName
}

// PairFunctions pairs oldProg's functions with newProg's.
func PairFunctions(oldProg, newProg *cfg.Program) *Pairing {
	p := newPairing()

	// Stage 1: exact code digests.
	oldByDigest := digestGroups(oldProg)
	newByDigest := digestGroups(newProg)
	digests := make([]string, 0, len(newByDigest))
	for d := range newByDigest {
		if _, ok := oldByDigest[d]; ok {
			digests = append(digests, d)
		}
	}
	sort.Strings(digests)
	for _, d := range digests {
		olds, news := oldByDigest[d], newByDigest[d]
		// Same-name matches within the group first.
		newSet := make(map[string]bool, len(news))
		for _, n := range news {
			newSet[n] = true
		}
		var oldLeft []string
		for _, o := range olds {
			if newSet[o] {
				p.add(o, o)
				p.Exact++
				newSet[o] = false
				continue
			}
			oldLeft = append(oldLeft, o)
		}
		var newLeft []string
		for _, n := range news {
			if newSet[n] {
				newLeft = append(newLeft, n)
			}
		}
		// Remaining identical-code functions zip in address order (the
		// group slices are built in address order).
		for i := 0; i < len(oldLeft) && i < len(newLeft); i++ {
			p.add(oldLeft[i], newLeft[i])
			p.Exact++
			p.Renamed++
		}
	}

	// Stage 2: similarity over the leftovers.
	oldLeft := unpaired(oldProg, p.OldToNew)
	newLeft := unpaired(newProg, p.NewToOld)
	if len(oldLeft) == 0 || len(newLeft) == 0 ||
		len(oldLeft)*len(newLeft) > similarityBudget {
		return p
	}
	oldLay := layoutIndex(oldProg, oldLeft)
	newLay := layoutIndex(newProg, newLeft)
	type cand struct {
		score float64
		o, n  string
	}
	var cands []cand
	for _, o := range oldLeft {
		for _, n := range newLeft {
			s := similarityScore(oldProg, newProg, p, o, n, oldLay[o], newLay[n])
			if s >= similarityThreshold {
				cands = append(cands, cand{s, o, n})
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if cands[i].o != cands[j].o {
			return cands[i].o < cands[j].o
		}
		return cands[i].n < cands[j].n
	})
	usedOld := make(map[string]bool)
	usedNew := make(map[string]bool)
	for _, c := range cands {
		if usedOld[c.o] || usedNew[c.n] {
			continue
		}
		usedOld[c.o], usedNew[c.n] = true, true
		p.add(c.o, c.n)
		p.Similar++
	}
	return p
}

// funcDigest canonicalizes a function's code. Block starts and direct
// control-flow targets are taken relative to the function entry, so the
// digest is invariant under whole-function relocation. Import calls fold
// in the callee name (imports keep their names across versions); local
// calls fold in the relative target, not the callee name, so a function
// whose callees were merely renamed still matches exactly.
func funcDigest(fn *cfg.Function) string {
	h := sha256.New()
	var buf [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[:4], v)
		h.Write(buf[:4])
	}
	calleeAt := make(map[uint32]string, len(fn.Calls))
	for _, c := range fn.Calls {
		if c.Kind == cfg.CallImport {
			calleeAt[c.Addr] = c.Callee
		}
	}
	put32(uint32(len(fn.Blocks)))
	for _, b := range fn.Blocks {
		put32(b.Start - fn.Addr)
		put32(uint32(len(b.Insts)))
		for _, in := range b.Insts {
			r := in.Raw
			put32(uint32(r.Op)<<16 | uint32(r.Cond)<<8 | uint32(r.Rd))
			put32(uint32(r.Rn)<<16 | uint32(r.Rm))
			if r.HasImm {
				binary.LittleEndian.PutUint64(buf[:], uint64(int64(r.Imm)))
				h.Write(buf[:])
			}
			if name, ok := calleeAt[in.Addr]; ok {
				h.Write([]byte(name))
			} else if r.Target != 0 {
				put32(r.Target - fn.Addr)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// digestGroups groups a program's function names by code digest, each
// group in address order (Program.Funcs order).
func digestGroups(prog *cfg.Program) map[string][]string {
	out := make(map[string][]string, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		d := funcDigest(fn)
		out[d] = append(out[d], fn.Name)
	}
	return out
}

// unpaired returns the program's function names absent from the pairing
// map, in address order.
func unpaired(prog *cfg.Program, paired map[string]string) []string {
	var out []string
	for _, fn := range prog.Funcs {
		if _, ok := paired[fn.Name]; !ok {
			out = append(out, fn.Name)
		}
	}
	return out
}

// layoutIndex runs the per-function symbolic execution phase on the
// named functions and keeps their data-structure layouts for the
// similarity stage.
func layoutIndex(prog *cfg.Program, names []string) map[string][]*structsim.Layout {
	out := make(map[string][]*structsim.Layout, len(names))
	tracker := taint.NewTracker()
	opts := symexec.Options{Prototypes: taint.Prototypes()}
	for _, name := range names {
		fn := prog.ByName[name]
		if fn == nil || len(fn.Blocks) == 0 {
			continue
		}
		tracker.BeginFunction(name)
		sum := symexec.Analyze(fn, prog.Binary, tracker, opts)
		if sum == nil {
			continue
		}
		if ls := structsim.BuildLayouts(sum); len(ls) > 0 {
			out[name] = ls
		}
	}
	return out
}

// similarityScore combines callgraph identity, CFG shape, and structure
// layouts into one [0,1] score.
func similarityScore(oldProg, newProg *cfg.Program, p *Pairing, o, n string, oldLay, newLay []*structsim.Layout) float64 {
	oldFn, newFn := oldProg.ByName[o], newProg.ByName[n]
	if oldFn == nil || newFn == nil {
		return 0
	}
	// Callgraph identity: callee and caller name multisets, with old-side
	// local names mapped through the established pairing so renamed
	// neighbors still align. Imports keep their names.
	cg := (jaccard(mapNames(callNames(oldProg, oldFn), p.OldToNew), callNames(newProg, newFn)) +
		jaccard(mapNames(oldProg.Callers[o], p.OldToNew), newProg.Callers[n])) / 2

	// CFG shape: block- and instruction-count ratios.
	shape := (ratio(len(oldFn.Blocks), len(newFn.Blocks)) +
		ratio(instCount(oldFn), instCount(newFn))) / 2

	// Layout similarity: the best σ over the functions' layout pairs,
	// clamped to [0,1].
	lay := 0.0
	for _, a := range oldLay {
		for _, b := range newLay {
			if sigma, ok := structsim.Similarity(a, b); ok && sigma > lay {
				lay = sigma
			}
		}
	}
	if lay > 1 {
		lay = 1
	}
	if len(oldLay) == 0 && len(newLay) == 0 {
		// No structure observations on either side: redistribute the
		// layout weight instead of penalizing plain functions.
		return 0.6*cg + 0.4*shape
	}
	return 0.45*cg + 0.35*shape + 0.20*lay
}

// callNames collects a function's direct callee names (locals and
// imports), sorted with duplicates kept.
func callNames(prog *cfg.Program, fn *cfg.Function) []string {
	var out []string
	for _, c := range fn.Calls {
		if c.Kind == cfg.CallLocal || c.Kind == cfg.CallImport {
			out = append(out, c.Callee)
		}
	}
	sort.Strings(out)
	return out
}

// mapNames rewrites names through the pairing map where present.
func mapNames(names []string, m map[string]string) []string {
	out := make([]string, len(names))
	for i, name := range names {
		if mapped, ok := m[name]; ok {
			out[i] = mapped
		} else {
			out[i] = name
		}
	}
	sort.Strings(out)
	return out
}

// jaccard is multiset Jaccard similarity; two empty multisets score 1.
func jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	counts := make(map[string]int, len(a))
	for _, s := range a {
		counts[s]++
	}
	inter := 0
	for _, s := range b {
		if counts[s] > 0 {
			counts[s]--
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// ratio returns min/max of two counts (1 when both are zero).
func ratio(a, b int) float64 {
	if a > b {
		a, b = b, a
	}
	if b == 0 {
		return 1
	}
	return float64(a) / float64(b)
}

// instCount totals a function's instructions.
func instCount(fn *cfg.Function) int {
	n := 0
	for _, b := range fn.Blocks {
		n += len(b.Insts)
	}
	return n
}

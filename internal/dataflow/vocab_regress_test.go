package dataflow

import "testing"

// Regression: sscanf's format argument is attacker data in its own
// right — a tainted format (conversion widths under attacker control)
// reaching an unbounded scan is a finding even when the scanned source
// string is a constant. The arg-index audit found the old model read
// only the src argument (index 0) and dropped taint on the format
// (index 1).
func TestSscanfTaintedFormat(t *testing.T) {
	src := `
.arch arm
.import getenv
.import sscanf
.data k "FMT"
.data s "42 13"

.func handler
  SUB SP, SP, #0x40
  MOV R0, =k
  BL getenv
  MOV R1, R0
  MOV R0, =s
  ADD R2, SP, #0
  BL sscanf
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if findVuln(res, "sscanf", "getenv") == nil {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("tainted sscanf format not reported")
	}
}

// Regression: sprintf taints flow from EVERY variadic argument, not
// just the first one after the format. Here the first conversion input
// is a clean constant and only the trailing argument is tainted.
func TestSprintfTaintedTrailingVariadic(t *testing.T) {
	src := `
.arch arm
.import getenv
.import sprintf
.data k "Q"
.data f "%s%s"
.data c "const"

.func handler
  SUB SP, SP, #0x40
  MOV R0, =k
  BL getenv
  MOV R3, R0
  MOV R2, =c
  MOV R1, =f
  ADD R0, SP, #0
  BL sprintf
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if findVuln(res, "sprintf", "getenv") == nil {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("tainted trailing sprintf argument not reported")
	}
}

// Regression: vocabulary models are keyed on import/PLT identity. A
// firmware binary shipping its OWN strcpy must have that body analyzed
// like any other local function — dispatching it to the libc model
// would both mis-model the call and double-count the sink.
func TestLocalFunctionShadowingVocabName(t *testing.T) {
	body := `
.data k "Q"

.func handler
  SUB SP, SP, #0x40
  MOV R0, =k
  BL getenv
  MOV R1, R0
  ADD R0, SP, #0
  BL strcpy
  BX LR
.endfunc
`
	// Control: strcpy imported — the classic Table I finding.
	imported := ".arch arm\n.import getenv\n.import strcpy\n" + body
	res := run(t, imported, Options{})
	if findVuln(res, "strcpy", "getenv") == nil {
		t.Fatal("imported strcpy not reported (control broken)")
	}

	// The same flow into a binary-local strcpy whose body never copies:
	// no libc model applies, so no strcpy finding may appear.
	local := ".arch arm\n.import getenv\n" + `
.func strcpy
  MOV R2, R0
  BX LR
.endfunc
` + body
	res = run(t, local, Options{})
	for _, f := range res.Findings {
		if f.Sink == "strcpy" {
			t.Fatalf("binary-local strcpy dispatched to the libc model: %s", f.String())
		}
	}
}

package dataflow

import (
	"container/heap"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dtaint/internal/alias"
	"dtaint/internal/cfg"
	"dtaint/internal/obs"
	"dtaint/internal/sumstore"
	"dtaint/internal/symexec"
	"dtaint/internal/taint"
)

// runBottomUp executes the bottom-up interprocedural phase (3+4) with a
// dependency-counting scheduler over the call graph's SCC condensation.
// Workers pull ready components — those whose callee components are all
// summarized — from a priority queue ordered by component index and
// decrement caller in-degrees on completion. Each component is analyzed
// by its own tracker shard; its findings, pendings, and counters are
// stashed per component and merged in condensation order afterwards, so
// the result is bit-identical for every worker count.
//
// With a summary store, each component's Merkle key (its function
// digests chained with every callee component's key) is consulted
// before analysis: a stored entry replays the component's complete
// contribution — exported summaries, climbing pending sinks, findings,
// and counters — so the published state and the merged result are
// byte-for-byte what a fresh execution would produce.
func runBottomUp(prog *cfg.Program, names []string, opts Options, fp *sumstore.Fingerprinter, res *Result, stageSpan *obs.Span) {
	cond := prog.Condense(names)
	store := opts.SummaryStore
	var keys []string
	if store != nil {
		// Computed after structsim, so resolved indirect callsites and
		// the call edges they added are part of every key.
		keys = fp.CompKeys(cond)
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cond.Comps) {
		workers = len(cond.Comps)
	}
	if workers < 1 {
		workers = 1
	}
	res.Parallel = ParallelStats{
		Workers:      workers,
		Components:   len(cond.Comps),
		CriticalPath: cond.CriticalPath(),
	}
	stageSpan.SetAttr("workers", workers)
	stageSpan.SetAttr("components", len(cond.Comps))

	bo := bottomUpObs{
		stage: stageSpan,
		fnSec: opts.Metrics.Histogram("dtaint_fn_ddg_seconds",
			"Per-function interprocedural data-flow time (phase 3+4).", obs.DefTimeBuckets, nil),
		fnStates: opts.Metrics.Histogram("dtaint_fn_states_explored",
			"Symbolic states explored per function.", obs.ExpBuckets(1, 4, 8), nil),
		aliasAdded: opts.Metrics.Counter("dtaint_alias_pairs_added_total",
			"Alias pairs synthesized by the rewrite pass.", nil),
		aliasDropped: opts.Metrics.Counter("dtaint_alias_pairs_dropped_total",
			"Synthesized alias pairs discarded past the rewrite budget.", nil),
	}

	base := newTracker(opts, prog.Binary)
	shared := &bottomUpState{
		summaries: res.Summaries,
		pendings:  make(map[string][]taint.PendingSink),
	}
	done := make([]compResult, len(cond.Comps))

	var (
		mu        sync.Mutex
		cv        = sync.NewCond(&mu)
		ready     intHeap
		deps      = append([]int(nil), cond.NumDeps...)
		remaining = len(cond.Comps)
	)
	for i, d := range deps {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	heap.Init(&ready)

	var storeHits, storeMisses atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for len(ready) == 0 && remaining > 0 {
					cv.Wait()
				}
				if remaining == 0 && len(ready) == 0 {
					mu.Unlock()
					return
				}
				i := heap.Pop(&ready).(int)
				mu.Unlock()

				var r compResult
				replayed := false
				if store != nil {
					if ent, ok := store.GetEntry(keys[i]); ok {
						r = entryToComp(ent)
						replayed = true
						storeHits.Add(1)
					}
				}
				if !replayed {
					r = analyzeComponent(prog, opts, base, shared, cond.Comps[i], i, bo)
					if store != nil {
						storeMisses.Add(1)
						store.PutEntry(keys[i], compToEntry(cond.Comps[i], r))
					}
				}
				shared.publish(r)
				done[i] = r

				mu.Lock()
				remaining--
				completed := len(cond.Comps) - remaining
				for _, caller := range cond.Callers[i] {
					deps[caller]--
					if deps[caller] == 0 {
						heap.Push(&ready, caller)
					}
				}
				cv.Broadcast()
				mu.Unlock()
				// completed is mutex-ordered and therefore unique per
				// component, keeping the decile progress events
				// deterministic for any worker count.
				opts.Events.ProgressDecile("interproc-dataflow", completed, len(cond.Comps))
			}
		}()
	}
	wg.Wait()
	res.SumStore.Hits += int(storeHits.Load())
	res.SumStore.Misses += int(storeMisses.Load())

	// Deterministic merge: concatenate per-component results in the
	// condensation's (reverse topological) order — exactly the order the
	// sequential schedule produces them in.
	for i := range done {
		res.Findings = append(res.Findings, done[i].findings...)
		res.FunctionsAnalyzed += len(cond.Comps[i])
		res.DefPairCount += done[i].defPairs
		res.Truncated += done[i].truncated
		res.Alias.Merge(done[i].alias)
	}
}

// bottomUpState is the published cross-component state: summaries and
// pending sinks of every completed component. The scheduler's dependency
// counting guarantees a caller component only starts after its callee
// components have published, so readers always find what they need.
type bottomUpState struct {
	mu        sync.RWMutex
	summaries map[string]*symexec.Summary
	pendings  map[string][]taint.PendingSink
}

func (s *bottomUpState) summary(name string) (*symexec.Summary, bool) {
	s.mu.RLock()
	sum, ok := s.summaries[name]
	s.mu.RUnlock()
	return sum, ok
}

func (s *bottomUpState) pending(name string) []taint.PendingSink {
	s.mu.RLock()
	ps := s.pendings[name]
	s.mu.RUnlock()
	return ps
}

func (s *bottomUpState) publish(r compResult) {
	s.mu.Lock()
	for name, sum := range r.summaries {
		s.summaries[name] = sum
	}
	for name, ps := range r.pendings {
		s.pendings[name] = ps
	}
	s.mu.Unlock()
}

// compResult is one component's contribution, stashed until the merge.
// alias is live-run telemetry only: it is NOT round-tripped through the
// summary store (compToEntry/entryToComp drop it), so replayed
// components contribute zero and the deterministic result fields stay
// byte-identical with and without a store.
type compResult struct {
	summaries map[string]*symexec.Summary
	pendings  map[string][]taint.PendingSink
	findings  []taint.Finding
	defPairs  int
	truncated int
	alias     AliasStats
}

// compToEntry packages a component's contribution for the summary
// store. Summaries are listed in the component's fixed function order
// so encoding is deterministic.
func compToEntry(comp []string, r compResult) *sumstore.Entry {
	ent := &sumstore.Entry{
		Pendings:  r.pendings,
		Findings:  r.findings,
		DefPairs:  r.defPairs,
		Truncated: r.truncated,
	}
	for _, name := range comp {
		if sum, ok := r.summaries[name]; ok {
			ent.Summaries = append(ent.Summaries, sum)
		}
	}
	return ent
}

// entryToComp replays a stored component contribution.
func entryToComp(ent *sumstore.Entry) compResult {
	r := compResult{
		summaries: make(map[string]*symexec.Summary, len(ent.Summaries)),
		pendings:  ent.Pendings,
		findings:  ent.Findings,
		defPairs:  ent.DefPairs,
		truncated: ent.Truncated,
	}
	if r.pendings == nil {
		r.pendings = make(map[string][]taint.PendingSink)
	}
	for _, sum := range ent.Summaries {
		r.summaries[sum.Func] = sum
	}
	return r
}

// bottomUpObs carries the bottom-up pass's observability handles into
// component workers: the stage span to nest under, the per-function
// histograms, and the alias-rewrite counters. All fields are nil-safe.
type bottomUpObs struct {
	stage        *obs.Span
	fnSec        *obs.Histogram
	fnStates     *obs.Histogram
	aliasAdded   *obs.Counter
	aliasDropped *obs.Counter
}

// analyzeComponent runs Algorithm 2 over one SCC component with a private
// tracker shard. Functions inside the component are processed in sorted
// order (the component's fixed order), mirroring the sequential pass;
// lookups prefer the in-flight component, then the published state.
func analyzeComponent(prog *cfg.Program, opts Options, base *taint.Tracker, shared *bottomUpState, comp []string, idx int, bo bottomUpObs) compResult {
	shard := base.Shard()
	local := make(map[string]*symexec.Summary, len(comp))
	oracle := &interOracle{
		tracker: shard,
		lookup: func(name string) (*symexec.Summary, bool) {
			if sum, ok := local[name]; ok {
				return sum, true
			}
			return shared.summary(name)
		},
		pendings: func(name string) []taint.PendingSink {
			if _, ok := local[name]; ok {
				return shard.Pendings(name)
			}
			return shared.pending(name)
		},
		noVRange: opts.DisableVRange,
	}
	out := compResult{
		summaries: local,
		pendings:  make(map[string][]taint.PendingSink, len(comp)),
	}
	compSpan := bo.stage.StartChild("scc-component",
		obs.KV("index", idx), obs.KV("functions", len(comp)))
	for _, name := range comp {
		fnSpan := compSpan.StartChild("ddg-function", obs.KV("fn", name))
		t0 := time.Now()
		shard.BeginFunction(name)
		sum := symexec.Analyze(prog.ByName[name], prog.Binary, oracle, opts.Symexec)
		if !opts.DisableAlias {
			var ast alias.Stats
			if opts.DisableSSE {
				sum.DefPairs, ast = alias.Rewrite(sum.DefPairs, sum.Types)
			} else {
				sum.DefPairs, ast = alias.RewriteSSE(sum.DefPairs, sum.Types)
			}
			fnSpan.SetAttr("alias_added", ast.Added)
			fnSpan.SetAttr("alias_dropped", ast.Dropped)
			bo.aliasAdded.Add(uint64(ast.Added))
			bo.aliasDropped.Add(uint64(ast.Dropped))
			out.alias.Merge(AliasStats{
				Added: ast.Added, Dropped: ast.Dropped,
				Classes: ast.Classes, Intern: ast.Intern,
			})
		}
		shard.EndFunction(sum)
		bo.fnSec.Observe(time.Since(t0).Seconds())
		bo.fnStates.Observe(float64(sum.StatesExplored))
		fnSpan.End()
		local[name] = sum
		out.defPairs += len(sum.DefPairs)
		if sum.Truncated {
			out.truncated++
		}
	}
	compSpan.End()
	for _, name := range comp {
		if ps := shard.Pendings(name); len(ps) > 0 {
			out.pendings[name] = ps
		}
	}
	out.findings = shard.Findings()
	return out
}

// intHeap is a min-heap of component indices: with one worker the pop
// order reproduces the sequential condensation order exactly, and with
// many it keeps scheduling deterministic enough to debug.
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

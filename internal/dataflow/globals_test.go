package dataflow

import (
	"testing"
)

// Firmware commonly moves request data between stages through globals;
// the analysis tracks definitions at absolute memory addresses
// (Section III-B's "absolute memory address" variables).
const globalFlowSrc = `
.arch arm
.import getenv
.import system
.data k "QUERY_STRING"

.func parse_request
  MOV R0, =k
  BL getenv
  MOV R4, R0
  MOV R5, #0x20000
  STR R4, [R5, #0]
  BX LR
.endfunc

.func exec_action
  MOV R5, #0x20000
  LDR R0, [R5, #0]
  BL system
  BX LR
.endfunc

.func main
  BL parse_request
  BL exec_action
  BX LR
.endfunc
`

func TestTaintThroughGlobalVariable(t *testing.T) {
	res := run(t, globalFlowSrc, Options{})
	f := findVuln(res, "system", "getenv")
	if f == nil {
		for _, g := range res.Findings {
			t.Logf("finding: %s", g.String())
		}
		t.Fatal("taint through the global variable not tracked")
	}
	if f.SinkFunc != "exec_action" {
		t.Fatalf("sink in %s", f.SinkFunc)
	}
}

// The global write must not leak into callers that never execute the
// writing function.
func TestGlobalNotTaintedWithoutWriter(t *testing.T) {
	src := `
.arch arm
.import system

.func exec_action
  MOV R5, #0x20000
  LDR R0, [R5, #0]
  BL system
  BX LR
.endfunc

.func main
  BL exec_action
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	for _, f := range res.Findings {
		if !f.Sanitized {
			t.Fatalf("phantom finding without any source: %s", f.String())
		}
	}
}

// Sanitization of global-carried data still applies.
func TestGlobalFlowSanitized(t *testing.T) {
	src := `
.arch arm
.import getenv
.import system
.import strchr
.data k "Q"

.func parse_request
  MOV R0, =k
  BL getenv
  MOV R4, R0
  MOV R5, #0x20000
  STR R4, [R5, #0]
  BX LR
.endfunc

.func exec_action
  MOV R5, #0x20000
  LDR R4, [R5, #0]
  MOV R0, R4
  MOV R1, #0x3B
  BL strchr
  CMP R0, #0
  BNE out
  MOV R0, R4
  BL system
out:
  BX LR
.endfunc

.func main
  BL parse_request
  BL exec_action
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if f := findVuln(res, "system", "getenv"); f != nil {
		t.Fatalf("semicolon-checked global flow reported: %s", f.String())
	}
}

package dataflow

import (
	"fmt"
	"sort"
	"strings"

	"dtaint/internal/taint"
)

// OptionsFingerprint canonicalizes the semantically relevant analyzer
// options into a stable, versioned string. It is the options half of
// every content-addressed cache key in the pipeline: the fleet report
// cache appends it to the binary digest, and the summary store appends
// it to per-function and per-component digests. Bump the leading
// version tag whenever the analysis semantics change in a way the
// option values cannot express — that invalidates every cached report
// and summary at once.
//
// Parallelism is deliberately excluded: the analyzer produces
// bit-identical results for every worker count, so cached entries are
// shareable across differently parallel runs. Observability handles and
// the summary store itself are likewise excluded — they never influence
// results. A non-nil function filter cannot be hashed; callers that key
// whole-binary reports must supply a filterTag naming it (the fleet
// orchestrator bypasses its cache for a non-nil filter with an empty
// tag). The summary store passes an empty tag instead: a filter only
// selects which functions and call-graph components exist, and both are
// already captured structurally by the per-function and per-component
// digests.
func OptionsFingerprint(o Options, filterTag string) string {
	var b strings.Builder
	// v4: SSE alias classes landed (alias.RewriteSSE + SSE-driven
	// indirect-call resolution), changing rewritten definition pairs and
	// resolutions for identical inputs — v3 caches must all miss.
	fmt.Fprintf(&b, "v4;alias=%t;sse=%t;structsim=%t;vrange=%t",
		!o.DisableAlias, !o.DisableSSE, !o.DisableStructSim, !o.DisableVRange)
	// The vocabulary defines what the analysis looks for; its content
	// digest isolates caches per vocabulary (the default's digest keeps
	// default-vocab runs shareable across releases with the same spec).
	vb := o.Vocab
	if vb == nil {
		vb = taint.DefaultVocabulary()
	}
	fmt.Fprintf(&b, ";vocab=%s", vb.Fingerprint())
	fmt.Fprintf(&b, ";loopOnce=%t;loopIters=%d", o.Symexec.LoopOnce, o.Symexec.MaxLoopIters)
	fmt.Fprintf(&b, ";statesBlock=%d;statesFunc=%d", o.Symexec.MaxStatesPerBlock, o.Symexec.MaxStatesPerFunc)
	srcs := make([]string, 0, len(o.ExtraSources))
	for _, s := range o.ExtraSources {
		srcs = append(srcs, fmt.Sprintf("%s:%d:%t", s.Name, s.BufArg, s.ViaReturn))
	}
	sort.Strings(srcs)
	sinks := make([]string, 0, len(o.ExtraSinks))
	for _, s := range o.ExtraSinks {
		sinks = append(sinks, fmt.Sprintf("%s:%d:%d:%d", s.Name, int(s.Class), s.DataArg, s.LenArg))
	}
	sort.Strings(sinks)
	fmt.Fprintf(&b, ";sources=%s;sinks=%s", strings.Join(srcs, ","), strings.Join(sinks, ","))
	fmt.Fprintf(&b, ";filter=%s", filterTag)
	return b.String()
}

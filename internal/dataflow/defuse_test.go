package dataflow

import (
	"testing"

	"dtaint/internal/expr"
	"dtaint/internal/symexec"
)

func TestDefUseGraphBasic(t *testing.T) {
	// mem[sp-16] = taint; mem[sp-32] = deref(sp-16): the second definition
	// reads the first.
	buf := expr.Deref(expr.Add(expr.Sym(expr.StackSym), -16))
	taintVal := expr.Sym(expr.TaintName("recv", 0x10))
	out := expr.Deref(expr.Add(expr.Sym(expr.StackSym), -32))
	sums := map[string]*symexec.Summary{
		"f": {
			Func: "f",
			DefPairs: []symexec.DefPair{
				{D: buf, U: taintVal, Addr: 1},
				{D: out, U: buf, Addr: 2},
			},
		},
	}
	g := BuildDefUse(sums)
	if g.Nodes() != 2 {
		t.Fatalf("nodes = %d", g.Nodes())
	}
	if g.Edges() != 1 {
		t.Fatalf("edges = %d", g.Edges())
	}
	defs := g.DefsOf(buf.Key())
	if len(defs) != 1 || !defs[0].Def.U.ContainsTaint() {
		t.Fatalf("DefsOf(buf) = %+v", defs)
	}
	// Slicing backward from a value that reads `out` must reach both
	// definitions.
	slice := g.BackwardSlice(out)
	if len(slice) != 2 {
		t.Fatalf("slice = %+v", slice)
	}
	// The taint query finds exactly the tainted definition.
	tainted := g.TaintedDefs()
	if len(tainted) != 1 || tainted[0].Def.Addr != 1 {
		t.Fatalf("tainted = %+v", tainted)
	}
}

func TestDefUseGraphEndToEnd(t *testing.T) {
	// The paper's foo/woo program: slicing backward from the memcpy source
	// argument must cross the function boundary and reach woo's taint
	// definition.
	res := run(t, fooWooSrc, Options{})
	g := BuildDefUse(res.Summaries)
	if g.Nodes() == 0 {
		t.Fatal("graph empty")
	}
	// foo loads the source pointer from deref(arg0+0x4C).
	src := expr.Deref(expr.Add(expr.Arg(0), 0x4C))
	slice := g.BackwardSlice(expr.Deref(src))
	var sawTaint bool
	for _, n := range slice {
		if n.Def.U.ContainsTaint() {
			sawTaint = true
		}
	}
	if !sawTaint {
		for _, n := range slice {
			t.Logf("slice: %s: %s = %s", n.Func, n.Def.D, n.Def.U)
		}
		t.Fatal("backward slice from the sink argument did not reach the taint source")
	}
}

func TestDefUseGraphNilAndEmpty(t *testing.T) {
	g := BuildDefUse(nil)
	if g.Nodes() != 0 || g.Edges() != 0 {
		t.Fatal("empty graph not empty")
	}
	if got := g.BackwardSlice(nil); got != nil {
		t.Fatal("nil slice should be nil")
	}
	if got := g.BackwardSlice(expr.Const(1)); len(got) != 0 {
		t.Fatal("constant has no provenance")
	}
}

func TestDefUseDeterministicOrder(t *testing.T) {
	res := run(t, fooWooSrc, Options{})
	g1 := BuildDefUse(res.Summaries)
	g2 := BuildDefUse(res.Summaries)
	s1 := g1.BackwardSlice(expr.Deref(expr.Deref(expr.Add(expr.Arg(0), 0x4C))))
	s2 := g2.BackwardSlice(expr.Deref(expr.Deref(expr.Add(expr.Arg(0), 0x4C))))
	if len(s1) != len(s2) {
		t.Fatal("nondeterministic slice size")
	}
	for i := range s1 {
		if s1[i].Func != s2[i].Func || s1[i].Def.Addr != s2[i].Def.Addr {
			t.Fatal("nondeterministic slice order")
		}
	}
}

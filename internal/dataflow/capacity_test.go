package dataflow

import (
	"testing"
)

// A length check whose bound exceeds the destination buffer does not
// sanitize: `if (strlen(s) < 0x200) strcpy(buf64, s)` is still an
// overflow.
func TestInsufficientBoundStillVulnerable(t *testing.T) {
	src := `
.arch arm
.import getenv
.import strcpy
.import strlen
.data k "Q"

.func handler
  SUB SP, SP, #0x40
  MOV R0, =k
  BL getenv
  MOV R5, R0
  MOV R0, R5
  BL strlen
  CMP R0, #0x200
  BGE out
  MOV R1, R5
  ADD R0, SP, #0
  BL strcpy
out:
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if findVuln(res, "strcpy", "getenv") == nil {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("0x200 bound into a 64-byte buffer treated as sanitizing")
	}
}

// The same check with a bound that fits the buffer sanitizes.
func TestSufficientBoundSanitizes(t *testing.T) {
	src := `
.arch arm
.import getenv
.import strcpy
.import strlen
.data k "Q"

.func handler
  SUB SP, SP, #0x40
  MOV R0, =k
  BL getenv
  MOV R5, R0
  MOV R0, R5
  BL strlen
  CMP R0, #0x20
  BGE out
  MOV R1, R5
  ADD R0, SP, #0
  BL strcpy
out:
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if f := findVuln(res, "strcpy", "getenv"); f != nil {
		t.Fatalf("fitting bound reported: %s", f.String())
	}
}

// The Uniview zero-day shape: a scanf conversion width exists but exceeds
// the destination buffer (%254s into 180 bytes) — still a vulnerability.
func TestScanfWidthExceedingBuffer(t *testing.T) {
	src := `
.arch arm
.import recv
.import sscanf
.data f "Session: %254s"

.func parse
  SUB SP, SP, #0x2C4
  ADD R5, SP, #0x50
  MOV R1, R5
  MOV R0, #0
  MOV R2, #0x200
  BL recv
  MOV R0, R5
  MOV R1, =f
  ADD R2, SP, #0x210
  BL sscanf
  BX LR
.endfunc
`
	// The destination sits 0xB4 (180) bytes below the frame top.
	res := run(t, src, Options{})
	if findVuln(res, "sscanf", "recv") == nil {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("a 254-char width into a 180-byte buffer not reported")
	}
}

// A width that fits the destination sanitizes the sscanf.
func TestScanfWidthWithinBuffer(t *testing.T) {
	src := `
.arch arm
.import recv
.import sscanf
.data f "Session: %16s"

.func parse
  SUB SP, SP, #0x2C4
  ADD R5, SP, #0x50
  MOV R1, R5
  MOV R0, #0
  MOV R2, #0x200
  BL recv
  MOV R0, R5
  MOV R1, =f
  ADD R2, SP, #0x210
  BL sscanf
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if f := findVuln(res, "sscanf", "recv"); f != nil {
		t.Fatalf("%%16s into a large buffer reported: %s", f.String())
	}
}

// A constant memcpy length that fits the destination buffer is recorded
// as a sanitized path, not a vulnerability.
func TestConstantMemcpyWithinBuffer(t *testing.T) {
	src := `
.arch arm
.import recv
.import memcpy

.func f
  SUB SP, SP, #0x50
  ADD R5, SP, #0x10
  MOV R1, R5
  MOV R0, #0
  MOV R2, #0x20
  BL recv
  MOV R1, R5
  ADD R0, SP, #0
  MOV R2, #0x20
  BL memcpy
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if f := findVuln(res, "memcpy", "recv"); f != nil {
		t.Fatalf("bounded constant memcpy reported: %s", f.String())
	}
	// The path is still visible as sanitized.
	var sawSanitized bool
	for _, f := range res.Findings {
		if f.Sink == "memcpy" && f.Sanitized {
			sawSanitized = true
		}
	}
	if !sawSanitized {
		t.Fatal("bounded memcpy path lost instead of marked sanitized")
	}
}

// A masked copy length is structurally bounded: memcpy(buf, src, n & 0x1F)
// into a 64-byte buffer cannot overflow (the n2s-style masking of
// Figure 3, `AND R10, R3, #7`).
func TestMaskedLengthSanitizes(t *testing.T) {
	src := `
.arch arm
.import recv
.import memcpy

.func f
  SUB SP, SP, #0x50
  ADD R5, SP, #0x10
  MOV R1, R5
  MOV R0, #0
  MOV R2, #0x40
  BL recv
  LDRB R6, [R5, #0]
  AND R6, R6, #0x1F
  MOV R1, R5
  ADD R0, SP, #0
  MOV R2, R6
  BL memcpy
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if f := findVuln(res, "memcpy", "recv"); f != nil {
		t.Fatalf("masked length reported: %s", f.String())
	}
}

// The same pattern without the mask (a full tainted length) is reported.
func TestUnmaskedLengthVulnerable(t *testing.T) {
	src := `
.arch arm
.import recv
.import memcpy

.func f
  SUB SP, SP, #0x50
  ADD R5, SP, #0x10
  MOV R1, R5
  MOV R0, #0
  MOV R2, #0x40
  BL recv
  LDRB R6, [R5, #0]
  MOV R1, R5
  ADD R0, SP, #0
  MOV R2, R6
  BL memcpy
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if findVuln(res, "memcpy", "recv") == nil {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("tainted unmasked length not reported")
	}
}

// Statically dead code does not produce findings: the guard constant
// makes the sink unreachable.
func TestDeadCodeSinkPruned(t *testing.T) {
	src := `
.arch arm
.import getenv
.import system
.data k "X"

.func handler
  MOV R4, #0
  CMP R4, #0
  BEQ skip
  MOV R0, =k
  BL getenv
  BL system
skip:
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if len(res.Findings) != 0 {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("dead-code sink produced findings")
	}
}

// The feasible side of a constant branch is still fully analyzed.
func TestFeasibleConstantBranchAnalyzed(t *testing.T) {
	src := `
.arch arm
.import getenv
.import system
.data k "X"

.func handler
  MOV R4, #1
  CMP R4, #0
  BEQ skip
  MOV R0, =k
  BL getenv
  BL system
skip:
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if findVuln(res, "system", "getenv") == nil {
		t.Fatal("live sink behind a constant branch missed")
	}
}

package dataflow

import (
	"testing"

	"dtaint/internal/asm"
	"dtaint/internal/cfg"
)

// Parallel phase-1 analysis must produce identical results to the
// sequential run: same findings, same resolutions, same summary counts.
func TestParallelPhase1Deterministic(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		bin, err := asm.Assemble("t", structSimSrc)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := cfg.Build(bin)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(prog, Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Resolutions) != 1 || res.Resolutions[0].Callee != "handler" {
			t.Fatalf("workers=%d: resolutions = %+v", workers, res.Resolutions)
		}
		if findVuln(res, "strcpy", "recv") == nil {
			t.Fatalf("workers=%d: vulnerability missing", workers)
		}
	}
}

package dataflow

import (
	"fmt"
	"testing"

	"dtaint/internal/asm"
	"dtaint/internal/cfg"
	"dtaint/internal/corpus"
	"dtaint/internal/expr"
	"dtaint/internal/symexec"
)

// Parallel phase-1 analysis must produce identical results to the
// sequential run: same findings, same resolutions, same summary counts.
func TestParallelPhase1Deterministic(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		bin, err := asm.Assemble("t", structSimSrc)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := cfg.Build(bin)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(prog, Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Resolutions) != 1 || res.Resolutions[0].Callee != "handler" {
			t.Fatalf("workers=%d: resolutions = %+v", workers, res.Resolutions)
		}
		if findVuln(res, "strcpy", "recv") == nil {
			t.Fatalf("workers=%d: vulnerability missing", workers)
		}
	}
}

// fingerprint renders everything that must be bit-identical across worker
// counts: every finding (order included) plus the scalar counters.
func fingerprint(res *Result) string {
	out := fmt.Sprintf("funcs=%d defpairs=%d truncated=%d findings=%d\n",
		res.FunctionsAnalyzed, res.DefPairCount, res.Truncated, len(res.Findings))
	for _, f := range res.Findings {
		out += f.String() + "\n"
	}
	return out
}

// The bottom-up SCC-DAG scheduler must be deterministic: analyzing a
// generated study binary with 1, 4, and 8 workers yields identical
// findings (order included), DefPairCount, and Truncated counts.
func TestBottomUpSchedulerDeterministic(t *testing.T) {
	spec, ok := corpus.SpecByProduct("DIR-645")
	if !ok {
		t.Fatal("DIR-645 spec missing")
	}
	bin, _, err := corpus.BuildBinary(spec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, workers := range []int{1, 4, 8} {
		prog, err := cfg.Build(bin)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(prog, Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if res.Parallel.Components == 0 || res.Parallel.CriticalPath == 0 {
			t.Fatalf("workers=%d: parallel stats not recorded: %+v", workers, res.Parallel)
		}
		if got := res.Parallel.Workers; workers <= res.Parallel.Components && got != workers {
			t.Fatalf("workers=%d: scheduler reports %d workers", workers, got)
		}
		got := fingerprint(res)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d: result diverges from workers=1:\n--- got ---\n%s--- want ---\n%s", workers, got, want)
		}
	}
}

// Regression: when every substituted return expression of a summarized
// callee resolves to nil, the callee's return value must not vanish —
// the opaque per-callsite ret symbol is kept so downstream taint flow
// through the return register survives.
func TestCalleeRetNilFallback(t *testing.T) {
	nilSub := func(*expr.Expr) *expr.Expr { return nil }
	want := expr.RetName("callee", 0x40)

	single := &symexec.Summary{Rets: []*expr.Expr{expr.Sym("arg0")}}
	ret := calleeRet(single, nilSub, "callee", 0x40)
	if ret == nil {
		t.Fatal("single nil-resolving return dropped")
	}
	if name, ok := ret.SymName(); !ok || name != want {
		t.Fatalf("fallback = %v, want sym %s", ret, want)
	}

	multi := &symexec.Summary{Rets: []*expr.Expr{expr.Sym("arg0"), expr.Sym("arg1"), expr.Sym("arg2")}}
	ret = calleeRet(multi, nilSub, "callee", 0x40)
	if ret == nil {
		t.Fatal("multi nil-resolving returns dropped")
	}
	if name, ok := ret.SymName(); !ok || name != want {
		t.Fatalf("fallback = %v, want sym %s", ret, want)
	}

	// A substitution that survives is kept untouched.
	identity := func(e *expr.Expr) *expr.Expr { return e }
	ret = calleeRet(single, identity, "callee", 0x40)
	if name, ok := ret.SymName(); !ok || name != "arg0" {
		t.Fatalf("surviving return rewritten: %v", ret)
	}

	// No recorded returns keeps nil so the engine assigns the fresh symbol.
	if got := calleeRet(&symexec.Summary{}, identity, "callee", 0x40); got != nil {
		t.Fatalf("empty return set should stay nil, got %v", got)
	}

	// Oversized return sets (> 4) keep the opaque symbol too.
	var rets []*expr.Expr
	for i := 0; i < 6; i++ {
		rets = append(rets, expr.Sym(fmt.Sprintf("arg%d", i)))
	}
	ret = calleeRet(&symexec.Summary{Rets: rets}, identity, "callee", 0x40)
	if name, ok := ret.SymName(); !ok || name != want {
		t.Fatalf("oversized return set = %v, want sym %s", ret, want)
	}
}

// defuse.go materializes the definition-pair sets produced by the
// bottom-up pass into an explicit def-use graph ("DTaint uses the
// definition pairs to construct use-def and def-use chains to generate
// data flows", Section III-E). The graph supports the slicing-style
// queries conventional DDGs (angr's) are used for: which definitions
// feed a given expression, transitively.
package dataflow

import (
	"sort"

	"dtaint/internal/expr"
	"dtaint/internal/symexec"
)

// DefNode is one definition in the global def-use graph.
type DefNode struct {
	Func string
	Def  symexec.DefPair
}

// DefUseGraph is the whole-binary def-use relation over definition pairs.
type DefUseGraph struct {
	nodes []DefNode
	// byKey indexes node positions by the definition's destination key.
	byKey map[string][]int
	// deps maps a node to the nodes whose definitions its value reads.
	deps  map[int][]int
	edges int
}

// BuildDefUse constructs the graph from the per-function summaries of a
// completed analysis.
func BuildDefUse(sums map[string]*symexec.Summary) *DefUseGraph {
	g := &DefUseGraph{
		byKey: make(map[string][]int),
		deps:  make(map[int][]int),
	}
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, dp := range sums[name].DefPairs {
			idx := len(g.nodes)
			g.nodes = append(g.nodes, DefNode{Func: name, Def: dp})
			g.byKey[dp.D.Key()] = append(g.byKey[dp.D.Key()], idx)
		}
	}
	// An edge exists from node n to node m when n's value expression
	// dereferences m's destination.
	for idx, n := range g.nodes {
		if n.Def.U == nil {
			continue
		}
		for _, key := range n.Def.U.DerefKeys() {
			for _, m := range g.byKey[key] {
				if m == idx {
					continue
				}
				g.deps[idx] = append(g.deps[idx], m)
				g.edges++
			}
		}
	}
	return g
}

// Nodes returns the number of definitions in the graph.
func (g *DefUseGraph) Nodes() int { return len(g.nodes) }

// Edges returns the number of def-use edges.
func (g *DefUseGraph) Edges() int { return g.edges }

// DefsOf returns the definitions whose destination matches key.
func (g *DefUseGraph) DefsOf(key string) []DefNode {
	idxs := g.byKey[key]
	out := make([]DefNode, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, g.nodes[i])
	}
	return out
}

// BackwardSlice returns every definition that transitively feeds the
// given expression — the data provenance of a value, the query a
// vulnerability analyst runs from a sink argument.
func (g *DefUseGraph) BackwardSlice(e *expr.Expr) []DefNode {
	if e == nil {
		return nil
	}
	visited := make(map[int]bool)
	var stack []int
	for _, key := range e.DerefKeys() {
		stack = append(stack, g.byKey[key]...)
	}
	var out []DefNode
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[idx] {
			continue
		}
		visited[idx] = true
		out = append(out, g.nodes[idx])
		stack = append(stack, g.deps[idx]...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].Def.Addr < out[j].Def.Addr
	})
	return out
}

// TaintedDefs returns every definition whose value carries taint — the
// attacker-influenced portion of the program state.
func (g *DefUseGraph) TaintedDefs() []DefNode {
	var out []DefNode
	for _, n := range g.nodes {
		if n.Def.U != nil && n.Def.U.ContainsTaint() {
			out = append(out, n)
		}
	}
	return out
}

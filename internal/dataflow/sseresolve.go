package dataflow

import (
	"sort"

	"dtaint/internal/alias"
	"dtaint/internal/expr"
	"dtaint/internal/sse"
	"dtaint/internal/structsim"
	"dtaint/internal/symexec"
)

// SSE-driven indirect-call resolution (phase 2).
//
// A function-pointer registration is a store of a known code address
// through some access path; a callsite is a load through some access
// path followed by an indirect branch. structsim aligns the two by
// data-structure layout similarity, which fails whenever registration
// and dispatch spell the path through *different* bases — the ops-struct
// idiom registers under the ops argument while the dispatcher loads
// through obj->ops. Here both sides are expanded through their
// function's SSE alias classes into every equivalent spelling, each
// spelling is root-abstracted and interned into one shared table, and a
// callsite binds to a registration when their interned paths are
// pointer-identical. Layout similarity is demoted to a tie-breaker
// between matching registrations; callsites with no SSE match fall back
// to plain structsim resolution.

// resolveRootSym is the root placeholder both sides are rewritten to
// before interning, mirroring structsim's layout canonicalization.
const resolveRootSym = "ROOT"

// Expansion bounds for spelling enumeration, matching the alias
// rewriter's: depth covers nested handoffs (obj -> mid -> ops), the cap
// keeps one pathological class from flooding the table.
const (
	resolveVariantDepth = 3
	resolveVariantMax   = 16
)

// ResolveStats reports how phase 2 bound indirect callsites and the
// shape of the shared intern table the matching ran over.
type ResolveStats struct {
	// BySSE counts callsites bound through SSE path identity.
	BySSE int
	// ByStructSim counts callsites the class matching could not bind
	// that layout similarity alone resolved.
	ByStructSim int
	// Intern is the shared (cross-function) intern table's statistics.
	Intern sse.Stats
}

// regCandidate is one function-pointer registration reachable at an
// abstracted path: target is the registered function, fn/root identify
// the registering layout for the similarity tie-break.
type regCandidate struct {
	target string
	fn     string
	root   string
}

// regKey addresses one abstracted access path in the shared interner.
// The node field is the interned pointer itself: two spellings collide
// exactly when they canonicalize to the same path.
type regKey struct {
	node *sse.Node
	off  int64
}

// abstractRoot rewrites e's root symbol to the shared placeholder so
// paths from different functions align.
func abstractRoot(e *expr.Expr) (*expr.Expr, bool) {
	root := e.RootPointer()
	if root == nil {
		return nil, false
	}
	name, ok := root.SymName()
	if !ok {
		return nil, false
	}
	return e.MapSyms(func(n string) *expr.Expr {
		if n == name {
			return expr.Sym(resolveRootSym)
		}
		return nil
	}), true
}

// resolveIndirectSSE resolves every indirect callsite across the
// analyzed functions from SSE equivalence classes, falling back to
// structsim for callsites with no path match. At most one resolution is
// emitted per call record; output order follows sorted function names
// and call order, so results are deterministic.
func resolveIndirectSSE(sums map[string]*symexec.Summary) ([]structsim.Resolution, ResolveStats) {
	var stats ResolveStats
	names := make([]string, 0, len(sums))
	for name := range sums {
		names = append(names, name)
	}
	sort.Strings(names)

	// Per-function class engines and layouts.
	classes := make(map[string]*sse.Interner, len(names))
	layoutsByFunc := make(map[string][]*structsim.Layout, len(names))
	for _, name := range names {
		sum := sums[name]
		classes[name] = alias.Classes(sum.DefPairs, sum.Types)
		layoutsByFunc[name] = structsim.BuildLayouts(sum)
	}
	layoutOf := func(fn, root string) *structsim.Layout {
		for _, l := range layoutsByFunc[fn] {
			if l.Root == root {
				return l
			}
		}
		return nil
	}

	// Registration index: every spelling of every function-pointer
	// store, root-abstracted and interned into the shared table.
	shared := sse.NewInterner()
	regs := make(map[regKey][]regCandidate)
	regSeen := make(map[regKey]map[string]bool)
	for _, name := range names {
		sum := sums[name]
		li := classes[name]
		for _, fo := range sum.Fields {
			if fo.FnTarget == "" {
				continue
			}
			pb, ok := li.Intern(fo.Base)
			if !ok {
				continue
			}
			rootName := ""
			if r := fo.Base.RootPointer(); r != nil {
				rootName, _ = r.SymName()
			}
			for _, form := range li.PathExprs(pb, resolveVariantDepth, resolveVariantMax) {
				addr := expr.Add(form, fo.Off)
				ab, ok := abstractRoot(addr)
				if !ok {
					continue
				}
				gp, ok := shared.Intern(ab)
				if !ok {
					continue
				}
				k := regKey{node: gp.Node, off: gp.Off}
				id := fo.FnTarget + "\x00" + name
				if regSeen[k] == nil {
					regSeen[k] = make(map[string]bool)
				}
				if regSeen[k][id] {
					continue
				}
				regSeen[k][id] = true
				regs[k] = append(regs[k], regCandidate{target: fo.FnTarget, fn: name, root: rootName})
			}
		}
	}

	// Fallback: plain layout-similarity resolution, indexed by callsite.
	type callsiteKey struct {
		caller string
		site   uint32
	}
	fallback := make(map[callsiteKey]structsim.Resolution)
	for _, r := range structsim.ResolveIndirect(sums) {
		k := callsiteKey{caller: r.Caller, site: r.Site}
		if _, dup := fallback[k]; !dup {
			fallback[k] = r
		}
	}

	var out []structsim.Resolution
	for _, name := range names {
		sum := sums[name]
		li := classes[name]
		for _, call := range sum.Calls {
			if call.FnPtr == nil {
				continue
			}
			addr, ok := call.FnPtr.DerefAddr()
			if !ok {
				continue
			}
			best := structsim.Resolution{Caller: name, Site: call.Addr, Score: -1}
			if pa, ok := li.Intern(addr); ok {
				siteRoot := ""
				if r := addr.RootPointer(); r != nil {
					siteRoot, _ = r.SymName()
				}
				siteLayout := layoutOf(name, siteRoot)
				for _, form := range li.PathExprs(pa, resolveVariantDepth, resolveVariantMax) {
					ab, ok := abstractRoot(form)
					if !ok {
						continue
					}
					gp, ok := shared.Intern(ab)
					if !ok {
						continue
					}
					for _, c := range regs[regKey{node: gp.Node, off: gp.Off}] {
						score := 0.0
						if sim, ok := structsim.Similarity(siteLayout, layoutOf(c.fn, c.root)); ok {
							score = sim
						}
						if score > best.Score ||
							(score == best.Score && (best.Callee == "" || c.target < best.Callee)) {
							best.Score = score
							best.Callee = c.target
						}
					}
				}
			}
			if best.Callee != "" {
				stats.BySSE++
				out = append(out, best)
				continue
			}
			if fb, ok := fallback[callsiteKey{caller: name, site: call.Addr}]; ok {
				stats.ByStructSim++
				out = append(out, fb)
			}
		}
	}
	stats.Intern = shared.Stats()
	return out, stats
}

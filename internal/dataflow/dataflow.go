// Package dataflow implements DTaint's interprocedural data-flow
// generation (Section III-E, Algorithm 2) and orchestrates the whole
// analysis pipeline:
//
//  1. Function analysis — every function is symbolically analyzed once
//     (package symexec), yielding definition pairs, types, and
//     data-structure field observations.
//  2. Indirect-call resolution (sseresolve.go): callsites are matched to
//     function-pointer registrations through SSE equivalence classes
//     (package sse) with data-structure layout similarity (package
//     structsim) as tie-breaker and fallback, augmenting the call graph.
//  3. Bottom-up interprocedural pass — the call graph is condensed into
//     its SCC DAG (cfg.Condense) and traversed callees-before-callers,
//     each function again analyzed exactly once; at every callsite the
//     callee's exported definitions, return values, and pending sinks are
//     instantiated by replacing formal arguments arg0..arg9 and
//     ret_callsite symbols with the caller's actual expressions
//     (Algorithm 2's ReplaceFormalArgs / ReplaceRetVariable), with heap
//     identities re-hashed per callsite chain.
//  4. Pointer-alias rewriting (package alias) extends each function's
//     definition pairs before they are exported — by default from SSE
//     equivalence classes (alias.RewriteSSE), under -ablate sse via the
//     paper's pairwise Algorithm 1.
//
// Both analysis phases are parallel. Phase 1's units are fully
// independent and fan out over a flat worker pool. Phases 3+4 run under a
// dependency-counting scheduler over the condensation: sibling components
// of the SCC DAG have no ordering constraint, so workers pull ready
// components (all callee components summarized) from a queue and
// decrement caller in-degrees on completion. Every component is analyzed
// by its own taint-tracker shard and the per-component findings are
// concatenated in the condensation's topological order, so the output —
// findings, their order, and every counter — is bit-identical for any
// worker count, including the sequential schedule.
//
// The result carries every (source, path, sink) finding plus the
// measurements the evaluation tables report.
package dataflow

import (
	"errors"
	"log/slog"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dtaint/internal/cfg"
	"dtaint/internal/expr"
	"dtaint/internal/image"
	"dtaint/internal/obs"
	"dtaint/internal/obs/events"
	"dtaint/internal/sse"
	"dtaint/internal/structsim"
	"dtaint/internal/sumstore"
	"dtaint/internal/symexec"
	"dtaint/internal/taint"
	"dtaint/internal/vrange"
)

// Options configures the pipeline.
type Options struct {
	// Symexec tunes the per-function engine.
	Symexec symexec.Options
	// DisableAlias skips Algorithm 1 (ablation).
	DisableAlias bool
	// DisableStructSim skips indirect-call resolution (ablation).
	DisableStructSim bool
	// DisableSSE turns off structured symbolic expressions (ablation):
	// pointer-alias rewriting falls back to Algorithm 1's pairwise pass
	// and indirect calls are resolved by layout similarity alone instead
	// of from SSE equivalence classes. The feature bit is folded into
	// OptionsFingerprint, so cached summaries from either configuration
	// never cross.
	DisableSSE bool
	// DisableVRange turns off the interval value-range domain (ablation):
	// sink verdicts fall back to the purely structural/constraint checks,
	// and callee range facts are not imported at callsites. Path discovery
	// is unaffected — only Sanitized and the finding class can change.
	DisableVRange bool
	// Filter restricts analysis to functions for which it returns true
	// (the paper manually restricts Uniview/Hikvision to their network
	// modules). Nil analyzes everything.
	Filter func(name string) bool
	// Vocab replaces the embedded default source/sink/sanitizer
	// vocabulary with a compiled custom spec (see internal/vocab). Nil
	// uses the default. The vocabulary drives library-call models, the
	// sink census, type prototypes, and sanitization verdicts, and its
	// fingerprint is folded into OptionsFingerprint so vocabulary changes
	// invalidate cached summaries and reports.
	Vocab *taint.Vocabulary
	// ExtraSources adds custom attacker-controlled input functions to the
	// Table I vocabulary (e.g. vendor NVRAM getters).
	ExtraSources []taint.SourceSpec
	// ExtraSinks adds custom security-sensitive sinks.
	ExtraSinks []taint.SinkSpec
	// SummaryStore, when non-nil, caches analysis results content-
	// addressed by function bytes + ISA + options fingerprint
	// (internal/sumstore): phase-1 summaries per function and bottom-up
	// results per SCC component. The scheduler consults it before
	// symbolically executing a unit and writes back after, so a corpus
	// re-scan — or a scan of binaries sharing code — skips every
	// already-summarized function. Results are bit-identical with and
	// without a store, so the store is excluded from cache fingerprints.
	SummaryStore *sumstore.Store
	// Parallelism is the worker count for both analysis phases
	// (0 = GOMAXPROCS). The per-function phase fans out over independent
	// units; the bottom-up interprocedural phase schedules SCC components
	// of the condensed call graph whose callees are all summarized, so
	// sibling components run concurrently. Results are identical for any
	// value, including 1 (the fully sequential schedule).
	Parallelism int

	// Tracer records pipeline-stage spans (nil = tracing off). Observability
	// handles never influence analysis results and are excluded from fleet
	// cache fingerprints.
	Tracer *obs.Tracer
	// ParentSpan nests this analysis's stage spans under an enclosing span
	// (e.g. a fleet scan's per-binary span). Nil makes stages root spans.
	ParentSpan *obs.Span
	// Metrics receives stage counters and the per-function time /
	// states-explored histograms (nil = collection off).
	Metrics *obs.Registry
	// Log receives structured per-stage logs (nil = logging off).
	Log *slog.Logger
	// Events receives first-class telemetry events: per-stage progress
	// at decile granularity, one event per finding after the
	// deterministic merge, and a summary-store stats event. Stage
	// start/end events come from the span→event bridge over Tracer, not
	// from here. Nil disables emission; like the other observability
	// handles, Events never influences results and is excluded from
	// cache fingerprints.
	Events *events.Emitter
}

// Stage couples one pipeline stage's span and log lines. Other pipeline
// layers (the root package, internal/fleet) reuse it so every stage
// traces and logs identically.
type Stage struct {
	span  *obs.Span
	log   *slog.Logger
	name  string
	start time.Time
}

// StartStage opens a stage span under Options.ParentSpan and emits a
// debug start line. All handles are nil-safe.
func (o Options) StartStage(name string, attrs ...obs.Attr) *Stage {
	st := &Stage{log: o.Log, name: name, start: time.Now()}
	st.span = o.Tracer.Start(o.ParentSpan, name, attrs...)
	if o.Log != nil {
		o.Log.Debug("stage start", "stage", name)
	}
	return st
}

// End closes the stage span and logs completion; extra args are
// alternating slog key/value pairs.
func (st *Stage) End(args ...any) {
	st.span.End()
	if st.log != nil {
		all := append([]any{"stage", st.name, "seconds", time.Since(st.start).Seconds()}, args...)
		st.log.Info("stage done", all...)
	}
}

// newTracker builds a tracker with the configured vocabulary and access
// to the program image (for rodata-aware models).
func newTracker(opts Options, bin *image.Binary) *taint.Tracker {
	t := taint.NewTracker()
	t.SetVocabulary(opts.Vocab)
	t.SetBinary(bin)
	if opts.DisableVRange {
		t.DisableValueRange()
	}
	for _, s := range opts.ExtraSources {
		t.AddSource(s)
	}
	for _, s := range opts.ExtraSinks {
		t.AddSink(s)
	}
	return t
}

// Result is the output of a whole-binary analysis.
type Result struct {
	// Summaries holds the final per-function summaries (post alias
	// rewriting), keyed by function name.
	Summaries map[string]*symexec.Summary
	// Findings are all (source, path, sink) tuples, sanitized or not.
	Findings []taint.Finding
	// Resolutions are the indirect calls bound by layout similarity.
	Resolutions []structsim.Resolution

	FunctionsAnalyzed int
	SinkCount         int
	DefPairCount      int
	SSATime           time.Duration
	DDGTime           time.Duration
	Truncated         int // functions that hit the state cap

	// Parallel reports how the bottom-up scheduler executed (phase 3+4).
	Parallel ParallelStats

	// Resolve reports how phase 2 bound indirect callsites (zero when
	// structsim is disabled or the run ablated SSE).
	Resolve ResolveStats
	// Alias aggregates the alias-rewrite statistics over live-analyzed
	// functions: pairs synthesized, pairs dropped past the budget, class
	// counts, and intern-table shape. Components replayed from a summary
	// store contribute zero — the field is run telemetry, deliberately
	// kept out of stored entries so the deterministic result (findings,
	// summaries, counters) stays byte-identical with and without a store.
	Alias AliasStats

	// SumStore counts this run's summary-store lookups across both
	// phases (zero when Options.SummaryStore is nil).
	SumStore StoreStats
}

// StoreStats counts one analysis run's summary-store lookups.
type StoreStats struct {
	// Hits is the number of analysis units (phase-1 functions and
	// bottom-up components) replayed from the store.
	Hits int
	// Misses is the number of units that had to be symbolically
	// executed (and were then written back).
	Misses int
}

// AliasStats aggregates the alias-rewrite pass's statistics across the
// functions analyzed live in one run.
type AliasStats struct {
	// Added counts synthesized alias pairs appended to definition pairs.
	Added int
	// Dropped counts synthesized pairs discarded past the engine budget
	// (MaxNewPairs / MaxNewPairsSSE) — previously lost silently.
	Dropped int
	// Classes counts alias classes with two or more members (SSE only).
	Classes int
	// Intern sums the per-function intern-table statistics (SSE only).
	Intern sse.Stats
}

// Merge adds b's counts into a.
func (a *AliasStats) Merge(b AliasStats) {
	a.Added += b.Added
	a.Dropped += b.Dropped
	a.Classes += b.Classes
	a.Intern.Nodes += b.Intern.Nodes
	a.Intern.Hits += b.Intern.Hits
	a.Intern.Misses += b.Intern.Misses
	a.Intern.Unions += b.Intern.Unions
	a.Intern.Conflicts += b.Intern.Conflicts
}

// ParallelStats describes one parallel bottom-up interprocedural pass.
type ParallelStats struct {
	// Workers is the worker count the SCC-DAG scheduler ran with.
	Workers int
	// Components is the number of call-graph SCC components scheduled.
	Components int
	// CriticalPath is the longest chain of dependent components — the
	// minimum number of sequential scheduling steps, so
	// Components/CriticalPath approximates the achievable DDG speedup.
	CriticalPath int
}

// VulnerablePaths returns the unsanitized findings (Table III's
// "Vulnerable paths" column).
func (r *Result) VulnerablePaths() []taint.Finding {
	var out []taint.Finding
	for _, f := range r.Findings {
		if !f.Sanitized {
			out = append(out, f)
		}
	}
	return out
}

// Vulnerabilities deduplicates unsanitized findings by sink location and
// class (Table III's "Vulnerability" column: several paths may reach the
// same weak sink).
func (r *Result) Vulnerabilities() []taint.Finding {
	seen := make(map[string]bool)
	var out []taint.Finding
	for _, f := range r.Findings {
		if f.Sanitized {
			continue
		}
		key := taint.VulnKey(f.SinkFunc, f.Sink, f.SinkAddr, f.Class.String())
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, f)
	}
	return out
}

// ErrNoProgram is returned when prog is nil or empty.
var ErrNoProgram = errors.New("dataflow: empty program")

// Analyze runs the full DTaint pipeline over a program.
func Analyze(prog *cfg.Program, opts Options) (*Result, error) {
	if prog == nil || len(prog.Funcs) == 0 {
		return nil, ErrNoProgram
	}
	names := filteredNames(prog, opts.Filter)
	if len(names) == 0 {
		return nil, ErrNoProgram
	}
	if opts.Symexec.Prototypes == nil {
		opts.Symexec.Prototypes = taint.PrototypesFor(opts.Vocab)
	}

	res := &Result{Summaries: make(map[string]*symexec.Summary, len(names))}

	// The summary-store fingerprinter keys both cached granularities.
	// The filter tag is deliberately empty: a function filter only
	// selects which functions and call-graph components exist, and both
	// are captured structurally by the per-function and per-component
	// digests (see sumstore.Fingerprinter).
	var fp *sumstore.Fingerprinter
	if opts.SummaryStore != nil {
		fp = sumstore.NewFingerprinter(prog, OptionsFingerprint(opts, ""))
	}

	// Phase 1: per-function static symbolic analysis (the paper's SSA
	// module). Scratch trackers supply library models; their findings are
	// discarded — this phase only exists to collect layouts, types, and
	// indirect callsites. Functions are independent, so the phase fans
	// out across workers (each with its own tracker).
	t0 := time.Now()
	st := opts.StartStage("function-analysis", obs.KV("functions", len(names)))
	phase1 := runPhase1(prog, names, opts, fp, res, st.span)
	res.SSATime = time.Since(t0)
	st.End("functions", len(names))

	// Phase 2: indirect-call resolution. By default each callsite is
	// resolved from SSE equivalence classes (registration and dispatch
	// paths expanded through per-function alias classes, matched by
	// interned-path identity) with layout similarity demoted to a
	// tie-breaker; ablating SSE falls back to pure layout-similarity
	// resolution, and ablating structsim skips the phase entirely.
	if !opts.DisableStructSim {
		st = opts.StartStage("structsim")
		if opts.DisableSSE {
			res.Resolutions = structsim.ResolveIndirect(phase1)
		} else {
			res.Resolutions, res.Resolve = resolveIndirectSSE(phase1)
			st.span.SetAttr("by_sse", res.Resolve.BySSE)
			st.span.SetAttr("by_structsim", res.Resolve.ByStructSim)
		}
		for _, r := range res.Resolutions {
			prog.AddCallEdge(r.Caller, r.Site, r.Callee)
		}
		st.End("resolved", len(res.Resolutions))
	}

	// Phase 3+4: bottom-up interprocedural data flow with alias rewriting,
	// scheduled over the condensed call graph's SCC DAG.
	t1 := time.Now()
	st = opts.StartStage("interproc-dataflow", obs.KV("functions", len(names)))
	runBottomUp(prog, names, opts, fp, res, st.span)
	res.DDGTime = time.Since(t1)
	st.End("workers", res.Parallel.Workers,
		"components", res.Parallel.Components,
		"findings", len(res.Findings))

	st = opts.StartStage("count-sinks")
	res.SinkCount = countSinks(prog, names, res.Summaries, opts)
	st.End("sinks", res.SinkCount)

	// Findings are emitted after the deterministic per-component merge,
	// so their multiset (and even their order) is worker-count-independent.
	for _, f := range res.Findings {
		opts.Events.Emit(events.ScanEvent{Type: events.TypeFinding, Attrs: map[string]any{
			"class":     f.Class.String(),
			"sink":      f.Sink,
			"sinkFunc":  f.SinkFunc,
			"sinkAddr":  f.SinkAddr,
			"source":    f.Source,
			"sanitized": f.Sanitized,
		}})
	}
	if opts.SummaryStore != nil {
		opts.Events.Emit(events.ScanEvent{Type: events.TypeSumStore, Attrs: map[string]any{
			"hits":   res.SumStore.Hits,
			"misses": res.SumStore.Misses,
		}})
	}

	opts.Metrics.Counter("dtaint_functions_analyzed_total",
		"Functions analyzed by the interprocedural pass.", nil).Add(uint64(res.FunctionsAnalyzed))
	opts.Metrics.Counter("dtaint_defpairs_total",
		"Definition pairs in generated data flows.", nil).Add(uint64(res.DefPairCount))
	opts.Metrics.Counter("dtaint_findings_total",
		"Source-to-sink findings, sanitized included.", nil).Add(uint64(len(res.Findings)))
	opts.Metrics.Counter("dtaint_truncated_functions_total",
		"Functions that hit the symbolic state cap.", nil).Add(uint64(res.Truncated))
	if opts.SummaryStore != nil {
		opts.SummaryStore.PublishMetrics(opts.Metrics)
	}
	return res, nil
}

// runPhase1 analyzes every function independently, in parallel. stageSpan
// (nil when tracing is off) parents one "ssa-function" span per unit —
// the events -progress counts against the stage's "functions" total.
// With a summary store, each function's phase-1 key is consulted first:
// phase 1 applies no callee summaries and its scratch tracker's
// side-effects are discarded, so a stored summary replays the unit
// exactly, and skipping the execution cannot affect any other unit.
func runPhase1(prog *cfg.Program, names []string, opts Options, fp *sumstore.Fingerprinter, res *Result, stageSpan *obs.Span) map[string]*symexec.Summary {
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	store := opts.SummaryStore
	var keys []string
	if store != nil {
		// Keys are derived serially up front: digests walk decoded
		// instructions, a negligible pass next to symbolic execution.
		keys = make([]string, len(names))
		for i, name := range names {
			keys[i] = fp.FuncKey(name)
		}
	}
	fnSec := opts.Metrics.Histogram("dtaint_fn_ssa_seconds",
		"Per-function symbolic analysis time (phase 1).", obs.DefTimeBuckets, nil)
	fnStates := opts.Metrics.Histogram("dtaint_fn_states_explored",
		"Symbolic states explored per function.", obs.ExpBuckets(1, 4, 8), nil)
	var hits, misses atomic.Int64
	var completed atomic.Int64
	analyzeOne := func(scratch *taint.Tracker, i int, name string) *symexec.Summary {
		defer func() {
			// The atomic counter hands every unit a unique done value, so
			// the decile-crossing progress events are deterministic for
			// any worker interleaving.
			opts.Events.ProgressDecile("function-analysis", int(completed.Add(1)), len(names))
		}()
		if store != nil {
			if sum, ok := store.GetSummary(keys[i]); ok {
				hits.Add(1)
				return sum
			}
		}
		sp := stageSpan.StartChild("ssa-function", obs.KV("fn", name))
		t0 := time.Now()
		scratch.BeginFunction(name)
		sum := symexec.Analyze(prog.ByName[name], prog.Binary, scratch, opts.Symexec)
		fnSec.Observe(time.Since(t0).Seconds())
		fnStates.Observe(float64(sum.StatesExplored))
		sp.End()
		if store != nil {
			misses.Add(1)
			store.PutSummary(keys[i], sum)
		}
		return sum
	}
	sums := make([]*symexec.Summary, len(names))
	if workers <= 1 {
		scratch := newTracker(opts, prog.Binary)
		for i, name := range names {
			sums[i] = analyzeOne(scratch, i, name)
		}
	} else {
		var wg sync.WaitGroup
		var next atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scratch := newTracker(opts, prog.Binary)
				for {
					i := int(next.Add(1)) - 1
					if i >= len(names) {
						return
					}
					sums[i] = analyzeOne(scratch, i, names[i])
				}
			}()
		}
		wg.Wait()
	}
	res.SumStore.Hits += int(hits.Load())
	res.SumStore.Misses += int(misses.Load())
	out := make(map[string]*symexec.Summary, len(names))
	for i, name := range names {
		out[name] = sums[i]
	}
	return out
}

func filteredNames(prog *cfg.Program, filter func(string) bool) []string {
	names := make([]string, 0, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		if filter == nil || filter(fn.Name) {
			names = append(names, fn.Name)
		}
	}
	sort.Strings(names)
	return names
}

// countSinks counts static sink sites: import callsites whose callee is in
// the vocabulary's sink census plus loop-copy stores (deduplicated by
// address).
func countSinks(prog *cfg.Program, names []string, sums map[string]*symexec.Summary, opts Options) int {
	census := taint.Sinks
	if opts.Vocab != nil {
		census = opts.Vocab.SinkNames()
	}
	sinkNames := make(map[string]bool, len(census)+len(opts.ExtraSinks))
	for _, s := range census {
		sinkNames[s] = true
	}
	for _, s := range opts.ExtraSinks {
		sinkNames[s.Name] = true
	}
	n := 0
	for _, name := range names {
		fn := prog.ByName[name]
		for _, cs := range fn.Calls {
			if cs.Kind == cfg.CallImport && sinkNames[cs.Callee] {
				n++
			}
		}
		if sum := sums[name]; sum != nil {
			seen := map[uint32]bool{}
			for _, ls := range sum.LoopStores {
				if !seen[ls.Addr] {
					seen[ls.Addr] = true
					n++
				}
			}
		}
	}
	return n
}

// interOracle composes the taint tracker's library models with callee
// summary application for local calls (Algorithm 2). The summary and
// pending lookups are injected by the scheduler so a component worker
// sees its own in-flight component first and the published global state
// behind it.
type interOracle struct {
	tracker  *taint.Tracker
	lookup   func(name string) (*symexec.Summary, bool)
	pendings func(name string) []taint.PendingSink
	noVRange bool
}

var _ symexec.Oracle = (*interOracle)(nil)

// Call implements symexec.Oracle.
func (o *interOracle) Call(ctx *symexec.CallContext) symexec.CallEffect {
	if ctx.Kind == cfg.CallImport || ctx.Kind == cfg.CallUnknown {
		return o.tracker.Call(ctx)
	}
	sum, ok := o.lookup(ctx.Callee)
	if !ok {
		// Within an SCC (recursion) the callee may not be summarized yet;
		// the engine falls back to a fresh return symbol.
		return symexec.CallEffect{}
	}
	sub := substitutor(ctx)

	eff := symexec.CallEffect{Handled: true}
	eff.Ret = calleeRet(sum, sub, ctx.Callee, ctx.Site)
	// PushToCallSite: exported definitions (root pointer is a formal
	// argument, a heap identity, or tainted data) are instantiated in the
	// caller's state.
	for _, dp := range sum.DefPairs {
		if !exportable(dp.D) {
			continue
		}
		// Definitions mentioning callee frame-locals cannot be expressed
		// in the caller: the callee's "sp" symbol would collide with the
		// caller's own stack pointer.
		if containsFrameLocal(dp.D) || containsFrameLocal(dp.U) {
			continue
		}
		addr, okD := dp.D.DerefAddr()
		if !okD {
			continue
		}
		eff.MemDefs = append(eff.MemDefs, symexec.MemDef{
			Addr: sub(addr),
			Val:  sub(dp.U),
		})
	}
	// Interval facts proven in the callee climb to the caller: length and
	// parsed-value symbols are hash-stable across the substitution
	// (ReplaceFormalArgs cannot rewrite hashed names), so they import
	// verbatim; the return value's interval attaches to the instantiated
	// return expression's key. Formal-argument keys (argN) are skipped — a
	// bound observed on one path through the callee does not hold for the
	// actual on every path.
	if !o.noVRange && len(sum.Ranges) > 0 {
		addRange := func(k string, iv vrange.Interval) {
			if eff.Ranges == nil {
				eff.Ranges = make(map[string]vrange.Interval)
			}
			eff.Ranges[k] = iv
		}
		for k, iv := range sum.Ranges {
			if strings.HasPrefix(k, "len_") || strings.HasPrefix(k, "atoi_") {
				addRange(k, iv)
			}
		}
		if eff.Ret != nil && len(sum.Rets) > 0 {
			riv := vrange.Bottom()
			for _, r := range sum.Rets {
				riv = riv.Join(vrange.OfExpr(r, vrange.Env(sum.Ranges)))
			}
			if riv.Bounded() {
				addRange(eff.Ret.Key(), riv)
			}
		}
	}
	// Pending sinks climb from the callee into this function.
	o.tracker.ImportPending(o.pendings(ctx.Callee), sub, ctx.Site)
	return eff
}

// calleeRet instantiates a summarized callee's return value at the
// callsite (Algorithm 2's ReplaceRetVariable). A single return
// substitutes directly; a small set of alternative returns is
// OR-combined so taint in any branch's return value survives (sound for
// detection). When the set is too large to combine, or every substituted
// return resolves to nil, the callee's return must not silently vanish:
// the opaque per-callsite ret symbol (the same name the engine would
// assign) is kept instead.
func calleeRet(sum *symexec.Summary, sub func(*expr.Expr) *expr.Expr, callee string, site uint32) *expr.Expr {
	var ret *expr.Expr
	switch {
	case len(sum.Rets) == 1:
		ret = sub(sum.Rets[0])
	case len(sum.Rets) >= 2 && len(sum.Rets) <= 4:
		for _, r := range sum.Rets {
			rs := sub(r)
			if rs == nil {
				continue
			}
			if ret == nil {
				ret = rs
			} else if !ret.Equal(rs) {
				ret = expr.Bin(expr.OpOr, ret, rs)
			}
		}
	}
	if ret == nil && len(sum.Rets) > 0 {
		ret = expr.Sym(expr.RetName(callee, uint64(site)))
	}
	return ret
}

// substitutor builds Algorithm 2's replacement: formal arguments become
// the callsite's actual expressions, heap identities are re-hashed with
// the callsite (unique per callsite chain), and the result is resolved
// against the live caller state.
func substitutor(ctx *symexec.CallContext) func(*expr.Expr) *expr.Expr {
	m := make(map[string]*expr.Expr, len(ctx.Args))
	for i, a := range ctx.Args {
		if a != nil {
			m[expr.ArgName(i)] = a
		}
	}
	site := uint64(ctx.Site)
	return func(e *expr.Expr) *expr.Expr {
		if e == nil {
			return nil
		}
		// Re-hash heap identities BEFORE substituting actuals: only heap
		// symbols originating in the callee (its allocation sites) extend
		// their callsite chain; heap pointers the caller passes in as
		// arguments keep their identity.
		e = e.MapSyms(func(name string) *expr.Expr {
			if expr.IsHeapName(name) {
				return expr.Sym(expr.RehashHeap(name, site))
			}
			return nil
		})
		e = e.SubstMap(m)
		return ctx.ResolveDeep(e)
	}
}

// exportable reports whether a definition's destination survives the
// callee's frame: rooted at a formal argument, a heap object, tainted
// data, or an absolute memory address (a global — Section III-B: "in the
// absolute memory address, DTaint directly uses the memory to present
// variables, such as 0x670B0"). Stack-rooted and register-init-rooted
// definitions are locals.
func exportable(d *expr.Expr) bool {
	if isGlobalDeref(d) {
		return true
	}
	root := d.RootPointer()
	if root == nil {
		return false
	}
	name, ok := root.SymName()
	if !ok {
		return false
	}
	if _, isArg := expr.ArgIndex(name); isArg {
		return true
	}
	return expr.IsHeapName(name) || expr.IsTaintName(name)
}

// isGlobalDeref reports whether d is a memory access at an absolute
// (constant) address, possibly nested (deref(deref(0x670B0)+4)).
func isGlobalDeref(d *expr.Expr) bool {
	addr, ok := d.DerefAddr()
	if !ok {
		return false
	}
	if _, isConst := addr.ConstVal(); isConst {
		return true
	}
	base, _, ok := addr.BasePlusOffset()
	if !ok {
		return false
	}
	if _, isConst := base.ConstVal(); isConst {
		return true
	}
	if base.IsDeref() {
		return isGlobalDeref(base)
	}
	return false
}

// containsFrameLocal reports whether e mentions a symbol private to the
// callee's frame (its stack pointer, uninitialized registers, or opaque
// truncation symbols).
func containsFrameLocal(e *expr.Expr) bool {
	if e == nil {
		return false
	}
	for _, s := range e.Syms() {
		if s == expr.StackSym || strings.HasPrefix(s, "init_") || strings.HasPrefix(s, "opaque_") {
			return true
		}
	}
	return false
}

package dataflow

import (
	"errors"
	"testing"

	"dtaint/internal/asm"
	"dtaint/internal/cfg"
	"dtaint/internal/taint"
)

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	bin, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := cfg.Build(bin)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func findVuln(res *Result, sink, source string) *taint.Finding {
	for i := range res.Findings {
		f := &res.Findings[i]
		if f.Sink == sink && f.Source == source && !f.Sanitized {
			return f
		}
	}
	return nil
}

// The paper's running example (Figures 5-7): woo taints a buffer reachable
// through a structure field; foo loads the field and passes it to memcpy.
// The data path crosses the function boundary through deref(arg0+0x4C).
const fooWooSrc = `
.arch arm
.import recv
.import memcpy

.func foo
  SUB SP, SP, #0x118
  MOV R5, R0
  MOV R4, R1
  MOV R0, R5
  MOV R1, R4
  BL woo
  MOV R2, R0
  LDR R1, [R5, #0x4C]
  ADD R0, SP, #0x18
  BL memcpy
  BX LR
.endfunc

.func woo
  LDR R5, [R1, #0x24]
  STR R5, [R0, #0x4C]
  MOV R2, #0x200
  MOV R1, R5
  BL recv
  BX LR
.endfunc
`

func TestPaperRunningExample(t *testing.T) {
	res := run(t, fooWooSrc, Options{})
	f := findVuln(res, "memcpy", "recv")
	if f == nil {
		for _, g := range res.Findings {
			t.Logf("finding: %s", g.String())
		}
		t.Fatal("recv -> memcpy path not found")
	}
	if f.Class != taint.ClassBufferOverflow {
		t.Fatalf("class = %s", f.Class)
	}
	if f.SinkFunc != "foo" {
		t.Fatalf("sink in %s, want foo", f.SinkFunc)
	}
}

func TestSanitizedPathNotReported(t *testing.T) {
	// Same flow, but the copy length is bounded before memcpy:
	// the source buffer value is length-checked via strlen.
	src := `
.arch arm
.import recv
.import memcpy
.import strlen

.func foo
  SUB SP, SP, #0x118
  MOV R5, R0
  MOV R4, R1
  MOV R0, R5
  MOV R1, R4
  BL woo
  LDR R1, [R5, #0x4C]
  MOV R6, R1
  MOV R0, R6
  BL strlen
  CMP R0, #0x40
  BGE out
  MOV R1, R6
  ADD R0, SP, #0x18
  MOV R2, #0x20
  BL memcpy
out:
  BX LR
.endfunc

.func woo
  LDR R5, [R1, #0x24]
  STR R5, [R0, #0x4C]
  MOV R2, #0x200
  MOV R1, R5
  BL recv
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if f := findVuln(res, "memcpy", "recv"); f != nil {
		t.Fatalf("sanitized path reported: %s", f.String())
	}
	// The path must still be discovered, just marked sanitized.
	var sanitized bool
	for _, f := range res.Findings {
		if f.Sink == "memcpy" && f.Source == "recv" && f.Sanitized {
			sanitized = true
		}
	}
	if !sanitized {
		t.Fatal("path lost entirely rather than sanitized")
	}
}

func TestCommandInjectionGetenvSystem(t *testing.T) {
	// CVE-2015-2051 analog: getenv value flows into system() unchecked.
	src := `
.arch arm
.import getenv
.import system
.data soapaction "HTTP_SOAPACTION"

.func handler
  MOV R0, =soapaction
  BL getenv
  BL system
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	f := findVuln(res, "system", "getenv")
	if f == nil {
		t.Fatal("getenv -> system injection not found")
	}
	if f.Class != taint.ClassCommandInjection {
		t.Fatalf("class = %s", f.Class)
	}
}

func TestCommandInjectionSanitizedBySemicolonScan(t *testing.T) {
	// The same flow with a byte-wise ';' check is not a vulnerability.
	src := `
.arch arm
.import getenv
.import system
.data name "CMD"

.func handler
  MOV R0, =name
  BL getenv
  MOV R5, R0
loop:
  LDRB R4, [R5, #0]
  CMP R4, #0x3B
  BEQ reject
  ADD R5, R5, #1
  CMP R4, #0
  BNE loop
  MOV R0, R5
  BL system
reject:
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if f := findVuln(res, "system", "getenv"); f != nil {
		t.Fatalf("semicolon-checked command reported: %s", f.String())
	}
}

func TestCommandInjectionSanitizedByStrchr(t *testing.T) {
	src := `
.arch arm
.import getenv
.import system
.import strchr
.data name "CMD"

.func handler
  MOV R0, =name
  BL getenv
  MOV R5, R0
  MOV R0, R5
  MOV R1, #0x3B
  BL strchr
  CMP R0, #0
  BNE reject
  MOV R0, R5
  BL system
reject:
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if f := findVuln(res, "system", "getenv"); f != nil {
		t.Fatalf("strchr-checked command reported: %s", f.String())
	}
}

func TestPendingSinkClimbsTwoLevels(t *testing.T) {
	// strcpy sink in a leaf on its argument; taint introduced two callers
	// above. The pending sink must climb through mid into top.
	src := `
.arch arm
.import getenv
.import strcpy
.data key "PASSWORD"

.func leafsink
  SUB SP, SP, #0x40
  MOV R1, R0
  ADD R0, SP, #8
  BL strcpy
  BX LR
.endfunc

.func mid
  BL leafsink
  BX LR
.endfunc

.func top
  MOV R0, =key
  BL getenv
  BL mid
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	f := findVuln(res, "strcpy", "getenv")
	if f == nil {
		for _, g := range res.Findings {
			t.Logf("finding: %s", g.String())
		}
		t.Fatal("two-level pending sink not finalized")
	}
	if f.SinkFunc != "leafsink" {
		t.Fatalf("sink func = %s", f.SinkFunc)
	}
	if len(f.Path) != 3 {
		t.Fatalf("path = %v, want 3 steps", f.Path)
	}
}

func TestPendingSinkWithCalleeSideCheck(t *testing.T) {
	// The leaf checks strlen before copying; the climbed path must stay
	// sanitized even though the taint arrives from the caller.
	src := `
.arch arm
.import getenv
.import strcpy
.import strlen
.data key "COOKIE"

.func leafsafe
  SUB SP, SP, #0x40
  MOV R5, R0
  BL strlen
  CMP R0, #0x20
  BGE out
  MOV R1, R5
  ADD R0, SP, #8
  BL strcpy
out:
  BX LR
.endfunc

.func top
  MOV R0, =key
  BL getenv
  BL leafsafe
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if f := findVuln(res, "strcpy", "getenv"); f != nil {
		t.Fatalf("callee-checked path reported: %s", f.String())
	}
}

func TestLoopCopySink(t *testing.T) {
	// read() fills a buffer; a loop copies it byte-by-byte to a stack
	// buffer with a 2048-iteration bound — the Hikvision loop-copy bug.
	src := `
.arch arm
.import read

.func vulnloop
  SUB SP, SP, #0x30
  MOV R1, R0
  MOV R5, R0
  MOV R0, #0
  MOV R2, #0x800
  BL read
  MOV R2, #0
  ADD R6, SP, #4
copy:
  LDRB R3, [R5, #0]
  STRB R3, [R6, #0]
  ADD R5, R5, #1
  ADD R6, R6, #1
  ADD R2, R2, #1
  CMP R2, #0x800
  BLT copy
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	f := findVuln(res, "loop", "read")
	if f == nil {
		for _, g := range res.Findings {
			t.Logf("finding: %s", g.String())
		}
		t.Fatal("loop-copy sink not found")
	}

	// A small fixed-bound loop copy is not reported.
	safe := `
.arch arm
.import read

.func okloop
  SUB SP, SP, #0x30
  MOV R1, R0
  MOV R5, R0
  MOV R0, #0
  MOV R2, #0x10
  BL read
  MOV R2, #0
  ADD R6, SP, #4
copy:
  LDRB R3, [R5, #0]
  STRB R3, [R6, #0]
  ADD R5, R5, #1
  ADD R6, R6, #1
  ADD R2, R2, #1
  CMP R2, #0x10
  BLT copy
  BX LR
.endfunc
`
	res2 := run(t, safe, Options{})
	if f := findVuln(res2, "loop", "read"); f != nil {
		t.Fatalf("bounded loop copy reported: %s", f.String())
	}
}

// Alias ablation: the tainted buffer is a callee stack local whose pointer
// is stored into the caller's structure. Only Algorithm 1 exposes the
// flow as deref(deref(arg0+4)).
const aliasSrc = `
.arch arm
.import recv
.import strcpy

.func fill
  SUB SP, SP, #0x40
  ADD R5, SP, #0
  STR R5, [R0, #4]
  MOV R1, R5
  MOV R0, #0
  MOV R2, #0x40
  BL recv
  BX LR
.endfunc

.func use
  SUB SP, SP, #0x80
  ADD R6, SP, #0x20
  MOV R0, R6
  BL fill
  LDR R1, [R6, #4]
  ADD R0, SP, #0
  BL strcpy
  BX LR
.endfunc
`

func TestAliasRequiredForDetection(t *testing.T) {
	res := run(t, aliasSrc, Options{})
	if findVuln(res, "strcpy", "recv") == nil {
		for _, g := range res.Findings {
			t.Logf("finding: %s", g.String())
		}
		t.Fatal("alias-dependent path not found with aliasing enabled")
	}
	ablated := run(t, aliasSrc, Options{DisableAlias: true})
	if f := findVuln(ablated, "strcpy", "recv"); f != nil {
		t.Fatalf("path found without Algorithm 1 — ablation is vacuous: %s", f.String())
	}
}

// Structsim ablation: taint crosses an indirect call that only layout
// similarity can resolve.
const structSimSrc = `
.arch arm
.import recv
.import strcpy

.func handler
  SUB SP, SP, #0x40
  LDR R1, [R0, #0]
  ADD R0, SP, #8
  BL strcpy
  BX LR
.endfunc

.func register
  MOV R4, #0x10000
  STR R4, [R0, #12]
  MOV R5, #0
  STR R5, [R0, #0]
  STR R5, [R0, #4]
  BX LR
.endfunc

.func dispatch
  MOV R6, R0
  LDR R1, [R6, #0]
  LDR R2, [R6, #4]
  MOV R5, R1
  MOV R1, R5
  MOV R0, #0
  MOV R2, #0x100
  BL recv
  MOV R0, R6
  LDR R9, [R6, #12]
  BLX R9
  BX LR
.endfunc
`

func TestStructSimilarityRequiredForDetection(t *testing.T) {
	bin, err := asm.Assemble("t", structSimSrc)
	if err != nil {
		t.Fatal(err)
	}
	if fn, _ := bin.FuncByName("handler"); fn.Addr != 0x10000 {
		t.Fatalf("layout assumption broken: handler at %#x", fn.Addr)
	}
	res := run(t, structSimSrc, Options{})
	if len(res.Resolutions) != 1 || res.Resolutions[0].Callee != "handler" {
		t.Fatalf("resolutions = %+v", res.Resolutions)
	}
	if findVuln(res, "strcpy", "recv") == nil {
		for _, g := range res.Findings {
			t.Logf("finding: %s", g.String())
		}
		t.Fatal("indirect-call path not found with structsim enabled")
	}
	ablated := run(t, structSimSrc, Options{DisableStructSim: true})
	if f := findVuln(ablated, "strcpy", "recv"); f != nil {
		t.Fatalf("path found without structsim — ablation is vacuous: %s", f.String())
	}
}

// SSE ablation: the ops-struct dispatch idiom. register stores the ops
// table into obj (deref(obj+8) = ops) and the handler address into the
// table through the ops argument itself ([ops+4]); dispatch loads the
// function pointer through obj (deref(deref(obj+8)+4)). The registration
// is observed under root arg1 while the callsite's path is rooted at
// arg0, so layout similarity cannot align their base keys — only the
// alias fact deref(arg0+8) = arg1 connects the two spellings, which is
// exactly what the SSE equivalence classes propagate.
const sseSrc = `
.arch arm
.import recv
.import strcpy

.func handler
  SUB SP, SP, #0x40
  LDR R1, [R0, #0]
  ADD R0, SP, #8
  BL strcpy
  BX LR
.endfunc

.func register
  STR R1, [R0, #8]
  MOV R4, &handler
  STR R4, [R1, #4]
  MOV R5, #0
  STR R5, [R0, #0]
  BX LR
.endfunc

.func dispatch
  MOV R6, R0
  LDR R1, [R6, #0]
  MOV R0, #0
  MOV R2, #0x100
  BL recv
  MOV R0, R6
  LDR R2, [R6, #8]
  LDR R9, [R2, #4]
  BLX R9
  BX LR
.endfunc
`

func TestSSERequiredForDetection(t *testing.T) {
	res := run(t, sseSrc, Options{})
	if len(res.Resolutions) != 1 || res.Resolutions[0].Callee != "handler" {
		t.Fatalf("resolutions = %+v", res.Resolutions)
	}
	if res.Resolve.BySSE != 1 || res.Resolve.ByStructSim != 0 {
		t.Fatalf("resolve stats = %+v", res.Resolve)
	}
	if findVuln(res, "strcpy", "recv") == nil {
		for _, g := range res.Findings {
			t.Logf("finding: %s", g.String())
		}
		t.Fatal("ops-struct path not found with SSE enabled")
	}
	ablated := run(t, sseSrc, Options{DisableSSE: true})
	if len(ablated.Resolutions) != 0 {
		t.Fatalf("structsim alone resolved the ops-struct site — ablation is vacuous: %+v",
			ablated.Resolutions)
	}
	if f := findVuln(ablated, "strcpy", "recv"); f != nil {
		t.Fatalf("path found without SSE — ablation is vacuous: %s", f.String())
	}
}

func TestHeapIdentityPerCallsiteChain(t *testing.T) {
	// Listing 1: x = B(); y = B() must be distinct heap objects.
	src := `
.arch arm
.import malloc

.func B
  MOV R0, #4
  BL malloc
  BX LR
.endfunc

.func A
  BL B
  MOV R4, R0
  BL B
  MOV R5, R0
  STR R4, [SP, #-4]
  STR R5, [SP, #-8]
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	sumA := res.Summaries["A"]
	if sumA == nil {
		t.Fatal("A not summarized")
	}
	var keys []string
	for _, c := range sumA.Calls {
		if c.Callee == "B" {
			keys = append(keys, c.Ret.Key())
		}
	}
	if len(keys) != 2 {
		t.Fatalf("calls to B = %d", len(keys))
	}
	if keys[0] == keys[1] {
		t.Fatalf("heap identities collide across callsites: %s", keys[0])
	}
}

func TestRecursionTerminates(t *testing.T) {
	src := `
.arch arm
.import getenv
.import system
.data k "K"

.func even
  CMP R0, #0
  BEQ done
  SUB R0, R0, #1
  BL odd
done:
  BX LR
.endfunc

.func odd
  CMP R0, #0
  BEQ done
  SUB R0, R0, #1
  BL even
done:
  BX LR
.endfunc

.func main
  MOV R0, #5
  BL even
  MOV R0, =k
  BL getenv
  BL system
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if res.FunctionsAnalyzed != 3 {
		t.Fatalf("analyzed %d functions", res.FunctionsAnalyzed)
	}
	if findVuln(res, "system", "getenv") == nil {
		t.Fatal("vulnerability in recursive binary missed")
	}
}

func TestVulnerablePathsVsVulnerabilities(t *testing.T) {
	// Two sources reaching the same sink: two paths, one vulnerability.
	src := `
.arch arm
.import getenv
.import system
.data a "A"
.data b "B"

.func handler
  CMP R4, #1
  BEQ other
  MOV R0, =a
  BL getenv
  B go
other:
  MOV R0, =b
  BL getenv
go:
  BL system
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	paths := res.VulnerablePaths()
	vulns := res.Vulnerabilities()
	if len(paths) < 2 {
		t.Fatalf("paths = %d, want >= 2", len(paths))
	}
	if len(vulns) != 1 {
		for _, v := range vulns {
			t.Logf("vuln: %s", v.String())
		}
		t.Fatalf("vulns = %d, want 1", len(vulns))
	}
}

func TestFilterRestrictsAnalysis(t *testing.T) {
	res := run(t, fooWooSrc, Options{Filter: func(name string) bool { return name == "woo" }})
	if res.FunctionsAnalyzed != 1 {
		t.Fatalf("analyzed %d, want 1", res.FunctionsAnalyzed)
	}
	if findVuln(res, "memcpy", "recv") != nil {
		t.Fatal("foo's sink reported while filtered out")
	}
}

func TestSinkCount(t *testing.T) {
	res := run(t, fooWooSrc, Options{})
	if res.SinkCount != 1 { // one memcpy callsite
		t.Fatalf("sink count = %d", res.SinkCount)
	}
}

func TestEmptyProgram(t *testing.T) {
	if _, err := Analyze(nil, Options{}); !errors.Is(err, ErrNoProgram) {
		t.Fatalf("want ErrNoProgram, got %v", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	res := run(t, fooWooSrc, Options{})
	if res.FunctionsAnalyzed != 2 || res.DefPairCount == 0 {
		t.Fatalf("stats = %+v", res)
	}
	if res.SSATime <= 0 || res.DDGTime <= 0 {
		t.Fatalf("times not measured: %+v", res)
	}
}

// Taint survives a callee with multiple return paths: one branch returns
// attacker data, another a constant.
func TestMultiReturnTaintPropagates(t *testing.T) {
	src := `
.arch arm
.import getenv
.import system
.data k "Q"
.data fallback "none"

.func pick
  CMP R1, #0
  BEQ dflt
  MOV R0, =k
  BL getenv
  BX LR
dflt:
  MOV R0, =fallback
  BX LR
.endfunc

.func handler
  BL pick
  BL system
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if findVuln(res, "system", "getenv") == nil {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("taint lost through multi-return callee")
	}
}

// A check in the caller before invoking a vulnerable helper sanitizes the
// climbed path — but only when the bound fits the helper's buffer.
func TestCallerSideCheckOnPendingSink(t *testing.T) {
	mk := func(bound string) string {
		return `
.arch arm
.import getenv
.import strcpy
.import strlen
.data k "Q"

.func store40
  SUB SP, SP, #0x40
  MOV R1, R0
  ADD R0, SP, #0
  BL strcpy
  BX LR
.endfunc

.func handler
  MOV R0, =k
  BL getenv
  MOV R4, R0
  MOV R0, R4
  BL strlen
  CMP R0, ` + bound + `
  BGE out
  MOV R0, R4
  BL store40
out:
  BX LR
.endfunc
`
	}
	fitting := run(t, mk("#0x20"), Options{})
	if f := findVuln(fitting, "strcpy", "getenv"); f != nil {
		t.Fatalf("caller-side fitting check ignored: %s", f.String())
	}
	oversized := run(t, mk("#0x200"), Options{})
	if findVuln(oversized, "strcpy", "getenv") == nil {
		for _, f := range oversized.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("oversized caller-side check treated as sanitizing")
	}
}

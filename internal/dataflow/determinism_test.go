package dataflow

import (
	"reflect"
	"testing"

	"dtaint/internal/cfg"
	"dtaint/internal/corpus"
	"dtaint/internal/image"
	"dtaint/internal/sumstore"
)

// TestSummaryStoreDeterminism is the store-on-vs-off identity gate: for
// every overlap-corpus binary variant, the findings with the summary
// store attached — cold and warm, at 1 and at 8 workers — must be
// deeply equal to the findings of a plain store-less run. A summary
// store may only change wall time, never results.
func TestSummaryStoreDeterminism(t *testing.T) {
	c, err := corpus.BuildOverlapCorpus(corpus.OverlapSpec{
		Images: 2, Variants: 2, SharedFuncs: 12, UniqueFuncs: 6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	analyze := func(data []byte, workers int, store *sumstore.Store) *Result {
		t.Helper()
		bin, err := image.Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := cfg.Build(bin)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(prog, Options{Parallelism: workers, SummaryStore: store})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	for _, workers := range []int{1, 8} {
		store, err := sumstore.NewStore(0, "")
		if err != nil {
			t.Fatal(err)
		}
		var warmHits int
		for v, data := range c.Binaries {
			base := analyze(data, workers, nil)
			cold := analyze(data, workers, store)
			warm := analyze(data, workers, store)
			for pass, res := range map[string]*Result{"cold": cold, "warm": warm} {
				if !reflect.DeepEqual(res.Findings, base.Findings) {
					t.Errorf("workers=%d variant=%d %s: findings differ from store-less run", workers, v, pass)
				}
				if !reflect.DeepEqual(res.Summaries, base.Summaries) {
					t.Errorf("workers=%d variant=%d %s: summaries differ from store-less run", workers, v, pass)
				}
				if res.SinkCount != base.SinkCount || res.DefPairCount != base.DefPairCount {
					t.Errorf("workers=%d variant=%d %s: counters differ (%d/%d vs %d/%d)",
						workers, v, pass, res.SinkCount, res.DefPairCount, base.SinkCount, base.DefPairCount)
				}
			}
			if warm.SumStore.Misses != 0 {
				t.Errorf("workers=%d variant=%d: warm run had %d store misses", workers, v, warm.SumStore.Misses)
			}
			if warm.SumStore.Hits == 0 {
				t.Errorf("workers=%d variant=%d: warm run had no store hits", workers, v)
			}
			warmHits += warm.SumStore.Hits
			if v > 0 && cold.SumStore.Hits == 0 {
				t.Errorf("workers=%d variant=%d: no cross-variant hits on shared functions", workers, v)
			}
		}
		if warmHits == 0 {
			t.Fatalf("workers=%d: store never hit", workers)
		}
	}
}

package dataflow

import (
	"strings"
	"testing"

	"dtaint/internal/taint"
	"dtaint/internal/vocab"
)

func compileVocab(t *testing.T, doc string) *taint.Vocabulary {
	t.Helper()
	spec, err := vocab.Parse([]byte(doc), "test.json")
	if err != nil {
		t.Fatal(err)
	}
	v, err := taint.CompileVocabulary(spec)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

const tinyVocab = `{"version": 1, "functions": [
	{"name": "uart_read", "kind": "source", "retTaint": true},
	{"name": "flash_write", "kind": "sink", "class": "buffer-overflow",
	 "args": [{"type": "char*", "role": "dest"}, {"type": "char*", "role": "src"}]}]}`

// The vocabulary is part of every cache key: a nil Vocab must
// fingerprint identically to the explicit default (default-vocab runs
// stay shareable), while any other vocabulary must change the digest.
func TestOptionsFingerprintVocabulary(t *testing.T) {
	base := OptionsFingerprint(Options{}, "")
	if !strings.HasPrefix(base, "v4;") {
		t.Fatalf("fingerprint version tag wrong: %q", base)
	}
	// The bumped tag makes every pre-SSE (v3) cache entry miss.
	if strings.HasPrefix(base, "v3;") {
		t.Fatalf("stale v3 fingerprint: %q", base)
	}
	if !strings.Contains(base, ";vocab="+taint.DefaultVocabulary().Fingerprint()) {
		t.Fatalf("fingerprint lacks the default vocabulary digest: %q", base)
	}
	explicit := OptionsFingerprint(Options{Vocab: taint.DefaultVocabulary()}, "")
	if explicit != base {
		t.Fatalf("explicit default diverges from nil:\n%q\n%q", explicit, base)
	}

	custom := OptionsFingerprint(Options{Vocab: compileVocab(t, tinyVocab)}, "")
	if custom == base {
		t.Fatal("custom vocabulary did not change the fingerprint")
	}
	// Two independent compilations of the same spec hash identically —
	// the property that lets separate processes share a persistent cache.
	again := OptionsFingerprint(Options{Vocab: compileVocab(t, tinyVocab)}, "")
	if again != custom {
		t.Fatalf("same spec, different fingerprints:\n%q\n%q", again, custom)
	}
}

// A vocabulary change invalidates cached summaries even when every
// other option matches; ablation flags still contribute independently.
func TestOptionsFingerprintIsolation(t *testing.T) {
	v := compileVocab(t, tinyVocab)
	a := OptionsFingerprint(Options{Vocab: v}, "")
	b := OptionsFingerprint(Options{Vocab: v, DisableAlias: true}, "")
	if a == b {
		t.Fatal("alias ablation lost under a custom vocabulary")
	}
	c := OptionsFingerprint(Options{Vocab: v}, "module-tag")
	if c == a {
		t.Fatal("filter tag lost under a custom vocabulary")
	}
	d := OptionsFingerprint(Options{Vocab: v, DisableSSE: true}, "")
	if d == a {
		t.Fatal("sse ablation lost under a custom vocabulary")
	}
	if d == b {
		t.Fatal("sse and alias ablations collide")
	}
}

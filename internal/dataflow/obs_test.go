package dataflow

import (
	"fmt"
	"sort"
	"testing"

	"dtaint/internal/cfg"
	"dtaint/internal/corpus"
	"dtaint/internal/obs"
)

// spanSet renders the (Name, fn-attr) multiset of a trace — the part of
// the span tree that must be identical across worker counts. Span IDs,
// ordering, and timings legitimately vary with scheduling.
func spanSet(tr *obs.Tracer) []string {
	var out []string
	for _, s := range tr.Spans() {
		key := s.Name
		if fn := s.Attr("fn"); fn != nil {
			key += fmt.Sprintf(" fn=%v", fn)
		}
		if n := s.Attr("functions"); n != nil {
			key += fmt.Sprintf(" functions=%v", n)
		}
		out = append(out, key)
	}
	sort.Strings(out)
	return out
}

// The span tree is part of the determinism contract: a sequential and a
// heavily parallel run of the same binary must record the same span
// multiset (one ssa-function and one ddg-function span per function,
// the same stage spans, the same component sizes).
func TestSpanSetDeterministicAcrossWorkers(t *testing.T) {
	spec, ok := corpus.SpecByProduct("DIR-645")
	if !ok {
		t.Fatal("DIR-645 spec missing")
	}
	bin, _, err := corpus.BuildBinary(spec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, workers := range []int{1, 8} {
		prog, err := cfg.Build(bin)
		if err != nil {
			t.Fatal(err)
		}
		tr := obs.NewTracer()
		if _, err := Analyze(prog, Options{Parallelism: workers, Tracer: tr}); err != nil {
			t.Fatal(err)
		}
		got := spanSet(tr)
		if len(got) == 0 {
			t.Fatalf("workers=%d: no spans recorded", workers)
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("workers=8 recorded %d spans, workers=1 recorded %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("span sets diverge at %d:\n got %q\nwant %q", i, got[i], want[i])
			}
		}
	}
}

// Metrics collection must see every function exactly once per phase
// regardless of worker count.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	spec, _ := corpus.SpecByProduct("DIR-645")
	bin, _, err := corpus.BuildBinary(spec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	counts := func(workers int) map[string]uint64 {
		prog, err := cfg.Build(bin)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		res, err := Analyze(prog, Options{Parallelism: workers, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]uint64{}
		for _, s := range reg.Snapshot() {
			switch s.Type {
			case obs.TypeCounter:
				out[s.Name] = uint64(s.Value)
			case obs.TypeHistogram:
				out[s.Name] = s.Count
			}
		}
		if got := out["dtaint_fn_ddg_seconds"]; got != uint64(res.FunctionsAnalyzed) {
			t.Fatalf("workers=%d: ddg histogram has %d observations, %d functions analyzed",
				workers, got, res.FunctionsAnalyzed)
		}
		return out
	}
	seq, par := counts(1), counts(8)
	if len(seq) == 0 {
		t.Fatal("no metrics collected")
	}
	for name, v := range seq {
		if par[name] != v {
			t.Fatalf("metric %s: workers=1 %d, workers=8 %d", name, v, par[name])
		}
	}
}

// Analysis results must be identical with and without observability
// attached — the handles are pure observers.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	spec, _ := corpus.SpecByProduct("DIR-645")
	bin, _, err := corpus.BuildBinary(spec, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts Options) string {
		prog, err := cfg.Build(bin)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Analyze(prog, opts)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(res)
	}
	plain := run(Options{Parallelism: 2})
	observed := run(Options{Parallelism: 2, Tracer: obs.NewTracer(), Metrics: obs.NewRegistry()})
	if plain != observed {
		t.Fatalf("observability changed results:\n--- plain ---\n%s--- observed ---\n%s", plain, observed)
	}
}

package dataflow

import "testing"

// gets() on a stack buffer is unconditionally a finding — no bound can
// exist.
func TestGetsAlwaysVulnerable(t *testing.T) {
	src := `
.arch arm
.import gets

.func handler
  SUB SP, SP, #0x40
  ADD R0, SP, #0
  BL gets
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if findVuln(res, "gets", "gets") == nil {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("gets not reported")
	}
}

// snprintf with a constant size that fits the destination sanitizes;
// an oversized constant does not.
func TestSnprintfBounds(t *testing.T) {
	mk := func(size string) string {
		return `
.arch arm
.import getenv
.import snprintf
.data k "Q"
.data f "%s"

.func handler
  SUB SP, SP, #0x40
  MOV R0, =k
  BL getenv
  MOV R3, R0
  MOV R2, =f
  MOV R1, ` + size + `
  ADD R0, SP, #0
  BL snprintf
  BX LR
.endfunc
`
	}
	safe := run(t, mk("#0x40"), Options{})
	if f := findVuln(safe, "snprintf", "getenv"); f != nil {
		t.Fatalf("fitting snprintf reported: %s", f.String())
	}
	unsafe := run(t, mk("#0x100"), Options{})
	if findVuln(unsafe, "snprintf", "getenv") == nil {
		for _, f := range unsafe.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("oversized snprintf not reported")
	}
}

// strncat with an attacker-derived length is a finding; a small constant
// bound is not.
func TestStrncatBounds(t *testing.T) {
	vuln := `
.arch arm
.import getenv
.import strncat
.import strlen
.data k "Q"

.func handler
  SUB SP, SP, #0x40
  MOV R0, =k
  BL getenv
  MOV R4, R0
  MOV R0, R4
  BL strlen
  MOV R2, R0
  MOV R1, R4
  ADD R0, SP, #0
  BL strncat
  BX LR
.endfunc
`
	res := run(t, vuln, Options{})
	if findVuln(res, "strncat", "getenv") == nil {
		t.Fatal("unbounded strncat not reported")
	}
	safe := `
.arch arm
.import getenv
.import strncat
.data k "Q"

.func handler
  SUB SP, SP, #0x40
  MOV R0, =k
  BL getenv
  MOV R1, R0
  MOV R2, #0x10
  ADD R0, SP, #0
  BL strncat
  BX LR
.endfunc
`
	res2 := run(t, safe, Options{})
	if f := findVuln(res2, "strncat", "getenv"); f != nil {
		t.Fatalf("bounded strncat reported: %s", f.String())
	}
}

// strtol propagates taint like atoi: the parsed number of tainted text is
// attacker-controlled.
func TestStrtolPropagatesTaint(t *testing.T) {
	src := `
.arch arm
.import getenv
.import strtol
.import memcpy
.data k "LEN"

.func handler
  SUB SP, SP, #0x40
  MOV R0, =k
  BL getenv
  MOV R1, #0
  MOV R2, #10
  BL strtol
  MOV R2, R0
  ADD R0, SP, #0
  ADD R1, SP, #0x20
  BL memcpy
  BX LR
.endfunc
`
	res := run(t, src, Options{})
	if findVuln(res, "memcpy", "getenv") == nil {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f.String())
		}
		t.Fatal("strtol-derived length not tracked")
	}
}

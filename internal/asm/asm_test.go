package asm

import (
	"strings"
	"testing"

	"dtaint/internal/image"
	"dtaint/internal/isa"
)

const fooWoo = `
.arch arm
.import recv
.import memcpy

.func foo
  SUB SP, SP, #0x118
  MOV R5, R0
  MOV R4, R1
  BL woo
  MOV R2, R0
  LDR R1, [R5, #0x4C]
  ADD R0, SP, #0x18
  BL memcpy
  BX LR
.endfunc

.func woo
  LDR R5, [R1, #0x24]
  STR R5, [R0, #0x4C]
  MOV R2, #0x200
  MOV R1, R5
  BL recv
  BX LR
.endfunc
`

func TestAssembleFooWoo(t *testing.T) {
	b, err := Assemble("test", fooWoo)
	if err != nil {
		t.Fatal(err)
	}
	if b.Arch != isa.ArchARM {
		t.Fatalf("arch = %v", b.Arch)
	}
	if len(b.Funcs) != 2 {
		t.Fatalf("funcs = %+v", b.Funcs)
	}
	foo, ok := b.FuncByName("foo")
	if !ok || foo.Size != 9*isa.InstSize {
		t.Fatalf("foo = %+v, ok=%v", foo, ok)
	}
	woo, ok := b.FuncByName("woo")
	if !ok || woo.Addr != foo.Addr+foo.Size {
		t.Fatalf("woo = %+v", woo)
	}
	if len(b.Imports) != 2 {
		t.Fatalf("imports = %+v", b.Imports)
	}

	// Decode and check the BL woo target resolved to woo's address.
	code, err := b.FuncCode(foo)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := isa.DecodeAll(b.Arch, code, foo.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if insts[3].Op != isa.OpBL || insts[3].Target != woo.Addr {
		t.Fatalf("BL woo decoded as %+v, want target %#x", insts[3], woo.Addr)
	}
	// BL memcpy resolves to the import stub.
	imp, _ := b.ImportByName("memcpy")
	if insts[7].Op != isa.OpBL || insts[7].Target != imp.Addr {
		t.Fatalf("BL memcpy decoded as %+v, want %#x", insts[7], imp.Addr)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	src := `
.arch mips
.func f
  CMP R4, #64
  BGE done
  MOV R2, #1
  B out
done:
  MOV R2, #0
out:
  BX LR
.endfunc
`
	b, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := b.FuncByName("f")
	code, _ := b.FuncCode(f)
	insts, err := isa.DecodeAll(b.Arch, code, f.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if insts[1].Cond != isa.CondGE || insts[1].Target != f.Addr+4*isa.InstSize {
		t.Fatalf("BGE done = %+v", insts[1])
	}
	if insts[3].Target != f.Addr+5*isa.InstSize {
		t.Fatalf("B out = %+v", insts[3])
	}
}

func TestLocalLabelsPerFunction(t *testing.T) {
	// The same label name in two functions must resolve locally.
	src := `
.arch arm
.func a
  B done
done:
  BX LR
.endfunc
.func b
  MOV R0, #1
  B done
done:
  BX LR
.endfunc
`
	bin, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := bin.FuncByName("b")
	code, _ := bin.FuncCode(bf)
	insts, _ := isa.DecodeAll(bin.Arch, code, bf.Addr)
	if insts[1].Target != bf.Addr+2*isa.InstSize {
		t.Fatalf("b's done resolved to %#x, want %#x", insts[1].Target, bf.Addr+2*isa.InstSize)
	}
}

func TestDataSymbols(t *testing.T) {
	src := `
.arch arm
.import system
.data cmd "reboot"
.func f
  MOV R0, =cmd
  BL system
  BX LR
.endfunc
`
	b, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := b.DataByName("cmd")
	if !ok {
		t.Fatal("cmd data symbol missing")
	}
	if s, ok := b.StringAt(d.Addr); !ok || s != "reboot" {
		t.Fatalf("StringAt = %q, %v", s, ok)
	}
	f, _ := b.FuncByName("f")
	code, _ := b.FuncCode(f)
	insts, _ := isa.DecodeAll(b.Arch, code, f.Addr)
	if !insts[0].HasImm || uint32(insts[0].Imm) != d.Addr {
		t.Fatalf("MOV =cmd decoded as %+v, want imm %#x", insts[0], d.Addr)
	}
}

func TestEntryDirective(t *testing.T) {
	src := `
.arch arm
.func a
  BX LR
.endfunc
.entry b
.func b
  BX LR
.endfunc
`
	b, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	bf, _ := b.FuncByName("b")
	if b.Entry != bf.Addr {
		t.Fatalf("entry = %#x, want %#x", b.Entry, bf.Addr)
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", ".func f\n FOO R0\n.endfunc", "unknown mnemonic"},
		{"outside func", "MOV R0, #1", "outside .func"},
		{"bad reg", ".func f\n MOV R99, #1\n.endfunc", "bad destination"},
		{"undefined ref", ".func f\n BL nowhere\n.endfunc", "undefined reference"},
		{"missing endfunc", ".func f\n NOP", "missing .endfunc"},
		{"nested func", ".func f\n.func g", "nested .func"},
		{"dup label", ".func f\nx:\nx:\n NOP\n.endfunc", "duplicate label"},
		{"dup func", ".func f\n.endfunc\n.func f\n.endfunc", "duplicate function"},
		{"bad directive", ".wat", "unknown directive"},
		{"bad arch", ".arch sparc", "unknown arch"},
		{"bad mem", ".func f\n LDR R0, [R1, R2]\n.endfunc", "offset must be an immediate"},
		{"unbalanced", ".func f\n LDR R0, [R1\n.endfunc", "unbalanced"},
		{"bad entry", ".entry nope\n.func f\n.endfunc", "not defined"},
		{"bad data", `.data x noquotes`, "invalid string literal"},
		{"dup data", ".data x \"a\"\n.data x \"b\"", "duplicate data symbol"},
		{"bad imm", ".func f\n MOV R0, #zz\n.endfunc", "bad immediate"},
		{"label outside", "lbl:", "outside .func"},
		{"unknown data ref", ".func f\n MOV R0, =ghost\n.endfunc", "unknown data symbol"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble("t", tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestErrorReportsLine(t *testing.T) {
	_, err := Assemble("t", ".func f\n NOP\n WAT\n.endfunc")
	if err == nil {
		t.Fatal("expected error")
	}
	var ae *Error
	if ok := errorsAs(err, &ae); !ok || ae.Line != 3 {
		t.Fatalf("error = %v, want line 3", err)
	}
}

func errorsAs(err error, target **Error) bool {
	for err != nil {
		if e, ok := err.(*Error); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestMarshalRoundTripThroughImage(t *testing.T) {
	b, err := Assemble("fooWoo", fooWoo)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := image.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Funcs) != len(b.Funcs) || len(got.Imports) != len(b.Imports) {
		t.Fatal("symbol tables lost in round trip")
	}
	if string(got.Text) != string(b.Text) {
		t.Fatal("text lost in round trip")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	b, err := Assemble("fooWoo", fooWoo)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Disassemble(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".func foo", ".func woo", "BL", "-> memcpy (import)", "SUB SP, SP, #280"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
; leading comment
.arch arm

.func f ; trailing comment
  NOP   ; another
  BX LR
.endfunc
`
	b, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := b.FuncByName("f")
	if f.Size != 2*isa.InstSize {
		t.Fatalf("size = %d", f.Size)
	}
}

func TestArchAfterCodeRejected(t *testing.T) {
	_, err := Assemble("t", ".func f\n  NOP\n.endfunc\n.arch mips\n")
	if err == nil || !strings.Contains(err.Error(), "must precede") {
		t.Fatalf("late .arch accepted: %v", err)
	}
}

// Package asm implements a two-pass assembler from a small textual
// assembly language to FWELF binaries (internal/image).
//
// The corpus generator and the tests author firmware programs in this
// language; the assembler is the substitute for a vendor's cross-compiler
// toolchain. Syntax:
//
//	.arch arm                 ; or mips
//	.import recv              ; external C library function
//	.data cmd "reboot &"      ; NUL-terminated rodata string
//	.func handle_request
//	  SUB SP, SP, #0x118
//	  LDR R1, [R0, #0x4C]
//	  MOV R2, =cmd            ; address of a rodata symbol
//	  CMP R1, #64
//	  BGE over
//	  BL memcpy
//	over:
//	  BX LR
//	.endfunc
//
// Labels are local to the enclosing function; branch operands resolve to a
// local label first, then to a function name, then to an import.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"dtaint/internal/image"
	"dtaint/internal/isa"
)

// Default section layout.
const (
	DefaultTextBase   uint32 = 0x0001_0000
	DefaultRodataBase uint32 = 0x0800_0000
)

// Error reports an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type srcInst struct {
	line   int
	fn     string // enclosing function
	addr   uint32
	inst   isa.Inst
	refOp  string // unresolved branch/call operand ("" when resolved)
	refImm string // unresolved =sym operand
	refFn  string // unresolved &func operand (function-address immediate)
}

// Assemble translates a program to a binary named name.
func Assemble(name, src string) (*image.Binary, error) {
	a := &assembler{
		name:     name,
		arch:     isa.ArchARM,
		textBase: DefaultTextBase,
		labels:   make(map[string]uint32),
		imports:  make(map[string]uint32),
		dataSyms: make(map[string]uint32),
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	return a.pass2()
}

type assembler struct {
	name     string
	arch     isa.Arch
	textBase uint32

	pc       uint32
	curFunc  string
	funStart uint32

	insts    []srcInst
	funcs    []image.Symbol
	imports  map[string]uint32
	impOrder []string
	labels   map[string]uint32 // "fn\x00label" -> addr; "fn" -> addr
	rodata   []byte
	dataSyms map[string]uint32
	data     []image.DataSym
	entry    string
}

func (a *assembler) pass1(src string) error {
	a.pc = a.textBase
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := raw
		if idx := strings.IndexByte(line, ';'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "."):
			if err := a.directive(lineNo, line); err != nil {
				return err
			}
		case strings.HasSuffix(line, ":"):
			label := strings.TrimSuffix(line, ":")
			if !isIdent(label) {
				return errf(lineNo, "invalid label %q", label)
			}
			if a.curFunc == "" {
				return errf(lineNo, "label %q outside .func", label)
			}
			key := a.curFunc + "\x00" + label
			if _, dup := a.labels[key]; dup {
				return errf(lineNo, "duplicate label %q in %s", label, a.curFunc)
			}
			a.labels[key] = a.pc
		default:
			if a.curFunc == "" {
				return errf(lineNo, "instruction outside .func")
			}
			in, refOp, refImm, refFn, err := parseInst(lineNo, line)
			if err != nil {
				return err
			}
			a.insts = append(a.insts, srcInst{
				line: lineNo, fn: a.curFunc, addr: a.pc,
				inst: in, refOp: refOp, refImm: refImm, refFn: refFn,
			})
			a.pc += isa.InstSize
		}
	}
	if a.curFunc != "" {
		return errf(len(lines), "missing .endfunc for %q", a.curFunc)
	}
	return nil
}

func (a *assembler) directive(line int, s string) error {
	fields := splitFields(s)
	switch fields[0] {
	case ".arch":
		if len(fields) != 2 {
			return errf(line, ".arch wants one operand")
		}
		if len(a.insts) > 0 || len(a.funcs) > 0 {
			return errf(line, ".arch must precede all code (one architecture per binary)")
		}
		switch strings.ToLower(fields[1]) {
		case "arm":
			a.arch = isa.ArchARM
		case "mips":
			a.arch = isa.ArchMIPS
		default:
			return errf(line, "unknown arch %q", fields[1])
		}
	case ".import":
		if len(fields) != 2 || !isIdent(fields[1]) {
			return errf(line, ".import wants a name")
		}
		if _, dup := a.imports[fields[1]]; !dup {
			addr := image.ImportBase + uint32(len(a.impOrder))*isa.InstSize
			a.imports[fields[1]] = addr
			a.impOrder = append(a.impOrder, fields[1])
		}
	case ".entry":
		if len(fields) != 2 {
			return errf(line, ".entry wants a function name")
		}
		a.entry = fields[1]
	case ".data":
		// .data name "string"
		rest := strings.TrimSpace(strings.TrimPrefix(s, ".data"))
		sp := strings.IndexAny(rest, " \t")
		if sp < 0 {
			return errf(line, ".data wants a name and a quoted string")
		}
		dname := rest[:sp]
		if !isIdent(dname) {
			return errf(line, "invalid data symbol %q", dname)
		}
		lit := strings.TrimSpace(rest[sp:])
		val, err := strconv.Unquote(lit)
		if err != nil {
			return errf(line, "invalid string literal %s", lit)
		}
		if _, dup := a.dataSyms[dname]; dup {
			return errf(line, "duplicate data symbol %q", dname)
		}
		addr := DefaultRodataBase + uint32(len(a.rodata))
		a.dataSyms[dname] = addr
		a.data = append(a.data, image.DataSym{Name: dname, Addr: addr, Size: uint32(len(val) + 1)})
		a.rodata = append(a.rodata, val...)
		a.rodata = append(a.rodata, 0)
	case ".func":
		if len(fields) != 2 || !isIdent(fields[1]) {
			return errf(line, ".func wants a name")
		}
		if a.curFunc != "" {
			return errf(line, "nested .func (missing .endfunc for %q?)", a.curFunc)
		}
		if _, dup := a.labels[fields[1]]; dup {
			return errf(line, "duplicate function %q", fields[1])
		}
		a.curFunc = fields[1]
		a.funStart = a.pc
		a.labels[fields[1]] = a.pc
	case ".endfunc":
		if a.curFunc == "" {
			return errf(line, ".endfunc without .func")
		}
		a.funcs = append(a.funcs, image.Symbol{
			Name: a.curFunc,
			Addr: a.funStart,
			Size: a.pc - a.funStart,
		})
		a.curFunc = ""
	default:
		return errf(line, "unknown directive %q", fields[0])
	}
	return nil
}

func (a *assembler) pass2() (*image.Binary, error) {
	text := make([]byte, 0, len(a.insts)*isa.InstSize)
	for _, si := range a.insts {
		in := si.inst
		if si.refOp != "" {
			addr, err := a.resolve(si.fn, si.refOp)
			if err != nil {
				return nil, errf(si.line, "%v", err)
			}
			in.Target = addr
		}
		if si.refImm != "" {
			addr, ok := a.dataSyms[si.refImm]
			if !ok {
				return nil, errf(si.line, "unknown data symbol %q", si.refImm)
			}
			in.Imm = int32(addr)
			in.HasImm = true
		}
		if si.refFn != "" {
			addr, ok := a.labels[si.refFn]
			if !ok {
				return nil, errf(si.line, "unknown function %q in &-operand", si.refFn)
			}
			in.Imm = int32(addr)
			in.HasImm = true
		}
		enc, err := isa.Encode(a.arch, in)
		if err != nil {
			return nil, errf(si.line, "encode %s: %v", in, err)
		}
		text = append(text, enc[:]...)
	}
	b := &image.Binary{
		Name:       a.name,
		Arch:       a.arch,
		TextBase:   a.textBase,
		Text:       text,
		RodataBase: DefaultRodataBase,
		Rodata:     a.rodata,
		Funcs:      a.funcs,
		Data:       a.data,
	}
	for _, name := range a.impOrder {
		b.Imports = append(b.Imports, image.Import{Name: name, Addr: a.imports[name]})
	}
	if a.entry != "" {
		if addr, ok := a.labels[a.entry]; ok {
			b.Entry = addr
		} else {
			return nil, fmt.Errorf("asm: entry function %q not defined", a.entry)
		}
	} else if len(a.funcs) > 0 {
		b.Entry = a.funcs[0].Addr
	}
	b.SortTables()
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

func (a *assembler) resolve(fn, ref string) (uint32, error) {
	if addr, ok := a.labels[fn+"\x00"+ref]; ok {
		return addr, nil
	}
	if addr, ok := a.labels[ref]; ok {
		return addr, nil
	}
	if addr, ok := a.imports[ref]; ok {
		return addr, nil
	}
	return 0, fmt.Errorf("undefined reference %q (not a label, function, or import)", ref)
}

// parseInst parses one instruction line. refOp is a pending branch/call
// target name; refImm is a pending =sym operand; refFn is a pending
// &func operand (the function's address as an immediate).
func parseInst(line int, s string) (in isa.Inst, refOp, refImm, refFn string, err error) {
	mn, rest := splitMnemonic(s)
	ops, err := splitOperands(line, rest)
	if err != nil {
		return in, "", "", "", err
	}
	upper := strings.ToUpper(mn)

	// Conditional branches: BEQ, BNE, BLT, BGE, BGT, BLE.
	if cond, ok := branchCond(upper); ok {
		if len(ops) != 1 {
			return in, "", "", "", errf(line, "%s wants one target", upper)
		}
		return isa.Inst{Op: isa.OpB, Cond: cond}, ops[0], "", "", nil
	}

	switch upper {
	case "NOP":
		return isa.Inst{Op: isa.OpNOP}, "", "", "", nil
	case "BX":
		if len(ops) != 1 || strings.ToUpper(ops[0]) != "LR" {
			return in, "", "", "", errf(line, "only `BX LR` is supported")
		}
		return isa.Inst{Op: isa.OpBX}, "", "", "", nil
	case "B":
		if len(ops) != 1 {
			return in, "", "", "", errf(line, "B wants one target")
		}
		return isa.Inst{Op: isa.OpB}, ops[0], "", "", nil
	case "BL":
		if len(ops) != 1 {
			return in, "", "", "", errf(line, "BL wants one target")
		}
		return isa.Inst{Op: isa.OpBL}, ops[0], "", "", nil
	case "BLX":
		if len(ops) != 1 {
			return in, "", "", "", errf(line, "BLX wants one register")
		}
		r, ok := parseReg(ops[0])
		if !ok {
			return in, "", "", "", errf(line, "BLX wants a register, got %q", ops[0])
		}
		return isa.Inst{Op: isa.OpBLX, Rm: r}, "", "", "", nil
	case "MOV":
		if len(ops) != 2 {
			return in, "", "", "", errf(line, "MOV wants two operands")
		}
		rd, ok := parseReg(ops[0])
		if !ok {
			return in, "", "", "", errf(line, "bad destination %q", ops[0])
		}
		in = isa.Inst{Op: isa.OpMOV, Rd: rd}
		return finishSrcOperand(line, in, ops[1])
	case "CMP":
		if len(ops) != 2 {
			return in, "", "", "", errf(line, "CMP wants two operands")
		}
		rd, ok := parseReg(ops[0])
		if !ok {
			return in, "", "", "", errf(line, "bad register %q", ops[0])
		}
		in = isa.Inst{Op: isa.OpCMP, Rd: rd}
		return finishSrcOperand(line, in, ops[1])
	case "LDR", "LDRB", "STR", "STRB":
		op := map[string]isa.Opcode{
			"LDR": isa.OpLDR, "LDRB": isa.OpLDRB,
			"STR": isa.OpSTR, "STRB": isa.OpSTRB,
		}[upper]
		if len(ops) != 2 {
			return in, "", "", "", errf(line, "%s wants a register and a memory operand", upper)
		}
		rd, ok := parseReg(ops[0])
		if !ok {
			return in, "", "", "", errf(line, "bad register %q", ops[0])
		}
		rn, off, err := parseMem(line, ops[1])
		if err != nil {
			return in, "", "", "", err
		}
		return isa.Inst{Op: op, Rd: rd, Rn: rn, Imm: off, HasImm: true}, "", "", "", nil
	case "ADD", "SUB", "MUL", "AND", "ORR", "EOR", "LSL", "LSR":
		op := map[string]isa.Opcode{
			"ADD": isa.OpADD, "SUB": isa.OpSUB, "MUL": isa.OpMUL,
			"AND": isa.OpAND, "ORR": isa.OpORR, "EOR": isa.OpEOR,
			"LSL": isa.OpLSL, "LSR": isa.OpLSR,
		}[upper]
		if len(ops) != 3 {
			return in, "", "", "", errf(line, "%s wants three operands", upper)
		}
		rd, ok := parseReg(ops[0])
		if !ok {
			return in, "", "", "", errf(line, "bad destination %q", ops[0])
		}
		rn, ok := parseReg(ops[1])
		if !ok {
			return in, "", "", "", errf(line, "bad source %q", ops[1])
		}
		in = isa.Inst{Op: op, Rd: rd, Rn: rn}
		return finishSrcOperand(line, in, ops[2])
	}
	return in, "", "", "", errf(line, "unknown mnemonic %q", mn)
}

// finishSrcOperand fills the final operand, which may be a register, an
// immediate, a =sym rodata reference, or a &func address reference.
func finishSrcOperand(line int, in isa.Inst, op string) (isa.Inst, string, string, string, error) {
	if r, ok := parseReg(op); ok {
		in.Rm = r
		return in, "", "", "", nil
	}
	if strings.HasPrefix(op, "#") {
		v, err := parseImm(op[1:])
		if err != nil {
			return in, "", "", "", errf(line, "bad immediate %q", op)
		}
		in.Imm = v
		in.HasImm = true
		return in, "", "", "", nil
	}
	if strings.HasPrefix(op, "=") {
		name := op[1:]
		if !isIdent(name) {
			return in, "", "", "", errf(line, "bad data reference %q", op)
		}
		return in, "", name, "", nil
	}
	if strings.HasPrefix(op, "&") {
		name := op[1:]
		if !isIdent(name) {
			return in, "", "", "", errf(line, "bad function reference %q", op)
		}
		return in, "", "", name, nil
	}
	return in, "", "", "", errf(line, "bad operand %q", op)
}

func branchCond(mn string) (isa.Cond, bool) {
	switch mn {
	case "BEQ":
		return isa.CondEQ, true
	case "BNE":
		return isa.CondNE, true
	case "BLT":
		return isa.CondLT, true
	case "BGE":
		return isa.CondGE, true
	case "BGT":
		return isa.CondGT, true
	case "BLE":
		return isa.CondLE, true
	}
	return 0, false
}

func parseReg(s string) (isa.Reg, bool) {
	switch strings.ToUpper(s) {
	case "SP":
		return isa.SP, true
	case "LR":
		return isa.LR, true
	case "PC":
		return isa.PC, true
	}
	u := strings.ToUpper(s)
	if len(u) >= 2 && u[0] == 'R' {
		n, err := strconv.Atoi(u[1:])
		if err == nil && n >= 0 && n < int(isa.NumRegs) {
			return isa.Reg(n), true
		}
	}
	return 0, false
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, err
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %d out of 32-bit range", v)
	}
	return int32(v), nil
}

// parseMem parses "[Rn]" or "[Rn, #off]".
func parseMem(line int, s string) (isa.Reg, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, errf(line, "bad memory operand %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	parts := strings.Split(inner, ",")
	rn, ok := parseReg(strings.TrimSpace(parts[0]))
	if !ok {
		return 0, 0, errf(line, "bad base register in %q", s)
	}
	if len(parts) == 1 {
		return rn, 0, nil
	}
	if len(parts) != 2 {
		return 0, 0, errf(line, "bad memory operand %q", s)
	}
	offS := strings.TrimSpace(parts[1])
	if !strings.HasPrefix(offS, "#") {
		return 0, 0, errf(line, "memory offset must be an immediate in %q", s)
	}
	off, err := parseImm(offS[1:])
	if err != nil {
		return 0, 0, errf(line, "bad offset in %q", s)
	}
	return rn, off, nil
}

// splitMnemonic separates the mnemonic from the operand text.
func splitMnemonic(s string) (string, string) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return s, ""
	}
	return s[:i], strings.TrimSpace(s[i:])
}

// splitOperands splits on commas that are not inside brackets.
func splitOperands(line int, s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, errf(line, "unbalanced brackets in %q", s)
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, errf(line, "unbalanced brackets in %q", s)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

func splitFields(s string) []string {
	return strings.Fields(s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

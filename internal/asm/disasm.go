package asm

import (
	"fmt"
	"strings"

	"dtaint/internal/image"
	"dtaint/internal/isa"
)

// Disassemble renders a binary back to readable assembly. Branch targets
// are annotated with the function or import they resolve to. The output is
// for humans (cmd/dtaint -dis) and for tests; it is not guaranteed to
// re-assemble byte-identically because label names are synthesized.
func Disassemble(b *image.Binary) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; binary %s (%s)\n", b.Name, b.Arch)
	fmt.Fprintf(&sb, ".arch %s\n", strings.ToLower(b.Arch.String()))
	for _, im := range b.Imports {
		fmt.Fprintf(&sb, ".import %s ; stub %#x\n", im.Name, im.Addr)
	}
	for _, d := range b.Data {
		if s, ok := b.StringAt(d.Addr); ok {
			fmt.Fprintf(&sb, ".data %s %q\n", d.Name, s)
		}
	}
	for _, fn := range b.Funcs {
		code, err := b.FuncCode(fn)
		if err != nil {
			return "", err
		}
		insts, err := isa.DecodeAll(b.Arch, code, fn.Addr)
		if err != nil {
			return "", fmt.Errorf("disassemble %s: %w", fn.Name, err)
		}
		fmt.Fprintf(&sb, ".func %s ; %#x\n", fn.Name, fn.Addr)
		for i, in := range insts {
			addr := fn.Addr + uint32(i)*isa.InstSize
			fmt.Fprintf(&sb, "  %06X: %s", addr, in.String())
			if in.Op == isa.OpB || in.Op == isa.OpBL {
				if tgt, ok := b.FuncAt(in.Target); ok {
					fmt.Fprintf(&sb, " ; -> %s", tgt.Name)
				} else if imp, ok := b.ImportAt(in.Target); ok {
					fmt.Fprintf(&sb, " ; -> %s (import)", imp.Name)
				}
			}
			sb.WriteByte('\n')
		}
		sb.WriteString(".endfunc\n")
	}
	return sb.String(), nil
}

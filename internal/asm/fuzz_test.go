package asm

import (
	"testing"

	"dtaint/internal/cfg"
)

// FuzzAssemble hardens the assembler: arbitrary source text must never
// panic, and anything it accepts must produce a binary the CFG builder
// can structure.
func FuzzAssemble(f *testing.F) {
	f.Add(".arch arm\n.func f\n  MOV R0, #1\n  BX LR\n.endfunc\n")
	f.Add(".arch mips\n.import recv\n.func g\n  BL recv\n  BX LR\n.endfunc\n")
	f.Add(".func f\nl:\n  B l\n.endfunc\n")
	f.Add(".data s \"x\"\n.func f\n  MOV R0, =s\n  BX LR\n.endfunc\n")
	f.Fuzz(func(t *testing.T, src string) {
		bin, err := Assemble("fuzz", src)
		if err != nil {
			return
		}
		if err := bin.Validate(); err != nil {
			t.Fatalf("assembled binary invalid: %v", err)
		}
		if len(bin.Funcs) == 0 {
			return
		}
		if _, err := cfg.Build(bin); err != nil {
			// Structural errors (e.g. a branch out of the function after
			// fuzz mutations) are acceptable; panics are not.
			return
		}
	})
}

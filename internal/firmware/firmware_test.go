package firmware

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dtaint/internal/isa"
)

func sampleFS(t *testing.T) *FS {
	t.Helper()
	fs := &FS{}
	files := []File{
		{Path: "/bin/busybox", Mode: 0o755, Data: []byte("BB")},
		{Path: "/etc/passwd", Mode: 0o644, Data: []byte("root::0:0::/:/bin/sh\n")},
		{Path: "/htdocs/cgibin", Mode: 0o755, Data: bytes.Repeat([]byte{0xAB}, 128)},
	}
	for _, f := range files {
		if err := fs.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	return fs
}

func sampleImage(t *testing.T, rootFlags uint8) *Image {
	t.Helper()
	rootfs, err := MarshalFS(sampleFS(t))
	if err != nil {
		t.Fatal(err)
	}
	return &Image{
		Header: Header{
			Vendor:  "D-Link",
			Product: "DIR-645",
			Version: "1.03",
			Year:    2013,
			Arch:    isa.ArchMIPS,
			Boot: BootRequirements{
				Peripherals: []string{"nvram", "switch-rtl8367"},
				NVRAMKeys:   []string{"lan_ipaddr"},
			},
		},
		Parts: []Part{
			{Type: PartKernel, Data: bytes.Repeat([]byte{0x4B}, 64)},
			{Type: PartRootFS, Flags: rootFlags, Data: rootfs},
			{Type: PartConfig, Data: []byte("cfg=1")},
		},
	}
}

func TestPackScanRoundTrip(t *testing.T) {
	img := sampleImage(t, 0)
	raw, err := Pack(img)
	if err != nil {
		t.Fatal(err)
	}
	got, off, err := Scan(raw)
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 {
		t.Fatalf("offset = %d", off)
	}
	if got.Header.Vendor != "D-Link" || got.Header.Product != "DIR-645" ||
		got.Header.Year != 2013 || got.Header.Arch != isa.ArchMIPS {
		t.Fatalf("header = %+v", got.Header)
	}
	if len(got.Header.Boot.Peripherals) != 2 || len(got.Header.Boot.NVRAMKeys) != 1 {
		t.Fatalf("boot reqs = %+v", got.Header.Boot)
	}
	if len(got.Parts) != 3 {
		t.Fatalf("parts = %d", len(got.Parts))
	}
}

func TestScanAtOffset(t *testing.T) {
	// Vendors prepend bootloaders; the scanner must find the magic anywhere.
	img := sampleImage(t, 0)
	raw, err := Pack(img)
	if err != nil {
		t.Fatal(err)
	}
	padded := append(bytes.Repeat([]byte{0xFF}, 777), raw...)
	got, off, err := Scan(padded)
	if err != nil {
		t.Fatal(err)
	}
	if off != 777 {
		t.Fatalf("offset = %d, want 777", off)
	}
	if got.Header.Product != "DIR-645" {
		t.Fatal("wrong image parsed")
	}
}

func TestExtractRootFS(t *testing.T) {
	img := sampleImage(t, 0)
	raw, err := Pack(img)
	if err != nil {
		t.Fatal(err)
	}
	_, fs, err := Unpack(raw)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Lookup("/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Data) != 128 || f.Mode != 0o755 {
		t.Fatalf("file = %+v", f)
	}
	if _, err := fs.Lookup("/nope"); !errors.Is(err, ErrFileNotFound) {
		t.Errorf("lookup ghost: %v", err)
	}
	if g := fs.Glob("/etc/"); len(g) != 1 || g[0].Path != "/etc/passwd" {
		t.Errorf("glob = %+v", g)
	}
}

func TestEncryptedRootFS(t *testing.T) {
	img := sampleImage(t, FlagEncrypted)
	raw, err := Pack(img)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Unpack(raw)
	if !errors.Is(err, ErrEncrypted) {
		t.Fatalf("want ErrEncrypted, got %v", err)
	}
}

func TestMissingRootFS(t *testing.T) {
	img := sampleImage(t, 0)
	img.Parts = img.Parts[:1] // kernel only
	raw, err := Pack(img)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = Unpack(raw)
	if !errors.Is(err, ErrNoRootFS) {
		t.Fatalf("want ErrNoRootFS, got %v", err)
	}
}

func TestCorruptPart(t *testing.T) {
	img := sampleImage(t, 0)
	raw, err := Pack(img)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the last part's payload (past all headers).
	mut := append([]byte(nil), raw...)
	mut[len(mut)-1] ^= 0xFF
	_, _, err = Scan(mut)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestNoMagic(t *testing.T) {
	if _, _, err := Scan(bytes.Repeat([]byte{0xAA}, 100)); !errors.Is(err, ErrNoMagic) {
		t.Fatalf("want ErrNoMagic, got %v", err)
	}
}

func TestTruncation(t *testing.T) {
	img := sampleImage(t, 0)
	raw, err := Pack(img)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(Magic); i < len(raw); i += 11 {
		if _, _, err := Scan(raw[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestAddDuplicate(t *testing.T) {
	fs := sampleFS(t)
	err := fs.Add(File{Path: "/etc/passwd"})
	if !errors.Is(err, ErrDuplicatePath) {
		t.Fatalf("want ErrDuplicatePath, got %v", err)
	}
	if err := fs.Add(File{Path: ""}); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("empty path: got %v", err)
	}
}

func TestFSOrderInvariant(t *testing.T) {
	fs := &FS{}
	for _, p := range []string{"/z", "/a", "/m", "/b"} {
		if err := fs.Add(File{Path: p}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(fs.Files); i++ {
		if fs.Files[i-1].Path >= fs.Files[i].Path {
			t.Fatalf("files not sorted: %v", fs.Files)
		}
	}
}

func TestParseFSRejectsDuplicates(t *testing.T) {
	fs := &FS{Files: []File{{Path: "/a"}, {Path: "/a"}}}
	raw, err := MarshalFS(fs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFS(raw); !errors.Is(err, ErrDuplicatePath) {
		t.Fatalf("want ErrDuplicatePath, got %v", err)
	}
}

func TestPropertyPackScanRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fs := &FS{}
		n := r.Intn(10)
		for i := 0; i < n; i++ {
			data := make([]byte, r.Intn(64))
			r.Read(data)
			_ = fs.Add(File{Path: "/f" + string(rune('a'+i)), Mode: 0o644, Data: data})
		}
		payload, err := MarshalFS(fs)
		if err != nil {
			return false
		}
		img := &Image{
			Header: Header{Vendor: "v", Product: "p", Version: "1", Year: 2009 + r.Intn(8), Arch: isa.ArchARM},
			Parts:  []Part{{Type: PartRootFS, Data: payload}},
		}
		raw, err := Pack(img)
		if err != nil {
			return false
		}
		_, got, err := Unpack(raw)
		if err != nil {
			return false
		}
		if len(got.Files) != len(fs.Files) {
			return false
		}
		for i := range got.Files {
			if got.Files[i].Path != fs.Files[i].Path || !bytes.Equal(got.Files[i].Data, fs.Files[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScanNeverPanics(t *testing.T) {
	img := sampleImage(t, 0)
	raw, err := Pack(img)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mut := append([]byte(nil), raw...)
		for i := 0; i < 12; i++ {
			mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		}
		_, _, _ = Scan(mut) // must not panic; any error is acceptable
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

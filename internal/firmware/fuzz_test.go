package firmware

import (
	"testing"

	"dtaint/internal/isa"
)

// FuzzScan hardens the container scanner: arbitrary bytes must never
// panic; accepted images must extract or fail cleanly.
func FuzzScan(f *testing.F) {
	payload, err := MarshalFS(&FS{Files: []File{{Path: "/bin/x", Mode: 0o755, Data: []byte("hi")}}})
	if err != nil {
		f.Fatal(err)
	}
	img := &Image{
		Header: Header{Vendor: "v", Product: "p", Version: "1", Year: 2014, Arch: isa.ArchARM},
		Parts:  []Part{{Type: PartRootFS, Data: payload}},
	}
	raw, err := Pack(img)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte("FWIMG"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, _, err := Scan(data)
		if err != nil {
			return
		}
		// Extraction may fail (encrypted/absent rootfs) but must not panic.
		_, _ = ExtractRootFS(parsed)
	})
}

// FuzzParseFS hardens the filesystem decoder.
func FuzzParseFS(f *testing.F) {
	payload, err := MarshalFS(&FS{Files: []File{{Path: "/a", Data: []byte("x")}}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(payload)
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fs, err := ParseFS(data)
		if err != nil {
			return
		}
		for i := 1; i < len(fs.Files); i++ {
			if fs.Files[i-1].Path >= fs.Files[i].Path {
				t.Fatal("accepted filesystem not sorted/deduplicated")
			}
		}
	})
}

// Package firmware implements FWIMG, the firmware image container format
// of this reproduction, together with a Binwalk-like scanner/extractor.
//
// A vendor firmware image wraps a kernel blob, a root filesystem, and
// configuration data behind vendor-specific padding; extraction tooling
// must locate the container by magic scanning and unpack the filesystem.
// The paper reports that more than 65% of collected images could not be
// unpacked (encrypted, incomplete, or unrecognized); FWIMG models those
// failure modes explicitly: parts carry CRCs (corruption is detected) and
// an encrypted flag (extraction is refused).
package firmware

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"dtaint/internal/isa"
)

// Magic begins a FWIMG container; the scanner searches for it at any offset.
var Magic = [6]byte{'F', 'W', 'I', 'M', 'G', 1}

// PartType identifies a container part.
type PartType uint8

// Container part types.
const (
	PartKernel PartType = iota + 1
	PartRootFS
	PartConfig
	PartPadding
)

// String implements fmt.Stringer.
func (p PartType) String() string {
	switch p {
	case PartKernel:
		return "kernel"
	case PartRootFS:
		return "rootfs"
	case PartConfig:
		return "config"
	case PartPadding:
		return "padding"
	}
	return "part?"
}

// Part flags.
const (
	// FlagEncrypted marks a part whose payload is vendor-encrypted; the
	// extractor refuses it (models Binwalk's unpack failures).
	FlagEncrypted uint8 = 1 << iota
)

// Part is one TLV entry in the container.
type Part struct {
	Type  PartType
	Flags uint8
	Data  []byte
}

// BootRequirements describes what the image needs from hardware to boot.
// The emulation model (internal/emul) compares these against what the
// emulator provides, reproducing the Figure 1 experiment.
type BootRequirements struct {
	// Peripherals are hardware components the boot process probes
	// (e.g. "nvram", "wifi-bcm43xx", "sensor-imx291").
	Peripherals []string
	// NVRAMKeys must be present in non-volatile storage for the network
	// configuration step to succeed.
	NVRAMKeys []string
}

// Header carries image metadata, mirroring what the paper's crawler parses
// from vendor download pages (vendor, product, version, release year).
type Header struct {
	Vendor  string
	Product string
	Version string
	Year    int
	Arch    isa.Arch
	Boot    BootRequirements
}

// Image is a parsed FWIMG container.
type Image struct {
	Header Header
	Parts  []Part
}

// File is one entry of a root filesystem.
type File struct {
	Path string
	Mode uint32
	Data []byte
}

// FS is a root filesystem tree, stored as a sorted list of files.
type FS struct {
	Files []File
}

// Errors reported by the scanner and extractor.
var (
	ErrNoMagic       = errors.New("firmware: no FWIMG magic found")
	ErrTruncated     = errors.New("firmware: truncated image")
	ErrCorrupt       = errors.New("firmware: part checksum mismatch")
	ErrEncrypted     = errors.New("firmware: rootfs is encrypted")
	ErrNoRootFS      = errors.New("firmware: image has no rootfs part")
	ErrMalformed     = errors.New("firmware: malformed container")
	ErrFileNotFound  = errors.New("firmware: file not found in rootfs")
	ErrNameTooLong   = errors.New("firmware: name exceeds limit")
	ErrTooManyParts  = errors.New("firmware: too many parts")
	ErrPartTooLarge  = errors.New("firmware: part exceeds size limit")
	ErrTooManyFiles  = errors.New("firmware: too many files in rootfs")
	ErrFileTooLarge  = errors.New("firmware: file exceeds size limit")
	ErrDuplicatePath = errors.New("firmware: duplicate path in rootfs")
)

// Parser limits.
const (
	MaxParts    = 64
	MaxPartSize = 256 << 20
	MaxFiles    = 1 << 16
	MaxFileSize = 128 << 20
	MaxName     = 4096
)

// Lookup returns the file stored at path.
func (fs *FS) Lookup(path string) (File, error) {
	i := sort.Search(len(fs.Files), func(i int) bool { return fs.Files[i].Path >= path })
	if i < len(fs.Files) && fs.Files[i].Path == path {
		return fs.Files[i], nil
	}
	return File{}, fmt.Errorf("%w: %q", ErrFileNotFound, path)
}

// Glob returns the files whose path begins with prefix.
func (fs *FS) Glob(prefix string) []File {
	var out []File
	for _, f := range fs.Files {
		if strings.HasPrefix(f.Path, prefix) {
			out = append(out, f)
		}
	}
	return out
}

// Add inserts a file, keeping the list sorted by path.
func (fs *FS) Add(f File) error {
	if len(f.Path) == 0 || len(f.Path) > MaxName {
		return fmt.Errorf("%w: %q", ErrNameTooLong, f.Path)
	}
	i := sort.Search(len(fs.Files), func(i int) bool { return fs.Files[i].Path >= f.Path })
	if i < len(fs.Files) && fs.Files[i].Path == f.Path {
		return fmt.Errorf("%w: %q", ErrDuplicatePath, f.Path)
	}
	fs.Files = append(fs.Files, File{})
	copy(fs.Files[i+1:], fs.Files[i:])
	fs.Files[i] = f
	return nil
}

// MarshalFS serializes a filesystem for embedding in a rootfs part.
func MarshalFS(fs *FS) ([]byte, error) {
	if len(fs.Files) > MaxFiles {
		return nil, ErrTooManyFiles
	}
	var buf bytes.Buffer
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w(uint32(len(fs.Files)))
	for _, f := range fs.Files {
		if len(f.Path) > MaxName {
			return nil, fmt.Errorf("%w: %q", ErrNameTooLong, f.Path)
		}
		if len(f.Data) > MaxFileSize {
			return nil, fmt.Errorf("%w: %q", ErrFileTooLarge, f.Path)
		}
		w(uint32(len(f.Path)))
		buf.WriteString(f.Path)
		w(f.Mode)
		w(uint32(len(f.Data)))
		buf.Write(f.Data)
	}
	return buf.Bytes(), nil
}

// ParseFS deserializes a rootfs payload.
func ParseFS(data []byte) (*FS, error) {
	r := &byteReader{b: data}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > MaxFiles {
		return nil, ErrTooManyFiles
	}
	fs := &FS{Files: make([]File, 0, n)}
	for i := uint32(0); i < n; i++ {
		pl, err := r.u32()
		if err != nil {
			return nil, err
		}
		if pl > MaxName {
			return nil, ErrNameTooLong
		}
		pb, err := r.take(int(pl))
		if err != nil {
			return nil, err
		}
		mode, err := r.u32()
		if err != nil {
			return nil, err
		}
		dl, err := r.u32()
		if err != nil {
			return nil, err
		}
		if dl > MaxFileSize {
			return nil, ErrFileTooLarge
		}
		db, err := r.take(int(dl))
		if err != nil {
			return nil, err
		}
		fs.Files = append(fs.Files, File{
			Path: string(pb),
			Mode: mode,
			Data: append([]byte(nil), db...),
		})
	}
	sort.Slice(fs.Files, func(i, j int) bool { return fs.Files[i].Path < fs.Files[j].Path })
	for i := 1; i < len(fs.Files); i++ {
		if fs.Files[i].Path == fs.Files[i-1].Path {
			return nil, fmt.Errorf("%w: %q", ErrDuplicatePath, fs.Files[i].Path)
		}
	}
	return fs, nil
}

// Pack serializes a container image, computing part checksums.
func Pack(img *Image) ([]byte, error) {
	if len(img.Parts) > MaxParts {
		return nil, ErrTooManyParts
	}
	var buf bytes.Buffer
	buf.Write(Magic[:])
	w := func(v any) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	ws := func(s string) {
		w(uint32(len(s)))
		buf.WriteString(s)
	}
	wl := func(list []string) {
		w(uint32(len(list)))
		for _, s := range list {
			ws(s)
		}
	}
	ws(img.Header.Vendor)
	ws(img.Header.Product)
	ws(img.Header.Version)
	w(uint32(img.Header.Year))
	w(uint32(img.Header.Arch))
	wl(img.Header.Boot.Peripherals)
	wl(img.Header.Boot.NVRAMKeys)
	w(uint32(len(img.Parts)))
	for _, p := range img.Parts {
		if len(p.Data) > MaxPartSize {
			return nil, ErrPartTooLarge
		}
		w(uint8(p.Type))
		w(p.Flags)
		w(uint32(len(p.Data)))
		w(crc32.ChecksumIEEE(p.Data))
		buf.Write(p.Data)
	}
	return buf.Bytes(), nil
}

// Scan locates the FWIMG container inside arbitrary surrounding bytes
// (vendor images routinely prepend bootloaders and proprietary headers)
// and parses it. It returns the parsed image and the offset at which the
// container was found.
func Scan(data []byte) (*Image, int, error) {
	off := bytes.Index(data, Magic[:])
	if off < 0 {
		return nil, 0, ErrNoMagic
	}
	img, err := parseAt(data[off:])
	if err != nil {
		return nil, off, err
	}
	return img, off, nil
}

func parseAt(data []byte) (*Image, error) {
	r := &byteReader{b: data, off: len(Magic)}
	rs := func() (string, error) {
		n, err := r.u32()
		if err != nil {
			return "", err
		}
		if n > MaxName {
			return "", ErrNameTooLong
		}
		b, err := r.take(int(n))
		return string(b), err
	}
	rl := func() ([]string, error) {
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if n > MaxFiles {
			return nil, ErrMalformed
		}
		out := make([]string, 0, n)
		for i := uint32(0); i < n; i++ {
			s, err := rs()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	}
	var img Image
	var err error
	if img.Header.Vendor, err = rs(); err != nil {
		return nil, err
	}
	if img.Header.Product, err = rs(); err != nil {
		return nil, err
	}
	if img.Header.Version, err = rs(); err != nil {
		return nil, err
	}
	year, err := r.u32()
	if err != nil {
		return nil, err
	}
	img.Header.Year = int(year)
	arch, err := r.u32()
	if err != nil {
		return nil, err
	}
	img.Header.Arch = isa.Arch(arch)
	if img.Header.Boot.Peripherals, err = rl(); err != nil {
		return nil, err
	}
	if img.Header.Boot.NVRAMKeys, err = rl(); err != nil {
		return nil, err
	}
	np, err := r.u32()
	if err != nil {
		return nil, err
	}
	if np > MaxParts {
		return nil, ErrTooManyParts
	}
	for i := uint32(0); i < np; i++ {
		t, err := r.u8()
		if err != nil {
			return nil, err
		}
		flags, err := r.u8()
		if err != nil {
			return nil, err
		}
		n, err := r.u32()
		if err != nil {
			return nil, err
		}
		if n > MaxPartSize {
			return nil, ErrPartTooLarge
		}
		sum, err := r.u32()
		if err != nil {
			return nil, err
		}
		payload, err := r.take(int(n))
		if err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("%w: part %d (%s)", ErrCorrupt, i, PartType(t))
		}
		img.Parts = append(img.Parts, Part{
			Type:  PartType(t),
			Flags: flags,
			Data:  append([]byte(nil), payload...),
		})
	}
	return &img, nil
}

// ExtractRootFS unpacks the root filesystem from a parsed image. It fails
// for encrypted or absent rootfs parts (the Binwalk failure modes).
func ExtractRootFS(img *Image) (*FS, error) {
	for _, p := range img.Parts {
		if p.Type != PartRootFS {
			continue
		}
		if p.Flags&FlagEncrypted != 0 {
			return nil, ErrEncrypted
		}
		fs, err := ParseFS(p.Data)
		if err != nil {
			return nil, fmt.Errorf("rootfs: %w", err)
		}
		return fs, nil
	}
	return nil, ErrNoRootFS
}

// Unpack scans raw bytes for a container and extracts its filesystem in
// one step — the common pipeline entry (Section IV: "extract the binary
// file from the firmware ... built around the Binwalk API").
func Unpack(data []byte) (*Image, *FS, error) {
	img, _, err := Scan(data)
	if err != nil {
		return nil, nil, err
	}
	fs, err := ExtractRootFS(img)
	if err != nil {
		return img, nil, err
	}
	return img, fs, nil
}

type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) u8() (uint8, error) {
	if r.off+1 > len(r.b) {
		return 0, ErrTruncated
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *byteReader) u32() (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, ErrTruncated
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

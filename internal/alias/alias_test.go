package alias

import (
	"testing"

	"dtaint/internal/expr"
	"dtaint/internal/symexec"
)

func dp(d, u *expr.Expr) symexec.DefPair { return symexec.DefPair{D: d, U: u} }

func hasPair(dps []symexec.DefPair, dKey, uKey string) bool {
	for _, p := range dps {
		if p.D.Key() == dKey && p.U.Key() == uKey {
			return true
		}
	}
	return false
}

func TestStoredPointerAlias(t *testing.T) {
	// The paper's example: int *p = x; *(q+4) = p. After `deref(q+4) = p`
	// the pair `deref(p) = v` must gain the variant `deref(deref(q+4)) = v`.
	p := expr.Sym("p")
	q := expr.Sym("q")
	v := expr.Const(7)
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}

	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), p), // *(q+4) = p
		dp(expr.Deref(p), v),              // *p = 7
	}
	out := Rewrite(in, types)
	want := expr.Deref(expr.Deref(expr.Add(q, 4))).Key()
	if !hasPair(out, want, v.Key()) {
		t.Fatalf("alias variant %s = %s missing; got %d pairs", want, v, len(out))
	}
}

func TestAliasWithOffsets(t *testing.T) {
	// deref(q+4) = p + 8; then deref(p+12) = v gains
	// deref((deref(q+4) - 8) + 12) = deref(deref(q+4)+4) = v.
	p := expr.Sym("p")
	q := expr.Sym("q")
	v := expr.Sym("val")
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}

	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), expr.Add(p, 8)),
		dp(expr.Deref(expr.Add(p, 12)), v),
	}
	out := Rewrite(in, types)
	want := expr.Deref(expr.Add(expr.Deref(expr.Add(q, 4)), 4)).Key()
	if !hasPair(out, want, v.Key()) {
		keys := make([]string, 0, len(out))
		for _, o := range out {
			keys = append(keys, o.D.Key()+"="+o.U.Key())
		}
		t.Fatalf("offset alias missing %s; got %v", want, keys)
	}
}

func TestMultiBasePointers(t *testing.T) {
	// The paper's multi-base example: deref(deref(arg0+0x58)+0xEC) has
	// base pointers arg0 and deref(arg0+0x58); an alias for the inner
	// base must rewrite the outer variable.
	arg0 := expr.Arg(0)
	inner := expr.Deref(expr.Add(arg0, 0x58))
	outer := expr.Deref(expr.Add(inner, 0xEC))
	g := expr.Sym("g")
	v := expr.Sym("v")
	types := map[string]expr.Type{inner.Key(): expr.TypePtr}

	in := []symexec.DefPair{
		dp(expr.Deref(g), inner), // *g = deref(arg0+0x58): alias of the inner base
		dp(outer, v),
	}
	out := Rewrite(in, types)
	// mem[g] holds the inner pointer value, so the field is reachable as
	// deref(deref(g) + 0xEC).
	want := expr.Deref(expr.Add(expr.Deref(g), 0xEC)).Key()
	if !hasPair(out, want, v.Key()) {
		keys := make([]string, 0, len(out))
		for _, o := range out {
			keys = append(keys, o.D.Key())
		}
		t.Fatalf("multi-base alias missing %s; destinations: %v", want, keys)
	}
}

func TestNonPointerValueIgnored(t *testing.T) {
	q := expr.Sym("q")
	n := expr.Sym("n") // not typed as a pointer
	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), n),
		dp(expr.Deref(n), expr.Const(1)),
	}
	out := Rewrite(in, nil)
	if len(out) != len(in) {
		t.Fatalf("non-pointer store produced aliases: %d pairs", len(out))
	}
}

func TestHeapPointerIsStructurallyPointer(t *testing.T) {
	// Heap identity symbols count as pointers without a type entry.
	h := expr.Sym(expr.HeapName("site1"))
	q := expr.Sym("q")
	v := expr.Const(3)
	in := []symexec.DefPair{
		dp(expr.Deref(q), h),
		dp(expr.Deref(h), v),
	}
	out := Rewrite(in, nil)
	want := expr.Deref(expr.Deref(q)).Key()
	if !hasPair(out, want, v.Key()) {
		t.Fatal("heap pointer alias not recognized")
	}
}

func TestIdempotentOnRewrittenSet(t *testing.T) {
	p := expr.Sym("p")
	q := expr.Sym("q")
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}
	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), p),
		dp(expr.Deref(p), expr.Const(7)),
	}
	once := Rewrite(in, types)
	twice := Rewrite(once, types)
	// A second pass may add derived pairs but must not duplicate existing
	// ones.
	seen := map[string]int{}
	for _, o := range twice {
		seen[o.D.Key()+"="+o.U.Key()]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("duplicate pair %s after second rewrite", k)
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	p := expr.Sym("p")
	q := expr.Sym("q")
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}
	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), p),
		dp(expr.Deref(p), expr.Const(7)),
	}
	out := Rewrite(in, types)
	if len(in) != 2 {
		t.Fatal("input length changed")
	}
	if len(out) <= 2 {
		t.Fatal("no alias pair added")
	}
}

func TestBlowupBounded(t *testing.T) {
	// Many aliases of the same pointer must not explode quadratically
	// past the cap.
	p := expr.Sym("p")
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}
	var in []symexec.DefPair
	for i := 0; i < 100; i++ {
		q := expr.Sym("q" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		in = append(in, dp(expr.Deref(q), p))
	}
	for i := 0; i < 100; i++ {
		in = append(in, dp(expr.Deref(expr.Add(p, int64(i*4))), expr.Const(int64(i))))
	}
	out := Rewrite(in, types)
	if len(out) > len(in)+MaxNewPairs {
		t.Fatalf("alias blowup: %d pairs", len(out))
	}
}

func TestConstantBaseIgnored(t *testing.T) {
	// Absolute-address pointers (constant bases) are not alias bases.
	q := expr.Sym("q")
	in := []symexec.DefPair{
		dp(expr.Deref(q), expr.Const(0x670B0)),
	}
	out := Rewrite(in, map[string]expr.Type{expr.Const(0x670B0).Key(): expr.TypeIntPtr})
	if len(out) != 1 {
		t.Fatalf("constant alias created: %d pairs", len(out))
	}
}

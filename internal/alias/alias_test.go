package alias

import (
	"fmt"
	"testing"

	"dtaint/internal/expr"
	"dtaint/internal/symexec"
)

func dp(d, u *expr.Expr) symexec.DefPair { return symexec.DefPair{D: d, U: u} }

func hasPair(dps []symexec.DefPair, dKey, uKey string) bool {
	for _, p := range dps {
		if p.D.Key() == dKey && p.U.Key() == uKey {
			return true
		}
	}
	return false
}

func TestStoredPointerAlias(t *testing.T) {
	// The paper's example: int *p = x; *(q+4) = p. After `deref(q+4) = p`
	// the pair `deref(p) = v` must gain the variant `deref(deref(q+4)) = v`.
	p := expr.Sym("p")
	q := expr.Sym("q")
	v := expr.Const(7)
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}

	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), p), // *(q+4) = p
		dp(expr.Deref(p), v),              // *p = 7
	}
	out, _ := Rewrite(in, types)
	want := expr.Deref(expr.Deref(expr.Add(q, 4))).Key()
	if !hasPair(out, want, v.Key()) {
		t.Fatalf("alias variant %s = %s missing; got %d pairs", want, v, len(out))
	}
}

func TestAliasWithOffsets(t *testing.T) {
	// deref(q+4) = p + 8; then deref(p+12) = v gains
	// deref((deref(q+4) - 8) + 12) = deref(deref(q+4)+4) = v.
	p := expr.Sym("p")
	q := expr.Sym("q")
	v := expr.Sym("val")
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}

	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), expr.Add(p, 8)),
		dp(expr.Deref(expr.Add(p, 12)), v),
	}
	out, _ := Rewrite(in, types)
	want := expr.Deref(expr.Add(expr.Deref(expr.Add(q, 4)), 4)).Key()
	if !hasPair(out, want, v.Key()) {
		keys := make([]string, 0, len(out))
		for _, o := range out {
			keys = append(keys, o.D.Key()+"="+o.U.Key())
		}
		t.Fatalf("offset alias missing %s; got %v", want, keys)
	}
}

func TestMultiBasePointers(t *testing.T) {
	// The paper's multi-base example: deref(deref(arg0+0x58)+0xEC) has
	// base pointers arg0 and deref(arg0+0x58); an alias for the inner
	// base must rewrite the outer variable.
	arg0 := expr.Arg(0)
	inner := expr.Deref(expr.Add(arg0, 0x58))
	outer := expr.Deref(expr.Add(inner, 0xEC))
	g := expr.Sym("g")
	v := expr.Sym("v")
	types := map[string]expr.Type{inner.Key(): expr.TypePtr}

	in := []symexec.DefPair{
		dp(expr.Deref(g), inner), // *g = deref(arg0+0x58): alias of the inner base
		dp(outer, v),
	}
	out, _ := Rewrite(in, types)
	// mem[g] holds the inner pointer value, so the field is reachable as
	// deref(deref(g) + 0xEC).
	want := expr.Deref(expr.Add(expr.Deref(g), 0xEC)).Key()
	if !hasPair(out, want, v.Key()) {
		keys := make([]string, 0, len(out))
		for _, o := range out {
			keys = append(keys, o.D.Key())
		}
		t.Fatalf("multi-base alias missing %s; destinations: %v", want, keys)
	}
}

func TestNonPointerValueIgnored(t *testing.T) {
	q := expr.Sym("q")
	n := expr.Sym("n") // not typed as a pointer
	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), n),
		dp(expr.Deref(n), expr.Const(1)),
	}
	out, _ := Rewrite(in, nil)
	if len(out) != len(in) {
		t.Fatalf("non-pointer store produced aliases: %d pairs", len(out))
	}
}

func TestHeapPointerIsStructurallyPointer(t *testing.T) {
	// Heap identity symbols count as pointers without a type entry.
	h := expr.Sym(expr.HeapName("site1"))
	q := expr.Sym("q")
	v := expr.Const(3)
	in := []symexec.DefPair{
		dp(expr.Deref(q), h),
		dp(expr.Deref(h), v),
	}
	out, _ := Rewrite(in, nil)
	want := expr.Deref(expr.Deref(q)).Key()
	if !hasPair(out, want, v.Key()) {
		t.Fatal("heap pointer alias not recognized")
	}
}

func TestIdempotentOnRewrittenSet(t *testing.T) {
	p := expr.Sym("p")
	q := expr.Sym("q")
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}
	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), p),
		dp(expr.Deref(p), expr.Const(7)),
	}
	once, _ := Rewrite(in, types)
	twice, _ := Rewrite(once, types)
	// A second pass may add derived pairs but must not duplicate existing
	// ones.
	seen := map[string]int{}
	for _, o := range twice {
		seen[o.D.Key()+"="+o.U.Key()]++
	}
	for k, n := range seen {
		if n > 1 {
			t.Fatalf("duplicate pair %s after second rewrite", k)
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	p := expr.Sym("p")
	q := expr.Sym("q")
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}
	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), p),
		dp(expr.Deref(p), expr.Const(7)),
	}
	out, _ := Rewrite(in, types)
	if len(in) != 2 {
		t.Fatal("input length changed")
	}
	if len(out) <= 2 {
		t.Fatal("no alias pair added")
	}
}

func TestBlowupBounded(t *testing.T) {
	// Many aliases of the same pointer must not explode quadratically
	// past the cap.
	p := expr.Sym("p")
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}
	var in []symexec.DefPair
	for i := 0; i < 100; i++ {
		q := expr.Sym("q" + string(rune('a'+i%26)) + string(rune('a'+i/26)))
		in = append(in, dp(expr.Deref(q), p))
	}
	for i := 0; i < 100; i++ {
		in = append(in, dp(expr.Deref(expr.Add(p, int64(i*4))), expr.Const(int64(i))))
	}
	out, _ := Rewrite(in, types)
	if len(out) > len(in)+MaxNewPairs {
		t.Fatalf("alias blowup: %d pairs", len(out))
	}
}

func TestConstantBaseIgnored(t *testing.T) {
	// Absolute-address pointers (constant bases) are not alias bases.
	q := expr.Sym("q")
	in := []symexec.DefPair{
		dp(expr.Deref(q), expr.Const(0x670B0)),
	}
	out, _ := Rewrite(in, map[string]expr.Type{expr.Const(0x670B0).Key(): expr.TypeIntPtr})
	if len(out) != 1 {
		t.Fatalf("constant alias created: %d pairs", len(out))
	}
}

func TestRewriteSSEMatchesAlgorithm1Shapes(t *testing.T) {
	// Every Algorithm 1 shape must still fall out of the class engine.
	p := expr.Sym("p")
	q := expr.Sym("q")
	v := expr.Const(7)
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}
	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), p),
		dp(expr.Deref(p), v),
	}
	out, st := RewriteSSE(in, types)
	want := expr.Deref(expr.Deref(expr.Add(q, 4))).Key()
	if !hasPair(out, want, v.Key()) {
		t.Fatalf("alias variant %s missing; got %d pairs", want, len(out))
	}
	if st.Added == 0 || st.Classes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRewriteSSEOffsets(t *testing.T) {
	p := expr.Sym("p")
	q := expr.Sym("q")
	v := expr.Sym("val")
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}
	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(q, 4)), expr.Add(p, 8)),
		dp(expr.Deref(expr.Add(p, 12)), v),
	}
	out, _ := RewriteSSE(in, types)
	want := expr.Deref(expr.Add(expr.Deref(expr.Add(q, 4)), 4)).Key()
	if !hasPair(out, want, v.Key()) {
		keys := make([]string, 0, len(out))
		for _, o := range out {
			keys = append(keys, o.D.Key()+"="+o.U.Key())
		}
		t.Fatalf("offset alias missing %s; got %v", want, keys)
	}
}

func TestRewriteSSETransitiveChain(t *testing.T) {
	// The chained-handoff shape Algorithm 1 cannot reach: its synthesized
	// pairs are never re-examined, so with facts
	//
	//	deref(a+8) = b   and   deref(b+4) = s
	//
	// a write through s is rewritten only to deref(b+4) — never to the
	// a-rooted deref(deref(a+8)+4). The class engine closes the chain.
	a := expr.Arg(0)
	b := expr.Arg(1)
	s := expr.Sym(expr.StackSym)
	v := expr.Sym("taint")
	types := map[string]expr.Type{b.Key(): expr.TypePtr}
	in := []symexec.DefPair{
		dp(expr.Deref(expr.Add(a, 8)), b),
		dp(expr.Deref(expr.Add(b, 4)), s),
		dp(expr.Deref(s), v),
	}
	chained := expr.Deref(expr.Deref(expr.Add(expr.Deref(expr.Add(a, 8)), 4))).Key()

	old, _ := Rewrite(in, types)
	if hasPair(old, chained, v.Key()) {
		t.Fatal("Algorithm 1 unexpectedly found the chained variant — SSE ablation would be vacuous")
	}
	out, st := RewriteSSE(in, types)
	if !hasPair(out, chained, v.Key()) {
		keys := make([]string, 0, len(out))
		for _, o := range out {
			keys = append(keys, o.D.Key())
		}
		t.Fatalf("chained variant %s missing; destinations: %v", chained, keys)
	}
	if st.Classes == 0 {
		t.Fatalf("no classes recorded: %+v", st)
	}
}

func TestRewriteSSEDeterministic(t *testing.T) {
	p := expr.Sym("p")
	q := expr.Sym("q")
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}
	var in []symexec.DefPair
	for i := 0; i < 40; i++ {
		in = append(in, dp(expr.Deref(expr.Add(q, int64(i*4))), p))
		in = append(in, dp(expr.Deref(expr.Add(p, int64(i*8))), expr.Const(int64(i))))
	}
	a, _ := RewriteSSE(in, types)
	b, _ := RewriteSSE(in, types)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic pair count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].D.Equal(b[i].D) || !a[i].U.Equal(b[i].U) {
			t.Fatalf("pair %d differs: %s vs %s", i, a[i].D, b[i].D)
		}
	}
}

func TestRewriteDroppedCounted(t *testing.T) {
	// Overflow the Algorithm 1 cap: the overflow must be counted, and
	// the emitted pairs must match the historical capped output.
	p := expr.Sym("p")
	types := map[string]expr.Type{p.Key(): expr.TypeIntPtr}
	var in []symexec.DefPair
	for i := 0; i < 40; i++ {
		q := expr.Sym(fmt.Sprintf("q%02d", i))
		in = append(in, dp(expr.Deref(q), p))
	}
	for i := 0; i < 40; i++ {
		in = append(in, dp(expr.Deref(expr.Add(p, int64(i*4))), expr.Const(int64(i))))
	}
	out, st := Rewrite(in, types)
	if st.Added != MaxNewPairs {
		t.Fatalf("added = %d, want cap %d", st.Added, MaxNewPairs)
	}
	if st.Dropped != 40*40-MaxNewPairs {
		t.Fatalf("dropped = %d, want %d", st.Dropped, 40*40-MaxNewPairs)
	}
	if len(out) != len(in)+MaxNewPairs {
		t.Fatalf("output pairs = %d", len(out))
	}
}

// Package alias implements Algorithm 1 of the paper: pointer-aliasing
// recognition over a function's definition pairs (Section III-C).
//
// Two alias classes matter in binary code. Assignment aliases
// (`int *p = x; q = p`) collapse automatically under symbolic analysis —
// both names evaluate to the same expression. Stored-pointer aliases
// (`int *p = x; *(q+4) = p`) do not: `*p` and `*(*(q+4))` are distinct
// expressions. Algorithm 1 recognizes definitions of the shape
//
//	deref(base1 + offset1) = base2 + offset2
//
// and rewrites every definition pair that dereferences base2 into an
// equivalent pair expressed through deref(base1 + offset1), exposing the
// data flows the aliasing would otherwise hide.
package alias

import (
	"dtaint/internal/expr"
	"dtaint/internal/symexec"
)

// aliasEntry is one (d, base, offset) row of the ALIAS set: the memory
// location d holds the pointer value base+offset.
type aliasEntry struct {
	d    *expr.Expr
	base *expr.Expr
	off  int64
}

// dopEntry is one (d, u, ptrs) row of the DOP set: definition d = u whose
// destination dereferences the base pointers ptrs.
type dopEntry struct {
	d    *expr.Expr
	u    *expr.Expr
	ptrs []*expr.Expr
	size int
	addr uint32
}

// MaxNewPairs bounds the number of synthesized alias pairs per function,
// guarding against pathological alias webs.
const MaxNewPairs = 512

// Rewrite returns the input definition pairs extended with the alias
// variants of Algorithm 1. types carries the function's inferred types
// (used for the "u is a pointer" test). The input slice is not modified.
func Rewrite(dps []symexec.DefPair, types map[string]expr.Type) []symexec.DefPair {
	var aliases []aliasEntry
	var dop []dopEntry

	// Lines 3-12: collect ALIAS and DOP.
	for _, p := range dps {
		if p.D == nil || p.U == nil || !p.D.IsDeref() {
			continue
		}
		if isPointerValue(p.U, types) {
			if base, off, ok := p.U.BasePlusOffset(); ok {
				if _, isConst := base.ConstVal(); !isConst {
					aliases = append(aliases, aliasEntry{d: p.D, base: base, off: off})
				}
			}
		}
		ptrs := p.D.BasePointers()
		if len(ptrs) > 0 {
			dop = append(dop, dopEntry{d: p.D, u: p.U, ptrs: ptrs, size: p.Size, addr: p.Addr})
		}
	}

	out := append([]symexec.DefPair(nil), dps...)
	seen := make(map[string]bool, len(out))
	for _, p := range out {
		seen[pairKey(p.D, p.U)] = true
	}

	// Lines 13-22: synthesize new definitions through each alias.
	added := 0
	for _, de := range dop {
		for _, ptr := range de.ptrs {
			for _, ae := range aliases {
				if !ae.base.Equal(ptr) {
					continue
				}
				// d.Replace(p, alias - o)
				replacement := expr.Bin(expr.OpSub, ae.d, expr.Const(ae.off))
				if replacement.Equal(ptr) {
					continue // degenerate self-alias
				}
				newD := de.d.Subst(ptr, replacement)
				if newD.Equal(de.d) {
					continue
				}
				k := pairKey(newD, de.u)
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, symexec.DefPair{D: newD, U: de.u, Addr: de.addr, Size: de.size})
				added++
				if added >= MaxNewPairs {
					return out
				}
			}
		}
	}
	return out
}

func pairKey(d, u *expr.Expr) string { return d.Key() + "=" + u.Key() }

// isPointerValue decides whether value u holds a pointer: from the type
// map, or structurally (heap identities, the stack pointer, derefs of
// pointer-typed locations, and base+offset forms over those).
func isPointerValue(u *expr.Expr, types map[string]expr.Type) bool {
	if types[u.Key()].IsPointer() {
		return true
	}
	base, _, ok := u.BasePlusOffset()
	if !ok {
		return false
	}
	if name, isSym := base.SymName(); isSym {
		if expr.IsHeapName(name) || name == expr.StackSym {
			return true
		}
		if types[name].IsPointer() {
			return true
		}
	}
	if base.IsDeref() && types[base.Key()].IsPointer() {
		return true
	}
	return false
}

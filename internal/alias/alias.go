// Package alias implements pointer-aliasing recognition over a
// function's definition pairs (Section III-C).
//
// Two alias classes matter in binary code. Assignment aliases
// (`int *p = x; q = p`) collapse automatically under symbolic analysis —
// both names evaluate to the same expression. Stored-pointer aliases
// (`int *p = x; *(q+4) = p`) do not: `*p` and `*(*(q+4))` are distinct
// expressions. Both engines here recognize definitions of the shape
//
//	deref(base1 + offset1) = base2 + offset2
//
// and expose the data flows the aliasing would otherwise hide by
// synthesizing equivalent definition pairs.
//
// Rewrite is the paper's Algorithm 1: pairwise rewriting of every
// affected pair, quadratic in the alias web and capped. RewriteSSE is
// the follow-up work's replacement (EmTaint, arXiv 2109.12209): the
// stored-pointer facts populate an interned union-find of structured
// symbolic expressions (internal/sse), and variants are enumerated from
// equivalence classes — transitive through chained facts, with no
// pairwise scan and a far higher synthesis budget.
package alias

import (
	"dtaint/internal/expr"
	"dtaint/internal/sse"
	"dtaint/internal/symexec"
)

// aliasEntry is one (d, base, offset) row of the ALIAS set: the memory
// location d holds the pointer value base+offset.
type aliasEntry struct {
	d    *expr.Expr
	base *expr.Expr
	off  int64
}

// dopEntry is one (d, u, ptrs) row of the DOP set: definition d = u whose
// destination dereferences the base pointers ptrs.
type dopEntry struct {
	d    *expr.Expr
	u    *expr.Expr
	ptrs []*expr.Expr
	size int
	addr uint32
}

// MaxNewPairs bounds the number of synthesized alias pairs per function
// under Algorithm 1, guarding against pathological alias webs.
const MaxNewPairs = 512

// MaxNewPairsSSE bounds the SSE engine's synthesis budget. Classes make
// enumeration linear in the real alias web, so the bound exists only as
// a backstop; anything past it is counted in Stats.Dropped, never
// silently discarded.
const MaxNewPairsSSE = 8192

// maxVariantDepth and maxVariantsPerPtr bound the class expansion of a
// single base pointer: depth counts chained-fact substitutions (nested
// handoffs need 2+), the per-pointer cap keeps one mega-class from
// eating the whole budget.
const (
	maxVariantDepth   = 3
	maxVariantsPerPtr = 16
)

// Stats reports what a rewrite pass did. Dropped counts synthesized
// pairs discarded past the engine's budget — the quantity Algorithm 1
// used to lose silently. Intern is zero for the Algorithm 1 path.
type Stats struct {
	Added   int
	Dropped int
	Classes int // alias classes with 2+ members (SSE path only)
	Intern  sse.Stats
}

// Rewrite returns the input definition pairs extended with the alias
// variants of Algorithm 1. types carries the function's inferred types
// (used for the "u is a pointer" test). The input slice is not modified.
func Rewrite(dps []symexec.DefPair, types map[string]expr.Type) ([]symexec.DefPair, Stats) {
	var st Stats
	var aliases []aliasEntry
	var dop []dopEntry

	// Lines 3-12: collect ALIAS and DOP.
	for _, p := range dps {
		if p.D == nil || p.U == nil || !p.D.IsDeref() {
			continue
		}
		if isPointerValue(p.U, types) {
			if base, off, ok := p.U.BasePlusOffset(); ok {
				if _, isConst := base.ConstVal(); !isConst {
					aliases = append(aliases, aliasEntry{d: p.D, base: base, off: off})
				}
			}
		}
		ptrs := p.D.BasePointers()
		if len(ptrs) > 0 {
			dop = append(dop, dopEntry{d: p.D, u: p.U, ptrs: ptrs, size: p.Size, addr: p.Addr})
		}
	}

	out := append([]symexec.DefPair(nil), dps...)
	seen := make(map[string]bool, len(out))
	for _, p := range out {
		seen[pairKey(p.D, p.U)] = true
	}

	// Lines 13-22: synthesize new definitions through each alias.
	for _, de := range dop {
		for _, ptr := range de.ptrs {
			for _, ae := range aliases {
				if !ae.base.Equal(ptr) {
					continue
				}
				// d.Replace(p, alias - o)
				replacement := expr.Bin(expr.OpSub, ae.d, expr.Const(ae.off))
				if replacement.Equal(ptr) {
					continue // degenerate self-alias
				}
				newD := de.d.Subst(ptr, replacement)
				if newD.Equal(de.d) {
					continue
				}
				k := pairKey(newD, de.u)
				if seen[k] {
					continue
				}
				seen[k] = true
				if st.Added >= MaxNewPairs {
					st.Dropped++
					continue
				}
				out = append(out, symexec.DefPair{D: newD, U: de.u, Addr: de.addr, Size: de.size})
				st.Added++
			}
		}
	}
	return out, st
}

// Classes builds the SSE query engine for a function: every
// stored-pointer definition among dps becomes one union in an interned
// access-path union-find. The result answers on-demand alias queries
// (Interner.Alias) and enumerates equivalent spellings
// (Interner.PathExprs) without any pairwise rewriting.
func Classes(dps []symexec.DefPair, types map[string]expr.Type) *sse.Interner {
	in := sse.NewInterner()
	for _, p := range dps {
		if p.D == nil || p.U == nil || !p.D.IsDeref() || !isPointerValue(p.U, types) {
			continue
		}
		if pd, ok := in.Intern(p.D); ok {
			if pu, ok := in.Intern(p.U); ok {
				// value(d's load) = value(u): one class merge instead of
				// a pairwise rewriting round.
				in.Union(pd.Node, pd.Off, pu.Node, pu.Off)
			}
		}
	}
	return in
}

// RewriteSSE returns the input definition pairs extended with alias
// variants derived from SSE equivalence classes. Every stored-pointer
// definition becomes one union in an interned access-path union-find;
// variants are then enumerated per affected base pointer from its
// class, transitively through chained facts (a shape Algorithm 1 cannot
// reach: its synthesized pairs are never re-examined). The input slice
// is not modified; results are deterministic for a given input order.
func RewriteSSE(dps []symexec.DefPair, types map[string]expr.Type) ([]symexec.DefPair, Stats) {
	var st Stats
	in := Classes(dps, types)
	out := append([]symexec.DefPair(nil), dps...)
	if in.ClassCount() == 0 {
		// No alias facts: skip the DOP scan entirely — most functions
		// take this path, so the class engine's overhead stays confined
		// to functions with a real alias web.
		st.Intern = in.Stats()
		return out, st
	}
	var dop []dopEntry
	for _, p := range dps {
		if p.D == nil || p.U == nil {
			continue
		}
		if ptrs := p.D.BasePointers(); len(ptrs) > 0 {
			dop = append(dop, dopEntry{d: p.D, u: p.U, ptrs: ptrs, size: p.Size, addr: p.Addr})
		}
	}
	seen := make(map[string]bool, len(out))
	for _, p := range out {
		seen[pairKey(p.D, p.U)] = true
	}

	for _, de := range dop {
		for _, ptr := range de.ptrs {
			pp, ok := in.Intern(ptr)
			if !ok {
				continue
			}
			for _, form := range in.PathExprs(pp, maxVariantDepth, maxVariantsPerPtr) {
				if form.Equal(ptr) {
					continue
				}
				newD := de.d.Subst(ptr, form)
				if newD.Equal(de.d) {
					continue
				}
				k := pairKey(newD, de.u)
				if seen[k] {
					continue
				}
				seen[k] = true
				if st.Added >= MaxNewPairsSSE {
					st.Dropped++
					continue
				}
				out = append(out, symexec.DefPair{D: newD, U: de.u, Addr: de.addr, Size: de.size})
				st.Added++
			}
		}
	}
	st.Classes = in.ClassCount()
	st.Intern = in.Stats()
	return out, st
}

func pairKey(d, u *expr.Expr) string { return d.Key() + "=" + u.Key() }

// isPointerValue decides whether value u holds a pointer: from the type
// map, or structurally (heap identities, the stack pointer, derefs of
// pointer-typed locations, and base+offset forms over those).
func isPointerValue(u *expr.Expr, types map[string]expr.Type) bool {
	if types[u.Key()].IsPointer() { //dtaintlint:ignore sse-key-identity symexec's type map is keyed by spelling upstream of interning
		return true
	}
	base, _, ok := u.BasePlusOffset()
	if !ok {
		return false
	}
	if name, isSym := base.SymName(); isSym {
		if expr.IsHeapName(name) || name == expr.StackSym {
			return true
		}
		if types[name].IsPointer() {
			return true
		}
	}
	if base.IsDeref() && types[base.Key()].IsPointer() { //dtaintlint:ignore sse-key-identity symexec's type map is keyed by spelling upstream of interning
		return true
	}
	return false
}

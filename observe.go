package dtaint

import (
	"io"
	"log/slog"
	"time"

	"dtaint/internal/obs"
	"dtaint/internal/obs/events"
)

// Tracer records spans for every pipeline stage an Analyzer (or fleet
// scan) runs: firmware unpacking, image parsing, CFG recovery, the
// per-function symbolic phase, struct-similarity resolution, the
// bottom-up interprocedural pass (with per-SCC-component and
// per-function child spans), and per-binary fleet scans. Attach one
// with WithTracer; a nil *Tracer disables tracing. Safe for concurrent
// use.
type Tracer struct{ t *obs.Tracer }

// NewTracer returns an empty tracer whose trace clock starts now.
func NewTracer() *Tracer { return &Tracer{t: obs.NewTracer()} }

// WriteChromeTrace exports the collected spans as Chrome trace_event
// JSON, loadable in chrome://tracing and Perfetto (ui.perfetto.dev).
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return (*obs.Tracer)(nil).WriteChromeTrace(w)
	}
	return t.t.WriteChromeTrace(w)
}

// SpanNames returns the distinct names of finished spans, sorted.
func (t *Tracer) SpanNames() []string {
	if t == nil {
		return nil
	}
	return t.t.SpanNames()
}

// SpanEvent is the view of a span handed to OnSpanStart/OnSpanEnd
// observers (Duration is zero in start events).
type SpanEvent struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    map[string]any
}

func spanEvent(r obs.SpanRecord) SpanEvent {
	ev := SpanEvent{Name: r.Name, Start: r.Start, Duration: r.Duration}
	if len(r.Attrs) > 0 {
		ev.Attrs = make(map[string]any, len(r.Attrs))
		for _, a := range r.Attrs {
			ev.Attrs[a.Key] = a.Value
		}
	}
	return ev
}

// OnSpanStart registers fn to run synchronously whenever a span starts —
// the hook progress reporting is built on. Register before analyzing.
func (t *Tracer) OnSpanStart(fn func(SpanEvent)) {
	if t == nil {
		return
	}
	t.t.OnSpanStart(func(r obs.SpanRecord) { fn(spanEvent(r)) })
}

// OnSpanEnd registers fn to run synchronously whenever a span ends.
func (t *Tracer) OnSpanEnd(fn func(SpanEvent)) {
	if t == nil {
		return
	}
	t.t.OnSpanEnd(func(r obs.SpanRecord) { fn(spanEvent(r)) })
}

// Metrics is a registry of counters, gauges, and histograms the
// pipeline populates: per-function analysis-time and states-explored
// histograms, totals for functions/def-pairs/findings, and fleet cache
// hit ratios. Attach one with WithMetrics; nil disables collection.
type Metrics struct{ r *obs.Registry }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return &Metrics{r: obs.NewRegistry()} }

// WriteJSON writes every metric as a JSON document.
func (m *Metrics) WriteJSON(w io.Writer) error { return m.registry().WriteJSON(w) }

// WritePrometheus writes every metric in the Prometheus text
// exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.registry().WritePrometheus(w) }

func (m *Metrics) registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.r
}

// RuntimeStats is a snapshot of the Go runtime taken when an analysis
// finished — the memory and scheduling context embedded in reports.
type RuntimeStats struct {
	// HeapAllocBytes is the live heap; HeapSysBytes the heap memory
	// obtained from the OS; TotalAllocBytes the cumulative allocation
	// volume.
	HeapAllocBytes  uint64
	HeapSysBytes    uint64
	TotalAllocBytes uint64
	// Goroutines is the live goroutine count.
	Goroutines int
	// NumGC counts completed GC cycles; GCPauseTotal is the cumulative
	// stop-the-world pause time.
	NumGC        uint32
	GCPauseTotal time.Duration
}

func publicRuntimeStats(s obs.RuntimeStats) RuntimeStats {
	return RuntimeStats{
		HeapAllocBytes:  s.HeapAllocBytes,
		HeapSysBytes:    s.HeapSysBytes,
		TotalAllocBytes: s.TotalAllocBytes,
		Goroutines:      s.Goroutines,
		NumGC:           s.NumGC,
		GCPauseTotal:    s.GCPauseTotal,
	}
}

// EventJournal is a bounded in-memory ring of live telemetry events:
// typed, sequence-numbered records of everything an analysis does —
// stages entered and left, binaries started and finished, per-stage
// progress with moving-rate ETA, findings as they are merged, cache and
// summary-store activity, stalls. Attach one with WithEventJournal;
// when a Tracer is attached too, every span start/end is bridged into
// the journal as an event. Event content (wall-clock fields excluded)
// is deterministic for any worker count. Safe for concurrent use.
type EventJournal struct{ j *events.Journal }

// NewEventJournal returns a journal keeping the last size events
// (<= 0 selects the default of 4096).
func NewEventJournal(size int) *EventJournal {
	return &EventJournal{j: events.NewJournal(size)}
}

// AttachProgressPrinter subscribes the standard progress renderer: one
// "dtaint: ..." line per stage transition, decile progress with
// percentages and ETA, per-binary completion lines — the exact output
// of dtaint -progress. It returns a function removing the subscription.
func (j *EventJournal) AttachProgressPrinter(w io.Writer) (remove func()) {
	if j == nil {
		return func() {}
	}
	return events.AttachPrinter(j.j, w)
}

// EventJournalStats snapshots a journal's ring usage.
type EventJournalStats struct {
	// Appended is the total events ever published; Dropped the subset
	// already overwritten by the wrapping ring.
	Appended uint64
	Dropped  uint64
	// Capacity is the ring size; HighWater the peak occupancy reached.
	Capacity  int
	HighWater int
}

// Stats returns the journal's usage counters.
func (j *EventJournal) Stats() EventJournalStats {
	if j == nil {
		return EventJournalStats{}
	}
	st := j.j.Stats()
	return EventJournalStats{
		Appended:  st.Appended,
		Dropped:   st.Dropped,
		Capacity:  st.Capacity,
		HighWater: st.HighWater,
	}
}

// WithEventJournal attaches a live-telemetry journal: the analysis
// appends progress, finding, and stage events to it as it runs.
func WithEventJournal(j *EventJournal) Option {
	return func(a *Analyzer) {
		if j != nil {
			a.journal = j.j
		}
	}
}

// WithTracer attaches a span tracer: every pipeline stage (and, in
// fleet scans, every binary) is recorded as a span, exportable as
// Chrome trace JSON.
func WithTracer(t *Tracer) Option {
	return func(a *Analyzer) {
		if t != nil {
			a.opts.Tracer = t.t
		}
	}
}

// WithMetrics attaches a metrics registry the pipeline populates.
func WithMetrics(m *Metrics) Option {
	return func(a *Analyzer) {
		if m != nil {
			a.opts.Metrics = m.r
		}
	}
}

// WithLogger attaches a structured logger; the pipeline logs one line
// per stage (and per fleet binary) with stage, duration, and size
// attrs. Nil disables logging.
func WithLogger(l *slog.Logger) Option {
	return func(a *Analyzer) { a.opts.Log = l }
}

package dtaint_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"dtaint"
	"dtaint/internal/taint"
)

// TestReportJSONRoundTrip: a Report survives marshal → unmarshal with
// every finding intact — the contract dtaintd's wire format and the
// on-disk report cache both depend on. Equality of the vulnerability
// sets is checked through taint.VulnKey, the canonical deduplication key
// shared by every report layer.
func TestReportJSONRoundTrip(t *testing.T) {
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dtaint.New().AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("study image produced no findings")
	}

	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back dtaint.Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(rep, &back) {
		t.Fatalf("report changed across the round trip:\n got %+v\nwant %+v", &back, rep)
	}

	keys := func(fs []dtaint.Finding) map[string]bool {
		m := make(map[string]bool)
		for _, f := range fs {
			m[taint.VulnKey(f.SinkFunc, f.Sink, f.SinkAddr, string(f.Class))] = true
		}
		return m
	}
	got, want := keys(back.Vulnerabilities()), keys(rep.Vulnerabilities())
	if len(want) == 0 {
		t.Fatal("no vulnerabilities to compare")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("vulnerability keys changed: got %v, want %v", got, want)
	}
	if len(back.VulnerablePaths()) != len(rep.VulnerablePaths()) {
		t.Fatalf("vulnerable paths changed: %d vs %d",
			len(back.VulnerablePaths()), len(rep.VulnerablePaths()))
	}
}

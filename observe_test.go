package dtaint

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// A traced firmware analysis must record every pipeline stage — the
// acceptance bar is at least six distinct stage names in the exported
// Chrome trace — and the report must carry a runtime snapshot.
func TestTracerCapturesPipelineStages(t *testing.T) {
	fw, err := GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer()
	var logBuf bytes.Buffer
	a := New(
		WithTracer(tr),
		WithLogger(slog.New(slog.NewJSONHandler(&logBuf, nil))),
	)
	rep, err := a.AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}

	names := tr.SpanNames()
	for _, want := range []string{
		"unpack-firmware", "parse-image", "build-cfg",
		"function-analysis", "structsim", "interproc-dataflow",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("stage span %q missing (got %v)", want, names)
		}
	}
	if len(names) < 6 {
		t.Fatalf("only %d distinct span names: %v", len(names), names)
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) < 6 {
		t.Fatalf("trace has %d events", len(trace.TraceEvents))
	}

	if rep.Runtime.HeapAllocBytes == 0 || rep.Runtime.Goroutines == 0 {
		t.Fatalf("runtime snapshot missing: %+v", rep.Runtime)
	}

	// Each stage must have logged a JSON "stage done" line.
	staged := map[string]bool{}
	for _, line := range strings.Split(logBuf.String(), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] == "stage done" {
			if s, ok := rec["stage"].(string); ok {
				staged[s] = true
			}
		}
	}
	for _, want := range []string{"parse-image", "build-cfg", "function-analysis", "structsim", "interproc-dataflow"} {
		if !staged[want] {
			t.Errorf("no stage-done log line for %q (got %v)", want, staged)
		}
	}
}

// Metrics attached through the public API must populate per-function
// histograms and expose both formats.
func TestMetricsExposition(t *testing.T) {
	fw, err := GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	a := New(WithMetrics(m))
	if _, err := a.AnalyzeFirmware(fw, "/htdocs/cgibin"); err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	if err := m.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dtaint_fn_ssa_seconds_bucket", "dtaint_fn_ddg_seconds_bucket",
		"dtaint_fn_states_explored_bucket", "dtaint_functions_analyzed_total",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus exposition lacks %s", want)
		}
	}
	var js bytes.Buffer
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("JSON exposition invalid: %v", err)
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("JSON exposition empty")
	}
}

package dtaint_test

import (
	"context"
	"sort"
	"testing"

	"dtaint"
	"dtaint/internal/corpus"
	"dtaint/internal/taint"
)

func vulnKeys(findings []dtaint.Finding) []string {
	var keys []string
	for _, f := range findings {
		keys = append(keys, taint.VulnKey(f.SinkFunc, f.Sink, f.SinkAddr, string(f.Class)))
	}
	sort.Strings(keys)
	return keys
}

// TestScanFirmwareFleetMatchesAnalyzeFirmware is the end-to-end
// equivalence guarantee: the fleet orchestrator's per-binary findings
// are exactly what a single-binary AnalyzeFirmware run produces.
func TestScanFirmwareFleetMatchesAnalyzeFirmware(t *testing.T) {
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	a := dtaint.New()
	img, err := a.ScanFirmwareFleet(context.Background(), fw)
	if err != nil {
		t.Fatal(err)
	}
	if img.Product != "DIR-645" || img.Vendor == "" {
		t.Fatalf("image identity = %s %s, want D-Link DIR-645", img.Vendor, img.Product)
	}
	if img.Candidates != 1 || img.Scanned != 1 || img.Failed != 0 {
		t.Fatalf("candidates/scanned/failed = %d/%d/%d, want 1/1/0",
			img.Candidates, img.Scanned, img.Failed)
	}
	single, err := a.AnalyzeFirmware(fw, img.Binaries[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	fleetRep := img.Binaries[0].Report
	if fleetRep == nil {
		t.Fatal("fleet scan returned no per-binary report")
	}
	got := vulnKeys(fleetRep.Vulnerabilities())
	want := vulnKeys(single.Vulnerabilities())
	if len(want) == 0 {
		t.Fatal("study image produced no vulnerabilities")
	}
	if len(got) != len(want) {
		t.Fatalf("fleet found %d vulnerabilities, single-binary run found %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("vuln key mismatch at %d: %q vs %q", i, got[i], want[i])
		}
	}
	if img.Vulnerabilities != len(want) || img.VulnerablePaths != len(single.VulnerablePaths()) {
		t.Fatalf("image totals %d/%d, want %d/%d", img.Vulnerabilities, img.VulnerablePaths,
			len(want), len(single.VulnerablePaths()))
	}
}

func TestScanFirmwareFleetCache(t *testing.T) {
	fw, err := dtaint.GenerateStudyFirmware("DGN1000", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := dtaint.NewFleetCache(64, "")
	if err != nil {
		t.Fatal(err)
	}
	a := dtaint.New()
	first, err := a.ScanFirmwareFleet(context.Background(), fw, dtaint.WithFleetCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached != 0 || first.Scanned != 1 {
		t.Fatalf("first scan cached/scanned = %d/%d, want 0/1", first.Cached, first.Scanned)
	}
	second, err := a.ScanFirmwareFleet(context.Background(), fw, dtaint.WithFleetCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if second.Cached != 1 || second.Scanned != 0 {
		t.Fatalf("second scan cached/scanned = %d/%d, want 1/0", second.Cached, second.Scanned)
	}
	if second.Cache.Hits == 0 {
		t.Fatal("second scan reported no cache hits")
	}
	if second.Vulnerabilities != first.Vulnerabilities {
		t.Fatalf("cached scan changed totals: %d vs %d", second.Vulnerabilities, first.Vulnerabilities)
	}
	if st := cache.Stats(); st.Entries == 0 || st.Hits == 0 {
		t.Fatalf("cache stats empty: %+v", st)
	}
}

func TestScanFirmwareFleetProgressAndPathFilter(t *testing.T) {
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var last, total int
	img, err := dtaint.New().ScanFirmwareFleet(context.Background(), fw,
		dtaint.WithFleetWorkers(2),
		dtaint.WithFleetProgress(func(d, t int) { last, total = d, t }))
	if err != nil {
		t.Fatal(err)
	}
	if last != img.Candidates || total != img.Candidates {
		t.Fatalf("progress ended at %d/%d, want %d/%d", last, total, img.Candidates, img.Candidates)
	}
	none, err := dtaint.New().ScanFirmwareFleet(context.Background(), fw,
		dtaint.WithFleetPathFilter(func(string) bool { return false }))
	if err != nil {
		t.Fatal(err)
	}
	if none.Candidates != 0 || len(none.Binaries) != 0 {
		t.Fatalf("path filter ignored: %d candidates", none.Candidates)
	}
}

// TestScanFirmwareCorpus exercises the corpus entry point over an
// overlap corpus: duplicate binaries collapse onto the report cache and
// shared-module functions collapse onto the summary store.
func TestScanFirmwareCorpus(t *testing.T) {
	c, err := corpus.BuildOverlapCorpus(corpus.OverlapSpec{
		Images: 4, Variants: 2, SharedFuncs: 10, UniqueFuncs: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := dtaint.NewSummaryStore(0, "")
	if err != nil {
		t.Fatal(err)
	}
	a := dtaint.New()
	rep, err := a.ScanFirmwareCorpus(context.Background(), c.Images,
		dtaint.WithFleetSummaryStore(store))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Images) != 4 {
		t.Fatalf("got %d image reports", len(rep.Images))
	}
	if rep.UniqueBinaries != 2 || rep.DuplicateBinaries != 2 {
		t.Fatalf("unique/duplicate = %d/%d, want 2/2", rep.UniqueBinaries, rep.DuplicateBinaries)
	}
	if rep.Cache.Hits == 0 {
		t.Fatal("duplicate images produced no report-cache hits")
	}
	// Variant 1 shares its module with variant 0, so its analysis must
	// hit the summary store even though its binary is new.
	if rep.SummaryStore.Hits == 0 || rep.SummaryStore.Misses == 0 {
		t.Fatalf("summary store hits/misses = %d/%d, want both > 0",
			rep.SummaryStore.Hits, rep.SummaryStore.Misses)
	}
	for i, ir := range rep.Images {
		if ir.Vulnerabilities != rep.Images[0].Vulnerabilities {
			t.Fatalf("image %d vulnerabilities %d != image 0's %d",
				i, ir.Vulnerabilities, rep.Images[0].Vulnerabilities)
		}
	}
}

// TestWithSummaryStoreSingleBinary checks the single-binary Analyzer
// surface: a second analysis of the same bytes through the same store
// replays without re-executing, with identical findings.
func TestWithSummaryStoreSingleBinary(t *testing.T) {
	fw, err := dtaint.GenerateStudyFirmware("DIR-645", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dtaint.NewSummaryStore(0, "")
	if err != nil {
		t.Fatal(err)
	}
	plain := dtaint.New()
	want, err := plain.AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	a := dtaint.New(dtaint.WithSummaryStore(store))
	first, err := a.AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("cold run should populate the store: %+v", st)
	}
	second, err := a.AnalyzeFirmware(fw, "/htdocs/cgibin")
	if err != nil {
		t.Fatal(err)
	}
	if hits := store.Stats().Hits - st.Hits; hits == 0 {
		t.Fatal("warm run had no store hits")
	}
	w := vulnKeys(want.Findings)
	for run, rep := range map[string]*dtaint.Report{"cold": first, "warm": second} {
		got := vulnKeys(rep.Findings)
		if len(got) != len(w) {
			t.Fatalf("%s run: %d findings, store-off baseline has %d", run, len(got), len(w))
		}
		for i := range got {
			if got[i] != w[i] {
				t.Fatalf("%s run finding %d = %s, want %s", run, i, got[i], w[i])
			}
		}
	}
}
